package collector

// Regression test for the resume catch-up bug: both cmds fast-forward
// the simulation clock past recovered data before collecting again, and
// the first thing Start does is an immediate collection at clk.Now().
// The store accepts same-timestamp appends (only strictly-earlier ones
// are rejected as out of order), so a catch-up that lands exactly ON
// MaxTime writes duplicate-timestamp points next to the recovered ones
// whenever the simulated value changed. The catch-up must land one tick
// PAST the recovered maximum.

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

// resumeLeg opens the durable archive in dir and collects d of simulated
// time on a fresh simulation, applying the cmds' resume catch-up first:
// onePast selects the fixed recipe (land one tick past MaxTime) versus
// the buggy one (land exactly on it).
func resumeLeg(t *testing.T, dir string, d time.Duration, onePast bool) {
	t.Helper()
	cat := catalog.Compact(2)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 7, cloudsim.DefaultParams())
	db, err := tsdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	cfg := DefaultConfig()
	if maxAt, ok := db.MaxTime(); ok && !maxAt.Before(clk.Now()) {
		target := maxAt
		if onePast {
			target = maxAt.Add(cfg.ScoreInterval)
		}
		clk.RunFor(target.Sub(clk.Now()))
	}
	col, err := New(cloud, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Run(d); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}

// duplicateTimestamps counts per-series adjacent equal timestamps across
// the whole archive.
func duplicateTimestamps(t *testing.T, dir string) int {
	t.Helper()
	db, err := tsdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	dups := 0
	for _, k := range db.Keys(tsdb.KeyFilter{}) {
		pts := noerr(db.Query(k, time.Time{}, time.Time{}.AddDate(9000, 0, 0)))
		for i := 1; i < len(pts); i++ {
			if pts[i].At.Equal(pts[i-1].At) {
				dups++
			}
		}
	}
	return dups
}

func TestResumeRoundTripNoDuplicateTimestamps(t *testing.T) {
	dir := t.TempDir()
	resumeLeg(t, dir, 2*time.Hour, true)
	first := duplicateTimestamps(t, dir)
	if first != 0 {
		t.Fatalf("fresh run already holds %d duplicate timestamps", first)
	}
	// Resume twice more; each leg must continue strictly after the
	// recovered data.
	resumeLeg(t, dir, 2*time.Hour, true)
	resumeLeg(t, dir, 1*time.Hour, true)
	if dups := duplicateTimestamps(t, dir); dups != 0 {
		t.Fatalf("resumed archive holds %d duplicate-timestamp points", dups)
	}
	// And the resumes actually appended new data rather than skipping.
	db, err := tsdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	maxAt, ok := db.MaxTime()
	if !ok || maxAt.Before(simclock.Epoch.Add(4*time.Hour)) {
		t.Fatalf("resumed archive ends at %v; the legs did not continue collection", maxAt)
	}
}

// TestResumeOntoMaxTimeWouldDuplicate documents why the catch-up must
// overshoot: the same round-trip with the pre-fix recipe (clock landed
// exactly on MaxTime) stores duplicate-timestamp points, because the
// resumed simulation's values at that instant differ from the recovered
// run's and AppendIfChanged only dedups equal values.
func TestResumeOntoMaxTimeWouldDuplicate(t *testing.T) {
	dir := t.TempDir()
	resumeLeg(t, dir, 2*time.Hour, false)
	resumeLeg(t, dir, 2*time.Hour, false)
	if dups := duplicateTimestamps(t, dir); dups == 0 {
		t.Skip("simulation happened to reproduce identical values at the resume instant; nothing to demonstrate")
	}
}
