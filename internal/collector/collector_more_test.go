package collector

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func TestExactPackingPlan(t *testing.T) {
	cat := catalog.Compact(2)
	cloud := cloudsim.New(cat, simclock.NewAtEpoch(), 9, cloudsim.DefaultParams())
	db, _ := tsdb.Open("")

	cfgFFD := DefaultConfig()
	colFFD, err := New(cloud, db, cfgFFD)
	if err != nil {
		t.Fatal(err)
	}
	cfgExact := DefaultConfig()
	cfgExact.ExactPacking = true
	colExact, err := New(cloud, db, cfgExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(colExact.Plan().Queries) > len(colFFD.Plan().Queries) {
		t.Errorf("exact plan (%d) worse than FFD (%d)",
			len(colExact.Plan().Queries), len(colFFD.Plan().Queries))
	}
}

func TestStoreAllSamples(t *testing.T) {
	run := func(storeAll bool) int {
		cat := catalog.Compact(1)
		cloud := cloudsim.New(cat, simclock.NewAtEpoch(), 10, cloudsim.DefaultParams())
		db, _ := tsdb.Open("")
		cfg := DefaultConfig()
		cfg.StoreAllSamples = storeAll
		col, err := New(cloud, db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Run(4 * time.Hour); err != nil {
			t.Fatal(err)
		}
		return db.PointCount()
	}
	dedup := run(false)
	raw := run(true)
	if raw <= dedup {
		t.Errorf("raw storage (%d) should exceed deduplicated (%d)", raw, dedup)
	}
	// Raw mode stores one point per series per tick: 25 ticks (1 + 24).
	cat := catalog.Compact(1)
	series := 0
	for _, tp := range cat.Types() {
		series += len(cat.PoolsOfType(tp.Name))      // sps
		series += len(cat.PoolsOfType(tp.Name))      // price
		series += len(cat.SupportedRegions(tp.Name)) // if
		series += len(cat.SupportedRegions(tp.Name)) // savings
	}
	want := series * 25
	if raw != want {
		t.Errorf("raw points = %d, want %d (series x ticks)", raw, want)
	}
}

func TestLowQuotaNeedsMoreAccounts(t *testing.T) {
	cat := catalog.Compact(2)
	cloud := cloudsim.New(cat, simclock.NewAtEpoch(), 11, cloudsim.DefaultParams())
	db, _ := tsdb.Open("")
	cfgFull := DefaultConfig()
	colFull, err := New(cloud, db, cfgFull)
	if err != nil {
		t.Fatal(err)
	}
	cfgTight := DefaultConfig()
	cfgTight.QuotaPerAccount = 10
	colTight, err := New(cloud, db, cfgTight)
	if err != nil {
		t.Fatal(err)
	}
	if colTight.Accounts() <= colFull.Accounts() {
		t.Errorf("quota 10 needs %d accounts, quota 50 needs %d; tighter quota should need more",
			colTight.Accounts(), colFull.Accounts())
	}
	// And the tight-quota collector must still run without quota errors.
	if err := colTight.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if colTight.Stats().QueryErrors != 0 {
		t.Errorf("%d query errors with tight quota", colTight.Stats().QueryErrors)
	}
}
