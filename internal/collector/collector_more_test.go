package collector

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func TestExactPackingPlan(t *testing.T) {
	cat := catalog.Compact(2)
	cloud := cloudsim.New(cat, simclock.NewAtEpoch(), 9, cloudsim.DefaultParams())
	db, _ := tsdb.Open("")

	cfgFFD := DefaultConfig()
	colFFD, err := New(cloud, db, cfgFFD)
	if err != nil {
		t.Fatal(err)
	}
	cfgExact := DefaultConfig()
	cfgExact.ExactPacking = true
	colExact, err := New(cloud, db, cfgExact)
	if err != nil {
		t.Fatal(err)
	}
	if len(colExact.Plan().Queries) > len(colFFD.Plan().Queries) {
		t.Errorf("exact plan (%d) worse than FFD (%d)",
			len(colExact.Plan().Queries), len(colFFD.Plan().Queries))
	}
}

func TestStoreAllSamples(t *testing.T) {
	run := func(storeAll bool) int {
		cat := catalog.Compact(1)
		cloud := cloudsim.New(cat, simclock.NewAtEpoch(), 10, cloudsim.DefaultParams())
		db, _ := tsdb.Open("")
		cfg := DefaultConfig()
		cfg.StoreAllSamples = storeAll
		col, err := New(cloud, db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := col.Run(4 * time.Hour); err != nil {
			t.Fatal(err)
		}
		return db.PointCount()
	}
	dedup := run(false)
	raw := run(true)
	if raw <= dedup {
		t.Errorf("raw storage (%d) should exceed deduplicated (%d)", raw, dedup)
	}
	// Raw mode stores one point per series per tick: 25 ticks (1 + 24).
	cat := catalog.Compact(1)
	series := 0
	for _, tp := range cat.Types() {
		series += len(cat.PoolsOfType(tp.Name))      // sps
		series += len(cat.PoolsOfType(tp.Name))      // price
		series += len(cat.SupportedRegions(tp.Name)) // if
		series += len(cat.SupportedRegions(tp.Name)) // savings
	}
	want := series * 25
	if raw != want {
		t.Errorf("raw points = %d, want %d (series x ticks)", raw, want)
	}
}

func TestLowQuotaNeedsMoreAccounts(t *testing.T) {
	cat := catalog.Compact(2)
	cloud := cloudsim.New(cat, simclock.NewAtEpoch(), 11, cloudsim.DefaultParams())
	db, _ := tsdb.Open("")
	cfgFull := DefaultConfig()
	colFull, err := New(cloud, db, cfgFull)
	if err != nil {
		t.Fatal(err)
	}
	cfgTight := DefaultConfig()
	cfgTight.QuotaPerAccount = 10
	colTight, err := New(cloud, db, cfgTight)
	if err != nil {
		t.Fatal(err)
	}
	if colTight.Accounts() <= colFull.Accounts() {
		t.Errorf("quota 10 needs %d accounts, quota 50 needs %d; tighter quota should need more",
			colTight.Accounts(), colFull.Accounts())
	}
	// And the tight-quota collector must still run without quota errors.
	if err := colTight.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if colTight.Stats().QueryErrors != 0 {
		t.Errorf("%d query errors with tight quota", colTight.Stats().QueryErrors)
	}
}

// TestPeriodicCheckpointing runs a short durable collection with periodic
// checkpoints enabled and verifies (a) checkpoints actually fire, (b) the
// sealed WAL segments they cover are deleted, bounding the on-disk tail,
// and (c) a reopened store recovers the full archive.
func TestPeriodicCheckpointing(t *testing.T) {
	dir := t.TempDir()
	cat := catalog.Compact(2)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 7, cloudsim.DefaultParams())
	// A small rotation threshold so segments seal often enough for the
	// periodic checkpoints to have sealed files to delete.
	const rotateBytes = 4096
	db, err := tsdb.OpenWithOptions(dir, tsdb.Options{RotateBytes: rotateBytes})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CheckpointInterval = time.Hour
	col, err := New(cloud, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	st := col.Stats()
	if st.Checkpoints < 2 {
		t.Fatalf("checkpoints fired %d times over 3h at 1h cadence", st.Checkpoints)
	}
	if st.CheckpointErrors != 0 {
		t.Fatalf("%d checkpoint errors", st.CheckpointErrors)
	}
	// Truncation check: the segments hold only the tail collected since
	// the last periodic checkpoint, so their total size must be far below
	// the whole run's WAL volume. A quiescent checkpoint then cuts them
	// to (near) empty.
	walBytes := func() int64 {
		t.Helper()
		segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("globbing segments: %v (%d files)", err, len(segs))
		}
		var total int64
		for _, s := range segs {
			fi, err := os.Stat(s)
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
		}
		return total
	}
	// Flush so buffered record bytes are in the files before measuring.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	afterRun := walBytes()
	// If periodic checkpoints had not deleted covered sealed segments,
	// the chain would hold the whole run's volume (>30 record bytes per
	// stored point).
	if fullVolume := int64(db.PointCount()) * 30; afterRun >= fullVolume {
		t.Fatalf("segments hold %d bytes after run, >= uncompacted volume estimate %d", afterRun, fullVolume)
	}
	// A quiescent checkpoint deletes every remaining sealed segment; what
	// survives is each shard's active segment, bounded by the rotation
	// threshold plus one record of overshoot.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if tail := walBytes(); tail > afterRun || tail > int64(db.ShardCount())*(rotateBytes+512) {
		t.Fatalf("quiescent checkpoint left %d segment bytes (was %d)", tail, afterRun)
	}
	points, series := db.PointCount(), db.SeriesCount()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := tsdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.PointCount() != points || re.SeriesCount() != series {
		t.Fatalf("recovered %d points / %d series, want %d / %d",
			re.PointCount(), re.SeriesCount(), points, series)
	}
}

// TestSizeBasedCheckpointTrigger runs a durable collection with only the
// byte-count checkpoint trigger enabled and verifies (a) it fires as the
// WAL crosses the threshold, (b) the replay tail a restart faces stays
// bounded by the threshold rather than the run length, and (c) recovery
// is lossless.
func TestSizeBasedCheckpointTrigger(t *testing.T) {
	dir := t.TempDir()
	cat := catalog.Compact(2)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 11, cloudsim.DefaultParams())
	const threshold = 16 << 10
	db, err := tsdb.OpenWithOptions(dir, tsdb.Options{RotateBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.CheckpointInterval = 0 // size trigger only
	cfg.CheckpointAfterBytes = threshold
	col, err := New(cloud, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Run(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	st := col.Stats()
	if st.SizeCheckpoints < 2 {
		t.Fatalf("size-triggered checkpoints fired %d times; the run writes several times the %d-byte threshold", st.SizeCheckpoints, threshold)
	}
	if st.Checkpoints != 0 {
		t.Fatalf("%d interval checkpoints fired with the interval trigger disabled", st.Checkpoints)
	}
	if st.CheckpointErrors != 0 {
		t.Fatalf("%d checkpoint errors", st.CheckpointErrors)
	}
	// The un-checkpointed tail is at most the threshold plus one tick's
	// worth of overshoot (the trigger runs after each tick's batch).
	if tail := db.WALBytesSinceCheckpoint(); tail >= 2*threshold {
		t.Fatalf("WAL tail is %d bytes after the run, want < 2x the %d-byte threshold", tail, threshold)
	}
	points, series := db.PointCount(), db.SeriesCount()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := tsdb.OpenWithOptions(dir, tsdb.Options{RotateBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.ReplayedWALBytes(); got >= 2*threshold {
		t.Fatalf("recovery replayed %d WAL bytes, want < 2x the %d-byte threshold", got, threshold)
	}
	if re.PointCount() != points || re.SeriesCount() != series {
		t.Fatalf("recovered %d points / %d series, want %d / %d",
			re.PointCount(), re.SeriesCount(), points, series)
	}
}
