// Package collector implements SpotLake's data collection pipeline (paper
// Figure 2 and Section 3.2): the spot data collector server that
// periodically gathers the placement-score, advisor, and price datasets and
// writes them into the time-series archive.
//
// The placement-score dataset is collected through the bin-packed query
// plan (one instance type per query, regions packed so the per-AZ scores
// fit the 10-result response cap), spread across as many accounts as the
// 50-unique-queries-per-24h quota demands. The advisor dataset is scraped
// as one bulk document (the SpotInfo approach) because it has no API. The
// price dataset uses the price endpoint directly.
package collector

import (
	"fmt"
	"log"
	"time"

	"repro/internal/awsapi"
	"repro/internal/binpack"
	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

// Config controls collection cadence and planning.
type Config struct {
	// ScoreInterval is the placement-score collection period. The paper
	// collects every 10 minutes.
	ScoreInterval time.Duration
	// AdvisorInterval is the advisor scrape period.
	AdvisorInterval time.Duration
	// PriceInterval is the spot price sampling period.
	PriceInterval time.Duration
	// TargetCapacity is the instance count used in placement-score queries.
	TargetCapacity int
	// ExactPacking selects the branch-and-bound packer over FFD.
	ExactPacking bool
	// QuotaPerAccount overrides the per-account unique-query quota
	// (defaults to the vendor limit; lower values model shared accounts).
	QuotaPerAccount int
	// StoreAllSamples disables change-deduplication and stores every
	// sample. Only useful for the storage ablation — the archive's
	// semantics are identical either way because the datasets are step
	// functions.
	StoreAllSamples bool
	// CheckpointInterval, when positive and the store is durable,
	// checkpoints the archive (snapshot + WAL compaction) every interval
	// of simulated time, bounding crash-recovery replay to at most one
	// interval of collected data. Zero disables periodic checkpoints.
	CheckpointInterval time.Duration
	// CheckpointAfterBytes, when positive and the store is durable, fires
	// a checkpoint as soon as the WAL has grown past this many record
	// bytes since the last checkpoint, checked after every collection
	// tick. It bounds crash-recovery replay by bytes written rather than
	// wall clock — a write-heavy archive checkpoints more often, an idle
	// one not at all — and composes with CheckpointInterval (whichever
	// trigger fires first wins; the byte counter resets on every
	// committed checkpoint either way). Zero disables the size trigger.
	//
	// Deprecated shim: when the store was opened with its own
	// tsdb.Options.CheckpointAfterBytes (it self-maintains), the
	// collector stands down and leaves the size trigger to the store's
	// maintenance daemon — setting both does not double-fire. Prefer the
	// store option: it also covers non-collector writers such as bulk
	// snapshot restores.
	CheckpointAfterBytes int64
}

// DefaultConfig returns the paper's collection configuration.
func DefaultConfig() Config {
	return Config{
		ScoreInterval:   10 * time.Minute,
		AdvisorInterval: 10 * time.Minute,
		PriceInterval:   10 * time.Minute,
		TargetCapacity:  1,
		ExactPacking:    false,
		QuotaPerAccount: awsapi.MaxUniqueQueriesPer24h,
	}
}

// Stats are cumulative collection counters. The maintenance fields
// mirror the store's own counters (tsdb.MaintenanceStats) so one Stats
// read reports every checkpoint source: collector-driven (Checkpoints,
// SizeCheckpoints, CheckpointErrors) and store-driven
// (MaintenanceCheckpoints split by trigger, with MaintenanceErrors
// counting the store's failed attempts — a climbing value means the
// replay tail is not actually being bounded).
type Stats struct {
	ScoreTicks             int
	AdvisorTicks           int
	PriceTicks             int
	QueriesIssued          int
	PointsStored           int
	QueryErrors            int
	Checkpoints            int
	SizeCheckpoints        int
	CheckpointErrors       int
	MaintenanceCheckpoints uint64
	ForcedByBytes          uint64
	ForcedByChainLength    uint64
	MaintenanceErrors      uint64
}

// Collector drives the periodic collection tasks.
type Collector struct {
	cloud *cloudsim.Cloud
	db    *tsdb.DB
	cfg   Config

	plan    binpack.Plan
	clients []*awsapi.Client
	// owner[i] is the index of the client that owns plan.Queries[i].
	owner []int

	stats Stats

	tickers []*simclock.Ticker
}

// New builds a collector: it computes the optimized query plan for the
// cloud's catalog and provisions one API client per account the plan needs.
func New(cloud *cloudsim.Cloud, db *tsdb.DB, cfg Config) (*Collector, error) {
	if cfg.ScoreInterval <= 0 || cfg.AdvisorInterval <= 0 || cfg.PriceInterval <= 0 {
		return nil, fmt.Errorf("collector: non-positive collection interval")
	}
	if cfg.TargetCapacity <= 0 {
		return nil, fmt.Errorf("collector: target capacity must be positive")
	}
	if cfg.QuotaPerAccount <= 0 || cfg.QuotaPerAccount > awsapi.MaxUniqueQueriesPer24h {
		return nil, fmt.Errorf("collector: quota per account must be in 1..%d", awsapi.MaxUniqueQueriesPer24h)
	}
	plan, err := binpack.PlanScoreQueries(cloud.Catalog(), awsapi.MaxReturnedScores, cfg.ExactPacking)
	if err != nil {
		return nil, fmt.Errorf("collector: planning queries: %w", err)
	}
	c := &Collector{cloud: cloud, db: db, cfg: cfg, plan: plan}
	accounts := plan.AccountsNeeded(cfg.QuotaPerAccount)
	for i := 0; i < accounts; i++ {
		c.clients = append(c.clients, awsapi.NewClient(cloud, fmt.Sprintf("spotlake-%03d", i)))
	}
	c.owner = make([]int, len(plan.Queries))
	for i := range plan.Queries {
		c.owner[i] = i / cfg.QuotaPerAccount
	}
	return c, nil
}

// Plan returns the optimized query plan in use.
func (c *Collector) Plan() binpack.Plan { return c.plan }

// Accounts returns the number of provisioned accounts.
func (c *Collector) Accounts() int { return len(c.clients) }

// Stats returns the cumulative counters, folding in the store's own
// maintenance counters.
func (c *Collector) Stats() Stats {
	st := c.stats
	m := c.db.MaintenanceStats()
	st.MaintenanceCheckpoints = m.Checkpoints
	st.ForcedByBytes = m.ForcedByBytes
	st.ForcedByChainLength = m.ForcedByChainLength
	st.MaintenanceErrors = m.Errors
	return st
}

// flush stores one tick's batch of points. Batching lets the store group
// the entries by shard and take each shard lock once per tick instead of
// once per point (dedup per AppendIfChanged unless StoreAllSamples).
// After the batch lands, the size-based checkpoint trigger runs: ticks
// are the natural trigger points because they are the only writers, so
// the WAL can only cross the threshold here.
func (c *Collector) flush(entries []tsdb.Entry) (int, error) {
	var (
		n   int
		err error
	)
	if c.cfg.StoreAllSamples {
		n, err = c.db.AppendBatch(entries)
	} else {
		n, err = c.db.AppendBatchIfChanged(entries)
	}
	c.maybeCheckpointBySize()
	return n, err
}

// maybeCheckpointBySize checkpoints the archive when the WAL has grown
// past CheckpointAfterBytes since the last checkpoint. When the store
// carries its own byte threshold (tsdb.Options.CheckpointAfterBytes) the
// collector stands down: the store enforces it synchronously on the
// append path — every tick's batch checks it before storing, daemon or
// no daemon — so firing here too would just stack redundant snapshots.
func (c *Collector) maybeCheckpointBySize() {
	if c.cfg.CheckpointAfterBytes <= 0 || !c.db.Durable() {
		return
	}
	if c.db.CheckpointAfterBytes() > 0 {
		return
	}
	if c.db.WALBytesSinceCheckpoint() < uint64(c.cfg.CheckpointAfterBytes) {
		return
	}
	if err := c.db.Checkpoint(); err != nil {
		log.Printf("collector: size-triggered checkpoint failed: %v", err)
		c.stats.CheckpointErrors++
	} else {
		c.stats.SizeCheckpoints++
	}
}

// CollectScoresOnce executes the full placement-score plan once, storing
// per-(type, AZ) scores. Values are deduplicated: a point lands in the
// archive only when the score changed since the previous tick.
func (c *Collector) CollectScoresOnce() error {
	now := c.cloud.Clock().Now()
	c.stats.ScoreTicks++
	var firstErr error
	entries := make([]tsdb.Entry, 0, len(c.plan.Queries)*awsapi.MaxReturnedScores)
	for qi, pq := range c.plan.Queries {
		client := c.clients[c.owner[qi]]
		scores, err := client.GetSpotPlacementScores(awsapi.PlacementScoreQuery{
			InstanceTypes:          []string{pq.InstanceType},
			Regions:                pq.Regions,
			TargetCapacity:         c.cfg.TargetCapacity,
			SingleAvailabilityZone: true,
		})
		c.stats.QueriesIssued++
		if err != nil {
			c.stats.QueryErrors++
			if firstErr == nil {
				firstErr = fmt.Errorf("collector: query %d (%s): %w", qi, pq.InstanceType, err)
			}
			continue
		}
		for _, s := range scores {
			entries = append(entries, tsdb.Entry{
				Key: tsdb.SeriesKey{
					Dataset: tsdb.DatasetPlacementScore,
					Type:    pq.InstanceType,
					Region:  s.Region,
					AZ:      s.AZ,
				},
				At:    now,
				Value: float64(s.Score),
			})
		}
	}
	stored, err := c.flush(entries)
	c.stats.PointsStored += stored
	if err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// CollectAdvisorOnce scrapes the advisor document once, storing the
// interruption-free score (the paper's 1.0-3.0 conversion of the bucket)
// and the savings percentage per (type, region).
func (c *Collector) CollectAdvisorOnce() error {
	now := c.cloud.Clock().Now()
	c.stats.AdvisorTicks++
	doc := awsapi.FetchAdvisorDocument(c.cloud)
	entries := make([]tsdb.Entry, 0, 2*len(doc.Entries))
	for _, e := range doc.Entries {
		entries = append(entries,
			tsdb.Entry{
				Key:   tsdb.SeriesKey{Dataset: tsdb.DatasetInterruptFree, Type: e.Type, Region: e.Region},
				At:    now,
				Value: e.Bucket.InterruptionFreeScore(),
			},
			tsdb.Entry{
				Key:   tsdb.SeriesKey{Dataset: tsdb.DatasetSavings, Type: e.Type, Region: e.Region},
				At:    now,
				Value: float64(e.SavingsPct),
			})
	}
	stored, err := c.flush(entries)
	c.stats.PointsStored += stored
	return err
}

// CollectPricesOnce samples the current spot price of every pool.
func (c *Collector) CollectPricesOnce() error {
	now := c.cloud.Clock().Now()
	c.stats.PriceTicks++
	client := c.clients[0]
	var firstErr error
	pools := c.cloud.Catalog().Pools()
	entries := make([]tsdb.Entry, 0, len(pools))
	for _, p := range pools {
		price, err := client.CurrentSpotPrice(p.Type, p.AZ)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		entries = append(entries, tsdb.Entry{
			Key:   tsdb.SeriesKey{Dataset: tsdb.DatasetPrice, Type: p.Type, Region: p.Region, AZ: p.AZ},
			At:    now,
			Value: price,
		})
	}
	stored, err := c.flush(entries)
	c.stats.PointsStored += stored
	if err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Start registers the periodic collection tasks on the simulation clock and
// performs one immediate collection of each dataset so the archive is never
// empty. Collection continues until Stop.
func (c *Collector) Start() error {
	if err := c.CollectScoresOnce(); err != nil {
		return err
	}
	if err := c.CollectAdvisorOnce(); err != nil {
		return err
	}
	if err := c.CollectPricesOnce(); err != nil {
		return err
	}
	clk := c.cloud.Clock()
	c.tickers = append(c.tickers,
		clk.SchedulePeriodic(c.cfg.ScoreInterval, func(time.Time) bool {
			_ = c.CollectScoresOnce() // per-tick errors are counted in stats
			return true
		}),
		clk.SchedulePeriodic(c.cfg.AdvisorInterval, func(time.Time) bool {
			_ = c.CollectAdvisorOnce()
			return true
		}),
		clk.SchedulePeriodic(c.cfg.PriceInterval, func(time.Time) bool {
			_ = c.CollectPricesOnce()
			return true
		}),
	)
	if c.cfg.CheckpointInterval > 0 && c.db.Durable() {
		c.tickers = append(c.tickers,
			clk.SchedulePeriodic(c.cfg.CheckpointInterval, func(time.Time) bool {
				if err := c.db.Checkpoint(); err != nil {
					// Surface persistent failures (disk full, permissions)
					// immediately: every miss grows the WAL tails and with
					// them the next restart's replay time.
					log.Printf("collector: periodic checkpoint failed: %v", err)
					c.stats.CheckpointErrors++
				} else {
					c.stats.Checkpoints++
				}
				return true
			}),
		)
	}
	return nil
}

// Stop cancels the periodic collection tasks.
func (c *Collector) Stop() {
	for _, t := range c.tickers {
		t.Stop()
	}
	c.tickers = nil
}

// Run is a convenience for batch use: Start, advance the simulation by d,
// then Stop.
func (c *Collector) Run(d time.Duration) error {
	if err := c.Start(); err != nil {
		return err
	}
	c.cloud.Clock().RunFor(d)
	c.Stop()
	return nil
}
