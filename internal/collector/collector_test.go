package collector

import (
	"testing"
	"time"

	"repro/internal/awsapi"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func testSetup(t *testing.T, seed uint64) (*Collector, *cloudsim.Cloud, *tsdb.DB, *catalog.Catalog) {
	t.Helper()
	cat := catalog.Compact(2)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, seed, cloudsim.DefaultParams())
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	col, err := New(cloud, db, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return col, cloud, db, cat
}

func TestNewValidatesConfig(t *testing.T) {
	cat := catalog.Compact(2)
	cloud := cloudsim.New(cat, simclock.NewAtEpoch(), 1, cloudsim.DefaultParams())
	db, _ := tsdb.Open("")
	bad := []Config{
		{ScoreInterval: 0, AdvisorInterval: time.Minute, PriceInterval: time.Minute, TargetCapacity: 1, QuotaPerAccount: 50},
		{ScoreInterval: time.Minute, AdvisorInterval: time.Minute, PriceInterval: time.Minute, TargetCapacity: 0, QuotaPerAccount: 50},
		{ScoreInterval: time.Minute, AdvisorInterval: time.Minute, PriceInterval: time.Minute, TargetCapacity: 1, QuotaPerAccount: 0},
		{ScoreInterval: time.Minute, AdvisorInterval: time.Minute, PriceInterval: time.Minute, TargetCapacity: 1, QuotaPerAccount: 99},
	}
	for i, cfg := range bad {
		if _, err := New(cloud, db, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAccountProvisioningMatchesPlan(t *testing.T) {
	col, _, _, _ := testSetup(t, 1)
	wantAccounts := col.Plan().AccountsNeeded(awsapi.MaxUniqueQueriesPer24h)
	if col.Accounts() != wantAccounts {
		t.Errorf("accounts = %d, want %d", col.Accounts(), wantAccounts)
	}
	if wantAccounts < 2 {
		t.Skipf("compact plan fits one account (%d queries)", len(col.Plan().Queries))
	}
}

func TestCollectScoresCoversAllPools(t *testing.T) {
	col, _, db, cat := testSetup(t, 2)
	if err := col.CollectScoresOnce(); err != nil {
		t.Fatal(err)
	}
	keys := db.Keys(tsdb.KeyFilter{Dataset: tsdb.DatasetPlacementScore})
	if len(keys) != len(cat.Pools()) {
		t.Errorf("score series = %d, want one per pool %d", len(keys), len(cat.Pools()))
	}
	for _, k := range keys[:10] {
		p, ok := noerr2(db.Last(k))
		if !ok {
			t.Fatalf("series %v empty", k)
		}
		if p.Value < 1 || p.Value > 3 {
			t.Errorf("score %v out of range for %v", p.Value, k)
		}
	}
}

func TestCollectAdvisorCoversTypeRegions(t *testing.T) {
	col, _, db, cat := testSetup(t, 3)
	if err := col.CollectAdvisorOnce(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tp := range cat.Types() {
		want += len(cat.SupportedRegions(tp.Name))
	}
	ifKeys := db.Keys(tsdb.KeyFilter{Dataset: tsdb.DatasetInterruptFree})
	if len(ifKeys) != want {
		t.Errorf("IF series = %d, want %d", len(ifKeys), want)
	}
	savKeys := db.Keys(tsdb.KeyFilter{Dataset: tsdb.DatasetSavings})
	if len(savKeys) != want {
		t.Errorf("savings series = %d, want %d", len(savKeys), want)
	}
	for _, k := range ifKeys[:5] {
		if k.AZ != "" {
			t.Error("advisor series should be region-granular (no AZ)")
		}
		p, _ := noerr2(db.Last(k))
		if p.Value < 1.0 || p.Value > 3.0 {
			t.Errorf("IF score %v out of range", p.Value)
		}
	}
}

func TestCollectPricesCoversPools(t *testing.T) {
	col, _, db, cat := testSetup(t, 4)
	if err := col.CollectPricesOnce(); err != nil {
		t.Fatal(err)
	}
	keys := db.Keys(tsdb.KeyFilter{Dataset: tsdb.DatasetPrice})
	if len(keys) != len(cat.Pools()) {
		t.Errorf("price series = %d, want %d", len(keys), len(cat.Pools()))
	}
	for _, k := range keys[:10] {
		p, _ := noerr2(db.Last(k))
		od, _ := cat.OnDemandPrice(k.Type, k.Region)
		if p.Value <= 0 || p.Value >= od {
			t.Errorf("price %v outside (0, od) for %v", p.Value, k)
		}
	}
}

func TestPeriodicCollectionDedupes(t *testing.T) {
	col, cloud, db, _ := testSetup(t, 5)
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	cloud.Clock().RunFor(6 * time.Hour)
	col.Stop()
	st := col.Stats()
	if st.ScoreTicks != 37 { // 1 immediate + 36 periodic
		t.Errorf("score ticks = %d, want 37", st.ScoreTicks)
	}
	// Dedup: stored points must be far fewer than samples taken.
	samples := st.ScoreTicks * len(db.Keys(tsdb.KeyFilter{Dataset: tsdb.DatasetPlacementScore}))
	if st.PointsStored >= samples/2 {
		t.Errorf("stored %d of %d samples; dedup ineffective", st.PointsStored, samples)
	}
	// After Stop, no more collection happens.
	before := col.Stats().ScoreTicks
	cloud.Clock().RunFor(time.Hour)
	if col.Stats().ScoreTicks != before {
		t.Error("collection continued after Stop")
	}
}

func TestQuotaNeverExceededOverLongRun(t *testing.T) {
	col, cloud, _, _ := testSetup(t, 6)
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	cloud.Clock().RunFor(30 * time.Hour) // crosses the 24h quota window
	col.Stop()
	if e := col.Stats().QueryErrors; e != 0 {
		t.Errorf("%d query errors over 30h; plan must respect per-account quotas", e)
	}
}

func TestScoresChangeOverTime(t *testing.T) {
	col, cloud, db, _ := testSetup(t, 7)
	if err := col.Start(); err != nil {
		t.Fatal(err)
	}
	cloud.Clock().RunFor(5 * 24 * time.Hour)
	col.Stop()
	changed := 0
	for _, k := range db.Keys(tsdb.KeyFilter{Dataset: tsdb.DatasetPlacementScore}) {
		if len(noerr(db.ChangeIntervals(k))) > 0 {
			changed++
		}
	}
	if changed == 0 {
		t.Error("no placement score changed over 5 days; dynamics dead")
	}
}

func TestRunConvenience(t *testing.T) {
	col, cloud, db, _ := testSetup(t, 8)
	start := cloud.Clock().Now()
	if err := col.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := cloud.Clock().Now().Sub(start); got != 2*time.Hour {
		t.Errorf("Run advanced %v, want 2h", got)
	}
	if db.PointCount() == 0 {
		t.Error("Run stored nothing")
	}
}
