package collector

// noerr and noerr2 unwrap the error of a read-API call in tests whose
// store cannot fail the read (memory-only, or intact block files),
// panicking otherwise so an unexpected failure still surfaces with a
// stack instead of being silently discarded.
func noerr[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func noerr2[A, B any](a A, b B, err error) (A, B) {
	if err != nil {
		panic(err)
	}
	return a, b
}
