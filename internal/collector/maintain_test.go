package collector

// Tests the deprecation shim around the size-based checkpoint trigger:
// when the store is opened with its own tsdb.Options.CheckpointAfterBytes
// (it self-maintains), the collector's identical config stands down and
// the store's maintenance daemon fires the checkpoints instead — setting
// both never double-fires.

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func TestCollectorStandsDownForSelfMaintainingStore(t *testing.T) {
	dir := t.TempDir()
	cat := catalog.Compact(2)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 11, cloudsim.DefaultParams())
	const threshold = 16 << 10
	db, err := tsdb.OpenWithOptions(dir, tsdb.Options{
		RotateBytes:          4096,
		CheckpointAfterBytes: threshold,
		MaintenanceInterval:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cfg := DefaultConfig()
	cfg.CheckpointInterval = 0
	cfg.CheckpointAfterBytes = threshold // old config, same threshold: must stand down
	col, err := New(cloud, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Run(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	// The daemon owns the trigger now: give it a poll or two to drain
	// whatever tail the run's last ticks left above the threshold.
	deadline := time.Now().Add(5 * time.Second)
	for db.WALBytesSinceCheckpoint() >= threshold && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	st := col.Stats()
	if st.SizeCheckpoints != 0 {
		t.Fatalf("collector fired %d size checkpoints against a self-maintaining store", st.SizeCheckpoints)
	}
	if st.MaintenanceCheckpoints == 0 {
		t.Fatalf("store maintenance never checkpointed: %+v (wal tail %d)", st, db.WALBytesSinceCheckpoint())
	}
	if tail := db.WALBytesSinceCheckpoint(); tail >= threshold {
		t.Fatalf("WAL tail still %d bytes (threshold %d) after the daemon had time to run", tail, threshold)
	}
}

// TestStoreByteTriggerHoldsWithoutDaemon pins the byte bound for
// simulated-time batch runs: with the daemon disabled (and it being
// wall-clock anyway, useless against a writer compressing months into
// seconds), the store's append-path enforcement alone must keep the
// replay tail bounded by the threshold plus one tick — the bound PR 3's
// collector-side trigger gave — while the collector stays stood down.
func TestStoreByteTriggerHoldsWithoutDaemon(t *testing.T) {
	dir := t.TempDir()
	cat := catalog.Compact(2)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 11, cloudsim.DefaultParams())
	const threshold = 16 << 10
	db, err := tsdb.OpenWithOptions(dir, tsdb.Options{
		RotateBytes:          4096,
		CheckpointAfterBytes: threshold,
		MaintenanceInterval:  -1, // daemon off: the store option is inert
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	cfg := DefaultConfig()
	cfg.CheckpointInterval = 0
	cfg.CheckpointAfterBytes = threshold
	col, err := New(cloud, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Run(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	st := col.Stats()
	if st.SizeCheckpoints != 0 {
		t.Fatalf("collector fired %d size checkpoints against a store that owns the byte trigger", st.SizeCheckpoints)
	}
	if m := db.MaintenanceStats(); m.ForcedByBytes == 0 {
		t.Fatalf("append-path byte trigger never fired with the daemon disabled: %+v", m)
	}
	// The append path checks the threshold before every tick's batch, so
	// the tail is bounded by threshold + one tick's worth of overshoot —
	// the same bound the collector-side trigger used to give.
	if tail := db.WALBytesSinceCheckpoint(); tail >= 2*threshold {
		t.Fatalf("WAL tail is %d bytes after the run, want < 2x the %d-byte threshold", tail, threshold)
	}
}
