package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestStreamIndependence(t *testing.T) {
	root := New(99)
	s1 := root.Stream("alpha")
	s2 := root.Stream("beta")
	s1b := root.Stream("alpha")
	if s1.Uint64() != s1b.Uint64() {
		t.Error("same-label streams must be identical")
	}
	if s1.Uint64() == s2.Uint64() {
		t.Error("distinct-label streams should differ")
	}
	// Deriving streams must not perturb the parent.
	before := *root
	root.Stream("gamma")
	if before.state != root.state {
		t.Error("Stream perturbed parent state")
	}
}

func TestStreamNDistinct(t *testing.T) {
	root := New(5)
	seen := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		v := root.StreamN("req", i).Uint64()
		if seen[v] {
			t.Fatalf("StreamN collision at %d", i)
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	f := func(_ int) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-2) > 0.03 {
		t.Errorf("normal mean = %v, want ~2", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(19)
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(4)
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-4) > 0.08 {
		t.Errorf("exponential mean = %v, want ~4", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(0) should panic")
		}
	}()
	New(1).Exponential(0)
}

func TestPoissonMean(t *testing.T) {
	r := New(23)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if New(1).Poisson(-1) != 0 {
		t.Error("Poisson of negative mean should be 0")
	}
}

func TestOUStepStationary(t *testing.T) {
	// Long-run OU samples must match the stationary distribution
	// N(mu, sigma^2/(2 theta)).
	r := New(29)
	theta, sigma, mu := 0.5, 0.8, 3.0
	x := mu
	n := 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x = r.OUStep(x, mu, theta, sigma, 0.7)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	wantSD := sigma / math.Sqrt(2*theta)
	if math.Abs(mean-mu) > 0.05 {
		t.Errorf("OU mean = %v, want ~%v", mean, mu)
	}
	if math.Abs(sd-wantSD) > 0.05 {
		t.Errorf("OU stddev = %v, want ~%v", sd, wantSD)
	}
}

func TestOUStepZeroDT(t *testing.T) {
	r := New(31)
	if got := r.OUStep(1.5, 0, 1, 1, 0); got != 1.5 {
		t.Errorf("OUStep with dt=0 = %v, want unchanged 1.5", got)
	}
}

func TestOUStepMeanReversion(t *testing.T) {
	// Starting far from the mean, the expected value after dt must contract
	// by exp(-theta dt). Average many one-step samples.
	r := New(37)
	theta := 1.0
	start, mu, dt := 10.0, 0.0, 0.5
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.OUStep(start, mu, theta, 0.5, dt)
	}
	want := start * math.Exp(-theta*dt)
	if got := sum / float64(n); math.Abs(got-want) > 0.05 {
		t.Errorf("OU one-step mean = %v, want ~%v", got, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(43)
	s := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 28 {
		t.Errorf("shuffle changed element multiset, sum=%d", sum)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(47)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(53)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight option picked %d times", counts[1])
	}
	frac0 := float64(counts[0]) / float64(n)
	if math.Abs(frac0-0.25) > 0.01 {
		t.Errorf("Pick weight-1 frequency = %v, want ~0.25", frac0)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(59)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[r.Zipf(10, 1.2)]++
	}
	if !(counts[0] > counts[4] && counts[4] > counts[9]) {
		t.Errorf("Zipf counts not decreasing: %v", counts)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(61)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(0, 1) <= 0 {
			t.Fatal("lognormal variate not positive")
		}
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(67)
	for i := 0; i < 1000; i++ {
		v := r.Range(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Range(2,5) = %v", v)
		}
	}
}
