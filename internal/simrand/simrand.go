// Package simrand provides a deterministic, splittable pseudo-random number
// generator and the distribution samplers used throughout the simulator.
//
// Every stochastic component of the reproduction derives its randomness from
// a seed plus a stable string label, so that any experiment is exactly
// reproducible regardless of the order in which subsystems consume random
// numbers. The core generator is SplitMix64 (Steele, Lea, Flood 2014), which
// is small, fast, and passes BigCrush when used as a 64-bit stream.
package simrand

import (
	"math"
)

// splitmix64 advances the state and returns the next 64-bit output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic pseudo-random number generator. The zero value is
// a valid generator seeded with 0; prefer New or (*Rand).Stream to obtain
// independent generators.
type Rand struct {
	state uint64
	// cached second normal variate from the Box-Muller transform
	haveGauss bool
	gauss     float64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	// Scramble the raw seed once so that adjacent seeds produce unrelated
	// streams.
	s := seed
	splitmix64(&s)
	return &Rand{state: s}
}

// hashLabel folds a string into a 64-bit value using FNV-1a. It is used to
// derive independent substreams from stable names.
func hashLabel(label string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return h
}

// Stream derives an independent generator from r's seed and the given label.
// Streams with distinct labels are statistically independent, and deriving a
// stream does not perturb r. This is the mechanism that keeps per-pool
// processes reproducible no matter the evaluation order.
func (r *Rand) Stream(label string) *Rand {
	s := r.state ^ hashLabel(label)
	splitmix64(&s) // decorrelate from the parent state
	return &Rand{state: s}
}

// StreamN derives an independent generator from r's seed, a label and an
// integer discriminator (e.g. a shard or replica index).
func (r *Rand) StreamN(label string, n int) *Rand {
	s := r.state ^ hashLabel(label) ^ (uint64(n)+1)*0x9e3779b97f4a7c15
	splitmix64(&s)
	return &Rand{state: s}
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	return splitmix64(&r.state)
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// the simple modulo of a 64-bit value has negligible bias for the small
	// bounds used here and keeps the generator easy to verify.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 random mantissa bits.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform (with caching of the paired variate).
func (r *Rand) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exponential returns an exponential variate with the given mean.
// It panics if mean <= 0.
func (r *Rand) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("simrand: Exponential called with mean <= 0")
	}
	return mean * r.ExpFloat64()
}

// LogNormal returns a log-normal variate where the underlying normal has
// parameters mu and sigma.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Zipf returns a value in [0, n) following a Zipf distribution with exponent
// s > 1 is not required; s = 0 degenerates to uniform. Sampling is by
// inversion over the precomputed-free harmonic approximation, adequate for
// the catalog-popularity use cases here (n <= a few thousand).
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("simrand: Zipf called with n <= 0")
	}
	if n == 1 {
		return 0
	}
	// Rejection-free inverse CDF by linear scan is O(n); the simulator only
	// samples Zipf during catalog construction, so simplicity wins.
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
	}
	u := r.Float64() * total
	acc := 0.0
	for i := 1; i <= n; i++ {
		acc += 1 / math.Pow(float64(i), s)
		if u < acc {
			return i - 1
		}
	}
	return n - 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// OUStep advances an Ornstein-Uhlenbeck process from value x over an elapsed
// time dt (in arbitrary but consistent units) using the exact discretization
//
//	x' = mu + (x-mu) e^{-theta dt} + sigma sqrt((1-e^{-2 theta dt})/(2 theta)) N(0,1)
//
// theta is the mean-reversion rate and sigma the diffusion coefficient. The
// exact solution lets the simulator advance pool state lazily across
// arbitrary gaps without accumulating integration error.
func (r *Rand) OUStep(x, mu, theta, sigma, dt float64) float64 {
	if dt <= 0 {
		return x
	}
	e := math.Exp(-theta * dt)
	variance := sigma * sigma * (1 - e*e) / (2 * theta)
	return mu + (x-mu)*e + math.Sqrt(variance)*r.NormFloat64()
}

// Poisson returns a Poisson variate with the given mean using Knuth's
// algorithm for small means and a normal approximation for large ones.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation with continuity correction.
		v := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Pick returns a pseudo-random element index weighted by the non-negative
// weights. It panics if weights is empty or sums to <= 0.
func (r *Rand) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("simrand: Pick called with negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("simrand: Pick called with no positive weights")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
