// Package azuresim simulates Microsoft Azure's Spot Virtual Machines data
// surface for the paper's Section 7 multi-vendor extension.
//
// Azure's public spot datasets differ from AWS's in exactly the ways the
// paper describes: the current spot price is available programmatically
// (via the Retail Prices API), while the eviction-rate dataset — Azure's
// counterpart to the AWS advisor — is exposed only on the web portal, as
// categorical bands per (VM size, region), with no history and no
// placement-score equivalent at all. The simulator reproduces that
// asymmetric surface over its own VM-size catalog and region set.
package azuresim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/simclock"
	"repro/internal/simrand"
)

// Vendor is the vendor tag used in multi-vendor archives.
const Vendor = "azure"

// EvictionBand is Azure's categorical eviction rate, published on the
// portal as one of five bands.
type EvictionBand int

// Azure's published eviction-rate bands.
const (
	Evict0to5 EvictionBand = iota
	Evict5to10
	Evict10to15
	Evict15to20
	Evict20plus
)

// String returns the portal label.
func (b EvictionBand) String() string {
	switch b {
	case Evict0to5:
		return "0-5%"
	case Evict5to10:
		return "5-10%"
	case Evict10to15:
		return "10-15%"
	case Evict15to20:
		return "15-20%"
	case Evict20plus:
		return "20+%"
	}
	return fmt.Sprintf("EvictionBand(%d)", int(b))
}

// Score converts the band to the paper's 3.0..1.0 stability scale so
// cross-vendor analyses can use one unit (Section 7's "global key" idea
// applied to values).
func (b EvictionBand) Score() float64 { return 3.0 - 0.5*float64(b) }

// VMSize is one Azure VM size (the instance-type equivalent).
type VMSize struct {
	Name      string
	Family    string // e.g. "Dsv3"
	VCPU      int
	MemoryGiB float64
	// PAYGUSD is the pay-as-you-go hourly price in the baseline region.
	PAYGUSD float64
	// GPU marks accelerated sizes (scarcer, churnier — same hierarchy the
	// paper finds on AWS).
	GPU bool
}

// Regions available in the simulated Azure.
var regions = []string{
	"eastus", "eastus2", "westus2", "centralus", "northeurope",
	"westeurope", "uksouth", "southeastasia", "japaneast", "australiaeast",
}

// sizes is the simulated VM size catalog.
func sizeCatalog() []VMSize {
	mk := func(family string, vcpus []int, perVCPUMem float64, perVCPUPrice float64, gpu bool) []VMSize {
		var out []VMSize
		for _, v := range vcpus {
			out = append(out, VMSize{
				Name:      fmt.Sprintf("Standard_%s%d", family, v),
				Family:    family,
				VCPU:      v,
				MemoryGiB: float64(v) * perVCPUMem,
				PAYGUSD:   float64(v) * perVCPUPrice,
				GPU:       gpu,
			})
		}
		return out
	}
	var all []VMSize
	all = append(all, mk("D", []int{2, 4, 8, 16, 32, 48, 64}, 4, 0.048, false)...)     // general
	all = append(all, mk("Ds", []int{2, 4, 8, 16, 32, 64}, 4, 0.051, false)...)        // general + ssd
	all = append(all, mk("E", []int{2, 4, 8, 16, 32, 48, 64}, 8, 0.063, false)...)     // memory
	all = append(all, mk("F", []int{2, 4, 8, 16, 32, 48, 64, 72}, 2, 0.042, false)...) // compute
	all = append(all, mk("B", []int{1, 2, 4, 8, 12, 16, 20}, 4, 0.021, false)...)      // burstable
	all = append(all, mk("L", []int{8, 16, 32, 48, 64, 80}, 8, 0.078, false)...)       // storage
	all = append(all, mk("NC", []int{6, 12, 24}, 9.33, 0.15, true)...)                 // GPU (K80/T4)
	all = append(all, mk("ND", []int{6, 12, 24, 40}, 18.7, 0.33, true)...)             // GPU (P40/A100)
	all = append(all, mk("NV", []int{6, 12, 24, 48}, 9.33, 0.19, true)...)             // GPU viz
	return all
}

// poolState is the latent state of one (size, region).
type poolState struct {
	rng *simrand.Rand

	evictXi   float64 // churn latent; higher = worse
	evictLast time.Time
	band      EvictionBand
	bandAt    time.Time // last portal refresh

	priceLatent float64
	priceLast   time.Time
	pubFrac     float64
	priceInit   bool
}

// Cloud is the simulated Azure spot surface.
type Cloud struct {
	clk   *simclock.Clock
	root  *simrand.Rand
	sizes []VMSize
	byN   map[string]*VMSize
	pools map[[2]string]*poolState // (size, region)
}

// New builds the simulated Azure from a seed.
func New(clk *simclock.Clock, seed uint64) *Cloud {
	c := &Cloud{
		clk:   clk,
		root:  simrand.New(seed).Stream("azure"),
		sizes: sizeCatalog(),
		byN:   make(map[string]*VMSize),
		pools: make(map[[2]string]*poolState),
	}
	for i := range c.sizes {
		c.byN[c.sizes[i].Name] = &c.sizes[i]
	}
	return c
}

// Sizes returns the VM size catalog.
func (c *Cloud) Sizes() []VMSize { return c.sizes }

// Regions returns the region list.
func (c *Cloud) Regions() []string { return append([]string(nil), regions...) }

// Size returns a VM size by name.
func (c *Cloud) Size(name string) (VMSize, bool) {
	s, ok := c.byN[name]
	if !ok {
		return VMSize{}, false
	}
	return *s, true
}

const (
	// evictionRefresh is the portal's dataset refresh cadence.
	evictionRefresh = 24 * time.Hour
	// churn dynamics: slow OU, like the AWS advisor's monthly window.
	churnTheta = 1.0 / (18 * 24) // per hour
	churnSigma = 1.0
	// price dynamics: Azure spot prices move sluggishly.
	priceTheta   = 1.0 / (14 * 24)
	priceBase    = 0.12 // spot price floor as a fraction of PAYG
	priceSpan    = 0.38
	publishDelta = 0.04
)

func (c *Cloud) pool(size, region string) (*poolState, error) {
	sz, ok := c.byN[size]
	if !ok {
		return nil, fmt.Errorf("azuresim: unknown VM size %q", size)
	}
	valid := false
	for _, r := range regions {
		if r == region {
			valid = true
			break
		}
	}
	if !valid {
		return nil, fmt.Errorf("azuresim: unknown region %q", region)
	}
	k := [2]string{size, region}
	p, ok := c.pools[k]
	now := c.clk.Now()
	if !ok {
		rng := c.root.Stream("pool/" + size + "/" + region)
		p = &poolState{rng: rng}
		mean := c.churnMean(sz)
		p.evictXi = rng.Normal(mean, churnSigma)
		p.evictLast = now
		p.band = bandOf(p.evictXi)
		p.bandAt = now
		p.priceLatent = rng.NormFloat64()
		p.priceLast = now
		c.pools[k] = p
	}
	c.advance(p, sz, now)
	return p, nil
}

// churnMean sets the stationary churn per size: GPU sizes and very large
// sizes evict more, mirroring the AWS hierarchy.
func (c *Cloud) churnMean(sz *VMSize) float64 {
	m := -1.1
	if sz.GPU {
		m = 0.5
	}
	m += 0.18 * math.Log2(float64(sz.VCPU)/4)
	return m
}

func (c *Cloud) advance(p *poolState, sz *VMSize, now time.Time) {
	if now.After(p.evictLast) {
		dtH := now.Sub(p.evictLast).Hours()
		sigmaDiff := churnSigma * math.Sqrt(2*churnTheta)
		p.evictXi = p.rng.OUStep(p.evictXi, c.churnMean(sz), churnTheta, sigmaDiff, dtH)
		p.evictLast = now
	}
	// Portal refresh: the published band only moves on the daily refresh.
	for !p.bandAt.Add(evictionRefresh).After(now) {
		p.bandAt = p.bandAt.Add(evictionRefresh)
		p.band = bandOf(p.evictXi)
	}
	if now.After(p.priceLast) {
		dtH := now.Sub(p.priceLast).Hours()
		sigmaDiff := 1.0 * math.Sqrt(2*priceTheta)
		p.priceLatent = p.rng.OUStep(p.priceLatent, 0, priceTheta, sigmaDiff, dtH)
		p.priceLast = now
	}
	frac := priceBase + priceSpan*logistic(1.1*p.priceLatent)
	if !p.priceInit || math.Abs(frac-p.pubFrac) > publishDelta {
		p.pubFrac = frac
		p.priceInit = true
	}
}

func bandOf(xi float64) EvictionBand {
	// Map the latent through a logistic to a monthly eviction ratio, then
	// into Azure's bands.
	ratio := 0.32 * logistic(xi)
	switch {
	case ratio < 0.05:
		return Evict0to5
	case ratio < 0.10:
		return Evict5to10
	case ratio < 0.15:
		return Evict10to15
	case ratio < 0.20:
		return Evict15to20
	default:
		return Evict20plus
	}
}

func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// SpotPriceUSD returns the current spot price of (size, region) — the
// programmatic API Azure does provide.
func (c *Cloud) SpotPriceUSD(size, region string) (float64, error) {
	p, err := c.pool(size, region)
	if err != nil {
		return 0, err
	}
	sz := c.byN[size]
	mult := regionPriceMult(region)
	return sz.PAYGUSD * mult * p.pubFrac, nil
}

func regionPriceMult(region string) float64 {
	switch region {
	case "eastus", "eastus2", "centralus":
		return 1.0
	case "westus2", "northeurope":
		return 1.04
	case "westeurope", "uksouth":
		return 1.10
	case "southeastasia", "japaneast":
		return 1.18
	default:
		return 1.14
	}
}

// PortalEntry is one row of the portal's spot dataset: eviction band plus
// savings, the only place Azure exposes eviction information.
type PortalEntry struct {
	Size       string
	Region     string
	Band       EvictionBand
	SavingsPct int
}

// PortalSnapshot scrapes the whole portal dataset (no filtered access, no
// history — Section 7's point about Azure).
func (c *Cloud) PortalSnapshot() ([]PortalEntry, error) {
	var out []PortalEntry
	for i := range c.sizes {
		sz := &c.sizes[i]
		for _, region := range regions {
			p, err := c.pool(sz.Name, region)
			if err != nil {
				return nil, err
			}
			savings := int(math.Round((1 - p.pubFrac) * 100))
			out = append(out, PortalEntry{Size: sz.Name, Region: region, Band: p.band, SavingsPct: savings})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size != out[j].Size {
			return out[i].Size < out[j].Size
		}
		return out[i].Region < out[j].Region
	})
	return out, nil
}
