package azuresim

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestCatalogShape(t *testing.T) {
	c := New(simclock.NewAtEpoch(), 1)
	if len(c.Sizes()) < 40 {
		t.Errorf("only %d VM sizes", len(c.Sizes()))
	}
	if len(c.Regions()) != 10 {
		t.Errorf("regions = %d, want 10", len(c.Regions()))
	}
	gpu := 0
	for _, s := range c.Sizes() {
		if s.VCPU <= 0 || s.MemoryGiB <= 0 || s.PAYGUSD <= 0 {
			t.Errorf("size %s has non-positive specs: %+v", s.Name, s)
		}
		if s.GPU {
			gpu++
		}
	}
	if gpu == 0 {
		t.Error("no GPU sizes")
	}
	if _, ok := c.Size("Standard_D4"); !ok {
		t.Error("Standard_D4 missing")
	}
	if _, ok := c.Size("Standard_Q5000"); ok {
		t.Error("bogus size found")
	}
}

func TestSpotPriceBelowPAYG(t *testing.T) {
	clk := simclock.NewAtEpoch()
	c := New(clk, 2)
	for i := 0; i < 10; i++ {
		clk.RunFor(12 * time.Hour)
		for _, s := range c.Sizes()[:8] {
			for _, r := range c.Regions()[:3] {
				price, err := c.SpotPriceUSD(s.Name, r)
				if err != nil {
					t.Fatal(err)
				}
				if price <= 0 || price >= s.PAYGUSD*regionPriceMult(r) {
					t.Fatalf("spot %v not in (0, payg) for %s/%s", price, s.Name, r)
				}
			}
		}
	}
}

func TestSpotPriceValidation(t *testing.T) {
	c := New(simclock.NewAtEpoch(), 3)
	if _, err := c.SpotPriceUSD("Standard_Q1", "eastus"); err == nil {
		t.Error("unknown size accepted")
	}
	if _, err := c.SpotPriceUSD("Standard_D4", "moonbase-1"); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestPortalSnapshotCoversAllPairs(t *testing.T) {
	c := New(simclock.NewAtEpoch(), 4)
	entries, err := c.PortalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := len(c.Sizes()) * len(c.Regions())
	if len(entries) != want {
		t.Errorf("snapshot has %d entries, want %d", len(entries), want)
	}
	for _, e := range entries[:20] {
		if e.Band < Evict0to5 || e.Band > Evict20plus {
			t.Errorf("band %v out of range", e.Band)
		}
		if e.SavingsPct < 40 || e.SavingsPct > 95 {
			t.Errorf("savings %d%% implausible for Azure spot", e.SavingsPct)
		}
	}
}

func TestGPUSizesEvictMore(t *testing.T) {
	clk := simclock.NewAtEpoch()
	c := New(clk, 5)
	clk.RunFor(24 * time.Hour)
	entries, err := c.PortalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	var gpuSum, cpuSum float64
	var gpuN, cpuN int
	for _, e := range entries {
		s, _ := c.Size(e.Size)
		if s.GPU {
			gpuSum += e.Band.Score()
			gpuN++
		} else {
			cpuSum += e.Band.Score()
			cpuN++
		}
	}
	if gpuSum/float64(gpuN) >= cpuSum/float64(cpuN) {
		t.Errorf("GPU stability %.2f not below CPU %.2f", gpuSum/float64(gpuN), cpuSum/float64(cpuN))
	}
}

func TestBandScoreMapping(t *testing.T) {
	cases := map[EvictionBand]float64{
		Evict0to5: 3.0, Evict5to10: 2.5, Evict10to15: 2.0, Evict15to20: 1.5, Evict20plus: 1.0,
	}
	for b, want := range cases {
		if got := b.Score(); got != want {
			t.Errorf("%v.Score() = %v, want %v", b, got, want)
		}
	}
	if Evict5to10.String() != "5-10%" || Evict20plus.String() != "20+%" {
		t.Error("band labels wrong")
	}
}

func TestBandsChangeOnlyOnPortalRefresh(t *testing.T) {
	clk := simclock.NewAtEpoch()
	c := New(clk, 6)
	size := c.Sizes()[0].Name
	region := c.Regions()[0]
	read := func() EvictionBand {
		p, err := c.pool(size, region)
		if err != nil {
			t.Fatal(err)
		}
		return p.band
	}
	first := read()
	// Within one refresh window the published band cannot move.
	for i := 0; i < 10; i++ {
		clk.RunFor(2 * time.Hour)
		if got := read(); got != first {
			t.Fatalf("band changed %v->%v within the daily portal refresh", first, got)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		clk := simclock.NewAtEpoch()
		c := New(clk, 77)
		var out []float64
		for i := 0; i < 5; i++ {
			clk.RunFor(24 * time.Hour)
			p, err := c.SpotPriceUSD("Standard_E8", "westeurope")
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed azure runs diverged at %d", i)
		}
	}
}
