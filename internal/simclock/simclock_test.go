package simclock

import (
	"testing"
	"time"
)

func TestNowAdvances(t *testing.T) {
	c := NewAtEpoch()
	if !c.Now().Equal(Epoch) {
		t.Fatalf("start = %v, want %v", c.Now(), Epoch)
	}
	c.RunFor(90 * time.Minute)
	if want := Epoch.Add(90 * time.Minute); !c.Now().Equal(want) {
		t.Errorf("after RunFor = %v, want %v", c.Now(), want)
	}
}

func TestEventsFireInOrder(t *testing.T) {
	c := NewAtEpoch()
	var order []int
	c.Schedule(Epoch.Add(3*time.Second), func(time.Time) { order = append(order, 3) })
	c.Schedule(Epoch.Add(1*time.Second), func(time.Time) { order = append(order, 1) })
	c.Schedule(Epoch.Add(2*time.Second), func(time.Time) { order = append(order, 2) })
	c.RunFor(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("firing order = %v", order)
	}
}

func TestEqualTimeEventsFIFO(t *testing.T) {
	c := NewAtEpoch()
	at := Epoch.Add(time.Second)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.Schedule(at, func(time.Time) { order = append(order, i) })
	}
	c.RunFor(2 * time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestClockIsAtEventTimeDuringFire(t *testing.T) {
	c := NewAtEpoch()
	at := Epoch.Add(42 * time.Second)
	var observed time.Time
	c.Schedule(at, func(now time.Time) { observed = c.Now() })
	c.RunFor(time.Minute)
	if !observed.Equal(at) {
		t.Errorf("clock during fire = %v, want %v", observed, at)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	c := NewAtEpoch()
	fired := false
	c.Schedule(Epoch.Add(10*time.Second), func(time.Time) { fired = true })
	c.RunUntil(Epoch.Add(5 * time.Second))
	if fired {
		t.Error("event beyond RunUntil boundary fired")
	}
	if !c.Now().Equal(Epoch.Add(5 * time.Second)) {
		t.Errorf("now = %v", c.Now())
	}
	c.RunUntil(Epoch.Add(10 * time.Second))
	if !fired {
		t.Error("event at boundary should fire (inclusive)")
	}
}

func TestCancel(t *testing.T) {
	c := NewAtEpoch()
	fired := false
	e := c.Schedule(Epoch.Add(time.Second), func(time.Time) { fired = true })
	e.Cancel()
	c.RunFor(2 * time.Second)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	c := NewAtEpoch()
	var times []time.Time
	var chain func(now time.Time)
	chain = func(now time.Time) {
		times = append(times, now)
		if len(times) < 3 {
			c.ScheduleAfter(time.Second, chain)
		}
	}
	c.ScheduleAfter(time.Second, chain)
	c.RunFor(10 * time.Second)
	if len(times) != 3 {
		t.Fatalf("chain fired %d times, want 3", len(times))
	}
	if want := Epoch.Add(3 * time.Second); !times[2].Equal(want) {
		t.Errorf("third firing at %v, want %v", times[2], want)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	c := NewAtEpoch()
	c.RunFor(time.Hour)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	c.Schedule(Epoch, func(time.Time) {})
}

func TestRunUntilPastPanics(t *testing.T) {
	c := NewAtEpoch()
	c.RunFor(time.Hour)
	defer func() {
		if recover() == nil {
			t.Error("RunUntil into the past should panic")
		}
	}()
	c.RunUntil(Epoch)
}

func TestPeriodic(t *testing.T) {
	c := NewAtEpoch()
	count := 0
	c.SchedulePeriodic(10*time.Minute, func(time.Time) bool {
		count++
		return true
	})
	c.RunFor(time.Hour)
	if count != 6 {
		t.Errorf("periodic fired %d times in 1h at 10min, want 6", count)
	}
}

func TestPeriodicStopsOnFalse(t *testing.T) {
	c := NewAtEpoch()
	count := 0
	c.SchedulePeriodic(time.Minute, func(time.Time) bool {
		count++
		return count < 3
	})
	c.RunFor(time.Hour)
	if count != 3 {
		t.Errorf("periodic fired %d times, want 3 (stops on false)", count)
	}
}

func TestTickerStop(t *testing.T) {
	c := NewAtEpoch()
	count := 0
	tk := c.SchedulePeriodic(time.Minute, func(time.Time) bool {
		count++
		return true
	})
	c.RunFor(5 * time.Minute)
	tk.Stop()
	c.RunFor(time.Hour)
	if count != 5 {
		t.Errorf("ticker fired %d times, want 5 before Stop", count)
	}
}

func TestDrain(t *testing.T) {
	c := NewAtEpoch()
	fired := 0
	for i := 1; i <= 4; i++ {
		c.ScheduleAfter(time.Duration(i)*time.Hour, func(time.Time) { fired++ })
	}
	c.Drain()
	if fired != 4 {
		t.Errorf("Drain fired %d, want 4", fired)
	}
	if c.Pending() != 0 {
		t.Errorf("Pending after Drain = %d", c.Pending())
	}
}

func TestPendingCount(t *testing.T) {
	c := NewAtEpoch()
	c.ScheduleAfter(time.Hour, func(time.Time) {})
	c.ScheduleAfter(2*time.Hour, func(time.Time) {})
	if c.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", c.Pending())
	}
}
