// Package simclock provides a virtual clock and a discrete-event scheduler.
//
// The entire reproduction runs on simulated time: 181 days of 10-minute
// collection ticks and 24-hour spot request experiments execute in
// milliseconds of wall time. Components receive a *Clock and never consult
// the real time package for the current instant.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. Fire is invoked with the clock already
// advanced to the event's time.
type Event struct {
	at   time.Time
	seq  uint64 // tie-breaker preserving scheduling order at equal times
	fire func(now time.Time)
	// index within the heap, maintained by heap.Interface, -1 once popped.
	index int
	// cancelled events stay in the heap but are skipped when popped.
	cancelled bool
}

// Cancel marks the event so it will not fire. Cancelling an already-fired
// event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// At returns the scheduled time of the event.
func (e *Event) At() time.Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Clock is a virtual clock with an attached discrete-event queue. It is not
// safe for concurrent use; the simulator is single-threaded by design so
// that runs are deterministic.
type Clock struct {
	now    time.Time
	queue  eventQueue
	nextID uint64
}

// Epoch is the default simulation start: the collection period in the paper
// begins January 1, 2022 (Section 5).
var Epoch = time.Date(2022, time.January, 1, 0, 0, 0, 0, time.UTC)

// New returns a clock set to start.
func New(start time.Time) *Clock {
	return &Clock{now: start}
}

// NewAtEpoch returns a clock set to the paper's collection start date.
func NewAtEpoch() *Clock { return New(Epoch) }

// Now returns the current simulated instant.
func (c *Clock) Now() time.Time { return c.now }

// Schedule registers fn to run at time at. Scheduling in the past (or at the
// current instant) panics: that always indicates a bug in simulation logic.
func (c *Clock) Schedule(at time.Time, fn func(now time.Time)) *Event {
	if at.Before(c.now) {
		panic(fmt.Sprintf("simclock: scheduling event at %v before now %v", at, c.now))
	}
	e := &Event{at: at, seq: c.nextID, fire: fn}
	c.nextID++
	heap.Push(&c.queue, e)
	return e
}

// ScheduleAfter registers fn to run after delay d.
func (c *Clock) ScheduleAfter(d time.Duration, fn func(now time.Time)) *Event {
	return c.Schedule(c.now.Add(d), fn)
}

// Ticker is the handle for a periodic schedule created by SchedulePeriodic.
type Ticker struct {
	stopped bool
	current *Event
}

// Stop cancels the periodic schedule from the next firing onward.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.current != nil {
		t.current.Cancel()
	}
}

// SchedulePeriodic registers fn to run every period, starting one period
// from now, until fn returns false or the returned ticker is stopped.
func (c *Clock) SchedulePeriodic(period time.Duration, fn func(now time.Time) bool) *Ticker {
	if period <= 0 {
		panic("simclock: non-positive period")
	}
	t := &Ticker{}
	var tick func(now time.Time)
	tick = func(now time.Time) {
		if t.stopped {
			return
		}
		if !fn(now) {
			t.stopped = true
			return
		}
		t.current = c.Schedule(now.Add(period), tick)
	}
	t.current = c.Schedule(c.now.Add(period), tick)
	return t
}

// Pending reports the number of events (including cancelled ones not yet
// drained) in the queue.
func (c *Clock) Pending() int { return len(c.queue) }

// step pops and fires the earliest event. It reports whether an event fired
// or false when the queue is empty.
func (c *Clock) step(limit time.Time, bounded bool) bool {
	for len(c.queue) > 0 {
		e := c.queue[0]
		if bounded && e.at.After(limit) {
			return false
		}
		heap.Pop(&c.queue)
		if e.cancelled {
			continue
		}
		if e.at.Before(c.now) {
			panic("simclock: event queue time went backwards")
		}
		c.now = e.at
		e.fire(c.now)
		return true
	}
	return false
}

// RunUntil fires every event scheduled up to and including t, then sets the
// clock to t.
func (c *Clock) RunUntil(t time.Time) {
	if t.Before(c.now) {
		panic(fmt.Sprintf("simclock: RunUntil target %v before now %v", t, c.now))
	}
	for c.step(t, true) {
	}
	c.now = t
}

// RunFor advances the clock by d, firing all events along the way.
func (c *Clock) RunFor(d time.Duration) {
	c.RunUntil(c.now.Add(d))
}

// Drain fires every remaining event regardless of time.
func (c *Clock) Drain() {
	for c.step(time.Time{}, false) {
	}
}
