// Package multicloud implements the paper's Section 7 extension: archiving
// spot datasets from multiple cloud vendors in one place, with the shared
// collection timestamp as the global key joining them.
//
// Each vendor exposes a different slice of spot information (AWS: price +
// placement score + advisor; Azure: price API + portal-only eviction rates;
// GCP: portal-only price). The multi-vendor collector runs all of them on
// one simulation clock so every tick lands at the same instant across
// vendors, normalizes categorical stability data onto the paper's 1.0-3.0
// score scale, and stores everything in the same time-series archive under
// vendor-qualified dataset names. Cross-vendor analyses — cheapest offer
// for a compute shape, per-vendor freshness and savings — then become
// simple archive queries.
package multicloud

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/azuresim"
	"repro/internal/catalog"
	"repro/internal/collector"
	"repro/internal/gcpsim"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

// Vendor-qualified dataset names. AWS keeps the unqualified names used by
// the single-vendor SpotLake ("sps", "if", "price", "savings").
const (
	DatasetAzurePrice   = "az-price"
	DatasetAzureEvict   = "az-evict" // stability score, 1.0-3.0
	DatasetAzureSavings = "az-savings"
	DatasetGCPPrice     = "gcp-price"
	DatasetGCPSavings   = "gcp-savings"
)

// AllDatasets lists every dataset a multi-vendor archive may hold.
var AllDatasets = []string{
	tsdb.DatasetPlacementScore, tsdb.DatasetInterruptFree,
	tsdb.DatasetPrice, tsdb.DatasetSavings,
	DatasetAzurePrice, DatasetAzureEvict, DatasetAzureSavings,
	DatasetGCPPrice, DatasetGCPSavings,
}

// Config controls the multi-vendor collection cadence.
type Config struct {
	Interval time.Duration
}

// DefaultConfig matches the paper's 10-minute cadence.
func DefaultConfig() Config { return Config{Interval: 10 * time.Minute} }

// Collector federates per-vendor collection on one clock.
type Collector struct {
	clk *simclock.Clock
	db  *tsdb.DB
	cfg Config

	aws   *collector.Collector // optional
	azure *azuresim.Cloud      // optional
	gcp   *gcpsim.Cloud        // optional

	tickers []*simclock.Ticker

	// Stats counters.
	AzureTicks int
	GCPTicks   int
	Points     int
}

// New builds the federated collector. Any vendor may be nil; at least one
// must be present.
func New(clk *simclock.Clock, db *tsdb.DB, cfg Config, aws *collector.Collector, azure *azuresim.Cloud, gcp *gcpsim.Cloud) (*Collector, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("multicloud: non-positive interval")
	}
	if aws == nil && azure == nil && gcp == nil {
		return nil, fmt.Errorf("multicloud: no vendors configured")
	}
	return &Collector{clk: clk, db: db, cfg: cfg, aws: aws, azure: azure, gcp: gcp}, nil
}

// CollectAzureOnce scrapes the Azure portal dataset and price API.
func (c *Collector) CollectAzureOnce() error {
	if c.azure == nil {
		return nil
	}
	now := c.clk.Now()
	c.AzureTicks++
	entries, err := c.azure.PortalSnapshot()
	if err != nil {
		return err
	}
	batch := make([]tsdb.Entry, 0, 3*len(entries))
	for _, e := range entries {
		batch = append(batch,
			tsdb.Entry{
				Key:   tsdb.SeriesKey{Dataset: DatasetAzureEvict, Type: e.Size, Region: e.Region},
				At:    now,
				Value: e.Band.Score(),
			},
			tsdb.Entry{
				Key:   tsdb.SeriesKey{Dataset: DatasetAzureSavings, Type: e.Size, Region: e.Region},
				At:    now,
				Value: float64(e.SavingsPct),
			})
		price, err := c.azure.SpotPriceUSD(e.Size, e.Region)
		if err != nil {
			return err
		}
		batch = append(batch, tsdb.Entry{
			Key:   tsdb.SeriesKey{Dataset: DatasetAzurePrice, Type: e.Size, Region: e.Region},
			At:    now,
			Value: price,
		})
	}
	stored, err := c.db.AppendBatchIfChanged(batch)
	c.Points += stored
	return err
}

// CollectGCPOnce scrapes the GCP pricing page.
func (c *Collector) CollectGCPOnce() error {
	if c.gcp == nil {
		return nil
	}
	now := c.clk.Now()
	c.GCPTicks++
	entries, err := c.gcp.PortalSnapshot()
	if err != nil {
		return err
	}
	batch := make([]tsdb.Entry, 0, 2*len(entries))
	for _, e := range entries {
		savings := 0.0
		if e.OnDemand > 0 {
			savings = math.Round((1 - e.SpotUSD/e.OnDemand) * 100)
		}
		batch = append(batch,
			tsdb.Entry{
				Key:   tsdb.SeriesKey{Dataset: DatasetGCPPrice, Type: e.Type, Region: e.Region},
				At:    now,
				Value: e.SpotUSD,
			},
			tsdb.Entry{
				Key:   tsdb.SeriesKey{Dataset: DatasetGCPSavings, Type: e.Type, Region: e.Region},
				At:    now,
				Value: savings,
			})
	}
	stored, err := c.db.AppendBatchIfChanged(batch)
	c.Points += stored
	return err
}

// Start begins periodic collection for every configured vendor at the
// shared cadence (plus the AWS collector's own schedule), after one
// immediate collection.
func (c *Collector) Start() error {
	if c.aws != nil {
		if err := c.aws.Start(); err != nil {
			return err
		}
	}
	if err := c.CollectAzureOnce(); err != nil {
		return err
	}
	if err := c.CollectGCPOnce(); err != nil {
		return err
	}
	c.tickers = append(c.tickers, c.clk.SchedulePeriodic(c.cfg.Interval, func(time.Time) bool {
		_ = c.CollectAzureOnce()
		_ = c.CollectGCPOnce()
		return true
	}))
	return nil
}

// Stop halts periodic collection.
func (c *Collector) Stop() {
	if c.aws != nil {
		c.aws.Stop()
	}
	for _, t := range c.tickers {
		t.Stop()
	}
	c.tickers = nil
}

// Run is the batch convenience: Start, advance by d, Stop.
func (c *Collector) Run(d time.Duration) error {
	if err := c.Start(); err != nil {
		return err
	}
	c.clk.RunFor(d)
	c.Stop()
	return nil
}

// --- Cross-vendor analysis ----------------------------------------------------

// Offer is a vendor-neutral compute offering.
type Offer struct {
	Vendor    string
	Name      string
	Region    string
	VCPU      int
	MemoryGiB float64
	GPU       bool
}

// Offers enumerates every (type, region) offering across the configured
// vendors. Nil vendors are skipped.
func Offers(aws *catalog.Catalog, azure *azuresim.Cloud, gcp *gcpsim.Cloud) []Offer {
	var out []Offer
	if aws != nil {
		for _, t := range aws.Types() {
			gpu := t.Class == catalog.ClassP || t.Class == catalog.ClassG
			for _, rc := range aws.SupportedRegions(t.Name) {
				out = append(out, Offer{
					Vendor: "aws", Name: t.Name, Region: rc.Region,
					VCPU: t.VCPU, MemoryGiB: t.MemoryGiB, GPU: gpu,
				})
			}
		}
	}
	if azure != nil {
		for _, s := range azure.Sizes() {
			for _, r := range azure.Regions() {
				out = append(out, Offer{
					Vendor: azuresim.Vendor, Name: s.Name, Region: r,
					VCPU: s.VCPU, MemoryGiB: s.MemoryGiB, GPU: s.GPU,
				})
			}
		}
	}
	if gcp != nil {
		for _, t := range gcp.MachineTypes() {
			for _, r := range gcp.Regions() {
				out = append(out, Offer{
					Vendor: gcpsim.Vendor, Name: t.Name, Region: r,
					VCPU: t.VCPU, MemoryGiB: t.MemoryGiB, GPU: t.GPU,
				})
			}
		}
	}
	return out
}

// ShapeQuery is a minimum compute shape.
type ShapeQuery struct {
	MinVCPU      int
	MinMemoryGiB float64
	GPU          bool // require accelerator
}

// Matches reports whether the offer satisfies the shape.
func (q ShapeQuery) Matches(o Offer) bool {
	if o.VCPU < q.MinVCPU || o.MemoryGiB < q.MinMemoryGiB {
		return false
	}
	if q.GPU && !o.GPU {
		return false
	}
	return true
}

// PricedOffer is an offer with its archived spot price and stability score
// at one instant. Stability is NaN when the vendor publishes none (GCP).
type PricedOffer struct {
	Offer
	SpotUSD   float64
	Stability float64
}

// CheapestAt returns the topN cheapest offers matching the shape at time
// at, using the archive's step-function view — the cross-vendor query the
// paper's Section 7 motivates. Offers with no archived price at that time
// are skipped.
func CheapestAt(db *tsdb.DB, offers []Offer, q ShapeQuery, at time.Time, topN int) []PricedOffer {
	var out []PricedOffer
	for _, o := range offers {
		if !q.Matches(o) {
			continue
		}
		po, ok := priceOf(db, o, at)
		if !ok {
			continue
		}
		out = append(out, po)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SpotUSD != out[j].SpotUSD {
			return out[i].SpotUSD < out[j].SpotUSD
		}
		return out[i].Vendor+out[i].Name+out[i].Region < out[j].Vendor+out[j].Name+out[j].Region
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

func priceOf(db *tsdb.DB, o Offer, at time.Time) (PricedOffer, bool) {
	po := PricedOffer{Offer: o, Stability: math.NaN()}
	switch o.Vendor {
	case "aws":
		// AWS prices are per AZ: take the region's cheapest AZ.
		best := math.Inf(1)
		for _, k := range db.Keys(tsdb.KeyFilter{Dataset: tsdb.DatasetPrice, Type: o.Name, Region: o.Region}) {
			if v, ok, _ := db.ValueAt(k, at); ok && v < best {
				best = v
			}
		}
		if math.IsInf(best, 1) {
			return po, false
		}
		po.SpotUSD = best
		if v, ok, _ := db.ValueAt(tsdb.SeriesKey{Dataset: tsdb.DatasetInterruptFree, Type: o.Name, Region: o.Region}, at); ok {
			po.Stability = v
		}
		return po, true
	case azuresim.Vendor:
		v, ok, _ := db.ValueAt(tsdb.SeriesKey{Dataset: DatasetAzurePrice, Type: o.Name, Region: o.Region}, at)
		if !ok {
			return po, false
		}
		po.SpotUSD = v
		if s, ok, _ := db.ValueAt(tsdb.SeriesKey{Dataset: DatasetAzureEvict, Type: o.Name, Region: o.Region}, at); ok {
			po.Stability = s
		}
		return po, true
	case gcpsim.Vendor:
		v, ok, _ := db.ValueAt(tsdb.SeriesKey{Dataset: DatasetGCPPrice, Type: o.Name, Region: o.Region}, at)
		if !ok {
			return po, false
		}
		po.SpotUSD = v
		return po, true
	}
	return po, false
}

// VendorSummary aggregates one vendor's archive footprint.
type VendorSummary struct {
	Vendor string
	// PriceSeries is the number of price series archived.
	PriceSeries int
	// MedianSavingsPct is the median archived savings value.
	MedianSavingsPct float64
	// MedianPriceChangeHours is the median time between price changes —
	// the cross-vendor freshness comparison (AWS hours, Azure days, GCP
	// months).
	MedianPriceChangeHours float64
	// HasStabilityData reports whether the vendor publishes any
	// availability/interruption signal at all.
	HasStabilityData bool
}

// Summary computes per-vendor archive summaries.
func Summary(db *tsdb.DB) []VendorSummary {
	type spec struct {
		vendor, price, savings, stability string
	}
	specs := []spec{
		{"aws", tsdb.DatasetPrice, tsdb.DatasetSavings, tsdb.DatasetInterruptFree},
		{azuresim.Vendor, DatasetAzurePrice, DatasetAzureSavings, DatasetAzureEvict},
		{gcpsim.Vendor, DatasetGCPPrice, DatasetGCPSavings, ""},
	}
	var out []VendorSummary
	for _, s := range specs {
		sum := VendorSummary{Vendor: s.vendor}
		keys := db.Keys(tsdb.KeyFilter{Dataset: s.price})
		sum.PriceSeries = len(keys)
		if sum.PriceSeries == 0 {
			continue
		}
		var savings []float64
		for _, k := range db.Keys(tsdb.KeyFilter{Dataset: s.savings}) {
			if p, ok, _ := db.Last(k); ok {
				savings = append(savings, p.Value)
			}
		}
		sum.MedianSavingsPct = analysis.Median(savings)
		sum.MedianPriceChangeHours = analysis.UpdateIntervalCDF(db, s.price).Quantile(0.5)
		if s.stability != "" {
			sum.HasStabilityData = len(db.Keys(tsdb.KeyFilter{Dataset: s.stability})) > 0
		}
		out = append(out, sum)
	}
	return out
}
