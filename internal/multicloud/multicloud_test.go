package multicloud

import (
	"math"
	"testing"
	"time"

	"repro/internal/azuresim"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/gcpsim"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

// fullSetup wires all three vendors on one clock.
func fullSetup(t *testing.T, seed uint64) (*Collector, *simclock.Clock, *tsdb.DB, *catalog.Catalog, *azuresim.Cloud, *gcpsim.Cloud) {
	t.Helper()
	clk := simclock.NewAtEpoch()
	cat := catalog.Compact(2)
	aws := cloudsim.New(cat, clk, seed, cloudsim.DefaultParams())
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	awsCol, err := collector.New(aws, db, collector.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	azure := azuresim.New(clk, seed)
	gcp := gcpsim.New(clk, seed)
	mc, err := New(clk, db, DefaultConfig(), awsCol, azure, gcp)
	if err != nil {
		t.Fatal(err)
	}
	return mc, clk, db, cat, azure, gcp
}

func TestNewValidation(t *testing.T) {
	clk := simclock.NewAtEpoch()
	db, _ := tsdb.Open("")
	if _, err := New(clk, db, Config{Interval: 0}, nil, azuresim.New(clk, 1), nil); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := New(clk, db, DefaultConfig(), nil, nil, nil); err == nil {
		t.Error("vendor-less collector accepted")
	}
	// Single-vendor configurations are fine.
	if _, err := New(clk, db, DefaultConfig(), nil, nil, gcpsim.New(clk, 1)); err != nil {
		t.Errorf("gcp-only rejected: %v", err)
	}
}

func TestTimestampIsGlobalKey(t *testing.T) {
	// Section 7: the shared timestamp joins datasets across vendors. After
	// one aligned collection, every vendor has points at the identical
	// instant.
	mc, clk, db, _, _, _ := fullSetup(t, 1)
	if err := mc.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	_ = clk
	at := simclock.Epoch // first tick happened at start
	for _, ds := range []string{tsdb.DatasetPrice, DatasetAzurePrice, DatasetGCPPrice} {
		keys := db.Keys(tsdb.KeyFilter{Dataset: ds})
		if len(keys) == 0 {
			t.Fatalf("no series for %s", ds)
		}
		pts := noerr(db.Query(keys[0], at, at))
		if len(pts) != 1 {
			t.Errorf("dataset %s has no point at the aligned first tick", ds)
		}
	}
}

func TestAzureDatasets(t *testing.T) {
	mc, _, db, _, azure, _ := fullSetup(t, 2)
	if err := mc.CollectAzureOnce(); err != nil {
		t.Fatal(err)
	}
	wantSeries := len(azure.Sizes()) * len(azure.Regions())
	for _, ds := range []string{DatasetAzurePrice, DatasetAzureEvict, DatasetAzureSavings} {
		if got := len(db.Keys(tsdb.KeyFilter{Dataset: ds})); got != wantSeries {
			t.Errorf("%s series = %d, want %d", ds, got, wantSeries)
		}
	}
	// Eviction scores live on the shared 1.0-3.0 scale.
	for _, k := range db.Keys(tsdb.KeyFilter{Dataset: DatasetAzureEvict})[:10] {
		p, _ := noerr2(db.Last(k))
		if p.Value < 1 || p.Value > 3 {
			t.Errorf("eviction score %v out of 1..3", p.Value)
		}
	}
}

func TestGCPDatasets(t *testing.T) {
	mc, _, db, _, _, gcp := fullSetup(t, 3)
	if err := mc.CollectGCPOnce(); err != nil {
		t.Fatal(err)
	}
	wantSeries := len(gcp.MachineTypes()) * len(gcp.Regions())
	for _, ds := range []string{DatasetGCPPrice, DatasetGCPSavings} {
		if got := len(db.Keys(tsdb.KeyFilter{Dataset: ds})); got != wantSeries {
			t.Errorf("%s series = %d, want %d", ds, got, wantSeries)
		}
	}
}

func TestOffersAndShapeMatching(t *testing.T) {
	_, _, _, cat, azure, gcp := fullSetup(t, 4)
	offers := Offers(cat, azure, gcp)
	vendors := map[string]int{}
	for _, o := range offers {
		vendors[o.Vendor]++
	}
	for _, v := range []string{"aws", "azure", "gcp"} {
		if vendors[v] == 0 {
			t.Errorf("no offers from %s", v)
		}
	}
	q := ShapeQuery{MinVCPU: 8, MinMemoryGiB: 32}
	for _, o := range offers {
		if q.Matches(o) && (o.VCPU < 8 || o.MemoryGiB < 32) {
			t.Fatalf("shape mismatch accepted: %+v", o)
		}
	}
	gq := ShapeQuery{MinVCPU: 1, GPU: true}
	for _, o := range offers {
		if gq.Matches(o) && !o.GPU {
			t.Fatal("GPU filter leaked a non-GPU offer")
		}
	}
	// Nil vendors are skipped.
	if got := Offers(nil, azure, nil); len(got) != vendors["azure"] {
		t.Errorf("azure-only offers = %d, want %d", len(got), vendors["azure"])
	}
}

func TestCheapestAtCrossVendor(t *testing.T) {
	mc, clk, db, cat, azure, gcp := fullSetup(t, 5)
	if err := mc.Run(6 * time.Hour); err != nil {
		t.Fatal(err)
	}
	offers := Offers(cat, azure, gcp)
	top := CheapestAt(db, offers, ShapeQuery{MinVCPU: 4, MinMemoryGiB: 16}, clk.Now(), 20)
	if len(top) != 20 {
		t.Fatalf("top = %d offers", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].SpotUSD < top[i-1].SpotUSD {
			t.Fatal("offers not sorted by price")
		}
	}
	for _, o := range top {
		if o.VCPU < 4 || o.MemoryGiB < 16 {
			t.Fatalf("shape violated: %+v", o.Offer)
		}
		if o.SpotUSD <= 0 {
			t.Fatal("non-positive price")
		}
		if o.Vendor == gcpsim.Vendor && !math.IsNaN(o.Stability) {
			t.Error("GCP offer has stability data; GCP publishes none")
		}
	}
	// With all vendors collected, the cheap end should not be single-vendor
	// exclusively (cross-vendor comparison is the point).
	seen := map[string]bool{}
	for _, o := range CheapestAt(db, offers, ShapeQuery{MinVCPU: 2}, clk.Now(), 60) {
		seen[o.Vendor] = true
	}
	if len(seen) < 2 {
		t.Errorf("top-60 cheapest come from %d vendor(s); expected a mix", len(seen))
	}
}

func TestSummaryPerVendor(t *testing.T) {
	mc, _, db, _, _, _ := fullSetup(t, 6)
	if err := mc.Run(3 * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	sums := Summary(db)
	if len(sums) != 3 {
		t.Fatalf("summaries = %d, want 3", len(sums))
	}
	byVendor := map[string]VendorSummary{}
	for _, s := range sums {
		byVendor[s.Vendor] = s
	}
	if !byVendor["aws"].HasStabilityData || !byVendor["azure"].HasStabilityData {
		t.Error("aws/azure should have stability data")
	}
	if byVendor["gcp"].HasStabilityData {
		t.Error("gcp reports stability data; it publishes none")
	}
	for v, s := range byVendor {
		if s.PriceSeries == 0 {
			t.Errorf("%s has no price series", v)
		}
		if s.MedianSavingsPct < 40 || s.MedianSavingsPct > 95 {
			t.Errorf("%s median savings %.0f%% implausible", v, s.MedianSavingsPct)
		}
	}
}

func TestStatsAndStop(t *testing.T) {
	mc, clk, _, _, _, _ := fullSetup(t, 7)
	if err := mc.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if mc.AzureTicks != 13 || mc.GCPTicks != 13 { // 1 immediate + 12 periodic
		t.Errorf("ticks = %d/%d, want 13/13", mc.AzureTicks, mc.GCPTicks)
	}
	if mc.Points == 0 {
		t.Error("no points collected")
	}
	before := mc.AzureTicks
	clk.RunFor(time.Hour)
	if mc.AzureTicks != before {
		t.Error("collection continued after Stop")
	}
}
