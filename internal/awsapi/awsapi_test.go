package awsapi

import (
	"errors"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/simclock"
)

func testClient(seed uint64) (*Client, *simclock.Clock, *catalog.Catalog) {
	cat := catalog.Compact(3)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, seed, cloudsim.DefaultParams())
	return NewClient(cloud, "acct-0"), clk, cat
}

func anyType(cat *catalog.Catalog) string { return cat.Types()[0].Name }

func TestFingerprintCanonical(t *testing.T) {
	a := PlacementScoreQuery{
		InstanceTypes:  []string{"m5.xlarge", "c5.xlarge"},
		Regions:        []string{"us-east-1", "eu-west-1"},
		TargetCapacity: 4,
	}
	b := PlacementScoreQuery{
		InstanceTypes:  []string{"c5.xlarge", "m5.xlarge"},
		Regions:        []string{"eu-west-1", "us-east-1"},
		TargetCapacity: 4,
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint should be order-insensitive")
	}
	c := a
	c.TargetCapacity = 5
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different capacity should change fingerprint")
	}
	d := a
	d.SingleAvailabilityZone = true
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("single-AZ flag should change fingerprint")
	}
}

func TestQueryQuotaEnforced(t *testing.T) {
	c, _, cat := testClient(1)
	tn := anyType(cat)
	region := cat.SupportedRegions(tn)[0].Region
	// Issue 50 unique queries (distinct capacities).
	for n := 1; n <= MaxUniqueQueriesPer24h; n++ {
		if _, err := c.GetSpotPlacementScores(PlacementScoreQuery{
			InstanceTypes: []string{tn}, Regions: []string{region}, TargetCapacity: n,
		}); err != nil {
			t.Fatalf("query %d rejected: %v", n, err)
		}
	}
	if got := c.UniqueQueriesInWindow(); got != 50 {
		t.Errorf("unique queries = %d, want 50", got)
	}
	// The 51st unique query fails.
	_, err := c.GetSpotPlacementScores(PlacementScoreQuery{
		InstanceTypes: []string{tn}, Regions: []string{region}, TargetCapacity: 51,
	})
	if !errors.Is(err, ErrQueryLimitExceeded) {
		t.Errorf("51st unique query error = %v, want ErrQueryLimitExceeded", err)
	}
	// Repeating an existing query is free.
	if _, err := c.GetSpotPlacementScores(PlacementScoreQuery{
		InstanceTypes: []string{tn}, Regions: []string{region}, TargetCapacity: 7,
	}); err != nil {
		t.Errorf("repeat query rejected: %v", err)
	}
}

func TestQuotaExpiresAfterWindow(t *testing.T) {
	c, clk, cat := testClient(2)
	tn := anyType(cat)
	region := cat.SupportedRegions(tn)[0].Region
	for n := 1; n <= MaxUniqueQueriesPer24h; n++ {
		if _, err := c.GetSpotPlacementScores(PlacementScoreQuery{
			InstanceTypes: []string{tn}, Regions: []string{region}, TargetCapacity: n,
		}); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunFor(QuotaWindow + time.Minute)
	if got := c.UniqueQueriesInWindow(); got != 0 {
		t.Errorf("unique queries after window = %d, want 0", got)
	}
	if _, err := c.GetSpotPlacementScores(PlacementScoreQuery{
		InstanceTypes: []string{tn}, Regions: []string{region}, TargetCapacity: 99,
	}); err != nil {
		t.Errorf("query after expiry rejected: %v", err)
	}
}

func TestRepeatKeepsQueryActive(t *testing.T) {
	// A query re-issued every 10 minutes (the collector pattern) must stay
	// usable indefinitely without consuming extra quota.
	c, clk, cat := testClient(3)
	tn := anyType(cat)
	region := cat.SupportedRegions(tn)[0].Region
	q := PlacementScoreQuery{InstanceTypes: []string{tn}, Regions: []string{region}, TargetCapacity: 1}
	for i := 0; i < 200; i++ {
		if _, err := c.GetSpotPlacementScores(q); err != nil {
			t.Fatalf("repeat %d rejected: %v", i, err)
		}
		clk.RunFor(10 * time.Minute)
	}
	if got := c.UniqueQueriesInWindow(); got != 1 {
		t.Errorf("unique queries = %d, want 1", got)
	}
}

func TestResultTruncationTopTen(t *testing.T) {
	c, _, cat := testClient(4)
	// A widely-supported type across many regions with SingleAZ yields far
	// more than 10 AZ scores; only the top 10 come back.
	var tier0 string
	for _, tp := range cat.Types() {
		if tp.Tier == 0 {
			tier0 = tp.Name
			break
		}
	}
	if tier0 == "" {
		t.Fatal("no tier-0 type in compact catalog")
	}
	var regions []string
	total := 0
	for _, rc := range cat.SupportedRegions(tier0) {
		regions = append(regions, rc.Region)
		total += rc.AZCount
	}
	if total <= MaxReturnedScores {
		t.Fatalf("test setup: only %d candidate scores", total)
	}
	scores, err := c.GetSpotPlacementScores(PlacementScoreQuery{
		InstanceTypes: []string{tier0}, Regions: regions,
		TargetCapacity: 1, SingleAvailabilityZone: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != MaxReturnedScores {
		t.Fatalf("returned %d scores, want %d", len(scores), MaxReturnedScores)
	}
	// Returned scores are the maximum ones: every returned score must be >=
	// any hypothetical 11th (they are sorted descending).
	for i := 1; i < len(scores); i++ {
		if scores[i].Score > scores[i-1].Score {
			t.Error("scores not sorted descending")
		}
	}
}

func TestQueryValidation(t *testing.T) {
	c, _, cat := testClient(5)
	tn := anyType(cat)
	region := cat.SupportedRegions(tn)[0].Region
	bad := []PlacementScoreQuery{
		{Regions: []string{region}, TargetCapacity: 1},
		{InstanceTypes: []string{tn}, TargetCapacity: 1},
		{InstanceTypes: []string{tn}, Regions: []string{region}, TargetCapacity: 0},
		{InstanceTypes: make([]string, MaxTypesPerQuery+1), Regions: []string{region}, TargetCapacity: 1},
	}
	for i, q := range bad {
		if _, err := c.GetSpotPlacementScores(q); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
	// Invalid queries must not consume quota.
	if got := c.UniqueQueriesInWindow(); got != 0 {
		t.Errorf("invalid queries consumed quota: %d", got)
	}
}

func TestPriceHistoryWindowClamped(t *testing.T) {
	c, clk, cat := testClient(6)
	pool := cat.Pools()[0]
	// Observe for 100 days so some history exists beyond the window.
	for i := 0; i < 100; i++ {
		clk.RunFor(24 * time.Hour)
		if _, err := c.CurrentSpotPrice(pool.Type, pool.AZ); err != nil {
			t.Fatal(err)
		}
	}
	points, err := c.DescribeSpotPriceHistory(pool.Type, pool.AZ, simclock.Epoch, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	oldest := clk.Now().Add(-PriceHistoryWindow)
	for _, p := range points {
		if p.At.Before(oldest) {
			t.Errorf("point at %v older than 90-day window", p.At)
		}
		if p.Type != pool.Type || p.AZ != pool.AZ {
			t.Error("point labeled with wrong pool")
		}
	}
	// Reversed window returns nothing.
	rev, err := c.DescribeSpotPriceHistory(pool.Type, pool.AZ, clk.Now(), simclock.Epoch)
	if err != nil || rev != nil {
		t.Errorf("reversed window = %v, %v", rev, err)
	}
}

func TestAdvisorDocumentNeedsNoAccount(t *testing.T) {
	cat := catalog.Compact(3)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 7, cloudsim.DefaultParams())
	doc := FetchAdvisorDocument(cloud)
	if len(doc.Entries) == 0 {
		t.Fatal("advisor document empty")
	}
	if !doc.FetchedAt.Equal(clk.Now()) {
		t.Error("document timestamp wrong")
	}
	for _, e := range doc.Entries {
		if e.Type == "" || e.Region == "" {
			t.Fatal("advisor entry missing keys")
		}
	}
}

func TestRequestSpotInstancePassthrough(t *testing.T) {
	c, clk, cat := testClient(8)
	pool := cat.Pools()[0]
	od, _ := cat.OnDemandPrice(pool.Type, pool.Region)
	req, err := c.RequestSpotInstance(cloudsim.SpotRequestSpec{Type: pool.Type, AZ: pool.AZ, BidUSD: od})
	if err != nil {
		t.Fatal(err)
	}
	clk.RunFor(time.Minute)
	if req.Status() == cloudsim.StatusTerminal {
		t.Error("fresh request already terminal")
	}
	req.Close()
}
