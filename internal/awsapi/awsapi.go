// Package awsapi is the public API surface of the simulated cloud vendor,
// with the real-world query constraints that motivate SpotLake's collection
// heuristics (paper Section 3.1):
//
//   - GetSpotPlacementScores allows at most 50 unique queries per account in
//     a rolling 24-hour window. Query uniqueness is the combination of
//     instance types, regions, target capacity, and the single-AZ flag;
//     re-issuing an identical query is free.
//   - A placement score response carries at most 10 entries; when more
//     match (e.g. many AZs with SingleAvailabilityZone), only the 10 highest
//     scores are returned.
//   - The spot instance advisor has no programmatic API; it is only
//     available as one bulk website document (FetchAdvisorDocument, the
//     SpotInfo-style scrape).
//   - DescribeSpotPriceHistory returns at most the trailing 90 days.
package awsapi

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cloudsim"
)

// Vendor API limits.
const (
	// MaxUniqueQueriesPer24h is the placement-score query quota per account
	// (paper Section 3.1, confirmed empirically by the authors).
	MaxUniqueQueriesPer24h = 50
	// MaxReturnedScores caps the entries in one placement-score response.
	MaxReturnedScores = 10
	// MaxTypesPerQuery bounds the instance types in a single query.
	MaxTypesPerQuery = 50
	// PriceHistoryWindow is the maximum look-back of the price history API.
	PriceHistoryWindow = 90 * 24 * time.Hour
	// QuotaWindow is the rolling window for query uniqueness accounting.
	QuotaWindow = 24 * time.Hour
)

// ErrQueryLimitExceeded is returned when an account exhausts its unique
// placement-score queries for the rolling 24-hour window.
var ErrQueryLimitExceeded = errors.New("awsapi: MaxSpotPlacementScores query limit exceeded for account")

// PlacementScoreQuery is the request shape of GetSpotPlacementScores.
type PlacementScoreQuery struct {
	InstanceTypes          []string
	Regions                []string
	TargetCapacity         int
	SingleAvailabilityZone bool
}

// Fingerprint returns the canonical uniqueness key of the query: the
// combination of regions, instance types, capacity, and AZ flag, insensitive
// to list order.
func (q PlacementScoreQuery) Fingerprint() string {
	types := append([]string(nil), q.InstanceTypes...)
	regions := append([]string(nil), q.Regions...)
	sort.Strings(types)
	sort.Strings(regions)
	var b strings.Builder
	b.WriteString(strings.Join(types, ","))
	b.WriteByte('|')
	b.WriteString(strings.Join(regions, ","))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(q.TargetCapacity))
	b.WriteByte('|')
	if q.SingleAvailabilityZone {
		b.WriteByte('1')
	} else {
		b.WriteByte('0')
	}
	return b.String()
}

// PlacementScore is one entry of a placement-score response. AZ is empty
// for region-level scores.
type PlacementScore struct {
	Region string
	AZ     string
	Score  int
}

// Client is an authenticated API client for one cloud account. Each account
// carries its own placement-score query quota; SpotLake's collector spreads
// its optimized query plan over many accounts.
type Client struct {
	cloud   *cloudsim.Cloud
	account string
	// quota tracks first-use times of unique query fingerprints within the
	// rolling window.
	quota map[string]time.Time
}

// NewClient returns a client for the named account. Clients of the same
// account name share nothing; quota is per client, which models per-account
// credentials held by one process (as SpotLake's collector does).
func NewClient(cloud *cloudsim.Cloud, account string) *Client {
	return &Client{cloud: cloud, account: account, quota: make(map[string]time.Time)}
}

// Account returns the account name the client authenticates as.
func (c *Client) Account() string { return c.account }

// UniqueQueriesInWindow reports how many unique placement-score queries the
// account has used within the current rolling window.
func (c *Client) UniqueQueriesInWindow() int {
	c.pruneQuota()
	return len(c.quota)
}

func (c *Client) pruneQuota() {
	cutoff := c.cloud.Clock().Now().Add(-QuotaWindow)
	for fp, at := range c.quota {
		if at.Before(cutoff) {
			delete(c.quota, fp)
		}
	}
}

// GetSpotPlacementScores returns placement scores for the query, enforcing
// the account quota and the response-size truncation.
func (c *Client) GetSpotPlacementScores(q PlacementScoreQuery) ([]PlacementScore, error) {
	if len(q.InstanceTypes) == 0 {
		return nil, fmt.Errorf("awsapi: query must name at least one instance type")
	}
	if len(q.InstanceTypes) > MaxTypesPerQuery {
		return nil, fmt.Errorf("awsapi: query names %d instance types, limit %d", len(q.InstanceTypes), MaxTypesPerQuery)
	}
	if len(q.Regions) == 0 {
		return nil, fmt.Errorf("awsapi: query must name at least one region")
	}
	if q.TargetCapacity <= 0 {
		return nil, fmt.Errorf("awsapi: target capacity must be positive, got %d", q.TargetCapacity)
	}

	c.pruneQuota()
	fp := q.Fingerprint()
	now := c.cloud.Clock().Now()
	if _, seen := c.quota[fp]; seen {
		// Re-issuing an identical query is free and keeps it active.
		c.quota[fp] = now
	} else {
		if len(c.quota) >= MaxUniqueQueriesPer24h {
			return nil, fmt.Errorf("%w %s (%d unique in 24h)", ErrQueryLimitExceeded, c.account, len(c.quota))
		}
		c.quota[fp] = now
	}

	entries, err := c.cloud.PlacementScores(cloudsim.ScoreRequest{
		Types:          q.InstanceTypes,
		Regions:        q.Regions,
		TargetCapacity: q.TargetCapacity,
		SingleAZ:       q.SingleAvailabilityZone,
	})
	if err != nil {
		return nil, err
	}
	// Truncate to the highest MaxReturnedScores scores; ties broken by
	// region/AZ name for determinism.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		if entries[i].Region != entries[j].Region {
			return entries[i].Region < entries[j].Region
		}
		return entries[i].AZ < entries[j].AZ
	})
	if len(entries) > MaxReturnedScores {
		entries = entries[:MaxReturnedScores]
	}
	out := make([]PlacementScore, len(entries))
	for i, e := range entries {
		out[i] = PlacementScore{Region: e.Region, AZ: e.AZ, Score: e.Score}
	}
	return out, nil
}

// SpotPrice is one price-history entry.
type SpotPrice struct {
	At       time.Time
	Type     string
	AZ       string
	PriceUSD float64
}

// DescribeSpotPriceHistory returns published price changes for a pool in
// [from, to], clamped to the vendor's 90-day retention.
func (c *Client) DescribeSpotPriceHistory(typeName, az string, from, to time.Time) ([]SpotPrice, error) {
	now := c.cloud.Clock().Now()
	if to.After(now) {
		to = now
	}
	if oldest := now.Add(-PriceHistoryWindow); from.Before(oldest) {
		from = oldest
	}
	if to.Before(from) {
		return nil, nil
	}
	points, err := c.cloud.PriceHistory(typeName, az, from, to)
	if err != nil {
		return nil, err
	}
	out := make([]SpotPrice, len(points))
	for i, p := range points {
		out[i] = SpotPrice{At: p.At, Type: typeName, AZ: az, PriceUSD: p.PriceUSD}
	}
	return out, nil
}

// CurrentSpotPrice returns the pool's current published spot price.
func (c *Client) CurrentSpotPrice(typeName, az string) (float64, error) {
	return c.cloud.SpotPriceUSD(typeName, az)
}

// RequestSpotInstance opens a spot request on behalf of the account.
func (c *Client) RequestSpotInstance(spec cloudsim.SpotRequestSpec) (*cloudsim.SpotRequest, error) {
	return c.cloud.Submit(spec)
}

// AdvisorDocument is the bulk spot-instance-advisor dataset as scraped from
// the website: every supported (type, region) with its interruption band
// and savings. There is no filtered or historical access (paper Section 2.2).
type AdvisorDocument struct {
	FetchedAt time.Time
	Entries   []cloudsim.AdvisorEntry
}

// FetchAdvisorDocument scrapes the advisor website document. It requires no
// account: the advisor page is public, which is exactly why SpotInfo-style
// scraping is the only programmatic access path.
func FetchAdvisorDocument(cloud *cloudsim.Cloud) AdvisorDocument {
	return AdvisorDocument{
		FetchedAt: cloud.Clock().Now(),
		Entries:   cloud.AdvisorSnapshot(),
	}
}
