package tsdb

// Tests for the rotating WAL layout: the crash matrix over every durable
// boundary of the rotation and checkpoint protocols (× crash before/after
// the boundary's fsync), the zero-rewrite compaction guarantee, the
// differential recovery property over random schedules, the v1-manifest
// migration, and the size-based checkpoint trigger's replay-tail bound.

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/simrand"
)

// laterEntries is legacyEntries shifted to start at startMin minutes past
// t0, so it can follow an earlier workload in per-series time order.
func laterEntries(n, startMin int) []Entry {
	out := legacyEntries(n)
	for i := range out {
		out[i].At = t0.Add(time.Duration(startMin+i) * time.Minute)
		out[i].Value = float64(i % 5)
	}
	return out
}

// refContents deep-copies the reference store's state for comparison.
func refContents(r *refDB) map[SeriesKey][]Point {
	out := make(map[SeriesKey][]Point, len(r.series))
	for k, pts := range r.series {
		out[k] = append([]Point(nil), pts...)
	}
	return out
}

// refApplyAll appends entries to the reference store, failing the test on
// any rejection (matrix workloads are constructed in order).
func refApplyAll(t *testing.T, r *refDB, entries []Entry) {
	t.Helper()
	for _, e := range entries {
		if err := r.append(e.Key, e.At, e.Value); err != nil {
			t.Fatalf("reference append %v: %v", e.Key, err)
		}
	}
}

// forceRotate rotates shard si's active segment under its lock, the way
// an append crossing RotateBytes would.
func forceRotate(db *DB, si int) error {
	sh := &db.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.rotateLocked(sh)
}

// matrixEnv is the per-cell state the disk mutations need: where the
// crash-simulating harness must truncate or restore files to model
// writes that never reached stable storage.
type matrixEnv struct {
	dir       string
	si        int    // shard the rotation cells target
	seqAtArm  uint64 // that shard's active seq when the fault was armed
	prePath   string // that shard's active segment path
	preSize   int64  // its durable size before the at-risk record
	recLen    int64  // the at-risk record's encoded length
	preCopies map[string][]byte
}

// copySegments snapshots every rotating segment file's bytes, so the
// delete-boundary cells can restore unlinks that "never hit the disk".
func copySegments(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = raw
	}
	return out
}

// truncateHalf truncates every file matching the glob pattern to half its
// size — the on-disk shape of a write that lost its tail in the page
// cache when the machine died before fsync.
func truncateHalf(t *testing.T, dir, pattern string) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no file matches %s; the fault did not leave the expected state", pattern)
	}
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(p, st.Size()/2); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRotationCrashMatrix enumerates every durable boundary of the
// rotation and checkpoint protocols × crash before/after that boundary's
// fsync, and demands that recovery after each simulated crash is exactly
// equal to the differential reference store — and that a subsequent
// checkpoint succeeds from the crashed state and recovery still holds.
//
// "Crash before fsync" cells additionally mutate the on-disk state after
// the fault (truncating unsynced files, restoring unsynced unlinks),
// because the injected abort alone cannot make the page cache forget.
func TestRotationCrashMatrix(t *testing.T) {
	cells := []struct {
		point     string
		op        string // "rotate" or "checkpoint"
		extra     bool   // rotation cells: append an unflushed record across the boundary
		loseExtra bool   // the crash loses that record (mutate simulates it)
		mutate    func(t *testing.T, env *matrixEnv)
	}{
		{point: "rotate:seal:before-sync", op: "rotate", extra: true, loseExtra: true,
			mutate: func(t *testing.T, env *matrixEnv) {
				// The seal's flush reached the file but not the platter:
				// the record's tail is lost, leaving a torn record.
				if err := os.Truncate(env.prePath, env.preSize+env.recLen-5); err != nil {
					t.Fatal(err)
				}
			}},
		{point: "rotate:seal:after-sync", op: "rotate", extra: true},
		{point: "rotate:create:before-sync", op: "rotate", extra: true,
			mutate: func(t *testing.T, env *matrixEnv) {
				// The new segment's header never fully persisted.
				stray := filepath.Join(env.dir, rotSegName(env.si, env.seqAtArm+1))
				if err := os.Truncate(stray, 10); err != nil {
					t.Fatal(err)
				}
			}},
		{point: "rotate:create:after-sync", op: "rotate", extra: true},
		{point: "checkpoint:capture", op: "checkpoint"},
		{point: "checkpoint:segsync:after", op: "checkpoint"},
		{point: "checkpoint:snapshot:before-sync", op: "checkpoint",
			mutate: func(t *testing.T, env *matrixEnv) {
				truncateHalf(t, env.dir, "checkpoint-*.snap.tmp")
			}},
		{point: "checkpoint:snapshot:synced", op: "checkpoint"},
		{point: "checkpoint:snapshot:committed", op: "checkpoint"},
		{point: "checkpoint:manifest:before-sync", op: "checkpoint",
			mutate: func(t *testing.T, env *matrixEnv) {
				truncateHalf(t, env.dir, manifestName+".tmp")
			}},
		{point: "checkpoint:manifest:committed", op: "checkpoint"},
		{point: "checkpoint:delete:mid", op: "checkpoint"},
		{point: "checkpoint:delete:before-sync", op: "checkpoint",
			mutate: func(t *testing.T, env *matrixEnv) {
				// The unlinks never became durable: every segment file that
				// existed before the checkpoint is back.
				for name, raw := range env.preCopies {
					p := filepath.Join(env.dir, name)
					if _, err := os.Stat(p); errors.Is(err, os.ErrNotExist) {
						if err := os.WriteFile(p, raw, 0o644); err != nil {
							t.Fatal(err)
						}
					}
				}
			}},
		{point: "checkpoint:delete:after-sync", op: "checkpoint"},
	}

	for _, cell := range cells {
		cell := cell
		t.Run(cell.point, func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Shards: 4, RotateBytes: 1024}
			db, err := OpenWithOptions(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefDB()

			// Workload A, a real checkpoint (so the crashed operation has
			// a committed state to fall back to), then workload B.
			a := legacyEntries(600)
			if n, err := db.AppendBatch(a); err != nil || n != len(a) {
				t.Fatalf("stored %d, err %v", n, err)
			}
			refApplyAll(t, ref, a)
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			b := laterEntries(200, 50000)
			if n, err := db.AppendBatch(b); err != nil || n != len(b) {
				t.Fatalf("stored %d, err %v", n, err)
			}
			refApplyAll(t, ref, b)
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			// The live store must agree with the reference before the
			// crash; afterwards, recovery is measured against the
			// reference alone.
			assertSameContents(t, contents(db), refContents(ref))
			want := refContents(ref)

			env := &matrixEnv{dir: dir}
			if cell.op == "rotate" {
				// Rotate the target shard onto a fresh segment first, so
				// the at-risk record's durable prefix is exactly the new
				// header — the torn-tail arithmetic stays deterministic.
				k := a[0].Key
				env.si = db.ShardIndexOf(k)
				if err := forceRotate(db, env.si); err != nil {
					t.Fatal(err)
				}
				env.seqAtArm = db.shards[env.si].walSeq
				env.prePath = filepath.Join(dir, rotSegName(env.si, env.seqAtArm))
				env.preSize = int64(rotSegHeaderLen)
				env.recLen = int64(4 + 2 + len(k.String()) + 16)
				if cell.extra {
					x := Entry{Key: k, At: t0.Add(55000 * time.Minute), Value: 77}
					if err := db.Append(x.Key, x.At, x.Value); err != nil {
						t.Fatal(err)
					}
					if !cell.loseExtra {
						refApplyAll(t, ref, []Entry{x})
						want = refContents(ref)
					}
				}
			}
			env.preCopies = copySegments(t, dir)

			// Arm the crash and fire the operation.
			db.testCrash = func(point string) error {
				if point == cell.point {
					return errCrashPoint
				}
				return nil
			}
			switch cell.op {
			case "rotate":
				err = forceRotate(db, env.si)
			case "checkpoint":
				err = db.Checkpoint()
			}
			if !errors.Is(err, errCrashPoint) {
				t.Fatalf("%s: op returned %v, want injected crash", cell.point, err)
			}
			db.testCrash = nil
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if cell.mutate != nil {
				cell.mutate(t, env)
			}

			re, err := OpenWithOptions(dir, opts)
			if err != nil {
				t.Fatalf("reopen after %s: %v", cell.point, err)
			}
			assertSameContents(t, contents(re), want)
			// The store must checkpoint its way out of the crashed state,
			// and still recover exactly afterwards.
			if err := re.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after %s: %v", cell.point, err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2, err := OpenWithOptions(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			assertSameContents(t, contents(re2), want)
		})
	}
}

// TestCheckpointZeroRewrite proves compaction never rewrites a data file:
// every segment file that survives a checkpoint is byte-identical to its
// pre-checkpoint self (compaction = manifest commit + unlink of covered
// sealed segments), and at least one sealed segment is actually unlinked.
func TestCheckpointZeroRewrite(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenWithOptions(dir, Options{Shards: 4, RotateBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	entries := legacyEntries(800)
	if n, err := db.AppendBatch(entries); err != nil || n != len(entries) {
		t.Fatalf("stored %d, err %v", n, err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	hash := func() map[string][32]byte {
		t.Helper()
		paths, err := filepath.Glob(filepath.Join(dir, "wal-*-*.log"))
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string][32]byte, len(paths))
		for _, p := range paths {
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			out[filepath.Base(p)] = sha256.Sum256(raw)
		}
		return out
	}
	before := hash()
	if len(before) <= 4 {
		t.Fatalf("workload produced only %d segment files; no rotation to compact", len(before))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := hash()
	if len(after) >= len(before) {
		t.Fatalf("checkpoint deleted no sealed segments: %d files before, %d after", len(before), len(after))
	}
	for name, h := range after {
		bh, ok := before[name]
		if !ok {
			t.Fatalf("checkpoint created segment file %s", name)
		}
		if h != bh {
			t.Fatalf("checkpoint rewrote segment file %s", name)
		}
	}
}

// TestRotatedDifferentialRecovery drives three stores — rotated (tiny
// threshold), single-segment (rotation disabled, the PR 2 shape), and the
// in-memory reference — through the same seeded random schedule of
// append / checkpoint / reopen steps, and demands all three agree after
// every reopen and at the end. Failures print the seed and op index; the
// schedule is a pure function of the seed, so a failing case shrinks by
// truncating the op count.
func TestRotatedDifferentialRecovery(t *testing.T) {
	datasets := []string{DatasetPlacementScore, DatasetPrice, DatasetInterruptFree}
	types := []string{"m5.xlarge", "c5.large", "r5.2xlarge"}
	regions := []string{"us-east-1", "eu-west-1"}
	azs := []string{"a", "b"}

	for _, seed := range []int{3, 17, 2210} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := simrand.New(uint64(seed))
			r := rng.StreamN("rotdiff", seed)
			dirRot, dirSingle := t.TempDir(), t.TempDir()
			optRot := Options{Shards: 4, RotateBytes: 256}
			optSingle := Options{Shards: 4, RotateBytes: -1}
			dbRot, err := OpenWithOptions(dirRot, optRot)
			if err != nil {
				t.Fatal(err)
			}
			dbSingle, err := OpenWithOptions(dirSingle, optSingle)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefDB()

			ts := 0
			const ops = 120
			for op := 0; op < ops; op++ {
				switch v := r.Intn(10); {
				case v < 7: // batch append, strictly time-ordered
					n := 1 + r.Intn(20)
					batch := make([]Entry, 0, n)
					for i := 0; i < n; i++ {
						ts++
						batch = append(batch, Entry{
							Key: SeriesKey{
								Dataset: datasets[r.Intn(len(datasets))],
								Type:    types[r.Intn(len(types))],
								Region:  regions[r.Intn(len(regions))],
								AZ:      azs[r.Intn(len(azs))],
							},
							At:    t0.Add(time.Duration(ts) * time.Second),
							Value: float64(r.Intn(6)),
						})
					}
					if n, err := dbRot.AppendBatch(batch); err != nil || n != len(batch) {
						t.Fatalf("seed %d op %d: rotated stored %d, err %v", seed, op, n, err)
					}
					if n, err := dbSingle.AppendBatch(batch); err != nil || n != len(batch) {
						t.Fatalf("seed %d op %d: single stored %d, err %v", seed, op, n, err)
					}
					refApplyAll(t, ref, batch)
				case v < 8: // checkpoint both
					if err := dbRot.Checkpoint(); err != nil {
						t.Fatalf("seed %d op %d: rotated checkpoint: %v", seed, op, err)
					}
					if err := dbSingle.Checkpoint(); err != nil {
						t.Fatalf("seed %d op %d: single checkpoint: %v", seed, op, err)
					}
				default: // crash-reopen both, then compare all three
					if err := dbRot.Close(); err != nil {
						t.Fatal(err)
					}
					if err := dbSingle.Close(); err != nil {
						t.Fatal(err)
					}
					if dbRot, err = OpenWithOptions(dirRot, optRot); err != nil {
						t.Fatalf("seed %d op %d: rotated reopen: %v", seed, op, err)
					}
					if dbSingle, err = OpenWithOptions(dirSingle, optSingle); err != nil {
						t.Fatalf("seed %d op %d: single reopen: %v", seed, op, err)
					}
					want := refContents(ref)
					assertSameContents(t, contents(dbRot), want)
					assertSameContents(t, contents(dbSingle), want)
				}
			}
			want := refContents(ref)
			assertSameContents(t, contents(dbRot), want)
			assertSameContents(t, contents(dbSingle), want)
			if err := dbRot.Close(); err != nil {
				t.Fatal(err)
			}
			if err := dbSingle.Close(); err != nil {
				t.Fatal(err)
			}
			finalRot, err := OpenWithOptions(dirRot, optRot)
			if err != nil {
				t.Fatal(err)
			}
			defer finalRot.Close()
			finalSingle, err := OpenWithOptions(dirSingle, optSingle)
			if err != nil {
				t.Fatal(err)
			}
			defer finalSingle.Close()
			assertSameContents(t, contents(finalRot), want)
			assertSameContents(t, contents(finalSingle), want)
		})
	}
}

// writeV1Layout crafts a PR 2-era (manifest version 1) durable directory:
// an optional checkpoint snapshot covering cpEntries, plus one
// non-rotating wal-<i>.log per shard holding segEntries' records at base
// offsets matching the checkpoint cut. Returns the expected contents.
func writeV1Layout(t *testing.T, dir string, shards int, cpEntries, segEntries []Entry) map[SeriesKey][]Point {
	t.Helper()
	probe, err := OpenSharded("", shards)
	if err != nil {
		t.Fatal(err)
	}
	const epoch = 5
	offsets := make([]uint64, shards)
	if len(cpEntries) > 0 {
		// The covered records' byte lengths set each shard's replay offset.
		for _, e := range cpEntries {
			offsets[probe.ShardIndexOf(e.Key)] += uint64(4 + 2 + len(e.Key.String()) + 16)
		}
		bySeries := make(map[SeriesKey][]Point)
		var order []SeriesKey
		for _, e := range cpEntries {
			if _, ok := bySeries[e.Key]; !ok {
				order = append(order, e.Key)
			}
			bySeries[e.Key] = append(bySeries[e.Key], Point{At: e.At, Value: e.Value})
		}
		recs := make([]snapshotSeries, 0, len(order))
		for _, k := range order {
			recs = append(recs, snapshotSeries{key: k, points: bySeries[k]})
		}
		sortSnapshotSeries(recs)
		f, err := os.Create(filepath.Join(dir, checkpointName(1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := encodeSnapshot(f, recs); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	segBytes := make([][]byte, shards)
	for _, e := range segEntries {
		si := probe.ShardIndexOf(e.Key)
		segBytes[si] = appendRecord(segBytes[si], e.Key.String(), e.At, e.Value)
	}
	for i := 0; i < shards; i++ {
		buf := encodeLegacySegHeader(legacySegHeader{index: i, count: shards, epoch: epoch, base: offsets[i]})
		buf = append(buf, segBytes[i]...)
		if err := os.WriteFile(filepath.Join(dir, segName(i)), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m := manifest{Version: 1, Epoch: epoch, Segments: shards, CheckpointSeq: 1, Offsets: offsets}
	if len(cpEntries) > 0 {
		m.Checkpoint = checkpointName(1)
	}
	if err := writeManifest(dir, m, nil); err != nil {
		t.Fatal(err)
	}

	ref := newRefDB()
	refApplyAll(t, ref, cpEntries)
	refApplyAll(t, ref, segEntries)
	return refContents(ref)
}

// TestV1ManifestMigration opens PR 2-era directories (manifest version 1,
// one non-rotating segment per shard) and verifies they migrate to the
// rotated layout losslessly, re-commit at a new epoch, survive crashes
// mid-migration idempotently, and never double-apply leftover v1 files.
func TestV1ManifestMigration(t *testing.T) {
	cp := legacyEntries(240)
	tail := laterEntries(120, 50000)

	open := func(t *testing.T, dir string, want map[SeriesKey][]Point) {
		t.Helper()
		db, err := OpenSharded(dir, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertSameContents(t, contents(db), want)
		if db.man.Version != manifestVersion || db.man.Epoch <= 5 {
			t.Fatalf("migration committed manifest version %d epoch %d, want version %d at a later epoch",
				db.man.Version, db.man.Epoch, manifestVersion)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		// The v1 segment files must be gone; the rotated ones in place.
		for i := 0; i < 4; i++ {
			if _, err := os.Stat(filepath.Join(dir, segName(i))); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("v1 segment %d still present after migration (err=%v)", i, err)
			}
			if _, err := os.Stat(filepath.Join(dir, rotSegName(i, 1))); err != nil {
				t.Errorf("rotated segment %d missing after migration: %v", i, err)
			}
		}
		// Idempotent: a reopen changes nothing, and appends persist.
		re, err := OpenSharded(dir, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertSameContents(t, contents(re), want)
		extra := Entry{Key: cp[0].Key, At: t0.Add(55000 * time.Minute), Value: 9}
		if err := re.Append(extra.Key, extra.At, extra.Value); err != nil {
			t.Fatal(err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		re2, err := OpenSharded(dir, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer re2.Close()
		wantExtra := refContents(&refDB{series: want})
		wantExtra[extra.Key] = append(wantExtra[extra.Key], Point{At: extra.At, Value: extra.Value})
		assertSameContents(t, contents(re2), wantExtra)
	}

	t.Run("checkpoint+tails", func(t *testing.T) {
		dir := t.TempDir()
		want := writeV1Layout(t, dir, 4, cp, tail)
		open(t, dir, want)
	})

	t.Run("tails-only", func(t *testing.T) {
		dir := t.TempDir()
		want := writeV1Layout(t, dir, 4, nil, tail)
		open(t, dir, want)
	})

	t.Run("crash-before-v2-commit", func(t *testing.T) {
		// Crash state: the migration died after writing some rotated-layout
		// files but before the v2 manifest rename — the v1 manifest is
		// still authoritative and the stale files must be overwritten or
		// ignored by the redo.
		dir := t.TempDir()
		want := writeV1Layout(t, dir, 4, cp, tail)
		if err := os.WriteFile(filepath.Join(dir, rotSegName(0, 1)), []byte("partial rotated garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, checkpointName(2)), []byte("crashed migration checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, checkpointName(2)+".tmp"), []byte("tmp"), 0o644); err != nil {
			t.Fatal(err)
		}
		open(t, dir, want)
	})

	t.Run("crash-after-v2-commit", func(t *testing.T) {
		// Crash state: the v2 manifest committed but the v1 files were not
		// yet removed. Reopening must not replay them again.
		dir := t.TempDir()
		want := writeV1Layout(t, dir, 4, cp, tail)
		db, err := OpenSharded(dir, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		// Resurrect v1 segments with extra trailing records, so a wrongful
		// replay would be visible as extra points.
		probe, err := OpenSharded("", 4)
		if err != nil {
			t.Fatal(err)
		}
		resurrect := append(append([]Entry(nil), tail...), laterEntries(60, 60000)...)
		segBytes := make([][]byte, 4)
		for _, e := range resurrect {
			si := probe.ShardIndexOf(e.Key)
			segBytes[si] = appendRecord(segBytes[si], e.Key.String(), e.At, e.Value)
		}
		for i := 0; i < 4; i++ {
			buf := encodeLegacySegHeader(legacySegHeader{index: i, count: 4, epoch: 5, base: 0})
			buf = append(buf, segBytes[i]...)
			if err := os.WriteFile(filepath.Join(dir, segName(i)), buf, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		re, err := OpenSharded(dir, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		assertSameContents(t, contents(re), want)
		for i := 0; i < 4; i++ {
			if _, err := os.Stat(filepath.Join(dir, segName(i))); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("stale v1 segment %d not cleaned up (err=%v)", i, err)
			}
		}
	})
}

// TestCheckpointAfterBytesBoundsReplayTail writes ten times a size
// threshold while checkpointing whenever WALBytesSinceCheckpoint crosses
// it — the collector's size-based trigger — and verifies the next open
// replays less than twice the threshold, i.e. recovery is bounded by
// bytes written, not archive age.
func TestCheckpointAfterBytesBoundsReplayTail(t *testing.T) {
	const threshold = 16 << 10
	dir := t.TempDir()
	opts := Options{Shards: 4, RotateBytes: 2048}
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	k := func(i int) SeriesKey {
		return SeriesKey{Dataset: DatasetPrice, Type: fmt.Sprintf("t%d", i%31), Region: "us-east-1", AZ: "us-east-1a"}
	}
	written := uint64(0)
	ts := 0
	for written < 10*threshold {
		batch := make([]Entry, 0, 24)
		for i := 0; i < 24; i++ {
			ts++
			e := Entry{Key: k(ts), At: t0.Add(time.Duration(ts) * time.Second), Value: float64(ts % 7)}
			batch = append(batch, e)
			written += uint64(4 + 2 + len(e.Key.String()) + 16)
		}
		if n, err := db.AppendBatch(batch); err != nil || n != len(batch) {
			t.Fatalf("stored %d, err %v", n, err)
		}
		if db.WALBytesSinceCheckpoint() >= threshold {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := contents(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.ReplayedWALBytes(); got >= 2*threshold {
		t.Fatalf("recovery replayed %d WAL bytes after writing %d; want < 2x the %d-byte checkpoint threshold",
			got, written, threshold)
	}
	assertSameContents(t, contents(re), want)
}

// TestRotSegNameRoundTrip pins the segment file name round trip,
// including sequence numbers past the %06d padding width — a
// width-limited scan would silently drop (and later overwrite) segments
// once a long-lived shard rotates past seq 999999.
func TestRotSegNameRoundTrip(t *testing.T) {
	for _, seq := range []uint64{1, 999999, 1000000, 1234567890} {
		name := rotSegName(3, seq)
		var i int
		var got uint64
		if !scanRotSegName(name, &i, &got) || i != 3 || got != seq {
			t.Fatalf("round trip failed for seq %d (name %s): i=%d got=%d", seq, name, i, got)
		}
	}
	for _, bad := range []string{
		"wal-00000.log", "wal-0-1.log", "wal-00000-01.log",
		"wal-000001-000001.log", "points.wal", "wal-00000-000001.log.tmp",
	} {
		var i int
		var seq uint64
		if scanRotSegName(bad, &i, &seq) {
			t.Fatalf("scan accepted non-canonical name %q", bad)
		}
	}
}

// TestRotationSeqPastMillionRecovers proves recovery walks a chain whose
// sequence numbers outgrow the 6-digit name padding: a shard with
// segments seq 999999 and seq 1000000 replays both and keeps appending.
func TestRotationSeqPastMillionRecovers(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, RotateBytes: -1}
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	k := legacyEntries(1)[0].Key
	for i := 0; i < 10; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Relabel the shard's only segment as seq 999999 and hand-roll a seq
	// 1000000 continuation carrying ten more records.
	oldPath := filepath.Join(dir, rotSegName(0, 1))
	raw, err := os.ReadFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	epoch := binary.LittleEndian.Uint64(raw[16:])
	binary.LittleEndian.PutUint64(raw[24:], 999999)
	if err := os.WriteFile(filepath.Join(dir, rotSegName(0, 999999)), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(oldPath); err != nil {
		t.Fatal(err)
	}
	base := uint64(len(raw) - rotSegHeaderLen)
	next := encodeRotHeader(rotHeader{index: 0, count: 1, epoch: epoch, seq: 1000000, base: base})
	for i := 10; i < 20; i++ {
		next = appendRecord(next, k.String(), t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	if err := os.WriteFile(filepath.Join(dir, rotSegName(0, 1000000)), next, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.PointCount(); got != 20 {
		t.Fatalf("recovered %d points across the seq-1000000 boundary, want 20", got)
	}
	if err := re.Append(k, t0.Add(30*time.Minute), 30); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.PointCount(); got != 21 {
		t.Fatalf("append after the seq-1000000 boundary lost: %d points, want 21", got)
	}
}

// TestRotationFailureDoesNotFailAppend pins the append contract when the
// segment cannot rotate (e.g. disk full creating the next file): the
// append itself succeeds — the record is durable in the still-active
// segment — the failure shows up in RotateFailures, and recovery still
// reproduces every point.
func TestRotationFailureDoesNotFailAppend(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 1, RotateBytes: 256}
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	db.testCrash = func(point string) error {
		if strings.HasPrefix(point, "rotate:") {
			return errCrashPoint
		}
		return nil
	}
	k := legacyEntries(1)[0].Key
	for i := 0; i < 100; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i)); err != nil {
			t.Fatalf("append %d failed because rotation failed: %v", i, err)
		}
	}
	if db.RotateFailures() == 0 {
		t.Fatal("100 appends at a 256-byte threshold triggered no rotation attempts")
	}
	db.testCrash = nil
	want := contents(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertSameContents(t, contents(re), want)
}
