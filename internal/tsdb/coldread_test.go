package tsdb

// Regression tests for the silent cold-read hole: getPointsLocked used to
// `continue` past a cold block whose decode failed, so a long-window
// query over a corrupted (or unreadable) block file returned a silently
// truncated result with a nil error. Every read path must surface
// ErrColdRead instead.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// corruptFirstColdBlock flips one byte inside the first data block of the
// store's first block file. The block index and its CRC are untouched, so
// a reopen succeeds — only decoding the damaged block can detect it.
func corruptFirstColdBlock(t *testing.T, dir string) {
	t.Helper()
	path := filepath.Join(dir, blockFileName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) <= blockHeaderLen {
		t.Fatalf("block file %s has no data section", path)
	}
	raw[blockHeaderLen] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestColdReadErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 4, RotateBytes: 1 << 16, HotTailPoints: 4, BlockPoints: 8, BlockCacheBytes: 1 << 12}
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// One series only, so the file's first block is guaranteed to be hers.
	k := SeriesKey{Dataset: DatasetPrice, Type: "m5.large", Region: "us-east-1", AZ: "us-east-1a"}
	entries := make([]Entry, 100)
	for i := range entries {
		entries[i] = Entry{Key: k, At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}
	}
	if n, err := db.AppendBatch(entries); err != nil || n != len(entries) {
		t.Fatalf("stored %d, err %v", n, err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	corruptFirstColdBlock(t, dir)

	// Reopen so the decoded-block cache is cold: the only way to the
	// damaged bytes is through a real disk read + CRC check.
	db, err = OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatalf("reopen after data-section corruption must succeed (index is intact): %v", err)
	}
	defer db.Close()

	end := t0.Add(1000 * time.Hour)
	if _, err := db.Query(k, time.Time{}, end); !errors.Is(err, ErrColdRead) {
		t.Fatalf("Query error = %v, want ErrColdRead", err)
	}
	// Paged read landing on the damaged block (page 1 of the stream).
	if _, err := db.QueryRange(k, time.Time{}, end, 0, 10); !errors.Is(err, ErrColdRead) {
		t.Fatalf("QueryRange error = %v, want ErrColdRead", err)
	}
	if _, err := db.QueryAfter(k, t0, 0, end, 10); !errors.Is(err, ErrColdRead) {
		t.Fatalf("QueryAfter error = %v, want ErrColdRead", err)
	}
	if _, err := db.ChangeIntervals(k); !errors.Is(err, ErrColdRead) {
		t.Fatalf("ChangeIntervals error = %v, want ErrColdRead", err)
	}
	if _, _, err := db.WindowMean(k, time.Time{}, end); !errors.Is(err, ErrColdRead) {
		t.Fatalf("WindowMean error = %v, want ErrColdRead", err)
	}
	if _, err := db.Grid(k, t0, t0.Add(90*time.Minute), 10*time.Minute); !errors.Is(err, ErrColdRead) {
		t.Fatalf("Grid error = %v, want ErrColdRead", err)
	}

	// Counting never decodes blocks (counts live in the CRC'd index), and
	// the hot tail is still in memory: both must keep working so the
	// store degrades read-by-read, not wholesale.
	if n, err := db.CountRange(k, time.Time{}, end); err != nil || n != len(entries) {
		t.Fatalf("CountRange = (%d, %v), want (%d, nil)", n, err, len(entries))
	}
	if p, ok, err := db.Last(k); err != nil || !ok || p.Value != 99 {
		t.Fatalf("Last = (%+v, %v, %v), want the hot-tail point", p, ok, err)
	}
}
