package tsdb

// Store-internal maintenance: the checkpoint daemon and the sealed-chain
// cap.
//
// PR 3 left checkpoint scheduling to callers — the collector checked
// WALBytesSinceCheckpoint after each tick and called Checkpoint itself.
// That leaves every non-collector writer (the server's bootstrap loop,
// bulk snapshot restores, analysis tools appending directly) with an
// unbounded replay tail, and sealed WAL segments are only ever reclaimed
// when something happens to checkpoint. The maintainer moves both
// responsibilities inside the store:
//
//   - A per-store daemon goroutine (started by OpenWithOptions when any
//     maintenance trigger is configured, stopped by Close) polls every
//     Options.MaintenanceInterval and checkpoints when either trigger
//     fires: WALBytesSinceCheckpoint >= Options.CheckpointAfterBytes, or
//     any shard's sealed-segment chain at or past
//     Options.MaxSealedSegments.
//
//   - Both triggers are additionally enforced synchronously on the
//     append path: an append (or batch) that observes a shard at the cap,
//     or the un-checkpointed WAL at or past the byte threshold,
//     checkpoints before storing — so a store opened with
//     MaxSealedSegments=N never holds more than N sealed segments per
//     shard between appends, and the replay tail stays bounded by
//     CheckpointAfterBytes plus one batch even for writers that compress
//     months of simulated time into one wall-clock second (where a
//     wall-clock poll alone would let the tail grow by seconds of write
//     rate). The checks are two atomic loads (a store-level
//     shards-at-cap count and a store-level byte total), so the hot path
//     pays nothing while neither trigger is hot.
//
// # Single-flight
//
// Every checkpoint — manual Checkpoint(), daemon, append-path force —
// serializes on cpMu, and the maintenance paths re-check their trigger
// *after* acquiring it (daemon) or only TryLock and skip (append path).
// A manual checkpoint that lands first therefore satisfies the daemon's
// trigger: the daemon wakes, finds the counters already reset, and does
// nothing, instead of queueing a redundant snapshot behind the manual
// one. The append-path force never blocks behind an in-flight
// checkpoint: whoever holds cpMu is already reclaiming the chain.

import (
	"time"
)

// DefaultMaintenanceInterval is the daemon's poll period when Options
// leaves MaintenanceInterval zero. The interval only bounds how long a
// *quiesced* store can sit above a trigger threshold: the append path
// enforces the chain cap synchronously and rotations wake the daemon
// immediately, so a shorter interval buys little.
const DefaultMaintenanceInterval = time.Second

// maintenanceRetryBackoff is how long the append path stands down after
// a failed maintenance checkpoint. A latched trigger only clears when a
// checkpoint succeeds, so without the backoff a persistent failure
// (disk full, unwritable directory) would make every append re-attempt
// a full snapshot write synchronously. The daemon's ticker paces its
// own retries.
const maintenanceRetryBackoff = 5 * time.Second

// MaintenanceStats are cumulative counters of the store-driven
// checkpoints. Manual Checkpoint() calls are not counted here.
type MaintenanceStats struct {
	// Checkpoints is how many checkpoints the maintainer committed
	// (daemon ticks and append-path forces together).
	Checkpoints uint64 `json:"checkpoints"`
	// ForcedByBytes counts maintenance checkpoints whose byte trigger
	// (WALBytesSinceCheckpoint >= CheckpointAfterBytes) was live when the
	// checkpoint ran.
	ForcedByBytes uint64 `json:"forcedByBytes"`
	// ForcedByChainLength counts maintenance checkpoints whose
	// sealed-chain trigger (some shard at or past MaxSealedSegments) was
	// live when the checkpoint ran. A checkpoint with both triggers live
	// counts in both.
	ForcedByChainLength uint64 `json:"forcedByChainLength"`
	// ForcedBySeal counts maintenance checkpoints whose hot-point trigger
	// (hot points grown by SealAfterHotPoints since the last checkpoint)
	// was live when the checkpoint ran.
	ForcedBySeal uint64 `json:"forcedBySeal"`
	// ForcedByRetention counts maintenance checkpoints whose retention
	// trigger (some dataset's raw points droppable past its horizon,
	// beyond what the last enforcement evaluated) was live when the
	// checkpoint ran.
	ForcedByRetention uint64 `json:"forcedByRetention"`
	// Errors counts maintenance checkpoints that failed. The daemon
	// retries on its next tick; a climbing counter means the store cannot
	// write snapshots (disk full, permissions).
	Errors uint64 `json:"errors"`
}

// MaintenanceStats returns the cumulative maintainer counters.
func (db *DB) MaintenanceStats() MaintenanceStats {
	return MaintenanceStats{
		Checkpoints:         db.maintCP.Value(),
		ForcedByBytes:       db.maintByBytes.Value(),
		ForcedByChainLength: db.maintByChain.Value(),
		ForcedBySeal:        db.maintBySeal.Value(),
		ForcedByRetention:   db.maintByRet.Value(),
		Errors:              db.maintErrs.Value(),
	}
}

// CheckpointAfterBytes returns the store's own size trigger threshold
// (0 = disabled).
func (db *DB) CheckpointAfterBytes() int64 { return db.cpAfterBytes }

// MaxSealedSegments returns the per-shard sealed-chain cap (0 = no cap).
func (db *DB) MaxSealedSegments() int { return db.maxSealed }

// SelfMaintains reports whether the store drives its own checkpoints:
// it is durable and at least one maintenance trigger is configured.
func (db *DB) SelfMaintains() bool {
	return db.dir != "" && (db.cpAfterBytes > 0 || db.maxSealed > 0 || db.sealAfterHot > 0 || len(db.retain) > 0)
}

// MaintainerActive reports whether the maintenance daemon goroutine is
// running. Even without it, both triggers are still enforced on the
// append path; the daemon additionally covers stores that go idle above
// a threshold (nothing appending, so nothing to enforce on).
func (db *DB) MaintainerActive() bool { return db.maintStop != nil }

// SealedSegments returns the total number of sealed WAL segments on disk
// across all shards — files a checkpoint would reclaim.
func (db *DB) SealedSegments() int {
	n := 0
	for i := range db.shards {
		n += int(db.shards[i].sealedN.Load())
	}
	return n
}

// ShardSealedSegments returns shard i's sealed-chain length.
func (db *DB) ShardSealedSegments(i int) int { return int(db.shards[i].sealedN.Load()) }

// setSealed records shard sh's sealed-chain length and maintains the
// store-level count of shards at or past the cap (the append path's
// one-atomic-load trigger check). Called wherever sh.sealed changes:
// under sh's write lock on the rotation and checkpoint-delete paths, or
// single-threaded during Open — so per-shard transitions never race.
func (db *DB) setSealed(sh *shard, n int) {
	old := sh.sealedN.Swap(int64(n))
	if db.maxSealed <= 0 {
		return
	}
	was, now := old >= int64(db.maxSealed), n >= db.maxSealed
	switch {
	case now && !was:
		db.chainOver.Add(1)
	case was && !now:
		db.chainOver.Add(-1)
	}
}

// startMaintainer launches the daemon goroutine if the options call for
// one. Runs at the end of OpenWithOptions, after recovery, so the daemon
// only ever sees a fully open store.
func (db *DB) startMaintainer(interval time.Duration) {
	if !db.SelfMaintains() || interval < 0 {
		return
	}
	if interval == 0 {
		interval = DefaultMaintenanceInterval
	}
	db.maintStop = make(chan struct{})
	db.maintDone = make(chan struct{})
	go db.maintainLoop(interval)
}

// maintainLoop is the daemon: poll every interval, and additionally wake
// immediately when a rotation pushes a chain to the cap (maintWake).
func (db *DB) maintainLoop(interval time.Duration) {
	defer close(db.maintDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-db.maintStop:
			return
		case <-t.C:
		case <-db.maintWake:
		}
		db.maintainOnce()
	}
}

// maintainOnce checkpoints if a trigger is live. The trigger is
// re-evaluated after acquiring cpMu: a manual checkpoint (or an
// append-path force) that committed while we blocked has already reset
// the counters, and the daemon must not stack a redundant snapshot on
// top of it.
func (db *DB) maintainOnce() {
	if db.closed.Load() || !db.triggerLive() {
		return
	}
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.closed.Load() {
		return
	}
	db.runMaintenanceCheckpointLocked()
}

// chainTriggerHot and byteTriggerHot are the single definition of the
// two maintenance triggers; the daemon's poll, the under-lock re-check,
// and the append path's fast check all call these, so the three sites
// can never enforce different bounds.
func (db *DB) chainTriggerHot() bool {
	return db.maxSealed > 0 && db.chainOver.Load() > 0
}

func (db *DB) byteTriggerHot() bool {
	return db.dir != "" && db.cpAfterBytes > 0 && db.cpBytesTotal.Load() >= uint64(db.cpAfterBytes)
}

// sealTriggerHot fires when hot memory has grown by SealAfterHotPoints
// points since the last checkpoint re-armed the floor. Growth-relative,
// not absolute: the unsealable residual (per-series hot tails and
// partial blocks) stays resident forever, so an absolute threshold would
// re-fire on every tick once the residual alone crossed it.
func (db *DB) sealTriggerHot() bool {
	return db.sealAfterHot > 0 && db.SealsCold() &&
		db.hotPts.Load() >= db.sealFloor.Load()+db.sealAfterHot
}

// triggerLive reports whether any maintenance trigger currently fires.
func (db *DB) triggerLive() bool {
	return db.chainTriggerHot() || db.byteTriggerHot() || db.sealTriggerHot() || db.retentionTriggerHot()
}

// runMaintenanceCheckpointLocked re-checks the triggers and checkpoints.
// The caller holds cpMu.
func (db *DB) runMaintenanceCheckpointLocked() {
	byChain := db.chainTriggerHot()
	byBytes := db.byteTriggerHot()
	bySeal := db.sealTriggerHot()
	byRet := db.retentionTriggerHot()
	if !byChain && !byBytes && !bySeal && !byRet {
		return
	}
	if err := db.checkpointLocked(); err != nil {
		db.maintErrs.Add(1)
		db.maintRetryAt.Store(time.Now().Add(maintenanceRetryBackoff).UnixNano())
		return
	}
	db.maintRetryAt.Store(0)
	db.maintCP.Add(1)
	if byBytes {
		db.maintByBytes.Add(1)
	}
	if byChain {
		db.maintByChain.Add(1)
	}
	if bySeal {
		db.maintBySeal.Add(1)
	}
	if byRet {
		db.maintByRet.Add(1)
	}
}

// enforceMaintenance runs on the append path, before any shard lock is
// taken: when some shard sits at the sealed-chain cap, or the
// un-checkpointed WAL has reached the byte threshold, checkpoint now —
// so the append about to happen cannot grow a chain past the cap, and
// the replay tail cannot outrun the threshold by more than one batch no
// matter how fast the writer is relative to the daemon's wall-clock
// poll. TryLock is the single-flight: if a checkpoint is already in
// flight (manual, daemon, or another appender's force), it will clear
// the trigger — this append proceeds without stacking a second one
// behind it.
func (db *DB) enforceMaintenance() {
	if !db.triggerLive() {
		return
	}
	// After a failed attempt, stand down for the backoff window instead
	// of re-running a doomed full snapshot on every append. The trigger
	// stays latched, so enforcement resumes once the window passes.
	if ra := db.maintRetryAt.Load(); ra != 0 && time.Now().UnixNano() < ra {
		return
	}
	if !db.cpMu.TryLock() {
		return
	}
	defer db.cpMu.Unlock()
	if db.closed.Load() {
		return
	}
	db.runMaintenanceCheckpointLocked()
}

// wakeMaintainer nudges the daemon outside its poll cadence; called by
// rotation when a chain reaches the cap so an idle-after-burst store is
// reclaimed promptly. Non-blocking: a pending wake is enough.
func (db *DB) wakeMaintainer() {
	if db.maintWake == nil {
		return
	}
	select {
	case db.maintWake <- struct{}{}:
	default:
	}
}

// stopMaintainer halts the daemon and waits for it to exit. An in-flight
// maintenance checkpoint completes first, so the caller (Close) never
// closes segment files out from under it.
func (db *DB) stopMaintainer() {
	if db.maintStop == nil {
		return
	}
	close(db.maintStop)
	<-db.maintDone
}
