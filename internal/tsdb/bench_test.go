package tsdb

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkAppend(b *testing.B) {
	db, _ := Open("")
	k := SeriesKey{Dataset: "sps", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Second), float64(i%3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendIfChangedDedup(b *testing.B) {
	db, _ := Open("")
	k := SeriesKey{Dataset: "sps", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 90% of samples repeat the previous value, like real score series.
		v := 3.0
		if i%10 == 0 {
			v = float64(i % 3)
		}
		if _, err := db.AppendIfChanged(k, t0.Add(time.Duration(i)*time.Second), v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueAt(b *testing.B) {
	db, _ := Open("")
	k := SeriesKey{Dataset: "sps", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	for i := 0; i < 10000; i++ {
		db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i%3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ValueAt(k, t0.Add(time.Duration(i%10000)*time.Minute))
	}
}

func BenchmarkWindowMean(b *testing.B) {
	db, _ := Open("")
	k := SeriesKey{Dataset: "sps", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	for i := 0; i < 10000; i++ {
		db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i%3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := t0.Add(time.Duration(i%9000) * time.Minute)
		db.WindowMean(k, from, from.Add(24*time.Hour))
	}
}

// BenchmarkAppendParallel measures concurrent append throughput with the
// single-lock baseline (shards=1) against the sharded store. Each
// goroutine owns one series, like the collector's per-pool writes. On a
// multi-core runner the sharded variants scale with cores while shards=1
// serializes on its one mutex.
func BenchmarkAppendParallel(b *testing.B) {
	for _, shards := range []int{1, DefaultShardCount()} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db, _ := OpenSharded("", shards)
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := seq.Add(1)
				k := SeriesKey{Dataset: "sps", Type: fmt.Sprintf("g%d.xlarge", id), Region: "us-east-1", AZ: "us-east-1a"}
				i := 0
				for pb.Next() {
					if err := db.Append(k, t0.Add(time.Duration(i)*time.Second), float64(i%3)); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkAppendBatch compares per-point appends against one batched
// call per tick (the collector's write shape: many series, one timestamp).
func BenchmarkAppendBatch(b *testing.B) {
	const seriesN = 256
	keys := make([]SeriesKey, seriesN)
	for i := range keys {
		keys[i] = SeriesKey{Dataset: "price", Type: fmt.Sprintf("t%d", i), Region: "us-east-1", AZ: "us-east-1a"}
	}
	b.Run("pointwise", func(b *testing.B) {
		db, _ := Open("")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			at := t0.Add(time.Duration(i) * time.Second)
			for _, k := range keys {
				if err := db.Append(k, at, float64(i)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		db, _ := Open("")
		batch := make([]Entry, seriesN)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			at := t0.Add(time.Duration(i) * time.Second)
			for j, k := range keys {
				batch[j] = Entry{Key: k, At: at, Value: float64(i)}
			}
			if n, err := db.AppendBatch(batch); err != nil || n != seriesN {
				b.Fatalf("stored %d, err %v", n, err)
			}
		}
	})
}

// BenchmarkSnapshotLoad compares restoring a populated store from a
// snapshot against replaying the equivalent WAL.
func BenchmarkSnapshotLoad(b *testing.B) {
	const seriesN, pointsN = 200, 200
	build := func(dir string) *DB {
		db, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < seriesN; s++ {
			k := SeriesKey{Dataset: "sps", Type: fmt.Sprintf("t%d", s), Region: "us-east-1", AZ: "us-east-1a"}
			for i := 0; i < pointsN; i++ {
				if err := db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i%7)); err != nil {
					b.Fatal(err)
				}
			}
		}
		return db
	}
	b.Run("snapshot", func(b *testing.B) {
		db := build("")
		var buf bytes.Buffer
		if err := db.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db2, _ := Open("")
			if _, err := db2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wal-replay", func(b *testing.B) {
		dir := b.TempDir()
		db := build(dir)
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db2, err := Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			if db2.PointCount() != seriesN*pointsN {
				b.Fatalf("replayed %d points", db2.PointCount())
			}
			db2.Close()
		}
	})
}

// BenchmarkAppendParallelDurable measures concurrent append throughput
// with the WAL enabled: segments=1 reproduces the old single-stream WAL
// (every durable append serializing on one log), the sharded variant
// gives each shard its own segment. Each goroutine owns one series. On a
// multi-core runner the segmented store scales with cores while the
// single stream serializes.
func BenchmarkAppendParallelDurable(b *testing.B) {
	for _, shards := range []int{1, DefaultShardCount()} {
		b.Run(fmt.Sprintf("segments=%d", shards), func(b *testing.B) {
			db, err := OpenSharded(b.TempDir(), shards)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := seq.Add(1)
				k := SeriesKey{Dataset: "sps", Type: fmt.Sprintf("g%d.xlarge", id), Region: "us-east-1", AZ: "us-east-1a"}
				i := 0
				for pb.Next() {
					if err := db.Append(k, t0.Add(time.Duration(i)*time.Second), float64(i%3)); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkRecovery compares restart cost without a checkpoint (full
// segment replay of the entire history) against checkpoint + tail (bulk
// snapshot load plus parallel replay of only the records appended since
// the last checkpoint). The data is identical in both runs: 200 series x
// 200 points of history plus a 10-point-per-series tail.
func BenchmarkRecovery(b *testing.B) {
	const seriesN, pointsN, tailN = 200, 200, 10
	build := func(dir string, checkpoint bool) {
		db, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < seriesN; s++ {
			k := SeriesKey{Dataset: "sps", Type: fmt.Sprintf("t%d", s), Region: "us-east-1", AZ: "us-east-1a"}
			for i := 0; i < pointsN; i++ {
				if err := db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i%7)); err != nil {
					b.Fatal(err)
				}
			}
		}
		if checkpoint {
			if err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		for s := 0; s < seriesN; s++ {
			k := SeriesKey{Dataset: "sps", Type: fmt.Sprintf("t%d", s), Region: "us-east-1", AZ: "us-east-1a"}
			for i := 0; i < tailN; i++ {
				if err := db.Append(k, t0.Add(time.Duration(pointsN+i)*time.Minute), float64(i)); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := db.Close(); err != nil {
			b.Fatal(err)
		}
	}
	for _, cfg := range []struct {
		name       string
		checkpoint bool
	}{
		{"full-replay", false},
		{"checkpoint+tail", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			dir := b.TempDir()
			build(dir, cfg.checkpoint)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, err := Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				if db.PointCount() != seriesN*(pointsN+tailN) {
					b.Fatalf("recovered %d points", db.PointCount())
				}
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWALWrite(b *testing.B) {
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	k := SeriesKey{Dataset: "price", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRotatedAppend measures the rotation check's cost on the hot
// durable append path: rotation disabled (one ever-growing segment, the
// pre-rotation behavior) against a small threshold that seals a segment
// every ~1300 appends. Rotation must stay within a few percent of the
// non-rotating baseline at the default threshold — the check is two
// integer compares, and the seal's three fsyncs amortize over the ~190k
// records that fill a default-sized segment. The 64KB variant is a
// deliberate stress case showing the per-seal cost when thresholds are
// set far too small (one seal per ~1300 appends).
func BenchmarkRotatedAppend(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		rotate int64
	}{
		{"rotate=off", -1},
		{"rotate=default", DefaultRotateBytes},
		{"rotate=64KB", 64 << 10},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db, err := OpenWithOptions(b.TempDir(), Options{Shards: 4, RotateBytes: cfg.rotate})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			k := SeriesKey{Dataset: "price", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.Append(k, t0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckpointCompaction compares checkpoint cost over a large WAL
// tail under the two compaction strategies. Both variants pay the same
// snapshot write for the same data; "unlink" is the rotated store's real
// checkpoint (compaction = manifest commit + unlink of sealed segments),
// while "rewrite-baseline" adds the whole-file copy + fsync + rename per
// segment that the pre-rotation compaction performed — the write
// amplification that grew with tail size and motivated rotation.
func BenchmarkCheckpointCompaction(b *testing.B) {
	build := func(b *testing.B, dir string, rotate int64, tailBytes int) *DB {
		b.Helper()
		db, err := OpenWithOptions(dir, Options{Shards: 1, RotateBytes: rotate})
		if err != nil {
			b.Fatal(err)
		}
		k := SeriesKey{Dataset: "price", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
		recLen := 4 + 2 + len(k.String()) + 16
		n := tailBytes / recLen
		batch := make([]Entry, 0, 4096)
		for i := 0; i < n; i++ {
			batch = append(batch, Entry{Key: k, At: t0.Add(time.Duration(i) * time.Second), Value: float64(i)})
			if len(batch) == cap(batch) || i == n-1 {
				if stored, err := db.AppendBatch(batch); err != nil || stored != len(batch) {
					b.Fatalf("stored %d, err %v", stored, err)
				}
				batch = batch[:0]
			}
		}
		if err := db.Flush(); err != nil {
			b.Fatal(err)
		}
		return db
	}
	rewriteSegments := func(b *testing.B, dir string) {
		b.Helper()
		paths, err := filepath.Glob(filepath.Join(dir, "wal-*-*.log"))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range paths {
			src, err := os.Open(p)
			if err != nil {
				b.Fatal(err)
			}
			tmp := p + ".rw"
			dst, err := os.Create(tmp)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(dst, src); err != nil {
				b.Fatal(err)
			}
			if err := dst.Sync(); err != nil {
				b.Fatal(err)
			}
			dst.Close()
			src.Close()
			if err := os.Rename(tmp, p); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, mb := range []int{8, 64} {
		b.Run(fmt.Sprintf("unlink/tail=%dMB", mb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				db := build(b, dir, 1<<20, mb<<20)
				b.StartTimer()
				if err := db.Checkpoint(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				db.Close()
			}
		})
		b.Run(fmt.Sprintf("rewrite-baseline/tail=%dMB", mb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				db := build(b, dir, -1, mb<<20)
				b.StartTimer()
				if err := db.Checkpoint(); err != nil {
					b.Fatal(err)
				}
				rewriteSegments(b, dir)
				b.StopTimer()
				db.Close()
			}
		})
	}
}

// benchFill appends seriesN x perSeries points through batched ticks
// (one timestamp across all series per batch, the collector's shape) and
// returns the keys. Values repeat in short runs and timestamps step
// uniformly — the score-series shape the block codec is built for.
func benchFill(b *testing.B, db *DB, seriesN, perSeries int) []SeriesKey {
	b.Helper()
	keys := make([]SeriesKey, seriesN)
	for i := range keys {
		keys[i] = SeriesKey{Dataset: "sps", Type: fmt.Sprintf("t%d", i), Region: "us-east-1", AZ: "us-east-1a"}
	}
	batch := make([]Entry, seriesN)
	for t := 0; t < perSeries; t++ {
		at := t0.Add(time.Duration(t) * time.Minute)
		for j, k := range keys {
			batch[j] = Entry{Key: k, At: at, Value: float64(((t + j) / 7) % 5)}
		}
		if n, err := db.AppendBatch(batch); err != nil || n != seriesN {
			b.Fatalf("stored %d, err %v", n, err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	return keys
}

// BenchmarkSeal measures the cost of the seal step itself: a checkpoint
// over a hot archive that compresses everything behind the tail into
// block files. Reported alongside ns/op: sealed points per second of
// timed work, and the on-disk compression ratio (sealed bytes over the
// 16-byte-per-point raw snapshot encoding — the ISSUE target is <= 0.25).
func BenchmarkSeal(b *testing.B) {
	const seriesN, perSeries = 32, 4096
	var sealedPts, sealedBytes int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		db, err := OpenWithOptions(dir, Options{Shards: 4, HotTailPoints: 64, BlockPoints: 512})
		if err != nil {
			b.Fatal(err)
		}
		benchFill(b, db, seriesN, perSeries)
		b.StartTimer()
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		sealedPts += db.ColdPointCount()
		sealedBytes += db.ColdCompressedBytes()
		db.Close()
	}
	if sealedPts == 0 {
		b.Fatal("checkpoint sealed nothing")
	}
	b.ReportMetric(float64(sealedPts)/b.Elapsed().Seconds(), "points/s")
	b.ReportMetric(float64(sealedBytes)/float64(16*sealedPts), "compressed/raw")
}

// BenchmarkColdQuery measures windowed reads over deep history when that
// history lives in compressed cold blocks (decoded on demand through the
// block cache) against the all-hot baseline where every point is a
// resident []Point entry. The cold path pays decode on cache misses and
// a copy on hits; the baseline is the memory ceiling the block tier
// exists to remove.
func BenchmarkColdQuery(b *testing.B) {
	const seriesN, perSeries, window = 8, 8192, 512
	for _, cfg := range []struct {
		name string
		opts Options
		seal bool
	}{
		{"all-hot", Options{Shards: 4, HotTailPoints: -1}, false},
		{"cold-blocks", Options{Shards: 4, HotTailPoints: 256, BlockPoints: 512}, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			db, err := OpenWithOptions(b.TempDir(), cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			keys := benchFill(b, db, seriesN, perSeries)
			if cfg.seal {
				if err := db.Checkpoint(); err != nil {
					b.Fatal(err)
				}
				if db.SealedBlocks() == 0 {
					b.Fatal("checkpoint sealed nothing")
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Windows rotate through the sealed region, far behind the
				// hot tail, so the cold variant reads blocks, not the tail.
				from := t0.Add(time.Duration((i*613)%(perSeries-window-512)) * time.Minute)
				pts := noerr(db.Query(keys[i%seriesN], from, from.Add(window*time.Minute)))
				if len(pts) == 0 {
					b.Fatal("empty window")
				}
			}
		})
	}
}

// residentHeapPrinted dedups memstat rows across the b.N calibration
// reruns (and the -cpu matrix) so each scenario lands in the bench
// transcript — and the BENCH artifact's memory section — exactly once.
var residentHeapPrinted sync.Map

// BenchmarkResidentHeap measures the steady-state heap of a recovered
// archive under the two storage layouts: every point resident ([]Point
// hot series) versus sealed history (compressed blocks on disk, only the
// hot tail and block index resident). It prints one machine-readable
// `memstat:` line per scenario for cmd/benchjson's memory section; the
// ISSUE target is a >= 4x drop for the cold-dominated layout. The build
// runs inside the timed region on purpose: the expensive setup keeps the
// calibration loop at a handful of iterations.
func BenchmarkResidentHeap(b *testing.B) {
	const seriesN, perSeries = 40, 8192
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"all-hot", Options{Shards: 4, HotTailPoints: -1}},
		{"cold-sealed", Options{Shards: 4}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dir := b.TempDir()
				db, err := OpenWithOptions(dir, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				benchFill(b, db, seriesN, perSeries)
				if err := db.Checkpoint(); err != nil {
					b.Fatal(err)
				}
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
				runtime.GC()
				var before runtime.MemStats
				runtime.ReadMemStats(&before)
				db, err = OpenWithOptions(dir, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				runtime.GC()
				var after runtime.MemStats
				runtime.ReadMemStats(&after)
				points := int64(db.PointCount())
				if points != seriesN*perSeries {
					b.Fatalf("recovered %d points", points)
				}
				heap := int64(after.HeapAlloc) - int64(before.HeapAlloc)
				if heap < 0 {
					heap = 0
				}
				perPoint := float64(heap) / float64(points)
				if _, dup := residentHeapPrinted.LoadOrStore(cfg.name, true); !dup {
					fmt.Printf("memstat: scenario=%s points=%d heapBytes=%d bytesPerPoint=%.2f\n",
						cfg.name, points, heap, perPoint)
				}
				b.ReportMetric(perPoint, "heapB/point")
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// rollupBenchFill appends `days` of one-point-per-minute price data on a
// single series and seals it, so the 1h rollup holds 24*days buckets and
// the 1d rollup `days`.
func rollupBenchFill(b *testing.B, db *DB, days int) SeriesKey {
	b.Helper()
	k := SeriesKey{Dataset: DatasetPrice, Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	const perDay = 24 * 60
	batch := make([]Entry, 0, perDay)
	for d := 0; d < days; d++ {
		batch = batch[:0]
		for i := 0; i < perDay; i++ {
			at := t0.Add(time.Duration(d*perDay+i) * time.Minute)
			batch = append(batch, Entry{Key: k, At: at, Value: float64((d*perDay + i) % 97)})
		}
		if n, err := db.AppendBatch(batch); err != nil || n != len(batch) {
			b.Fatalf("day %d: stored %d, err %v", d, n, err)
		}
	}
	return k
}

// rollupStatPrinted dedups rollupstat rows across the b.N calibration
// reruns so each tier lands in the BENCH artifact's rollup section once.
var rollupStatPrinted sync.Map

// BenchmarkRollupQuery measures the same 90-day window served from each
// resolution tier of one sealed store: the raw series against its 1h and
// 1d mean rollups. The printed `rollupstat:` rows carry the scan counts
// for cmd/benchjson's rollup section — the ISSUE target is the 1h tier
// scanning >= 50x fewer points than raw.
func BenchmarkRollupQuery(b *testing.B) {
	const days = 90
	opts := Options{Shards: 2, RotateBytes: 8 << 20, HotTailPoints: 64, BlockPoints: 512, BlockCacheBytes: 4 << 20}
	db, err := OpenWithOptions(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	k := rollupBenchFill(b, db, days)
	if err := db.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	ro := db.Rollups()
	from, to := t0, t0.Add(days*24*time.Hour)
	for _, tier := range []struct {
		name string
		db   *DB
		key  SeriesKey
	}{
		{"raw", db, k},
		{"1h", ro, RollupKey(k, Res1h, AggMean)},
		{"1d", ro, RollupKey(k, Res1d, AggMean)},
	} {
		b.Run(tier.name, func(b *testing.B) {
			var pts []Point
			s0 := tier.db.ScannedPoints()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pts = noerr(tier.db.Query(tier.key, from, to))
				if len(pts) == 0 {
					b.Fatal("empty window")
				}
			}
			b.StopTimer()
			scanned := (tier.db.ScannedPoints() - s0) / uint64(b.N)
			b.ReportMetric(float64(len(pts)), "points")
			b.ReportMetric(float64(scanned), "scanned")
			if _, dup := rollupStatPrinted.LoadOrStore(tier.name, true); !dup {
				fmt.Printf("rollupstat: tier=%s windowDays=%d points=%d scanned=%d\n",
					tier.name, days, len(pts), scanned)
			}
		})
	}
}

// BenchmarkRollupBuild measures the checkpoint that seals 30 days of raw
// data, without rollup tiers (seal only) and with them (seal + the
// incremental rollup build), so the build's marginal cost is the delta
// between the two rows.
func BenchmarkRollupBuild(b *testing.B) {
	const days = 30
	for _, cfg := range []struct {
		name      string
		noRollups bool
	}{
		{"seal-only", true},
		{"seal+rollup", false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var built int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				opts := Options{Shards: 2, RotateBytes: 8 << 20, HotTailPoints: 64, BlockPoints: 512, BlockCacheBytes: 4 << 20}
				opts.noRollups = cfg.noRollups
				db, err := OpenWithOptions(b.TempDir(), opts)
				if err != nil {
					b.Fatal(err)
				}
				rollupBenchFill(b, db, days)
				b.StartTimer()
				if err := db.Checkpoint(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if ro := db.Rollups(); ro != nil {
					built += int64(ro.PointCount())
				}
				db.Close()
			}
			if !cfg.noRollups && built == 0 {
				b.Fatal("checkpoint built no rollup points")
			}
			b.ReportMetric(float64(days*24*60)/b.Elapsed().Seconds()*float64(b.N), "raw-points/s")
		})
	}
}
