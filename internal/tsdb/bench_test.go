package tsdb

import (
	"testing"
	"time"
)

func BenchmarkAppend(b *testing.B) {
	db, _ := Open("")
	k := SeriesKey{Dataset: "sps", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Second), float64(i%3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendIfChangedDedup(b *testing.B) {
	db, _ := Open("")
	k := SeriesKey{Dataset: "sps", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 90% of samples repeat the previous value, like real score series.
		v := 3.0
		if i%10 == 0 {
			v = float64(i % 3)
		}
		if _, err := db.AppendIfChanged(k, t0.Add(time.Duration(i)*time.Second), v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValueAt(b *testing.B) {
	db, _ := Open("")
	k := SeriesKey{Dataset: "sps", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	for i := 0; i < 10000; i++ {
		db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i%3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ValueAt(k, t0.Add(time.Duration(i%10000)*time.Minute))
	}
}

func BenchmarkWindowMean(b *testing.B) {
	db, _ := Open("")
	k := SeriesKey{Dataset: "sps", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	for i := 0; i < 10000; i++ {
		db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i%3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := t0.Add(time.Duration(i%9000) * time.Minute)
		db.WindowMean(k, from, from.Add(24*time.Hour))
	}
}

func BenchmarkWALWrite(b *testing.B) {
	db, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	k := SeriesKey{Dataset: "price", Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
