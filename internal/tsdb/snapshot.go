package tsdb

// Snapshot format (version 1)
//
// A snapshot is a one-pass, re-loadable dump of every series in the store,
// the fast alternative to replaying a WAL point by point:
//
//	header:  8-byte magic "SLTSDBSN" | u16 version | u32 series count
//	record:  u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//	payload: u16 key length | canonical key bytes |
//	         u32 point count | point count × (i64 unix-nanos | f64 bits)
//
// All integers are little-endian. Every record is independently
// length-prefixed and CRC-checked, so corruption is detected per series
// and a load never panics on hostile input: it returns an error. Series
// appear sorted by canonical key, so the same store state always encodes
// to the same bytes (useful for tests and content-addressed storage).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"
)

const (
	snapshotMagic   = "SLTSDBSN"
	snapshotVersion = 1
	// maxSnapshotPayload bounds one series record (64 MiB ≈ 4M points),
	// so a corrupt length prefix cannot trigger a huge allocation.
	maxSnapshotPayload = 1 << 26
)

// captureWith collects every series' point slice, sorted by canonical
// key. Each shard is captured atomically under its lock; points are
// append-only, so everything below the captured lengths is immutable
// afterwards and the result can be encoded without further locking. fn,
// when non-nil, runs per shard while that shard's lock is held — it is
// how checkpoint records the exact WAL cut (offset, segment list) that
// matches the captured series, without duplicating this loop. An fn error
// aborts the capture. A plain capture (fn == nil) only reads, so it takes
// the shared lock and never stalls concurrent appends or queries; with fn
// set the exclusive lock is taken, because fn mutates shard state (it
// flushes the WAL writer and reads the cut offset).
func (db *DB) captureWith(fn func(i int, sh *shard) error) ([]snapshotSeries, error) {
	var recs []snapshotSeries
	for i := range db.shards {
		sh := &db.shards[i]
		if fn == nil {
			sh.mu.RLock()
		} else {
			sh.mu.Lock()
			if err := fn(i, sh); err != nil {
				sh.mu.Unlock()
				return nil, err
			}
		}
		for k, s := range sh.series {
			recs = append(recs, snapshotSeries{key: k, points: s.points})
		}
		if fn == nil {
			sh.mu.RUnlock()
		} else {
			sh.mu.Unlock()
		}
	}
	sortSnapshotSeries(recs)
	return recs, nil
}

// capture is the fn-less captureWith, used by layout commits and the
// checkpoint protocol. It captures only hot (in-memory) points: on a
// store with sealed history, cold blocks are carried by the manifest's
// block list and must not be duplicated into checkpoint snapshots.
func (db *DB) capture() []snapshotSeries {
	recs, _ := db.captureWith(nil)
	return recs
}

// captureFull collects every series' complete history — sealed blocks
// decoded and placed ahead of the hot tail — sorted by canonical key.
// This is the capture behind WriteSnapshot/SaveSnapshot, whose output
// must be a self-contained re-loadable archive regardless of how the
// store tiers it internally. An unreadable cold block fails the whole
// capture (ErrColdRead): a snapshot with silently missing history would
// look complete to every later restore.
func (db *DB) captureFull() ([]snapshotSeries, error) {
	var recs []snapshotSeries
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for k, s := range sh.series {
			pts, err := db.getPointsLocked(s, 0, seriesTotal(s))
			if err != nil {
				sh.mu.RUnlock()
				return nil, fmt.Errorf("tsdb: snapshot capture of %v: %w", k, err)
			}
			recs = append(recs, snapshotSeries{key: k, points: pts})
		}
		sh.mu.RUnlock()
	}
	sortSnapshotSeries(recs)
	return recs, nil
}

// WriteSnapshot writes the whole store to w in snapshot format. Concurrent
// appends during the write are safe: each series is captured atomically
// under its shard lock, series listed at the start are never dropped, and
// series created afterwards are simply not included.
func (db *DB) WriteSnapshot(w io.Writer) error {
	recs, err := db.captureFull()
	if err != nil {
		return err
	}
	return encodeSnapshot(w, recs)
}

// chunkSnapshotSeries splits any series whose record payload would exceed
// limit bytes into multiple consecutive records of the same key. The
// decoder accepts repeated keys (consecutive chunks merge back as ordered
// bulk appends), so chunking keeps every record below the cap that
// decodeSnapshot enforces — without it, a series beyond ~4M points would
// encode into a snapshot that can never be loaded, fatal once a
// checkpoint has truncated the WAL behind it.
func chunkSnapshotSeries(recs []snapshotSeries, limit int) []snapshotSeries {
	out := make([]snapshotSeries, 0, len(recs))
	for _, rec := range recs {
		maxPts := (limit - 2 - len(rec.canonKey()) - 4) / 16
		if maxPts < 1 {
			maxPts = 1 // unreachable: validKey bounds keys far below limit
		}
		if len(rec.points) <= maxPts {
			out = append(out, rec)
			continue
		}
		for start := 0; start < len(rec.points); start += maxPts {
			end := start + maxPts
			if end > len(rec.points) {
				end = len(rec.points)
			}
			out = append(out, snapshotSeries{key: rec.key, canon: rec.canon, points: rec.points[start:end]})
		}
	}
	return out
}

// encodeSnapshot writes the captured records to w in snapshot format.
// Records must already be sorted by canonical key.
func encodeSnapshot(w io.Writer, recs []snapshotSeries) error {
	recs = chunkSnapshotSeries(recs, maxSnapshotPayload)
	bw := bufio.NewWriterSize(w, 1<<16)
	var tmp [8]byte
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return fmt.Errorf("tsdb: snapshot write: %w", err)
	}
	binary.LittleEndian.PutUint16(tmp[:2], snapshotVersion)
	binary.LittleEndian.PutUint32(tmp[2:6], uint32(len(recs)))
	if _, err := bw.Write(tmp[:6]); err != nil {
		return fmt.Errorf("tsdb: snapshot write: %w", err)
	}
	for _, rec := range recs {
		pts := rec.points
		key := rec.canonKey()
		payload := make([]byte, 0, 2+len(key)+4+16*len(pts))
		binary.LittleEndian.PutUint16(tmp[:2], uint16(len(key)))
		payload = append(payload, tmp[:2]...)
		payload = append(payload, key...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(pts)))
		payload = append(payload, tmp[:4]...)
		for _, p := range pts {
			binary.LittleEndian.PutUint64(tmp[:], uint64(p.At.UnixNano()))
			payload = append(payload, tmp[:8]...)
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(p.Value))
			payload = append(payload, tmp[:8]...)
		}
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(tmp[4:8], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(tmp[:8]); err != nil {
			return fmt.Errorf("tsdb: snapshot write: %w", err)
		}
		if _, err := bw.Write(payload); err != nil {
			return fmt.Errorf("tsdb: snapshot write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("tsdb: snapshot write: %w", err)
	}
	return nil
}

// SaveSnapshot atomically writes the snapshot to path (temp file, fsync,
// rename, directory fsync).
func (db *DB) SaveSnapshot(path string) error {
	return atomicWriteFile(path, db.WriteSnapshot, nil)
}

// snapshotSeries is one series record, either captured from the store or
// decoded from a snapshot stream.
type snapshotSeries struct {
	key SeriesKey
	// canon caches key's canonical string form. sortSnapshotSeries fills
	// it once; the chunking and encoding passes reuse it instead of
	// re-rendering the key (previously up to three times per record).
	canon  string
	points []Point
}

// canonKey returns the cached canonical key form, rendering it only for
// records (e.g. hand-built in tests) that skipped sortSnapshotSeries.
func (s *snapshotSeries) canonKey() string {
	if s.canon == "" {
		s.canon = s.key.String()
	}
	return s.canon
}

// decodeSnapshot parses and validates the full stream before anything is
// applied to a store, so malformed input never leaves a DB half-loaded.
func decodeSnapshot(r io.Reader) ([]snapshotSeries, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(snapshotMagic)+6)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("tsdb: snapshot header: %w", err)
	}
	if string(head[:len(snapshotMagic)]) != snapshotMagic {
		return nil, errors.New("tsdb: snapshot: bad magic")
	}
	if v := binary.LittleEndian.Uint16(head[len(snapshotMagic):]); v != snapshotVersion {
		return nil, fmt.Errorf("tsdb: snapshot: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint32(head[len(snapshotMagic)+2:])
	out := make([]snapshotSeries, 0, min(int(count), 4096))
	var rec [8]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("tsdb: snapshot record %d header: %w", i, err)
		}
		plen := binary.LittleEndian.Uint32(rec[:4])
		crc := binary.LittleEndian.Uint32(rec[4:8])
		if plen < 6 || plen > maxSnapshotPayload {
			return nil, fmt.Errorf("tsdb: snapshot record %d: invalid payload length %d", i, plen)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("tsdb: snapshot record %d body: %w", i, err)
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("tsdb: snapshot record %d: CRC mismatch", i)
		}
		keyLen := int(binary.LittleEndian.Uint16(payload[:2]))
		if 2+keyLen+4 > len(payload) {
			return nil, fmt.Errorf("tsdb: snapshot record %d: key length %d overruns payload", i, keyLen)
		}
		k, err := ParseSeriesKey(string(payload[2 : 2+keyLen]))
		if err != nil {
			return nil, fmt.Errorf("tsdb: snapshot record %d: %w", i, err)
		}
		npts := binary.LittleEndian.Uint32(payload[2+keyLen:])
		if int(plen) != 2+keyLen+4+16*int(npts) {
			return nil, fmt.Errorf("tsdb: snapshot record %d: point count %d disagrees with payload length %d", i, npts, plen)
		}
		pts := make([]Point, npts)
		off := 2 + keyLen + 4
		for j := range pts {
			at := time.Unix(0, int64(binary.LittleEndian.Uint64(payload[off:]))).UTC()
			v := math.Float64frombits(binary.LittleEndian.Uint64(payload[off+8:]))
			if j > 0 && at.Before(pts[j-1].At) {
				return nil, fmt.Errorf("tsdb: snapshot record %d (%v): points out of order", i, k)
			}
			pts[j] = Point{At: at, Value: v}
			off += 16
		}
		out = append(out, snapshotSeries{key: k, points: pts})
	}
	// The stream must end exactly after the last record; trailing bytes
	// mean the header's series count was corrupted.
	var one [1]byte
	if _, err := io.ReadFull(br, one[:]); err != io.EOF {
		return nil, errors.New("tsdb: snapshot: trailing data after last record")
	}
	return out, nil
}

// LoadSnapshot reads a snapshot from r into the store. The stream is fully
// decoded and validated before anything is applied: on error the store is
// left unmodified, and hostile input never panics. Loaded series merge
// into existing ones as bulk appends (a record's first point must not
// precede the series' current last point). When the store is durable,
// loaded points are re-logged to the per-shard WAL segments — written and
// flushed before the in-memory apply, so a later restart that replays the
// segments alone still recovers the full archive, and a failed re-log
// (e.g. disk full) leaves the in-memory store unmodified. A failed re-log
// can leave a truncated final record in a segment; replay tolerates that,
// but the archive should then be restored from the snapshot again after
// freeing space. (Calling Checkpoint after a large restore folds the
// re-logged records back into a snapshot and truncates the segments.)
// LoadSnapshot must not run concurrently with appends to the same series
// (it is a startup/restore operation). It returns the number of series
// records applied.
func (db *DB) LoadSnapshot(r io.Reader) (int, error) {
	if db.readOnly {
		return 0, errors.New("tsdb: read-only store rejects snapshot loads")
	}
	all, err := decodeSnapshot(r)
	if err != nil {
		return 0, err
	}
	if db.closed.Load() {
		return 0, errors.New("tsdb: store is closed")
	}
	// Validate every merge first — against the store and against earlier
	// records of the same key — so a failed load changes nothing.
	lastAt := make(map[SeriesKey]time.Time)
	for _, rec := range all {
		if len(rec.points) == 0 {
			continue
		}
		last, have := lastAt[rec.key]
		if !have {
			p, ok, err := db.Last(rec.key)
			if err != nil {
				return 0, fmt.Errorf("tsdb: snapshot overlap check for %v: %w", rec.key, err)
			}
			if ok {
				last, have = p.At, true
			}
		}
		if have && rec.points[0].At.Before(last) {
			return 0, fmt.Errorf("tsdb: snapshot overlaps series %v: %v before %v", rec.key, rec.points[0].At, last)
		}
		lastAt[rec.key] = rec.points[len(rec.points)-1].At
	}
	// The re-log and the in-memory apply must form one atomic unit with
	// respect to Checkpoint: a checkpoint cutting a shard between the two
	// phases would record a WAL offset past the re-logged records while
	// its snapshot lacks the points, and the next recovery would drop
	// them. cpMu excludes checkpoints (and layout changes) for the
	// duration; lock order (cpMu, then one shard at a time) matches
	// Checkpoint's.
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.Durable() {
		// Group records by shard and write each group to that shard's
		// segment — all groups land durably before the in-memory apply.
		bufs := make([][]byte, len(db.shards))
		for _, rec := range all {
			si := db.shardIndex(rec.key)
			key := rec.key.String()
			for _, p := range rec.points {
				bufs[si] = appendRecord(bufs[si], key, p.At, p.Value)
			}
		}
		for si, buf := range bufs {
			if len(buf) == 0 {
				continue
			}
			sh := &db.shards[si]
			sh.mu.Lock()
			if sh.wal == nil {
				sh.mu.Unlock()
				return 0, errors.New("tsdb: store is closed")
			}
			_, err := sh.wal.Write(buf)
			if err == nil {
				err = sh.wal.Flush()
			}
			if err == nil {
				sh.walOff += uint64(len(buf))
				sh.cpBytes.Add(uint64(len(buf)))
				db.cpBytesTotal.Add(uint64(len(buf)))
				if db.rotateBytes > 0 && sh.walOff-sh.walBase >= uint64(db.rotateBytes) {
					// Best-effort: the records are already durable in the
					// current segment; a failed rotation just leaves it
					// oversized until a later append rotates it, counted
					// like the append path's failures.
					if rerr := db.rotateLocked(sh); rerr != nil {
						db.rotateFails.Add(1)
					}
				}
			}
			sh.mu.Unlock()
			if err != nil {
				return 0, fmt.Errorf("tsdb: snapshot wal re-log: %w", err)
			}
		}
	}
	for _, rec := range all {
		if len(rec.points) == 0 {
			continue
		}
		sh := db.shardFor(rec.key)
		sh.mu.Lock()
		db.mergeSeries(sh, rec.key, rec.points...)
		sh.mu.Unlock()
	}
	return len(all), nil
}

// LoadSnapshotFile loads the snapshot at path; see LoadSnapshot.
func (db *DB) LoadSnapshotFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("tsdb: snapshot open: %w", err)
	}
	defer f.Close()
	return db.LoadSnapshot(f)
}
