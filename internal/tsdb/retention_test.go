package tsdb

// Per-dataset raw retention: the maintenance tail may drop sealed raw
// blocks past the horizon, but never a point whose rollup buckets are
// not committed — including across crashes at every stage of the
// enforcement protocol (the crash-matrix cells below).

import (
	"errors"
	"testing"
	"time"
)

func retentionOpts() Options {
	o := rollupOpts()
	o.RetainRaw = map[string]time.Duration{DatasetPrice: 24 * time.Hour}
	return o
}

// assertNeverDropUncovered is the core invariant: every point of ref
// missing from db must (a) be a prefix drop — the surviving points are
// exactly a suffix of ref, no interior holes — and (b) have both its 1h
// and 1d buckets present in the committed rollup tier.
func assertNeverDropUncovered(t *testing.T, db *DB, ref map[SeriesKey][]Point) {
	t.Helper()
	ro := db.Rollups()
	end := t0.Add(100000 * time.Hour)
	for k, want := range ref {
		got := noerr(db.Query(k, time.Time{}, end))
		if len(got) > len(want) {
			t.Fatalf("%v: store has %d points, ref only %d", k, len(got), len(want))
		}
		tail := want[len(want)-len(got):]
		for i := range got {
			if !got[i].At.Equal(tail[i].At) || got[i].Value != tail[i].Value {
				t.Fatalf("%v: surviving points are not a suffix of the reference (index %d: got %v, want %v)", k, i, got[i], tail[i])
			}
		}
		for _, p := range want[:len(want)-len(got)] {
			for _, res := range rollupResolutions {
				bs := time.Unix(0, bucketStart(p.At.UnixNano(), res)).UTC()
				rk := RollupKey(k, res, AggMean)
				cov := noerr(ro.Query(rk, bs, bs))
				if len(cov) != 1 {
					t.Fatalf("%v: raw point at %v was dropped but its %s bucket %v has no committed rollup",
						k, p.At, ResName(res), bs)
				}
			}
		}
	}
}

// retentionWorkload appends ~5 days of price data (retained at 24h)
// plus an unretained dataset, returning the reference contents.
func retentionWorkload(t *testing.T, db *DB) map[SeriesKey][]Point {
	t.Helper()
	a := rollupEntries(3000, 0) // ~5.2 days across 4 series (one is price)
	if n, err := db.AppendBatch(a); err != nil || n != len(a) {
		t.Fatalf("stored %d, err %v", n, err)
	}
	ref := make(map[SeriesKey][]Point)
	for _, e := range a {
		ref[e.Key] = append(ref[e.Key], Point{At: e.At, Value: e.Value})
	}
	return ref
}

func TestRetentionDropsOnlyCovered(t *testing.T) {
	dir := t.TempDir()
	opts := retentionOpts()
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref := retentionWorkload(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	cut, ok := db.RetentionCut(DatasetPrice)
	if !ok || cut.IsZero() {
		t.Fatal("no retention cut committed after checkpoint")
	}
	stats := db.RetentionStats()
	if len(stats) != 1 || stats[0].Dataset != DatasetPrice {
		t.Fatalf("RetentionStats = %+v, want one entry for %s", stats, DatasetPrice)
	}
	if stats[0].DroppedPoints == 0 {
		t.Fatal("five days of data past a 24h horizon dropped nothing")
	}
	if stats[0].Horizon != 24*time.Hour || !stats[0].Cut.Equal(cut) {
		t.Fatalf("RetentionStats = %+v, want horizon 24h and cut %v", stats[0], cut)
	}
	assertNeverDropUncovered(t, db, ref)

	// Unretained datasets must be untouched.
	for k, want := range ref {
		if k.Dataset == DatasetPrice {
			continue
		}
		if got := noerr(db.Query(k, time.Time{}, t0.Add(100000*time.Hour))); len(got) != len(want) {
			t.Fatalf("unretained %v lost points: %d of %d remain", k, len(got), len(want))
		}
	}
	// Something must actually have been dropped below the cut.
	for k, want := range ref {
		if k.Dataset != DatasetPrice {
			continue
		}
		got := noerr(db.Query(k, time.Time{}, t0.Add(100000*time.Hour)))
		if len(got) == len(want) {
			t.Fatalf("retained %v dropped nothing", k)
		}
	}

	// The cut is durable and idempotent across reopen.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	cut2, ok := re.RetentionCut(DatasetPrice)
	if !ok || !cut2.Equal(cut) {
		t.Fatalf("reopened cut = %v (%v), want %v", cut2, ok, cut)
	}
	assertNeverDropUncovered(t, re, ref)
	assertRollupsMatchRef(t, re, ref)
}

// crashMatrixWorkload lays down two phases of price-only data around a
// clean checkpoint. The first checkpoint seals block file A; the second
// (the one each matrix cell crashes) advances the cut past everything in
// file A, so the fully-dead-file unlink path genuinely runs.
func crashMatrixWorkload(t *testing.T, db *DB) map[SeriesKey][]Point {
	t.Helper()
	keys := []SeriesKey{
		{Dataset: DatasetPrice, Type: "m5.large", Region: "us-east-1", AZ: "us-east-1a"},
		{Dataset: DatasetPrice, Type: "c5.large", Region: "us-east-1", AZ: "us-east-1b"},
	}
	ref := make(map[SeriesKey][]Point)
	appendPhase := func(n, start int) {
		out := make([]Entry, 0, n)
		for i := 0; i < n; i++ {
			step := start + i/len(keys)
			e := Entry{
				Key:   keys[i%len(keys)],
				At:    t0.Add(time.Duration(step) * 10 * time.Minute),
				Value: float64((i*7)%23) + float64(i%5)/8,
			}
			out = append(out, e)
			ref[e.Key] = append(ref[e.Key], Point{At: e.At, Value: e.Value})
		}
		if n2, err := db.AppendBatch(out); err != nil || n2 != n {
			t.Fatalf("stored %d, err %v", n2, err)
		}
	}
	appendPhase(900, 0) // ~3.1 days
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	appendPhase(900, 450) // ~3.1 more days
	return ref
}

// TestRetentionCrashMatrix crashes enforcement at every protocol stage
// and proves the reopened store never lost a raw point its rollups do
// not cover, and can still checkpoint its way forward.
func TestRetentionCrashMatrix(t *testing.T) {
	points := []string{
		"retention:before-rollup-sync",
		"retention:manifest:before-sync",
		"retention:manifest:synced",
		"retention:manifest:committed",
		"retention:unlink:mid",
	}
	for _, point := range points {
		point := point
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			opts := retentionOpts()
			db, err := OpenWithOptions(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			ref := crashMatrixWorkload(t, db)
			db.testCrash = func(p string) error {
				if p == point {
					return errCrashPoint
				}
				return nil
			}
			err = db.Checkpoint()
			if !errors.Is(err, errCrashPoint) {
				t.Fatalf("checkpoint returned %v, want injected crash at %s", err, point)
			}
			db.testCrash = nil
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenWithOptions(dir, opts)
			if err != nil {
				t.Fatalf("reopen after %s: %v", point, err)
			}
			assertNeverDropUncovered(t, re, ref)
			// The store must enforce its way out of the crashed state.
			if err := re.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after %s: %v", point, err)
			}
			assertNeverDropUncovered(t, re, ref)
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			// And the post-recovery state itself reopens cleanly.
			re2, err := OpenWithOptions(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			assertNeverDropUncovered(t, re2, ref)
			assertRollupsMatchRef(t, re2, ref)
		})
	}
}

// TestRetentionTriggerCountsAndMeta: the retention trigger drives the
// maintenance daemon like the other three, and its checkpoints count in
// MaintenanceStats.ForcedByRetention.
func TestRetentionTrigger(t *testing.T) {
	dir := t.TempDir()
	opts := retentionOpts()
	opts.MaintenanceInterval = -1 // no daemon; exercise the trigger directly
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if !db.SelfMaintains() {
		t.Fatal("a store with -retain-raw must self-maintain")
	}
	retentionWorkload(t, db)
	if !db.retentionTriggerHot() {
		t.Fatal("five days past a 24h horizon did not arm the retention trigger")
	}
	db.cpMu.Lock()
	db.runMaintenanceCheckpointLocked()
	db.cpMu.Unlock()
	if st := db.MaintenanceStats(); st.ForcedByRetention == 0 {
		t.Fatalf("ForcedByRetention = 0 after a retention-triggered checkpoint (stats %+v)", st)
	}
	if db.retentionTriggerHot() {
		t.Fatal("trigger still hot after enforcement evaluated the cut (would spin)")
	}

	// Re-arming is quantized to 1d buckets: a sub-day estimate advance can
	// never condemn a new block (coverage moves in 1d steps), so it must
	// not re-fire — else a fast history replay checkpoints per append.
	var pk SeriesKey
	var last time.Time
	for _, k := range sealKeys() {
		if k.Dataset == DatasetPrice {
			pk = k
		}
	}
	for _, e := range rollupEntries(3000, 0) {
		if e.At.After(last) {
			last = e.At
		}
	}
	if _, err := db.AppendBatch([]Entry{{Key: pk, At: last.Add(10 * time.Minute), Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if db.retentionTriggerHot() {
		t.Fatal("trigger re-armed on a sub-day estimate advance (replay would checkpoint per append)")
	}
	if _, err := db.AppendBatch([]Entry{{Key: pk, At: last.Add(24 * time.Hour), Value: 1}}); err != nil {
		t.Fatal(err)
	}
	if !db.retentionTriggerHot() {
		t.Fatal("trigger stayed cold after the estimate crossed a 1d bucket boundary")
	}
}

// TestRetentionRequiresDurableSealingStore: configuration errors are
// rejected at open, not silently ignored.
func TestRetentionRequiresDurableSealingStore(t *testing.T) {
	if _, err := OpenWithOptions("", Options{RetainRaw: map[string]time.Duration{DatasetPrice: time.Hour}}); err == nil {
		t.Fatal("memory-only store accepted RetainRaw")
	}
	o := rollupOpts()
	o.HotTailPoints = -1 // sealing disabled
	o.RetainRaw = map[string]time.Duration{DatasetPrice: time.Hour}
	if _, err := OpenWithOptions(t.TempDir(), o); err == nil {
		t.Fatal("non-sealing store accepted RetainRaw")
	}
	o = rollupOpts()
	o.RetainRaw = map[string]time.Duration{DatasetPrice: -time.Hour}
	if _, err := OpenWithOptions(t.TempDir(), o); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

func TestParseRetainRaw(t *testing.T) {
	m, err := ParseRetainRaw("price=90d,sps=720h")
	if err != nil {
		t.Fatal(err)
	}
	if m["price"] != 90*24*time.Hour || m["sps"] != 720*time.Hour {
		t.Fatalf("parsed %v", m)
	}
	for _, bad := range []string{"", "price", "price=", "=90d", "price=0s", "price=-1h", "price=1h,price=2h", "price=nonsense"} {
		if _, err := ParseRetainRaw(bad); err == nil {
			t.Errorf("ParseRetainRaw(%q) accepted", bad)
		}
	}
}
