package tsdb

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

func key(az string) SeriesKey {
	return SeriesKey{Dataset: DatasetPlacementScore, Type: "m5.xlarge", Region: "us-east-1", AZ: az}
}

func mustOpen(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestKeyRoundTrip(t *testing.T) {
	k := key("us-east-1a")
	parsed, err := ParseSeriesKey(k.String())
	if err != nil || parsed != k {
		t.Errorf("round trip = %v, %v", parsed, err)
	}
	// Empty AZ is legal (region-granular advisor series).
	k2 := SeriesKey{Dataset: DatasetInterruptFree, Type: "m5.xlarge", Region: "us-east-1"}
	parsed, err = ParseSeriesKey(k2.String())
	if err != nil || parsed != k2 {
		t.Errorf("round trip with empty AZ = %v, %v", parsed, err)
	}
	for _, bad := range []string{"", "a|b", "a|b|c|d|e", "|x|y|z"} {
		if _, err := ParseSeriesKey(bad); err == nil {
			t.Errorf("ParseSeriesKey(%q) should fail", bad)
		}
	}
}

func TestAppendAndQuery(t *testing.T) {
	db := mustOpen(t, "")
	k := key("us-east-1a")
	for i := 0; i < 10; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Hour), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pts := noerr(db.Query(k, t0.Add(2*time.Hour), t0.Add(5*time.Hour)))
	if len(pts) != 4 {
		t.Fatalf("query returned %d points, want 4", len(pts))
	}
	if pts[0].Value != 2 || pts[3].Value != 5 {
		t.Errorf("wrong window contents: %v", pts)
	}
	if got := noerr(db.Query(key("us-east-1b"), t0, t0.Add(time.Hour))); got != nil {
		t.Error("unknown series should return nil")
	}
}

func TestAppendValidation(t *testing.T) {
	db := mustOpen(t, "")
	if err := db.Append(SeriesKey{}, t0, 1); err == nil {
		t.Error("incomplete key accepted")
	}
	k := key("us-east-1a")
	if err := db.Append(k, t0.Add(time.Hour), 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(k, t0, 2); err == nil {
		t.Error("out-of-order append accepted")
	}
	// Equal timestamps are allowed (same collection tick).
	if err := db.Append(k, t0.Add(time.Hour), 3); err != nil {
		t.Errorf("equal-time append rejected: %v", err)
	}
}

func TestAppendIfChanged(t *testing.T) {
	db := mustOpen(t, "")
	k := key("us-east-1a")
	values := []float64{3, 3, 3, 2, 2, 3, 3, 3, 1}
	stored := 0
	for i, v := range values {
		ok, err := db.AppendIfChanged(k, t0.Add(time.Duration(i)*10*time.Minute), v)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			stored++
		}
	}
	if stored != 4 { // 3, 2, 3, 1
		t.Errorf("stored %d change points, want 4", stored)
	}
	if db.PointCount() != 4 {
		t.Errorf("PointCount = %d, want 4", db.PointCount())
	}
}

func TestValueAtStepSemantics(t *testing.T) {
	db := mustOpen(t, "")
	k := key("us-east-1a")
	db.Append(k, t0.Add(1*time.Hour), 3)
	db.Append(k, t0.Add(5*time.Hour), 1)
	if _, ok := noerr2(db.ValueAt(k, t0)); ok {
		t.Error("value before first point should be absent")
	}
	if v, ok := noerr2(db.ValueAt(k, t0.Add(time.Hour))); !ok || v != 3 {
		t.Errorf("value at first point = %v, %v", v, ok)
	}
	if v, _ := noerr2(db.ValueAt(k, t0.Add(3*time.Hour))); v != 3 {
		t.Errorf("value mid-step = %v, want 3", v)
	}
	if v, _ := noerr2(db.ValueAt(k, t0.Add(8*time.Hour))); v != 1 {
		t.Errorf("value after last change = %v, want 1", v)
	}
}

func TestWindowMean(t *testing.T) {
	db := mustOpen(t, "")
	k := key("us-east-1a")
	// Value 2 for the first half of the window, 4 for the second half.
	db.Append(k, t0, 2)
	db.Append(k, t0.Add(12*time.Hour), 4)
	mean, ok := noerr2(db.WindowMean(k, t0, t0.Add(24*time.Hour)))
	if !ok || math.Abs(mean-3) > 1e-9 {
		t.Errorf("WindowMean = %v, %v, want 3", mean, ok)
	}
	// Window entirely before data: absent.
	if _, ok := noerr2(db.WindowMean(k, t0.Add(-2*time.Hour), t0.Add(-time.Hour))); ok {
		t.Error("mean before data should be absent")
	}
	// Window that starts before the first point but overlaps it: only the
	// covered part counts.
	mean, ok = noerr2(db.WindowMean(k, t0.Add(-12*time.Hour), t0.Add(12*time.Hour)))
	if !ok || math.Abs(mean-2) > 1e-9 {
		t.Errorf("partially covered mean = %v, %v, want 2", mean, ok)
	}
	// Degenerate window.
	if _, ok := noerr2(db.WindowMean(k, t0, t0)); ok {
		t.Error("empty window should be absent")
	}
}

func TestWindowMeanMatchesGridAverage(t *testing.T) {
	// Property: for fine grids, the step-aware window mean approaches the
	// grid-sample average.
	db := mustOpen(t, "")
	k := key("us-east-1a")
	vals := []float64{3, 1, 2, 3, 2, 1, 3}
	for i, v := range vals {
		db.Append(k, t0.Add(time.Duration(i*7)*time.Hour), v)
	}
	from, to := t0, t0.Add(49*time.Hour)
	mean, _ := noerr2(db.WindowMean(k, from, to))
	grid := noerr(db.Grid(k, from, to.Add(-time.Minute), time.Minute))
	sum := 0.0
	for _, g := range grid {
		sum += g
	}
	gridMean := sum / float64(len(grid))
	if math.Abs(mean-gridMean) > 0.01 {
		t.Errorf("window mean %v vs grid mean %v", mean, gridMean)
	}
}

func TestGridNaNBeforeData(t *testing.T) {
	db := mustOpen(t, "")
	k := key("us-east-1a")
	db.Append(k, t0.Add(2*time.Hour), 5)
	g := noerr(db.Grid(k, t0, t0.Add(4*time.Hour), time.Hour))
	if len(g) != 5 {
		t.Fatalf("grid len %d, want 5", len(g))
	}
	if !math.IsNaN(g[0]) || !math.IsNaN(g[1]) {
		t.Error("grid before first point should be NaN")
	}
	if g[2] != 5 || g[4] != 5 {
		t.Errorf("grid = %v", g)
	}
	if noerr(db.Grid(k, t0, t0.Add(time.Hour), 0)) != nil {
		t.Error("zero step should return nil")
	}
}

func TestChangeIntervals(t *testing.T) {
	db := mustOpen(t, "")
	k := key("us-east-1a")
	db.Append(k, t0, 1)
	db.Append(k, t0.Add(30*time.Minute), 2)
	db.Append(k, t0.Add(2*time.Hour), 3)
	iv := noerr(db.ChangeIntervals(k))
	if len(iv) != 2 || iv[0] != 30*time.Minute || iv[1] != 90*time.Minute {
		t.Errorf("intervals = %v", iv)
	}
	if noerr(db.ChangeIntervals(key("none"))) != nil {
		t.Error("unknown series should have no intervals")
	}
}

func TestKeysFilter(t *testing.T) {
	db := mustOpen(t, "")
	db.Append(SeriesKey{Dataset: "sps", Type: "a.x", Region: "r1", AZ: "r1a"}, t0, 1)
	db.Append(SeriesKey{Dataset: "sps", Type: "a.x", Region: "r1", AZ: "r1b"}, t0, 1)
	db.Append(SeriesKey{Dataset: "if", Type: "a.x", Region: "r1"}, t0, 1)
	db.Append(SeriesKey{Dataset: "sps", Type: "b.x", Region: "r2", AZ: "r2a"}, t0, 1)

	if got := len(db.Keys(KeyFilter{})); got != 4 {
		t.Errorf("unfiltered keys = %d, want 4", got)
	}
	if got := len(db.Keys(KeyFilter{Dataset: "sps"})); got != 3 {
		t.Errorf("sps keys = %d, want 3", got)
	}
	if got := len(db.Keys(KeyFilter{Type: "a.x", Region: "r1"})); got != 3 {
		t.Errorf("a.x/r1 keys = %d, want 3", got)
	}
	if got := len(db.Keys(KeyFilter{AZ: "r1b"})); got != 1 {
		t.Errorf("AZ keys = %d, want 1", got)
	}
	// Sorted canonically.
	keys := db.Keys(KeyFilter{})
	for i := 1; i < len(keys); i++ {
		if keys[i-1].String() >= keys[i].String() {
			t.Error("keys not sorted")
		}
	}
}

func TestLast(t *testing.T) {
	db := mustOpen(t, "")
	k := key("us-east-1a")
	if _, ok := noerr2(db.Last(k)); ok {
		t.Error("empty series has a last point")
	}
	db.Append(k, t0, 1)
	db.Append(k, t0.Add(time.Hour), 9)
	p, ok := noerr2(db.Last(k))
	if !ok || p.Value != 9 {
		t.Errorf("Last = %v, %v", p, ok)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir)
	k1, k2 := key("us-east-1a"), SeriesKey{Dataset: "if", Type: "p3.2xlarge", Region: "eu-west-1"}
	for i := 0; i < 100; i++ {
		if err := db.Append(k1, t0.Add(time.Duration(i)*time.Minute), float64(i%3+1)); err != nil {
			t.Fatal(err)
		}
	}
	db.Append(k2, t0, 2.5)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir)
	defer re.Close()
	if re.SeriesCount() != 2 {
		t.Fatalf("reopened series count = %d, want 2", re.SeriesCount())
	}
	if re.PointCount() != 101 {
		t.Fatalf("reopened point count = %d, want 101", re.PointCount())
	}
	pts := noerr(re.Query(k1, t0, t0.Add(200*time.Minute)))
	if len(pts) != 100 {
		t.Fatalf("reopened query = %d points", len(pts))
	}
	if v, ok := noerr2(re.ValueAt(k2, t0.Add(time.Hour))); !ok || v != 2.5 {
		t.Errorf("reopened advisor value = %v, %v", v, ok)
	}
	// Appends after reopen continue working.
	if err := re.Append(k1, t0.Add(300*time.Minute), 3); err != nil {
		t.Fatal(err)
	}
}

func TestReplayToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	db := mustOpen(t, dir)
	k := key("us-east-1a")
	for i := 0; i < 10; i++ {
		db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the log by chopping 7 bytes off the one non-empty segment
	// (all ten points share a series, hence a shard, hence a segment).
	si := db.ShardIndexOf(k)
	path := filepath.Join(dir, rotSegName(si, db.shards[si].walSeq))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, dir)
	defer re.Close()
	if got := re.PointCount(); got != 9 {
		t.Errorf("replay after truncation kept %d points, want 9", got)
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	db := mustOpen(t, "")
	db.Close()
	if err := db.Append(key("us-east-1a"), t0, 1); err == nil {
		t.Error("write after close accepted")
	}
}

func TestConcurrentReadsAndWrites(t *testing.T) {
	db := mustOpen(t, "")
	k := key("us-east-1a")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			db.Append(k, t0.Add(time.Duration(i)*time.Second), float64(i))
		}
	}()
	for i := 0; i < 5000; i++ {
		db.ValueAt(k, t0.Add(time.Duration(i)*time.Second))
		db.Query(k, t0, t0.Add(time.Hour))
	}
	<-done
	if db.PointCount() != 5000 {
		t.Errorf("points = %d", db.PointCount())
	}
}

func TestQueryWindowProperty(t *testing.T) {
	// Property: Query(k, from, to) returns exactly the points with
	// from <= t <= to, in order.
	db := mustOpen(t, "")
	k := key("us-east-1a")
	n := 200
	for i := 0; i < n; i++ {
		db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	f := func(aRaw, bRaw uint8) bool {
		a, b := int(aRaw)%n, int(bRaw)%n
		if a > b {
			a, b = b, a
		}
		from, to := t0.Add(time.Duration(a)*time.Minute), t0.Add(time.Duration(b)*time.Minute)
		pts := noerr(db.Query(k, from, to))
		if len(pts) != b-a+1 {
			return false
		}
		for i, p := range pts {
			if p.Value != float64(a+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
