package tsdb

// Tests for the cold block tier: codec round trips, differential
// equality between a sealed store and never-sealed references (including
// cursor walks that cross the tier boundary, and under -race with a
// concurrent writer), the seal-boundary crash matrix, the seal
// maintenance trigger, and recovery/accounting invariants.

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// sealKeys is a small key universe that gives each series enough depth
// to seal multiple blocks under the tiny test block sizes.
func sealKeys() []SeriesKey {
	return []SeriesKey{
		{Dataset: DatasetPrice, Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"},
		{Dataset: DatasetPrice, Type: "c5.large", Region: "eu-west-1", AZ: "eu-west-1b"},
		{Dataset: DatasetPlacementScore, Type: "p3.8xlarge", Region: "us-east-1", AZ: ""},
		{Dataset: DatasetInterruptFree, Type: "r5.2xlarge", Region: "ap-northeast-2", AZ: "ap-northeast-2c"},
	}
}

// sealEntries builds n time-ordered entries round-robined over sealKeys,
// with occasional equal-timestamp runs so cursor positions inside a run
// get exercised, and values drawn from a small set (the compressible
// shape real spot prices have).
func sealEntries(n, startSec int) []Entry {
	keys := sealKeys()
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		sec := startSec + i
		if (i/len(keys))%7 == 3 {
			// Duplicate the same series' previous timestamp: equal-timestamp
			// runs are legal, and cursor positions inside them must resolve.
			sec -= len(keys)
		}
		out = append(out, Entry{
			Key:   keys[i%len(keys)],
			At:    t0.Add(time.Duration(sec) * 4 * time.Second),
			Value: float64((i / 7) % 5),
		})
	}
	return out
}

// TestBlockCodecRoundTrip drives encodeBlock/decodeBlock over value and
// timestamp shapes chosen to hit every dod bucket and XOR branch.
func TestBlockCodecRoundTrip(t *testing.T) {
	mk := func(n int, at func(i int) time.Time, v func(i int) float64) []Point {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{At: at(i).UTC(), Value: v(i)}
		}
		return pts
	}
	everySec := func(i int) time.Time { return t0.Add(time.Duration(i) * time.Second) }
	cases := map[string][]Point{
		"single":   mk(1, everySec, func(int) float64 { return 3.25 }),
		"constant": mk(500, everySec, func(int) float64 { return 0.0912 }),
		"steps":    mk(500, everySec, func(i int) float64 { return float64(i / 50) }),
		"ramp":     mk(300, everySec, func(i int) float64 { return 0.001 * float64(i) }),
		"jitter": mk(400, func(i int) time.Time {
			return t0.Add(time.Duration(i)*time.Minute + time.Duration(i*i%977)*time.Millisecond)
		}, func(i int) float64 { return math.Sin(float64(i)) }),
		"dups": mk(64, func(i int) time.Time { return t0.Add(time.Duration(i/4) * time.Hour) },
			func(i int) float64 { return float64(i % 3) }),
		"extremes": {
			{At: t0, Value: 0},
			{At: t0.Add(time.Nanosecond), Value: math.Inf(1)},
			{At: t0.Add(365 * 24 * time.Hour), Value: math.SmallestNonzeroFloat64},
			{At: t0.Add(400 * 24 * time.Hour), Value: -math.MaxFloat64},
			{At: t0.Add(400 * 24 * time.Hour), Value: math.Copysign(0, -1)},
		},
	}
	for name, pts := range cases {
		eb := encodeBlock(pts)
		if int(eb.count) != len(pts) {
			t.Fatalf("%s: encoded count %d, want %d", name, eb.count, len(pts))
		}
		if eb.minAt != pts[0].At.UnixNano() || eb.maxAt != pts[len(pts)-1].At.UnixNano() {
			t.Fatalf("%s: encoded extent [%d, %d] disagrees with points", name, eb.minAt, eb.maxAt)
		}
		got, err := decodeBlock(eb.data, len(pts))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		for i := range pts {
			if !got[i].At.Equal(pts[i].At) || math.Float64bits(got[i].Value) != math.Float64bits(pts[i].Value) {
				t.Fatalf("%s: point %d = %v (bits %x), want %v (bits %x)",
					name, i, got[i], math.Float64bits(got[i].Value), pts[i], math.Float64bits(pts[i].Value))
			}
		}
		// A grossly wrong count must error, not mis-decode or over-read.
		// (Off-by-one counts can hide inside the final byte's bit padding —
		// which is why the count lives in the CRC-protected index, never
		// in the stream itself.)
		if _, err := decodeBlock(eb.data, len(pts)+64); err == nil {
			t.Fatalf("%s: decode with inflated count succeeded", name)
		}
	}
}

// sealedOpts are the tiny tiers the differential tests run under: a
// 4-point hot tail, 8-point blocks, and a cache small enough to evict.
func sealedOpts() Options {
	return Options{Shards: 4, RotateBytes: 2048, HotTailPoints: 4, BlockPoints: 8, BlockCacheBytes: 1 << 12}
}

// walkCursor pages through the series with QueryAfter, advancing a
// keyset cursor exactly the way the archive's pagination does, and
// returns the concatenation of all pages plus the page count.
func walkCursor(db *DB, k SeriesKey, to time.Time, page int) ([]Point, int) {
	var out []Point
	var after time.Time
	seq := 0
	pages := 0
	for {
		pts := noerr(db.QueryAfter(k, after, seq, to, page))
		if len(pts) == 0 {
			return out, pages
		}
		pages++
		for _, p := range pts {
			if p.At.Equal(after) {
				seq++
			} else {
				after, seq = p.At, 1
			}
		}
		out = append(out, pts...)
	}
}

// TestSealedStoreMatchesReference drives a sealing store, a never-sealed
// memory store, and the naive reference through the same workload with
// interleaved checkpoints, and demands every read path agree exactly —
// including float paths (same arithmetic, so bitwise equality) and
// cursor walks whose pages straddle the hot/cold boundary.
func TestSealedStoreMatchesReference(t *testing.T) {
	dir := t.TempDir()
	opts := sealedOpts()
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := OpenWithOptions("", opts)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefDB()

	apply := func(entries []Entry) {
		t.Helper()
		if n, err := db.AppendBatch(entries); err != nil || n != len(entries) {
			t.Fatalf("sealed stored %d, err %v", n, err)
		}
		if n, err := mem.AppendBatch(entries); err != nil || n != len(entries) {
			t.Fatalf("memory stored %d, err %v", n, err)
		}
		refApplyAll(t, ref, entries)
	}

	compare := func(stage string) {
		t.Helper()
		end := t0.Add(1000 * time.Hour)
		assertSameContents(t, contents(db), refContents(ref))
		for _, k := range sealKeys() {
			all := noerr(mem.Query(k, time.Time{}, end))
			// Cursor walk in small pages: boundaries land inside cold
			// blocks, inside the hot tail, and across the seam.
			got, pages := walkCursor(db, k, end, 5)
			if len(got) != len(all) {
				t.Fatalf("%s: %v cursor walk returned %d points over %d pages, want %d", stage, k, len(got), pages, len(all))
			}
			for i := range all {
				if !got[i].At.Equal(all[i].At) || got[i].Value != all[i].Value {
					t.Fatalf("%s: %v cursor walk point %d = %v, want %v", stage, k, i, got[i], all[i])
				}
			}
			if len(all) == 0 {
				continue
			}
			// Window reads anchored at points around the tier boundary.
			for _, i := range []int{0, len(all) / 3, len(all) / 2, len(all) - 1} {
				from, to := all[i].At, all[min(i+17, len(all)-1)].At
				if g, w := noerr(db.CountRange(k, from, to)), noerr(mem.CountRange(k, from, to)); g != w {
					t.Fatalf("%s: %v CountRange[%d] = %d, want %d", stage, k, i, g, w)
				}
				if g, w := noerr(db.QueryRange(k, from, to, 3, 11)), noerr(mem.QueryRange(k, from, to, 3, 11)); len(g) != len(w) {
					t.Fatalf("%s: %v QueryRange[%d] = %d points, want %d", stage, k, i, len(g), len(w))
				}
				if g, w := noerr(db.CountAfter(k, from, 1, end)), noerr(mem.CountAfter(k, from, 1, end)); g != w {
					t.Fatalf("%s: %v CountAfter[%d] = %d, want %d", stage, k, i, g, w)
				}
				gv, gok := noerr2(db.ValueAt(k, from.Add(time.Second)))
				wv, wok := noerr2(mem.ValueAt(k, from.Add(time.Second)))
				if gok != wok || math.Float64bits(gv) != math.Float64bits(wv) {
					t.Fatalf("%s: %v ValueAt[%d] = (%v,%v), want (%v,%v)", stage, k, i, gv, gok, wv, wok)
				}
				gm, gok2 := noerr2(db.WindowMean(k, from, to.Add(time.Second)))
				wm, wok2 := noerr2(mem.WindowMean(k, from, to.Add(time.Second)))
				if gok2 != wok2 || math.Float64bits(gm) != math.Float64bits(wm) {
					t.Fatalf("%s: %v WindowMean[%d] = (%v,%v), want (%v,%v)", stage, k, i, gm, gok2, wm, wok2)
				}
			}
			gg := noerr(db.Grid(k, all[0].At, all[len(all)-1].At, 97*time.Second))
			wg := noerr(mem.Grid(k, all[0].At, all[len(all)-1].At, 97*time.Second))
			if len(gg) != len(wg) {
				t.Fatalf("%s: %v Grid length %d, want %d", stage, k, len(gg), len(wg))
			}
			for i := range wg {
				if math.Float64bits(gg[i]) != math.Float64bits(wg[i]) {
					t.Fatalf("%s: %v Grid[%d] = %v, want %v", stage, k, i, gg[i], wg[i])
				}
			}
			gc, wc := noerr(db.ChangeIntervals(k)), noerr(mem.ChangeIntervals(k))
			if len(gc) != len(wc) {
				t.Fatalf("%s: %v ChangeIntervals length %d, want %d", stage, k, len(gc), len(wc))
			}
			for i := range wc {
				if gc[i] != wc[i] {
					t.Fatalf("%s: %v ChangeIntervals[%d] = %v, want %v", stage, k, i, gc[i], wc[i])
				}
			}
			gl, glok := noerr2(db.Last(k))
			wl, wlok := noerr2(mem.Last(k))
			if glok != wlok || !gl.At.Equal(wl.At) || gl.Value != wl.Value {
				t.Fatalf("%s: %v Last = (%v,%v), want (%v,%v)", stage, k, gl, glok, wl, wlok)
			}
		}
	}

	// Three rounds of append → seal → read, so later rounds append after
	// sealed history and re-seal on top of existing blocks.
	n := 0
	for round := 0; round < 3; round++ {
		batch := sealEntries(400, n*2)
		n += 400
		apply(batch)
		compare(fmt.Sprintf("round %d pre-seal", round))
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		compare(fmt.Sprintf("round %d post-seal", round))
	}
	if db.SealedBlocks() == 0 || db.ColdPointCount() == 0 {
		t.Fatalf("workload sealed nothing: %d blocks, %d cold points", db.SealedBlocks(), db.ColdPointCount())
	}
	if hot, total := db.HotPointCount(), int64(db.PointCount()); hot+db.ColdPointCount() != total {
		t.Fatalf("hot %d + cold %d != total %d", hot, db.ColdPointCount(), total)
	}
	cs := db.BlockCacheStats()
	if cs.Misses == 0 || cs.Hits == 0 {
		t.Fatalf("cold reads never exercised the block cache: %+v", cs)
	}

	// Recovery: reopen from disk (index-only block open + hot snapshot +
	// WAL tail) and run the full comparison again.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	defer mem.Close()
	if db.SealedBlocks() == 0 {
		t.Fatal("reopen lost the sealed blocks")
	}
	compare("reopened")

	// The exported snapshot must still be the complete archive: load it
	// into a fresh memory store and compare.
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full, err := OpenSharded("", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if _, err := full.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	assertSameContents(t, contents(full), refContents(ref))
}

// TestSealedConcurrentReadsExact runs (under -race) a writer appending
// live points, a checkpointer sealing underneath it, and readers
// asserting that an immutable historical window — one that crosses the
// tier boundary as seals land — returns exactly the same points on every
// read.
func TestSealedConcurrentReadsExact(t *testing.T) {
	dir := t.TempDir()
	opts := sealedOpts()
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	k := sealKeys()[0]
	const frozen = 320
	want := make([]Point, 0, frozen)
	for i := 0; i < frozen; i++ {
		p := Point{At: t0.Add(time.Duration(i) * time.Second), Value: float64(i % 4)}
		if err := db.Append(k, p.At, p.Value); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	frozenEnd := want[frozen-1].At

	var wg sync.WaitGroup
	writerDone := make(chan struct{})
	errCh := make(chan error, 4)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	wg.Add(1)
	go func() { // writer: live appends beyond the frozen window
		defer wg.Done()
		defer close(writerDone)
		for i := 0; i < 3000; i++ {
			at := frozenEnd.Add(time.Duration(i+1) * time.Second)
			if err := db.Append(k, at, float64(i%7)); err != nil {
				report(fmt.Errorf("live append %d: %w", i, err))
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // checkpointer: seals repeatedly while reads and writes run
		defer wg.Done()
		for {
			select {
			case <-writerDone:
				return
			default:
			}
			if err := db.Checkpoint(); err != nil {
				report(fmt.Errorf("concurrent checkpoint: %w", err))
				return
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) { // readers: the frozen window must never change
			defer wg.Done()
			for it := 0; ; it++ {
				select {
				case <-writerDone:
					return
				default:
				}
				got := noerr(db.Query(k, t0, frozenEnd))
				if len(got) != frozen {
					report(fmt.Errorf("reader %d it %d: frozen window has %d points, want %d", r, it, len(got), frozen))
					return
				}
				for i := range got {
					if !got[i].At.Equal(want[i].At) || got[i].Value != want[i].Value {
						report(fmt.Errorf("reader %d it %d: point %d = %v, want %v", r, it, i, got[i], want[i]))
						return
					}
				}
				if pts, _ := walkCursor(db, k, frozenEnd, 7); len(pts) != frozen {
					report(fmt.Errorf("reader %d it %d: cursor walk returned %d points, want %d", r, it, len(pts), frozen))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if db.SealedBlocks() == 0 {
		t.Fatal("concurrent run sealed nothing; the race surface was not exercised")
	}
}

// TestSealCrashMatrix extends the crash matrix across the seal protocol's
// durable boundaries — block data write, block index write, block file
// commit, manifest commit, covered-WAL unlink — × before/after fsync,
// asserting recovery after each cell is exactly the reference state, and
// that the store seals its way out of the crashed state.
func TestSealCrashMatrix(t *testing.T) {
	cells := []struct {
		point  string
		mutate func(t *testing.T, env *matrixEnv)
	}{
		{point: "checkpoint:blocks:data-written",
			mutate: func(t *testing.T, env *matrixEnv) {
				// The index never started: freeze the temp file right after
				// its data section (the write stopped mid-file).
				truncateHalf(t, env.dir, "blocks-*.blk.tmp")
			}},
		{point: "checkpoint:blocks:before-sync",
			mutate: func(t *testing.T, env *matrixEnv) {
				truncateHalf(t, env.dir, "blocks-*.blk.tmp")
			}},
		{point: "checkpoint:blocks:synced"},
		{point: "checkpoint:blocks:committed"},
		{point: "checkpoint:snapshot:before-sync",
			mutate: func(t *testing.T, env *matrixEnv) {
				truncateHalf(t, env.dir, "checkpoint-*.snap.tmp")
			}},
		{point: "checkpoint:snapshot:committed"},
		{point: "checkpoint:manifest:before-sync",
			mutate: func(t *testing.T, env *matrixEnv) {
				truncateHalf(t, env.dir, manifestName+".tmp")
			}},
		{point: "checkpoint:manifest:committed"},
		{point: "checkpoint:delete:before-sync",
			mutate: func(t *testing.T, env *matrixEnv) {
				// The covered-WAL unlinks never became durable.
				for name, raw := range env.preCopies {
					p := filepath.Join(env.dir, name)
					if _, err := os.Stat(p); errors.Is(err, os.ErrNotExist) {
						if err := os.WriteFile(p, raw, 0o644); err != nil {
							t.Fatal(err)
						}
					}
				}
			}},
		{point: "checkpoint:delete:after-sync"},
	}

	for _, cell := range cells {
		cell := cell
		t.Run(cell.point, func(t *testing.T) {
			dir := t.TempDir()
			opts := sealedOpts()
			db, err := OpenWithOptions(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			ref := newRefDB()

			// Workload A and a clean checkpoint: the crashed seal below has
			// committed blocks and a committed manifest to fall back to.
			a := sealEntries(400, 0)
			if n, err := db.AppendBatch(a); err != nil || n != len(a) {
				t.Fatalf("stored %d, err %v", n, err)
			}
			refApplyAll(t, ref, a)
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if db.SealedBlocks() == 0 {
				t.Fatal("baseline checkpoint sealed nothing; the matrix would not cross seal boundaries")
			}
			b := sealEntries(400, 800)
			if n, err := db.AppendBatch(b); err != nil || n != len(b) {
				t.Fatalf("stored %d, err %v", n, err)
			}
			refApplyAll(t, ref, b)
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			assertSameContents(t, contents(db), refContents(ref))
			want := refContents(ref)
			env := &matrixEnv{dir: dir, preCopies: copySegments(t, dir)}

			db.testCrash = func(point string) error {
				if point == cell.point {
					return errCrashPoint
				}
				return nil
			}
			if err := db.Checkpoint(); !errors.Is(err, errCrashPoint) {
				t.Fatalf("%s: checkpoint returned %v, want injected crash", cell.point, err)
			}
			db.testCrash = nil
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if cell.mutate != nil {
				cell.mutate(t, env)
			}

			re, err := OpenWithOptions(dir, opts)
			if err != nil {
				t.Fatalf("reopen after %s: %v", cell.point, err)
			}
			assertSameContents(t, contents(re), want)
			// The store must seal its way out of the crashed state and
			// still recover exactly.
			if err := re.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after %s: %v", cell.point, err)
			}
			if re.SealedBlocks() == 0 {
				t.Fatalf("%s: store lost the ability to seal", cell.point)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2, err := OpenWithOptions(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			assertSameContents(t, contents(re2), want)
		})
	}
}

// TestSealTriggerMaintenance proves SealAfterHotPoints drives the store
// to seal on its own: no manual Checkpoint call, hot growth alone forces
// one, and the trigger re-arms on the post-seal floor instead of
// re-firing on the unsealable residual.
func TestSealTriggerMaintenance(t *testing.T) {
	dir := t.TempDir()
	opts := sealedOpts()
	opts.SealAfterHotPoints = 64
	opts.MaintenanceInterval = -1 // append-path enforcement only: deterministic
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if !db.SelfMaintains() {
		t.Fatal("SealAfterHotPoints alone did not enable self-maintenance")
	}
	k := sealKeys()[0]
	for i := 0; i < 600; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Second), float64(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.MaintenanceStats()
	if st.ForcedBySeal == 0 || db.SealedBlocks() == 0 {
		t.Fatalf("hot growth forced no seal: stats %+v, %d blocks", st, db.SealedBlocks())
	}
	if hot := db.HotPointCount(); hot >= 600 {
		t.Fatalf("all %d points still hot after seal-triggered maintenance", hot)
	}
	// The floor re-armed: the residual alone must not keep the trigger
	// hot, or every future append would force a useless checkpoint.
	if db.sealTriggerHot() {
		t.Fatalf("seal trigger still hot after checkpoint (hot=%d floor=%d)",
			db.hotPts.Load(), db.sealFloor.Load())
	}
}

// TestSealAccountingAndReap pins the bookkeeping around a seal: manifest
// carries the block list, counters survive reopen, orphan block files
// from a crashed seal are reaped, and a disabled tier (negative
// HotTailPoints) never seals.
func TestSealAccountingAndReap(t *testing.T) {
	dir := t.TempDir()
	opts := sealedOpts()
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	a := sealEntries(600, 0)
	if n, err := db.AppendBatch(a); err != nil || n != len(a) {
		t.Fatalf("stored %d, err %v", n, err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	blocks, coldPts, coldBytes := db.SealedBlocks(), db.ColdPointCount(), db.ColdCompressedBytes()
	if blocks == 0 || coldPts == 0 || coldBytes == 0 {
		t.Fatalf("seal accounted nothing: %d blocks, %d points, %d bytes", blocks, coldPts, coldBytes)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// An orphan block file (crashed seal: renamed but never committed to
	// the manifest) must be reaped on open and never loaded.
	orphan := filepath.Join(dir, blockFileName(99))
	if err := os.WriteFile(orphan, []byte("orphan of a crashed seal"), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.SealedBlocks(); got != blocks {
		t.Fatalf("reopen restored %d blocks, want %d", got, blocks)
	}
	if got := re.ColdPointCount(); got != coldPts {
		t.Fatalf("reopen restored %d cold points, want %d", got, coldPts)
	}
	if got := re.ColdCompressedBytes(); got != coldBytes {
		t.Fatalf("reopen restored %d cold bytes, want %d", got, coldBytes)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan block file survived open (err=%v)", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Sealing disabled: the same workload keeps everything hot.
	dir2 := t.TempDir()
	off := sealedOpts()
	off.HotTailPoints = -1
	db2, err := OpenWithOptions(dir2, off)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.SealsCold() {
		t.Fatal("negative HotTailPoints did not disable sealing")
	}
	if n, err := db2.AppendBatch(a); err != nil || n != len(a) {
		t.Fatalf("stored %d, err %v", n, err)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db2.SealedBlocks() != 0 || db2.ColdPointCount() != 0 {
		t.Fatalf("disabled tier sealed %d blocks / %d points", db2.SealedBlocks(), db2.ColdPointCount())
	}
}

// TestSealedAppendOrderingGuard pins the out-of-order check against a
// fully sealed series: with the hot slice empty after recovery... the
// guard must fall back to the last sealed timestamp rather than accept a
// point that travels back in time behind the blocks.
func TestSealedAppendOrderingGuard(t *testing.T) {
	dir := t.TempDir()
	opts := sealedOpts()
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	k := sealKeys()[0]
	for i := 0; i < 100; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.SealedBlocks() == 0 {
		t.Fatal("workload sealed nothing")
	}
	// In order after the hot tail: fine.
	if err := db.Append(k, t0.Add(100*time.Minute), 1); err != nil {
		t.Fatal(err)
	}
	// Before the hot tail (and before sealed history): rejected.
	if err := db.Append(k, t0.Add(-time.Minute), 1); err == nil {
		t.Fatal("append before sealed history succeeded")
	}
	// Equal to the newest timestamp: accepted (equal-timestamp runs are
	// legal), exactly as on a never-sealed store.
	if err := db.Append(k, t0.Add(100*time.Minute), 2); err != nil {
		t.Fatal(err)
	}
}
