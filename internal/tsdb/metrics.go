package tsdb

// Registry wiring for the store. The DB's counters live on the DB (and
// its block cache / retention states) as obs.Counter fields — one atomic
// per fact, incremented on the hot paths exactly as before. This file
// registers func-backed views of them so a process-wide registry can
// outlive any one store: followers swap stores on catch-up (SwapDB) and
// a rollup-enabled store nests a second DB in-process, so metrics read
// through a current() indirection instead of binding the counters of
// whichever store existed at wiring time.

import "repro/internal/obs"

// RegisterMetrics registers the store's counters and gauges on reg under
// the spotlake_store_*, spotlake_maintenance_*, spotlake_blockcache_*,
// and spotlake_retention_* names. current returns the store to read at
// scrape time; it may return nil (all series then read zero), and the
// store it returns may change between scrapes — counters then restart
// from the new store's history, which is the usual counter-reset story
// scrape consumers already handle.
func RegisterMetrics(reg *obs.Registry, current func() *DB) {
	counter := func(name, help string, read func(db *DB) uint64) {
		reg.CounterFunc(name, help, func() uint64 {
			if db := current(); db != nil {
				return read(db)
			}
			return 0
		})
	}
	gauge := func(name, help string, read func(db *DB) float64) {
		reg.GaugeFunc(name, help, func() float64 {
			if db := current(); db != nil {
				return read(db)
			}
			return 0
		})
	}

	gauge("spotlake_store_series", "Number of live series in the store.",
		func(db *DB) float64 { return float64(db.SeriesCount()) })
	gauge("spotlake_store_points", "Total points resident or sealed in the store.",
		func(db *DB) float64 { return float64(db.PointCount()) })
	gauge("spotlake_store_hot_points", "Points resident in the in-memory hot tier.",
		func(db *DB) float64 { return float64(db.HotPointCount()) })
	gauge("spotlake_store_cold_points", "Points sealed into compressed cold blocks.",
		func(db *DB) float64 { return float64(db.ColdPointCount()) })
	gauge("spotlake_store_sealed_blocks", "Sealed cold blocks on disk.",
		func(db *DB) float64 { return float64(db.SealedBlocks()) })
	gauge("spotlake_store_cold_compressed_bytes", "Compressed on-disk bytes of the cold tier.",
		func(db *DB) float64 { return float64(db.ColdCompressedBytes()) })
	gauge("spotlake_store_sealed_segments", "Sealed WAL segments awaiting checkpoint compaction.",
		func(db *DB) float64 { return float64(db.SealedSegments()) })
	gauge("spotlake_store_wal_bytes_since_checkpoint", "WAL bytes appended since the last checkpoint (the recovery tail).",
		func(db *DB) float64 { return float64(db.WALBytesSinceCheckpoint()) })
	counter("spotlake_store_replayed_wal_bytes", "WAL record bytes the last open replayed beyond its checkpoint.",
		func(db *DB) uint64 { return db.ReplayedWALBytes() })
	counter("spotlake_store_rotate_failures_total", "Segment rotations that failed on the append path.",
		func(db *DB) uint64 { return db.RotateFailures() })
	counter("spotlake_store_cold_read_errors_total", "Cold block reads that failed and degraded to hot-only results.",
		func(db *DB) uint64 { return db.ColdReadErrors() })
	counter("spotlake_store_scanned_points_total", "Points materialized by reads (hot copies and decoded block windows).",
		func(db *DB) uint64 { return db.ScannedPoints() })

	counter("spotlake_maintenance_checkpoints_total", "Checkpoints committed by the store's maintainer.",
		func(db *DB) uint64 { return db.MaintenanceStats().Checkpoints })
	counter("spotlake_maintenance_forced_by_bytes_total", "Maintenance checkpoints with the WAL byte trigger live.",
		func(db *DB) uint64 { return db.MaintenanceStats().ForcedByBytes })
	counter("spotlake_maintenance_forced_by_chain_total", "Maintenance checkpoints with the sealed-chain trigger live.",
		func(db *DB) uint64 { return db.MaintenanceStats().ForcedByChainLength })
	counter("spotlake_maintenance_forced_by_seal_total", "Maintenance checkpoints with the hot-point seal trigger live.",
		func(db *DB) uint64 { return db.MaintenanceStats().ForcedBySeal })
	counter("spotlake_maintenance_forced_by_retention_total", "Maintenance checkpoints with the retention trigger live.",
		func(db *DB) uint64 { return db.MaintenanceStats().ForcedByRetention })
	counter("spotlake_maintenance_errors_total", "Maintenance checkpoints that failed (retried on the next tick).",
		func(db *DB) uint64 { return db.MaintenanceStats().Errors })

	counter("spotlake_blockcache_hits_total", "Block cache hits.",
		func(db *DB) uint64 { return db.BlockCacheStats().Hits })
	counter("spotlake_blockcache_misses_total", "Block cache misses.",
		func(db *DB) uint64 { return db.BlockCacheStats().Misses })
	counter("spotlake_blockcache_evictions_total", "Block cache evictions under the size bound.",
		func(db *DB) uint64 { return db.BlockCacheStats().Evictions })
	gauge("spotlake_blockcache_bytes", "Decoded-point bytes resident in the block cache.",
		func(db *DB) float64 { return float64(db.BlockCacheStats().Bytes) })
	gauge("spotlake_blockcache_max_bytes", "Configured block cache bound (0 = disabled).",
		func(db *DB) float64 { return float64(db.BlockCacheStats().MaxBytes) })

	counter("spotlake_retention_dropped_points_total", "Raw points dropped by retention across all datasets.",
		func(db *DB) uint64 {
			var n uint64
			for _, st := range db.RetentionStats() {
				n += uint64(st.DroppedPoints)
			}
			return n
		})
}
