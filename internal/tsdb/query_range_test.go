package tsdb

import (
	"math"
	"testing"
	"time"
)

// TestQueryRangeWindowing pins CountRange/QueryRange slicing against the
// full Query result, including the overflow edges (skip past the end,
// max near MaxInt).
func TestQueryRangeWindowing(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	k := SeriesKey{Dataset: DatasetPrice, Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	const n = 40
	for i := 0; i < n; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	from, to := t0.Add(5*time.Minute), t0.Add(30*time.Minute)
	full := noerr(db.Query(k, from, to))
	if got := noerr(db.CountRange(k, from, to)); got != len(full) {
		t.Fatalf("CountRange %d, Query %d", got, len(full))
	}
	for _, tc := range []struct {
		skip, max, wantLo, wantN int
	}{
		{0, -1, 0, len(full)},
		{0, 7, 0, 7},
		{7, 7, 7, 7},
		{len(full) - 3, 100, len(full) - 3, 3},
		{len(full) + 5, 10, 0, 0},            // skip past the end
		{1, math.MaxInt, 1, len(full) - 1},   // huge max must not overflow
		{0, 0, 0, 0},                         // zero max = empty
		{math.MaxInt - 1, math.MaxInt, 0, 0}, // both huge
	} {
		got := noerr(db.QueryRange(k, from, to, tc.skip, tc.max))
		if len(got) != tc.wantN {
			t.Fatalf("QueryRange(skip=%d, max=%d): %d points, want %d", tc.skip, tc.max, len(got), tc.wantN)
		}
		for j, p := range got {
			if p != full[tc.wantLo+j] {
				t.Fatalf("QueryRange(skip=%d, max=%d)[%d] = %+v, want %+v", tc.skip, tc.max, j, p, full[tc.wantLo+j])
			}
		}
	}
}
