package tsdb

// Compressed immutable block tier (cold storage).
//
// A checkpoint seals history older than each series' hot tail into an
// immutable block file, so resident memory is bounded by hot tail + block
// cache instead of total history. Sealed points live on disk
// Gorilla-style compressed — delta-of-delta timestamps and XOR-encoded
// float values in one interleaved bitstream per fixed-size block — and
// are decoded on demand, one block at a time, through the store's LRU
// block cache (blockcache.go).
//
// # File format (blocks-<seq>.blk)
//
//	header: 8-byte magic "SLBLOCKS" | u16 version (1)
//	data:   the compressed blocks, back to back, no framing (the index
//	        carries every block's offset/length/CRC)
//	index:  u32 series count | per series:
//	          u16 keyLen | canonical key bytes | u32 block count |
//	          per block: u64 offset | u32 length | u32 point count |
//	                     i64 min unix-nanos | i64 max unix-nanos |
//	                     u32 CRC-32 (IEEE) of the block bytes
//	footer: u64 index offset | u32 index length | u32 index CRC |
//	        8-byte magic "SLBLKIDX"
//
// All integers are little-endian. Series appear sorted by canonical key
// and a series' blocks appear in time order, so identical seals encode
// to identical bytes. The file is written once via the atomic
// temp+fsync+rename sequence and never modified afterwards; the MANIFEST
// lists the live block files, and the manifest rename is the commit
// point (see wal.go). Opening a file parses only its index — blocks stay
// on disk until a read decodes them — so recovery cost is O(index), not
// O(history).
//
// # Block encoding
//
// Each block holds 1..maxBlockPoints points of one series as a single
// bitstream, timestamps and values interleaved per point:
//
//   - point 0: 64 raw bits of unix-nanos, 64 raw bits of the float.
//   - timestamps i>0: dod = (t[i]-t[i-1]) - (t[i-1]-t[i-2]) (the first
//     delta's predecessor is 0), zigzag-encoded and bucketed:
//     '0' for dod == 0; '10' + 16 bits; '110' + 32 bits; '1110' + 48
//     bits; '1111' + 64 bits.
//   - values i>0: xor = bits(v[i]) ^ bits(v[i-1]); '0' when xor == 0;
//     '10' + the meaningful bits reusing the previous leading/sigbits
//     window when it still fits; '11' + 5 bits leading-zero count +
//     6 bits significant-bit count (64 encodes as 0) + the bits.
//
// Regular collection cadences make dod 0 almost always (1 bit/point) and
// step-function values repeat or share exponents, which is what buys the
// tier its compression. The decoder takes the expected point count from
// the (CRC-validated) index, bounds-checks every read, and returns
// errors on truncated or bit-flipped input — never panics, never
// allocates more than maxBlockPoints points (FuzzBlockDecode holds it to
// that).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"os"
	"time"
)

const (
	blockFileMagic = "SLBLOCKS"
	blockIdxMagic  = "SLBLKIDX"
	blockFileVer   = 1
	blockHeaderLen = len(blockFileMagic) + 2
	blockFooterLen = 8 + 4 + 4 + len(blockIdxMagic)
	blockIdxEntLen = 8 + 4 + 4 + 8 + 8 + 4
	// maxBlockPoints bounds one block's point count: the index stores it
	// as u32, and the decoder pre-allocates the result, so a corrupt
	// count must not trigger a huge allocation.
	maxBlockPoints = 1 << 16
	// maxBlockBytes bounds one block's encoded length. The worst case per
	// point is 68 timestamp bits + 77 value bits ≈ 19 bytes; 32 covers it
	// with slack for the two raw leading values.
	maxBlockBytes = maxBlockPoints*32 + 64
	// maxBlockIndexBytes bounds the index section of one block file, the
	// same cap the snapshot codec uses per record, so a corrupt footer
	// cannot ask for an absurd allocation.
	maxBlockIndexBytes = 1 << 26
)

func blockFileName(seq uint64) string { return fmt.Sprintf("blocks-%06d.blk", seq) }

// scanBlockFileName parses a block file name's sequence number. Width-free
// for the same reason as scanRotSegName: %06d is a minimum width.
func scanBlockFileName(name string, seq *uint64) bool {
	n, err := fmt.Sscanf(name, "blocks-%d.blk", seq)
	return err == nil && n == 1 && name == blockFileName(*seq)
}

// bitWriter appends bits MSB-first to a byte slice.
type bitWriter struct {
	data []byte
	// free is how many low bits of the last byte are still unset (0 when
	// the stream ends on a byte boundary).
	free uint8
}

func (w *bitWriter) writeBit(bit bool) {
	if w.free == 0 {
		w.data = append(w.data, 0)
		w.free = 8
	}
	if bit {
		w.data[len(w.data)-1] |= 1 << (w.free - 1)
	}
	w.free--
}

func (w *bitWriter) writeByte(b byte) {
	if w.free == 0 {
		w.data = append(w.data, b)
		return
	}
	i := len(w.data) - 1
	w.data[i] |= b >> (8 - w.free)
	w.data = append(w.data, b<<w.free)
}

// writeBits writes the low n bits of v, MSB-first. n must be in [0, 64].
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n >= 8 {
		n -= 8
		w.writeByte(byte(v >> n))
	}
	for n > 0 {
		n--
		w.writeBit(v>>n&1 == 1)
	}
}

var errBlockTruncated = errors.New("tsdb: block truncated")

// bitReader consumes bits MSB-first from a byte slice, erroring (never
// panicking) past the end.
type bitReader struct {
	data []byte
	// pos is the bit position of the next unread bit.
	pos uint64
}

func (r *bitReader) readBit() (bool, error) {
	i := r.pos >> 3
	if i >= uint64(len(r.data)) {
		return false, errBlockTruncated
	}
	bit := r.data[i]>>(7-r.pos&7)&1 == 1
	r.pos++
	return bit, nil
}

// readBits reads n bits, MSB-first. n must be in [0, 64].
func (r *bitReader) readBits(n uint) (uint64, error) {
	if r.pos+uint64(n) > uint64(len(r.data))*8 {
		return 0, errBlockTruncated
	}
	var v uint64
	for n >= 8 {
		i := r.pos >> 3
		shift := r.pos & 7
		b := r.data[i] << shift
		if shift > 0 && i+1 < uint64(len(r.data)) {
			b |= r.data[i+1] >> (8 - shift)
		}
		v = v<<8 | uint64(b)
		r.pos += 8
		n -= 8
	}
	for n > 0 {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if bit {
			v |= 1
		}
		n--
	}
	return v, nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodedBlock is one compressed block staged for a block file write.
type encodedBlock struct {
	data  []byte
	count uint32
	minAt int64
	maxAt int64
}

// encodeBlock compresses pts (time-ordered, 1..maxBlockPoints of them)
// into one block bitstream.
func encodeBlock(pts []Point) encodedBlock {
	var w bitWriter
	w.data = make([]byte, 0, 16+len(pts)*2)
	var prevT, prevDelta int64
	var prevBits uint64
	// prevLead == 0xff marks "no reusable window yet".
	prevLead, prevSig := uint8(0xff), uint8(0)
	for i, p := range pts {
		t := p.At.UnixNano()
		v := math.Float64bits(p.Value)
		if i == 0 {
			w.writeBits(uint64(t), 64)
			w.writeBits(v, 64)
			prevT, prevDelta, prevBits = t, 0, v
			continue
		}
		delta := t - prevT
		dod := delta - prevDelta
		prevT, prevDelta = t, delta
		switch z := zigzag(dod); {
		case z == 0:
			w.writeBit(false)
		case z < 1<<16:
			w.writeBits(0b10, 2)
			w.writeBits(z, 16)
		case z < 1<<32:
			w.writeBits(0b110, 3)
			w.writeBits(z, 32)
		case z < 1<<48:
			w.writeBits(0b1110, 4)
			w.writeBits(z, 48)
		default:
			w.writeBits(0b1111, 4)
			w.writeBits(z, 64)
		}
		xor := v ^ prevBits
		prevBits = v
		if xor == 0 {
			w.writeBit(false)
			continue
		}
		lead := uint8(bits.LeadingZeros64(xor))
		if lead > 31 {
			lead = 31 // 5-bit field; extra leading zeros ride in the payload
		}
		trail := uint8(bits.TrailingZeros64(xor))
		if prevLead != 0xff && lead >= prevLead && trail >= 64-prevLead-prevSig {
			// The previous window still covers every meaningful bit.
			w.writeBits(0b10, 2)
			w.writeBits(xor>>(64-prevLead-prevSig), uint(prevSig))
			continue
		}
		sig := 64 - lead - trail
		w.writeBits(0b11, 2)
		w.writeBits(uint64(lead), 5)
		w.writeBits(uint64(sig&0x3f), 6) // 64 significant bits encode as 0
		w.writeBits(xor>>trail, uint(sig))
		prevLead, prevSig = lead, sig
	}
	return encodedBlock{
		data:  w.data,
		count: uint32(len(pts)),
		minAt: pts[0].At.UnixNano(),
		maxAt: pts[len(pts)-1].At.UnixNano(),
	}
}

// decodeBlock decompresses a block bitstream holding count points. It is
// the trust boundary for on-disk block bytes: any count outside
// [1, maxBlockPoints], truncation, or trailing garbage is an error, and
// nothing larger than count points is ever allocated.
func decodeBlock(data []byte, count int) ([]Point, error) {
	if count < 1 || count > maxBlockPoints {
		return nil, fmt.Errorf("tsdb: block point count %d out of range", count)
	}
	if len(data) > maxBlockBytes {
		return nil, fmt.Errorf("tsdb: block length %d out of range", len(data))
	}
	r := bitReader{data: data}
	pts := make([]Point, 0, count)
	var prevT, prevDelta int64
	var prevBits uint64
	prevLead, prevSig := uint8(0xff), uint8(0)
	for i := 0; i < count; i++ {
		if i == 0 {
			t, err := r.readBits(64)
			if err != nil {
				return nil, err
			}
			v, err := r.readBits(64)
			if err != nil {
				return nil, err
			}
			prevT, prevBits = int64(t), v
			pts = append(pts, Point{At: time.Unix(0, prevT).UTC(), Value: math.Float64frombits(v)})
			continue
		}
		// Timestamp: read the dod bucket prefix.
		var dod int64
		bit, err := r.readBit()
		if err != nil {
			return nil, err
		}
		if bit {
			n := uint(16)
			for _, wider := range []uint{32, 48, 64} {
				more, err := r.readBit()
				if err != nil {
					return nil, err
				}
				if !more {
					break
				}
				n = wider
			}
			z, err := r.readBits(n)
			if err != nil {
				return nil, err
			}
			dod = unzigzag(z)
		}
		prevDelta += dod
		prevT += prevDelta
		// Value: XOR control bits.
		bit, err = r.readBit()
		if err != nil {
			return nil, err
		}
		if bit {
			windowed, err := r.readBit()
			if err != nil {
				return nil, err
			}
			if windowed {
				lead, err := r.readBits(5)
				if err != nil {
					return nil, err
				}
				sigRaw, err := r.readBits(6)
				if err != nil {
					return nil, err
				}
				prevLead = uint8(lead)
				prevSig = uint8(sigRaw)
				if prevSig == 0 {
					prevSig = 64
				}
				if int(prevLead)+int(prevSig) > 64 {
					return nil, fmt.Errorf("tsdb: block value window %d+%d overflows", prevLead, prevSig)
				}
			} else if prevLead == 0xff {
				return nil, errors.New("tsdb: block reuses value window before defining one")
			}
			mbits, err := r.readBits(uint(prevSig))
			if err != nil {
				return nil, err
			}
			prevBits ^= mbits << (64 - prevLead - prevSig)
		}
		pts = append(pts, Point{At: time.Unix(0, prevT).UTC(), Value: math.Float64frombits(prevBits)})
		if pts[i].At.Before(pts[i-1].At) {
			return nil, errors.New("tsdb: block timestamps out of order")
		}
	}
	// Trailing data beyond the final byte's bit padding means the index's
	// count disagrees with the stream — corruption either way.
	if (r.pos+7)/8 != uint64(len(data)) {
		return nil, errors.New("tsdb: block has trailing data")
	}
	return pts, nil
}

// blockSealEntry is one series' staged contribution to a block file
// write: its encoded blocks, time-ordered.
type blockSealEntry struct {
	key    SeriesKey
	canon  string
	blocks []encodedBlock
}

// writeBlockFileTo writes a complete block file (header, blocks, index,
// footer) to w. Entries must be sorted by canonical key. mid, when
// non-nil, runs after the data blocks and before the index — the
// crash-matrix harness uses it to freeze a file with data but no index.
func writeBlockFileTo(w io.Writer, entries []blockSealEntry, mid func() error) error {
	var tmp [8]byte
	if _, err := io.WriteString(w, blockFileMagic); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(tmp[:2], blockFileVer)
	if _, err := w.Write(tmp[:2]); err != nil {
		return err
	}
	off := uint64(blockHeaderLen)
	// The index is assembled while the data blocks stream out, then
	// written in one piece so its CRC covers exactly the bytes on disk.
	idx := make([]byte, 0, 64*len(entries))
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(entries)))
	idx = append(idx, tmp[:4]...)
	for _, e := range entries {
		binary.LittleEndian.PutUint16(tmp[:2], uint16(len(e.canon)))
		idx = append(idx, tmp[:2]...)
		idx = append(idx, e.canon...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.blocks)))
		idx = append(idx, tmp[:4]...)
		for _, b := range e.blocks {
			if _, err := w.Write(b.data); err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(tmp[:], off)
			idx = append(idx, tmp[:8]...)
			binary.LittleEndian.PutUint32(tmp[:4], uint32(len(b.data)))
			idx = append(idx, tmp[:4]...)
			binary.LittleEndian.PutUint32(tmp[:4], b.count)
			idx = append(idx, tmp[:4]...)
			binary.LittleEndian.PutUint64(tmp[:], uint64(b.minAt))
			idx = append(idx, tmp[:8]...)
			binary.LittleEndian.PutUint64(tmp[:], uint64(b.maxAt))
			idx = append(idx, tmp[:8]...)
			binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(b.data))
			idx = append(idx, tmp[:4]...)
			off += uint64(len(b.data))
		}
	}
	if mid != nil {
		if err := mid(); err != nil {
			return err
		}
	}
	if _, err := w.Write(idx); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(tmp[:], off)
	if _, err := w.Write(tmp[:8]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(idx)))
	if _, err := w.Write(tmp[:4]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(idx))
	if _, err := w.Write(tmp[:4]); err != nil {
		return err
	}
	_, err := io.WriteString(w, blockIdxMagic)
	return err
}

// coldSegment is one open block file shared by every series with blocks
// in it. Reads go through ReadAt, so concurrent block decodes never
// contend on a seek position.
type coldSegment struct {
	seq  uint64
	f    *os.File
	size int64
}

// blockMeta locates one sealed block of a series: where its bytes live,
// what they decode to, and where the block starts in the series' global
// point index (cold points first, then the hot tail).
type blockMeta struct {
	seg    *coldSegment
	off    uint64
	length uint32
	count  uint32
	crc    uint32
	minAt  time.Time
	maxAt  time.Time
	start  int
}

// coldSeries is a series' sealed history: its block list in time order,
// the total cold point count, and the last cold timestamp (the
// out-of-order guard when the hot tail is empty).
type coldSeries struct {
	blocks []blockMeta
	n      int
	lastAt time.Time
}

// blockIndexEntry is one series' decoded index entry from a block file.
// The blocks carry file-local metadata only; the caller attaches them to
// a segment and assigns global start indices.
type blockIndexEntry struct {
	key    SeriesKey
	blocks []blockMeta
}

// readBlockIndex opens a block file's index: header and footer are
// validated, the index section is CRC-checked and parsed, and every
// block's extent is bounds-checked against the data section. Blocks are
// not decoded. Like the snapshot decoder this is a trust boundary:
// corrupt input errors, never panics, never over-allocates.
func readBlockIndex(f *os.File, size int64) ([]blockIndexEntry, error) {
	if size < int64(blockHeaderLen+blockFooterLen) {
		return nil, errors.New("tsdb: block file too short")
	}
	head := make([]byte, blockHeaderLen)
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("tsdb: block file header: %w", err)
	}
	if string(head[:len(blockFileMagic)]) != blockFileMagic {
		return nil, errors.New("tsdb: block file: bad magic")
	}
	if v := binary.LittleEndian.Uint16(head[len(blockFileMagic):]); v != blockFileVer {
		return nil, fmt.Errorf("tsdb: block file: unsupported version %d", v)
	}
	foot := make([]byte, blockFooterLen)
	if _, err := f.ReadAt(foot, size-int64(blockFooterLen)); err != nil {
		return nil, fmt.Errorf("tsdb: block file footer: %w", err)
	}
	if string(foot[16:]) != blockIdxMagic {
		return nil, errors.New("tsdb: block file: bad footer magic")
	}
	idxOff := binary.LittleEndian.Uint64(foot[:8])
	idxLen := binary.LittleEndian.Uint32(foot[8:12])
	idxCRC := binary.LittleEndian.Uint32(foot[12:16])
	if idxLen > maxBlockIndexBytes || idxOff < uint64(blockHeaderLen) ||
		idxOff+uint64(idxLen) != uint64(size-int64(blockFooterLen)) {
		return nil, errors.New("tsdb: block file: index bounds corrupt")
	}
	idx := make([]byte, idxLen)
	if _, err := f.ReadAt(idx, int64(idxOff)); err != nil {
		return nil, fmt.Errorf("tsdb: block file index: %w", err)
	}
	if crc32.ChecksumIEEE(idx) != idxCRC {
		return nil, errors.New("tsdb: block file: index CRC mismatch")
	}
	if len(idx) < 4 {
		return nil, errors.New("tsdb: block file: index too short")
	}
	nSeries := binary.LittleEndian.Uint32(idx)
	pos := 4
	// Each series entry costs at least 2+1(key)+4 bytes, so nSeries is
	// bounded by the index length before anything is allocated.
	if uint64(nSeries) > uint64(len(idx)-4)/7+1 {
		return nil, errors.New("tsdb: block file: series count corrupt")
	}
	out := make([]blockIndexEntry, 0, nSeries)
	for si := uint32(0); si < nSeries; si++ {
		if pos+2 > len(idx) {
			return nil, errors.New("tsdb: block file: index truncated")
		}
		keyLen := int(binary.LittleEndian.Uint16(idx[pos:]))
		pos += 2
		if pos+keyLen+4 > len(idx) {
			return nil, errors.New("tsdb: block file: index truncated")
		}
		key, err := ParseSeriesKey(string(idx[pos : pos+keyLen]))
		if err != nil {
			return nil, fmt.Errorf("tsdb: block file index: %w", err)
		}
		pos += keyLen
		nBlocks := int(binary.LittleEndian.Uint32(idx[pos:]))
		pos += 4
		if nBlocks < 1 || nBlocks > (len(idx)-pos)/blockIdxEntLen {
			return nil, errors.New("tsdb: block file: block count corrupt")
		}
		blocks := make([]blockMeta, nBlocks)
		for bi := range blocks {
			off := binary.LittleEndian.Uint64(idx[pos:])
			length := binary.LittleEndian.Uint32(idx[pos+8:])
			count := binary.LittleEndian.Uint32(idx[pos+12:])
			minAt := int64(binary.LittleEndian.Uint64(idx[pos+16:]))
			maxAt := int64(binary.LittleEndian.Uint64(idx[pos+24:]))
			crc := binary.LittleEndian.Uint32(idx[pos+32:])
			pos += blockIdxEntLen
			if count < 1 || count > maxBlockPoints || length > maxBlockBytes ||
				off < uint64(blockHeaderLen) || off+uint64(length) > idxOff {
				return nil, fmt.Errorf("tsdb: block file: block %d of %v out of bounds", bi, key)
			}
			if maxAt < minAt {
				return nil, fmt.Errorf("tsdb: block file: block %d of %v time range inverted", bi, key)
			}
			if bi > 0 && minAt < blocks[bi-1].maxAt.UnixNano() {
				return nil, fmt.Errorf("tsdb: block file: blocks of %v out of order", key)
			}
			blocks[bi] = blockMeta{
				off:    off,
				length: length,
				count:  count,
				crc:    crc,
				minAt:  time.Unix(0, minAt).UTC(),
				maxAt:  time.Unix(0, maxAt).UTC(),
			}
		}
		out = append(out, blockIndexEntry{key: key, blocks: blocks})
	}
	if pos != len(idx) {
		return nil, errors.New("tsdb: block file: trailing index data")
	}
	return out, nil
}

// readBlockData reads and decodes one block's bytes from its segment,
// verifying the index's CRC first so a bit flip in the data section is
// reported as corruption rather than decoded into garbage points.
func readBlockData(b *blockMeta) ([]Point, error) {
	buf := make([]byte, b.length)
	if _, err := b.seg.f.ReadAt(buf, int64(b.off)); err != nil {
		return nil, fmt.Errorf("tsdb: block read: %w", err)
	}
	if crc32.ChecksumIEEE(buf) != b.crc {
		return nil, errors.New("tsdb: block CRC mismatch")
	}
	pts, err := decodeBlock(buf, int(b.count))
	if err != nil {
		return nil, err
	}
	return pts, nil
}
