package tsdb

// Rotating write-ahead log segments and checkpointing.
//
// # On-disk layout (data directory)
//
//	MANIFEST                 committed layout description (JSON, atomically
//	                         replaced via temp file + rename)
//	wal-00000-000001.log ... rotating WAL segments: appends to shard i go
//	                         only to shard i's active (highest-seq) segment,
//	                         under shard i's lock; a segment seals when it
//	                         exceeds RotateBytes and the next seq opens
//	checkpoint-000001.snap   the checkpoint snapshot the manifest references
//	                         (snapshot.go codec); at most one is live; with
//	                         sealing enabled it holds only the hot tails
//	blocks-000001.blk ...    immutable compressed block files (block.go):
//	                         history a checkpoint sealed out of memory; the
//	                         manifest lists the live ones, and they
//	                         accumulate (never rewritten) until retention
//	                         policies exist to drop them
//	wal-00000.log ...        pre-rotation per-shard segments (manifest v1);
//	                         migrated to the rotated layout on first open
//	points.wal               legacy single-stream WAL from the pre-segment
//	                         layout; migrated on first open, then removed
//
// # Segment format
//
//	header: 8-byte magic "SLWALSG2" | u32 shard index | u32 shard count |
//	        u64 layout epoch | u64 sequence number | u64 base offset
//	then:   a run of WAL records (see appendRecord): u32 crc | u16 keyLen |
//	        key bytes | i64 unixNano | f64 bits
//
// Offsets are logical: they count record bytes since the epoch's stream
// began, never header bytes. The header's base offset says where this
// file's first record sits in that stream; within a shard, segments chain:
// each segment's base equals the previous segment's end, so the chain is
// reconstructible from headers and file sizes alone. Records below the
// manifest's per-shard replay offset live in the checkpoint snapshot.
//
// # Rotation
//
// When a shard's active segment exceeds the store's RotateBytes, the
// append that crossed the threshold seals it — flush, fsync, close — and
// creates the next segment (seq+1, base = the current logical end), fsyncs
// the file and the directory, then swaps the shard's writer over. No
// manifest commit is involved: recovery discovers segments by scanning the
// directory and walking each shard's seq-ordered, base-chained file list,
// so the rotation fast path never serializes on store-wide state. A crash
// between seal and create leaves the sealed segment as the append target;
// a crash after create leaves an empty, fully durable new segment.
//
// # Commit protocol
//
// The manifest rename is the only commit point. Every multi-file change
// (legacy migration, v1-layout migration, shard-count change, checkpoint)
// follows the same order: write new data files and fsync them, rename the
// new MANIFEST into place, then clean up. A crash before the rename leaves
// the old layout fully intact; a crash after it leaves stale files that
// the next open recognizes (wrong epoch, unreferenced checkpoint, leftover
// points.wal or v1 segments) and ignores or deletes.
//
// Checkpoint compaction never rewrites a data file: sealed segments whose
// whole range is covered by the new checkpoint snapshot are unlinked after
// the manifest commit, and the active segment keeps its covered prefix on
// disk (replay skips it via the manifest offset) until rotation seals it
// and a later checkpoint deletes the whole file. Checkpoint cost is
// therefore bounded by the snapshot write plus O(sealed segments) unlinks,
// independent of how large the covered tail was.
//
// # Recovery
//
// Open reads the manifest, bulk-loads the referenced checkpoint snapshot
// (if any), then replays each shard's segment chain — one goroutine per
// shard — applying only records at logical offsets >= the manifest's
// per-shard replay offset. A torn record ends the chain (it is the
// signature of a crash mid-write; nothing after it was acknowledged as
// durable), and the torn bytes are truncated before the segment reopens
// for appending. Recovery time is bounded by the bytes written since the
// last checkpoint, not by the archive's full history.
//
// # Crash points
//
// Every durable boundary of the rotation and checkpoint protocols runs
// through DB.failpoint with a stable name (rotate:seal:*, rotate:create:*,
// checkpoint:capture, checkpoint:segsync:*, checkpoint:blocks:* —
// including checkpoint:blocks:data-written, frozen mid-file between the
// data blocks and the index — checkpoint:snapshot:*,
// checkpoint:manifest:*, checkpoint:delete:*). The crash-matrix test
// harness arms a hook that aborts at exactly one of them — simulating a
// crash before or after the fsync at that boundary — and asserts recovery
// is exact against a reference store. No protocol change should land
// without a matrix cell covering its new boundary.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	manifestName    = "MANIFEST"
	manifestVersion = 2
	legacyWALName   = "points.wal"

	// v1 (pre-rotation) segment header: magic | u32 shard index |
	// u32 segment count | u64 epoch | u64 base offset.
	legacySegMagic     = "SLWALSG1"
	legacySegHeaderLen = len(legacySegMagic) + 4 + 4 + 8 + 8

	// v2 (rotating) segment header: magic | u32 shard index |
	// u32 shard count | u64 epoch | u64 seq | u64 base offset.
	rotSegMagic     = "SLWALSG2"
	rotSegHeaderLen = len(rotSegMagic) + 4 + 4 + 8 + 8 + 8
)

// errCrashPoint is returned by armed crash-point hooks; the crash-matrix
// tests use it to abort the protocol at a precise durable boundary. Code
// that cleans up after real failures must leave the disk untouched when it
// sees this sentinel — the point of the injection is to freeze the exact
// on-disk state a crash would leave.
var errCrashPoint = errors.New("tsdb: crash point injected")

// failpoint invokes the test crash hook, if armed, with the named protocol
// boundary. Production stores have no hook and pay one nil check.
func (db *DB) failpoint(point string) error {
	if db.testCrash == nil {
		return nil
	}
	return db.testCrash(point)
}

// cpHook adapts the crash hook for atomicWriteFile's stage callbacks,
// prefixing stages with the protocol step ("checkpoint:manifest" +
// ":before-sync" etc.). Returns nil when no hook is armed so the common
// path stays allocation-free.
func (db *DB) cpHook(prefix string) func(string) error {
	if db.testCrash == nil {
		return nil
	}
	return func(stage string) error { return db.testCrash(prefix + ":" + stage) }
}

// sortSnapshotSeries fills each record's canonical key form (unless the
// caller already rendered it) and sorts by it. Keys are rendered once here
// and reused by the chunking and encoding passes — String() inside a
// comparator, or re-rendered per pass, would allocate per comparison.
func sortSnapshotSeries(recs []snapshotSeries) {
	for i := range recs {
		if recs[i].canon == "" {
			recs[i].canon = recs[i].key.String()
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].canon < recs[j].canon })
}

// segRef locates one segment of a shard's chain in the manifest: its
// sequence number and the logical offset of its first record.
type segRef struct {
	Seq  uint64 `json:"seq"`
	Base uint64 `json:"base"`
}

// shardLayout is one shard's entry in the manifest.
type shardLayout struct {
	// Offset is the logical offset from which replay must resume;
	// everything below it is covered by the manifest's checkpoint.
	Offset uint64 `json:"offset"`
	// Segs lists the shard's segments at commit time, seq-ascending; the
	// last entry is the active segment. Segments rotated in after the
	// commit are discovered by directory scan and header chaining.
	Segs []segRef `json:"segs"`
}

// manifest is the committed description of the durable layout.
type manifest struct {
	Version  int    `json:"version"`
	Epoch    uint64 `json:"epoch"`
	Segments int    `json:"segments"`
	// Checkpoint is the live checkpoint snapshot's file name; empty when
	// no checkpoint has been taken in this layout.
	Checkpoint    string `json:"checkpoint,omitempty"`
	CheckpointSeq uint64 `json:"checkpointSeq"`
	// Shards[i] is shard i's replay offset and segment list (version 2).
	Shards []shardLayout `json:"shards,omitempty"`
	// Offsets is the version 1 form: one non-rotating segment per shard,
	// replay resuming at Offsets[i]. Parsed for migration only;
	// parseManifest normalizes it into Shards.
	Offsets []uint64 `json:"offsets,omitempty"`
	// Blocks lists the live compressed block files by sequence number,
	// ascending — the cold tier's committed contents. BlockSeq is the
	// last block file sequence ever committed (it only grows, so a
	// crashed seal's orphan file is overwritten on retry, never adopted).
	Blocks   []uint64 `json:"blocks,omitempty"`
	BlockSeq uint64   `json:"blockSeq,omitempty"`
	// Retain maps datasets to their committed retention cut (unix
	// nanoseconds): raw cold blocks wholly below the cut have been
	// dropped, with durable rollups covering them. Opens re-apply the
	// cuts because partially-dead block files stay in Blocks and
	// re-attach their dropped blocks (see rollup.go).
	Retain map[string]int64 `json:"retain,omitempty"`
}

func segName(i int) string { return fmt.Sprintf("wal-%05d.log", i) }

// scanSegIndex parses a v1 segment file name's shard index.
func scanSegIndex(name string, i *int) bool {
	n, err := fmt.Sscanf(name, "wal-%05d.log", i)
	return err == nil && n == 1 && name == segName(*i)
}

func rotSegName(i int, seq uint64) string { return fmt.Sprintf("wal-%05d-%06d.log", i, seq) }

// scanRotSegName parses a rotating segment file name's shard index and
// sequence number. The seq scan is width-free: %06d is only a minimum
// width in rotSegName, so sequence numbers past 999999 print more digits
// and a width-limited scan would silently drop those files — and the
// acknowledged records in them — at the next recovery. The round trip
// through rotSegName still rejects non-canonical spellings.
func scanRotSegName(name string, i *int, seq *uint64) bool {
	n, err := fmt.Sscanf(name, "wal-%05d-%d.log", i, seq)
	return err == nil && n == 2 && name == rotSegName(*i, *seq)
}

func checkpointName(s uint64) string { return fmt.Sprintf("checkpoint-%06d.snap", s) }

// syncDir fsyncs a directory so renames, creations, and unlinks inside it
// are durable before the caller proceeds.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// parseManifest decodes and validates a manifest. Version 1 manifests
// (one non-rotating segment per shard) are accepted and normalized: their
// per-shard offsets become Shards[i].Offset with an empty segment list,
// and Version stays 1 so openDurable knows to migrate. The validation
// must hold for every manifest recovery trusts: hostile or corrupt input
// errors, never panics, never makes recovery index out of range.
func parseManifest(raw []byte) (manifest, error) {
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return manifest{}, fmt.Errorf("tsdb: parsing manifest: %w", err)
	}
	if m.Segments <= 0 {
		return manifest{}, fmt.Errorf("tsdb: malformed manifest: %d segments", m.Segments)
	}
	if m.Checkpoint != "" && (m.Checkpoint != filepath.Base(m.Checkpoint) || !strings.HasPrefix(m.Checkpoint, "checkpoint-")) {
		return manifest{}, fmt.Errorf("tsdb: malformed manifest: checkpoint name %q", m.Checkpoint)
	}
	switch m.Version {
	case 1:
		if len(m.Offsets) != m.Segments {
			return manifest{}, fmt.Errorf("tsdb: malformed manifest: %d segments, %d offsets", m.Segments, len(m.Offsets))
		}
		m.Shards = make([]shardLayout, m.Segments)
		for i, off := range m.Offsets {
			m.Shards[i] = shardLayout{Offset: off}
		}
		// v1 layouts predate the block tier; a block list (or retention
		// cuts over it) here is noise.
		m.Blocks, m.BlockSeq, m.Retain = nil, 0, nil
	case manifestVersion:
		if len(m.Shards) != m.Segments {
			return manifest{}, fmt.Errorf("tsdb: malformed manifest: %d segments, %d shard layouts", m.Segments, len(m.Shards))
		}
		for si := range m.Shards {
			segs := m.Shards[si].Segs
			if len(segs) == 0 {
				return manifest{}, fmt.Errorf("tsdb: malformed manifest: shard %d has no segments", si)
			}
			for j := 1; j < len(segs); j++ {
				if segs[j].Seq <= segs[j-1].Seq || segs[j].Base < segs[j-1].Base {
					return manifest{}, fmt.Errorf("tsdb: malformed manifest: shard %d segment list not ascending", si)
				}
			}
		}
		for j := range m.Blocks {
			if j > 0 && m.Blocks[j] <= m.Blocks[j-1] {
				return manifest{}, errors.New("tsdb: malformed manifest: block list not ascending")
			}
			if m.Blocks[j] > m.BlockSeq {
				return manifest{}, fmt.Errorf("tsdb: malformed manifest: block %d above blockSeq %d", m.Blocks[j], m.BlockSeq)
			}
		}
	default:
		return manifest{}, fmt.Errorf("tsdb: unsupported manifest version %d", m.Version)
	}
	return m, nil
}

func readManifest(dir string) (manifest, bool, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("tsdb: reading manifest: %w", err)
	}
	m, err := parseManifest(raw)
	if err != nil {
		return manifest{}, false, err
	}
	return m, true, nil
}

// atomicWriteFile atomically replaces path: temp file, fsync, rename,
// directory fsync. The write callback produces the contents. Every
// durable file this package replaces (manifest, checkpoint, standalone
// snapshot) goes through here so the crash-safety sequence is
// single-sourced. The optional hook fires at the sequence's internal
// boundaries ("before-sync": tmp written, unsynced; "synced": tmp durable,
// not yet renamed; "committed": renamed and directory-synced) — the
// crash-matrix tests arm it, everything else passes nil. A hook abort
// leaves the temp file in place, exactly as a crash would.
func atomicWriteFile(path string, write func(io.Writer) error, hook func(stage string) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("tsdb: create %s: %w", filepath.Base(tmp), err)
	}
	err = write(f)
	if err == nil && hook != nil {
		err = hook("before-sync")
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil && hook != nil {
		err = hook("synced")
	}
	if err != nil {
		if !errors.Is(err, errCrashPoint) {
			os.Remove(tmp)
		}
		return fmt.Errorf("tsdb: write %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tsdb: rename %s: %w", filepath.Base(path), err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return err
	}
	if hook != nil {
		return hook("committed")
	}
	return nil
}

// writeManifest atomically replaces the manifest; this rename is the
// commit point of every multi-file layout change.
func writeManifest(dir string, m manifest, hook func(stage string) error) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("tsdb: encoding manifest: %w", err)
	}
	return atomicWriteFile(filepath.Join(dir, manifestName), func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	}, hook)
}

// rotHeader is a decoded rotating segment file header.
type rotHeader struct {
	index int
	count int
	epoch uint64
	seq   uint64
	base  uint64
}

func encodeRotHeader(h rotHeader) []byte {
	buf := make([]byte, rotSegHeaderLen)
	copy(buf, rotSegMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(h.index))
	binary.LittleEndian.PutUint32(buf[12:], uint32(h.count))
	binary.LittleEndian.PutUint64(buf[16:], h.epoch)
	binary.LittleEndian.PutUint64(buf[24:], h.seq)
	binary.LittleEndian.PutUint64(buf[32:], h.base)
	return buf
}

func decodeRotHeader(buf []byte) (rotHeader, bool) {
	if len(buf) < rotSegHeaderLen || string(buf[:len(rotSegMagic)]) != rotSegMagic {
		return rotHeader{}, false
	}
	return rotHeader{
		index: int(binary.LittleEndian.Uint32(buf[8:])),
		count: int(binary.LittleEndian.Uint32(buf[12:])),
		epoch: binary.LittleEndian.Uint64(buf[16:]),
		seq:   binary.LittleEndian.Uint64(buf[24:]),
		base:  binary.LittleEndian.Uint64(buf[32:]),
	}, true
}

// legacySegHeader is a decoded v1 (non-rotating) segment header, read only
// during migration of v1 layouts.
type legacySegHeader struct {
	index int
	count int
	epoch uint64
	base  uint64
}

func encodeLegacySegHeader(h legacySegHeader) []byte {
	buf := make([]byte, legacySegHeaderLen)
	copy(buf, legacySegMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(h.index))
	binary.LittleEndian.PutUint32(buf[12:], uint32(h.count))
	binary.LittleEndian.PutUint64(buf[16:], h.epoch)
	binary.LittleEndian.PutUint64(buf[24:], h.base)
	return buf
}

func decodeLegacySegHeader(buf []byte) (legacySegHeader, bool) {
	if len(buf) < legacySegHeaderLen || string(buf[:len(legacySegMagic)]) != legacySegMagic {
		return legacySegHeader{}, false
	}
	return legacySegHeader{
		index: int(binary.LittleEndian.Uint32(buf[8:])),
		count: int(binary.LittleEndian.Uint32(buf[12:])),
		epoch: binary.LittleEndian.Uint64(buf[16:]),
		base:  binary.LittleEndian.Uint64(buf[24:]),
	}, true
}

// openDurable brings up the durable layout for db.dir: it migrates legacy
// single-WAL directories and v1 (non-rotating) layouts, re-shards when the
// segment count no longer matches, and otherwise loads the checkpoint and
// replays per-shard segment chains. It runs single-threaded during Open,
// before the store is shared.
func (db *DB) openDurable() error {
	man, ok, err := readManifest(db.dir)
	if err != nil {
		return err
	}
	if db.readOnly {
		return db.openReadOnly(man, ok)
	}
	legacy := filepath.Join(db.dir, legacyWALName)
	switch {
	case !ok:
		// Fresh directory, or a legacy single-stream layout, or a migration
		// that crashed before its manifest commit (stale segment/checkpoint
		// files may exist — commitLayout overwrites them, which is what
		// makes the migration idempotent).
		if err := db.replayLegacy(legacy); err != nil {
			return err
		}
		if err := db.commitLayout(1); err != nil {
			return err
		}
	case man.Version == 1 || man.Segments != len(db.shards):
		// A v1 (non-rotating) layout, or a shard-count change: load the
		// full state under the committed layout, then re-commit a fresh
		// rotated layout at a new epoch. A crash before the new manifest
		// rename leaves the old manifest authoritative (the redo replays
		// the same files); a crash after it leaves stale old-layout files
		// that removeStaleFiles deletes without replaying.
		db.man = man
		if man.Version == 1 {
			if err := db.loadV1Layout(man); err != nil {
				return err
			}
		} else {
			// Blocks attach before the snapshot and WAL tail load: the
			// cold prefix must be in place before hot points append after
			// it. Block files are shard-agnostic (series re-hash onto the
			// current shards at attach), so a re-shard carries them as-is.
			if err := db.openBlocks(man); err != nil {
				return err
			}
			if _, err := db.loadRotLayout(man, false); err != nil {
				return err
			}
		}
		if err := db.commitLayout(man.Epoch + 1); err != nil {
			return err
		}
	default:
		db.man = man
		db.epoch = man.Epoch
		if err := db.openBlocks(man); err != nil {
			return err
		}
		chains, err := db.loadRotLayout(man, true)
		if err != nil {
			return err
		}
		if err := db.openActiveSegments(chains); err != nil {
			return err
		}
	}
	// A crash after a migration's manifest commit can leave the old
	// single-stream WAL behind; it is fully represented in the committed
	// layout, so drop it.
	if err := os.Remove(legacy); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("tsdb: removing migrated wal: %w", err)
	}
	db.removeStaleFiles()
	return nil
}

// openReadOnly loads the committed layout without mutating the directory:
// blocks attach and the WAL chains replay exactly as in the normal open,
// but no active segment is created or truncated, no migration re-commits
// a layout, and no stale files are reclaimed. That last point is load-
// bearing for replication — a follower's puller stages files here between
// reopens, and a reaping pass would delete them. Anything requiring a
// layout the current code cannot serve verbatim (no manifest, or a v1
// manifest needing migration) is refused rather than migrated: migration
// writes files, and a read-only open owns none.
func (db *DB) openReadOnly(man manifest, ok bool) error {
	if !ok {
		return errors.New("tsdb: read-only open: no committed manifest")
	}
	if man.Version != manifestVersion {
		return fmt.Errorf("tsdb: read-only open: manifest version %d requires migration by a writable open", man.Version)
	}
	db.man = man
	db.epoch = man.Epoch
	if err := db.openBlocks(man); err != nil {
		return err
	}
	// With the manifest's segment count matching ours, each shard's chain
	// replays in parallel under the strict ownership checks; otherwise
	// the sequential path re-hashes every record onto the current shards
	// (the same read path the migration uses, minus the re-commit).
	if _, err := db.loadRotLayout(man, man.Segments == len(db.shards)); err != nil {
		return err
	}
	return nil
}

// replayLegacy loads the single-stream WAL of the pre-segment layout,
// tolerating a truncated trailing record (crash). Per the migration
// protocol the file is fsync'd and closed before any segment file is
// written: its contents must be stable on disk while it remains the only
// durable copy of the data.
func (db *DB) replayLegacy(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("tsdb: opening wal for replay: %w", err)
	}
	_, replayErr := replayRecords(bufio.NewReaderSize(f, 1<<16), func(k SeriesKey, at time.Time, v float64) {
		sh := db.shardFor(k)
		db.applyReplayed(sh, k, at, v)
	})
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if replayErr != nil {
		return replayErr
	}
	if err != nil {
		return fmt.Errorf("tsdb: legacy wal sync: %w", err)
	}
	return nil
}

// applyReplayed stores one replayed point directly. Open owns the store
// exclusively, so no locks are taken; parallel chain replay is safe
// because each goroutine only touches its own shard.
func (db *DB) applyReplayed(sh *shard, k SeriesKey, at time.Time, v float64) {
	db.mergeSeries(sh, k, Point{At: at, Value: v})
}

// mergeSeries bulk-appends points to a series, maintaining the shard's
// point counter and generation and the store's key generation. The caller
// must own sh — either exclusively (recovery during Open) or via its
// write lock.
func (db *DB) mergeSeries(sh *shard, k SeriesKey, pts ...Point) {
	s := sh.series[k]
	if s == nil {
		s = &series{}
		sh.series[k] = s
		db.keyGen.Add(1)
	}
	s.points = append(s.points, pts...)
	sh.points += len(pts)
	db.hotPts.Add(int64(len(pts)))
	sh.gen.Add(uint64(len(pts)))
}

// openBlocks opens every block file the manifest lists and attaches
// their per-series indexes to the shards: block metadata only, no
// decode — recovery cost is O(index), independent of how much history
// has gone cold. Runs single-threaded during Open, before the
// checkpoint snapshot loads and the WAL tail replays (both append hot
// points after the cold prefix this establishes).
func (db *DB) openBlocks(man manifest) error {
	fail := func(err error) error {
		for _, seg := range db.coldSegs {
			seg.f.Close()
		}
		db.coldSegs = nil
		return err
	}
	for _, seq := range man.Blocks {
		name := blockFileName(seq)
		f, err := os.Open(filepath.Join(db.dir, name))
		if err != nil {
			return fail(fmt.Errorf("tsdb: opening block file: %w", err))
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return fail(fmt.Errorf("tsdb: %s: %w", name, err))
		}
		entries, err := readBlockIndex(f, st.Size())
		if err != nil {
			f.Close()
			return fail(fmt.Errorf("tsdb: %s: %w", name, err))
		}
		seg := &coldSegment{seq: seq, f: f, size: st.Size()}
		db.coldSegs = append(db.coldSegs, seg)
		for _, ent := range entries {
			sh := db.shardFor(ent.key)
			s := sh.series[ent.key]
			if s == nil {
				s = &series{}
				sh.series[ent.key] = s
				db.keyGen.Add(1)
			}
			if s.cold == nil {
				s.cold = &coldSeries{}
			}
			if s.cold.n > 0 && ent.blocks[0].minAt.Before(s.cold.lastAt) {
				// Later files must continue where earlier ones ended; the
				// seal protocol never commits an overlap.
				return fail(fmt.Errorf("tsdb: %s: blocks of %v overlap an earlier file", name, ent.key))
			}
			total := 0
			var bytes int64
			for _, b := range ent.blocks {
				b.seg = seg
				b.start = s.cold.n
				s.cold.blocks = append(s.cold.blocks, b)
				s.cold.n += int(b.count)
				total += int(b.count)
				bytes += int64(b.length)
			}
			s.cold.lastAt = ent.blocks[len(ent.blocks)-1].maxAt
			sh.points += total
			sh.gen.Add(uint64(total))
			db.coldPts.Add(int64(total))
			db.sealedBlks.Add(int64(len(ent.blocks)))
			db.coldBytes.Add(bytes)
		}
	}
	return nil
}

// replayRecords reads WAL records from r until EOF, a truncated record, or
// a CRC mismatch (all three end replay silently: they are the signature of
// a crash mid-write). Malformed keys are skipped. It returns how many
// bytes of complete, CRC-valid records were consumed, so callers can
// truncate a crashed tail before appending after it.
func replayRecords(r io.Reader, apply func(SeriesKey, time.Time, float64)) (int64, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	valid := int64(0)
	var head [6]byte
	for {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return valid, nil // clean end or truncated header: stop replay
			}
			return valid, fmt.Errorf("tsdb: replay: %w", err)
		}
		crc := binary.LittleEndian.Uint32(head[:4])
		keyLen := int(binary.LittleEndian.Uint16(head[4:6]))
		body := make([]byte, keyLen+16)
		if _, err := io.ReadFull(br, body); err != nil {
			return valid, nil // truncated record: ignore tail
		}
		full := make([]byte, 0, 2+len(body))
		full = append(full, head[4:6]...)
		full = append(full, body...)
		if crc32.ChecksumIEEE(full) != crc {
			return valid, nil // corrupt tail: stop replay
		}
		valid += int64(len(head) + len(body))
		at := time.Unix(0, int64(binary.LittleEndian.Uint64(body[keyLen:keyLen+8]))).UTC()
		v := math.Float64frombits(binary.LittleEndian.Uint64(body[keyLen+8:]))
		k, err := ParseSeriesKey(string(body[:keyLen]))
		if err != nil {
			continue
		}
		apply(k, at, v)
	}
}

// loadCheckpointFile bulk-loads the named checkpoint snapshot into the
// store. The checkpoint is the only copy of the truncated history:
// refusing to open without it beats silently serving a partial archive.
func (db *DB) loadCheckpointFile(name string) error {
	f, err := os.Open(filepath.Join(db.dir, name))
	if err != nil {
		return fmt.Errorf("tsdb: opening checkpoint: %w", err)
	}
	recs, err := decodeSnapshot(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("tsdb: loading checkpoint: %w", err)
	}
	for _, rec := range recs {
		db.mergeSeries(db.shardFor(rec.key), rec.key, rec.points...)
	}
	return nil
}

// loadV1Layout restores the state a committed v1 (non-rotating) manifest
// describes: bulk-load its checkpoint, then replay each wal-<i>.log from
// its per-shard offset. Replay is sequential and records hash onto the
// current shards (whose count may differ from the v1 layout's); the caller
// re-commits a rotated layout afterwards, so no v1 file is opened for
// appending.
func (db *DB) loadV1Layout(man manifest) error {
	if man.Checkpoint != "" {
		if err := db.loadCheckpointFile(man.Checkpoint); err != nil {
			return err
		}
	}
	for i := 0; i < man.Segments; i++ {
		if err := db.replayV1Segment(i, man); err != nil {
			return err
		}
	}
	return nil
}

// replayV1Segment replays v1 segment i's records at logical offsets >=
// man.Shards[i].Offset. Missing files, stale epochs, and malformed headers
// make the segment count as empty — those states only arise from crashes
// after a manifest commit, where the manifest's checkpoint already covers
// the data.
func (db *DB) replayV1Segment(i int, man manifest) error {
	f, err := os.Open(filepath.Join(db.dir, segName(i)))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("tsdb: opening segment %d: %w", i, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head := make([]byte, legacySegHeaderLen)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil // truncated header: empty segment
	}
	h, ok := decodeLegacySegHeader(head)
	if !ok || h.epoch != man.Epoch || h.index != i || h.count != man.Segments {
		return nil // stale or foreign segment: covered by the checkpoint
	}
	if skip := int64(man.Shards[i].Offset) - int64(h.base); skip > 0 {
		if _, err := io.CopyN(io.Discard, br, skip); err != nil {
			return nil // segment shorter than the checkpoint cut: all covered
		}
	}
	_, err = replayRecords(br, func(k SeriesKey, at time.Time, v float64) {
		db.applyReplayed(db.shardFor(k), k, at, v)
	})
	return err
}

// rotSegOnDisk is one segment file a directory scan found for a shard.
type rotSegOnDisk struct {
	seq  uint64
	path string
}

// sealedSeg is a shard's in-memory record of one sealed (no longer
// written) segment still on disk: its sequence number and logical range.
// Checkpoint deletes sealed segments whose end falls at or below the cut.
type sealedSeg struct {
	seq, base, end uint64
}

// shardChain is the outcome of replaying one shard's segment chain: the
// sealed segments to retain, and the identity and extent of the segment
// that should become the append target.
type shardChain struct {
	sealed   []sealedSeg
	seq      uint64 // active segment sequence number
	base     uint64 // active segment base offset
	validEnd uint64 // logical end of its last complete, CRC-valid record
	sizeEnd  uint64 // size-implied end (> validEnd when the tail is torn)
	found    bool   // an active segment file exists on disk
}

// scanRotSegments lists every rotating segment file in the directory,
// grouped by shard index (0..segments-1) and sorted by sequence number.
func scanRotSegments(dir string, segments int) ([][]rotSegOnDisk, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: scanning segments: %w", err)
	}
	out := make([][]rotSegOnDisk, segments)
	for _, e := range ents {
		var i int
		var seq uint64
		if !scanRotSegName(e.Name(), &i, &seq) || i < 0 || i >= segments {
			continue
		}
		out[i] = append(out[i], rotSegOnDisk{seq: seq, path: filepath.Join(dir, e.Name())})
	}
	for i := range out {
		sort.Slice(out[i], func(a, b int) bool { return out[i][a].seq < out[i][b].seq })
	}
	return out, nil
}

// loadRotLayout restores the store state a committed v2 manifest
// describes: bulk-load the checkpoint snapshot, then replay each shard's
// segment chain. With parallel set (segment count == shard count), chains
// replay on one goroutine each, writing only their own shard; otherwise
// (re-shard path) replay is sequential and records re-hash onto the new
// shards. The returned chains tell openActiveSegments where each shard's
// append stream resumes.
func (db *DB) loadRotLayout(man manifest, parallel bool) ([]shardChain, error) {
	if man.Checkpoint != "" {
		if err := db.loadCheckpointFile(man.Checkpoint); err != nil {
			return nil, err
		}
	}
	found, err := scanRotSegments(db.dir, man.Segments)
	if err != nil {
		return nil, err
	}
	chains := make([]shardChain, man.Segments)
	if !parallel {
		for i := 0; i < man.Segments; i++ {
			c, err := db.replayShardChain(i, man, false, found[i])
			if err != nil {
				return nil, err
			}
			chains[i] = c
		}
		return chains, nil
	}
	errs := make([]error, man.Segments)
	var wg sync.WaitGroup
	for i := 0; i < man.Segments; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chains[i], errs[i] = db.replayShardChain(i, man, true, found[i])
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return chains, nil
}

// replayShardChain walks shard i's seq-ordered segment files, applying
// every record at logical offsets >= the manifest's replay offset. The
// chain invariant — each segment's base equals the previous segment's
// end — is checked from headers and file sizes; a break (gap, overlap, or
// torn record) ends the chain there, because nothing past a break was
// acknowledged as durable before a crash. Files with foreign or stale
// headers are skipped (leftovers of crashed rotations and old epochs;
// removeStaleFiles reaps them). When strict is set (parallel replay),
// records that do not hash to shard i are dropped rather than applied, so
// goroutines never cross shards.
func (db *DB) replayShardChain(i int, man manifest, strict bool, segs []rotSegOnDisk) (shardChain, error) {
	lay := man.Shards[i]
	var c shardChain
	offset := lay.Offset
	for _, sg := range segs {
		f, err := os.Open(sg.path)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			return c, fmt.Errorf("tsdb: opening segment %s: %w", filepath.Base(sg.path), err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return c, fmt.Errorf("tsdb: segment %s stat: %w", filepath.Base(sg.path), err)
		}
		head := make([]byte, rotSegHeaderLen)
		if _, err := io.ReadFull(f, head); err != nil {
			f.Close()
			continue // truncated header: crashed creation, not part of the chain
		}
		h, ok := decodeRotHeader(head)
		if !ok || h.epoch != man.Epoch || h.index != i || h.count != man.Segments || h.seq != sg.seq {
			f.Close()
			continue // stale or foreign segment
		}
		if c.found && h.base != c.validEnd {
			// Chain break: this segment does not continue the stream where
			// the previous one ended (a gap from a lost file, or an overlap
			// from a crashed rotation). Nothing from here on is reachable.
			f.Close()
			break
		}
		if c.found {
			c.sealed = append(c.sealed, sealedSeg{seq: c.seq, base: c.base, end: c.validEnd})
		}
		c.seq, c.base, c.found = h.seq, h.base, true
		c.sizeEnd = h.base
		if st.Size() > int64(rotSegHeaderLen) {
			c.sizeEnd = h.base + uint64(st.Size()-int64(rotSegHeaderLen))
		}
		if c.sizeEnd <= offset {
			// Fully covered by the checkpoint: nothing to replay. The file
			// sticks around as a sealed entry so the next checkpoint
			// deletes it (it survived a crash between manifest commit and
			// sealed-segment deletion).
			c.validEnd = c.sizeEnd
			f.Close()
			continue
		}
		br := bufio.NewReaderSize(f, 1<<16)
		start := h.base
		if skip := int64(offset) - int64(h.base); skip > 0 {
			if _, err := io.CopyN(io.Discard, br, skip); err != nil {
				// sizeEnd > offset proved the file long enough for the
				// skip, so this is a real read failure, not a short file.
				// Records in [offset, sizeEnd) are the only copy of that
				// range; refusing to open beats silently serving an
				// archive with a hole the next checkpoint would make
				// permanent.
				f.Close()
				return c, fmt.Errorf("tsdb: segment %s: skipping to checkpoint offset: %w", filepath.Base(sg.path), err)
			}
			start = offset
		}
		valid, err := replayRecords(br, func(k SeriesKey, at time.Time, v float64) {
			sh := db.shardFor(k)
			if strict && sh != &db.shards[i] {
				return
			}
			db.applyReplayed(sh, k, at, v)
		})
		f.Close()
		if err != nil {
			return c, err
		}
		c.validEnd = start + uint64(valid)
		db.replayedBytes.Add(uint64(valid))
		if c.validEnd < c.sizeEnd {
			// Torn record: the signature of a crash mid-append. Nothing at
			// or past it — in this segment or any later one — was durable.
			break
		}
	}
	if !c.found {
		// No usable segment on disk (fresh layout after a crash, or every
		// file covered and deleted): resume the stream at the manifest cut
		// under the last committed sequence number.
		seq := uint64(1)
		if n := len(lay.Segs); n > 0 {
			seq = lay.Segs[n-1].Seq
		}
		c.seq, c.base, c.validEnd, c.sizeEnd = seq, offset, offset, offset
	}
	return c, nil
}

// openActiveSegments opens each shard's active segment for appending,
// applying the chain replay's verdicts: a torn tail is truncated to the
// last complete record first (appending after a crashed half-written tail
// would strand the new records behind bytes replay refuses to cross), and
// a missing or fully-covered active segment is (re)created rebased at the
// manifest's replay offset. It must run after loadRotLayout with db.man
// and db.epoch current.
func (db *DB) openActiveSegments(chains []shardChain) error {
	n := len(db.shards)
	for i := range db.shards {
		sh := &db.shards[i]
		c := chains[i]
		offset := db.man.Shards[i].Offset
		path := filepath.Join(db.dir, rotSegName(i, c.seq))
		var f *os.File
		var err error
		if !c.found || c.validEnd < offset {
			// Fresh, or the file's valid extent sits entirely below the
			// checkpoint cut (external truncation): rebase an empty file
			// onto the cut so the logical-to-physical mapping holds.
			f, err = createRotSegmentFile(path, rotHeader{index: i, count: n, epoch: db.epoch, seq: c.seq, base: offset})
			if err != nil {
				return err
			}
			c.base, c.validEnd = offset, offset
		} else {
			f, err = os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				return fmt.Errorf("tsdb: opening segment %s: %w", filepath.Base(path), err)
			}
			if c.sizeEnd > c.validEnd {
				if err := f.Truncate(int64(rotSegHeaderLen) + int64(c.validEnd-c.base)); err != nil {
					f.Close()
					return fmt.Errorf("tsdb: segment %s truncate: %w", filepath.Base(path), err)
				}
				if err := f.Sync(); err != nil {
					f.Close()
					return fmt.Errorf("tsdb: segment %s sync: %w", filepath.Base(path), err)
				}
			}
			if _, err := f.Seek(0, io.SeekEnd); err != nil {
				f.Close()
				return fmt.Errorf("tsdb: segment %s seek: %w", filepath.Base(path), err)
			}
		}
		sh.walF = f
		sh.wal = bufio.NewWriterSize(f, 1<<16)
		sh.walSeq = c.seq
		sh.walBase = c.base
		sh.walOff = c.validEnd
		sh.sealed = c.sealed
		db.setSealed(sh, len(sh.sealed))
		// Seed the checkpoint byte counters with the replayed tail: the
		// records between the manifest cut and the chain's valid end are
		// exactly the bytes the next restart would replay again. Left at
		// zero, a writer crashing just under the threshold every run
		// would grow the tail without ever arming the size trigger.
		if c.validEnd > offset {
			tail := c.validEnd - offset
			sh.cpBytes.Store(tail)
			db.cpBytesTotal.Add(tail)
		}
	}
	return syncDir(db.dir)
}

// createRotSegmentFile (re)creates an empty rotating segment file with the
// given header, replacing whatever was at path, and fsyncs it.
func createRotSegmentFile(path string, h rotHeader) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tsdb: creating segment: %w", err)
	}
	if _, err := f.Write(encodeRotHeader(h)); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		return nil, fmt.Errorf("tsdb: segment header write: %w", err)
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tsdb: segment header sync: %w", err)
	}
	return f, nil
}

// rotateLocked seals the shard's active segment and opens the next one in
// the sequence. The caller holds sh.mu. Durable order: flush and fsync the
// active file (seal — everything in it is now stable), create
// wal-<shard>-<seq+1>.log with base = the current logical end, fsync the
// file and the directory, then swap the shard's writer. A crash between
// seal and create leaves the sealed segment as the append target on the
// next open (recovery finds no higher seq); a crash after create leaves an
// empty, fully durable new segment that recovery chains onto. On a real
// (non-injected) failure the shard keeps appending to the current segment
// and the half-created file, if any, is removed.
func (db *DB) rotateLocked(sh *shard) error {
	if err := sh.wal.Flush(); err != nil {
		return fmt.Errorf("tsdb: rotate flush: %w", err)
	}
	if err := db.failpoint("rotate:seal:before-sync"); err != nil {
		return err
	}
	if err := sh.walF.Sync(); err != nil {
		return fmt.Errorf("tsdb: rotate seal sync: %w", err)
	}
	if err := db.failpoint("rotate:seal:after-sync"); err != nil {
		return err
	}
	seq := sh.walSeq + 1
	path := filepath.Join(db.dir, rotSegName(sh.idx, seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: rotate create: %w", err)
	}
	_, err = f.Write(encodeRotHeader(rotHeader{index: sh.idx, count: len(db.shards), epoch: db.epoch, seq: seq, base: sh.walOff}))
	if err == nil {
		err = db.failpoint("rotate:create:before-sync")
	}
	if err == nil {
		err = f.Sync()
	}
	if err == nil {
		err = syncDir(db.dir)
	}
	if err == nil {
		err = db.failpoint("rotate:create:after-sync")
	}
	if err != nil {
		f.Close()
		if !errors.Is(err, errCrashPoint) {
			os.Remove(path)
		}
		return err
	}
	// Swap over. The sealed file's close error is ignored: its bytes were
	// fsync'd above and nothing will write to it again.
	sh.walF.Close()
	sh.sealed = append(sh.sealed, sealedSeg{seq: sh.walSeq, base: sh.walBase, end: sh.walOff})
	sh.walF = f
	sh.wal.Reset(f)
	sh.walSeq = seq
	sh.walBase = sh.walOff
	db.setSealed(sh, len(sh.sealed))
	if db.maxSealed > 0 && len(sh.sealed) >= db.maxSealed {
		// The chain just reached the cap. The next append will checkpoint
		// before storing, but if the writer goes idle right here the wake
		// lets the daemon reclaim the chain now instead of next poll.
		db.wakeMaintainer()
	}
	return nil
}

// commitLayout persists the store's current in-memory state as a brand-new
// rotated layout at the given epoch: a checkpoint snapshot holding every
// point (when the store is non-empty), then the manifest (the commit
// point), then one fresh empty segment per shard at seq 1. Used by the
// legacy migration, the v1-layout migration, the re-shard path, and
// fresh-directory initialization. A crash before the manifest rename
// leaves the previous layout (or the legacy WAL) fully authoritative; a
// crash after it leaves at worst stale files from the old layout, which
// the next open recreates or deletes.
func (db *DB) commitLayout(epoch uint64) error {
	n := len(db.shards)
	m := manifest{
		Version:       manifestVersion,
		Epoch:         epoch,
		Segments:      n,
		CheckpointSeq: db.man.CheckpointSeq,
		Blocks:        db.man.Blocks,
		BlockSeq:      db.man.BlockSeq,
		Retain:        db.man.Retain,
		Shards:        make([]shardLayout, n),
	}
	for i := range m.Shards {
		m.Shards[i] = shardLayout{Segs: []segRef{{Seq: 1, Base: 0}}}
	}
	if db.PointCount() > 0 {
		m.CheckpointSeq++
		m.Checkpoint = checkpointName(m.CheckpointSeq)
		if err := db.writeCheckpointFile(m.Checkpoint, db.capture()); err != nil {
			return err
		}
	}
	if err := writeManifest(db.dir, m, nil); err != nil {
		return err
	}
	old := db.man
	db.man = m
	db.epoch = epoch
	for i := range db.shards {
		sh := &db.shards[i]
		f, err := createRotSegmentFile(filepath.Join(db.dir, rotSegName(i, 1)), rotHeader{index: i, count: n, epoch: epoch, seq: 1})
		if err != nil {
			return err
		}
		sh.walF = f
		sh.wal = bufio.NewWriterSize(f, 1<<16)
		sh.walSeq = 1
		sh.walBase = 0
		sh.walOff = 0
		sh.sealed = nil
		db.setSealed(sh, 0)
		sh.cpBytes.Store(0)
	}
	db.cpBytesTotal.Store(0)
	if err := syncDir(db.dir); err != nil {
		return err
	}
	if old.Checkpoint != "" && old.Checkpoint != m.Checkpoint {
		os.Remove(filepath.Join(db.dir, old.Checkpoint))
	}
	return nil
}

// writeCheckpointFile writes recs as a snapshot to name inside the data
// directory (temp file, fsync, rename, directory fsync).
func (db *DB) writeCheckpointFile(name string, recs []snapshotSeries) error {
	return atomicWriteFile(filepath.Join(db.dir, name), func(w io.Writer) error {
		return encodeSnapshot(w, recs)
	}, db.cpHook("checkpoint:snapshot"))
}

// removeStaleFiles deletes files the committed layout does not own:
// temp files, checkpoints the manifest no longer references, v1 segment
// files superseded by the rotated layout, and rotating segment files that
// are neither a shard's active segment nor one of its retained sealed
// segments — leftovers of crashed rotations, checkpoints, migrations, and
// re-shards. Runs at the end of Open, single-threaded. Best-effort.
func (db *DB) removeStaleFiles() {
	ents, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	live := make(map[string]bool, len(db.shards)*2)
	for i := range db.shards {
		sh := &db.shards[i]
		live[rotSegName(i, sh.walSeq)] = true
		for _, sg := range sh.sealed {
			live[rotSegName(i, sg.seq)] = true
		}
	}
	liveBlocks := make(map[uint64]bool, len(db.man.Blocks))
	for _, seq := range db.man.Blocks {
		liveBlocks[seq] = true
	}
	for _, e := range ents {
		name := e.Name()
		var i int
		var seq uint64
		switch {
		case name == db.man.Checkpoint || name == manifestName || name == legacyWALName:
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(db.dir, name))
		case scanRotSegName(name, &i, &seq):
			if !live[name] {
				os.Remove(filepath.Join(db.dir, name))
			}
		case scanBlockFileName(name, &seq):
			// A block file outside the manifest's list is a crashed seal's
			// orphan: its manifest commit never happened, so its points are
			// still fully covered by the snapshot + WAL.
			if !liveBlocks[seq] {
				os.Remove(filepath.Join(db.dir, name))
			}
		case scanSegIndex(name, &i):
			os.Remove(filepath.Join(db.dir, name))
		case strings.HasPrefix(name, "checkpoint-"):
			os.Remove(filepath.Join(db.dir, name))
		}
	}
}

// Checkpoint persists the store's current state as a snapshot inside the
// data directory and drops the WAL segments it covers, so the next open
// bulk-loads the snapshot and replays only the records appended
// afterwards — bounded recovery time regardless of archive age.
//
// The snapshot is cut per shard: each shard's contribution is captured
// together with its segment chain's logical offset under that shard's
// lock, so the pair is exact even while appends to other shards continue.
// Durable order is: flush + fsync active segments (so everything at or
// below the cut is on disk; sealed segments were fsync'd when they
// sealed), write the snapshot file, commit the manifest referencing it,
// then unlink the sealed segments the snapshot fully covers. No data file
// is ever rewritten: compaction is the manifest commit plus unlinks, so
// its cost is independent of how much history the snapshot absorbed. A
// crash between any two steps recovers to a state containing every
// acknowledged point.
//
// Checkpoint returns an error on memory-only stores.
func (db *DB) Checkpoint() error {
	if db.dir == "" {
		return errors.New("tsdb: memory-only store cannot checkpoint")
	}
	if db.readOnly {
		return errors.New("tsdb: read-only store cannot checkpoint")
	}
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	return db.checkpointLocked()
}

// checkpointLocked runs the checkpoint protocol; the caller holds cpMu.
// Both the manual Checkpoint entry point and the maintainer (daemon tick
// or append-path chain-cap force) funnel through here, each already
// serialized on cpMu — the maintainer additionally re-checks its trigger
// under the lock, so a manual checkpoint that got there first satisfies
// it and no redundant snapshot is stacked behind it (single-flight).
func (db *DB) checkpointLocked() error {
	if db.closed.Load() {
		return errors.New("tsdb: store is closed")
	}
	n := len(db.shards)
	// Capture a per-shard cut: the chain's logical offset, the surviving
	// segment list, and every series' point slice, atomically per shard.
	// Point slices are append-only, so everything below the captured
	// length is immutable afterwards.
	offs := make([]uint64, n)
	files := make([]*os.File, n)
	layouts := make([]shardLayout, n)
	pres := make([]uint64, n)
	recs, err := db.captureWith(func(i int, sh *shard) error {
		if sh.wal == nil {
			return errors.New("tsdb: store is closed")
		}
		if err := sh.wal.Flush(); err != nil {
			return fmt.Errorf("tsdb: checkpoint flush: %w", err)
		}
		offs[i] = sh.walOff
		files[i] = sh.walF
		pres[i] = sh.cpBytes.Load()
		// The manifest lists exactly the active segment: every sealed
		// segment's end was the shard's walOff when it sealed, so under
		// this lock all of them sit at or below the cut — the snapshot
		// covers them fully and the delete phase unlinks them. Segments
		// rotated in after this commit are found by directory scan and
		// base-chaining, never the manifest.
		layouts[i] = shardLayout{Offset: offs[i], Segs: []segRef{{Seq: sh.walSeq, Base: sh.walBase}}}
		return nil
	})
	if err != nil {
		return err
	}
	if err := db.failpoint("checkpoint:capture"); err != nil {
		return err
	}
	// Everything at or below the cut must be durable before a manifest
	// can claim the snapshot supersedes it. The fsyncs run concurrently
	// (as in Flush) so the stall under cpMu is one disk round trip, not
	// one per shard. A file rotation sealed (and therefore fsync'd)
	// between capture and here reports ErrClosed — already durable.
	syncErrs := make([]error, n)
	var syncWG sync.WaitGroup
	for i := range files {
		syncWG.Add(1)
		go func(i int) {
			defer syncWG.Done()
			if err := files[i].Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
				syncErrs[i] = err
			}
		}(i)
	}
	syncWG.Wait()
	if err := errors.Join(syncErrs...); err != nil {
		return fmt.Errorf("tsdb: checkpoint segment sync: %w", err)
	}
	if err := db.failpoint("checkpoint:segsync:after"); err != nil {
		return err
	}
	// Seal: carve whole blocks off each captured series' prefix, keeping
	// at least hotTail points hot (and with it the in-memory dedup and
	// out-of-order state). recs is rewritten in place to the post-seal hot
	// tails, so the checkpoint snapshot below holds exactly what stays in
	// memory — blocks and snapshot partition the history, never overlap.
	// The block file must be durable before the manifest (the commit
	// point) references it; the read handle is also opened before the
	// commit, so an open failure aborts the whole checkpoint while the old
	// manifest is still authoritative. Either abort leaves an orphan
	// blocks file that the next successful seal overwrites (BlockSeq only
	// advances on commit) and removeStaleFiles reaps at open.
	var (
		sealEntries []blockSealEntry
		sealCounts  []int // points sealed out of recs[i]; parallel to recs
		newSeg      *coldSegment
	)
	if db.SealsCold() {
		sealCounts = make([]int, len(recs))
		for i := range recs {
			rec := &recs[i]
			sealable := len(rec.points) - db.hotTail
			if sealable < db.blockPoints {
				continue
			}
			nseal := sealable - sealable%db.blockPoints
			ent := blockSealEntry{key: rec.key, canon: rec.canonKey()}
			for off := 0; off < nseal; off += db.blockPoints {
				ent.blocks = append(ent.blocks, encodeBlock(rec.points[off:off+db.blockPoints]))
			}
			sealEntries = append(sealEntries, ent)
			sealCounts[i] = nseal
			rec.points = rec.points[nseal:]
		}
		if len(sealEntries) > 0 {
			seq := db.man.BlockSeq + 1
			path := filepath.Join(db.dir, blockFileName(seq))
			err := atomicWriteFile(path, func(w io.Writer) error {
				return writeBlockFileTo(w, sealEntries, func() error {
					return db.failpoint("checkpoint:blocks:data-written")
				})
			}, db.cpHook("checkpoint:blocks"))
			if err != nil {
				return err
			}
			f, err := os.Open(path)
			if err != nil {
				return fmt.Errorf("tsdb: reopening sealed block file: %w", err)
			}
			st, err := f.Stat()
			if err != nil {
				f.Close()
				return fmt.Errorf("tsdb: sealed block file: %w", err)
			}
			newSeg = &coldSegment{seq: seq, f: f, size: st.Size()}
		}
	}
	m := manifest{
		Version:       manifestVersion,
		Epoch:         db.epoch,
		Segments:      n,
		CheckpointSeq: db.man.CheckpointSeq + 1,
		Blocks:        db.man.Blocks,
		BlockSeq:      db.man.BlockSeq,
		Retain:        db.man.Retain,
		Shards:        layouts,
	}
	if newSeg != nil {
		m.Blocks = append(append([]uint64(nil), db.man.Blocks...), newSeg.seq)
		m.BlockSeq = newSeg.seq
	}
	m.Checkpoint = checkpointName(m.CheckpointSeq)
	if err := db.writeCheckpointFile(m.Checkpoint, recs); err != nil {
		if newSeg != nil {
			newSeg.f.Close()
		}
		return err
	}
	if err := writeManifest(db.dir, m, db.cpHook("checkpoint:manifest")); err != nil {
		if newSeg != nil {
			newSeg.f.Close()
		}
		return err
	}
	old := db.man
	db.man = m
	// The manifest committed: attach the sealed blocks and drop the sealed
	// prefixes from memory. Offsets and CRCs are recomputed exactly as
	// writeBlockFileTo laid them out (same entry order, data starts at
	// blockHeaderLen), so no re-read of the file is needed. Each series
	// swaps under its shard lock; a reader between two swaps sees some
	// series already trimmed and others not, which is fine — the cold
	// blocks and the untrimmed hot slice are never both visible for one
	// series.
	if newSeg != nil {
		db.coldSegs = append(db.coldSegs, newSeg)
		off := uint64(blockHeaderLen)
		si := 0
		for i := range recs {
			if sealCounts[i] == 0 {
				continue
			}
			ent := &sealEntries[si]
			si++
			metas := make([]blockMeta, len(ent.blocks))
			var bytes int64
			for j, b := range ent.blocks {
				metas[j] = blockMeta{
					seg:    newSeg,
					off:    off,
					length: uint32(len(b.data)),
					count:  b.count,
					crc:    crc32.ChecksumIEEE(b.data),
					minAt:  time.Unix(0, b.minAt).UTC(),
					maxAt:  time.Unix(0, b.maxAt).UTC(),
				}
				off += uint64(len(b.data))
				bytes += int64(len(b.data))
			}
			sh := db.shardFor(ent.key)
			sh.mu.Lock()
			s := sh.series[ent.key]
			if s.cold == nil {
				s.cold = &coldSeries{}
			}
			for j := range metas {
				metas[j].start = s.cold.n
				s.cold.blocks = append(s.cold.blocks, metas[j])
				s.cold.n += int(metas[j].count)
			}
			s.cold.lastAt = metas[len(metas)-1].maxAt
			// Copy the tail to a fresh slice so the sealed prefix's backing
			// array is released to the GC — keeping the original array alive
			// would defeat the memory bound sealing exists for.
			s.points = append([]Point(nil), s.points[sealCounts[i]:]...)
			sh.mu.Unlock()
			db.coldPts.Add(int64(sealCounts[i]))
			db.hotPts.Add(int64(-sealCounts[i]))
			db.sealedBlks.Add(int64(len(metas)))
			db.coldBytes.Add(bytes)
		}
	}
	// The commit succeeded: the captured bytes no longer count toward the
	// size-based checkpoint trigger. Appends that raced past the cut keep
	// their contribution (atomic subtract, not a reset).
	var captured uint64
	for i := range db.shards {
		if pres[i] != 0 {
			db.shards[i].cpBytes.Add(^pres[i] + 1)
			captured += pres[i]
		}
	}
	if captured != 0 {
		db.cpBytesTotal.Add(^captured + 1)
	}
	// Compact: unlink every sealed segment the snapshot fully covers.
	// Purely an optimization from here on — replay skips covered records
	// via the manifest offset either way — so a crash mid-loop (some
	// segments deleted, some not) is consistent.
	removed := false
	for i := range db.shards {
		if i == n/2 {
			if err := db.failpoint("checkpoint:delete:mid"); err != nil {
				return err
			}
		}
		sh := &db.shards[i]
		sh.mu.Lock()
		keep := sh.sealed[:0]
		for _, sg := range sh.sealed {
			if sg.end <= offs[i] {
				os.Remove(filepath.Join(db.dir, rotSegName(i, sg.seq)))
				removed = true
			} else {
				keep = append(keep, sg)
			}
		}
		sh.sealed = keep
		db.setSealed(sh, len(keep))
		sh.mu.Unlock()
	}
	if err := db.failpoint("checkpoint:delete:before-sync"); err != nil {
		return err
	}
	if removed {
		if err := syncDir(db.dir); err != nil {
			return err
		}
	}
	if err := db.failpoint("checkpoint:delete:after-sync"); err != nil {
		return err
	}
	if old.Checkpoint != "" && old.Checkpoint != m.Checkpoint {
		os.Remove(filepath.Join(db.dir, old.Checkpoint))
	}
	// Re-arm the seal trigger relative to the hot points that remain: the
	// residual (per-series tails plus partial blocks) can never seal, so an
	// absolute threshold would re-fire forever once the residual alone
	// crossed it. The floor makes the trigger count only growth since this
	// checkpoint.
	db.sealFloor.Store(db.hotPts.Load())

	// With the checkpoint durable, extend the rollup tiers over the newly
	// sealed blocks and, if horizons are configured, enforce retention. Both
	// run under cpMu so cold state is stable; the coverage computed by the
	// build feeds enforcement directly (never a stale snapshot), preserving
	// the "never drop raw a rollup doesn't cover" invariant.
	if db.rollup != nil {
		cov, err := db.buildRollupsLocked()
		if err != nil {
			return err
		}
		if len(db.retain) > 0 {
			if err := db.enforceRetentionLocked(cov); err != nil {
				return err
			}
		}
	}
	return nil
}
