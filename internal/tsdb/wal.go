package tsdb

// Segmented write-ahead log and checkpointing.
//
// # On-disk layout (data directory)
//
//	MANIFEST               committed layout description (JSON, atomically
//	                       replaced via temp file + rename)
//	wal-00000.log ...      one WAL segment per shard; appends to shard i
//	                       go only to wal-<i>.log, under shard i's lock
//	checkpoint-000001.snap the checkpoint snapshot the manifest references
//	                       (snapshot.go codec); at most one is live
//	points.wal             legacy single-stream WAL from the pre-segment
//	                       layout; migrated on first open, then removed
//
// # Segment format
//
//	header: 8-byte magic "SLWALSG1" | u32 shard index | u32 segment count |
//	        u64 layout epoch | u64 base offset
//	then:   a run of WAL records (see appendRecord): u32 crc | u16 keyLen |
//	        key bytes | i64 unixNano | f64 bits
//
// Offsets are logical: they count record bytes since the epoch's stream
// began, never header bytes. The header's base offset says where this
// file's first record sits in that stream; records before it live in the
// checkpoint snapshot. Compaction after a checkpoint rewrites a segment
// to hold only the tail, raising its base — readers never need the
// manifest updated for that, which is what makes compaction crash-safe.
//
// # Commit protocol
//
// The manifest rename is the only commit point. Every multi-file change
// (legacy migration, shard-count change, checkpoint) follows the same
// order: write new data files and fsync them, rename the new MANIFEST
// into place, then clean up. A crash before the rename leaves the old
// layout fully intact; a crash after it leaves stale files that the next
// open recognizes (wrong epoch, unreferenced checkpoint, leftover
// points.wal) and ignores or deletes. The layout epoch in the manifest
// and in every segment header is what makes stale segments detectable:
// a segment whose epoch differs from the manifest's is treated as empty
// and recreated.
//
// # Recovery
//
// Open reads the manifest, bulk-loads the referenced checkpoint snapshot
// (if any), then replays only each segment's records at logical offsets
// >= the manifest's per-shard checkpoint offset — one goroutine per
// segment, each writing only its own shard. Recovery time is therefore
// bounded by the data written since the last checkpoint, not by the
// archive's full history.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
	legacyWALName   = "points.wal"

	segMagic = "SLWALSG1"
	// segHeaderLen = magic | u32 shard index | u32 segment count |
	// u64 epoch | u64 base offset.
	segHeaderLen = len(segMagic) + 4 + 4 + 8 + 8
)

// errCheckpointFault is returned by the checkpoint fail-point hook; tests
// use it to simulate a crash at a precise step of the protocol.
var errCheckpointFault = errors.New("tsdb: checkpoint fault injected")

// snapshotByKey sorts captured series records and their precomputed
// canonical keys in tandem.
type snapshotByKey struct {
	recs  []snapshotSeries
	canon []string
}

func (s *snapshotByKey) Len() int           { return len(s.recs) }
func (s *snapshotByKey) Less(i, j int) bool { return s.canon[i] < s.canon[j] }
func (s *snapshotByKey) Swap(i, j int) {
	s.recs[i], s.recs[j] = s.recs[j], s.recs[i]
	s.canon[i], s.canon[j] = s.canon[j], s.canon[i]
}

// sortSnapshotSeries sorts records by canonical key. Keys are rendered
// once up front: String() inside the comparator would allocate on every
// one of the n log n comparisons.
func sortSnapshotSeries(recs []snapshotSeries) {
	canon := make([]string, len(recs))
	for i := range recs {
		canon[i] = recs[i].key.String()
	}
	sort.Sort(&snapshotByKey{recs: recs, canon: canon})
}

// manifest is the committed description of the durable layout.
type manifest struct {
	Version  int    `json:"version"`
	Epoch    uint64 `json:"epoch"`
	Segments int    `json:"segments"`
	// Checkpoint is the live checkpoint snapshot's file name; empty when
	// no checkpoint has been taken in this layout.
	Checkpoint    string `json:"checkpoint,omitempty"`
	CheckpointSeq uint64 `json:"checkpointSeq"`
	// Offsets[i] is the logical offset in segment i's stream from which
	// replay must resume; everything below it is covered by Checkpoint.
	Offsets []uint64 `json:"offsets"`
}

func segName(i int) string { return fmt.Sprintf("wal-%05d.log", i) }

// scanSegIndex parses a segment file name's shard index.
func scanSegIndex(name string, i *int) bool {
	n, err := fmt.Sscanf(name, "wal-%05d.log", i)
	return err == nil && n == 1
}
func checkpointName(s uint64) string { return fmt.Sprintf("checkpoint-%06d.snap", s) }

// syncDir fsyncs a directory so renames and creations inside it are
// durable before the caller proceeds.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func readManifest(dir string) (manifest, bool, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("tsdb: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return manifest{}, false, fmt.Errorf("tsdb: parsing manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return manifest{}, false, fmt.Errorf("tsdb: unsupported manifest version %d", m.Version)
	}
	if m.Segments <= 0 || len(m.Offsets) != m.Segments {
		return manifest{}, false, fmt.Errorf("tsdb: malformed manifest: %d segments, %d offsets", m.Segments, len(m.Offsets))
	}
	return m, true, nil
}

// atomicWriteFile atomically replaces path: temp file, fsync, rename,
// directory fsync. The write callback produces the contents. Every
// durable file this package replaces (manifest, checkpoint, standalone
// snapshot) goes through here so the crash-safety sequence is
// single-sourced.
func atomicWriteFile(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("tsdb: create %s: %w", filepath.Base(tmp), err)
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tsdb: write %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tsdb: rename %s: %w", filepath.Base(path), err)
	}
	return syncDir(filepath.Dir(path))
}

// writeManifest atomically replaces the manifest.
func writeManifest(dir string, m manifest) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("tsdb: encoding manifest: %w", err)
	}
	return atomicWriteFile(filepath.Join(dir, manifestName), func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	})
}

// segHeader is a decoded segment file header.
type segHeader struct {
	index int
	count int
	epoch uint64
	base  uint64
}

func encodeSegHeader(h segHeader) []byte {
	buf := make([]byte, segHeaderLen)
	copy(buf, segMagic)
	binary.LittleEndian.PutUint32(buf[8:], uint32(h.index))
	binary.LittleEndian.PutUint32(buf[12:], uint32(h.count))
	binary.LittleEndian.PutUint64(buf[16:], h.epoch)
	binary.LittleEndian.PutUint64(buf[24:], h.base)
	return buf
}

func decodeSegHeader(buf []byte) (segHeader, bool) {
	if len(buf) < segHeaderLen || string(buf[:len(segMagic)]) != segMagic {
		return segHeader{}, false
	}
	return segHeader{
		index: int(binary.LittleEndian.Uint32(buf[8:])),
		count: int(binary.LittleEndian.Uint32(buf[12:])),
		epoch: binary.LittleEndian.Uint64(buf[16:]),
		base:  binary.LittleEndian.Uint64(buf[24:]),
	}, true
}

// openDurable brings up the durable layout for db.dir: it migrates legacy
// single-WAL directories, re-shards when the segment count no longer
// matches, and otherwise loads the checkpoint and replays per-shard tails.
// It runs single-threaded during Open, before the store is shared.
func (db *DB) openDurable() error {
	man, ok, err := readManifest(db.dir)
	if err != nil {
		return err
	}
	legacy := filepath.Join(db.dir, legacyWALName)
	switch {
	case !ok:
		// Fresh directory, or a legacy layout, or a migration that
		// crashed before its manifest commit (stale segment/checkpoint
		// files may exist — commitLayout overwrites them, which is what
		// makes the migration idempotent).
		if err := db.replayLegacy(legacy); err != nil {
			return err
		}
		if err := db.commitLayout(1); err != nil {
			return err
		}
		if err := os.Remove(legacy); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("tsdb: removing migrated wal: %w", err)
		}
	case man.Segments != len(db.shards):
		// Shard count changed: load the full state under the old layout,
		// then commit a fresh layout (new epoch) at the new count. As in
		// the default branch, a leftover pre-migration WAL is fully
		// represented in the committed layout and must not linger.
		db.man = man
		if _, err := db.loadLayout(man, false); err != nil {
			return err
		}
		if err := db.commitLayout(man.Epoch + 1); err != nil {
			return err
		}
		if err := os.Remove(legacy); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("tsdb: removing migrated wal: %w", err)
		}
	default:
		db.man = man
		tails, err := db.loadLayout(man, true)
		if err != nil {
			return err
		}
		if err := db.openSegments(tails); err != nil {
			return err
		}
		// A crash after a migration's manifest commit can leave the old
		// single-stream WAL behind; it is fully represented in the new
		// layout, so drop it.
		if err := os.Remove(legacy); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("tsdb: removing migrated wal: %w", err)
		}
	}
	db.removeStaleFiles()
	return nil
}

// replayLegacy loads the single-stream WAL of the pre-segment layout,
// tolerating a truncated trailing record (crash). Per the migration
// protocol the file is fsync'd and closed before any segment file is
// written: its contents must be stable on disk while it remains the only
// durable copy of the data.
func (db *DB) replayLegacy(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("tsdb: opening wal for replay: %w", err)
	}
	_, replayErr := replayRecords(bufio.NewReaderSize(f, 1<<16), func(k SeriesKey, at time.Time, v float64) {
		sh := db.shardFor(k)
		db.applyReplayed(sh, k, at, v)
	})
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if replayErr != nil {
		return replayErr
	}
	if err != nil {
		return fmt.Errorf("tsdb: legacy wal sync: %w", err)
	}
	return nil
}

// applyReplayed stores one replayed point directly. Open owns the store
// exclusively, so no locks are taken; parallel segment replay is safe
// because each goroutine only touches its own shard.
func (db *DB) applyReplayed(sh *shard, k SeriesKey, at time.Time, v float64) {
	db.mergeSeries(sh, k, Point{At: at, Value: v})
}

// mergeSeries bulk-appends points to a series, maintaining the shard's
// point counter and generation and the store's key generation. The caller
// must own sh — either exclusively (recovery during Open) or via its
// write lock.
func (db *DB) mergeSeries(sh *shard, k SeriesKey, pts ...Point) {
	s := sh.series[k]
	if s == nil {
		s = &series{}
		sh.series[k] = s
		db.keyGen.Add(1)
	}
	s.points = append(s.points, pts...)
	sh.points += len(pts)
	sh.gen.Add(uint64(len(pts)))
}

// replayRecords reads WAL records from r until EOF, a truncated record, or
// a CRC mismatch (all three end replay silently: they are the signature of
// a crash mid-write). Malformed keys are skipped. It returns how many
// bytes of complete, CRC-valid records were consumed, so callers can
// truncate a crashed tail before appending after it.
func replayRecords(r io.Reader, apply func(SeriesKey, time.Time, float64)) (int64, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	valid := int64(0)
	var head [6]byte
	for {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return valid, nil // clean end or truncated header: stop replay
			}
			return valid, fmt.Errorf("tsdb: replay: %w", err)
		}
		crc := binary.LittleEndian.Uint32(head[:4])
		keyLen := int(binary.LittleEndian.Uint16(head[4:6]))
		body := make([]byte, keyLen+16)
		if _, err := io.ReadFull(br, body); err != nil {
			return valid, nil // truncated record: ignore tail
		}
		full := make([]byte, 0, 2+len(body))
		full = append(full, head[4:6]...)
		full = append(full, body...)
		if crc32.ChecksumIEEE(full) != crc {
			return valid, nil // corrupt tail: stop replay
		}
		valid += int64(len(head) + len(body))
		at := time.Unix(0, int64(binary.LittleEndian.Uint64(body[keyLen:keyLen+8]))).UTC()
		v := math.Float64frombits(binary.LittleEndian.Uint64(body[keyLen+8:]))
		k, err := ParseSeriesKey(string(body[:keyLen]))
		if err != nil {
			continue
		}
		apply(k, at, v)
	}
}

// loadLayout restores the store state a committed manifest describes:
// bulk-load the checkpoint snapshot, then replay each segment's tail.
// With parallel set (segment count == shard count), segments replay on
// one goroutine each, writing only their own shard; otherwise (re-shard
// path) replay is sequential and records re-hash onto the new shards.
// It returns each segment's logical valid end — the offset after its
// last complete, CRC-valid record — which openSegments uses to truncate
// crashed tails before appending after them.
func (db *DB) loadLayout(man manifest, parallel bool) ([]uint64, error) {
	if man.Checkpoint != "" {
		f, err := os.Open(filepath.Join(db.dir, man.Checkpoint))
		if err != nil {
			// The checkpoint is the only copy of the truncated history:
			// refusing to open without it beats silently serving a
			// partial archive.
			return nil, fmt.Errorf("tsdb: opening checkpoint: %w", err)
		}
		recs, err := decodeSnapshot(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("tsdb: loading checkpoint: %w", err)
		}
		for _, rec := range recs {
			db.mergeSeries(db.shardFor(rec.key), rec.key, rec.points...)
		}
	}
	tails := make([]uint64, man.Segments)
	if !parallel {
		for i := 0; i < man.Segments; i++ {
			end, err := db.replaySegment(i, man, false)
			if err != nil {
				return nil, err
			}
			tails[i] = end
		}
		return tails, nil
	}
	errs := make([]error, man.Segments)
	var wg sync.WaitGroup
	for i := 0; i < man.Segments; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tails[i], errs[i] = db.replaySegment(i, man, true)
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return tails, nil
}

// replaySegment replays segment i's records at logical offsets >=
// man.Offsets[i]. Missing files, stale epochs, and malformed headers make
// the segment count as empty — those states only arise from crashes after
// a manifest commit, where the manifest's checkpoint already covers the
// data. When strict is set (parallel replay), records that do not hash to
// shard i are dropped rather than applied, so goroutines never cross
// shards. The returned offset is the logical end of the last complete,
// CRC-valid record (never below the checkpoint offset): the position at
// which new appends may safely resume.
func (db *DB) replaySegment(i int, man manifest, strict bool) (uint64, error) {
	resume := man.Offsets[i]
	f, err := os.Open(filepath.Join(db.dir, segName(i)))
	if errors.Is(err, os.ErrNotExist) {
		return resume, nil
	}
	if err != nil {
		return 0, fmt.Errorf("tsdb: opening segment %d: %w", i, err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	head := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(br, head); err != nil {
		return resume, nil // truncated header: empty segment
	}
	h, ok := decodeSegHeader(head)
	if !ok || h.epoch != man.Epoch || h.index != i || h.count != man.Segments {
		return resume, nil // stale or foreign segment: covered by the checkpoint
	}
	// Records below the checkpoint offset are in the snapshot; skip them.
	// h.base > offset cannot happen under the protocol (compaction runs
	// only after the manifest referencing the new offset is committed);
	// replaying from the file start is the safe answer if it ever does.
	start := h.base
	if skip := int64(man.Offsets[i]) - int64(h.base); skip > 0 {
		if _, err := io.CopyN(io.Discard, br, skip); err != nil {
			return resume, nil // segment shorter than the checkpoint cut: all covered
		}
		start = man.Offsets[i]
	}
	valid, err := replayRecords(br, func(k SeriesKey, at time.Time, v float64) {
		sh := db.shardFor(k)
		if strict && sh != &db.shards[i] {
			return
		}
		db.applyReplayed(sh, k, at, v)
	})
	if err != nil {
		return 0, err
	}
	return start + uint64(valid), nil
}

// openSegments opens every shard's segment for appending, recreating any
// that is missing, malformed, or from a stale epoch (with base = the
// manifest's checkpoint offset, since that is where the live stream
// resumes). With a non-nil tails vector (from loadLayout), each file is
// truncated to its last complete, CRC-valid record first: appending after
// a crashed half-written tail would strand the new records behind bytes
// replay refuses to cross. It must run after loadLayout and with db.man
// current.
func (db *DB) openSegments(tails []uint64) error {
	created := false
	for i := range db.shards {
		sh := &db.shards[i]
		path := filepath.Join(db.dir, segName(i))
		want := segHeader{index: i, count: len(db.shards), epoch: db.man.Epoch, base: db.man.Offsets[i]}
		f, h, fresh, err := openSegmentFile(path, want)
		if err != nil {
			return err
		}
		created = created || fresh
		end := h.base
		if st, err := f.Stat(); err != nil {
			f.Close()
			return fmt.Errorf("tsdb: segment %d stat: %w", i, err)
		} else if st.Size() > int64(segHeaderLen) {
			end = h.base + uint64(st.Size()-int64(segHeaderLen))
		}
		if !fresh && tails != nil && i < len(tails) {
			cut := db.man.Offsets[i]
			switch {
			case end < cut:
				// The file ends below the checkpoint cut (external
				// truncation); its bytes are all covered by the
				// checkpoint. Rebase an empty file onto the cut so the
				// logical-to-physical mapping holds for new appends.
				f.Close()
				if f, h, err = createSegmentFile(path, segHeader{index: i, count: len(db.shards), epoch: db.man.Epoch, base: cut}); err != nil {
					return err
				}
				created, end = true, cut
			case tails[i] < end:
				// Crashed tail: drop the bytes after the last valid
				// record before appending.
				if err := f.Truncate(int64(segHeaderLen) + int64(tails[i]-h.base)); err != nil {
					f.Close()
					return fmt.Errorf("tsdb: segment %d truncate: %w", i, err)
				}
				if err := f.Sync(); err != nil {
					f.Close()
					return fmt.Errorf("tsdb: segment %d sync: %w", i, err)
				}
				if _, err := f.Seek(0, io.SeekEnd); err != nil {
					f.Close()
					return fmt.Errorf("tsdb: segment %d seek: %w", i, err)
				}
				end = tails[i]
			}
		}
		sh.walF = f
		sh.wal = bufio.NewWriterSize(f, 1<<16)
		sh.walBase = h.base
		sh.walOff = end
	}
	if created {
		return syncDir(db.dir)
	}
	return nil
}

// openSegmentFile opens path for appending if its header matches want's
// epoch/index/count, and otherwise recreates it with the want header.
// fresh reports whether the file was (re)created.
func openSegmentFile(path string, want segHeader) (*os.File, segHeader, bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err == nil {
		head := make([]byte, segHeaderLen)
		if _, rerr := io.ReadFull(f, head); rerr == nil {
			if h, ok := decodeSegHeader(head); ok && h.epoch == want.epoch && h.index == want.index && h.count == want.count {
				if _, serr := f.Seek(0, io.SeekEnd); serr != nil {
					f.Close()
					return nil, segHeader{}, false, fmt.Errorf("tsdb: segment seek: %w", serr)
				}
				return f, h, false, nil
			}
		}
		f.Close()
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, segHeader{}, false, fmt.Errorf("tsdb: opening segment: %w", err)
	}
	f, h, err := createSegmentFile(path, want)
	if err != nil {
		return nil, segHeader{}, false, err
	}
	return f, h, true, nil
}

// createSegmentFile (re)creates an empty segment file with the given
// header, replacing whatever was at path.
func createSegmentFile(path string, h segHeader) (*os.File, segHeader, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, segHeader{}, fmt.Errorf("tsdb: creating segment: %w", err)
	}
	if _, err := f.Write(encodeSegHeader(h)); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return nil, segHeader{}, fmt.Errorf("tsdb: segment header write: %w", err)
	}
	return f, h, nil
}

// commitLayout persists the store's current in-memory state as a brand-new
// segmented layout at the given epoch: a checkpoint snapshot holding every
// point (when the store is non-empty), then the manifest (the commit
// point), then fresh empty segments. Used by the legacy migration, the
// re-shard path, and fresh-directory initialization. A crash before the
// manifest rename leaves the previous layout (or the legacy WAL) fully
// authoritative; a crash after it leaves at worst stale segment files
// from the old epoch, which openSegments recreates.
func (db *DB) commitLayout(epoch uint64) error {
	n := len(db.shards)
	m := manifest{
		Version:       manifestVersion,
		Epoch:         epoch,
		Segments:      n,
		CheckpointSeq: db.man.CheckpointSeq,
		Offsets:       make([]uint64, n),
	}
	if db.PointCount() > 0 {
		m.CheckpointSeq++
		m.Checkpoint = checkpointName(m.CheckpointSeq)
		if err := db.writeCheckpointFile(m.Checkpoint, db.capture()); err != nil {
			return err
		}
	}
	if err := writeManifest(db.dir, m); err != nil {
		return err
	}
	old := db.man
	db.man = m
	if err := db.openSegments(nil); err != nil {
		return err
	}
	if old.Checkpoint != "" && old.Checkpoint != m.Checkpoint {
		os.Remove(filepath.Join(db.dir, old.Checkpoint))
	}
	return nil
}

// writeCheckpointFile writes recs as a snapshot to name inside the data
// directory (temp file, fsync, rename, directory fsync).
func (db *DB) writeCheckpointFile(name string, recs []snapshotSeries) error {
	return atomicWriteFile(filepath.Join(db.dir, name), func(w io.Writer) error {
		return encodeSnapshot(w, recs)
	})
}

// removeStaleFiles deletes segment files beyond the current count and
// checkpoint files the manifest no longer references — leftovers of
// crashed checkpoints, migrations, and re-shards. Best-effort.
func (db *DB) removeStaleFiles() {
	ents, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		var i int
		switch {
		case name == db.man.Checkpoint || name == manifestName || name == legacyWALName:
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(db.dir, name))
		case scanSegIndex(name, &i) && name == segName(i):
			if i >= len(db.shards) {
				os.Remove(filepath.Join(db.dir, name))
			}
		case strings.HasPrefix(name, "checkpoint-"):
			os.Remove(filepath.Join(db.dir, name))
		}
	}
}

// Checkpoint persists the store's current state as a snapshot inside the
// data directory and truncates the WAL segments it covers, so the next
// open bulk-loads the snapshot and replays only the records appended
// afterwards — bounded recovery time regardless of archive age.
//
// The snapshot is cut per shard: each shard's contribution is captured
// together with its segment's logical offset under that shard's lock, so
// the pair is exact even while appends to other shards continue. Durable
// order is: flush + fsync segments (so everything at or below the cut is
// on disk), write the snapshot file, commit the manifest referencing it,
// then compact each segment down to its tail. A crash between any two
// steps recovers to a state containing every acknowledged point.
//
// Checkpoint returns an error on memory-only stores.
func (db *DB) Checkpoint() error {
	if db.dir == "" {
		return errors.New("tsdb: memory-only store cannot checkpoint")
	}
	return db.checkpoint(-1)
}

// checkpoint is Checkpoint with a fail-point: when failAt is >= 0 the
// protocol aborts with errCheckpointFault just before durable step failAt
// (0 = before segment sync, 1 = before snapshot write, 2 = before manifest
// commit, 3 = before compaction, 4 = midway through compaction). Tests use
// the fail points to prove crash-consistency at every boundary.
func (db *DB) checkpoint(failAt int) error {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.closed.Load() {
		return errors.New("tsdb: store is closed")
	}
	n := len(db.shards)
	// Capture a per-shard cut: the segment's logical offset plus every
	// series' point slice, atomically per shard. Slices are append-only,
	// so everything below the captured length is immutable afterwards.
	offs := make([]uint64, n)
	files := make([]*os.File, n)
	var recs []snapshotSeries
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		if sh.wal == nil {
			sh.mu.Unlock()
			return errors.New("tsdb: store is closed")
		}
		if err := sh.wal.Flush(); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("tsdb: checkpoint flush: %w", err)
		}
		offs[i] = sh.walOff
		files[i] = sh.walF
		for k, s := range sh.series {
			recs = append(recs, snapshotSeries{key: k, points: s.points})
		}
		sh.mu.Unlock()
	}
	sortSnapshotSeries(recs)
	if failAt == 0 {
		return errCheckpointFault
	}
	// Everything at or below the cut must be durable before a manifest
	// can claim the snapshot supersedes it.
	for i := range files {
		if err := files[i].Sync(); err != nil {
			return fmt.Errorf("tsdb: checkpoint segment sync: %w", err)
		}
	}
	if failAt == 1 {
		return errCheckpointFault
	}
	m := db.man
	m.CheckpointSeq++
	m.Checkpoint = checkpointName(m.CheckpointSeq)
	m.Offsets = offs
	if err := db.writeCheckpointFile(m.Checkpoint, recs); err != nil {
		return err
	}
	if failAt == 2 {
		return errCheckpointFault
	}
	if err := writeManifest(db.dir, m); err != nil {
		return err
	}
	old := db.man
	db.man = m
	if failAt == 3 {
		return errCheckpointFault
	}
	// Compact: drop each segment's covered prefix. Purely an optimization
	// from here on — replay skips the prefix via the manifest offset
	// either way — so a crash mid-loop (some segments rebased, some not)
	// is consistent: each file's header says where it starts.
	for i := range db.shards {
		if failAt == 4 && i >= n/2 {
			return errCheckpointFault
		}
		if err := db.compactSegment(i, offs[i]); err != nil {
			return err
		}
	}
	if err := syncDir(db.dir); err != nil {
		return err
	}
	if old.Checkpoint != "" && old.Checkpoint != m.Checkpoint {
		os.Remove(filepath.Join(db.dir, old.Checkpoint))
	}
	return nil
}

// compactSegment rewrites shard i's segment to contain only the records
// at logical offsets >= upTo, with base = upTo, and swaps the shard's
// writer onto the new file. The rename is atomic: a crash leaves either
// the old file (larger, same records) or the new one.
func (db *DB) compactSegment(i int, upTo uint64) error {
	sh := &db.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.wal == nil {
		return errors.New("tsdb: store is closed")
	}
	if upTo <= sh.walBase {
		return nil // nothing below the cut is in this file
	}
	if err := sh.wal.Flush(); err != nil {
		return fmt.Errorf("tsdb: compact flush: %w", err)
	}
	path := filepath.Join(db.dir, segName(i))
	src, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("tsdb: compact open: %w", err)
	}
	defer src.Close()
	if _, err := src.Seek(int64(segHeaderLen)+int64(upTo-sh.walBase), io.SeekStart); err != nil {
		return fmt.Errorf("tsdb: compact seek: %w", err)
	}
	tmp := path + ".tmp"
	dst, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("tsdb: compact create: %w", err)
	}
	h := segHeader{index: i, count: len(db.shards), epoch: db.man.Epoch, base: upTo}
	_, err = dst.Write(encodeSegHeader(h))
	if err == nil {
		_, err = io.Copy(dst, src)
	}
	if err == nil {
		err = dst.Sync()
	}
	if cerr := dst.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tsdb: compact write: %w", err)
	}
	if err := sh.walF.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tsdb: compact close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		// The old file is gone from our handle but still on disk; reopen
		// it so the shard keeps appending to a consistent segment.
		os.Remove(tmp)
		if f, _, _, rerr := openSegmentFile(path, segHeader{index: i, count: len(db.shards), epoch: db.man.Epoch, base: sh.walBase}); rerr == nil {
			sh.walF = f
			sh.wal = bufio.NewWriterSize(f, 1<<16)
		}
		return fmt.Errorf("tsdb: compact rename: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: compact reopen: %w", err)
	}
	sh.walF = f
	sh.wal = bufio.NewWriterSize(f, 1<<16)
	sh.walBase = upTo
	return nil
}
