package tsdb

// Tests for the segmented WAL layout: legacy migration (including crash
// idempotency), shard-count changes, checkpointing (including the
// crash-point matrix across every durable step of the protocol), and the
// differential guarantee that segmented recovery equals legacy
// single-stream recovery for the same append sequence.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// legacyEntries is a deterministic multi-series append sequence used by
// the migration and differential tests.
func legacyEntries(n int) []Entry {
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		k := SeriesKey{
			Dataset: []string{DatasetPlacementScore, DatasetPrice, DatasetInterruptFree}[i%3],
			Type:    fmt.Sprintf("t%d.xlarge", i%7),
			Region:  fmt.Sprintf("r%d", i%4),
			AZ:      fmt.Sprintf("r%da", i%4),
		}
		out = append(out, Entry{Key: k, At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i % 9)})
	}
	return out
}

// writeLegacyWAL writes entries as a pre-segment single-stream points.wal.
func writeLegacyWAL(t *testing.T, dir string, entries []Entry) {
	t.Helper()
	var buf []byte
	for _, e := range entries {
		buf = appendRecord(buf, e.Key.String(), e.At, e.Value)
	}
	if err := os.WriteFile(filepath.Join(dir, legacyWALName), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// contents flattens a store into key -> points for equality checks.
func contents(db *DB) map[SeriesKey][]Point {
	out := make(map[SeriesKey][]Point)
	for _, k := range db.Keys(KeyFilter{}) {
		out[k] = noerr(db.Query(k, time.Time{}, t0.Add(1000*time.Hour)))
	}
	return out
}

func assertSameContents(t *testing.T, got, want map[SeriesKey][]Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("series count %d, want %d", len(got), len(want))
	}
	for k, wpts := range want {
		gpts := got[k]
		if len(gpts) != len(wpts) {
			t.Fatalf("series %v: %d points, want %d", k, len(gpts), len(wpts))
		}
		for i := range wpts {
			if !gpts[i].At.Equal(wpts[i].At) || gpts[i].Value != wpts[i].Value {
				t.Fatalf("series %v point %d: %v, want %v", k, i, gpts[i], wpts[i])
			}
		}
	}
}

func TestLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	entries := legacyEntries(300)
	writeLegacyWAL(t, dir, entries)

	db, err := OpenSharded(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if db.PointCount() != len(entries) {
		t.Fatalf("migrated %d points, want %d", db.PointCount(), len(entries))
	}
	want := contents(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The legacy file is gone, the manifest and segments are in place.
	if _, err := os.Stat(filepath.Join(dir, legacyWALName)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("legacy WAL still present after migration (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err != nil {
		t.Errorf("no manifest after migration: %v", err)
	}
	for i := 0; i < 8; i++ {
		if _, err := os.Stat(filepath.Join(dir, rotSegName(i, 1))); err != nil {
			t.Errorf("segment %d missing after migration: %v", i, err)
		}
	}

	// Reopening the migrated layout yields the same archive, and appends
	// continue to work and persist.
	re, err := OpenSharded(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	assertSameContents(t, contents(re), want)
	extra := Entry{Key: entries[0].Key, At: t0.Add(1000 * time.Minute), Value: 42}
	if err := re.Append(extra.Key, extra.At, extra.Value); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenSharded(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.PointCount() != len(entries)+1 {
		t.Fatalf("after reopen: %d points, want %d", re2.PointCount(), len(entries)+1)
	}
}

// TestLegacyMigrationCrashPoints verifies the migration commit protocol:
// any crash before the manifest rename re-runs the migration from the
// untouched legacy WAL; a crash after it must not re-apply the legacy
// file. Both replays must produce exactly the legacy contents.
func TestLegacyMigrationCrashPoints(t *testing.T) {
	entries := legacyEntries(200)

	t.Run("before-manifest", func(t *testing.T) {
		// Crash state: partially written segment and checkpoint files
		// exist, but no manifest — the legacy WAL is still authoritative.
		dir := t.TempDir()
		writeLegacyWAL(t, dir, entries)
		if err := os.WriteFile(filepath.Join(dir, rotSegName(0, 1)), []byte("partial garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, checkpointName(1)), []byte("also garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := OpenSharded(dir, 4)
		if err != nil {
			t.Fatal(err)
		}
		if db.PointCount() != len(entries) {
			t.Fatalf("recovered %d points, want %d", db.PointCount(), len(entries))
		}
		want := contents(db)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		// And the redo must itself be idempotent.
		re, err := OpenSharded(dir, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		assertSameContents(t, contents(re), want)
	})

	t.Run("after-manifest", func(t *testing.T) {
		// Crash state: migration committed, but the legacy WAL was not
		// yet removed. Reopening must not double-apply it.
		dir := t.TempDir()
		writeLegacyWAL(t, dir, entries)
		db, err := OpenSharded(dir, 4)
		if err != nil {
			t.Fatal(err)
		}
		want := contents(db)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		// Resurrect the legacy file, with different trailing content so a
		// wrongful replay would be visible as extra points.
		writeLegacyWAL(t, dir, legacyEntries(250))
		re, err := OpenSharded(dir, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if re.PointCount() != len(entries) {
			t.Fatalf("reopen after leftover legacy WAL: %d points, want %d", re.PointCount(), len(entries))
		}
		assertSameContents(t, contents(re), want)
		if _, err := os.Stat(filepath.Join(dir, legacyWALName)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("stale legacy WAL not cleaned up (err=%v)", err)
		}
	})
}

// TestShardCountChange reopens a directory with different shard counts;
// the layout re-commits at the new count with no data loss, in both
// directions.
func TestShardCountChange(t *testing.T) {
	dir := t.TempDir()
	entries := legacyEntries(400)
	db, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := db.AppendBatch(entries); err != nil || n != len(entries) {
		t.Fatalf("stored %d, err %v", n, err)
	}
	want := contents(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for round, shards := range []int{16, 2, 4} {
		re, err := OpenSharded(dir, shards)
		if err != nil {
			t.Fatalf("reopen with %d shards: %v", shards, err)
		}
		assertSameContents(t, contents(re), want)
		// Appends under the new count must persist across another reopen.
		extra := Entry{Key: entries[0].Key, At: t0.Add(time.Duration(900+round) * time.Hour), Value: float64(shards)}
		if err := re.Append(extra.Key, extra.At, extra.Value); err != nil {
			t.Fatal(err)
		}
		want[extra.Key] = append(want[extra.Key], Point{At: extra.At, Value: extra.Value})
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
	final, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	assertSameContents(t, contents(final), want)
}

// TestCheckpointBoundedRecovery checks that a checkpoint drops the sealed
// segments it covers and that recovery (snapshot + chain tails) reproduces
// the full archive.
func TestCheckpointBoundedRecovery(t *testing.T) {
	dir := t.TempDir()
	// A tiny rotation threshold so the workload seals several segments
	// per shard before the checkpoint.
	db, err := OpenWithOptions(dir, Options{Shards: 4, RotateBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	pre := legacyEntries(300)
	if n, err := db.AppendBatch(pre); err != nil || n != len(pre) {
		t.Fatalf("stored %d, err %v", n, err)
	}
	sealedBefore := 0
	for i := range db.shards {
		sealedBefore += len(db.shards[i].sealed)
	}
	if sealedBefore == 0 {
		t.Fatal("workload sealed no segments; rotation threshold too large for the test")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Compaction must have unlinked every covered sealed segment: only
	// each shard's active segment file remains, and the total tail left
	// on disk is bounded by the rotation threshold per shard.
	for i := 0; i < 4; i++ {
		sh := &db.shards[i]
		if len(sh.sealed) != 0 {
			t.Errorf("shard %d retains %d sealed segments after checkpoint", i, len(sh.sealed))
		}
		segs, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("wal-%05d-*.log", i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != 1 {
			t.Errorf("shard %d has %d segment files after checkpoint, want 1 (active only)", i, len(segs))
		}
		for _, p := range segs {
			st, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() > int64(rotSegHeaderLen)+512+256 {
				t.Errorf("segment %s is %d bytes after checkpoint; tail should be bounded by the rotation threshold", filepath.Base(p), st.Size())
			}
		}
	}
	// Tail appends after the checkpoint.
	k := pre[0].Key
	for i := 0; i < 50; i++ {
		if err := db.Append(k, t0.Add(time.Duration(100000+i)*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := contents(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertSameContents(t, contents(re), want)
	// A second checkpoint over the tail must also work and persist.
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// The checkpoint/rotation crash matrix lives in rotation_test.go
// (TestRotationCrashMatrix): every protocol boundary × crash before/after
// fsync, verified against the differential reference store.

// TestDifferentialSegmentedVsLegacyRecovery feeds the same append
// sequence through (a) a legacy single-stream WAL recovered via
// migration and (b) the segmented WAL recovered via replay, and demands
// bit-identical archives.
func TestDifferentialSegmentedVsLegacyRecovery(t *testing.T) {
	entries := legacyEntries(500)

	legacyDir := t.TempDir()
	writeLegacyWAL(t, legacyDir, entries)
	legacyDB, err := OpenSharded(legacyDir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer legacyDB.Close()

	segDir := t.TempDir()
	segDB, err := OpenSharded(segDir, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := segDB.Append(e.Key, e.At, e.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := segDB.Close(); err != nil {
		t.Fatal(err)
	}
	segRe, err := OpenSharded(segDir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer segRe.Close()

	assertSameContents(t, contents(segRe), contents(legacyDB))
	if segRe.PointCount() != len(entries) || legacyDB.PointCount() != len(entries) {
		t.Fatalf("point counts %d / %d, want %d", segRe.PointCount(), legacyDB.PointCount(), len(entries))
	}
}

// TestSegmentCrashedTailThenAppend corrupts a segment's tail, reopens
// (dropping the torn record), appends new points, and verifies the new
// points survive the next recovery — i.e. the crashed tail was truncated
// before appending, not stranded in front of the new records.
func TestSegmentCrashedTailThenAppend(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := key("us-east-1a")
	for i := 0; i < 20; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	si := db.ShardIndexOf(k)
	path := filepath.Join(dir, rotSegName(si, db.shards[si].walSeq))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.PointCount(); got != 19 {
		t.Fatalf("after torn tail: %d points, want 19", got)
	}
	for i := 0; i < 5; i++ {
		if err := re.Append(k, t0.Add(time.Duration(100+i)*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := re2.PointCount(); got != 24 {
		t.Fatalf("appends after torn tail lost: %d points, want 24", got)
	}
}

// TestCheckpointConcurrentWithAppends checkpoints repeatedly while
// writers keep appending (run under -race in CI), then verifies recovery
// holds every acknowledged point.
func TestCheckpointConcurrentWithAppends(t *testing.T) {
	const (
		writers   = 4
		perWriter = 300
	)
	dir := t.TempDir()
	db, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := SeriesKey{Dataset: "price", Type: fmt.Sprintf("t%d", w), Region: "r", AZ: "a"}
			for i := 0; i < perWriter; i++ {
				if err := db.Append(k, t0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if err := db.Checkpoint(); err != nil {
					t.Errorf("concurrent checkpoint: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	// One quiescent checkpoint, then crash-reopen and verify.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := contents(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.PointCount(); got != writers*perWriter {
		t.Fatalf("recovered %d points, want %d", got, writers*perWriter)
	}
	assertSameContents(t, contents(re), want)
}
