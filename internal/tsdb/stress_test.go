package tsdb

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentStress runs writer goroutines (plain, dedup, and batched
// appends) interleaved with readers exercising Query, Last, ValueAt, Keys
// and the aggregate counters. Run under -race in CI. After the dust
// settles it asserts that no point was lost and every series is strictly
// time-ordered.
func TestConcurrentStress(t *testing.T) {
	const (
		writers        = 8
		readers        = 4
		perWriter      = 400
		seriesPerWrite = 4 // each writer owns this many series
	)
	db, err := OpenSharded("", 8)
	if err != nil {
		t.Fatal(err)
	}

	keyFor := func(w, s int) SeriesKey {
		return SeriesKey{
			Dataset: DatasetPlacementScore,
			Type:    fmt.Sprintf("w%d.s%d", w, s),
			Region:  "us-east-1",
			AZ:      "us-east-1a",
		}
	}

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	// Readers hammer the query paths the whole time.
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keyFor(i%writers, i%seriesPerWrite)
				db.Query(k, t0, t0.Add(time.Duration(perWriter)*time.Second))
				db.Last(k)
				db.ValueAt(k, t0.Add(time.Duration(i%perWriter)*time.Second))
				if i%64 == 0 {
					db.Keys(KeyFilter{Dataset: DatasetPlacementScore})
					db.SeriesCount()
					db.PointCount()
					db.MaxTime()
				}
			}
		}(r)
	}

	// Writers: each owns disjoint series, so per-series ordering is under
	// its sole control; shards are shared across writers.
	var werr sync.Map
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				at := t0.Add(time.Duration(i) * time.Second)
				switch w % 3 {
				case 0: // point-at-a-time appends
					for s := 0; s < seriesPerWrite; s++ {
						if err := db.Append(keyFor(w, s), at, float64(i)); err != nil {
							werr.Store(w, err)
							return
						}
					}
				case 1: // batched appends, one batch per tick
					batch := make([]Entry, 0, seriesPerWrite)
					for s := 0; s < seriesPerWrite; s++ {
						batch = append(batch, Entry{Key: keyFor(w, s), At: at, Value: float64(i)})
					}
					if n, err := db.AppendBatch(batch); err != nil || n != seriesPerWrite {
						werr.Store(w, fmt.Errorf("batch stored %d, err %v", n, err))
						return
					}
				default: // dedup appends with always-changing values
					for s := 0; s < seriesPerWrite; s++ {
						ok, err := db.AppendIfChanged(keyFor(w, s), at, float64(i))
						if err != nil || !ok {
							werr.Store(w, fmt.Errorf("dedup stored=%v, err %v", ok, err))
							return
						}
					}
				}
			}
		}(w)
	}

	// Wait for the writers, then release the readers.
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	werr.Range(func(k, v any) bool {
		t.Errorf("writer %v: %v", k, v)
		return true
	})
	if t.Failed() {
		return
	}

	// No lost points: every writer stored perWriter points in each series.
	wantPoints := writers * seriesPerWrite * perWriter
	if got := db.PointCount(); got != wantPoints {
		t.Errorf("PointCount = %d, want %d", got, wantPoints)
	}
	if got := db.SeriesCount(); got != writers*seriesPerWrite {
		t.Errorf("SeriesCount = %d, want %d", got, writers*seriesPerWrite)
	}
	genSum := uint64(0)
	for _, g := range db.ShardGenerations() {
		genSum += g
	}
	if genSum != uint64(wantPoints) {
		t.Errorf("sum of shard generations = %d, want %d", genSum, wantPoints)
	}
	// Monotonic per-series ordering and full contents.
	for w := 0; w < writers; w++ {
		for s := 0; s < seriesPerWrite; s++ {
			k := keyFor(w, s)
			pts := noerr(db.Query(k, t0, t0.Add(time.Duration(perWriter)*time.Second)))
			if len(pts) != perWriter {
				t.Fatalf("series %v: %d points, want %d", k, len(pts), perWriter)
			}
			for i := 1; i < len(pts); i++ {
				if pts[i].At.Before(pts[i-1].At) {
					t.Fatalf("series %v: points out of order at %d", k, i)
				}
			}
		}
	}
}

// TestConcurrentStressClose verifies that Close during a write storm never
// races the WAL: late appends fail cleanly instead of writing to a closed
// file.
func TestConcurrentStressClose(t *testing.T) {
	db, err := OpenSharded(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := SeriesKey{Dataset: "price", Type: fmt.Sprintf("t%d", w), Region: "r", AZ: "a"}
			for i := 0; ; i++ {
				if err := db.Append(k, t0.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
					return // store closed
				}
			}
		}(w)
	}
	time.Sleep(5 * time.Millisecond)
	if err := db.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	wg.Wait()
	k := SeriesKey{Dataset: "price", Type: "t0", Region: "r", AZ: "a"}
	if err := db.Append(k, t0.Add(time.Hour), 1); err == nil {
		t.Error("append after Close succeeded")
	}
}
