// Package tsdb is an embedded time-series database, the stand-in for the
// Amazon Timestream service in SpotLake's architecture (paper Figure 2).
//
// The archive's datasets are step functions: a placement score, advisor
// bucket, or spot price holds its value until the next recorded change. The
// store therefore keeps one append-only, time-ordered point slice per
// series, deduplicates consecutive equal values on request, and answers
// range queries, step-aware value-at-time lookups, window means, and
// change-interval extractions (the primitives behind Figures 3, 4, 5, 8, 9
// and 10). An optional write-ahead log gives durable persistence with
// crash-safe replay.
package tsdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Dataset names used by the SpotLake collector. The store accepts any
// dataset string; these are the conventional ones.
const (
	DatasetPlacementScore = "sps"
	DatasetInterruptFree  = "if"
	DatasetPrice          = "price"
	DatasetSavings        = "savings"
)

// SeriesKey identifies one time series. AZ is empty for region-granular
// datasets (the advisor data); Region is always set.
type SeriesKey struct {
	Dataset string
	Type    string
	Region  string
	AZ      string
}

// String renders the key in its canonical "dataset|type|region|az" form.
func (k SeriesKey) String() string {
	return k.Dataset + "|" + k.Type + "|" + k.Region + "|" + k.AZ
}

// ParseSeriesKey parses the canonical key form.
func ParseSeriesKey(s string) (SeriesKey, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 4 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return SeriesKey{}, fmt.Errorf("tsdb: malformed series key %q", s)
	}
	return SeriesKey{Dataset: parts[0], Type: parts[1], Region: parts[2], AZ: parts[3]}, nil
}

// Point is one sample of a series.
type Point struct {
	At    time.Time
	Value float64
}

type series struct {
	points []Point
}

// DB is the time-series store. It is safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	series map[SeriesKey]*series
	wal    *bufio.Writer
	walF   *os.File
	closed bool
}

// Open opens (or creates) a store. With a non-empty dir, points are
// persisted to an append-only log inside it and replayed on open. With an
// empty dir the store is memory-only.
func Open(dir string) (*DB, error) {
	db := &DB{series: make(map[SeriesKey]*series)}
	if dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: creating dir: %w", err)
	}
	path := filepath.Join(dir, "points.wal")
	if err := db.replay(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tsdb: opening wal: %w", err)
	}
	db.walF = f
	db.wal = bufio.NewWriterSize(f, 1<<16)
	return db, nil
}

// walRecord layout: u32 crc | u16 keyLen | key bytes | i64 unixNano | f64 bits.
func appendRecord(buf []byte, key string, at time.Time, v float64) []byte {
	payload := make([]byte, 0, 2+len(key)+16)
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(key)))
	payload = append(payload, tmp[:2]...)
	payload = append(payload, key...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(at.UnixNano()))
	payload = append(payload, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	payload = append(payload, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(payload))
	buf = append(buf, tmp[:4]...)
	return append(buf, payload...)
}

// replay loads the log, tolerating a truncated trailing record (crash).
func (db *DB) replay(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("tsdb: opening wal for replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var head [6]byte
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // clean end or truncated header: stop replay
			}
			return fmt.Errorf("tsdb: replay: %w", err)
		}
		crc := binary.LittleEndian.Uint32(head[:4])
		keyLen := int(binary.LittleEndian.Uint16(head[4:6]))
		body := make([]byte, keyLen+16)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil // truncated record: ignore tail
		}
		full := make([]byte, 0, 2+len(body))
		full = append(full, head[4:6]...)
		full = append(full, body...)
		if crc32.ChecksumIEEE(full) != crc {
			return nil // corrupt tail: stop replay
		}
		key := string(body[:keyLen])
		at := time.Unix(0, int64(binary.LittleEndian.Uint64(body[keyLen:keyLen+8]))).UTC()
		v := math.Float64frombits(binary.LittleEndian.Uint64(body[keyLen+8:]))
		k, err := ParseSeriesKey(key)
		if err != nil {
			continue
		}
		s := db.series[k]
		if s == nil {
			s = &series{}
			db.series[k] = s
		}
		s.points = append(s.points, Point{At: at, Value: v})
	}
}

// Append records a point. Appends must be time-ordered per series; an
// append earlier than the series' last point is rejected.
func (db *DB) Append(k SeriesKey, at time.Time, v float64) error {
	if k.Dataset == "" || k.Type == "" || k.Region == "" {
		return fmt.Errorf("tsdb: incomplete series key %v", k)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("tsdb: store is closed")
	}
	s := db.series[k]
	if s == nil {
		s = &series{}
		db.series[k] = s
	}
	if n := len(s.points); n > 0 && at.Before(s.points[n-1].At) {
		return fmt.Errorf("tsdb: out-of-order append to %v: %v before %v", k, at, s.points[n-1].At)
	}
	s.points = append(s.points, Point{At: at, Value: v})
	if db.wal != nil {
		rec := appendRecord(nil, k.String(), at, v)
		if _, err := db.wal.Write(rec); err != nil {
			return fmt.Errorf("tsdb: wal write: %w", err)
		}
	}
	return nil
}

// AppendIfChanged records the point only when its value differs from the
// series' last value (or the series is empty). It reports whether the point
// was stored. This is how the collector turns 10-minute samples into change
// events, which both bounds storage and makes Figure 10's
// time-between-changes analysis a direct read of the series.
func (db *DB) AppendIfChanged(k SeriesKey, at time.Time, v float64) (bool, error) {
	db.mu.RLock()
	s := db.series[k]
	if s != nil && len(s.points) > 0 && s.points[len(s.points)-1].Value == v {
		db.mu.RUnlock()
		return false, nil
	}
	db.mu.RUnlock()
	if err := db.Append(k, at, v); err != nil {
		return false, err
	}
	return true, nil
}

// Query returns the points of a series within [from, to], oldest first.
func (db *DB) Query(k SeriesKey, from, to time.Time) []Point {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[k]
	if s == nil {
		return nil
	}
	lo := sort.Search(len(s.points), func(i int) bool { return !s.points[i].At.Before(from) })
	hi := sort.Search(len(s.points), func(i int) bool { return s.points[i].At.After(to) })
	if lo >= hi {
		return nil
	}
	out := make([]Point, hi-lo)
	copy(out, s.points[lo:hi])
	return out
}

// ValueAt returns the series' value at time t under step semantics: the
// value of the latest point at or before t. ok is false before the first
// point or for an unknown series.
func (db *DB) ValueAt(k SeriesKey, t time.Time) (v float64, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[k]
	if s == nil {
		return 0, false
	}
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].At.After(t) })
	if i == 0 {
		return 0, false
	}
	return s.points[i-1].Value, true
}

// WindowMean returns the time-weighted mean of the step function over
// [from, to). ok is false when the series has no value anywhere in the
// window.
func (db *DB) WindowMean(k SeriesKey, from, to time.Time) (mean float64, ok bool) {
	if !to.After(from) {
		return 0, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[k]
	if s == nil || len(s.points) == 0 {
		return 0, false
	}
	pts := s.points
	// Index of first point after from.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].At.After(from) })
	var cur float64
	var curSet bool
	cursor := from
	if i > 0 {
		cur = pts[i-1].Value
		curSet = true
	}
	total := 0.0
	weight := 0.0
	for ; i < len(pts) && pts[i].At.Before(to); i++ {
		if curSet {
			d := pts[i].At.Sub(cursor).Seconds()
			total += cur * d
			weight += d
		}
		cur = pts[i].Value
		curSet = true
		cursor = pts[i].At
	}
	if curSet {
		d := to.Sub(cursor).Seconds()
		total += cur * d
		weight += d
	}
	if weight == 0 {
		return 0, false
	}
	return total / weight, true
}

// Grid samples the step function at from, from+step, ... up to and
// including to. Instants before the first point yield NaN.
func (db *DB) Grid(k SeriesKey, from, to time.Time, step time.Duration) []float64 {
	if step <= 0 || to.Before(from) {
		return nil
	}
	var out []float64
	for t := from; !t.After(to); t = t.Add(step) {
		if v, ok := db.ValueAt(k, t); ok {
			out = append(out, v)
		} else {
			out = append(out, math.NaN())
		}
	}
	return out
}

// ChangeIntervals returns the durations between consecutive points of the
// series. When points are appended via AppendIfChanged these are the
// value-change intervals of Figure 10.
func (db *DB) ChangeIntervals(k SeriesKey) []time.Duration {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[k]
	if s == nil || len(s.points) < 2 {
		return nil
	}
	out := make([]time.Duration, 0, len(s.points)-1)
	for i := 1; i < len(s.points); i++ {
		out = append(out, s.points[i].At.Sub(s.points[i-1].At))
	}
	return out
}

// Last returns the most recent point of the series.
func (db *DB) Last(k SeriesKey) (Point, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.series[k]
	if s == nil || len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// KeyFilter selects series keys; empty fields match anything.
type KeyFilter struct {
	Dataset string
	Type    string
	Region  string
	AZ      string
}

func (f KeyFilter) matches(k SeriesKey) bool {
	return (f.Dataset == "" || f.Dataset == k.Dataset) &&
		(f.Type == "" || f.Type == k.Type) &&
		(f.Region == "" || f.Region == k.Region) &&
		(f.AZ == "" || f.AZ == k.AZ)
}

// Keys returns the series keys matching the filter, sorted canonically.
func (db *DB) Keys(f KeyFilter) []SeriesKey {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []SeriesKey
	for k := range db.series {
		if f.matches(k) {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// SeriesCount returns the number of series.
func (db *DB) SeriesCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.series)
}

// PointCount returns the total number of stored points.
func (db *DB) PointCount() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, s := range db.series {
		n += len(s.points)
	}
	return n
}

// Flush forces buffered log records to the operating system.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	if err := db.wal.Flush(); err != nil {
		return err
	}
	return db.walF.Sync()
}

// Close flushes and closes the store. Further writes fail.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.closed = true
	if db.wal == nil {
		return nil
	}
	if err := db.wal.Flush(); err != nil {
		return err
	}
	return db.walF.Close()
}
