// Package tsdb is an embedded time-series database, the stand-in for the
// Amazon Timestream service in SpotLake's architecture (paper Figure 2).
//
// The archive's datasets are step functions: a placement score, advisor
// bucket, or spot price holds its value until the next recorded change. The
// store therefore keeps one append-only, time-ordered point slice per
// series, deduplicates consecutive equal values on request, and answers
// range queries, step-aware value-at-time lookups, window means, and
// change-interval extractions (the primitives behind Figures 3, 4, 5, 8, 9
// and 10). An optional write-ahead log gives durable persistence with
// crash-safe replay.
//
// # Sharding
//
// The store is lock-striped: series keys hash (FNV-1a over the canonical
// key form) onto a power-of-two number of shards near GOMAXPROCS, each
// shard owning its own mutex, series map, and point counter. Collector
// writes and archive reads touching different shards never contend, and
// the aggregate statistics (SeriesCount, PointCount, Keys, MaxTime) are
// computed by visiting shards one at a time without any global lock.
// AppendBatch groups a tick's worth of points by shard so each shard lock
// is taken once per batch instead of once per point. Every shard carries
// its own monotonically increasing generation counter (ShardGeneration),
// bumped on every point stored into it, and the store tracks a separate
// key-set generation (KeyGeneration) bumped whenever a new series is
// created anywhere; read-side caches combine the two to detect staleness
// at shard granularity instead of store granularity.
//
// # Durability
//
// The write-ahead log is segmented per shard and rotates (see wal.go):
// shard i appends to its active wal-<i>-<seq>.log under shard i's lock,
// so durable appends to different shards never serialize against each
// other, and the active segment seals and a new one opens once it exceeds
// RotateBytes. A versioned MANIFEST names the layout; snapshots double as
// checkpoints (Checkpoint) that bound recovery to "load snapshot + replay
// per-shard segment-chain tails", and checkpoint compaction deletes
// covered sealed segments instead of rewriting files. The store maintains
// itself (see maintain.go): a daemon started by OpenWithOptions
// checkpoints when the un-checkpointed WAL crosses
// Options.CheckpointAfterBytes or a shard's sealed chain reaches
// Options.MaxSealedSegments, and the chain cap is enforced synchronously
// on the append path — no caller cooperation needed for bounded replay
// tails or bounded sealed-segment disk use.
//
// # Snapshots
//
// Beyond the WAL, a populated store can be persisted as a one-pass binary
// snapshot (see snapshot.go): a versioned, CRC-checked, length-prefixed
// dump of every series. Loading a snapshot is much faster than replaying
// an equivalent WAL because points arrive grouped by series and are
// validated per record rather than per point.
package tsdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Dataset names used by the SpotLake collector. The store accepts any
// dataset string; these are the conventional ones.
const (
	DatasetPlacementScore = "sps"
	DatasetInterruptFree  = "if"
	DatasetPrice          = "price"
	DatasetSavings        = "savings"
)

// SeriesKey identifies one time series. AZ is empty for region-granular
// datasets (the advisor data); Region is always set.
type SeriesKey struct {
	Dataset string
	Type    string
	Region  string
	AZ      string
}

// String renders the key in its canonical "dataset|type|region|az" form.
func (k SeriesKey) String() string {
	return k.Dataset + "|" + k.Type + "|" + k.Region + "|" + k.AZ
}

// ParseSeriesKey parses the canonical key form.
func ParseSeriesKey(s string) (SeriesKey, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 4 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return SeriesKey{}, fmt.Errorf("tsdb: malformed series key %q", s)
	}
	return SeriesKey{Dataset: parts[0], Type: parts[1], Region: parts[2], AZ: parts[3]}, nil
}

// Point is one sample of a series.
type Point struct {
	At    time.Time
	Value float64
}

// Entry is one point addressed to a series, the unit of batched appends.
type Entry struct {
	Key   SeriesKey
	At    time.Time
	Value float64
}

type series struct {
	points []Point
}

// shard is one lock stripe: a mutex, its series, local statistics, and —
// for durable stores — its own rotating WAL segment chain. Segment writes
// happen under the shard's write lock, so the record order in the chain is
// identical to shard i's memory order with no extra mutex, and appends to
// different shards never serialize against a shared log.
type shard struct {
	mu     sync.RWMutex
	series map[SeriesKey]*series
	points int
	gen    atomic.Uint64

	// idx is this shard's index in db.shards, fixed at open; rotation
	// needs it to name the next segment file without pointer arithmetic.
	idx int

	// Durable state, nil for memory-only stores. walSeq is the active
	// segment's sequence number; walBase is the logical offset of its
	// first record (records before it live in earlier segments or the
	// latest checkpoint snapshot); walOff is the logical end offset, i.e.
	// walBase + payload bytes appended since the file's header. Offsets
	// count only record bytes, never headers. sealed lists the shard's
	// sealed segments still on disk, oldest first — checkpoint unlinks
	// the ones its snapshot fully covers. cpBytes counts record bytes
	// appended since the last committed checkpoint, feeding the
	// size-based checkpoint trigger.
	wal     *bufio.Writer
	walF    *os.File
	walSeq  uint64
	walBase uint64
	walOff  uint64
	sealed  []sealedSeg
	cpBytes atomic.Uint64

	// sealedN mirrors len(sealed) atomically so the maintainer and the
	// append path's chain-cap check can read chain lengths without the
	// shard lock. Updated via DB.setSealed wherever sealed changes.
	sealedN atomic.Int64
}

// DB is the time-series store. It is safe for concurrent use.
type DB struct {
	shards []shard
	mask   uint32
	keyGen atomic.Uint64
	closed atomic.Bool

	// Durable layout state. dir is empty for memory-only stores. man is
	// the manifest as last committed; cpMu serializes Checkpoint, layout
	// commits, and manifest replacement. epoch mirrors man.Epoch but is
	// written only while Open owns the store single-threaded, so the
	// rotation fast path can read it under just a shard lock.
	dir         string
	cpMu        sync.Mutex
	man         manifest
	epoch       uint64
	rotateBytes int64

	// replayedBytes counts the WAL record bytes the last Open replayed
	// beyond the checkpoint cut — the observable size of the recovery
	// tail that checkpointing (time- or size-triggered) bounds.
	replayedBytes atomic.Uint64

	// rotateFails counts segment rotations that failed on the append
	// path. The appends themselves succeed (the record is durable in the
	// still-active segment), so the failure is surfaced here instead of
	// through their error returns.
	rotateFails atomic.Uint64

	// Maintenance state (see maintain.go). cpAfterBytes and maxSealed are
	// the trigger thresholds, fixed at open; chainOver counts shards whose
	// sealed chain sits at or past the cap (the append path's one-load
	// trigger check). The channels belong to the daemon goroutine.
	cpAfterBytes int64
	maxSealed    int
	chainOver    atomic.Int64
	// maintRetryAt (UnixNano) gates the append path's enforcement after
	// a failed maintenance checkpoint: a trigger stays latched until a
	// checkpoint succeeds, and without the gate every append would
	// synchronously re-attempt a full snapshot against e.g. a full disk.
	maintRetryAt atomic.Int64
	// cpBytesTotal mirrors the sum of the per-shard cpBytes counters so
	// the append path can evaluate the byte trigger with one atomic load
	// (summing 256 shards per append would not be free). The per-shard
	// counters remain authoritative for checkpoint's exact per-shard
	// capture accounting; every site that moves one moves the other.
	cpBytesTotal atomic.Uint64
	maintWake    chan struct{}
	maintStop    chan struct{}
	maintDone    chan struct{}
	maintCP      atomic.Uint64
	maintByBytes atomic.Uint64
	maintByChain atomic.Uint64
	maintErrs    atomic.Uint64

	// testCrash, when armed by the crash-matrix tests, aborts the
	// rotation/checkpoint protocol at a named durable boundary. Nil in
	// production.
	testCrash func(point string) error
}

// DefaultShardCount is the shard count used by Open: the smallest power of
// two >= GOMAXPROCS, clamped to [8, 256]. The floor keeps lock striping
// effective on small machines; the ceiling bounds per-shard overhead.
func DefaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n {
		s <<= 1
	}
	if s < 8 {
		s = 8
	}
	if s > 256 {
		s = 256
	}
	return s
}

// DefaultRotateBytes is the segment rotation threshold used when Options
// leaves RotateBytes zero: the active WAL segment seals and a new one
// opens once it holds this many record bytes. Small enough that a
// checkpoint can reclaim most of a write-heavy tail by unlinking sealed
// segments; large enough that rotation stays off the hot path for
// ordinary collection cadences.
const DefaultRotateBytes = 8 << 20

// Options configures OpenWithOptions.
type Options struct {
	// Shards is the lock-stripe count, rounded up to a power of two;
	// <= 0 selects DefaultShardCount. A shard count of 1 reproduces the
	// single-lock store, which the benchmarks use as baseline.
	Shards int
	// RotateBytes is the active segment's rotation threshold in record
	// bytes: 0 selects DefaultRotateBytes, negative disables rotation
	// (one ever-growing segment per shard, the pre-rotation behavior).
	RotateBytes int64
	// CheckpointAfterBytes, when positive on a durable store, makes the
	// store checkpoint itself once WALBytesSinceCheckpoint crosses the
	// threshold — regardless of who is writing (collector, bootstrap,
	// bulk snapshot restore). Zero disables the store's own size trigger
	// (callers may still schedule checkpoints themselves).
	CheckpointAfterBytes int64
	// MaxSealedSegments, when positive on a durable store, caps each
	// shard's sealed-segment chain: an append that observes a shard at
	// the cap checkpoints first (reclaiming every covered segment), so no
	// shard ever accumulates more than this many sealed segments even if
	// nothing else calls Checkpoint. Zero means no cap.
	MaxSealedSegments int
	// MaintenanceInterval is the maintenance daemon's poll period: 0
	// selects DefaultMaintenanceInterval, negative disables the daemon
	// (the append-path chain-cap enforcement still applies). The daemon
	// only starts when the store is durable and at least one of
	// CheckpointAfterBytes / MaxSealedSegments is set.
	MaintenanceInterval time.Duration
}

// Open opens (or creates) a store with DefaultShardCount shards. With a
// non-empty dir, points are persisted to an append-only log inside it and
// replayed on open. With an empty dir the store is memory-only.
func Open(dir string) (*DB, error) {
	return OpenWithOptions(dir, Options{})
}

// OpenSharded opens a store with an explicit shard count; see Options.
func OpenSharded(dir string, shards int) (*DB, error) {
	return OpenWithOptions(dir, Options{Shards: shards})
}

// OpenWithOptions opens a store with explicit tuning.
func OpenWithOptions(dir string, o Options) (*DB, error) {
	shards := o.Shards
	if shards <= 0 {
		shards = DefaultShardCount()
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	db := &DB{shards: make([]shard, n), mask: uint32(n - 1)}
	db.rotateBytes = o.RotateBytes
	if db.rotateBytes == 0 {
		db.rotateBytes = DefaultRotateBytes
	}
	db.cpAfterBytes = o.CheckpointAfterBytes
	db.maxSealed = o.MaxSealedSegments
	db.maintWake = make(chan struct{}, 1)
	for i := range db.shards {
		db.shards[i].idx = i
		db.shards[i].series = make(map[SeriesKey]*series)
	}
	if dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: creating dir: %w", err)
	}
	db.dir = dir
	if err := db.openDurable(); err != nil {
		return nil, err
	}
	db.startMaintainer(o.MaintenanceInterval)
	return db, nil
}

// ShardCount returns the number of lock stripes.
func (db *DB) ShardCount() int { return len(db.shards) }

// Durable reports whether the store persists to disk (opened with a
// non-empty directory).
func (db *DB) Durable() bool { return db.dir != "" }

// RotateBytes returns the effective segment rotation threshold (negative
// when rotation is disabled).
func (db *DB) RotateBytes() int64 { return db.rotateBytes }

// WALBytesSinceCheckpoint returns the WAL record bytes appended since the
// last committed checkpoint — the size of the tail a restart would have
// to replay. Size-based checkpoint schedulers compare it against their
// threshold after each write burst; it resets (by the captured amount)
// when a checkpoint commits. One atomic load.
func (db *DB) WALBytesSinceCheckpoint() uint64 {
	return db.cpBytesTotal.Load()
}

// ReplayedWALBytes returns how many WAL record bytes the Open that created
// this store replayed beyond its checkpoint cut — the realized recovery
// tail. Zero for memory-only stores and for opens that bulk-loaded a
// checkpoint covering everything.
func (db *DB) ReplayedWALBytes() uint64 { return db.replayedBytes.Load() }

// RotateFailures returns how many segment rotations have failed since
// open. The affected appends succeeded (their records are durable in the
// still-active segment, which keeps growing until a rotation succeeds);
// a climbing counter means the store cannot create new segment files —
// disk full or permissions — and checkpoints have stopped reclaiming
// space.
func (db *DB) RotateFailures() uint64 { return db.rotateFails.Load() }

// ShardGeneration returns the generation counter of one shard; it
// increases whenever a point is stored into that shard.
func (db *DB) ShardGeneration(i int) uint64 { return db.shards[i].gen.Load() }

// ShardGenerations returns a snapshot of every shard's generation counter,
// indexed by shard. Each element is read atomically; the vector as a whole
// is not an atomic cut, which is fine for staleness checks as long as the
// vector is captured before the guarded read (a racing write then makes
// the cached result stale immediately, never the reverse).
func (db *DB) ShardGenerations() []uint64 {
	out := make([]uint64, len(db.shards))
	for i := range db.shards {
		out[i] = db.shards[i].gen.Load()
	}
	return out
}

// KeyGeneration returns a counter that increases whenever a new series is
// created anywhere in the store. Filter-based caches must include it in
// their staleness check: a new series can match an existing filter while
// living in a shard the cached result never touched.
func (db *DB) KeyGeneration() uint64 { return db.keyGen.Load() }

// ShardIndexOf returns the shard index the key hashes to.
func (db *DB) ShardIndexOf(k SeriesKey) int { return int(db.shardIndex(k)) }

// shardIndex hashes the key (FNV-1a over the canonical form, without
// materializing it) onto a shard index.
func (db *DB) shardIndex(k SeriesKey) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= prime32
		}
		h ^= '|'
		h *= prime32
	}
	mix(k.Dataset)
	mix(k.Type)
	mix(k.Region)
	mix(k.AZ)
	return h & db.mask
}

func (db *DB) shardFor(k SeriesKey) *shard {
	return &db.shards[db.shardIndex(k)]
}

// walRecord layout: u32 crc | u16 keyLen | key bytes | i64 unixNano | f64 bits.
func appendRecord(buf []byte, key string, at time.Time, v float64) []byte {
	payload := make([]byte, 0, 2+len(key)+16)
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(key)))
	payload = append(payload, tmp[:2]...)
	payload = append(payload, key...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(at.UnixNano()))
	payload = append(payload, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	payload = append(payload, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(payload))
	buf = append(buf, tmp[:4]...)
	return append(buf, payload...)
}

// maxKeyBytes bounds the canonical key form: both the WAL and the snapshot
// codec store key lengths as uint16, so longer keys would silently
// truncate into unreadable records.
const maxKeyBytes = 1<<16 - 1

func validKey(k SeriesKey) error {
	if k.Dataset == "" || k.Type == "" || k.Region == "" {
		return fmt.Errorf("tsdb: incomplete series key %v", k)
	}
	if len(k.Dataset)+len(k.Type)+len(k.Region)+len(k.AZ)+3 > maxKeyBytes {
		return fmt.Errorf("tsdb: series key exceeds %d bytes", maxKeyBytes)
	}
	return nil
}

// appendLocked stores one point into sh, which the caller has write-locked.
// The WAL write goes to the shard's own segment under the same lock, so
// durable appends to different shards proceed fully in parallel.
func (db *DB) appendLocked(sh *shard, k SeriesKey, at time.Time, v float64) error {
	if db.closed.Load() {
		return errors.New("tsdb: store is closed")
	}
	s := sh.series[k]
	if s == nil {
		s = &series{}
		sh.series[k] = s
		db.keyGen.Add(1)
	}
	if n := len(s.points); n > 0 && at.Before(s.points[n-1].At) {
		return fmt.Errorf("tsdb: out-of-order append to %v: %v before %v", k, at, s.points[n-1].At)
	}
	s.points = append(s.points, Point{At: at, Value: v})
	sh.points++
	sh.gen.Add(1)
	if sh.wal != nil {
		rec := appendRecord(nil, k.String(), at, v)
		if _, err := sh.wal.Write(rec); err != nil {
			return fmt.Errorf("tsdb: wal write: %w", err)
		}
		sh.walOff += uint64(len(rec))
		sh.cpBytes.Add(uint64(len(rec)))
		db.cpBytesTotal.Add(uint64(len(rec)))
		if db.rotateBytes > 0 && sh.walOff-sh.walBase >= uint64(db.rotateBytes) {
			// Best-effort: the point is already stored and logged, so a
			// rotation failure must not be reported as a failed append
			// (callers would retry and duplicate the point). The active
			// segment just keeps growing until a later append's rotation
			// succeeds; RotateFailures exposes the misfires.
			if err := db.rotateLocked(sh); err != nil {
				db.rotateFails.Add(1)
			}
		}
	}
	return nil
}

// Append records a point. Appends must be time-ordered per series; an
// append earlier than the series' last point is rejected.
func (db *DB) Append(k SeriesKey, at time.Time, v float64) error {
	if err := validKey(k); err != nil {
		return err
	}
	db.enforceMaintenance()
	sh := db.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.appendLocked(sh, k, at, v)
}

// AppendIfChanged records the point only when its value differs from the
// series' last value (or the series is empty). It reports whether the point
// was stored. This is how the collector turns 10-minute samples into change
// events, which both bounds storage and makes Figure 10's
// time-between-changes analysis a direct read of the series.
func (db *DB) AppendIfChanged(k SeriesKey, at time.Time, v float64) (bool, error) {
	if err := validKey(k); err != nil {
		return false, err
	}
	db.enforceMaintenance()
	sh := db.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s := sh.series[k]; s != nil && len(s.points) > 0 && s.points[len(s.points)-1].Value == v {
		return false, nil
	}
	if err := db.appendLocked(sh, k, at, v); err != nil {
		return false, err
	}
	return true, nil
}

// AppendBatch stores the entries, grouping them by shard so each shard
// lock is acquired once per batch rather than once per point. Entries keep
// their input order within a shard, so per-series time ordering of the
// input is preserved. It returns how many points were stored and the first
// error encountered; later entries are still attempted after an error.
func (db *DB) AppendBatch(entries []Entry) (int, error) {
	return db.appendBatch(entries, false)
}

// AppendBatchIfChanged is AppendBatch with AppendIfChanged's semantics:
// an entry whose value equals its series' current last value is skipped.
func (db *DB) AppendBatchIfChanged(entries []Entry) (int, error) {
	return db.appendBatch(entries, true)
}

func (db *DB) appendBatch(entries []Entry, dedup bool) (int, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	db.enforceMaintenance()
	// Stable counting sort of entry indices by shard: input order is
	// preserved within a shard (so per-series time order survives), and
	// no per-call maps are allocated. Invalid keys land in bucket ns.
	ns := len(db.shards)
	var firstErr error
	shardOf := make([]uint32, len(entries))
	counts := make([]int, ns+1)
	for i := range entries {
		si := uint32(ns)
		if err := validKey(entries[i].Key); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			si = db.shardIndex(entries[i].Key)
		}
		shardOf[i] = si
		counts[si]++
	}
	pos := make([]int, ns+1)
	sum := 0
	for s := 0; s <= ns; s++ {
		pos[s] = sum
		sum += counts[s]
	}
	order := make([]int32, len(entries))
	fill := append([]int(nil), pos...)
	for i := range entries {
		s := shardOf[i]
		order[fill[s]] = int32(i)
		fill[s]++
	}
	stored := 0
	for s := 0; s < ns; s++ {
		lo, hi := pos[s], pos[s]+counts[s]
		if lo == hi {
			continue
		}
		sh := &db.shards[s]
		sh.mu.Lock()
		for _, i := range order[lo:hi] {
			e := &entries[i]
			if dedup {
				if sr := sh.series[e.Key]; sr != nil && len(sr.points) > 0 && sr.points[len(sr.points)-1].Value == e.Value {
					continue
				}
			}
			if err := db.appendLocked(sh, e.Key, e.At, e.Value); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			stored++
		}
		sh.mu.Unlock()
	}
	return stored, firstErr
}

// Query returns the points of a series within [from, to], oldest first.
func (db *DB) Query(k SeriesKey, from, to time.Time) []Point {
	return db.QueryRange(k, from, to, 0, -1)
}

// rangeBounds returns the index window [lo, hi) of s.points falling
// within [from, to]. The caller holds the owning shard's lock. This is
// the single source of window semantics for CountRange and QueryRange —
// pagination relies on the count pass and the copy pass agreeing
// exactly.
func rangeBounds(s *series, from, to time.Time) (lo, hi int) {
	lo = sort.Search(len(s.points), func(i int) bool { return !s.points[i].At.Before(from) })
	hi = sort.Search(len(s.points), func(i int) bool { return s.points[i].At.After(to) })
	return lo, hi
}

// CountRange returns how many points of the series fall within [from, to]
// without copying any of them — two binary searches under the shard's
// read lock. Pagination uses it to size pages and locate offsets before
// materializing only the requested window.
func (db *DB) CountRange(k SeriesKey, from, to time.Time) int {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return 0
	}
	lo, hi := rangeBounds(s, from, to)
	if lo >= hi {
		return 0
	}
	return hi - lo
}

// QueryRange returns up to max points of the series within [from, to],
// oldest first, skipping the first skip in-window points. A negative max
// means "all remaining". Only the returned points are copied, so a
// paginated reader of a large window allocates one page at a time instead
// of the full range.
func (db *DB) QueryRange(k SeriesKey, from, to time.Time, skip, max int) []Point {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return nil
	}
	lo, hi := rangeBounds(s, from, to)
	// Compare skip and max against the remainder rather than adding them
	// to an index: lo+skip or lo+max overflows for values near MaxInt,
	// and a wrapped-negative bound would drop (or worse, mis-slice) the
	// result.
	if skip > 0 {
		if skip >= hi-lo {
			return nil
		}
		lo += skip
	}
	if max >= 0 && max < hi-lo {
		hi = lo + max
	}
	if lo >= hi {
		return nil
	}
	out := make([]Point, hi-lo)
	copy(out, s.points[lo:hi])
	return out
}

// afterBounds returns the index window [lo, hi) of s.points after the
// position (after, seq) and at or before `to`. The caller holds the
// owning shard's lock. This is the seek primitive behind keyset-cursor
// pagination: the position names the seq-th point at timestamp `after`
// (every earlier point plus the first seq points at exactly `after` are
// consumed), so a resumed read starts at a fixed place in the
// append-only series, unlike an offset, which shifts when earlier
// points arrive. The store accepts equal-timestamp appends, so a bare
// timestamp cannot address a position inside such a run — the sequence
// component is what lets a page boundary fall there without dropping
// the run's remainder.
func afterBounds(s *series, after time.Time, seq int, to time.Time) (lo, hi int) {
	lo = sort.Search(len(s.points), func(i int) bool { return !s.points[i].At.Before(after) })
	if seq > 0 {
		// seq consumes points at exactly `after`, never beyond its run:
		// a forged or overshot count clamps to the run's end instead of
		// eating later timestamps.
		runEnd := sort.Search(len(s.points), func(i int) bool { return s.points[i].At.After(after) })
		if seq > runEnd-lo {
			lo = runEnd
		} else {
			lo += seq
		}
	}
	hi = sort.Search(len(s.points), func(i int) bool { return s.points[i].At.After(to) })
	return lo, hi
}

// CountAfter returns how many points of the series lie after the
// position (after, seq) — see afterBounds — and at or before `to`,
// without copying any of them: two binary searches under the shard's
// read lock. Cursor pagination uses it to size the remainder of a
// series the cursor position has partially consumed.
func (db *DB) CountAfter(k SeriesKey, after time.Time, seq int, to time.Time) int {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return 0
	}
	lo, hi := afterBounds(s, after, seq, to)
	if lo >= hi {
		return 0
	}
	return hi - lo
}

// QueryAfter returns up to max points of the series after the position
// (after, seq) and at or before `to`, oldest first. A negative max means
// "all remaining". Because the store is append-only and per-series
// time-ordered, a fixed (timestamp, sequence) position never moves as
// new points arrive — the property that keeps cursor pagination stable
// under live collection, where a skipped offset would drift.
func (db *DB) QueryAfter(k SeriesKey, after time.Time, seq int, to time.Time, max int) []Point {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return nil
	}
	lo, hi := afterBounds(s, after, seq, to)
	if max >= 0 && max < hi-lo {
		hi = lo + max
	}
	if lo >= hi {
		return nil
	}
	out := make([]Point, hi-lo)
	copy(out, s.points[lo:hi])
	return out
}

// ValueAt returns the series' value at time t under step semantics: the
// value of the latest point at or before t. ok is false before the first
// point or for an unknown series.
func (db *DB) ValueAt(k SeriesKey, t time.Time) (v float64, ok bool) {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return 0, false
	}
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].At.After(t) })
	if i == 0 {
		return 0, false
	}
	return s.points[i-1].Value, true
}

// WindowMean returns the time-weighted mean of the step function over
// [from, to). ok is false when the series has no value anywhere in the
// window.
func (db *DB) WindowMean(k SeriesKey, from, to time.Time) (mean float64, ok bool) {
	if !to.After(from) {
		return 0, false
	}
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil || len(s.points) == 0 {
		return 0, false
	}
	pts := s.points
	// Index of first point after from.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].At.After(from) })
	var cur float64
	var curSet bool
	cursor := from
	if i > 0 {
		cur = pts[i-1].Value
		curSet = true
	}
	total := 0.0
	weight := 0.0
	for ; i < len(pts) && pts[i].At.Before(to); i++ {
		if curSet {
			d := pts[i].At.Sub(cursor).Seconds()
			total += cur * d
			weight += d
		}
		cur = pts[i].Value
		curSet = true
		cursor = pts[i].At
	}
	if curSet {
		d := to.Sub(cursor).Seconds()
		total += cur * d
		weight += d
	}
	if weight == 0 {
		return 0, false
	}
	return total / weight, true
}

// Grid samples the step function at from, from+step, ... up to and
// including to. Instants before the first point yield NaN.
func (db *DB) Grid(k SeriesKey, from, to time.Time, step time.Duration) []float64 {
	if step <= 0 || to.Before(from) {
		return nil
	}
	var out []float64
	for t := from; !t.After(to); t = t.Add(step) {
		if v, ok := db.ValueAt(k, t); ok {
			out = append(out, v)
		} else {
			out = append(out, math.NaN())
		}
	}
	return out
}

// ChangeIntervals returns the durations between consecutive points of the
// series. When points are appended via AppendIfChanged these are the
// value-change intervals of Figure 10.
func (db *DB) ChangeIntervals(k SeriesKey) []time.Duration {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil || len(s.points) < 2 {
		return nil
	}
	out := make([]time.Duration, 0, len(s.points)-1)
	for i := 1; i < len(s.points); i++ {
		out = append(out, s.points[i].At.Sub(s.points[i-1].At))
	}
	return out
}

// Last returns the most recent point of the series.
func (db *DB) Last(k SeriesKey) (Point, bool) {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil || len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// KeyFilter selects series keys; empty fields match anything.
type KeyFilter struct {
	Dataset string
	Type    string
	Region  string
	AZ      string
}

func (f KeyFilter) matches(k SeriesKey) bool {
	return (f.Dataset == "" || f.Dataset == k.Dataset) &&
		(f.Type == "" || f.Type == k.Type) &&
		(f.Region == "" || f.Region == k.Region) &&
		(f.AZ == "" || f.AZ == k.AZ)
}

// Keys returns the series keys matching the filter, sorted canonically.
// Shards are visited one at a time; no global lock is held. The
// canonical forms are rendered once before sorting — comparing via
// String() inside the sort would allocate two strings per comparison,
// the dominant cost of every broad query's key-matching phase.
func (db *DB) Keys(f KeyFilter) []SeriesKey {
	var out []SeriesKey
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for k := range sh.series {
			if f.matches(k) {
				out = append(out, k)
			}
		}
		sh.mu.RUnlock()
	}
	canon := make([]string, len(out))
	for i := range out {
		canon[i] = out[i].String()
	}
	sort.Sort(&keysByCanon{keys: out, canon: canon})
	return out
}

// keysByCanon sorts a key slice by its precomputed canonical forms,
// keeping the two slices paired through swaps.
type keysByCanon struct {
	keys  []SeriesKey
	canon []string
}

func (s *keysByCanon) Len() int           { return len(s.keys) }
func (s *keysByCanon) Less(i, j int) bool { return s.canon[i] < s.canon[j] }
func (s *keysByCanon) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.canon[i], s.canon[j] = s.canon[j], s.canon[i]
}

// SeriesCount returns the number of series.
func (db *DB) SeriesCount() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += len(sh.series)
		sh.mu.RUnlock()
	}
	return n
}

// PointCount returns the total number of stored points, aggregated from
// the per-shard counters.
func (db *DB) PointCount() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += sh.points
		sh.mu.RUnlock()
	}
	return n
}

// MaxTime returns the latest point timestamp anywhere in the store. ok is
// false for an empty store. Snapshot-loading services use it to fast-forward
// their clock past the restored data.
func (db *DB) MaxTime() (time.Time, bool) {
	var max time.Time
	found := false
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			if n := len(s.points); n > 0 {
				if at := s.points[n-1].At; !found || at.After(max) {
					max, found = at, true
				}
			}
		}
		sh.mu.RUnlock()
	}
	return max, found
}

// Flush forces buffered log records of every shard segment to stable
// storage. Only the (cheap) buffer flush happens under each shard lock;
// the fsyncs run outside the locks and concurrently across segments, so
// readers and writers are never blocked behind disk latency and the wall
// time stays near one fsync rather than one per shard. A segment rotated
// or closed between the two steps is skipped: rotation (checkpoint
// compaction) fsyncs the replacement itself, and a closing store syncs
// in Close.
func (db *DB) Flush() error {
	errs := make([]error, len(db.shards))
	files := make([]*os.File, len(db.shards))
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		if sh.wal != nil {
			if err := sh.wal.Flush(); err != nil {
				errs[i] = err
			} else {
				files[i] = sh.walF
			}
		}
		sh.mu.Unlock()
	}
	var wg sync.WaitGroup
	for i, f := range files {
		if f == nil {
			continue
		}
		wg.Add(1)
		go func(i int, f *os.File) {
			defer wg.Done()
			if err := f.Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
				errs[i] = err
			}
		}(i, f)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("tsdb: flush shard %d: %w", i, err)
		}
	}
	return nil
}

// Close flushes and closes the store. Further writes fail. Close quiesces
// every shard so no append is mid-flight when its segment is closed. The
// maintenance daemon, if any, is stopped first — an in-flight maintenance
// checkpoint completes before any segment file is closed.
func (db *DB) Close() error {
	if db.closed.CompareAndSwap(false, true) {
		db.stopMaintainer()
	}
	for i := range db.shards {
		db.shards[i].mu.Lock()
	}
	defer func() {
		for i := range db.shards {
			db.shards[i].mu.Unlock()
		}
	}()
	var firstErr error
	for i := range db.shards {
		sh := &db.shards[i]
		if sh.wal == nil {
			continue
		}
		// Flush AND fsync: Close is the durability boundary a clean
		// shutdown relies on (and Flush's out-of-lock sync treats a
		// concurrently-closed file as "Close will have synced it").
		err := sh.wal.Flush()
		if err == nil {
			err = sh.walF.Sync()
		}
		if cerr := sh.walF.Close(); err == nil {
			err = cerr
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("tsdb: close shard %d: %w", i, err)
		}
		sh.wal, sh.walF = nil, nil
	}
	return firstErr
}
