// Package tsdb is an embedded time-series database, the stand-in for the
// Amazon Timestream service in SpotLake's architecture (paper Figure 2).
//
// The archive's datasets are step functions: a placement score, advisor
// bucket, or spot price holds its value until the next recorded change. The
// store therefore keeps one append-only, time-ordered point slice per
// series, deduplicates consecutive equal values on request, and answers
// range queries, step-aware value-at-time lookups, window means, and
// change-interval extractions (the primitives behind Figures 3, 4, 5, 8, 9
// and 10). An optional write-ahead log gives durable persistence with
// crash-safe replay.
//
// # Sharding
//
// The store is lock-striped: series keys hash (FNV-1a over the canonical
// key form) onto a power-of-two number of shards near GOMAXPROCS, each
// shard owning its own mutex, series map, and point counter. Collector
// writes and archive reads touching different shards never contend, and
// the aggregate statistics (SeriesCount, PointCount, Keys, MaxTime) are
// computed by visiting shards one at a time without any global lock.
// AppendBatch groups a tick's worth of points by shard so each shard lock
// is taken once per batch instead of once per point. A monotonically
// increasing generation counter (Generation) is bumped on every stored
// point, letting read-side caches detect staleness cheaply.
//
// # Snapshots
//
// Beyond the WAL, a populated store can be persisted as a one-pass binary
// snapshot (see snapshot.go): a versioned, CRC-checked, length-prefixed
// dump of every series. Loading a snapshot is much faster than replaying
// an equivalent WAL because points arrive grouped by series and are
// validated per record rather than per point.
package tsdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Dataset names used by the SpotLake collector. The store accepts any
// dataset string; these are the conventional ones.
const (
	DatasetPlacementScore = "sps"
	DatasetInterruptFree  = "if"
	DatasetPrice          = "price"
	DatasetSavings        = "savings"
)

// SeriesKey identifies one time series. AZ is empty for region-granular
// datasets (the advisor data); Region is always set.
type SeriesKey struct {
	Dataset string
	Type    string
	Region  string
	AZ      string
}

// String renders the key in its canonical "dataset|type|region|az" form.
func (k SeriesKey) String() string {
	return k.Dataset + "|" + k.Type + "|" + k.Region + "|" + k.AZ
}

// ParseSeriesKey parses the canonical key form.
func ParseSeriesKey(s string) (SeriesKey, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 4 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return SeriesKey{}, fmt.Errorf("tsdb: malformed series key %q", s)
	}
	return SeriesKey{Dataset: parts[0], Type: parts[1], Region: parts[2], AZ: parts[3]}, nil
}

// Point is one sample of a series.
type Point struct {
	At    time.Time
	Value float64
}

// Entry is one point addressed to a series, the unit of batched appends.
type Entry struct {
	Key   SeriesKey
	At    time.Time
	Value float64
}

type series struct {
	points []Point
}

// shard is one lock stripe: a mutex, its series, and local statistics.
type shard struct {
	mu     sync.RWMutex
	series map[SeriesKey]*series
	points int
}

// DB is the time-series store. It is safe for concurrent use.
type DB struct {
	shards []shard
	mask   uint32
	gen    atomic.Uint64
	closed atomic.Bool

	// The WAL is shared across shards; walMu is always acquired while
	// holding a shard lock (lock order: shard -> wal), which keeps the
	// per-series record order in the log identical to memory order.
	walMu sync.Mutex
	wal   *bufio.Writer
	walF  *os.File
}

// DefaultShardCount is the shard count used by Open: the smallest power of
// two >= GOMAXPROCS, clamped to [8, 256]. The floor keeps lock striping
// effective on small machines; the ceiling bounds per-shard overhead.
func DefaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n {
		s <<= 1
	}
	if s < 8 {
		s = 8
	}
	if s > 256 {
		s = 256
	}
	return s
}

// Open opens (or creates) a store with DefaultShardCount shards. With a
// non-empty dir, points are persisted to an append-only log inside it and
// replayed on open. With an empty dir the store is memory-only.
func Open(dir string) (*DB, error) {
	return OpenSharded(dir, 0)
}

// OpenSharded opens a store with an explicit shard count (rounded up to a
// power of two; <= 0 selects DefaultShardCount). A shard count of 1
// reproduces the single-lock store, which the benchmarks use as baseline.
func OpenSharded(dir string, shards int) (*DB, error) {
	if shards <= 0 {
		shards = DefaultShardCount()
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	db := &DB{shards: make([]shard, n), mask: uint32(n - 1)}
	for i := range db.shards {
		db.shards[i].series = make(map[SeriesKey]*series)
	}
	if dir == "" {
		return db, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: creating dir: %w", err)
	}
	path := filepath.Join(dir, "points.wal")
	if err := db.replay(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tsdb: opening wal: %w", err)
	}
	db.walF = f
	db.wal = bufio.NewWriterSize(f, 1<<16)
	return db, nil
}

// ShardCount returns the number of lock stripes.
func (db *DB) ShardCount() int { return len(db.shards) }

// Generation returns a counter that increases whenever a point is stored.
// Read-side caches compare generations to detect that cached results are
// still current.
func (db *DB) Generation() uint64 { return db.gen.Load() }

// shardIndex hashes the key (FNV-1a over the canonical form, without
// materializing it) onto a shard index.
func (db *DB) shardIndex(k SeriesKey) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= prime32
		}
		h ^= '|'
		h *= prime32
	}
	mix(k.Dataset)
	mix(k.Type)
	mix(k.Region)
	mix(k.AZ)
	return h & db.mask
}

func (db *DB) shardFor(k SeriesKey) *shard {
	return &db.shards[db.shardIndex(k)]
}

// walRecord layout: u32 crc | u16 keyLen | key bytes | i64 unixNano | f64 bits.
func appendRecord(buf []byte, key string, at time.Time, v float64) []byte {
	payload := make([]byte, 0, 2+len(key)+16)
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(key)))
	payload = append(payload, tmp[:2]...)
	payload = append(payload, key...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(at.UnixNano()))
	payload = append(payload, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	payload = append(payload, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(payload))
	buf = append(buf, tmp[:4]...)
	return append(buf, payload...)
}

// replay loads the log, tolerating a truncated trailing record (crash).
// It runs single-threaded during Open, before the store is shared.
func (db *DB) replay(path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("tsdb: opening wal for replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	var head [6]byte
	for {
		if _, err := io.ReadFull(r, head[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil // clean end or truncated header: stop replay
			}
			return fmt.Errorf("tsdb: replay: %w", err)
		}
		crc := binary.LittleEndian.Uint32(head[:4])
		keyLen := int(binary.LittleEndian.Uint16(head[4:6]))
		body := make([]byte, keyLen+16)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil // truncated record: ignore tail
		}
		full := make([]byte, 0, 2+len(body))
		full = append(full, head[4:6]...)
		full = append(full, body...)
		if crc32.ChecksumIEEE(full) != crc {
			return nil // corrupt tail: stop replay
		}
		key := string(body[:keyLen])
		at := time.Unix(0, int64(binary.LittleEndian.Uint64(body[keyLen:keyLen+8]))).UTC()
		v := math.Float64frombits(binary.LittleEndian.Uint64(body[keyLen+8:]))
		k, err := ParseSeriesKey(key)
		if err != nil {
			continue
		}
		sh := db.shardFor(k)
		s := sh.series[k]
		if s == nil {
			s = &series{}
			sh.series[k] = s
		}
		s.points = append(s.points, Point{At: at, Value: v})
		sh.points++
		db.gen.Add(1)
	}
}

// maxKeyBytes bounds the canonical key form: both the WAL and the snapshot
// codec store key lengths as uint16, so longer keys would silently
// truncate into unreadable records.
const maxKeyBytes = 1<<16 - 1

func validKey(k SeriesKey) error {
	if k.Dataset == "" || k.Type == "" || k.Region == "" {
		return fmt.Errorf("tsdb: incomplete series key %v", k)
	}
	if len(k.Dataset)+len(k.Type)+len(k.Region)+len(k.AZ)+3 > maxKeyBytes {
		return fmt.Errorf("tsdb: series key exceeds %d bytes", maxKeyBytes)
	}
	return nil
}

// appendLocked stores one point into sh, which the caller has write-locked.
func (db *DB) appendLocked(sh *shard, k SeriesKey, at time.Time, v float64) error {
	if db.closed.Load() {
		return errors.New("tsdb: store is closed")
	}
	s := sh.series[k]
	if s == nil {
		s = &series{}
		sh.series[k] = s
	}
	if n := len(s.points); n > 0 && at.Before(s.points[n-1].At) {
		return fmt.Errorf("tsdb: out-of-order append to %v: %v before %v", k, at, s.points[n-1].At)
	}
	s.points = append(s.points, Point{At: at, Value: v})
	sh.points++
	db.gen.Add(1)
	if db.wal != nil {
		rec := appendRecord(nil, k.String(), at, v)
		db.walMu.Lock()
		_, err := db.wal.Write(rec)
		db.walMu.Unlock()
		if err != nil {
			return fmt.Errorf("tsdb: wal write: %w", err)
		}
	}
	return nil
}

// Append records a point. Appends must be time-ordered per series; an
// append earlier than the series' last point is rejected.
func (db *DB) Append(k SeriesKey, at time.Time, v float64) error {
	if err := validKey(k); err != nil {
		return err
	}
	sh := db.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.appendLocked(sh, k, at, v)
}

// AppendIfChanged records the point only when its value differs from the
// series' last value (or the series is empty). It reports whether the point
// was stored. This is how the collector turns 10-minute samples into change
// events, which both bounds storage and makes Figure 10's
// time-between-changes analysis a direct read of the series.
func (db *DB) AppendIfChanged(k SeriesKey, at time.Time, v float64) (bool, error) {
	if err := validKey(k); err != nil {
		return false, err
	}
	sh := db.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s := sh.series[k]; s != nil && len(s.points) > 0 && s.points[len(s.points)-1].Value == v {
		return false, nil
	}
	if err := db.appendLocked(sh, k, at, v); err != nil {
		return false, err
	}
	return true, nil
}

// AppendBatch stores the entries, grouping them by shard so each shard
// lock is acquired once per batch rather than once per point. Entries keep
// their input order within a shard, so per-series time ordering of the
// input is preserved. It returns how many points were stored and the first
// error encountered; later entries are still attempted after an error.
func (db *DB) AppendBatch(entries []Entry) (int, error) {
	return db.appendBatch(entries, false)
}

// AppendBatchIfChanged is AppendBatch with AppendIfChanged's semantics:
// an entry whose value equals its series' current last value is skipped.
func (db *DB) AppendBatchIfChanged(entries []Entry) (int, error) {
	return db.appendBatch(entries, true)
}

func (db *DB) appendBatch(entries []Entry, dedup bool) (int, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	// Stable counting sort of entry indices by shard: input order is
	// preserved within a shard (so per-series time order survives), and
	// no per-call maps are allocated. Invalid keys land in bucket ns.
	ns := len(db.shards)
	var firstErr error
	shardOf := make([]uint32, len(entries))
	counts := make([]int, ns+1)
	for i := range entries {
		si := uint32(ns)
		if err := validKey(entries[i].Key); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			si = db.shardIndex(entries[i].Key)
		}
		shardOf[i] = si
		counts[si]++
	}
	pos := make([]int, ns+1)
	sum := 0
	for s := 0; s <= ns; s++ {
		pos[s] = sum
		sum += counts[s]
	}
	order := make([]int32, len(entries))
	fill := append([]int(nil), pos...)
	for i := range entries {
		s := shardOf[i]
		order[fill[s]] = int32(i)
		fill[s]++
	}
	stored := 0
	for s := 0; s < ns; s++ {
		lo, hi := pos[s], pos[s]+counts[s]
		if lo == hi {
			continue
		}
		sh := &db.shards[s]
		sh.mu.Lock()
		for _, i := range order[lo:hi] {
			e := &entries[i]
			if dedup {
				if sr := sh.series[e.Key]; sr != nil && len(sr.points) > 0 && sr.points[len(sr.points)-1].Value == e.Value {
					continue
				}
			}
			if err := db.appendLocked(sh, e.Key, e.At, e.Value); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			stored++
		}
		sh.mu.Unlock()
	}
	return stored, firstErr
}

// Query returns the points of a series within [from, to], oldest first.
func (db *DB) Query(k SeriesKey, from, to time.Time) []Point {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return nil
	}
	lo := sort.Search(len(s.points), func(i int) bool { return !s.points[i].At.Before(from) })
	hi := sort.Search(len(s.points), func(i int) bool { return s.points[i].At.After(to) })
	if lo >= hi {
		return nil
	}
	out := make([]Point, hi-lo)
	copy(out, s.points[lo:hi])
	return out
}

// ValueAt returns the series' value at time t under step semantics: the
// value of the latest point at or before t. ok is false before the first
// point or for an unknown series.
func (db *DB) ValueAt(k SeriesKey, t time.Time) (v float64, ok bool) {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return 0, false
	}
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].At.After(t) })
	if i == 0 {
		return 0, false
	}
	return s.points[i-1].Value, true
}

// WindowMean returns the time-weighted mean of the step function over
// [from, to). ok is false when the series has no value anywhere in the
// window.
func (db *DB) WindowMean(k SeriesKey, from, to time.Time) (mean float64, ok bool) {
	if !to.After(from) {
		return 0, false
	}
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil || len(s.points) == 0 {
		return 0, false
	}
	pts := s.points
	// Index of first point after from.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].At.After(from) })
	var cur float64
	var curSet bool
	cursor := from
	if i > 0 {
		cur = pts[i-1].Value
		curSet = true
	}
	total := 0.0
	weight := 0.0
	for ; i < len(pts) && pts[i].At.Before(to); i++ {
		if curSet {
			d := pts[i].At.Sub(cursor).Seconds()
			total += cur * d
			weight += d
		}
		cur = pts[i].Value
		curSet = true
		cursor = pts[i].At
	}
	if curSet {
		d := to.Sub(cursor).Seconds()
		total += cur * d
		weight += d
	}
	if weight == 0 {
		return 0, false
	}
	return total / weight, true
}

// Grid samples the step function at from, from+step, ... up to and
// including to. Instants before the first point yield NaN.
func (db *DB) Grid(k SeriesKey, from, to time.Time, step time.Duration) []float64 {
	if step <= 0 || to.Before(from) {
		return nil
	}
	var out []float64
	for t := from; !t.After(to); t = t.Add(step) {
		if v, ok := db.ValueAt(k, t); ok {
			out = append(out, v)
		} else {
			out = append(out, math.NaN())
		}
	}
	return out
}

// ChangeIntervals returns the durations between consecutive points of the
// series. When points are appended via AppendIfChanged these are the
// value-change intervals of Figure 10.
func (db *DB) ChangeIntervals(k SeriesKey) []time.Duration {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil || len(s.points) < 2 {
		return nil
	}
	out := make([]time.Duration, 0, len(s.points)-1)
	for i := 1; i < len(s.points); i++ {
		out = append(out, s.points[i].At.Sub(s.points[i-1].At))
	}
	return out
}

// Last returns the most recent point of the series.
func (db *DB) Last(k SeriesKey) (Point, bool) {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil || len(s.points) == 0 {
		return Point{}, false
	}
	return s.points[len(s.points)-1], true
}

// KeyFilter selects series keys; empty fields match anything.
type KeyFilter struct {
	Dataset string
	Type    string
	Region  string
	AZ      string
}

func (f KeyFilter) matches(k SeriesKey) bool {
	return (f.Dataset == "" || f.Dataset == k.Dataset) &&
		(f.Type == "" || f.Type == k.Type) &&
		(f.Region == "" || f.Region == k.Region) &&
		(f.AZ == "" || f.AZ == k.AZ)
}

// Keys returns the series keys matching the filter, sorted canonically.
// Shards are visited one at a time; no global lock is held.
func (db *DB) Keys(f KeyFilter) []SeriesKey {
	var out []SeriesKey
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for k := range sh.series {
			if f.matches(k) {
				out = append(out, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// SeriesCount returns the number of series.
func (db *DB) SeriesCount() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += len(sh.series)
		sh.mu.RUnlock()
	}
	return n
}

// PointCount returns the total number of stored points, aggregated from
// the per-shard counters.
func (db *DB) PointCount() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += sh.points
		sh.mu.RUnlock()
	}
	return n
}

// MaxTime returns the latest point timestamp anywhere in the store. ok is
// false for an empty store. Snapshot-loading services use it to fast-forward
// their clock past the restored data.
func (db *DB) MaxTime() (time.Time, bool) {
	var max time.Time
	found := false
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			if n := len(s.points); n > 0 {
				if at := s.points[n-1].At; !found || at.After(max) {
					max, found = at, true
				}
			}
		}
		sh.mu.RUnlock()
	}
	return max, found
}

// Flush forces buffered log records to the operating system.
func (db *DB) Flush() error {
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.wal == nil {
		return nil
	}
	if err := db.wal.Flush(); err != nil {
		return err
	}
	return db.walF.Sync()
}

// Close flushes and closes the store. Further writes fail. Close quiesces
// every shard so no append is mid-flight when the WAL is closed.
func (db *DB) Close() error {
	db.closed.Store(true)
	for i := range db.shards {
		db.shards[i].mu.Lock()
	}
	defer func() {
		for i := range db.shards {
			db.shards[i].mu.Unlock()
		}
	}()
	db.walMu.Lock()
	defer db.walMu.Unlock()
	if db.wal == nil {
		return nil
	}
	if err := db.wal.Flush(); err != nil {
		return err
	}
	return db.walF.Close()
}
