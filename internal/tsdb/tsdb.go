// Package tsdb is an embedded time-series database, the stand-in for the
// Amazon Timestream service in SpotLake's architecture (paper Figure 2).
//
// The archive's datasets are step functions: a placement score, advisor
// bucket, or spot price holds its value until the next recorded change. The
// store therefore keeps one append-only, time-ordered point slice per
// series, deduplicates consecutive equal values on request, and answers
// range queries, step-aware value-at-time lookups, window means, and
// change-interval extractions (the primitives behind Figures 3, 4, 5, 8, 9
// and 10). An optional write-ahead log gives durable persistence with
// crash-safe replay.
//
// # Sharding
//
// The store is lock-striped: series keys hash (FNV-1a over the canonical
// key form) onto a power-of-two number of shards near GOMAXPROCS, each
// shard owning its own mutex, series map, and point counter. Collector
// writes and archive reads touching different shards never contend, and
// the aggregate statistics (SeriesCount, PointCount, Keys, MaxTime) are
// computed by visiting shards one at a time without any global lock.
// AppendBatch groups a tick's worth of points by shard so each shard lock
// is taken once per batch instead of once per point. Every shard carries
// its own monotonically increasing generation counter (ShardGeneration),
// bumped on every point stored into it, and the store tracks a separate
// key-set generation (KeyGeneration) bumped whenever a new series is
// created anywhere; read-side caches combine the two to detect staleness
// at shard granularity instead of store granularity.
//
// # Durability
//
// The write-ahead log is segmented per shard and rotates (see wal.go):
// shard i appends to its active wal-<i>-<seq>.log under shard i's lock,
// so durable appends to different shards never serialize against each
// other, and the active segment seals and a new one opens once it exceeds
// RotateBytes. A versioned MANIFEST names the layout; snapshots double as
// checkpoints (Checkpoint) that bound recovery to "load snapshot + replay
// per-shard segment-chain tails", and checkpoint compaction deletes
// covered sealed segments instead of rewriting files. The store maintains
// itself (see maintain.go): a daemon started by OpenWithOptions
// checkpoints when the un-checkpointed WAL crosses
// Options.CheckpointAfterBytes or a shard's sealed chain reaches
// Options.MaxSealedSegments, and the chain cap is enforced synchronously
// on the append path — no caller cooperation needed for bounded replay
// tails or bounded sealed-segment disk use.
//
// # Snapshots
//
// Beyond the WAL, a populated store can be persisted as a one-pass binary
// snapshot (see snapshot.go): a versioned, CRC-checked, length-prefixed
// dump of every series. Loading a snapshot is much faster than replaying
// an equivalent WAL because points arrive grouped by series and are
// validated per record rather than per point.
package tsdb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Dataset names used by the SpotLake collector. The store accepts any
// dataset string; these are the conventional ones.
const (
	DatasetPlacementScore = "sps"
	DatasetInterruptFree  = "if"
	DatasetPrice          = "price"
	DatasetSavings        = "savings"
)

// SeriesKey identifies one time series. AZ is empty for region-granular
// datasets (the advisor data); Region is always set.
type SeriesKey struct {
	Dataset string
	Type    string
	Region  string
	AZ      string
}

// String renders the key in its canonical "dataset|type|region|az" form.
func (k SeriesKey) String() string {
	return k.Dataset + "|" + k.Type + "|" + k.Region + "|" + k.AZ
}

// ParseSeriesKey parses the canonical key form.
func ParseSeriesKey(s string) (SeriesKey, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 4 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return SeriesKey{}, fmt.Errorf("tsdb: malformed series key %q", s)
	}
	return SeriesKey{Dataset: parts[0], Type: parts[1], Region: parts[2], AZ: parts[3]}, nil
}

// Point is one sample of a series.
type Point struct {
	At    time.Time
	Value float64
}

// Entry is one point addressed to a series, the unit of batched appends.
type Entry struct {
	Key   SeriesKey
	At    time.Time
	Value float64
}

type series struct {
	// points is the in-memory tail of the series (all of it until the
	// first seal). Sealed history lives compressed on disk behind cold.
	points []Point
	// cold is the series' sealed history, nil until a checkpoint seals
	// one: block metadata only — the points themselves stay on disk and
	// decode on demand through the store's block cache. A point's global
	// index is cold.n + its offset in points; the read paths resolve the
	// two tiers through the shared search/fetch helpers below.
	cold *coldSeries
}

// shard is one lock stripe: a mutex, its series, local statistics, and —
// for durable stores — its own rotating WAL segment chain. Segment writes
// happen under the shard's write lock, so the record order in the chain is
// identical to shard i's memory order with no extra mutex, and appends to
// different shards never serialize against a shared log.
type shard struct {
	mu     sync.RWMutex
	series map[SeriesKey]*series
	points int
	gen    atomic.Uint64

	// idx is this shard's index in db.shards, fixed at open; rotation
	// needs it to name the next segment file without pointer arithmetic.
	idx int

	// Durable state, nil for memory-only stores. walSeq is the active
	// segment's sequence number; walBase is the logical offset of its
	// first record (records before it live in earlier segments or the
	// latest checkpoint snapshot); walOff is the logical end offset, i.e.
	// walBase + payload bytes appended since the file's header. Offsets
	// count only record bytes, never headers. sealed lists the shard's
	// sealed segments still on disk, oldest first — checkpoint unlinks
	// the ones its snapshot fully covers. cpBytes counts record bytes
	// appended since the last committed checkpoint, feeding the
	// size-based checkpoint trigger.
	wal     *bufio.Writer
	walF    *os.File
	walSeq  uint64
	walBase uint64
	walOff  uint64
	sealed  []sealedSeg
	cpBytes atomic.Uint64

	// sealedN mirrors len(sealed) atomically so the maintainer and the
	// append path's chain-cap check can read chain lengths without the
	// shard lock. Updated via DB.setSealed wherever sealed changes.
	sealedN atomic.Int64
}

// DB is the time-series store. It is safe for concurrent use.
type DB struct {
	shards []shard
	mask   uint32
	keyGen atomic.Uint64
	closed atomic.Bool

	// Durable layout state. dir is empty for memory-only stores. man is
	// the manifest as last committed; cpMu serializes Checkpoint, layout
	// commits, and manifest replacement. epoch mirrors man.Epoch but is
	// written only while Open owns the store single-threaded, so the
	// rotation fast path can read it under just a shard lock. readOnly
	// marks a store opened with Options.ReadOnly: it loads a committed
	// layout without owning it (no appends, checkpoints, migrations, or
	// file reclamation).
	dir         string
	readOnly    bool
	cpMu        sync.Mutex
	man         manifest
	epoch       uint64
	rotateBytes int64

	// Cold-tier state (see block.go). bcache is the store-wide LRU over
	// decoded blocks; coldSegs the open block files (appended under cpMu
	// at seal time, closed by Close under all shard locks). hotTail,
	// blockPoints, and sealAfterHot are fixed at open. hotPts/coldPts
	// mirror the resident-vs-sealed split of the per-shard point
	// counters; sealedBlks and coldBytes count sealed blocks and their
	// compressed on-disk bytes; coldErrs counts cold reads that failed
	// (bit rot, vanished file) and were degraded to hot-only results.
	// sealFloor is the store's hot point count right after the last
	// checkpoint, so the seal trigger fires on hot growth since then
	// rather than on an absolute size a full hot tail can never drop
	// below. scanned counts points materialized by reads (hot copies and
	// decoded-block windows) — the resolution tiers exist to shrink it,
	// and the rollup tests assert the shrink through it.
	bcache       *blockCache
	coldSegs     []*coldSegment
	hotTail      int
	blockPoints  int
	sealAfterHot int64
	hotPts       atomic.Int64
	coldPts      atomic.Int64
	sealedBlks   atomic.Int64
	coldBytes    atomic.Int64
	coldErrs     obs.Counter
	scanned      obs.Counter
	sealFloor    atomic.Int64
	maintBySeal  obs.Counter

	// replayedBytes counts the WAL record bytes the last Open replayed
	// beyond the checkpoint cut — the observable size of the recovery
	// tail that checkpointing (time- or size-triggered) bounds.
	replayedBytes obs.Counter

	// rotateFails counts segment rotations that failed on the append
	// path. The appends themselves succeed (the record is durable in the
	// still-active segment), so the failure is surfaced here instead of
	// through their error returns.
	rotateFails obs.Counter

	// Maintenance state (see maintain.go). cpAfterBytes and maxSealed are
	// the trigger thresholds, fixed at open; chainOver counts shards whose
	// sealed chain sits at or past the cap (the append path's one-load
	// trigger check). The channels belong to the daemon goroutine.
	cpAfterBytes int64
	maxSealed    int
	chainOver    atomic.Int64
	// maintRetryAt (UnixNano) gates the append path's enforcement after
	// a failed maintenance checkpoint: a trigger stays latched until a
	// checkpoint succeeds, and without the gate every append would
	// synchronously re-attempt a full snapshot against e.g. a full disk.
	maintRetryAt atomic.Int64
	// cpBytesTotal mirrors the sum of the per-shard cpBytes counters so
	// the append path can evaluate the byte trigger with one atomic load
	// (summing 256 shards per append would not be free). The per-shard
	// counters remain authoritative for checkpoint's exact per-shard
	// capture accounting; every site that moves one moves the other.
	cpBytesTotal atomic.Uint64
	maintWake    chan struct{}
	maintStop    chan struct{}
	maintDone    chan struct{}
	maintCP      obs.Counter
	maintByBytes obs.Counter
	maintByChain obs.Counter
	maintErrs    obs.Counter

	// Rollup and retention state (see rollup.go). rollup is the nested
	// store holding the materialized downsample series, nil when the
	// store does not maintain rollups (memory-only, sealing disabled, or
	// being a rollup store itself). retain maps retained datasets to
	// their live retention state; nil when no retention is configured.
	// Both are fixed at open.
	rollup     *DB
	retain     map[string]*retentionState
	maintByRet obs.Counter

	// testCrash, when armed by the crash-matrix tests, aborts the
	// rotation/checkpoint protocol at a named durable boundary. Nil in
	// production.
	testCrash func(point string) error
}

// DefaultShardCount is the shard count used by Open: the smallest power of
// two >= GOMAXPROCS, clamped to [8, 256]. The floor keeps lock striping
// effective on small machines; the ceiling bounds per-shard overhead.
func DefaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n {
		s <<= 1
	}
	if s < 8 {
		s = 8
	}
	if s > 256 {
		s = 256
	}
	return s
}

// DefaultRotateBytes is the segment rotation threshold used when Options
// leaves RotateBytes zero: the active WAL segment seals and a new one
// opens once it holds this many record bytes. Small enough that a
// checkpoint can reclaim most of a write-heavy tail by unlinking sealed
// segments; large enough that rotation stays off the hot path for
// ordinary collection cadences.
const DefaultRotateBytes = 8 << 20

// DefaultHotTailPoints is the per-series hot tail kept in memory when
// Options leaves HotTailPoints zero. Checkpoint seals older points into
// compressed blocks; the tail keeps recent-window queries, dedup checks,
// and out-of-order validation entirely in memory.
const DefaultHotTailPoints = 256

// DefaultBlockPoints is the sealed block size (points per block) when
// Options leaves BlockPoints zero. Bigger blocks compress better and
// shrink the in-memory index; smaller blocks make narrow cold reads
// decode less. Only whole blocks seal — a partial remainder stays hot.
const DefaultBlockPoints = 512

// Options configures OpenWithOptions.
type Options struct {
	// Shards is the lock-stripe count, rounded up to a power of two;
	// <= 0 selects DefaultShardCount. A shard count of 1 reproduces the
	// single-lock store, which the benchmarks use as baseline.
	Shards int
	// RotateBytes is the active segment's rotation threshold in record
	// bytes: 0 selects DefaultRotateBytes, negative disables rotation
	// (one ever-growing segment per shard, the pre-rotation behavior).
	RotateBytes int64
	// CheckpointAfterBytes, when positive on a durable store, makes the
	// store checkpoint itself once WALBytesSinceCheckpoint crosses the
	// threshold — regardless of who is writing (collector, bootstrap,
	// bulk snapshot restore). Zero disables the store's own size trigger
	// (callers may still schedule checkpoints themselves).
	CheckpointAfterBytes int64
	// MaxSealedSegments, when positive on a durable store, caps each
	// shard's sealed-segment chain: an append that observes a shard at
	// the cap checkpoints first (reclaiming every covered segment), so no
	// shard ever accumulates more than this many sealed segments even if
	// nothing else calls Checkpoint. Zero means no cap.
	MaxSealedSegments int
	// MaintenanceInterval is the maintenance daemon's poll period: 0
	// selects DefaultMaintenanceInterval, negative disables the daemon
	// (the append-path chain-cap enforcement still applies). The daemon
	// only starts when the store is durable and at least one of
	// CheckpointAfterBytes / MaxSealedSegments / SealAfterHotPoints is
	// set.
	MaintenanceInterval time.Duration
	// HotTailPoints is the per-series in-memory tail a checkpoint keeps
	// when sealing history into compressed blocks: 0 selects
	// DefaultHotTailPoints, negative disables sealing entirely (every
	// point stays hot, the pre-block-tier behavior). The tail is never
	// smaller than one point, so Last, dedup, and the out-of-order check
	// stay in-memory for live series.
	HotTailPoints int
	// BlockPoints is the sealed block size in points: 0 selects
	// DefaultBlockPoints; values are clamped to [2, 65536].
	BlockPoints int
	// BlockCacheBytes bounds the decoded-block LRU cache: 0 selects
	// DefaultBlockCacheBytes, negative disables caching (cold reads
	// decode every time).
	BlockCacheBytes int64
	// SealAfterHotPoints, when positive on a durable store with sealing
	// enabled, checkpoints (and therefore seals) once the store-wide hot
	// point count has grown by this many points since the last
	// checkpoint — the memory-bound seal trigger that joins the
	// byte/chain triggers in the maintenance daemon and the append-path
	// enforcement. Zero disables the trigger (checkpoints triggered any
	// other way still seal).
	SealAfterHotPoints int64
	// RetainRaw sets per-dataset retention horizons for raw points:
	// once a dataset's rollups cover them, raw cold blocks wholly older
	// than horizon behind the dataset's newest point are dropped by the
	// maintenance cycle. Requires a durable store with sealing enabled
	// (raw points are only ever dropped from the cold tier, and never
	// before a committed rollup covers them). Horizons must be positive.
	RetainRaw map[string]time.Duration
	// ReadOnly opens an existing durable layout without taking ownership
	// of it: no segment files are created, truncated, or reclaimed, no
	// layout migration or checkpoint ever runs, appends and snapshot
	// loads are rejected, and the maintenance daemon stays off. The open
	// fails if the directory holds no committed (current-version)
	// manifest. Replication followers use it to serve a replica whose
	// files a puller replaces between reopens (see replication.go).
	ReadOnly bool
	// noRollups marks the nested rollup store itself, which must not
	// recurse into opening a rollup store of its own.
	noRollups bool
}

// Open opens (or creates) a store with DefaultShardCount shards. With a
// non-empty dir, points are persisted to an append-only log inside it and
// replayed on open. With an empty dir the store is memory-only.
func Open(dir string) (*DB, error) {
	return OpenWithOptions(dir, Options{})
}

// OpenSharded opens a store with an explicit shard count; see Options.
func OpenSharded(dir string, shards int) (*DB, error) {
	return OpenWithOptions(dir, Options{Shards: shards})
}

// OpenWithOptions opens a store with explicit tuning.
func OpenWithOptions(dir string, o Options) (*DB, error) {
	shards := o.Shards
	if shards <= 0 {
		shards = DefaultShardCount()
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	db := &DB{shards: make([]shard, n), mask: uint32(n - 1)}
	db.rotateBytes = o.RotateBytes
	if db.rotateBytes == 0 {
		db.rotateBytes = DefaultRotateBytes
	}
	db.cpAfterBytes = o.CheckpointAfterBytes
	db.maxSealed = o.MaxSealedSegments
	db.hotTail = o.HotTailPoints
	switch {
	case db.hotTail == 0:
		db.hotTail = DefaultHotTailPoints
	case db.hotTail < 0:
		db.hotTail = -1 // sealing disabled
	}
	db.blockPoints = o.BlockPoints
	if db.blockPoints <= 0 {
		db.blockPoints = DefaultBlockPoints
	}
	if db.blockPoints < 2 {
		db.blockPoints = 2
	}
	if db.blockPoints > maxBlockPoints {
		db.blockPoints = maxBlockPoints
	}
	db.sealAfterHot = o.SealAfterHotPoints
	cacheBytes := o.BlockCacheBytes
	if cacheBytes == 0 {
		cacheBytes = DefaultBlockCacheBytes
	}
	db.bcache = newBlockCache(cacheBytes)
	db.maintWake = make(chan struct{}, 1)
	for i := range db.shards {
		db.shards[i].idx = i
		db.shards[i].series = make(map[SeriesKey]*series)
	}
	if dir == "" {
		if o.ReadOnly {
			return nil, errors.New("tsdb: read-only open requires a durable directory")
		}
		if len(o.RetainRaw) > 0 {
			return nil, errors.New("tsdb: retention requires a durable store with sealing enabled")
		}
		return db, nil
	}
	db.readOnly = o.ReadOnly
	if db.readOnly && len(o.RetainRaw) > 0 {
		return nil, errors.New("tsdb: a read-only store cannot enforce retention")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tsdb: creating dir: %w", err)
	}
	db.dir = dir
	if len(o.RetainRaw) > 0 {
		if !db.SealsCold() || o.noRollups {
			return nil, errors.New("tsdb: retention requires a durable store with sealing enabled")
		}
		for ds, h := range o.RetainRaw {
			if ds == "" || h <= 0 {
				return nil, fmt.Errorf("tsdb: invalid retention horizon %v for dataset %q", h, ds)
			}
		}
	}
	if err := db.openDurable(); err != nil {
		return nil, err
	}
	// Arm the seal trigger relative to the recovered hot tail: what
	// survived recovery unsealed is the residual, not growth.
	db.sealFloor.Store(db.hotPts.Load())
	switch {
	case db.readOnly && !o.noRollups:
		// A replica only has a rollup tier if the primary shipped one:
		// open it read-only when its manifest exists, else serve raw only.
		if _, err := os.Stat(filepath.Join(dir, "rollup", manifestName)); err == nil {
			ro, err := OpenWithOptions(filepath.Join(dir, "rollup"), Options{
				Shards:              4,
				ReadOnly:            true,
				MaintenanceInterval: -1,
				noRollups:           true,
			})
			if err != nil {
				db.Close()
				return nil, fmt.Errorf("tsdb: opening rollup store: %w", err)
			}
			db.rollup = ro
		}
	case db.SealsCold() && !o.noRollups:
		// The rollup tier is itself a store, nested one directory down:
		// small and fixed shard count (few series, metadata-light), its
		// own byte-triggered checkpoints via the append path (no daemon —
		// the parent's maintenance cycle drives it), and the recursion
		// guard so it does not open a rollup store of its own.
		ro, err := OpenWithOptions(filepath.Join(dir, "rollup"), Options{
			Shards:               4,
			RotateBytes:          1 << 20,
			CheckpointAfterBytes: 4 << 20,
			MaintenanceInterval:  -1,
			noRollups:            true,
		})
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("tsdb: opening rollup store: %w", err)
		}
		db.rollup = ro
		db.initRetention(o.RetainRaw)
		// Catch up before the store is shared: a crash mid-build or
		// mid-retention left the raw tier authoritative; rebuilding here
		// restores the rollup frontier idempotently (per-aggregate
		// high-water marks), and the committed cuts then re-drop blocks
		// that partially-dead block files re-attached.
		db.cpMu.Lock()
		cov, err := db.buildRollupsLocked()
		if err == nil {
			db.applyRetainCutsLocked(cov)
		}
		db.cpMu.Unlock()
		if err != nil {
			db.Close()
			return nil, err
		}
	}
	if !db.readOnly {
		db.startMaintainer(o.MaintenanceInterval)
	}
	return db, nil
}

// ShardCount returns the number of lock stripes.
func (db *DB) ShardCount() int { return len(db.shards) }

// Durable reports whether the store persists to disk (opened with a
// non-empty directory).
func (db *DB) Durable() bool { return db.dir != "" }

// RotateBytes returns the effective segment rotation threshold (negative
// when rotation is disabled).
func (db *DB) RotateBytes() int64 { return db.rotateBytes }

// WALBytesSinceCheckpoint returns the WAL record bytes appended since the
// last committed checkpoint — the size of the tail a restart would have
// to replay. Size-based checkpoint schedulers compare it against their
// threshold after each write burst; it resets (by the captured amount)
// when a checkpoint commits. One atomic load.
func (db *DB) WALBytesSinceCheckpoint() uint64 {
	return db.cpBytesTotal.Load()
}

// ReplayedWALBytes returns how many WAL record bytes the Open that created
// this store replayed beyond its checkpoint cut — the realized recovery
// tail. Zero for memory-only stores and for opens that bulk-loaded a
// checkpoint covering everything.
func (db *DB) ReplayedWALBytes() uint64 { return db.replayedBytes.Value() }

// RotateFailures returns how many segment rotations have failed since
// open. The affected appends succeeded (their records are durable in the
// still-active segment, which keeps growing until a rotation succeeds);
// a climbing counter means the store cannot create new segment files —
// disk full or permissions — and checkpoints have stopped reclaiming
// space.
func (db *DB) RotateFailures() uint64 { return db.rotateFails.Value() }

// ShardGeneration returns the generation counter of one shard; it
// increases whenever a point is stored into that shard.
func (db *DB) ShardGeneration(i int) uint64 { return db.shards[i].gen.Load() }

// ShardGenerations returns a snapshot of every shard's generation counter,
// indexed by shard. Each element is read atomically; the vector as a whole
// is not an atomic cut, which is fine for staleness checks as long as the
// vector is captured before the guarded read (a racing write then makes
// the cached result stale immediately, never the reverse).
func (db *DB) ShardGenerations() []uint64 {
	out := make([]uint64, len(db.shards))
	for i := range db.shards {
		out[i] = db.shards[i].gen.Load()
	}
	return out
}

// KeyGeneration returns a counter that increases whenever a new series is
// created anywhere in the store. Filter-based caches must include it in
// their staleness check: a new series can match an existing filter while
// living in a shard the cached result never touched.
func (db *DB) KeyGeneration() uint64 { return db.keyGen.Load() }

// ShardIndexOf returns the shard index the key hashes to.
func (db *DB) ShardIndexOf(k SeriesKey) int { return int(db.shardIndex(k)) }

// shardIndex hashes the key (FNV-1a over the canonical form, without
// materializing it) onto a shard index.
func (db *DB) shardIndex(k SeriesKey) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint32(s[i])
			h *= prime32
		}
		h ^= '|'
		h *= prime32
	}
	mix(k.Dataset)
	mix(k.Type)
	mix(k.Region)
	mix(k.AZ)
	return h & db.mask
}

func (db *DB) shardFor(k SeriesKey) *shard {
	return &db.shards[db.shardIndex(k)]
}

// walRecord layout: u32 crc | u16 keyLen | key bytes | i64 unixNano | f64 bits.
func appendRecord(buf []byte, key string, at time.Time, v float64) []byte {
	payload := make([]byte, 0, 2+len(key)+16)
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(key)))
	payload = append(payload, tmp[:2]...)
	payload = append(payload, key...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(at.UnixNano()))
	payload = append(payload, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	payload = append(payload, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(payload))
	buf = append(buf, tmp[:4]...)
	return append(buf, payload...)
}

// maxKeyBytes bounds the canonical key form: both the WAL and the snapshot
// codec store key lengths as uint16, so longer keys would silently
// truncate into unreadable records.
const maxKeyBytes = 1<<16 - 1

func validKey(k SeriesKey) error {
	if k.Dataset == "" || k.Type == "" || k.Region == "" {
		return fmt.Errorf("tsdb: incomplete series key %v", k)
	}
	if len(k.Dataset)+len(k.Type)+len(k.Region)+len(k.AZ)+3 > maxKeyBytes {
		return fmt.Errorf("tsdb: series key exceeds %d bytes", maxKeyBytes)
	}
	return nil
}

// appendLocked stores one point into sh, which the caller has write-locked.
// The WAL write goes to the shard's own segment under the same lock, so
// durable appends to different shards proceed fully in parallel.
func (db *DB) appendLocked(sh *shard, k SeriesKey, at time.Time, v float64) error {
	if db.closed.Load() {
		return errors.New("tsdb: store is closed")
	}
	// Guard memory as well as the WAL: a read-only store has no open
	// segment (sh.wal is nil), so without this check an append would
	// "succeed" in memory and silently vanish at the next reopen.
	if db.readOnly {
		return errors.New("tsdb: read-only store rejects appends")
	}
	s := sh.series[k]
	if s == nil {
		s = &series{}
		sh.series[k] = s
		db.keyGen.Add(1)
	}
	if n := len(s.points); n > 0 {
		if at.Before(s.points[n-1].At) {
			return fmt.Errorf("tsdb: out-of-order append to %v: %v before %v", k, at, s.points[n-1].At)
		}
	} else if s.cold != nil && at.Before(s.cold.lastAt) {
		return fmt.Errorf("tsdb: out-of-order append to %v: %v before sealed %v", k, at, s.cold.lastAt)
	}
	s.points = append(s.points, Point{At: at, Value: v})
	sh.points++
	db.hotPts.Add(1)
	sh.gen.Add(1)
	if len(db.retain) > 0 {
		db.noteAppend(k.Dataset, at)
	}
	if sh.wal != nil {
		rec := appendRecord(nil, k.String(), at, v)
		if _, err := sh.wal.Write(rec); err != nil {
			return fmt.Errorf("tsdb: wal write: %w", err)
		}
		sh.walOff += uint64(len(rec))
		sh.cpBytes.Add(uint64(len(rec)))
		db.cpBytesTotal.Add(uint64(len(rec)))
		if db.rotateBytes > 0 && sh.walOff-sh.walBase >= uint64(db.rotateBytes) {
			// Best-effort: the point is already stored and logged, so a
			// rotation failure must not be reported as a failed append
			// (callers would retry and duplicate the point). The active
			// segment just keeps growing until a later append's rotation
			// succeeds; RotateFailures exposes the misfires.
			if err := db.rotateLocked(sh); err != nil {
				db.rotateFails.Add(1)
			}
		}
	}
	return nil
}

// Append records a point. Appends must be time-ordered per series; an
// append earlier than the series' last point is rejected.
func (db *DB) Append(k SeriesKey, at time.Time, v float64) error {
	if err := validKey(k); err != nil {
		return err
	}
	db.enforceMaintenance()
	sh := db.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return db.appendLocked(sh, k, at, v)
}

// AppendIfChanged records the point only when its value differs from the
// series' last value (or the series is empty). It reports whether the point
// was stored. This is how the collector turns 10-minute samples into change
// events, which both bounds storage and makes Figure 10's
// time-between-changes analysis a direct read of the series.
func (db *DB) AppendIfChanged(k SeriesKey, at time.Time, v float64) (bool, error) {
	if err := validKey(k); err != nil {
		return false, err
	}
	db.enforceMaintenance()
	sh := db.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s := sh.series[k]; s != nil {
		// A failed cold read of the last point (only reachable when the
		// hot tail is empty) degrades to "assume changed": storing a
		// possibly-duplicate value beats refusing the append.
		if p, ok, err := db.lastPointLocked(s); err == nil && ok && p.Value == v {
			return false, nil
		}
	}
	if err := db.appendLocked(sh, k, at, v); err != nil {
		return false, err
	}
	return true, nil
}

// AppendBatch stores the entries, grouping them by shard so each shard
// lock is acquired once per batch rather than once per point. Entries keep
// their input order within a shard, so per-series time ordering of the
// input is preserved. It returns how many points were stored and the first
// error encountered; later entries are still attempted after an error.
func (db *DB) AppendBatch(entries []Entry) (int, error) {
	return db.appendBatch(entries, false)
}

// AppendBatchIfChanged is AppendBatch with AppendIfChanged's semantics:
// an entry whose value equals its series' current last value is skipped.
func (db *DB) AppendBatchIfChanged(entries []Entry) (int, error) {
	return db.appendBatch(entries, true)
}

func (db *DB) appendBatch(entries []Entry, dedup bool) (int, error) {
	if len(entries) == 0 {
		return 0, nil
	}
	db.enforceMaintenance()
	// Stable counting sort of entry indices by shard: input order is
	// preserved within a shard (so per-series time order survives), and
	// no per-call maps are allocated. Invalid keys land in bucket ns.
	ns := len(db.shards)
	var firstErr error
	shardOf := make([]uint32, len(entries))
	counts := make([]int, ns+1)
	for i := range entries {
		si := uint32(ns)
		if err := validKey(entries[i].Key); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			si = db.shardIndex(entries[i].Key)
		}
		shardOf[i] = si
		counts[si]++
	}
	pos := make([]int, ns+1)
	sum := 0
	for s := 0; s <= ns; s++ {
		pos[s] = sum
		sum += counts[s]
	}
	order := make([]int32, len(entries))
	fill := append([]int(nil), pos...)
	for i := range entries {
		s := shardOf[i]
		order[fill[s]] = int32(i)
		fill[s]++
	}
	stored := 0
	for s := 0; s < ns; s++ {
		lo, hi := pos[s], pos[s]+counts[s]
		if lo == hi {
			continue
		}
		sh := &db.shards[s]
		sh.mu.Lock()
		for _, i := range order[lo:hi] {
			e := &entries[i]
			if dedup {
				// As in AppendIfChanged: an unreadable last point means
				// "assume changed", never a rejected append.
				if sr := sh.series[e.Key]; sr != nil {
					if p, ok, err := db.lastPointLocked(sr); err == nil && ok && p.Value == e.Value {
						continue
					}
				}
			}
			if err := db.appendLocked(sh, e.Key, e.At, e.Value); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			stored++
		}
		sh.mu.Unlock()
	}
	return stored, firstErr
}

// Query returns the points of a series within [from, to], oldest first.
func (db *DB) Query(k SeriesKey, from, to time.Time) ([]Point, error) {
	return db.QueryRange(k, from, to, 0, -1)
}

// ErrColdRead marks a read that touched a cold block which failed to
// decode (bit rot, a vanished or truncated block file). The read APIs
// return it wrapped around the underlying cause rather than serving a
// silently truncated result: a window answer with a hole would disagree
// with CountRange (which locates the same window by block metadata
// alone), so pagination totals and page contents would drift apart
// without either side noticing. Callers that can degrade (dedup checks,
// best-effort tooling) may choose to; serving paths must surface it.
var ErrColdRead = errors.New("tsdb: cold block read failed")

// coldReadErr counts and wraps a failed cold block read. Every read
// path funnels decode failures through here so ColdReadErrors stays an
// accurate corruption odometer no matter which API tripped first.
func (db *DB) coldReadErr(err error) error {
	db.coldErrs.Add(1)
	return fmt.Errorf("%w: %w", ErrColdRead, err)
}

// The tier-merging read primitives. A series' points form one logical
// time-ordered sequence indexed 0..total-1: the sealed (cold) points
// first, then the hot in-memory tail. Every read path below — range and
// cursor windows, step lookups, window means, grids, intervals, the
// rollup builder — resolves its window through these helpers, so hot
// and cold tiers can never disagree about where a timestamp falls. The
// caller holds the owning shard's lock throughout (except iterateView,
// which works on a captured seriesView precisely so decoding can happen
// outside the lock).
//
// Cold blocks decode on demand through the block cache. A block that
// fails to decode is counted in ColdReadErrors and the error propagates
// to the caller as ErrColdRead — never a silently truncated answer.

// seriesTotal returns the series' logical point count across both tiers.
func seriesTotal(s *series) int {
	if s.cold == nil {
		return len(s.points)
	}
	return s.cold.n + len(s.points)
}

// seriesView is a stable read view of one series' two tiers, captured
// under the owning shard's lock and safe to use after releasing it:
//
//   - blocks is a full-expression slice of the cold block list. Seals
//     only ever append to that list in place, and retention replaces
//     the whole coldSeries with a fresh one, so the captured prefix is
//     immutable. Block files themselves are immutable and their handles
//     stay open until Close, so a view outlives even a concurrent
//     retention drop.
//   - hot aliases the hot tail's backing array below the captured
//     length. Appends write past that length and seals replace the
//     slice with a fresh copy, so the captured window never mutates.
//
// This is the bounded iteration primitive shared by ChangeIntervals and
// the rollup builder: both walk months-deep series block by block,
// decoding one block at a time outside the shard lock, instead of
// materializing the whole series under it.
type seriesView struct {
	blocks []blockMeta
	coldN  int
	hot    []Point
}

// viewLocked captures a series view; the caller holds the shard lock.
func viewLocked(s *series) seriesView {
	v := seriesView{hot: s.points}
	if s.cold != nil {
		v.blocks = s.cold.blocks[:len(s.cold.blocks):len(s.cold.blocks)]
		v.coldN = s.cold.n
	}
	return v
}

func (v seriesView) total() int { return v.coldN + len(v.hot) }

// iterateView streams the view's global index window [lo, hi) to fn in
// consecutive chunks — one chunk per overlapping cold block, then the
// hot remainder — decoding each block on demand so at most one block's
// points are materialized beyond what fn retains. An fn error aborts
// the walk; a block decode failure aborts it with ErrColdRead.
func (db *DB) iterateView(v seriesView, lo, hi int, fn func(pts []Point) error) error {
	if total := v.total(); hi > total {
		hi = total
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil
	}
	if lo < v.coldN {
		bi := sort.Search(len(v.blocks), func(i int) bool {
			return v.blocks[i].start+int(v.blocks[i].count) > lo
		})
		for ; bi < len(v.blocks) && v.blocks[bi].start < hi; bi++ {
			b := &v.blocks[bi]
			pts, err := db.coldBlockPoints(b)
			if err != nil {
				return db.coldReadErr(err)
			}
			from, to := 0, int(b.count)
			if lo > b.start {
				from = lo - b.start
			}
			if hi < b.start+to {
				to = hi - b.start
			}
			db.scanned.Add(uint64(to - from))
			if err := fn(pts[from:to]); err != nil {
				return err
			}
		}
	}
	if hi > v.coldN {
		from := 0
		if lo > v.coldN {
			from = lo - v.coldN
		}
		db.scanned.Add(uint64(hi - v.coldN - from))
		if err := fn(v.hot[from : hi-v.coldN]); err != nil {
			return err
		}
	}
	return nil
}

// searchSeries returns the smallest global index whose point timestamp
// satisfies pred, or the total count when none does. pred must be
// monotone in time (false then true), which both window predicates
// (!Before(from), After(to)) are. Cold blocks are located by their
// min/max timestamps alone; a block is decoded only when the boundary
// falls strictly inside it.
func (db *DB) searchSeries(s *series, pred func(time.Time) bool) (int, error) {
	return db.searchView(viewLocked(s), pred)
}

// searchView is searchSeries on a captured view, usable after the shard
// lock is released (the rollup builder locates its incremental window
// this way without stalling writers).
func (db *DB) searchView(v seriesView, pred func(time.Time) bool) (int, error) {
	nb := len(v.blocks)
	bi := sort.Search(nb, func(i int) bool { return pred(v.blocks[i].maxAt) })
	if bi < nb {
		b := &v.blocks[bi]
		if pred(b.minAt) {
			return b.start, nil
		}
		pts, err := db.coldBlockPoints(b)
		if err != nil {
			return 0, db.coldReadErr(err)
		}
		return b.start + sort.Search(len(pts), func(i int) bool { return pred(pts[i].At) }), nil
	}
	return v.coldN + sort.Search(len(v.hot), func(i int) bool { return pred(v.hot[i].At) }), nil
}

// getPointsLocked copies the global index window [lo, hi) into a fresh
// slice, decoding whichever cold blocks it overlaps and finishing in
// the hot tail.
func (db *DB) getPointsLocked(s *series, lo, hi int) ([]Point, error) {
	if total := seriesTotal(s); hi > total {
		hi = total
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil, nil
	}
	out := make([]Point, 0, hi-lo)
	err := db.iterateView(viewLocked(s), lo, hi, func(pts []Point) error {
		out = append(out, pts...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// pointAtLocked returns the point at global index i; ok is false when i
// is out of range.
func (db *DB) pointAtLocked(s *series, i int) (Point, bool, error) {
	coldN := 0
	if cold := s.cold; cold != nil {
		coldN = cold.n
		if i >= 0 && i < coldN {
			bi := sort.Search(len(cold.blocks), func(k int) bool {
				return cold.blocks[k].start+int(cold.blocks[k].count) > i
			})
			b := &cold.blocks[bi]
			pts, err := db.coldBlockPoints(b)
			if err != nil {
				return Point{}, false, db.coldReadErr(err)
			}
			return pts[i-b.start], true, nil
		}
	}
	if i < coldN || i >= coldN+len(s.points) {
		return Point{}, false, nil
	}
	return s.points[i-coldN], true, nil
}

// lastPointLocked returns the series' most recent point. For live series
// the hot tail always holds at least one point (seals keep a non-empty
// tail); the cold fallback covers a tier state only reachable through
// recovery of a partially written layout.
func (db *DB) lastPointLocked(s *series) (Point, bool, error) {
	if n := len(s.points); n > 0 {
		return s.points[n-1], true, nil
	}
	if s.cold == nil || s.cold.n == 0 {
		return Point{}, false, nil
	}
	return db.pointAtLocked(s, s.cold.n-1)
}

// rangeBounds returns the global index window [lo, hi) of the series'
// points falling within [from, to]. This is the single source of window
// semantics for every range read — pagination relies on the count pass
// and the copy pass agreeing exactly, across both tiers. On a cold read
// error both passes fail identically instead of disagreeing silently.
func (db *DB) rangeBounds(s *series, from, to time.Time) (lo, hi int, err error) {
	lo, err = db.searchSeries(s, func(t time.Time) bool { return !t.Before(from) })
	if err != nil {
		return 0, 0, err
	}
	hi, err = db.searchSeries(s, func(t time.Time) bool { return t.After(to) })
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// CountRange returns how many points of the series fall within [from, to]
// without copying any of them — two binary searches under the shard's
// read lock. Pagination uses it to size pages and locate offsets before
// materializing only the requested window.
func (db *DB) CountRange(k SeriesKey, from, to time.Time) (int, error) {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return 0, nil
	}
	lo, hi, err := db.rangeBounds(s, from, to)
	if err != nil || lo >= hi {
		return 0, err
	}
	return hi - lo, nil
}

// QueryRange returns up to max points of the series within [from, to],
// oldest first, skipping the first skip in-window points. A negative max
// means "all remaining". Only the returned points are copied, so a
// paginated reader of a large window allocates one page at a time instead
// of the full range.
func (db *DB) QueryRange(k SeriesKey, from, to time.Time, skip, max int) ([]Point, error) {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return nil, nil
	}
	lo, hi, err := db.rangeBounds(s, from, to)
	if err != nil {
		return nil, err
	}
	// Compare skip and max against the remainder rather than adding them
	// to an index: lo+skip or lo+max overflows for values near MaxInt,
	// and a wrapped-negative bound would drop (or worse, mis-slice) the
	// result.
	if skip > 0 {
		if skip >= hi-lo {
			return nil, nil
		}
		lo += skip
	}
	if max >= 0 && max < hi-lo {
		hi = lo + max
	}
	return db.getPointsLocked(s, lo, hi)
}

// afterBounds returns the global index window [lo, hi) of the series'
// points after the position (after, seq) and at or before `to`. The
// caller holds the owning shard's lock. This is the seek primitive
// behind keyset-cursor pagination: the position names the seq-th point
// at timestamp `after` (every earlier point plus the first seq points at
// exactly `after` are consumed), so a resumed read starts at a fixed
// place in the append-only series, unlike an offset, which shifts when
// earlier points arrive. The store accepts equal-timestamp appends, so a
// bare timestamp cannot address a position inside such a run — the
// sequence component is what lets a page boundary fall there without
// dropping the run's remainder. Positions resolve identically whether
// the addressed points are hot or have been sealed into cold blocks —
// sealing never reorders or renumbers, so a cursor taken before a seal
// resumes exactly where it left off after one.
func (db *DB) afterBounds(s *series, after time.Time, seq int, to time.Time) (lo, hi int, err error) {
	lo, err = db.searchSeries(s, func(t time.Time) bool { return !t.Before(after) })
	if err != nil {
		return 0, 0, err
	}
	if seq > 0 {
		// seq consumes points at exactly `after`, never beyond its run:
		// a forged or overshot count clamps to the run's end instead of
		// eating later timestamps.
		runEnd, err := db.searchSeries(s, func(t time.Time) bool { return t.After(after) })
		if err != nil {
			return 0, 0, err
		}
		if seq > runEnd-lo {
			lo = runEnd
		} else {
			lo += seq
		}
	}
	hi, err = db.searchSeries(s, func(t time.Time) bool { return t.After(to) })
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// CountAfter returns how many points of the series lie after the
// position (after, seq) — see afterBounds — and at or before `to`,
// without copying any of them: two binary searches under the shard's
// read lock. Cursor pagination uses it to size the remainder of a
// series the cursor position has partially consumed.
func (db *DB) CountAfter(k SeriesKey, after time.Time, seq int, to time.Time) (int, error) {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return 0, nil
	}
	lo, hi, err := db.afterBounds(s, after, seq, to)
	if err != nil || lo >= hi {
		return 0, err
	}
	return hi - lo, nil
}

// QueryAfter returns up to max points of the series after the position
// (after, seq) and at or before `to`, oldest first. A negative max means
// "all remaining". Because the store is append-only and per-series
// time-ordered, a fixed (timestamp, sequence) position never moves as
// new points arrive — the property that keeps cursor pagination stable
// under live collection, where a skipped offset would drift.
func (db *DB) QueryAfter(k SeriesKey, after time.Time, seq int, to time.Time, max int) ([]Point, error) {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return nil, nil
	}
	lo, hi, err := db.afterBounds(s, after, seq, to)
	if err != nil {
		return nil, err
	}
	if max >= 0 && max < hi-lo {
		hi = lo + max
	}
	return db.getPointsLocked(s, lo, hi)
}

// ValueAt returns the series' value at time t under step semantics: the
// value of the latest point at or before t. ok is false before the first
// point or for an unknown series.
func (db *DB) ValueAt(k SeriesKey, t time.Time) (v float64, ok bool, err error) {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return 0, false, nil
	}
	i, err := db.searchSeries(s, func(at time.Time) bool { return at.After(t) })
	if err != nil || i == 0 {
		return 0, false, err
	}
	p, ok, err := db.pointAtLocked(s, i-1)
	return p.Value, ok, err
}

// WindowMean returns the time-weighted mean of the step function over
// [from, to). ok is false when the series has no value anywhere in the
// window.
func (db *DB) WindowMean(k SeriesKey, from, to time.Time) (mean float64, ok bool, err error) {
	if !to.After(from) {
		return 0, false, nil
	}
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil || seriesTotal(s) == 0 {
		return 0, false, nil
	}
	// Window bounds through the shared search: [i, j) are the points
	// strictly inside (from, to); i-1, when present, carries the step
	// value into the window.
	i, err := db.searchSeries(s, func(t time.Time) bool { return t.After(from) })
	if err != nil {
		return 0, false, err
	}
	j, err := db.searchSeries(s, func(t time.Time) bool { return !t.Before(to) })
	if err != nil {
		return 0, false, err
	}
	var cur float64
	var curSet bool
	cursor := from
	if i > 0 {
		p, ok, err := db.pointAtLocked(s, i-1)
		if err != nil {
			return 0, false, err
		}
		if ok {
			cur, curSet = p.Value, true
		}
	}
	pts, err := db.getPointsLocked(s, i, j)
	if err != nil {
		return 0, false, err
	}
	total := 0.0
	weight := 0.0
	for _, p := range pts {
		if curSet {
			d := p.At.Sub(cursor).Seconds()
			total += cur * d
			weight += d
		}
		cur = p.Value
		curSet = true
		cursor = p.At
	}
	if curSet {
		d := to.Sub(cursor).Seconds()
		total += cur * d
		weight += d
	}
	if weight == 0 {
		return 0, false, nil
	}
	return total / weight, true, nil
}

// Grid samples the step function at from, from+step, ... up to and
// including to. Instants before the first point yield NaN. The whole
// grid is computed under one shard read lock with one window fetch —
// the same bounds Query uses — instead of a binary search per instant,
// so hot and cold tiers resolve identically for every sample.
func (db *DB) Grid(k SeriesKey, from, to time.Time, step time.Duration) ([]float64, error) {
	if step <= 0 || to.Before(from) {
		return nil, nil
	}
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	var out []float64
	if s == nil {
		for t := from; !t.After(to); t = t.Add(step) {
			out = append(out, math.NaN())
		}
		return out, nil
	}
	i, err := db.searchSeries(s, func(t time.Time) bool { return t.After(from) })
	if err != nil {
		return nil, err
	}
	var cur float64
	var curSet bool
	if i > 0 {
		p, ok, err := db.pointAtLocked(s, i-1)
		if err != nil {
			return nil, err
		}
		if ok {
			cur, curSet = p.Value, true
		}
	}
	hi, err := db.searchSeries(s, func(t time.Time) bool { return t.After(to) })
	if err != nil {
		return nil, err
	}
	pts, err := db.getPointsLocked(s, i, hi)
	if err != nil {
		return nil, err
	}
	pi := 0
	for t := from; !t.After(to); t = t.Add(step) {
		for pi < len(pts) && !pts[pi].At.After(t) {
			cur, curSet = pts[pi].Value, true
			pi++
		}
		if curSet {
			out = append(out, cur)
		} else {
			out = append(out, math.NaN())
		}
	}
	return out, nil
}

// ChangeIntervals returns the durations between consecutive points of the
// series. When points are appended via AppendIfChanged these are the
// value-change intervals of Figure 10.
//
// The series streams through iterateView on a view captured under the
// shard lock and walked after releasing it: one decoded block resident
// at a time, and a months-deep cold series no longer stalls writers for
// the duration of a full decode (the intervals themselves are the only
// full-length allocation).
func (db *DB) ChangeIntervals(k SeriesKey) ([]time.Duration, error) {
	sh := db.shardFor(k)
	sh.mu.RLock()
	s := sh.series[k]
	if s == nil || seriesTotal(s) < 2 {
		sh.mu.RUnlock()
		return nil, nil
	}
	v := viewLocked(s)
	sh.mu.RUnlock()
	total := v.total()
	out := make([]time.Duration, 0, total-1)
	var prev time.Time
	first := true
	err := db.iterateView(v, 0, total, func(pts []Point) error {
		for _, p := range pts {
			if !first {
				out = append(out, p.At.Sub(prev))
			}
			prev = p.At
			first = false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Last returns the most recent point of the series.
func (db *DB) Last(k SeriesKey) (Point, bool, error) {
	sh := db.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil {
		return Point{}, false, nil
	}
	return db.lastPointLocked(s)
}

// KeyFilter selects series keys; empty fields match anything.
type KeyFilter struct {
	Dataset string
	Type    string
	Region  string
	AZ      string
}

func (f KeyFilter) matches(k SeriesKey) bool {
	return (f.Dataset == "" || f.Dataset == k.Dataset) &&
		(f.Type == "" || f.Type == k.Type) &&
		(f.Region == "" || f.Region == k.Region) &&
		(f.AZ == "" || f.AZ == k.AZ)
}

// Keys returns the series keys matching the filter, sorted canonically.
// Shards are visited one at a time; no global lock is held. The
// canonical forms are rendered once before sorting — comparing via
// String() inside the sort would allocate two strings per comparison,
// the dominant cost of every broad query's key-matching phase.
func (db *DB) Keys(f KeyFilter) []SeriesKey {
	var out []SeriesKey
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for k := range sh.series {
			if f.matches(k) {
				out = append(out, k)
			}
		}
		sh.mu.RUnlock()
	}
	canon := make([]string, len(out))
	for i := range out {
		canon[i] = out[i].String()
	}
	sort.Sort(&keysByCanon{keys: out, canon: canon})
	return out
}

// keysByCanon sorts a key slice by its precomputed canonical forms,
// keeping the two slices paired through swaps.
type keysByCanon struct {
	keys  []SeriesKey
	canon []string
}

func (s *keysByCanon) Len() int           { return len(s.keys) }
func (s *keysByCanon) Less(i, j int) bool { return s.canon[i] < s.canon[j] }
func (s *keysByCanon) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.canon[i], s.canon[j] = s.canon[j], s.canon[i]
}

// SeriesCount returns the number of series.
func (db *DB) SeriesCount() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += len(sh.series)
		sh.mu.RUnlock()
	}
	return n
}

// PointCount returns the total number of stored points, aggregated from
// the per-shard counters.
func (db *DB) PointCount() int {
	n := 0
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		n += sh.points
		sh.mu.RUnlock()
	}
	return n
}

// MaxTime returns the latest point timestamp anywhere in the store. ok is
// false for an empty store. Snapshot-loading services use it to fast-forward
// their clock past the restored data.
func (db *DB) MaxTime() (time.Time, bool) {
	var max time.Time
	found := false
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for _, s := range sh.series {
			var at time.Time
			if n := len(s.points); n > 0 {
				at = s.points[n-1].At
			} else if s.cold != nil && s.cold.n > 0 {
				at = s.cold.lastAt // index metadata: no block decode needed
			} else {
				continue
			}
			if !found || at.After(max) {
				max, found = at, true
			}
		}
		sh.mu.RUnlock()
	}
	return max, found
}

// Flush forces buffered log records of every shard segment to stable
// storage. Only the (cheap) buffer flush happens under each shard lock;
// the fsyncs run outside the locks and concurrently across segments, so
// readers and writers are never blocked behind disk latency and the wall
// time stays near one fsync rather than one per shard. A segment rotated
// or closed between the two steps is skipped: rotation (checkpoint
// compaction) fsyncs the replacement itself, and a closing store syncs
// in Close.
func (db *DB) Flush() error {
	errs := make([]error, len(db.shards))
	files := make([]*os.File, len(db.shards))
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		if sh.wal != nil {
			if err := sh.wal.Flush(); err != nil {
				errs[i] = err
			} else {
				files[i] = sh.walF
			}
		}
		sh.mu.Unlock()
	}
	var wg sync.WaitGroup
	for i, f := range files {
		if f == nil {
			continue
		}
		wg.Add(1)
		go func(i int, f *os.File) {
			defer wg.Done()
			if err := f.Sync(); err != nil && !errors.Is(err, os.ErrClosed) {
				errs[i] = err
			}
		}(i, f)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("tsdb: flush shard %d: %w", i, err)
		}
	}
	return nil
}

// Close flushes and closes the store. Further writes fail. Close quiesces
// every shard so no append is mid-flight when its segment is closed. The
// maintenance daemon, if any, is stopped first — an in-flight maintenance
// checkpoint completes before any segment file is closed.
func (db *DB) Close() error {
	var rollupErr error
	if db.closed.CompareAndSwap(false, true) {
		db.stopMaintainer()
		// The rollup store closes after the maintainer stops (an
		// in-flight maintenance cycle may still be appending rollups)
		// and before the parent's files: it is a plain nested store with
		// its own WAL and manifest.
		if db.rollup != nil {
			rollupErr = db.rollup.Close()
		}
	}
	for i := range db.shards {
		db.shards[i].mu.Lock()
	}
	defer func() {
		for i := range db.shards {
			db.shards[i].mu.Unlock()
		}
	}()
	var firstErr error
	for i := range db.shards {
		sh := &db.shards[i]
		if sh.wal == nil {
			continue
		}
		// Flush AND fsync: Close is the durability boundary a clean
		// shutdown relies on (and Flush's out-of-lock sync treats a
		// concurrently-closed file as "Close will have synced it").
		err := sh.wal.Flush()
		if err == nil {
			err = sh.walF.Sync()
		}
		if cerr := sh.walF.Close(); err == nil {
			err = cerr
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("tsdb: close shard %d: %w", i, err)
		}
		sh.wal, sh.walF = nil, nil
	}
	// Block files close while every shard lock is held, so no cold read
	// can be mid-decode against a closing handle.
	for _, seg := range db.coldSegs {
		if err := seg.f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("tsdb: close block file %d: %w", seg.seq, err)
		}
	}
	db.coldSegs = nil
	if firstErr == nil {
		firstErr = rollupErr
	}
	return firstErr
}

// HotPointCount returns how many points are resident in memory (the hot
// tails of every series).
func (db *DB) HotPointCount() int64 { return db.hotPts.Load() }

// ColdPointCount returns how many points have been sealed into
// compressed blocks on disk.
func (db *DB) ColdPointCount() int64 { return db.coldPts.Load() }

// SealedBlocks returns how many compressed blocks the cold tier holds.
func (db *DB) SealedBlocks() int64 { return db.sealedBlks.Load() }

// ColdCompressedBytes returns the cold tier's compressed on-disk block
// bytes (data sections only, excluding per-file index overhead).
func (db *DB) ColdCompressedBytes() int64 { return db.coldBytes.Load() }

// ColdReadErrors returns how many cold block reads have failed —
// nonzero means on-disk corruption or a vanished block file. The
// affected reads returned ErrColdRead rather than partial results.
func (db *DB) ColdReadErrors() uint64 { return db.coldErrs.Value() }

// ScannedPoints returns how many points reads have materialized since
// open: hot-tail copies plus decoded cold-block windows, across every
// read API. The rollup tier exists to shrink this number for
// long-window queries — a 90-day window served at 1h resolution scans
// the rollup store's buckets, not every raw tick — and the scan-ratio
// tests assert that through this counter.
func (db *DB) ScannedPoints() uint64 { return db.scanned.Value() }

// HotTailPoints returns the per-series hot tail the store keeps when
// sealing (-1 when sealing is disabled).
func (db *DB) HotTailPoints() int { return db.hotTail }

// SealsCold reports whether checkpoints seal history into the cold
// tier: the store is durable and sealing was not disabled.
func (db *DB) SealsCold() bool { return db.dir != "" && db.hotTail > 0 }
