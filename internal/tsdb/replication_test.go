package tsdb

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// copyReplica ships src's current ReplicationSnapshot into dstDir the
// way the archive puller does: stage every artifact, fsync, commit the
// rollup manifest (if any), then the parent manifest — the sole commit
// point. Returns the snapshot it shipped.
func copyReplica(t *testing.T, src *DB, dstDir string) *ReplicationSnapshot {
	t.Helper()
	snap, err := src.ReplicationSnapshot()
	if err != nil {
		t.Fatalf("ReplicationSnapshot: %v", err)
	}
	stage := func(srcDir, dstDir string, arts []ReplicationArtifact) {
		for _, a := range arts {
			if !IsReplicationArtifactName(a.Name) {
				t.Fatalf("snapshot listed non-artifact name %q", a.Name)
			}
			in, err := os.Open(filepath.Join(srcDir, a.Name))
			if err != nil {
				t.Fatalf("open artifact: %v", err)
			}
			out, err := os.Create(filepath.Join(dstDir, a.Name))
			if err != nil {
				t.Fatalf("stage artifact: %v", err)
			}
			n, err := io.Copy(out, in)
			in.Close()
			if err == nil {
				err = out.Close()
			}
			if err != nil {
				t.Fatalf("copy artifact %s: %v", a.Name, err)
			}
			if !a.Mutable && n != a.Size {
				t.Fatalf("artifact %s: copied %d bytes, listing said %d", a.Name, n, a.Size)
			}
		}
	}
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	stage(src.Dir(), dstDir, snap.Artifacts)
	if snap.Rollup != nil {
		rdir := filepath.Join(dstDir, "rollup")
		if err := os.MkdirAll(rdir, 0o755); err != nil {
			t.Fatal(err)
		}
		stage(filepath.Join(src.Dir(), "rollup"), rdir, snap.Rollup.Artifacts)
		if err := SyncReplicaDir(rdir); err != nil {
			t.Fatal(err)
		}
		if err := CommitReplicatedManifest(rdir, snap.Rollup.Manifest); err != nil {
			t.Fatalf("committing rollup manifest: %v", err)
		}
	}
	if err := SyncReplicaDir(dstDir); err != nil {
		t.Fatal(err)
	}
	if err := CommitReplicatedManifest(dstDir, snap.Manifest); err != nil {
		t.Fatalf("committing manifest: %v", err)
	}
	return snap
}

// assertStoresEqual compares every series of a against b across every
// read primitive a replica serves.
func assertStoresEqual(t *testing.T, a, b *DB) {
	t.Helper()
	end := t0.Add(1000000 * time.Hour)
	ka, kb := a.Keys(KeyFilter{}), b.Keys(KeyFilter{})
	if len(ka) != len(kb) {
		t.Fatalf("key counts differ: %d vs %d", len(ka), len(kb))
	}
	for i, k := range ka {
		if k != kb[i] {
			t.Fatalf("key %d differs: %v vs %v", i, k, kb[i])
		}
		pa := noerr(a.Query(k, time.Time{}, end))
		pb := noerr(b.Query(k, time.Time{}, end))
		if len(pa) != len(pb) {
			t.Fatalf("%v: %d vs %d points", k, len(pa), len(pb))
		}
		for j := range pa {
			if !pa[j].At.Equal(pb[j].At) || pa[j].Value != pb[j].Value {
				t.Fatalf("%v point %d: (%v,%v) vs (%v,%v)", k, j, pa[j].At, pa[j].Value, pb[j].At, pb[j].Value)
			}
		}
		la, oka, err := a.Last(k)
		if err != nil {
			t.Fatal(err)
		}
		lb, okb, err := b.Last(k)
		if err != nil {
			t.Fatal(err)
		}
		if oka != okb || (oka && (!la.At.Equal(lb.At) || la.Value != lb.Value)) {
			t.Fatalf("%v last differs: (%v,%v) vs (%v,%v)", k, la.At, la.Value, lb.At, lb.Value)
		}
		ca := noerr(a.CountRange(k, time.Time{}, end))
		cb := noerr(b.CountRange(k, time.Time{}, end))
		if ca != cb {
			t.Fatalf("%v counts differ: %d vs %d", k, ca, cb)
		}
	}
	ra, rb := a.Rollups(), b.Rollups()
	if (ra == nil) != (rb == nil) {
		t.Fatalf("rollup presence differs: %v vs %v", ra != nil, rb != nil)
	}
	if ra != nil {
		assertStoresEqual(t, ra, rb)
	}
}

// TestReplicaDifferential is the tsdb-level convergence proof: after
// every primary checkpoint, shipping the replication snapshot and
// reopening read-only yields a store reference-equal to the primary's
// committed state at the ship, across raw reads, counts, Last, and the
// rollup tier — including an incremental re-ship that only adds the
// delta files.
func TestReplicaDifferential(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	db, err := OpenWithOptions(pdir, rollupOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	open := func() *DB {
		t.Helper()
		r, err := OpenWithOptions(rdir, Options{Shards: 4, ReadOnly: true, MaintenanceInterval: -1})
		if err != nil {
			t.Fatalf("read-only open: %v", err)
		}
		return r
	}

	for round, n := range []int{600, 600, 600} {
		if _, err := db.AppendBatch(rollupEntries(n, round*n)); err != nil {
			t.Fatal(err)
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		copyReplica(t, db, rdir)
		replica := open()
		if !replica.ReadOnly() {
			t.Fatal("replica does not report ReadOnly")
		}
		assertStoresEqual(t, db, replica)
		if err := replica.Close(); err != nil {
			t.Fatalf("closing replica: %v", err)
		}
	}

	// The ship is crash-safe at its commit point: artifacts staged but no
	// manifest committed must leave the previous replica state servable.
	if _, err := db.AppendBatch(rollupEntries(300, 1800)); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	preSnap := noerr(db.ReplicationSnapshot())
	// Stage the new artifacts without committing either manifest.
	for _, a := range preSnap.Artifacts {
		src := noerr(os.ReadFile(filepath.Join(pdir, a.Name)))
		if err := os.WriteFile(filepath.Join(rdir, a.Name), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := open()
	// The stale replica serves its old manifest's state: fewer points
	// than the primary, but a coherent store.
	if stale.PointCount() >= db.PointCount() {
		t.Fatalf("stale replica claims %d points, primary has %d — staged files leaked into the committed view",
			stale.PointCount(), db.PointCount())
	}
	stale.Close()
}

// TestReadOnlyStoreRejectsWrites locks down the whole write surface of
// a read-only open.
func TestReadOnlyStoreRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenWithOptions(dir, sealedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AppendBatch(sealEntries(64, 0)); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := OpenWithOptions(dir, Options{Shards: 4, ReadOnly: true, MaintenanceInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	k := sealKeys()[0]
	if err := ro.Append(k, t0.Add(time.Hour*100000), 1); err == nil {
		t.Error("read-only store accepted an append")
	}
	if _, err := ro.AppendBatch(sealEntries(4, 100000)); err == nil {
		t.Error("read-only store accepted a batch append")
	}
	if err := ro.Checkpoint(); err == nil {
		t.Error("read-only store accepted a checkpoint")
	}
	if _, err := ro.LoadSnapshot(strings.NewReader("x")); err == nil ||
		!strings.Contains(err.Error(), "read-only") {
		t.Errorf("read-only store snapshot load: %v", err)
	}
	if ro.MaintainerActive() {
		t.Error("read-only store runs a maintenance daemon")
	}
}

// TestReadOnlyOpenRefusals: the open paths a replica must never take.
func TestReadOnlyOpenRefusals(t *testing.T) {
	if _, err := OpenWithOptions("", Options{ReadOnly: true}); err == nil {
		t.Error("memory-only read-only open succeeded")
	}
	empty := t.TempDir()
	if _, err := OpenWithOptions(empty, Options{ReadOnly: true}); err == nil {
		t.Error("read-only open of a manifest-less directory succeeded")
	}
	if HasCommittedManifest(empty) {
		t.Error("HasCommittedManifest true for an empty directory")
	}
	dir := t.TempDir()
	db, err := OpenWithOptions(dir, sealedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if !HasCommittedManifest(dir) {
		t.Error("HasCommittedManifest false for a committed directory")
	}
	if _, err := OpenWithOptions(dir, Options{ReadOnly: true, RetainRaw: map[string]time.Duration{DatasetPrice: time.Hour}}); err == nil {
		t.Error("read-only open with retention succeeded")
	}
}

func TestIsReplicationArtifactName(t *testing.T) {
	valid := []string{
		"wal-00000-000001.log",
		"wal-00003-000421.log",
		"blocks-000001.blk",
		"checkpoint-000007.snap",
		"rollup/wal-00000-000001.log",
		"rollup/blocks-000002.blk",
		"rollup/checkpoint-000001.snap",
	}
	for _, n := range valid {
		if !IsReplicationArtifactName(n) {
			t.Errorf("%q rejected, want accepted", n)
		}
	}
	invalid := []string{
		"", "MANIFEST", "rollup/MANIFEST", "points.wal",
		"../wal-00000-000001.log", "wal-00000-000001.log.tmp",
		"rollup/rollup/blocks-000001.blk", "/etc/passwd",
		"blocks-1.blk", "checkpoint-1.snap", "wal-0-1.log",
		"blocks-000001.blk/..", "foo/blocks-000001.blk",
	}
	for _, n := range invalid {
		if IsReplicationArtifactName(n) {
			t.Errorf("%q accepted, want rejected", n)
		}
	}
}

func TestCommitReplicatedManifestValidates(t *testing.T) {
	dir := t.TempDir()
	if err := CommitReplicatedManifest(dir, []byte("not json")); err == nil {
		t.Error("garbage manifest committed")
	}
	if err := CommitReplicatedManifest(dir, []byte(`{"version":1,"segments":1,"offsets":[0]}`)); err == nil {
		t.Error("v1 manifest committed (needs migration, which a follower must never run)")
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST")); !os.IsNotExist(err) {
		t.Error("a rejected commit left a MANIFEST behind")
	}
}

// TestReplicationSnapshotCoherent: every listed artifact exists at its
// listed size, the manifest matches the committed file byte for byte,
// and only the rollup level lists mutable artifacts.
func TestReplicationSnapshotCoherent(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenWithOptions(dir, rollupOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.AppendBatch(rollupEntries(600, 0)); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap, err := db.ReplicationSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	onDisk := noerr(os.ReadFile(filepath.Join(dir, "MANIFEST")))
	if string(onDisk) != string(snap.Manifest) {
		t.Error("snapshot manifest differs from the committed MANIFEST file")
	}
	check := func(base string, s *ReplicationSnapshot, allowMutable, wantCheckpoint bool) {
		sawCheckpoint := false
		for _, a := range s.Artifacts {
			st, err := os.Stat(filepath.Join(base, a.Name))
			if err != nil {
				t.Fatalf("listed artifact missing: %v", err)
			}
			if st.Size() != a.Size {
				t.Errorf("%s: size %d, listed %d", a.Name, st.Size(), a.Size)
			}
			if a.Mutable && !allowMutable {
				t.Errorf("%s: parent level listed a mutable artifact", a.Name)
			}
			if strings.HasPrefix(a.Name, "checkpoint-") {
				sawCheckpoint = true
			}
		}
		if wantCheckpoint && !sawCheckpoint {
			t.Error("no checkpoint snapshot in the listing after Checkpoint()")
		}
	}
	check(dir, snap, false, true)
	if snap.Rollup == nil {
		t.Fatal("no rollup snapshot from a rollup-bearing store")
	}
	// The rollup store checkpoints on its own cadence; a fresh one may
	// hold only WAL segments, so no checkpoint file is required there.
	check(filepath.Join(dir, "rollup"), snap.Rollup, true, false)
	epoch, seq := db.ReplicationPosition()
	if epoch != snap.Epoch || seq != snap.CheckpointSeq {
		t.Errorf("position (%d,%d) != snapshot (%d,%d)", epoch, seq, snap.Epoch, snap.CheckpointSeq)
	}
}
