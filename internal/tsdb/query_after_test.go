package tsdb

import (
	"testing"
	"time"
)

// TestQueryAfterSeek pins CountAfter/QueryAfter — the seek primitives
// behind keyset-cursor pagination — against the full Query result: the
// points after full[i].At are exactly full[i+1:], regardless of where in
// the series the cursor position falls.
func TestQueryAfterSeek(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	k := SeriesKey{Dataset: DatasetPrice, Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	const n = 40
	for i := 0; i < n; i++ {
		if err := db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	from, to := t0.Add(5*time.Minute), t0.Add(30*time.Minute)
	full := noerr(db.Query(k, from, to))
	if len(full) == 0 {
		t.Fatal("empty window")
	}
	for i := range full {
		rest := full[i+1:]
		if got := noerr(db.CountAfter(k, full[i].At, 1, to)); got != len(rest) {
			t.Fatalf("CountAfter(%v) = %d, want %d", full[i].At, got, len(rest))
		}
		got := noerr(db.QueryAfter(k, full[i].At, 1, to, -1))
		if len(got) != len(rest) {
			t.Fatalf("QueryAfter(%v) = %d points, want %d", full[i].At, len(got), len(rest))
		}
		for j := range rest {
			if got[j] != rest[j] {
				t.Fatalf("QueryAfter(%v)[%d] = %+v, want %+v", full[i].At, j, got[j], rest[j])
			}
		}
	}
	// A position before the window's first point yields the whole window.
	if got := noerr(db.QueryAfter(k, from.Add(-time.Second), 0, to, -1)); len(got) != len(full) {
		t.Fatalf("pre-window seek: %d points, want %d", len(got), len(full))
	}
	// A position at or past the last point yields nothing.
	if got := noerr(db.QueryAfter(k, full[len(full)-1].At, 1, to, -1)); got != nil {
		t.Fatalf("seek at last point returned %d points", len(got))
	}
	if got := noerr(db.CountAfter(k, to, 1, to)); got != 0 {
		t.Fatalf("CountAfter at window end = %d", got)
	}
	// max caps the page; zero max is empty; negative is unbounded.
	if got := noerr(db.QueryAfter(k, full[0].At, 1, to, 3)); len(got) != 3 || got[0] != full[1] {
		t.Fatalf("capped seek: %+v", got)
	}
	if got := noerr(db.QueryAfter(k, full[0].At, 1, to, 0)); got != nil {
		t.Fatalf("zero-max seek returned %d points", len(got))
	}
	// Unknown series: empty, no panic.
	none := SeriesKey{Dataset: DatasetPrice, Type: "nope", Region: "r", AZ: "a"}
	if noerr(db.CountAfter(none, from, 0, to)) != 0 || noerr(db.QueryAfter(none, from, 0, to, -1)) != nil {
		t.Fatal("unknown series not empty")
	}
	// Appends after a fixed seek position never change what the position
	// resolves to — the stability property cursors rely on.
	before := noerr(db.QueryAfter(k, full[2].At, 1, to, 5))
	if err := db.Append(k, t0.Add((n+1)*time.Minute), 99); err != nil {
		t.Fatal(err)
	}
	after := noerr(db.QueryAfter(k, full[2].At, 1, to, 5))
	if len(before) != len(after) {
		t.Fatalf("append moved the seek window: %d -> %d points", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("append moved seek point %d: %+v -> %+v", i, before[i], after[i])
		}
	}
}

// TestQueryAfterEqualTimestampRun pins the sequence component of the
// seek position: the store accepts equal-timestamp appends, and a
// position (T, seq) must resolve to "the run's remainder", never skip
// it — this is what lets a cursor page boundary fall inside such a run.
func TestQueryAfterEqualTimestampRun(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	k := SeriesKey{Dataset: DatasetPrice, Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	// points: [T, T, T, U, U] with T < U.
	T, U := t0, t0.Add(time.Minute)
	for i, at := range []time.Time{T, T, T, U, U} {
		if err := db.Append(k, at, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	to := t0.Add(time.Hour)
	for _, tc := range []struct {
		seq, want int
	}{
		{0, 5}, // nothing at T consumed: the whole series
		{1, 4}, // one T point consumed
		{3, 2}, // the whole T run consumed: both U points remain
		{9, 2}, // forged overshoot clamps to the run, never into U
	} {
		got := noerr(db.QueryAfter(k, T, tc.seq, to, -1))
		if len(got) != tc.want {
			t.Fatalf("QueryAfter(T, seq=%d): %d points, want %d", tc.seq, len(got), tc.want)
		}
		if n := noerr(db.CountAfter(k, T, tc.seq, to)); n != tc.want {
			t.Fatalf("CountAfter(T, seq=%d) = %d, want %d", tc.seq, n, tc.want)
		}
	}
	// seq=9 overshoots the T run; the clamp must not eat the U points:
	// the first returned point is the first U point.
	if got := noerr(db.QueryAfter(k, T, 9, to, -1)); got[0].Value != 3 {
		t.Fatalf("overshot seq resumed at %+v, want the first U point", got[0])
	}
	// Values confirm position, not just count: (T, 1) starts at the
	// second T point.
	if got := noerr(db.QueryAfter(k, T, 1, to, 2)); got[0].Value != 1 || got[1].Value != 2 {
		t.Fatalf("(T,1) page = %+v, want the 2nd and 3rd T points", got)
	}
}
