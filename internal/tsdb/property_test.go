package tsdb

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simrand"
)

// TestGridMatchesValueAtProperty: every grid sample equals a direct
// ValueAt lookup at the same instant, for random step functions.
func TestGridMatchesValueAtProperty(t *testing.T) {
	rng := simrand.New(99)
	f := func(seed uint16) bool {
		r := rng.StreamN("grid", int(seed))
		db, err := Open("")
		if err != nil {
			return false
		}
		k := SeriesKey{Dataset: "sps", Type: "x.y", Region: "r", AZ: "ra"}
		// Random step function: 1-30 points at increasing times.
		n := 1 + r.Intn(30)
		at := t0.Add(time.Duration(r.Intn(100)) * time.Minute)
		for i := 0; i < n; i++ {
			if err := db.Append(k, at, float64(r.Intn(5))); err != nil {
				return false
			}
			at = at.Add(time.Duration(1+r.Intn(600)) * time.Minute)
		}
		from := t0.Add(-time.Hour)
		to := at.Add(time.Hour)
		step := time.Duration(1+r.Intn(200)) * time.Minute
		grid := noerr(db.Grid(k, from, to, step))
		i := 0
		for ts := from; !ts.After(to); ts = ts.Add(step) {
			want, ok := noerr2(db.ValueAt(k, ts))
			if !ok {
				if !math.IsNaN(grid[i]) {
					return false
				}
			} else if grid[i] != want {
				return false
			}
			i++
		}
		return i == len(grid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWindowMeanBoundsProperty: the time-weighted mean always lies within
// the min/max of the covering values.
func TestWindowMeanBoundsProperty(t *testing.T) {
	rng := simrand.New(100)
	f := func(seed uint16) bool {
		r := rng.StreamN("mean", int(seed))
		db, err := Open("")
		if err != nil {
			return false
		}
		k := SeriesKey{Dataset: "price", Type: "x.y", Region: "r", AZ: "ra"}
		n := 1 + r.Intn(20)
		at := t0
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := r.Range(0, 100)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			if err := db.Append(k, at, v); err != nil {
				return false
			}
			at = at.Add(time.Duration(1+r.Intn(300)) * time.Minute)
		}
		mean, ok := noerr2(db.WindowMean(k, t0, at.Add(time.Hour)))
		if !ok {
			return false
		}
		return mean >= lo-1e-9 && mean <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestAppendIfChangedEquivalence: under step semantics, a deduplicated
// series answers every ValueAt query identically to the raw series.
func TestAppendIfChangedEquivalence(t *testing.T) {
	rng := simrand.New(101)
	f := func(seed uint16) bool {
		r := rng.StreamN("dedup", int(seed))
		raw, _ := Open("")
		dedup, _ := Open("")
		k := SeriesKey{Dataset: "if", Type: "x.y", Region: "r"}
		n := 2 + r.Intn(50)
		at := t0
		for i := 0; i < n; i++ {
			v := float64(r.Intn(4))
			if err := raw.Append(k, at, v); err != nil {
				return false
			}
			if _, err := dedup.AppendIfChanged(k, at, v); err != nil {
				return false
			}
			at = at.Add(10 * time.Minute)
		}
		for ts := t0; ts.Before(at.Add(time.Hour)); ts = ts.Add(7 * time.Minute) {
			a, okA := noerr2(raw.ValueAt(k, ts))
			b, okB := noerr2(dedup.ValueAt(k, ts))
			if okA != okB || (okA && a != b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
