package tsdb

// Tests for the store-internal maintainer: the sealed-chain cap's hard
// bound on the append path, the daemon reclaiming chains and byte tails
// without caller cooperation, single-flight between the daemon and
// manual Checkpoint under -race, and the daemon bounding the recovery
// tail after a bulk snapshot restore.

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// TestChainCapBoundsSealedSegments drives pointwise appends through a
// store with MaxSealedSegments=3 and the daemon disabled, so the only
// enforcement is the append path's synchronous check — and asserts no
// shard's sealed chain ever exceeds the cap at any observable instant,
// with no caller-invoked checkpoints at all.
func TestChainCapBoundsSealedSegments(t *testing.T) {
	const chainCap = 3
	dir := t.TempDir()
	db, err := OpenWithOptions(dir, Options{
		Shards:              2,
		RotateBytes:         512,
		MaxSealedSegments:   chainCap,
		MaintenanceInterval: -1, // no daemon: the append path alone must hold the bound
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := legacyEntries(4000)
	for n, e := range entries {
		if err := db.Append(e.Key, e.At, e.Value); err != nil {
			t.Fatalf("append %d: %v", n, err)
		}
		for i := 0; i < db.ShardCount(); i++ {
			if got := db.ShardSealedSegments(i); got > chainCap {
				t.Fatalf("after append %d: shard %d holds %d sealed segments, cap %d", n, i, got, chainCap)
			}
		}
	}
	st := db.MaintenanceStats()
	if st.ForcedByChainLength == 0 {
		t.Fatalf("4000 appends over 512-byte segments never hit the chain cap: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("%d maintenance checkpoint errors", st.Errors)
	}
	points := db.PointCount()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.PointCount() != points {
		t.Fatalf("recovered %d points, want %d", re.PointCount(), points)
	}
}

// TestMaintainerDaemonReclaimsWedgedChains models the wedged-collector
// scenario: nothing ever calls Checkpoint, and one oversized batch (the
// equivalent of appends continuing while the checkpointing caller is
// stuck) rotates shards well past the cap inside a single shard-lock
// hold, where the append path cannot intervene. The rotation wake + the
// daemon must bring every chain back under the cap on their own.
func TestMaintainerDaemonReclaimsWedgedChains(t *testing.T) {
	const chainCap = 2
	dir := t.TempDir()
	db, err := OpenWithOptions(dir, Options{
		Shards:              2,
		RotateBytes:         256,
		MaxSealedSegments:   chainCap,
		MaintenanceInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// One batch holding each shard's lock across many rotations: chains
	// overshoot the cap with no per-append enforcement possible.
	if _, err := db.AppendBatch(legacyEntries(200)); err != nil {
		t.Fatal(err)
	}
	// The stats land after the chains drop (the checkpoint zeroes the
	// sealed counters mid-protocol, the counters increment at the end),
	// so the poll must wait for both.
	waitFor(t, 5*time.Second, "daemon to reclaim sealed chains", func() bool {
		for i := 0; i < db.ShardCount(); i++ {
			if db.ShardSealedSegments(i) > chainCap {
				return false
			}
		}
		st := db.MaintenanceStats()
		return st.Checkpoints > 0 && st.ForcedByChainLength > 0
	})
	if st := db.MaintenanceStats(); st.Errors != 0 {
		t.Fatalf("%d maintenance checkpoint errors", st.Errors)
	}
}

// TestDaemonVsManualCheckpointSingleFlight hammers a store with
// concurrent appends, manual Checkpoint calls, and a fast maintenance
// daemon whose both triggers are hot. Run under -race (CI does); the
// assertions are no errors, and exact recovery afterwards.
func TestDaemonVsManualCheckpointSingleFlight(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenWithOptions(dir, Options{
		Shards:               4,
		RotateBytes:          512,
		CheckpointAfterBytes: 4096,
		MaxSealedSegments:    3,
		MaintenanceInterval:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := legacyEntries(3000)
	var appender, checkpointer sync.WaitGroup
	stop := make(chan struct{})
	appender.Add(1)
	go func() {
		defer appender.Done()
		for _, e := range entries {
			if err := db.Append(e.Key, e.At, e.Value); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	checkpointer.Add(1)
	go func() {
		defer checkpointer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Checkpoint(); err != nil {
				t.Errorf("manual checkpoint: %v", err)
				return
			}
		}
	}()
	appender.Wait()
	close(stop)
	checkpointer.Wait()
	if st := db.MaintenanceStats(); st.Errors != 0 {
		t.Fatalf("%d maintenance checkpoint errors", st.Errors)
	}
	points, series := db.PointCount(), db.SeriesCount()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.PointCount() != points || re.SeriesCount() != series {
		t.Fatalf("recovered %d points / %d series, want %d / %d",
			re.PointCount(), re.SeriesCount(), points, series)
	}
}

// TestMaintenanceBackoffOnFailure pins the append path's stand-down
// after a failed maintenance checkpoint: with the byte trigger latched
// and checkpoints failing persistently, appends must keep succeeding
// and must not re-attempt a snapshot per call — one failed attempt,
// then the backoff window gates the rest.
func TestMaintenanceBackoffOnFailure(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenWithOptions(dir, Options{
		Shards:               2,
		RotateBytes:          -1,
		CheckpointAfterBytes: 2048,
		MaintenanceInterval:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	injected := errors.New("injected checkpoint failure")
	db.testCrash = func(p string) error {
		if p == "checkpoint:capture" {
			return injected
		}
		return nil
	}
	entries := legacyEntries(500) // ~23KB, far past the 2KB threshold
	for _, e := range entries {
		if err := db.Append(e.Key, e.At, e.Value); err != nil {
			t.Fatalf("append failed under checkpoint failure: %v", err)
		}
	}
	st := db.MaintenanceStats()
	if st.Errors != 1 {
		t.Fatalf("%d failed maintenance attempts across 500 appends, want exactly 1 (backoff)", st.Errors)
	}
	if st.Checkpoints != 0 {
		t.Fatalf("%d checkpoints committed through an always-failing hook", st.Checkpoints)
	}
	// Clear the fault and the backoff window: the latched trigger must
	// fire on the next append and clear the tail.
	db.testCrash = nil
	db.maintRetryAt.Store(0)
	if err := db.Append(entries[0].Key, t0.Add(1000*time.Minute), 42); err != nil {
		t.Fatal(err)
	}
	if st := db.MaintenanceStats(); st.Checkpoints != 1 || st.ForcedByBytes != 1 {
		t.Fatalf("latched trigger did not fire after the fault cleared: %+v", st)
	}
	if tail := db.WALBytesSinceCheckpoint(); tail >= 2048 {
		t.Fatalf("tail still %d bytes after recovery checkpoint", tail)
	}
}

// TestReplayTailSeedsByteTrigger pins the crash-restart accounting: the
// un-checkpointed tail a reopen replays must seed the byte counters, or
// a writer crashing just under the threshold every run would grow the
// tail forever without ever arming the size trigger.
func TestReplayTailSeedsByteTrigger(t *testing.T) {
	const threshold = 8 << 10
	dir := t.TempDir()
	opts := Options{
		Shards:               2,
		RotateBytes:          -1,
		CheckpointAfterBytes: threshold,
		MaintenanceInterval:  -1,
	}
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// ~6.9KB: below the threshold, so nothing fires before the "crash".
	for _, e := range legacyEntries(150) {
		if err := db.Append(e.Key, e.At, e.Value); err != nil {
			t.Fatal(err)
		}
	}
	before := db.WALBytesSinceCheckpoint()
	if before == 0 || before >= threshold {
		t.Fatalf("round 1 wrote %d WAL bytes; the test needs 0 < tail < %d", before, threshold)
	}
	if st := db.MaintenanceStats(); st.Checkpoints != 0 {
		t.Fatalf("trigger fired below the threshold: %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.WALBytesSinceCheckpoint(); got != before {
		t.Fatalf("reopen counts %d un-checkpointed WAL bytes, want the replayed tail %d", got, before)
	}
	// Round 2 crosses the threshold mid-way; the append path must fire
	// off the seeded total, bounding the tail again.
	for _, e := range laterEntries(150, 1000) {
		if err := re.Append(e.Key, e.At, e.Value); err != nil {
			t.Fatal(err)
		}
	}
	if st := re.MaintenanceStats(); st.ForcedByBytes == 0 {
		t.Fatalf("seeded byte trigger never fired across the threshold: %+v", st)
	}
	if tail := re.WALBytesSinceCheckpoint(); tail >= threshold {
		t.Fatalf("tail is %d bytes after the trigger fired (threshold %d)", tail, threshold)
	}
}

// TestBulkRestoreDaemonBoundsReplay loads a snapshot into a fresh
// durable store — a writer that is not the collector, so before the
// maintainer nothing would ever checkpoint the re-logged WAL — and
// asserts the daemon folds the restore into a checkpoint, so the next
// open replays almost nothing.
func TestBulkRestoreDaemonBoundsReplay(t *testing.T) {
	const threshold = 16 << 10
	src, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.AppendBatch(legacyEntries(2000)); err != nil {
		t.Fatal(err)
	}
	snap := t.TempDir() + "/bulk.snap"
	if err := src.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	wantPoints := src.PointCount()
	src.Close()

	dir := t.TempDir()
	opts := Options{
		Shards:               2,
		RotateBytes:          8 << 10,
		CheckpointAfterBytes: threshold,
		MaintenanceInterval:  2 * time.Millisecond,
	}
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadSnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	if db.WALBytesSinceCheckpoint() < threshold {
		t.Fatalf("restore re-logged only %d WAL bytes; the test needs > %d to arm the trigger",
			db.WALBytesSinceCheckpoint(), threshold)
	}
	// Wait on the stats, not the byte counter: the checkpoint decrements
	// the counter mid-protocol and bumps the stats only at the end, so a
	// counter-based wait can observe the drop before the stats land.
	waitFor(t, 5*time.Second, "daemon to checkpoint the restored tail", func() bool {
		st := db.MaintenanceStats()
		return st.Checkpoints > 0 && st.ForcedByBytes > 0
	})
	if tail := db.WALBytesSinceCheckpoint(); tail >= threshold {
		t.Fatalf("WAL tail still %d bytes after the daemon checkpoint (threshold %d)", tail, threshold)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.ReplayedWALBytes(); got >= threshold {
		t.Fatalf("reopen replayed %d WAL bytes; the daemon checkpoint should bound it below %d", got, threshold)
	}
	if re.PointCount() != wantPoints {
		t.Fatalf("recovered %d points, want %d", re.PointCount(), wantPoints)
	}
}
