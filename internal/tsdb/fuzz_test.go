package tsdb

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func FuzzParseSeriesKey(f *testing.F) {
	f.Add("sps|m5.xlarge|us-east-1|us-east-1a")
	f.Add("if|p3.2xlarge|eu-west-1|")
	f.Add("")
	f.Add("a|b")
	f.Add("||||")
	f.Add("price|a|b|c|d")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseSeriesKey(s)
		if err != nil {
			return
		}
		// A successfully parsed key must round-trip exactly.
		back, err := ParseSeriesKey(k.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", k.String(), err)
		}
		if back != k {
			t.Fatalf("round trip mismatch: %v vs %v", back, k)
		}
		// Mandatory fields are non-empty on success.
		if k.Dataset == "" || k.Type == "" || k.Region == "" {
			t.Fatalf("parse accepted incomplete key from %q", s)
		}
		// Exactly three separators in canonical form.
		if strings.Count(k.String(), "|") != 3 {
			t.Fatalf("canonical form %q malformed", k.String())
		}
	})
}

// fuzzSnapshotSeed builds a valid snapshot to seed the corpus.
func fuzzSnapshotSeed(seriesN, pointsN int) []byte {
	db, _ := OpenSharded("", 4)
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for s := 0; s < seriesN; s++ {
		k := SeriesKey{Dataset: "sps", Type: "m5.xlarge", Region: "us-east-1", AZ: string(rune('a' + s))}
		for i := 0; i < pointsN; i++ {
			_ = db.Append(k, base.Add(time.Duration(i)*time.Minute), float64(i%5))
		}
	}
	var buf bytes.Buffer
	_ = db.WriteSnapshot(&buf)
	return buf.Bytes()
}

// FuzzSnapshotCodec feeds arbitrary byte streams to LoadSnapshot. Corrupt
// input must return an error — never panic, never allocate absurdly, never
// silently drop series. Input that does load must re-encode to an
// equivalent store (full round trip).
func FuzzSnapshotCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	f.Add(fuzzSnapshotSeed(0, 0))
	f.Add(fuzzSnapshotSeed(1, 3))
	f.Add(fuzzSnapshotSeed(3, 7))
	// A couple of deliberate corruptions as starting points.
	s := fuzzSnapshotSeed(2, 4)
	s[len(s)-1] ^= 0xff
	f.Add(s)
	s2 := fuzzSnapshotSeed(2, 4)
	s2[9] ^= 0x01 // version byte
	f.Add(s2)

	f.Fuzz(func(t *testing.T, data []byte) {
		db, _ := OpenSharded("", 2)
		n, err := db.LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			// Malformed input must leave the store untouched.
			if db.SeriesCount() != 0 || db.PointCount() != 0 {
				t.Fatalf("failed load modified the store: %d series, %d points",
					db.SeriesCount(), db.PointCount())
			}
			return
		}
		if n < db.SeriesCount() {
			t.Fatalf("loaded %d records but store has %d series", n, db.SeriesCount())
		}
		// Round trip: what loaded must encode and reload identically.
		var buf bytes.Buffer
		if err := db.WriteSnapshot(&buf); err != nil {
			t.Fatalf("re-encode of loaded snapshot failed: %v", err)
		}
		db2, _ := OpenSharded("", 8)
		if _, err := db2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("reload of re-encoded snapshot failed: %v", err)
		}
		if db2.SeriesCount() != db.SeriesCount() || db2.PointCount() != db.PointCount() {
			t.Fatalf("round trip changed contents: %d/%d series, %d/%d points",
				db.SeriesCount(), db2.SeriesCount(), db.PointCount(), db2.PointCount())
		}
	})
}
