package tsdb

import (
	"strings"
	"testing"
)

func FuzzParseSeriesKey(f *testing.F) {
	f.Add("sps|m5.xlarge|us-east-1|us-east-1a")
	f.Add("if|p3.2xlarge|eu-west-1|")
	f.Add("")
	f.Add("a|b")
	f.Add("||||")
	f.Add("price|a|b|c|d")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseSeriesKey(s)
		if err != nil {
			return
		}
		// A successfully parsed key must round-trip exactly.
		back, err := ParseSeriesKey(k.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", k.String(), err)
		}
		if back != k {
			t.Fatalf("round trip mismatch: %v vs %v", back, k)
		}
		// Mandatory fields are non-empty on success.
		if k.Dataset == "" || k.Type == "" || k.Region == "" {
			t.Fatalf("parse accepted incomplete key from %q", s)
		}
		// Exactly three separators in canonical form.
		if strings.Count(k.String(), "|") != 3 {
			t.Fatalf("canonical form %q malformed", k.String())
		}
	})
}
