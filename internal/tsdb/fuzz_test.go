package tsdb

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func FuzzParseSeriesKey(f *testing.F) {
	f.Add("sps|m5.xlarge|us-east-1|us-east-1a")
	f.Add("if|p3.2xlarge|eu-west-1|")
	f.Add("")
	f.Add("a|b")
	f.Add("||||")
	f.Add("price|a|b|c|d")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := ParseSeriesKey(s)
		if err != nil {
			return
		}
		// A successfully parsed key must round-trip exactly.
		back, err := ParseSeriesKey(k.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", k.String(), err)
		}
		if back != k {
			t.Fatalf("round trip mismatch: %v vs %v", back, k)
		}
		// Mandatory fields are non-empty on success.
		if k.Dataset == "" || k.Type == "" || k.Region == "" {
			t.Fatalf("parse accepted incomplete key from %q", s)
		}
		// Exactly three separators in canonical form.
		if strings.Count(k.String(), "|") != 3 {
			t.Fatalf("canonical form %q malformed", k.String())
		}
	})
}

// FuzzManifestDecode feeds arbitrary bytes to the manifest parser that
// recovery trusts. Corrupt or hostile input must return an error — never
// panic, never yield a manifest violating the invariants replay indexes
// by (segment count matching the shard-layout list, ascending per-shard
// segment sequences, a plain-filename checkpoint reference). Accepted
// manifests must re-marshal into something the parser accepts again.
func FuzzManifestDecode(f *testing.F) {
	v2, _ := json.Marshal(manifest{
		Version: 2, Epoch: 3, Segments: 2, Checkpoint: checkpointName(4), CheckpointSeq: 4,
		Shards: []shardLayout{
			{Offset: 100, Segs: []segRef{{Seq: 1, Base: 0}, {Seq: 2, Base: 80}}},
			{Offset: 0, Segs: []segRef{{Seq: 1, Base: 0}}},
		},
	})
	v1, _ := json.Marshal(manifest{Version: 1, Epoch: 1, Segments: 2, Offsets: []uint64{0, 42}})
	f.Add(v2)
	f.Add(v1)
	f.Add([]byte(`{"version":2,"segments":1,"shards":[]}`))
	f.Add([]byte(`{"version":2,"segments":1,"shards":[{"offset":0,"segs":[]}]}`))
	f.Add([]byte(`{"version":1,"segments":3,"offsets":[0]}`))
	f.Add([]byte(`{"version":2,"segments":1,"checkpoint":"../escape","shards":[{"segs":[{"seq":1}]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data)
		if err != nil {
			return
		}
		if m.Segments <= 0 || len(m.Shards) != m.Segments {
			t.Fatalf("accepted manifest with %d segments but %d shard layouts", m.Segments, len(m.Shards))
		}
		if m.Version == manifestVersion {
			for si, sl := range m.Shards {
				if len(sl.Segs) == 0 {
					t.Fatalf("accepted v2 manifest with empty segment list for shard %d", si)
				}
				for j := 1; j < len(sl.Segs); j++ {
					if sl.Segs[j].Seq <= sl.Segs[j-1].Seq || sl.Segs[j].Base < sl.Segs[j-1].Base {
						t.Fatalf("accepted v2 manifest with non-ascending chain for shard %d", si)
					}
				}
			}
		}
		if m.Checkpoint != "" && strings.ContainsAny(m.Checkpoint, "/\\") {
			t.Fatalf("accepted checkpoint reference escaping the data dir: %q", m.Checkpoint)
		}
		raw, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal of accepted manifest failed: %v", err)
		}
		if _, err := parseManifest(raw); err != nil {
			t.Fatalf("re-parse of accepted manifest failed: %v", err)
		}
	})
}

// fuzzBlockSeed encodes one valid compressed block to seed the corpus.
func fuzzBlockSeed(n int, step time.Duration, v func(i int) float64) []byte {
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{At: base.Add(time.Duration(i) * step), Value: v(i)}
	}
	return encodeBlock(pts).data
}

// FuzzBlockDecode feeds hostile compressed blocks — truncated,
// bit-flipped, or arbitrary bytes, with an adversarial point count — to
// the block decoder that cold reads trust. Corrupt input must return an
// error: never panic, never over-allocate, never decode out-of-order
// timestamps. Input that does decode must survive a full re-encode /
// re-decode round trip bit-exactly at the point level. (The bitstream
// itself is not canonical: a hostile encoder may pick a wider dod bucket
// than needed, which decodes fine but re-encodes narrower.)
func FuzzBlockDecode(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add([]byte{0xff}, 1)
	f.Add(fuzzBlockSeed(1, time.Second, func(int) float64 { return 1.5 }), 1)
	f.Add(fuzzBlockSeed(64, time.Minute, func(i int) float64 { return float64(i % 5) }), 64)
	f.Add(fuzzBlockSeed(128, time.Second, func(i int) float64 { return 0.01 * float64(i) }), 128)
	s := fuzzBlockSeed(32, time.Minute, func(i int) float64 { return float64(i % 3) })
	s[len(s)/2] ^= 0x10
	f.Add(s, 32)
	s2 := fuzzBlockSeed(32, time.Minute, func(i int) float64 { return float64(i % 3) })
	f.Add(s2[:len(s2)/2], 32)

	f.Fuzz(func(t *testing.T, data []byte, count int) {
		pts, err := decodeBlock(data, count)
		if err != nil {
			return
		}
		if len(pts) != count {
			t.Fatalf("decode returned %d points for count %d", len(pts), count)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].At.Before(pts[i-1].At) {
				t.Fatalf("decode accepted out-of-order timestamps at %d", i)
			}
		}
		// Round trip: what decoded must re-encode and decode back to the
		// same points, bit-for-bit on the float values.
		back := encodeBlock(pts)
		again, err := decodeBlock(back.data, len(pts))
		if err != nil {
			t.Fatalf("re-decode of re-encoded block failed: %v", err)
		}
		for i := range pts {
			if !again[i].At.Equal(pts[i].At) ||
				math.Float64bits(again[i].Value) != math.Float64bits(pts[i].Value) {
				t.Fatalf("round trip changed point %d: %v vs %v", i, again[i], pts[i])
			}
		}
	})
}

// fuzzSnapshotSeed builds a valid snapshot to seed the corpus.
func fuzzSnapshotSeed(seriesN, pointsN int) []byte {
	db, _ := OpenSharded("", 4)
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for s := 0; s < seriesN; s++ {
		k := SeriesKey{Dataset: "sps", Type: "m5.xlarge", Region: "us-east-1", AZ: string(rune('a' + s))}
		for i := 0; i < pointsN; i++ {
			_ = db.Append(k, base.Add(time.Duration(i)*time.Minute), float64(i%5))
		}
	}
	var buf bytes.Buffer
	_ = db.WriteSnapshot(&buf)
	return buf.Bytes()
}

// FuzzSnapshotCodec feeds arbitrary byte streams to LoadSnapshot. Corrupt
// input must return an error — never panic, never allocate absurdly, never
// silently drop series. Input that does load must re-encode to an
// equivalent store (full round trip).
func FuzzSnapshotCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	f.Add(fuzzSnapshotSeed(0, 0))
	f.Add(fuzzSnapshotSeed(1, 3))
	f.Add(fuzzSnapshotSeed(3, 7))
	// A couple of deliberate corruptions as starting points.
	s := fuzzSnapshotSeed(2, 4)
	s[len(s)-1] ^= 0xff
	f.Add(s)
	s2 := fuzzSnapshotSeed(2, 4)
	s2[9] ^= 0x01 // version byte
	f.Add(s2)

	f.Fuzz(func(t *testing.T, data []byte) {
		db, _ := OpenSharded("", 2)
		n, err := db.LoadSnapshot(bytes.NewReader(data))
		if err != nil {
			// Malformed input must leave the store untouched.
			if db.SeriesCount() != 0 || db.PointCount() != 0 {
				t.Fatalf("failed load modified the store: %d series, %d points",
					db.SeriesCount(), db.PointCount())
			}
			return
		}
		if n < db.SeriesCount() {
			t.Fatalf("loaded %d records but store has %d series", n, db.SeriesCount())
		}
		// Round trip: what loaded must encode and reload identically.
		var buf bytes.Buffer
		if err := db.WriteSnapshot(&buf); err != nil {
			t.Fatalf("re-encode of loaded snapshot failed: %v", err)
		}
		db2, _ := OpenSharded("", 8)
		if _, err := db2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("reload of re-encoded snapshot failed: %v", err)
		}
		if db2.SeriesCount() != db.SeriesCount() || db2.PointCount() != db.PointCount() {
			t.Fatalf("round trip changed contents: %d/%d series, %d/%d points",
				db.SeriesCount(), db2.SeriesCount(), db.PointCount(), db2.PointCount())
		}
	})
}
