package tsdb

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/simrand"
)

// populate fills a store with a deterministic multi-series data set.
func populate(t testing.TB, db *DB, seriesN, pointsN int) {
	t.Helper()
	for s := 0; s < seriesN; s++ {
		k := SeriesKey{Dataset: DatasetPrice, Type: fmt.Sprintf("t%d.large", s), Region: "us-east-1", AZ: "us-east-1a"}
		for i := 0; i < pointsN; i++ {
			if err := db.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(s*pointsN+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func sameContents(t *testing.T, a, b *DB) {
	t.Helper()
	if a.SeriesCount() != b.SeriesCount() || a.PointCount() != b.PointCount() {
		t.Fatalf("contents differ: %d/%d series, %d/%d points",
			a.SeriesCount(), b.SeriesCount(), a.PointCount(), b.PointCount())
	}
	for _, k := range a.Keys(KeyFilter{}) {
		pa := noerr(a.Query(k, time.Time{}, t0.Add(1000*time.Hour)))
		pb := noerr(b.Query(k, time.Time{}, t0.Add(1000*time.Hour)))
		if len(pa) != len(pb) {
			t.Fatalf("series %v: %d vs %d points", k, len(pa), len(pb))
		}
		for i := range pa {
			if !pa[i].At.Equal(pb[i].At) || pa[i].Value != pb[i].Value {
				t.Fatalf("series %v point %d: %v vs %v", k, i, pa[i], pb[i])
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db, _ := OpenSharded("", 8)
	populate(t, db, 13, 47)

	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Loading into a store with a different shard count must not matter.
	db2, _ := OpenSharded("", 2)
	n, err := db2.LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 13 {
		t.Fatalf("loaded %d series records, want 13", n)
	}
	sameContents(t, db, db2)

	// Deterministic encoding: the same state snapshots to the same bytes.
	var buf2 bytes.Buffer
	if err := db2.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("snapshot encoding is not deterministic")
	}
}

func TestSnapshotSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "archive.snap")
	db, _ := Open("")
	populate(t, db, 5, 20)
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	db2, _ := Open("")
	if _, err := db2.LoadSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	sameContents(t, db, db2)
	if _, err := db2.LoadSnapshotFile(filepath.Join(dir, "missing.snap")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

// TestSnapshotMerge: loading on top of existing data appends when times
// advance and errors on overlap.
func TestSnapshotMerge(t *testing.T) {
	k := SeriesKey{Dataset: DatasetPrice, Type: "m5.large", Region: "r", AZ: "a"}
	early, _ := Open("")
	for i := 0; i < 5; i++ {
		_ = early.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	late, _ := Open("")
	for i := 10; i < 15; i++ {
		_ = late.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	var lateSnap bytes.Buffer
	if err := late.WriteSnapshot(&lateSnap); err != nil {
		t.Fatal(err)
	}

	// early + late snapshot: fine, 10 points total.
	if _, err := early.LoadSnapshot(bytes.NewReader(lateSnap.Bytes())); err != nil {
		t.Fatalf("merge of later snapshot failed: %v", err)
	}
	if got := early.PointCount(); got != 10 {
		t.Fatalf("merged store has %d points, want 10", got)
	}
	pts := noerr(early.Query(k, time.Time{}, t0.Add(time.Hour)))
	for i := 1; i < len(pts); i++ {
		if pts[i].At.Before(pts[i-1].At) {
			t.Fatal("merged series out of order")
		}
	}

	// late + late snapshot again: overlap (first snap point precedes the
	// series' last point? equal times are allowed, earlier are not).
	victim, _ := Open("")
	for i := 12; i < 20; i++ {
		_ = victim.Append(k, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
	if _, err := victim.LoadSnapshot(bytes.NewReader(lateSnap.Bytes())); err == nil {
		t.Error("overlapping snapshot load succeeded")
	}
}

// TestSnapshotRelogsToWAL: loading a snapshot into a WAL-backed store must
// re-log the points, so a later open of the directory alone (WAL replay,
// no snapshot) recovers the full archive.
func TestSnapshotRelogsToWAL(t *testing.T) {
	src, _ := Open("")
	populate(t, src, 4, 11)
	var snap bytes.Buffer
	if err := src.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Live points on top of the restored data, then shut down.
	k := db.Keys(KeyFilter{})[0]
	if err := db.Append(k, t0.Add(time.Hour), 99); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// WAL-only restart: snapshot contents must still be there.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := db2.PointCount(), 4*11+1; got != want {
		t.Fatalf("after WAL-only reopen: %d points, want %d", got, want)
	}
	if p, ok := noerr2(db2.Last(k)); !ok || p.Value != 99 {
		t.Fatalf("live point lost across reopen: %v %v", p, ok)
	}
}

// TestOversizedKeyRejected: keys longer than the uint16 length fields of
// the WAL and snapshot codecs must be rejected at append time, not
// silently truncated into unreadable records.
func TestOversizedKeyRejected(t *testing.T) {
	db, _ := Open("")
	big := make([]byte, 70000)
	for i := range big {
		big[i] = 'x'
	}
	k := SeriesKey{Dataset: string(big), Type: "t", Region: "r", AZ: "a"}
	if err := db.Append(k, t0, 1); err == nil {
		t.Error("oversized key accepted by Append")
	}
	if _, err := db.AppendIfChanged(k, t0, 1); err == nil {
		t.Error("oversized key accepted by AppendIfChanged")
	}
	if n, err := db.AppendBatch([]Entry{{Key: k, At: t0, Value: 1}}); err == nil || n != 0 {
		t.Errorf("oversized key accepted by AppendBatch: n=%d err=%v", n, err)
	}
	if db.PointCount() != 0 {
		t.Error("oversized key stored points")
	}
}

// TestSnapshotCorruption: every single-byte mutation of a valid snapshot
// must either fail cleanly or (for float payload bytes) load the same
// series/point structure — never panic, never drop series silently.
func TestSnapshotCorruption(t *testing.T) {
	db, _ := Open("")
	populate(t, db, 3, 9)
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Truncations at every length must error (header is the only prefix
	// that can decode: an empty store's snapshot is 14 bytes).
	for cut := 0; cut < len(valid); cut++ {
		db2, _ := Open("")
		if _, err := db2.LoadSnapshot(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d loaded successfully", cut)
		}
	}

	// Random byte flips: CRC (or structural validation) must catch
	// everything that changes meaning; a load that does succeed must not
	// lose series or points.
	rng := simrand.New(7).Stream("corrupt")
	for trial := 0; trial < 300; trial++ {
		mutated := bytes.Clone(valid)
		pos := rng.Intn(len(mutated))
		mutated[pos] ^= byte(1 + rng.Intn(255))
		db2, _ := Open("")
		n, err := db2.LoadSnapshot(bytes.NewReader(mutated))
		if err != nil {
			continue
		}
		if n != 3 || db2.SeriesCount() > 3 || db2.PointCount() > 27 {
			t.Fatalf("mutation at %d silently changed structure: %d records, %d series, %d points",
				pos, n, db2.SeriesCount(), db2.PointCount())
		}
	}
}

// TestSnapshotChunksOversizedSeries checks that a series whose encoded
// record would exceed the decoder's payload cap is split into multiple
// same-key records that merge back losslessly. (Exercised with a small
// artificial limit; in production chunkSnapshotSeries runs with
// maxSnapshotPayload, below which decodeSnapshot rejects nothing.)
func TestSnapshotChunksOversizedSeries(t *testing.T) {
	db, _ := OpenSharded("", 4)
	populate(t, db, 2, 100)
	recs := db.capture()

	// Chunk with a limit that fits ~8 points per record.
	key := recs[0].key.String()
	limit := 2 + len(key) + 4 + 16*8
	chunked := chunkSnapshotSeries(recs, limit)
	if len(chunked) <= len(recs) {
		t.Fatalf("chunking produced %d records from %d series", len(chunked), len(recs))
	}
	for _, rec := range chunked {
		if plen := 2 + len(rec.key.String()) + 4 + 16*len(rec.points); plen > limit {
			t.Fatalf("chunk payload %d exceeds limit %d", plen, limit)
		}
	}
	// The chunked stream must decode back into an identical store.
	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, chunked); err != nil {
		t.Fatal(err)
	}
	db2, _ := OpenSharded("", 4)
	if _, err := db2.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	sameContents(t, db, db2)

	// And the production encoder never emits a record above the cap the
	// decoder enforces (spot-check via re-encode of this store).
	buf.Reset()
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db3, _ := OpenSharded("", 4)
	if _, err := db3.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	sameContents(t, db, db3)
}
