package tsdb

// Differential tests for the rollup tiers: every rollup series must
// bitwise-equal recomputing its aggregate from the raw points, across
// the hot/cold boundary, across reopen, and after a crash mid-build.

import (
	"errors"
	"testing"
	"time"
)

// rollupOpts seals aggressively like sealedOpts but with block sizes
// that put several blocks per series so builds cross block boundaries.
func rollupOpts() Options {
	return Options{Shards: 4, RotateBytes: 1 << 16, HotTailPoints: 4, BlockPoints: 16, BlockCacheBytes: 1 << 14}
}

// rollupEntries builds a multi-day workload over a few series: points
// every 10 simulated minutes with drifting values, so 1h buckets hold
// ~6 points and 1d buckets ~144.
func rollupEntries(n, start int) []Entry {
	keys := sealKeys()
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		step := start + i/len(keys)
		out = append(out, Entry{
			Key:   keys[i%len(keys)],
			At:    t0.Add(time.Duration(step) * 10 * time.Minute),
			Value: float64((i*7)%23) + float64(i%5)/8,
		})
	}
	return out
}

// coldLastAt reads a series' cold high-water mark (white-box: the build
// only finalizes buckets strictly below bucketStart(lastAt, res)).
func coldLastAt(db *DB, k SeriesKey) (time.Time, bool) {
	sh := &db.shards[db.shardIndex(k)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	s := sh.series[k]
	if s == nil || s.cold == nil || s.cold.n == 0 {
		return time.Time{}, false
	}
	return s.cold.lastAt, true
}

// recomputeRollup aggregates raw points into res buckets, keeping only
// final buckets (start < finalEnd), accumulating in time order exactly
// like the builder so mean is bitwise comparable.
func recomputeRollup(raw []Point, res time.Duration, agg Agg, finalEnd int64) []Point {
	var out []Point
	var start int64
	var minV, maxV, sum, last float64
	n := 0
	flush := func() {
		if n == 0 {
			return
		}
		var v float64
		switch agg {
		case AggMin:
			v = minV
		case AggMax:
			v = maxV
		case AggMean:
			v = sum / float64(n)
		case AggLast:
			v = last
		}
		out = append(out, Point{At: time.Unix(0, start).UTC(), Value: v})
		n = 0
	}
	for _, p := range raw {
		at := p.At.UnixNano()
		bs := bucketStart(at, res)
		if bs >= finalEnd {
			break
		}
		if n > 0 && bs != start {
			flush()
		}
		if n == 0 {
			start, minV, maxV, sum = bs, p.Value, p.Value, 0
		}
		if p.Value < minV {
			minV = p.Value
		}
		if p.Value > maxV {
			maxV = p.Value
		}
		sum += p.Value
		last = p.Value
		n++
	}
	flush()
	return out
}

// assertRollupsMatch recomputes every (series, res, agg) rollup from the
// store's raw points and compares it bitwise against the rollup store.
func assertRollupsMatch(t *testing.T, db *DB) {
	t.Helper()
	ref := make(map[SeriesKey][]Point)
	for _, k := range db.Keys(KeyFilter{}) {
		ref[k] = noerr(db.Query(k, time.Time{}, t0.Add(100000*time.Hour)))
	}
	assertRollupsMatchRef(t, db, ref)
}

// assertRollupsMatchRef is assertRollupsMatch against an external raw
// reference — needed once retention has dropped raw history the rollups
// were (correctly) built from.
func assertRollupsMatchRef(t *testing.T, db *DB, ref map[SeriesKey][]Point) {
	t.Helper()
	ro := db.Rollups()
	if ro == nil {
		t.Fatal("store has no rollup tier")
	}
	end := t0.Add(100000 * time.Hour)
	if ro.PointCount() == 0 {
		t.Fatal("rollup tier is empty; the differential would pass vacuously")
	}
	for _, k := range db.Keys(KeyFilter{}) {
		raw := ref[k]
		lastCold, sealed := coldLastAt(db, k)
		for _, res := range rollupResolutions {
			var finalEnd int64
			if sealed {
				finalEnd = bucketStart(lastCold.UnixNano(), res)
			}
			for _, agg := range rollupAggs {
				rk := RollupKey(k, res, agg)
				got := noerr(ro.Query(rk, time.Time{}, end))
				want := recomputeRollup(raw, res, agg, finalEnd)
				if !sealed {
					want = nil
				}
				if len(got) != len(want) {
					t.Fatalf("%v %s/%s: %d rollup points, want %d", k, ResName(res), agg, len(got), len(want))
				}
				for i := range got {
					if !got[i].At.Equal(want[i].At) || got[i].Value != want[i].Value {
						t.Fatalf("%v %s/%s bucket %d: got (%v, %v), want (%v, %v)",
							k, ResName(res), agg, i, got[i].At, got[i].Value, want[i].At, want[i].Value)
					}
				}
			}
		}
	}
}

func TestRollupDifferential(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenWithOptions(dir, rollupOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: ~3 days of data, sealed once.
	a := rollupEntries(1800, 0)
	if n, err := db.AppendBatch(a); err != nil || n != len(a) {
		t.Fatalf("stored %d, err %v", n, err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	assertRollupsMatch(t, db)

	// Phase 2: incremental extension — the build must resume from the
	// high-water mark, not recompute (recomputation would still match,
	// but duplicates would not).
	b := rollupEntries(1200, 450)
	if n, err := db.AppendBatch(b); err != nil || n != len(b) {
		t.Fatalf("stored %d, err %v", n, err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	assertRollupsMatch(t, db)

	// Phase 3: reopen. Open runs a catch-up build; it must be a no-op
	// here (idempotent), and everything must still match.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = OpenWithOptions(dir, rollupOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	assertRollupsMatch(t, db)

	// A second checkpoint with no new raw data must not grow rollups.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	assertRollupsMatch(t, db)
}

// TestRollupCrashMidBuild crashes the checkpoint in the middle of the
// rollup build fan-over (some series rolled up, some not) and proves the
// reopen's catch-up build completes the job without duplicating the
// buckets the crashed build already appended.
func TestRollupCrashMidBuild(t *testing.T) {
	dir := t.TempDir()
	opts := rollupOpts()
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	a := rollupEntries(1800, 0)
	if n, err := db.AppendBatch(a); err != nil || n != len(a) {
		t.Fatalf("stored %d, err %v", n, err)
	}
	db.testCrash = func(point string) error {
		if point == "rollup:build:mid" {
			return errCrashPoint
		}
		return nil
	}
	if err := db.Checkpoint(); !errors.Is(err, errCrashPoint) {
		t.Fatalf("checkpoint returned %v, want injected crash", err)
	}
	db.testCrash = nil
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertRollupsMatch(t, re)
}

// TestRollupScanRatio is the acceptance bound: a 90-day window at 1h
// resolution must scan at least 50x fewer points than raw.
func TestRollupScanRatio(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 2, RotateBytes: 4 << 20, HotTailPoints: 4, BlockPoints: 512, BlockCacheBytes: 1 << 20}
	db, err := OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	k := SeriesKey{Dataset: DatasetPrice, Type: "m5.xlarge", Region: "us-east-1", AZ: "us-east-1a"}
	const days = 90
	const perDay = 24 * 60 // one point per minute
	batch := make([]Entry, 0, perDay)
	for d := 0; d < days; d++ {
		batch = batch[:0]
		for i := 0; i < perDay; i++ {
			at := t0.Add(time.Duration(d*perDay+i) * time.Minute)
			batch = append(batch, Entry{Key: k, At: at, Value: float64((d*perDay + i) % 97)})
		}
		if n, err := db.AppendBatch(batch); err != nil || n != len(batch) {
			t.Fatalf("day %d: stored %d, err %v", d, n, err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	from, to := t0, t0.Add(days*24*time.Hour)
	s0 := db.ScannedPoints()
	raw := noerr(db.Query(k, from, to))
	rawScanned := db.ScannedPoints() - s0

	ro := db.Rollups()
	r0 := ro.ScannedPoints()
	hourly := noerr(ro.Query(RollupKey(k, Res1h, AggMean), from, to))
	rollScanned := ro.ScannedPoints() - r0

	if len(raw) != days*perDay {
		t.Fatalf("raw window holds %d points, want %d", len(raw), days*perDay)
	}
	if len(hourly) == 0 || rollScanned == 0 {
		t.Fatalf("1h tier served nothing (points %d, scanned %d)", len(hourly), rollScanned)
	}
	if rawScanned < 50*rollScanned {
		t.Fatalf("raw scanned %d points vs 1h %d: ratio %.1fx, want >= 50x",
			rawScanned, rollScanned, float64(rawScanned)/float64(rollScanned))
	}
}
