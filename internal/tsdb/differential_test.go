package tsdb

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/simrand"
)

// refDB is the naive single-map reference implementation of the store's
// read/write semantics: plain slices, linear scans, no sharding, no locks.
// The differential test drives it and the real DB with identical op
// sequences and demands identical answers — the safety net under the
// sharded refactor.
type refDB struct {
	series map[SeriesKey][]Point
}

func newRefDB() *refDB { return &refDB{series: make(map[SeriesKey][]Point)} }

func (r *refDB) append(k SeriesKey, at time.Time, v float64) error {
	if k.Dataset == "" || k.Type == "" || k.Region == "" {
		return fmt.Errorf("ref: incomplete key")
	}
	pts := r.series[k]
	if n := len(pts); n > 0 && at.Before(pts[n-1].At) {
		return fmt.Errorf("ref: out of order")
	}
	r.series[k] = append(pts, Point{At: at, Value: v})
	return nil
}

func (r *refDB) appendIfChanged(k SeriesKey, at time.Time, v float64) (bool, error) {
	if pts := r.series[k]; len(pts) > 0 && pts[len(pts)-1].Value == v {
		return false, nil
	}
	if err := r.append(k, at, v); err != nil {
		return false, err
	}
	return true, nil
}

func (r *refDB) query(k SeriesKey, from, to time.Time) []Point {
	var out []Point
	for _, p := range r.series[k] {
		if !p.At.Before(from) && !p.At.After(to) {
			out = append(out, p)
		}
	}
	return out
}

func (r *refDB) valueAt(k SeriesKey, t time.Time) (float64, bool) {
	v, ok := 0.0, false
	for _, p := range r.series[k] {
		if p.At.After(t) {
			break
		}
		v, ok = p.Value, true
	}
	return v, ok
}

func (r *refDB) last(k SeriesKey) (Point, bool) {
	pts := r.series[k]
	if len(pts) == 0 {
		return Point{}, false
	}
	return pts[len(pts)-1], true
}

func (r *refDB) keys(f KeyFilter) []SeriesKey {
	var out []SeriesKey
	for k := range r.series {
		if f.matches(k) {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func (r *refDB) pointCount() int {
	n := 0
	for _, pts := range r.series {
		n += len(pts)
	}
	return n
}

// TestDifferentialAgainstReference drives the sharded DB and the reference
// with the same randomized op sequence and compares every result.
func TestDifferentialAgainstReference(t *testing.T) {
	rng := simrand.New(2022)
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				r := rng.StreamN("diff", shards*1000+trial)
				db, err := OpenSharded("", shards)
				if err != nil {
					t.Fatal(err)
				}
				ref := newRefDB()

				// A small key universe forces collisions on series,
				// dedup hits, and out-of-order rejections.
				datasets := []string{DatasetPlacementScore, DatasetPrice, DatasetInterruptFree}
				types := []string{"m5.xlarge", "c5.large", "r5.2xlarge", "p3.8xlarge"}
				regions := []string{"us-east-1", "eu-west-1"}
				azs := []string{"a", "b", ""}
				randKey := func() SeriesKey {
					return SeriesKey{
						Dataset: datasets[r.Intn(len(datasets))],
						Type:    types[r.Intn(len(types))],
						Region:  regions[r.Intn(len(regions))],
						AZ:      azs[r.Intn(len(azs))],
					}
				}
				randTime := func() time.Time {
					return t0.Add(time.Duration(r.Intn(10000)) * time.Second)
				}

				const ops = 600
				for op := 0; op < ops; op++ {
					switch r.Intn(6) {
					case 0, 1: // append (random time: may be rejected as out of order)
						k, at, v := randKey(), randTime(), float64(r.Intn(8))
						gotErr := db.Append(k, at, v)
						wantErr := ref.append(k, at, v)
						if (gotErr == nil) != (wantErr == nil) {
							t.Fatalf("op %d: Append(%v, %v, %v) err=%v, ref err=%v", op, k, at, v, gotErr, wantErr)
						}
					case 2: // dedup append
						k, at, v := randKey(), randTime(), float64(r.Intn(4))
						got, gotErr := db.AppendIfChanged(k, at, v)
						want, wantErr := ref.appendIfChanged(k, at, v)
						if got != want || (gotErr == nil) != (wantErr == nil) {
							t.Fatalf("op %d: AppendIfChanged(%v) = (%v, %v), ref (%v, %v)", op, k, got, gotErr, want, wantErr)
						}
					case 3: // batch append mirrored point-by-point onto the reference
						n := 1 + r.Intn(8)
						entries := make([]Entry, 0, n)
						for i := 0; i < n; i++ {
							entries = append(entries, Entry{Key: randKey(), At: randTime(), Value: float64(r.Intn(8))})
						}
						got, _ := db.AppendBatch(entries)
						want := 0
						for _, e := range entries {
							if ref.append(e.Key, e.At, e.Value) == nil {
								want++
							}
						}
						if got != want {
							t.Fatalf("op %d: AppendBatch stored %d, ref %d", op, got, want)
						}
					case 4: // range query
						k := randKey()
						from := randTime()
						to := from.Add(time.Duration(r.Intn(5000)) * time.Second)
						got := noerr(db.Query(k, from, to))
						want := ref.query(k, from, to)
						if len(got) != len(want) {
							t.Fatalf("op %d: Query(%v) = %d points, ref %d", op, k, len(got), len(want))
						}
						for i := range got {
							if !got[i].At.Equal(want[i].At) || got[i].Value != want[i].Value {
								t.Fatalf("op %d: Query(%v)[%d] = %v, ref %v", op, k, i, got[i], want[i])
							}
						}
					default: // point lookups
						k, at := randKey(), randTime()
						gv, gok := noerr2(db.ValueAt(k, at))
						wv, wok := ref.valueAt(k, at)
						if gok != wok || (gok && gv != wv) {
							t.Fatalf("op %d: ValueAt(%v, %v) = (%v, %v), ref (%v, %v)", op, k, at, gv, gok, wv, wok)
						}
						gp, gok2 := noerr2(db.Last(k))
						wp, wok2 := ref.last(k)
						if gok2 != wok2 || (gok2 && (gp.Value != wp.Value || !gp.At.Equal(wp.At))) {
							t.Fatalf("op %d: Last(%v) = (%v, %v), ref (%v, %v)", op, k, gp, gok2, wp, wok2)
						}
					}
				}

				// Final whole-store comparison.
				if got, want := db.PointCount(), ref.pointCount(); got != want {
					t.Fatalf("PointCount = %d, ref %d", got, want)
				}
				if got, want := db.SeriesCount(), len(ref.series); got != want {
					t.Fatalf("SeriesCount = %d, ref %d", got, want)
				}
				for _, f := range []KeyFilter{{}, {Dataset: DatasetPrice}, {Region: "us-east-1"}, {Dataset: DatasetPlacementScore, AZ: "a"}} {
					got, want := db.Keys(f), ref.keys(f)
					if len(got) != len(want) {
						t.Fatalf("Keys(%+v) = %d keys, ref %d", f, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("Keys(%+v)[%d] = %v, ref %v", f, i, got[i], want[i])
						}
					}
				}
				// Every series' full contents, including window means.
				for k, pts := range ref.series {
					got := noerr(db.Query(k, t0.Add(-time.Hour), t0.Add(20000*time.Second)))
					if len(got) != len(pts) {
						t.Fatalf("series %v: %d points, ref %d", k, len(got), len(pts))
					}
					from := t0
					to := t0.Add(10000 * time.Second)
					gm, gok := noerr2(db.WindowMean(k, from, to))
					if gok && (math.IsNaN(gm) || math.IsInf(gm, 0)) {
						t.Fatalf("series %v: WindowMean = %v", k, gm)
					}
				}
			}
		})
	}
}
