package tsdb

// blockCache is the store-wide, size-bounded LRU over decoded cold
// blocks. Cold reads decode whole blocks (the unit of compression), so
// a window scan touching B blocks costs B decodes the first time and
// map lookups afterwards; the bound is in bytes of decoded points
// (16 per point — one Point's timestamp and value payload), which is
// the number resident-memory budgeting cares about.
//
// The cache is keyed by (block file sequence, block offset): block
// files are immutable and never reused under the same sequence number,
// so an entry can never go stale — eviction exists purely for the size
// bound. Entries are whole decoded []Point slices shared read-only by
// every reader (callers must not mutate them). A singleflight per key
// is deliberately absent: duplicate concurrent decodes of one block
// are harmless (last store wins) and rarer than the lock traffic a
// per-key wait channel would add on every hit.

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// DefaultBlockCacheBytes is the block cache's size bound when Options
// leaves BlockCacheBytes zero: enough for ~4M decoded cold points.
const DefaultBlockCacheBytes = 64 << 20

type blockCacheKey struct {
	seq uint64
	off uint64
}

type blockCacheEntry struct {
	key  blockCacheKey
	pts  []Point
	cost int64
}

type blockCache struct {
	mu    sync.Mutex
	max   int64
	size  int64
	lru   *list.List // front = most recent
	index map[blockCacheKey]*list.Element

	hits      obs.Counter
	misses    obs.Counter
	evictions obs.Counter
}

// newBlockCache builds a cache bounded to max bytes of decoded points.
// max <= 0 disables caching: every cold read decodes its blocks.
func newBlockCache(max int64) *blockCache {
	return &blockCache{max: max, lru: list.New(), index: make(map[blockCacheKey]*list.Element)}
}

func (c *blockCache) get(key blockCacheKey) ([]Point, bool) {
	if c.max <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.index[key]
	if ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*blockCacheEntry).pts, true
}

func (c *blockCache) put(key blockCacheKey, pts []Point) {
	if c.max <= 0 {
		return
	}
	cost := int64(len(pts)) * 16
	if cost > c.max {
		return // a block larger than the whole budget would just thrash
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		// A concurrent decode of the same immutable block landed first;
		// keep it.
		c.lru.MoveToFront(el)
		return
	}
	c.index[key] = c.lru.PushFront(&blockCacheEntry{key: key, pts: pts, cost: cost})
	c.size += cost
	for c.size > c.max {
		last := c.lru.Back()
		if last == nil {
			break
		}
		ent := last.Value.(*blockCacheEntry)
		c.lru.Remove(last)
		delete(c.index, ent.key)
		c.size -= ent.cost
		c.evictions.Add(1)
	}
}

// BlockCacheStats are the cumulative block-cache counters plus its
// current residency, surfaced through /api/v1/meta.
type BlockCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Bytes is the decoded-point bytes currently resident; MaxBytes is
	// the configured bound (0 = caching disabled).
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"maxBytes"`
}

// BlockCacheStats returns the block cache's counters and residency.
func (db *DB) BlockCacheStats() BlockCacheStats {
	c := db.bcache
	if c == nil {
		return BlockCacheStats{}
	}
	c.mu.Lock()
	size := c.size
	c.mu.Unlock()
	return BlockCacheStats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Bytes:     size,
		MaxBytes:  max(c.max, 0),
	}
}

// coldBlockPoints returns one sealed block's decoded points, consulting
// the cache first. The returned slice is shared and must not be
// mutated. Decode failures (bit rot, a vanished file) are surfaced to
// the caller; read paths count them and degrade to hot-only results
// rather than panic — see coldErr.
func (db *DB) coldBlockPoints(b *blockMeta) ([]Point, error) {
	key := blockCacheKey{seq: b.seg.seq, off: b.off}
	if pts, ok := db.bcache.get(key); ok {
		return pts, nil
	}
	pts, err := readBlockData(b)
	if err != nil {
		return nil, err
	}
	db.bcache.put(key, pts)
	return pts, nil
}
