package tsdb

// Replication support: artifact enumeration for checkpoint-shipping
// followers.
//
// A durable store's committed state is entirely described by its MANIFEST
// plus the files the manifest references: the checkpoint snapshot, the
// sealed block files, the WAL segment chains, and the nested rollup
// store's equivalents one directory down. All of those files are written
// once and never modified in place (the one exception — the rollup
// store's active segments — is append-only between parent checkpoints and
// is flagged Mutable below), so a replica can be built by copying the
// artifacts and atomically installing the manifest last: the exact
// protocol the checkpoint itself uses, with HTTP in place of rename
// ordering on one machine. A follower that crashes mid-copy holds an old
// manifest referencing only old files — a stale replica, never a corrupt
// one.
//
// ReplicationSnapshot is the enumeration half of that contract;
// CommitReplicatedManifest is the install half. Both treat the manifest
// bytes as opaque-but-validated: the follower ships exactly what the
// primary committed.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// ReplicationArtifact names one file of a replication snapshot, relative
// to the store directory (rollup-store artifacts carry a "rollup/"
// prefix). Size is the file's on-disk size at capture time. Mutable marks
// the only artifacts whose bytes can change under an unchanged name — the
// rollup store's active WAL segments, which grow at parent checkpoints —
// so a puller re-fetches them unconditionally instead of trusting a
// name+size match.
type ReplicationArtifact struct {
	Name    string `json:"name"`
	Size    int64  `json:"size"`
	Mutable bool   `json:"mutable,omitempty"`
}

// ReplicationSnapshot is a coherent listing of a store's committed state:
// the manifest bytes as committed (byte-identical to the MANIFEST file)
// and every file a replica needs to serve that manifest. Rollup holds the
// nested rollup store's snapshot when the store maintains one; its
// artifact names are NOT prefixed (the parent-level flattening adds the
// "rollup/" prefix — see flatten in the archive layer).
type ReplicationSnapshot struct {
	Epoch         uint64                `json:"epoch"`
	CheckpointSeq uint64                `json:"checkpointSeq"`
	Manifest      json.RawMessage       `json:"manifest"`
	Artifacts     []ReplicationArtifact `json:"artifacts"`
	Rollup        *ReplicationSnapshot  `json:"rollup,omitempty"`
}

// ReplicationSnapshot captures a coherent artifact listing under the
// checkpoint lock: the manifest cannot be replaced, blocks cannot seal,
// and sealed segments cannot be unlinked while it runs. Rotations may
// still seal new segments concurrently (they only take shard locks);
// that is harmless — an extra sealed segment just appears in the listing,
// and the chains stay coherent because sealing never changes committed
// bytes. The rollup store is flushed first and is quiescent under the
// parent's lock (all rollup writes happen inside parent checkpoints), so
// its active segments are listed at a stable size.
func (db *DB) ReplicationSnapshot() (*ReplicationSnapshot, error) {
	if db.dir == "" {
		return nil, errors.New("tsdb: memory-only store has no replication artifacts")
	}
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	if db.closed.Load() {
		return nil, errors.New("tsdb: store is closed")
	}
	snap, err := db.replicationSnapshotLocked(false)
	if err != nil {
		return nil, err
	}
	if db.rollup != nil {
		if err := db.rollup.Flush(); err != nil {
			return nil, fmt.Errorf("tsdb: flushing rollup store for replication: %w", err)
		}
		db.rollup.cpMu.Lock()
		rs, rerr := db.rollup.replicationSnapshotLocked(true)
		db.rollup.cpMu.Unlock()
		if rerr != nil {
			return nil, rerr
		}
		snap.Rollup = rs
	}
	return snap, nil
}

// replicationSnapshotLocked enumerates one store level; the caller holds
// its cpMu. includeActive additionally lists each shard's active segment
// (marked Mutable) — used for the rollup store, whose active tail is part
// of committed rollup state, but not for the parent, whose active
// segments take concurrent appends and are covered by the next rotation
// or checkpoint instead.
func (db *DB) replicationSnapshotLocked(includeActive bool) (*ReplicationSnapshot, error) {
	raw, err := json.Marshal(db.man)
	if err != nil {
		return nil, fmt.Errorf("tsdb: encoding manifest for replication: %w", err)
	}
	s := &ReplicationSnapshot{
		Epoch:         db.man.Epoch,
		CheckpointSeq: db.man.CheckpointSeq,
		Manifest:      raw,
	}
	add := func(name string, mutable bool) error {
		st, err := os.Stat(filepath.Join(db.dir, name))
		if err != nil {
			return fmt.Errorf("tsdb: replication artifact %s: %w", name, err)
		}
		s.Artifacts = append(s.Artifacts, ReplicationArtifact{Name: name, Size: st.Size(), Mutable: mutable})
		return nil
	}
	if db.man.Checkpoint != "" {
		if err := add(db.man.Checkpoint, false); err != nil {
			return nil, err
		}
	}
	for _, seq := range db.man.Blocks {
		if err := add(blockFileName(seq), false); err != nil {
			return nil, err
		}
	}
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		sealed := make([]uint64, 0, len(sh.sealed)+1)
		for _, sg := range sh.sealed {
			sealed = append(sealed, sg.seq)
		}
		var active uint64
		haveActive := includeActive && sh.walF != nil
		if haveActive {
			active = sh.walSeq
		}
		sh.mu.RUnlock()
		for _, seq := range sealed {
			if err := add(rotSegName(i, seq), false); err != nil {
				return nil, err
			}
		}
		if haveActive {
			if err := add(rotSegName(i, active), true); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// ReplicationPosition reports the committed (epoch, checkpoint sequence)
// pair under the checkpoint lock. File-serving endpoints compare it to
// the position a client's listing was captured at: a mismatch means a
// checkpoint (or re-shard) landed in between and the client must re-list
// before the files it still wants are reclaimed under it.
func (db *DB) ReplicationPosition() (epoch, checkpointSeq uint64) {
	db.cpMu.Lock()
	defer db.cpMu.Unlock()
	return db.man.Epoch, db.man.CheckpointSeq
}

// Dir returns the store's data directory; empty for memory-only stores.
func (db *DB) Dir() string { return db.dir }

// ReadOnly reports whether the store was opened with Options.ReadOnly.
func (db *DB) ReadOnly() bool { return db.readOnly }

// IsReplicationArtifactName reports whether name is a well-formed
// artifact name a ReplicationSnapshot could list: a rotating WAL segment,
// a checkpoint snapshot, or a block file, optionally under a single
// "rollup/" prefix. Everything else — including any path that is not in
// canonical spelling — is rejected, which is what makes the name safe to
// join onto a directory for serving (no traversal, no reaching files the
// protocol does not own).
func IsReplicationArtifactName(name string) bool {
	if rest, ok := strings.CutPrefix(name, "rollup/"); ok {
		name = rest
	}
	var i int
	var seq uint64
	if scanRotSegName(name, &i, &seq) {
		return true
	}
	if scanBlockFileName(name, &seq) {
		return true
	}
	if n, err := fmt.Sscanf(name, "checkpoint-%d.snap", &seq); err == nil && n == 1 && name == checkpointName(seq) {
		return true
	}
	return false
}

// ValidateReplicatedManifest checks that raw parses as a manifest of the
// current version — the only layout a read-only reopen can serve without
// migrating, which a follower must never do.
func ValidateReplicatedManifest(raw []byte) error {
	m, err := parseManifest(raw)
	if err != nil {
		return err
	}
	if m.Version != manifestVersion {
		return fmt.Errorf("tsdb: replicated manifest has version %d, need %d", m.Version, manifestVersion)
	}
	return nil
}

// CommitReplicatedManifest atomically installs raw as dir's MANIFEST:
// validate, write to a temp file, fsync, rename, fsync the directory —
// the same rename that commits a checkpoint commits the replica. Every
// artifact the manifest references must already be staged in dir; the
// caller (the puller) owns that ordering, exactly as the checkpoint owns
// writing its snapshot before its manifest.
func CommitReplicatedManifest(dir string, raw []byte) error {
	if err := ValidateReplicatedManifest(raw); err != nil {
		return err
	}
	return atomicWriteFile(filepath.Join(dir, manifestName), func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	}, nil)
}

// SyncReplicaDir fsyncs dir, making staged artifact renames durable
// before the manifest that references them is committed. Exported for
// the puller, which stages files with plain writes + renames and must
// order them against CommitReplicatedManifest the way the checkpoint
// orders its own file writes against the manifest rename.
func SyncReplicaDir(dir string) error { return syncDir(dir) }

// HasCommittedManifest reports whether dir holds a committed manifest a
// read-only open can serve (current version; older layouts need a
// writable open to migrate first). A follower uses it at startup to
// decide between reopening an existing replica and serving empty until
// its first pull lands.
func HasCommittedManifest(dir string) bool {
	man, ok, err := readManifest(dir)
	return err == nil && ok && man.Version == manifestVersion
}
