package tsdb

// Materialized rollup tiers and per-dataset raw retention.
//
// Long-horizon queries (the paper's month-scale Figures 6/7 views) should
// not pay to decode every raw tick: the maintenance cycle materializes
// downsampled rollups — min/max/mean/last at 1h and 1d — as ordinary
// series in a dedicated nested store at <dir>/rollup, built incrementally
// from sealed history at checkpoint time. Query-time resolution selection
// (internal/archive's resolution= parameter) then reads ~2k 1h buckets
// for a 90-day window instead of ~130k raw points.
//
// # Build protocol
//
// The builder runs at the tail of every checkpoint, under cpMu, after the
// seal attach. Only *finalized* buckets are materialized: appends are
// monotone per series and every hot point sits at or after cold.lastAt,
// so a bucket [t, t+res) is immutable exactly when t+res <= cold.lastAt —
// equivalently, when t < bucketStart(lastAt). Finalized buckets therefore
// contain only sealed points, and the build reads them through the same
// seriesView iteration the query paths use, one decoded block resident at
// a time, outside the shard locks.
//
// Restartability rides the rollup store's own contents: each of a series'
// eight rollup series (4 aggregates x 2 resolutions) carries its own
// high-water mark — its last bucket timestamp — and the build appends
// only buckets strictly after it. The marks are per-aggregate, not
// per-series: the four aggregate series hash to different rollup shards
// and a batch append is not atomic across shards, so a crash mid-build
// can persist an aggregate subset of a bucket; on retry each aggregate
// resumes from its own mark and no equal-timestamp duplicate is ever
// appended. Raw blocks are immutable, so rebuilding a bucket from the
// same sealed points is bitwise deterministic (mean is summed in time
// order), which is what the differential tests assert.
//
// # Retention protocol
//
// Per-dataset retention (Options.RetainRaw) drops raw *cold blocks*
// whose entire range precedes the dataset's cut. The invariant — never
// drop a raw point no committed rollup covers — is structural:
//
//	cut = min(maxAt - horizon, coverage)
//	coverage = min over the dataset's sealed series of bucketStart_1d(lastAt)
//
// so cut <= coverage <= every series' finalized frontier, and a dropped
// block's points (all below cut) lie in finalized, already-built buckets.
// Backfilled series drag coverage down and simply postpone the cut. The
// enforcement order is: build rollups (same cpMu hold, so coverage is
// exact, not a stale atomic), checkpoint the rollup store (covering
// buckets are durable), commit the parent manifest carrying the cut and
// the shrunk block-file list (the usual rename commit point), detach the
// dropped blocks in memory under the shard locks, then unlink block files
// that became entirely dead. Partially-dead files stay; their dropped
// blocks are re-dropped at open by replaying the manifest's committed
// cuts against freshly built coverage. File handles stay open until
// Close, so a reader holding a pre-drop seriesView keeps working.
//
// Hot points are never dropped: retention is a cold-tier policy, and the
// hot tail is bounded by sealing already.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Rollup resolutions. Each finalized raw bucket of these widths is
// materialized as four rollup series (see Agg).
const (
	Res1h = time.Hour
	Res1d = 24 * time.Hour
)

// rollupResolutions lists the materialized resolutions, finest first.
var rollupResolutions = [...]time.Duration{Res1h, Res1d}

// ResName returns the canonical name of a rollup resolution ("1h", "1d"),
// or "" for a width the store does not materialize.
func ResName(res time.Duration) string {
	switch res {
	case Res1h:
		return "1h"
	case Res1d:
		return "1d"
	}
	return ""
}

// ParseResolution parses a canonical rollup resolution name. It reports
// false for anything else — including "raw" and "auto", which are query
// protocol concepts, not stored resolutions.
func ParseResolution(s string) (time.Duration, bool) {
	switch s {
	case "1h":
		return Res1h, true
	case "1d":
		return Res1d, true
	}
	return 0, false
}

// Agg identifies one downsampling aggregate.
type Agg uint8

const (
	AggMin Agg = iota
	AggMax
	AggMean
	AggLast
)

// rollupAggs lists every materialized aggregate, in stored order.
var rollupAggs = [...]Agg{AggMin, AggMax, AggMean, AggLast}

func (a Agg) String() string {
	switch a {
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggMean:
		return "mean"
	case AggLast:
		return "last"
	}
	return fmt.Sprintf("agg(%d)", uint8(a))
}

// ParseAgg parses a canonical aggregate name.
func ParseAgg(s string) (Agg, bool) {
	switch s {
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	case "mean":
		return AggMean, true
	case "last":
		return AggLast, true
	}
	return 0, false
}

// RollupKey maps a raw series key to the rollup series holding one of its
// aggregates at one resolution. The rollup series lives in the nested
// rollup store, keyed by a dataset suffix ("price~1h~mean") — '~' cannot
// collide with the canonical form's '|' separator, so rollup keys survive
// the WAL and snapshot round trips like any other key.
func RollupKey(k SeriesKey, res time.Duration, agg Agg) SeriesKey {
	k.Dataset = k.Dataset + "~" + ResName(res) + "~" + agg.String()
	return k
}

// bucketStart floors a unix-nano timestamp to its bucket's start.
func bucketStart(at int64, res time.Duration) int64 {
	r := int64(res)
	m := at % r
	if m < 0 {
		m += r
	}
	return at - m
}

// noCut marks an unknown timestamp in the retention atomics (no append
// seen yet, no coverage built yet, no cut committed yet).
const noCut = math.MinInt64

// retentionState is one retained dataset's live bookkeeping. All fields
// are atomics: the append path bumps maxAt, the maintenance trigger reads
// everything lock-free, and the authoritative transitions (coverage, cut)
// happen under cpMu.
type retentionState struct {
	horizon time.Duration
	// maxAt is the dataset's newest raw timestamp (simulated time, not
	// wall clock — the archive replays history far faster than reality).
	maxAt atomic.Int64
	// coverage is the dataset's rollup frontier as of the last build:
	// every raw point below it lies in a materialized finalized bucket.
	coverage atomic.Int64
	// cut is the committed retention cut (manifest Retain): raw cold
	// blocks wholly below it have been dropped.
	cut atomic.Int64
	// lastEval is the cut estimate at the last enforcement evaluation.
	// The trigger fires only when the estimate moves past it, so a store
	// with nothing new to drop does not checkpoint every tick.
	lastEval atomic.Int64
	// dropped counts raw points dropped by retention since open.
	dropped obs.Counter
}

// casMax raises a to v if v is larger.
func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// cutEstimate returns the dataset's current retention cut candidate:
// min(maxAt - horizon, coverage). ok is false until an append exists.
// Unknown coverage (no build has run yet — e.g. a fresh store before its
// first checkpoint) is treated optimistically as unbounded so the
// trigger can arm and drive the checkpoint that builds it; this cannot
// over-drop, because enforcement evaluates after the build under the
// same lock, when coverage is real — and a dataset whose coverage is
// still unknown then has no sealed blocks to drop at all.
func (rs *retentionState) cutEstimate() (int64, bool) {
	maxAt, cov := rs.maxAt.Load(), rs.coverage.Load()
	if maxAt == noCut {
		return 0, false
	}
	est := maxAt - int64(rs.horizon)
	if cov != noCut && cov < est {
		est = cov
	}
	return est, true
}

// noteAppend records a raw append's timestamp for the dataset's retention
// trigger. Called from the append path only when retention is configured.
func (db *DB) noteAppend(ds string, at time.Time) {
	if rs := db.retain[ds]; rs != nil {
		casMax(&rs.maxAt, at.UnixNano())
	}
}

// Rollups returns the nested store holding the materialized rollup
// series, or nil when the store does not maintain rollups (memory-only,
// sealing disabled, or the rollup store itself). Query it with RollupKey.
func (db *DB) Rollups() *DB { return db.rollup }

// RetentionCut returns the dataset's committed retention cut: raw points
// before it may have been dropped (rollups still cover them). ok is false
// when the dataset has no retention configured or nothing was ever cut.
func (db *DB) RetentionCut(dataset string) (time.Time, bool) {
	rs := db.retain[dataset]
	if rs == nil {
		return time.Time{}, false
	}
	cut := rs.cut.Load()
	if cut == noCut {
		return time.Time{}, false
	}
	return time.Unix(0, cut).UTC(), true
}

// RetentionStat is one retained dataset's surfaced state.
type RetentionStat struct {
	// Dataset is the retained dataset.
	Dataset string
	// Horizon is the configured raw horizon behind the dataset's newest
	// point.
	Horizon time.Duration
	// Cut is the committed retention cut; zero when nothing was cut yet.
	Cut time.Time
	// CoveredThrough is the rollup coverage frontier from the last build;
	// zero before the first build. The cut never passes it.
	CoveredThrough time.Time
	// DroppedPoints counts raw points retention dropped since open.
	DroppedPoints int64
}

// RetentionStats returns every retained dataset's state, sorted by
// dataset.
func (db *DB) RetentionStats() []RetentionStat {
	out := make([]RetentionStat, 0, len(db.retain))
	for ds, rs := range db.retain {
		st := RetentionStat{Dataset: ds, Horizon: rs.horizon, DroppedPoints: int64(rs.dropped.Value())}
		if cut := rs.cut.Load(); cut != noCut {
			st.Cut = time.Unix(0, cut).UTC()
		}
		if cov := rs.coverage.Load(); cov != noCut {
			st.CoveredThrough = time.Unix(0, cov).UTC()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dataset < out[j].Dataset })
	return out
}

// ParseRetainRaw parses a -retain-raw flag value: comma-separated
// <dataset>=<horizon> pairs where horizon is a Go duration ("720h") or a
// day count ("90d").
func ParseRetainRaw(s string) (map[string]time.Duration, error) {
	out := make(map[string]time.Duration)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ds, spec, ok := strings.Cut(part, "=")
		if !ok || ds == "" || spec == "" {
			return nil, fmt.Errorf("tsdb: retain-raw entry %q: want <dataset>=<horizon>", part)
		}
		var d time.Duration
		if days, dok := strings.CutSuffix(spec, "d"); dok {
			n, err := strconv.Atoi(days)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("tsdb: retain-raw horizon %q: want a positive day count", spec)
			}
			d = time.Duration(n) * 24 * time.Hour
		} else {
			var err error
			d, err = time.ParseDuration(spec)
			if err != nil {
				return nil, fmt.Errorf("tsdb: retain-raw horizon %q: %v", spec, err)
			}
		}
		if d <= 0 {
			return nil, fmt.Errorf("tsdb: retain-raw horizon %q: must be positive", spec)
		}
		if _, dup := out[ds]; dup {
			return nil, fmt.Errorf("tsdb: retain-raw dataset %q repeated", ds)
		}
		out[ds] = d
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tsdb: retain-raw %q: no entries", s)
	}
	return out, nil
}

// rollupCoverage is one build's outcome: each sealed series' finalized
// frontier at the coarsest resolution (every raw point below it lies in a
// materialized bucket at every resolution), and the per-dataset minimum
// that bounds the retention cut.
type rollupCoverage struct {
	perSeries  map[SeriesKey]int64
	perDataset map[string]int64
}

// buildRollupsLocked incrementally materializes rollups for every sealed
// series and returns the resulting coverage. The caller holds cpMu (the
// checkpoint tail, or Open before the store is shared); shard locks are
// taken only to capture views, so writers stall for a map walk, not for
// block decodes.
func (db *DB) buildRollupsLocked() (rollupCoverage, error) {
	cov := rollupCoverage{
		perSeries:  make(map[SeriesKey]int64),
		perDataset: make(map[string]int64),
	}
	if db.rollup == nil {
		return cov, nil
	}
	type job struct {
		key    SeriesKey
		canon  string
		v      seriesView
		lastAt int64
	}
	var jobs []job
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for k, s := range sh.series {
			if s.cold == nil || s.cold.n == 0 {
				continue
			}
			jobs = append(jobs, job{key: k, canon: k.String(), v: viewLocked(s), lastAt: s.cold.lastAt.UnixNano()})
		}
		sh.mu.RUnlock()
	}
	// Canonical order makes the build deterministic — same series order,
	// same batch order, same rollup WAL bytes — which the crash-matrix
	// harness relies on to reproduce a mid-build crash exactly.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].canon < jobs[j].canon })
	for ji := range jobs {
		if ji == len(jobs)/2 {
			if err := db.failpoint("rollup:build:mid"); err != nil {
				return cov, err
			}
		}
		j := &jobs[ji]
		seriesCov := int64(math.MaxInt64)
		for _, res := range rollupResolutions {
			finalEnd := bucketStart(j.lastAt, res)
			if err := db.buildSeriesRollup(j.key, j.v, res, finalEnd); err != nil {
				return cov, fmt.Errorf("tsdb: rollup build for %v at %s: %w", j.key, ResName(res), err)
			}
			if finalEnd < seriesCov {
				seriesCov = finalEnd
			}
		}
		cov.perSeries[j.key] = seriesCov
		if cur, ok := cov.perDataset[j.key.Dataset]; !ok || seriesCov < cur {
			cov.perDataset[j.key.Dataset] = seriesCov
		}
	}
	for ds, rs := range db.retain {
		if c, ok := cov.perDataset[ds]; ok {
			rs.coverage.Store(c)
		}
	}
	return cov, nil
}

// buildSeriesRollup materializes one series' finalized buckets at one
// resolution, resuming each aggregate from its own high-water mark.
func (db *DB) buildSeriesRollup(k SeriesKey, v seriesView, res time.Duration, finalEnd int64) error {
	ro := db.rollup
	// next[i] is the first bucket start aggregate i still needs: one
	// resolution past its last persisted bucket, or everything when the
	// aggregate series does not exist yet.
	var next [len(rollupAggs)]int64
	startFrom := int64(math.MaxInt64)
	for i, a := range rollupAggs {
		p, ok, err := ro.Last(RollupKey(k, res, a))
		if err != nil {
			return err
		}
		if ok {
			next[i] = p.At.UnixNano() + int64(res)
		} else {
			next[i] = noCut
		}
		if next[i] < startFrom {
			startFrom = next[i]
		}
	}
	if startFrom >= finalEnd {
		return nil
	}
	lo := 0
	if startFrom != noCut {
		var err error
		lo, err = db.searchView(v, func(t time.Time) bool { return t.UnixNano() >= startFrom })
		if err != nil {
			return err
		}
	}
	hi, err := db.searchView(v, func(t time.Time) bool { return t.UnixNano() >= finalEnd })
	if err != nil {
		return err
	}
	if lo >= hi {
		return nil
	}
	var (
		batch []Entry
		cur   struct {
			start               int64
			min, max, sum, last float64
			n                   int64
		}
		open bool
	)
	flush := func() {
		if !open {
			return
		}
		open = false
		at := time.Unix(0, cur.start).UTC()
		// Mean divides a time-ordered sum: rebuilding the bucket from the
		// same immutable points reproduces it bit for bit.
		vals := [len(rollupAggs)]float64{cur.min, cur.max, cur.sum / float64(cur.n), cur.last}
		for i, a := range rollupAggs {
			if cur.start >= next[i] {
				batch = append(batch, Entry{Key: RollupKey(k, res, a), At: at, Value: vals[i]})
			}
		}
	}
	err = db.iterateView(v, lo, hi, func(pts []Point) error {
		for _, p := range pts {
			bs := bucketStart(p.At.UnixNano(), res)
			if !open || bs != cur.start {
				flush()
				cur.start = bs
				cur.min, cur.max, cur.sum, cur.last, cur.n = p.Value, p.Value, p.Value, p.Value, 1
				open = true
				continue
			}
			if p.Value < cur.min {
				cur.min = p.Value
			}
			if p.Value > cur.max {
				cur.max = p.Value
			}
			cur.sum += p.Value
			cur.last = p.Value
			cur.n++
		}
		return nil
	})
	if err != nil {
		return err
	}
	flush()
	if len(batch) == 0 {
		return nil
	}
	if _, err := ro.AppendBatch(batch); err != nil {
		return err
	}
	return nil
}

// dropColdBelow drops, for every series, the prefix of sealed blocks
// whose maxAt precedes cut(key) (noCut return = keep everything). Each
// affected series gets a fresh coldSeries with re-based start indices, so
// previously captured seriesViews stay valid; counters and generations
// adjust under the shard locks. It returns per-block-file dropped and
// total block counts (keyed by file sequence number) so the caller can
// unlink files that became entirely dead. The caller holds cpMu, so the
// cold tier cannot change underfoot.
func (db *DB) dropColdBelow(cut func(SeriesKey) int64, onDrop func(ds string, pts int64)) (dropped, total map[uint64]int) {
	dropped, total = make(map[uint64]int), make(map[uint64]int)
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.Lock()
		for k, s := range sh.series {
			if s.cold == nil {
				continue
			}
			for bi := range s.cold.blocks {
				total[s.cold.blocks[bi].seg.seq]++
			}
			c := cut(k)
			if c == noCut {
				continue
			}
			// Blocks are time-ordered and non-overlapping, so the
			// droppable set is a prefix.
			idx := 0
			for idx < len(s.cold.blocks) && s.cold.blocks[idx].maxAt.UnixNano() < c {
				idx++
			}
			if idx == 0 {
				continue
			}
			var pts int64
			var bytes int64
			for bi := 0; bi < idx; bi++ {
				b := &s.cold.blocks[bi]
				pts += int64(b.count)
				bytes += int64(b.length)
				dropped[b.seg.seq]++
			}
			// lastAt survives even a full drop: it is the out-of-order
			// guard, and retention must not reopen the past to writes.
			nc := &coldSeries{lastAt: s.cold.lastAt}
			for _, b := range s.cold.blocks[idx:] {
				b.start = nc.n
				nc.blocks = append(nc.blocks, b)
				nc.n += int(b.count)
			}
			s.cold = nc
			sh.points -= int(pts)
			sh.gen.Add(uint64(pts))
			db.coldPts.Add(-pts)
			db.sealedBlks.Add(int64(-idx))
			db.coldBytes.Add(-bytes)
			if onDrop != nil {
				onDrop(k.Dataset, pts)
			}
		}
		sh.mu.Unlock()
	}
	return dropped, total
}

// enforceRetentionLocked evaluates every retained dataset against the
// coverage the build just produced (same cpMu hold — never a stale
// atomic) and, when raw cold blocks have fallen wholly below a dataset's
// cut, drops them. Durable order: rollup-store checkpoint (the covering
// buckets must survive a crash before any raw byte is condemned), parent
// manifest commit carrying the new cuts and the shrunk block-file list
// (the rename commit point), in-memory detach, then unlink of files with
// no live blocks left. A crash between any two steps recovers to a state
// where every surviving raw point is intact and every dropped one has a
// durable rollup covering it.
func (db *DB) enforceRetentionLocked(cov rollupCoverage) error {
	cuts := make(map[string]int64)
	for ds, rs := range db.retain {
		est, ok := rs.cutEstimate()
		if !ok {
			continue
		}
		rs.lastEval.Store(est)
		if est > rs.cut.Load() {
			cuts[ds] = est
		}
	}
	if len(cuts) == 0 {
		return nil
	}
	cutFor := func(k SeriesKey) int64 {
		if c, ok := cuts[k.Dataset]; ok {
			return c
		}
		return noCut
	}
	// Dry scan first (metadata only, read locks): commit nothing when no
	// block is droppable yet — the common case while the horizon chases a
	// young archive.
	droppable := false
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for k, s := range sh.series {
			c := cutFor(k)
			if c == noCut || s.cold == nil || len(s.cold.blocks) == 0 {
				continue
			}
			if s.cold.blocks[0].maxAt.UnixNano() < c {
				droppable = true
				break
			}
		}
		sh.mu.RUnlock()
		if droppable {
			break
		}
	}
	if !droppable {
		return nil
	}
	if err := db.failpoint("retention:before-rollup-sync"); err != nil {
		return err
	}
	// The rollup store checkpoints itself on its own byte trigger, but
	// the drop below must not outrun durability: buckets covering the
	// condemned blocks go to disk now.
	if err := db.rollup.Checkpoint(); err != nil {
		return fmt.Errorf("tsdb: retention rollup checkpoint: %w", err)
	}
	m := db.man
	m.Retain = make(map[string]int64, len(db.man.Retain)+len(cuts))
	for ds, c := range db.man.Retain {
		m.Retain[ds] = c
	}
	for ds, c := range cuts {
		if old, ok := m.Retain[ds]; !ok || c > old {
			m.Retain[ds] = c
		}
	}
	// Predict which block files die entirely so the committed manifest
	// stops listing them; the actual detach below must agree, and does —
	// both walk the same immutable cold state under cpMu.
	predDropped, predTotal := make(map[uint64]int), make(map[uint64]int)
	for i := range db.shards {
		sh := &db.shards[i]
		sh.mu.RLock()
		for k, s := range sh.series {
			if s.cold == nil {
				continue
			}
			c := cutFor(k)
			for bi := range s.cold.blocks {
				b := &s.cold.blocks[bi]
				predTotal[b.seg.seq]++
				if c != noCut && b.maxAt.UnixNano() < c {
					predDropped[b.seg.seq]++
				}
			}
		}
		sh.mu.RUnlock()
	}
	var dead []uint64
	keepBlocks := m.Blocks[:0:0]
	for _, seq := range m.Blocks {
		if t := predTotal[seq]; t > 0 && predDropped[seq] == t {
			dead = append(dead, seq)
			continue
		}
		keepBlocks = append(keepBlocks, seq)
	}
	m.Blocks = keepBlocks
	if err := writeManifest(db.dir, m, db.cpHook("retention:manifest")); err != nil {
		return err
	}
	db.man = m
	// Committed: detach in memory and settle the per-dataset state.
	db.dropColdBelow(cutFor, func(ds string, pts int64) {
		db.retain[ds].dropped.Add(uint64(pts))
	})
	for ds, c := range cuts {
		casMax(&db.retain[ds].cut, c)
	}
	// Unlink files with no live blocks. Handles stay open (db.coldSegs,
	// closed by Close), so a reader holding a pre-drop view still decodes
	// fine; a crash mid-loop leaves orphans removeStaleFiles reaps (they
	// left the manifest's Blocks list above).
	removed := false
	for i, seq := range dead {
		if i == len(dead)/2 {
			if err := db.failpoint("retention:unlink:mid"); err != nil {
				return err
			}
		}
		os.Remove(filepath.Join(db.dir, blockFileName(seq)))
		removed = true
	}
	if removed {
		if err := syncDir(db.dir); err != nil {
			return err
		}
	}
	return nil
}

// applyRetainCutsLocked re-applies the manifest's committed retention
// cuts in memory at open. Partially-dead block files stay in the layout
// after a drop (only entirely-dead files are unlinked and delisted), so
// openBlocks re-attaches their dropped blocks; this replays the drop.
// The guard is per-series, not just the committed cut: a block is
// dropped only when the coverage just rebuilt proves every point in it
// sits in a materialized bucket — a series backfilled after the cut
// committed keeps its uncovered blocks even below the cut. The caller
// holds cpMu with the open-time build's coverage in hand.
func (db *DB) applyRetainCutsLocked(cov rollupCoverage) {
	if len(db.man.Retain) == 0 {
		return
	}
	db.dropColdBelow(func(k SeriesKey) int64 {
		c, ok := db.man.Retain[k.Dataset]
		if !ok {
			return noCut
		}
		sc, ok := cov.perSeries[k]
		if !ok {
			return noCut
		}
		if sc < c {
			c = sc
		}
		return c
	}, func(ds string, pts int64) {
		if rs := db.retain[ds]; rs != nil {
			rs.dropped.Add(uint64(pts))
		}
	})
}

// initRetention builds the per-dataset retention state from the options
// and the committed manifest, and seeds each dataset's maxAt with one
// post-recovery scan. Runs during Open, single-threaded.
func (db *DB) initRetention(horizons map[string]time.Duration) {
	db.retain = make(map[string]*retentionState, len(horizons))
	for ds, h := range horizons {
		rs := &retentionState{horizon: h}
		rs.maxAt.Store(noCut)
		rs.coverage.Store(noCut)
		rs.cut.Store(noCut)
		rs.lastEval.Store(noCut)
		if c, ok := db.man.Retain[ds]; ok {
			rs.cut.Store(c)
		}
		db.retain[ds] = rs
	}
	for i := range db.shards {
		sh := &db.shards[i]
		for k, s := range sh.series {
			rs := db.retain[k.Dataset]
			if rs == nil {
				continue
			}
			if n := len(s.points); n > 0 {
				casMax(&rs.maxAt, s.points[n-1].At.UnixNano())
			} else if s.cold != nil && s.cold.n > 0 {
				casMax(&rs.maxAt, s.cold.lastAt.UnixNano())
			}
		}
	}
}

// retentionTriggerHot reports whether some retained dataset's cut
// estimate has moved past its last enforcement evaluation — meaning a
// checkpoint (whose tail runs build + enforcement) could advance the
// cut. Comparing against lastEval rather than the committed cut keeps
// the trigger cold when the estimate is ahead but nothing is droppable
// yet; it re-arms only when new appends or new coverage move the
// estimate again.
//
// The comparison is quantized to 1d buckets: coverage only advances in
// 1d steps and drops are block-granular, so a sub-day estimate advance
// can never condemn a new block. Without the quantization every append
// moves the estimate and re-arms the trigger, and a fast history replay
// (bootstrap, backfill) degenerates into a checkpoint per append batch.
func (db *DB) retentionTriggerHot() bool {
	for _, rs := range db.retain {
		est, ok := rs.cutEstimate()
		if !ok {
			continue
		}
		last := rs.lastEval.Load()
		if last == noCut || bucketStart(est, Res1d) > bucketStart(last, Res1d) {
			return true
		}
	}
	return false
}
