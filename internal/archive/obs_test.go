package archive

// Tests for the unified observability layer: the Prometheus exposition
// endpoint under concurrent load, the meta↔metrics single-source
// agreement, the admitted-only latency histogram, the liveness/readiness
// split, and the puller's per-cycle catch-up metrics. The concurrency
// tests are meaningful under -race, which CI applies.

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeExposition fetches and strictly parses srvURL's /api/v1/metrics.
func scrapeExposition(t *testing.T, srvURL string) []obs.Sample {
	t.Helper()
	resp, err := http.Get(srvURL + "/api/v1/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("scrape: Content-Type %q, want text exposition 0.0.4", ct)
	}
	samples, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("scrape did not parse: %v", err)
	}
	return samples
}

// counterValues extracts the plain (non-bucket) samples as name -> value.
func counterValues(samples []obs.Sample) map[string]float64 {
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		if s.Le == "" {
			m[s.Name] = s.Value
		}
	}
	return m
}

// TestMetricsScrapeConcurrentAgreement hammers /api/v1/metrics and
// /api/v1/meta while query traffic runs: every scrape must parse
// strictly, every *_total counter must be monotone within a scraper's
// sequence, and once traffic drains the meta JSON and the exposition
// must agree exactly — they are two renderings of the same registry
// state, so disagreement means a fact acquired a second copy.
func TestMetricsScrapeConcurrentAgreement(t *testing.T) {
	s, _ := buildArchive(t)
	s.SetAdmission(NewAdmission(AdmissionConfig{
		MaxInFlight: 8, MaxQueue: 16, QueueWait: 50 * time.Millisecond,
		RatePerSec: 10000, Burst: 10000,
	}))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	// Query traffic: hot repeats and distinct cold windows.
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				url := srv.URL + "/api/v1/query?dataset=sps&limit=50"
				if w%2 == 1 {
					url += "&from=2022-01-01T00:" + []string{"01", "02", "03"}[i%3] + ":00Z"
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	// Scrapers: exposition and meta must both stay well-formed mid-load,
	// and counters never go backwards between a scraper's reads.
	for sc := 0; sc < 3; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := map[string]float64{}
			for i := 0; i < 15; i++ {
				vals := counterValues(scrapeExposition(t, srv.URL))
				for name, v := range vals {
					if !strings.HasSuffix(name, "_total") {
						continue
					}
					if p, ok := prev[name]; ok && v < p {
						t.Errorf("counter %s went backwards: %v -> %v", name, p, v)
					}
					prev[name] = v
				}
				resp, err := http.Get(srv.URL + "/api/v1/meta")
				if err != nil {
					t.Errorf("meta: %v", err)
					return
				}
				var m Meta
				err = json.NewDecoder(resp.Body).Decode(&m)
				resp.Body.Close()
				if err != nil {
					t.Errorf("meta did not decode mid-load: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Quiesced: meta and the exposition must agree exactly. The fetches
	// below are exempt from admission, so they cannot perturb what they
	// measure.
	samples := scrapeExposition(t, srv.URL)
	vals := counterValues(samples)
	var m Meta
	resp, err := http.Get(srv.URL + "/api/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Admission == nil {
		t.Fatal("meta carries no admission section")
	}
	agree := func(name string, want float64) {
		t.Helper()
		got, ok := vals[name]
		if !ok {
			t.Errorf("exposition is missing %s", name)
			return
		}
		if got != want {
			t.Errorf("%s: exposition %v, meta %v", name, got, want)
		}
	}
	agree("spotlake_admission_admitted_total", float64(m.Admission.Admitted))
	agree("spotlake_admission_throttled_total", float64(m.Admission.Throttled))
	agree("spotlake_admission_shed_total", float64(m.Admission.Shed))
	agree("spotlake_cache_hits_total", float64(m.Cache.Hits))
	agree("spotlake_cache_misses_total", float64(m.Cache.Misses))
	agree("spotlake_cache_coalesced_total", float64(m.Cache.Coalesced))
	agree("spotlake_store_points", float64(m.Schema.PointCount))
	agree("spotlake_store_series", float64(m.Schema.SeriesCount))
	if m.Admission.Admitted == 0 {
		t.Error("no requests admitted during the load phase")
	}

	// The meta percentiles must be the bucket-derived quantiles of the
	// very histogram the exposition serves — recompute them from the
	// scrape and demand a match.
	snap, err := obs.SnapshotFromSamples(samples, "spotlake_http_request_duration_seconds")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != m.Admission.Admitted {
		t.Errorf("histogram count %d != admitted %d", snap.Count, m.Admission.Admitted)
	}
	for _, q := range []struct {
		p    float64
		want float64
	}{{0.50, m.Admission.P50Ms}, {0.99, m.Admission.P99Ms}} {
		if got := snap.Quantile(q.p) * 1e3; math.Abs(got-q.want) > 1e-9 {
			t.Errorf("q%v: scrape-derived %vms, meta %vms", q.p, got, q.want)
		}
	}
}

// TestLatencyHistogramCountsOnlyAdmitted pins the histogram's contract:
// it observes exactly the admitted handler executions. Throttled and
// shed requests return before the observation point, and exempt paths
// bypass the controller entirely — none of them may contaminate the
// latency distribution adaptive tuning reads.
func TestLatencyHistogramCountsOnlyAdmitted(t *testing.T) {
	adm := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 0, RatePerSec: 1, Burst: 2})
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	adm.now = func() time.Time { return now }
	h := withAdmission(adm, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	do := func(path string) int {
		r := httptest.NewRequest("GET", path, nil)
		r.RemoteAddr = "10.1.1.1:5000"
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec.Code
	}

	// Two admitted requests exhaust the burst.
	for i := 0; i < 2; i++ {
		if code := do("/api/v1/query?dataset=sps"); code != http.StatusOK {
			t.Fatalf("admitted request %d got %d", i, code)
		}
	}
	// Throttled: returns before the histogram's observation point.
	if code := do("/api/v1/query?dataset=sps"); code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request got %d, want 429", code)
	}
	// Exempt paths run the handler but never touch controller state.
	for _, path := range []string{"/api/v1/meta", "/api/v1/metrics", "/healthz", "/readyz"} {
		if code := do(path); code != http.StatusOK {
			t.Fatalf("exempt %s got %d", path, code)
		}
	}
	// Shed: refill the rate bucket, then occupy the only slot so the
	// request dies at the capacity check — also before the observation.
	now = now.Add(time.Hour)
	adm.slots <- struct{}{}
	if code := do("/api/v1/query?dataset=sps"); code != http.StatusServiceUnavailable {
		t.Fatalf("saturated request got %d, want 503", code)
	}
	<-adm.slots

	st := adm.Stats()
	if st.Admitted != 2 || st.Throttled != 1 || st.Shed != 1 {
		t.Fatalf("stats = %+v, want 2 admitted / 1 throttled / 1 shed", st)
	}
	if snap := adm.lat.Snapshot(); snap.Count != st.Admitted {
		t.Errorf("histogram observed %d requests, want exactly the %d admitted", snap.Count, st.Admitted)
	}
}

// TestHealthzReadyz covers the liveness/readiness split. /healthz
// answers 200 whenever the process serves HTTP at all. /readyz answers
// the question a load balancer asks: on a primary, is a store open; on
// a follower, is the applied position within -max-staleness — the same
// verdict the staleness gate would give a read, but reachable without
// issuing one.
func TestHealthzReadyz(t *testing.T) {
	psvc, cat, _, db := durablePrimary(t, t.TempDir())
	defer db.Close()
	psrv := httptest.NewServer(psvc.Handler())
	defer psrv.Close()

	text := func(srvURL, path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srvURL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, string(body)
	}

	if code, body := text(psrv.URL, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("primary healthz: %d %q", code, body)
	}
	if code, body := text(psrv.URL, "/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Fatalf("primary readyz: %d %q", code, body)
	}

	fsvc, puller := newFollower(t, psrv.URL, cat, 50*time.Millisecond)
	fsrv := httptest.NewServer(fsvc.Handler())
	defer fsrv.Close()

	// Never synced: alive but not ready, with the stale_replica envelope
	// and a Retry-After hint so the balancer knows when to re-probe.
	if code, body := text(fsrv.URL, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("unsynced follower healthz: %d %q", code, body)
	}
	resp, err := http.Get(fsrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var env apiError
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != ErrCodeStaleReplica {
		t.Fatalf("unsynced follower readyz: %d %q, want 503 %q", resp.StatusCode, env.Error.Code, ErrCodeStaleReplica)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("not-ready response missing Retry-After")
	}

	// A sync makes it ready; letting the bound lapse un-readies it.
	if err := puller.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if code, body := text(fsrv.URL, "/readyz"); code != http.StatusOK || body != "ready\n" {
		t.Fatalf("synced follower readyz: %d %q", code, body)
	}
	time.Sleep(80 * time.Millisecond)
	if code, _ := text(fsrv.URL, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("lapsed follower readyz: %d, want 503", code)
	}

	// Both probes bypass admission: a saturated server must still answer
	// its balancer or it gets restarted exactly when it is busiest.
	adm := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 0})
	psvc.SetAdmission(adm)
	satsrv := httptest.NewServer(psvc.Handler())
	defer satsrv.Close()
	adm.slots <- struct{}{}
	if code, _ := text(satsrv.URL, "/healthz"); code != http.StatusOK {
		t.Errorf("saturated healthz: %d, want 200", code)
	}
	if code, _ := text(satsrv.URL, "/readyz"); code != http.StatusOK {
		t.Errorf("saturated readyz: %d, want 200", code)
	}
	<-adm.slots
}

// TestPullerCycleMetrics: one catch-up pull must account for what it
// moved — files fetched, bytes shipped, a cycle-time observation — and
// a mid-pull 409 must count as a re-list, all visible identically in
// the puller's meta section and the follower's exposition.
func TestPullerCycleMetrics(t *testing.T) {
	psvc, cat, _, db := durablePrimary(t, t.TempDir())
	defer db.Close()
	inner := httptest.NewServer(psvc.Handler())
	defer inner.Close()

	// A proxy that 409s the first artifact fetch: the pinned listing
	// "went stale" once, so the cycle re-lists exactly once and succeeds.
	var fired atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/api/v1/replication/file/") && fired.CompareAndSwap(false, true) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			io.WriteString(w, `{"error":{"code":"epoch_mismatch","message":"injected"}}`)
			return
		}
		psvc.Handler().ServeHTTP(w, r)
	}))
	defer proxy.Close()

	fsvc, puller := newFollower(t, proxy.URL, cat, 0)
	fsrv := httptest.NewServer(fsvc.Handler())
	defer fsrv.Close()

	if err := puller.SyncOnce(); err != nil {
		t.Fatalf("sync through injected 409: %v", err)
	}
	st := puller.StatsDetail()
	if st.Cycles != 1 || st.Applied != 1 || st.Failures != 0 {
		t.Fatalf("cycle counters = %+v, want 1 cycle, 1 applied, 0 failures", st)
	}
	if st.Relists != 1 {
		t.Errorf("relists = %d, want exactly the 1 injected 409", st.Relists)
	}
	if st.FilesFetched == 0 || st.BytesShipped == 0 {
		t.Errorf("catch-up moved nothing? filesFetched=%d bytesShipped=%d", st.FilesFetched, st.BytesShipped)
	}

	// A no-op cycle (signature unchanged) still counts and observes, but
	// fetches nothing new.
	if err := puller.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	st2 := puller.StatsDetail()
	if st2.Cycles != 2 || st2.Applied != 1 || st2.FilesFetched != st.FilesFetched {
		t.Fatalf("no-op cycle: %+v after %+v", st2, st)
	}

	// The same numbers through both public surfaces: the meta section and
	// the exposition (exempt from the staleness gate, like meta).
	m := fsvc.Meta()
	if m.Replication.Puller == nil {
		t.Fatal("follower meta carries no puller section")
	}
	if *m.Replication.Puller != puller.StatsDetail() {
		t.Errorf("meta puller section %+v != stats %+v", *m.Replication.Puller, puller.StatsDetail())
	}
	samples := scrapeExposition(t, fsrv.URL)
	vals := counterValues(samples)
	for name, want := range map[string]uint64{
		"spotlake_replication_cycles_total":        st2.Cycles,
		"spotlake_replication_applied_total":       st2.Applied,
		"spotlake_replication_relists_total":       st2.Relists,
		"spotlake_replication_files_fetched_total": st2.FilesFetched,
		"spotlake_replication_bytes_shipped_total": st2.BytesShipped,
	} {
		if got, ok := vals[name]; !ok || got != float64(want) {
			t.Errorf("%s = %v (present=%t), want %d", name, got, ok, want)
		}
	}
	snap, err := obs.SnapshotFromSamples(samples, "spotlake_replication_cycle_seconds")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Count != st2.Cycles {
		t.Errorf("cycle histogram observed %d cycles, want %d", snap.Count, st2.Cycles)
	}
	// The applied position gauges mirror the primary's committed state.
	pm := psvc.Meta()
	if got := vals["spotlake_replication_applied_epoch"]; got != float64(pm.Replication.Epoch) {
		t.Errorf("applied epoch gauge %v, primary at %d", got, pm.Replication.Epoch)
	}
}
