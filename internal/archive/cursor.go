package archive

// Keyset-cursor pagination over the query result's point stream.
//
// Offset pagination (paging.go) windows the flattened stream by counting
// from its start, so a collector tick that appends points before the
// client's current offset shifts every later point and the next page
// re-serves (or skips) data. A cursor instead names a fixed position in
// the stream — the canonical key and timestamp of the last point already
// delivered — and the next page resumes strictly after it. Because the
// archive is append-only and per-series time-ordered, that position
// never moves: concatenated cursor pages contain every point that
// existed when the walk started exactly once, no matter how many appends
// land between page requests. This is the keyset/token pattern of the
// paper backend's own pagination (Timestream-style next tokens) adapted
// to the flattened (series, time) order the archive serves.
//
// The token is opaque and URL-safe: a base64url encoding of a version
// byte, a 64-bit scope hash of the request's filter and window, the
// last-delivered timestamp, a sequence count, and the canonical series
// key. The sequence count says how many points at exactly that
// timestamp have been delivered: the store accepts equal-timestamp
// appends (and pre-resume-fix archives contain them), so a bare
// timestamp cannot address a page boundary inside such a run — without
// the count, the run's undelivered remainder would be silently skipped
// on resume. The scope hash pins a token to the exact query that minted
// it — replaying a cursor against a different filter or window would
// silently skip or duplicate data, so it is rejected instead (tokens
// "expire" when the query changes). Clients must treat the token as a
// black box.

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/tsdb"
)

// ErrBadCursor is wrapped by every cursor-token rejection: malformed
// encodings and tokens minted by a different filter or window. The HTTP
// layer maps it to a 400 with the token-specific message.
var ErrBadCursor = errors.New("archive: invalid cursor")

const cursorVersion = 1

// cursorScope hashes the request fields a cursor token must match: the
// series filter and the time window (FNV-1a 64, with '|' separators so
// adjacent fields cannot alias). Limit is deliberately excluded — a
// client may change page sizes mid-walk without losing its position.
func cursorScope(req QueryRequest) uint64 {
	h := fnv.New64a()
	var b [8]byte
	mix := func(s string) {
		_, _ = h.Write([]byte(s))
		_, _ = h.Write([]byte{'|'})
	}
	mixInt := func(v int64) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		_, _ = h.Write(b[:])
	}
	mix(req.Dataset)
	mix(req.Type)
	mix(req.Region)
	mix(req.AZ)
	mixInt(req.From.UnixNano())
	mixInt(req.To.UnixNano())
	// Resolution and aggregate are scoped after normalization
	// (resolveRead): a token minted at one tier addresses that tier's
	// point stream and must not resume a walk at another — the streams
	// differ in both density and values. `auto` normalizes to the tier it
	// picked, so auto-minted tokens interoperate with the equivalent
	// explicit request.
	mix(req.Resolution)
	mix(req.Agg)
	return h.Sum64()
}

// encodeCursor mints the token for a position: the page ended with the
// seq-th point at time at of series key, under the given request scope.
func encodeCursor(scope uint64, key string, at time.Time, seq uint32) string {
	buf := make([]byte, 1+8+8+4, 1+8+8+4+len(key))
	buf[0] = cursorVersion
	binary.LittleEndian.PutUint64(buf[1:9], scope)
	binary.LittleEndian.PutUint64(buf[9:17], uint64(at.UnixNano()))
	binary.LittleEndian.PutUint32(buf[17:21], seq)
	buf = append(buf, key...)
	return base64.RawURLEncoding.EncodeToString(buf)
}

// decodeCursor validates and unpacks a token against the scope of the
// request presenting it. Every failure wraps ErrBadCursor.
func decodeCursor(token string, scope uint64) (key string, at time.Time, seq int, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil || len(raw) < 1+8+8+4 {
		return "", time.Time{}, 0, fmt.Errorf("%w: malformed token", ErrBadCursor)
	}
	if raw[0] != cursorVersion {
		return "", time.Time{}, 0, fmt.Errorf("%w: unknown token version %d", ErrBadCursor, raw[0])
	}
	if got := binary.LittleEndian.Uint64(raw[1:9]); got != scope {
		return "", time.Time{}, 0, fmt.Errorf("%w: token was issued for a different filter or window (cursors expire when the query changes)", ErrBadCursor)
	}
	key = string(raw[21:])
	if _, err := tsdb.ParseSeriesKey(key); err != nil {
		return "", time.Time{}, 0, fmt.Errorf("%w: malformed series key", ErrBadCursor)
	}
	at = time.Unix(0, int64(binary.LittleEndian.Uint64(raw[9:17]))).UTC()
	seq = int(binary.LittleEndian.Uint32(raw[17:21]))
	return key, at, seq, nil
}

// CursorPage is one page of a query's point stream located by cursor.
type CursorPage struct {
	// Series holds the page's points grouped by series, canonical key
	// order, ascending time within each series — the same order as the
	// unpaginated response, restricted to the page.
	Series []SeriesResult `json:"series"`
	// NextCursor resumes the walk after this page's last point; empty
	// when the page exhausted the stream as counted at request time.
	NextCursor string `json:"nextCursor"`
	// Limit echoes the request (0 = everything from the cursor on).
	Limit int `json:"limit"`
}

// QueryCursor returns the page of the query's point stream that starts
// after req.Cursor's position (or at the stream's start for an empty
// cursor), holding at most req.Limit points (0 = all remaining). It uses
// the same span mapping and per-series copy fan-out as QueryPaged (the
// count pass runs sequentially so it can stop at the page boundary),
// and the page is cached under the cursor token with the same
// generation guard, so a repeated page request hits while any write to
// a depended-on shard invalidates. Unlike an offset page, the result is stable under live
// appends: the resume position is a fixed (key, timestamp) pair, so
// concurrent collection can only add points after it, never shift it.
func (s *Service) QueryCursor(req QueryRequest) (*CursorPage, error) {
	if req.Limit < 0 {
		return nil, badParam("limit", "archive: negative limit")
	}
	if req.Offset != 0 {
		return nil, fmt.Errorf("archive: cursor and offset are mutually exclusive")
	}
	from, to, err := s.checkWindow(req)
	if err != nil {
		return nil, err
	}
	db, epoch := s.storeRef()
	plan, err := resolveRead(db, &req, from, to)
	if err != nil {
		return nil, err
	}
	scope := cursorScope(req)
	var curKey string
	var curAt time.Time
	var curSeq int
	resuming := req.Cursor != ""
	if resuming {
		if curKey, curAt, curSeq, err = decodeCursor(req.Cursor, scope); err != nil {
			return nil, err
		}
		// Genuine tokens are minted from in-window points, so a position
		// outside [from, to] is tampering (the scope hash is integrity
		// against accidents, not a MAC): reject it, because the seek
		// primitives resume from the position's timestamp and would
		// otherwise serve the cursor series' pre-window points.
		if curAt.Before(from) || curAt.After(to) {
			return nil, fmt.Errorf("%w: token position lies outside the query window", ErrBadCursor)
		}
		// A raw-tier token can point into history that retention has since
		// dropped (rolled up, then aged out). Resuming there would
		// silently skip from the cut to the first surviving point —
		// exactly the hole this walk was promised not to have — so the
		// token expires instead; the client restarts at the current head
		// or re-queries a rollup tier, which retention never drops.
		if plan.res == "raw" {
			if sk, err := tsdb.ParseSeriesKey(curKey); err == nil {
				if cut, ok := db.RetentionCut(sk.Dataset); ok && curAt.Before(cut) {
					return nil, fmt.Errorf("%w: token position precedes dataset %q's raw retention horizon (raw points there have been rolled up and dropped); restart the walk or query resolution=1h/1d", ErrBadCursor, sk.Dataset)
				}
			}
		}
	}
	ck := cacheKey("cursor", req)
	if v, ok := s.cache.get(ck, epoch, db.KeyGeneration(), db.ShardGenerations()); ok {
		return v.(*CursorPage), nil
	}
	// Concurrent identical cold page requests (many clients replaying the
	// same walk position) collapse onto one computation.
	v, err := s.flight.do(ck, func() (any, error) {
		return s.cursorCold(db, epoch, req, plan, ck, from, to, curKey, curAt, curSeq, resuming)
	})
	if err != nil {
		return nil, err
	}
	return v.(*CursorPage), nil
}

// cursorCold is the leader's computation for a QueryCursor cache miss.
func (s *Service) cursorCold(db *tsdb.DB, epoch uint64, req QueryRequest, plan readPlan, ck string, from, to time.Time, curKey string, curAt time.Time, curSeq int, resuming bool) (any, error) {
	// Capture the generations before reading, like every query path.
	keyGen, genVec := db.KeyGeneration(), db.ShardGenerations()
	scope := cursorScope(req)
	keys, err := matchedKeys(db, req)
	if err != nil {
		return nil, err
	}
	// Seek: binary-search the sorted key list for the cursor's series.
	// Series before it are already fully delivered and are never counted
	// or locked again — a deep cursor page does O(log series) work to
	// skip the prefix an equivalent offset page would re-count in full.
	start := 0
	if resuming {
		start = sort.Search(len(keys), func(i int) bool { return keys[i].String() >= curKey })
	}
	rest := keys[start:]
	// Only the first remaining series can be the cursor's own (keys are
	// sorted unique); decide it once instead of rendering every
	// remaining key's canonical form in both passes.
	cursorOwn := resuming && len(rest) > 0 && rest[0].String() == curKey
	// Pass 1: count the remaining in-window points per series, in key
	// order, stopping as soon as the page is provably full (limit points
	// plus at least one more to decide NextCursor). The cursor's own
	// series counts only points past the cursor position; later series
	// count their whole window. Unlike the offset path, no total is
	// reported — it would be stale the moment it was computed — so a
	// page never pays to count the series still ahead of it, and each
	// page of a walk is O(series in the page), not O(series remaining).
	// A zero limit means "everything after the cursor": that single page
	// necessarily counts it all.
	counts := make([]int, 0, len(rest))
	total := 0
	for i := range rest {
		var c int
		var err error
		if i == 0 && cursorOwn {
			c, err = plan.db.CountAfter(plan.key(rest[i]), curAt, curSeq, to)
		} else {
			c, err = plan.db.CountRange(plan.key(rest[i]), from, to)
		}
		if err != nil {
			return nil, err
		}
		counts = append(counts, c)
		total += c
		if req.Limit > 0 && total > req.Limit {
			break
		}
	}
	// The page is the first hi points of the counted stream; spans map
	// it onto per-series prefixes (the remainder always starts at the
	// cursor, so no span skips within its series). total > limit is the
	// "more points exist" signal: the count loop above only stops early
	// once it has proven it.
	hi := total
	if req.Limit > 0 && req.Limit < total {
		hi = req.Limit
	}
	var spans []pageSpan
	cum := 0
	for i, c := range counts {
		if n := min(hi-cum, c); n > 0 {
			spans = append(spans, pageSpan{key: i, n: n})
		}
		cum += c
		if cum >= hi {
			break
		}
	}
	// Pass 2: copy only the page's points. Appends racing this pass can
	// only grow series beyond the counted prefix, so each span still
	// resolves to exactly the points pass 1 counted.
	slots := make([][]tsdb.Point, len(spans))
	spanErrs := make([]error, len(spans))
	s.fanOut(len(spans), func(j int) {
		sp := spans[j]
		k := plan.key(rest[sp.key])
		if sp.key == 0 && cursorOwn {
			slots[j], spanErrs[j] = plan.db.QueryAfter(k, curAt, curSeq, to, sp.n)
		} else {
			slots[j], spanErrs[j] = plan.db.QueryRange(k, from, to, 0, sp.n)
		}
	})
	if err := firstErr(spanErrs); err != nil {
		return nil, err
	}
	page := &CursorPage{
		Series: make([]SeriesResult, 0, len(spans)),
		Limit:  req.Limit,
	}
	points := 0
	var lastKey string
	var lastAt time.Time
	var lastSlice []tsdb.Point
	lastSpan := -1
	for j, sp := range spans {
		if len(slots[j]) == 0 {
			continue
		}
		points += len(slots[j])
		page.Series = append(page.Series, SeriesResult{Key: rest[sp.key], Points: slots[j]})
		lastKey = rest[sp.key].String()
		lastSlice = slots[j]
		lastAt = lastSlice[len(lastSlice)-1].At
		lastSpan = sp.key
	}
	if hi < total && points > 0 {
		// The next position is (lastAt, n): n counts the points at
		// exactly lastAt already delivered, so a boundary inside an
		// equal-timestamp run resumes at the run's remainder instead of
		// skipping it. n is the trailing equal-timestamp run of this
		// page's last slice — plus the incoming cursor's own count when
		// this page never advanced past the position it resumed at
		// (same series, same timestamp, whole slice inside the run).
		n := 0
		for i := len(lastSlice) - 1; i >= 0 && lastSlice[i].At.Equal(lastAt); i-- {
			n++
		}
		if n == len(lastSlice) && lastSpan == 0 && cursorOwn && curAt.Equal(lastAt) {
			n += curSeq
		}
		page.NextCursor = encodeCursor(scope, lastKey, lastAt, uint32(n))
	}
	if points <= maxCachedPoints {
		dep, gens := depGenerations(db, keys, genVec)
		s.cache.put(ck, epoch, keyGen, dep, gens, page)
	}
	return page, nil
}
