package archive

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// resultCache is a small LRU over query results, keyed on the canonical
// (filter, window) string. Invalidation is shard-granular: every entry
// records the key-set generation plus the generation of each store shard
// the cached result depends on (the shards its series hash to). A hit is
// served only while all of those are unchanged, so the cache can never
// return stale data — but a collection tick that writes only other shards
// leaves the entry alive, where the old store-wide generation guard would
// have thrown it away.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	m     map[string]*list.Element
	hits  obs.Counter
	miss  obs.Counter
	inval obs.Counter
}

type cacheEntry struct {
	key string
	// epoch is the service's store epoch the entry was computed under
	// (bumped whenever SwapDB installs a new store). Generation counters
	// are meaningless across stores — a freshly opened replica restarts
	// them — so an entry from another epoch is stale by definition, even
	// if the new store's counters happen to collide.
	epoch uint64
	// keyGen guards against series creation: a new series can match the
	// cached filter while hashing to a shard the result never touched.
	keyGen uint64
	// shards (sorted, unique) are the store shards the result's series
	// hash to; gens[j] is shards[j]'s generation when it was computed.
	shards []uint32
	gens   []uint64
	val    any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// valid reports whether the entry is current against the given store
// epoch, key-set generation, and per-shard generation vector.
func (e *cacheEntry) valid(epoch, keyGen uint64, genVec []uint64) bool {
	if e.epoch != epoch {
		return false
	}
	if e.keyGen != keyGen {
		return false
	}
	for j, si := range e.shards {
		if int(si) >= len(genVec) || e.gens[j] != genVec[si] {
			return false
		}
	}
	return true
}

// get returns the cached value for key if every shard it depends on is
// still at the generation it was computed at; stale entries are evicted on
// sight and counted as invalidations.
func (c *resultCache) get(key string, epoch, keyGen uint64, genVec []uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.miss.Add(1)
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if !e.valid(epoch, keyGen, genVec) {
		c.ll.Remove(el)
		delete(c.m, key)
		c.inval.Add(1)
		c.miss.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return e.val, true
}

func (c *resultCache) put(key string, epoch, keyGen uint64, shards []uint32, gens []uint64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*cacheEntry)
		e.epoch, e.keyGen, e.shards, e.gens, e.val = epoch, keyGen, shards, gens, val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, epoch: epoch, keyGen: keyGen, shards: shards, gens: gens, val: val})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

// purge drops every entry. SwapDB calls it so results computed against a
// replaced store free their memory immediately; the epoch check in valid
// is what guarantees correctness for entries a racing put adds afterward.
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.m)
}

// CacheStats reports cumulative result-cache counters. Invalidations
// counts entries evicted because a depended-on shard (or the key set)
// changed; they are a subset of misses. Coalesced counts misses that
// joined an identical in-flight computation instead of computing (also
// a subset of misses — filled in by Service.CacheStats, not here), so
// Misses - Coalesced is the number of store computations performed.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Coalesced     uint64 `json:"coalesced"`
}

func (c *resultCache) stats() CacheStats {
	return CacheStats{Hits: c.hits.Value(), Misses: c.miss.Value(), Invalidations: c.inval.Value()}
}
