package archive

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// resultCache is a small LRU over query results, keyed on the canonical
// (filter, window) string. Every entry records the store generation it was
// computed at; a hit is only served while the store is unchanged, so the
// cache can never return stale data — the collector's next stored point
// invalidates everything implicitly.
type resultCache struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recently used
	m    map[string]*list.Element
	hits atomic.Uint64
	miss atomic.Uint64
}

type cacheEntry struct {
	key string
	gen uint64
	val any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached value for key if it was computed at generation
// gen; entries from other generations are evicted on sight.
func (c *resultCache) get(key string, gen uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.miss.Add(1)
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		c.ll.Remove(el)
		delete(c.m, key)
		c.miss.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return e.val, true
}

func (c *resultCache) put(key string, gen uint64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*cacheEntry)
		e.gen, e.val = gen, val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, val: val})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

// CacheStats reports cumulative result-cache hits and misses.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

func (c *resultCache) stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.miss.Load()}
}
