package archive

// Tests for keyset-cursor pagination. The two-sided harness the cursor
// design demands: a differential side (concatenated cursor pages equal
// the unpaginated response and the offset pages on a quiescent store)
// and a stability side (a writer appending between every page request —
// the cursor walk delivers every walk-start point exactly once while the
// equivalent offset walk provably drifts into duplicates).

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/tsdb"
)

var cursorT0 = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

// cursorStoreKey returns the i-th key of the hand-built cursor test
// store; the zero-padded type makes canonical order match i order.
func cursorStoreKey(i int) tsdb.SeriesKey {
	return tsdb.SeriesKey{
		Dataset: tsdb.DatasetPlacementScore,
		Type:    fmt.Sprintf("t%02d.large", i),
		Region:  "us-east-1",
		AZ:      "us-east-1a",
	}
}

// buildCursorStore hand-builds an archive of nSeries series with nPoints
// points each at a 1-minute cadence, so tests control exactly where
// concurrent appends land in the flattened stream.
func buildCursorStore(t testing.TB, nSeries, nPoints int) (*Service, *tsdb.DB) {
	t.Helper()
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < nSeries; s++ {
		k := cursorStoreKey(s)
		for i := 0; i < nPoints; i++ {
			if err := db.Append(k, cursorT0.Add(time.Duration(i)*time.Minute), float64(s*1000+i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return NewService(db, catalog.Compact(1)), db
}

// cursorWalk pages through the stream via NextCursor, returning the
// concatenated flattened points. between, when non-nil, runs after every
// page request (the live-appends hook).
func cursorWalk(t testing.TB, s *Service, req QueryRequest, limit int, between func(page int)) []flatPoint {
	t.Helper()
	var got []flatPoint
	req.Limit = limit
	req.Cursor = ""
	for page := 0; ; page++ {
		if page > 100000 {
			t.Fatal("cursor walk did not terminate")
		}
		cp, err := s.QueryCursor(req)
		if err != nil {
			t.Fatalf("cursor page %d: %v", page, err)
		}
		pts := flatten(cp.Series)
		if limit > 0 && len(pts) > limit {
			t.Fatalf("cursor page %d holds %d points, limit %d", page, len(pts), limit)
		}
		got = append(got, pts...)
		if between != nil {
			between(page)
		}
		if cp.NextCursor == "" {
			return got
		}
		req.Cursor = cp.NextCursor
	}
}

// offsetWalk pages through the stream via NextOffset with the same
// between-pages hook, for the drift comparison.
func offsetWalk(t testing.TB, s *Service, req QueryRequest, limit int, between func(page int)) []flatPoint {
	t.Helper()
	var got []flatPoint
	req.Limit = limit
	for page, off := 0, 0; ; page++ {
		if page > 100000 {
			t.Fatal("offset walk did not terminate")
		}
		preq := req
		preq.Offset = off
		qp, err := s.QueryPaged(preq)
		if err != nil {
			t.Fatalf("offset page %d: %v", page, err)
		}
		got = append(got, flatten(qp.Series)...)
		if between != nil {
			between(page)
		}
		if qp.NextOffset < 0 {
			return got
		}
		off = qp.NextOffset
	}
}

// countOccurrences maps each flattened point to how often it appears.
func countOccurrences(pts []flatPoint) map[flatPoint]int {
	m := make(map[flatPoint]int, len(pts))
	for _, p := range pts {
		m[p]++
	}
	return m
}

// TestQueryCursorConcatenationEqualsUnpaginated is the differential
// side: on a quiescent store, concatenated cursor pages reproduce the
// unpaginated response exactly, for page sizes from degenerate to
// oversized, and agree with the offset pages.
func TestQueryCursorConcatenationEqualsUnpaginated(t *testing.T) {
	s, _ := buildArchive(t)
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore}
	full, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	want := flatten(full)
	if len(want) < 50 {
		t.Fatalf("archive too small for a pagination test: %d points", len(want))
	}
	for _, limit := range []int{1, 7, 64, len(want) + 10} {
		got := cursorWalk(t, s, req, limit, nil)
		if len(got) != len(want) {
			t.Fatalf("limit %d: concatenated %d points, want %d", limit, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("limit %d: point %d differs: got %+v want %+v", limit, i, got[i], want[i])
			}
		}
		viaOffset := offsetWalk(t, s, req, limit, nil)
		if len(viaOffset) != len(got) {
			t.Fatalf("limit %d: offset walk %d points, cursor walk %d", limit, len(viaOffset), len(got))
		}
		for i := range got {
			if got[i] != viaOffset[i] {
				t.Fatalf("limit %d: cursor and offset walks diverge at %d on a quiescent store", limit, i)
			}
		}
	}
	// Limit 0 = everything after the cursor in one page.
	got := cursorWalk(t, s, req, 0, nil)
	if len(got) != len(want) {
		t.Fatalf("limit 0: %d points, want %d", len(got), len(want))
	}
}

// TestCursorStableUnderLiveAppends is the headline stability test with a
// deterministic interleave: between every page request the "collector"
// appends to the lowest-sorting series, which the walk has already
// passed after the first few pages. The cursor walk must deliver every
// point that existed at walk start exactly once with no duplicates at
// all, while the identical offset walk re-reads shifted points — the
// documented drift this PR exists to fix.
func TestCursorStableUnderLiveAppends(t *testing.T) {
	const (
		nSeries = 6
		nPoints = 30
		limit   = 10
		growth  = 3
	)
	appendBurst := func(db *tsdb.DB, round int) {
		k := cursorStoreKey(0)
		for j := 0; j < growth; j++ {
			at := cursorT0.Add(time.Duration(nPoints+round*growth+j) * time.Minute)
			if err := db.Append(k, at, float64(9000+round*growth+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore}

	// Cursor walk under appends.
	s, db := buildCursorStore(t, nSeries, nPoints)
	full, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	start := flatten(full)
	got := cursorWalk(t, s, req, limit, func(round int) { appendBurst(db, round) })
	occ := countOccurrences(got)
	for _, p := range start {
		if occ[p] != 1 {
			t.Fatalf("cursor walk delivered walk-start point %+v %d times, want exactly 1", p, occ[p])
		}
	}
	for p, n := range occ {
		if n != 1 {
			t.Fatalf("cursor walk duplicated point %+v (%d times)", p, n)
		}
	}
	// The walk preserves the flattened (key, time) order across pages.
	for i := 1; i < len(got); i++ {
		if got[i].key < got[i-1].key ||
			(got[i].key == got[i-1].key && got[i].p.At.Before(got[i-1].p.At)) {
			t.Fatalf("cursor walk out of order at %d: %+v after %+v", i, got[i], got[i-1])
		}
	}

	// The equivalent offset walk over the identical store + append
	// schedule drifts: once the walker passes the growing series' block,
	// every append shifts later points right and the next page re-serves
	// points it already delivered.
	s2, db2 := buildCursorStore(t, nSeries, nPoints)
	gotOffset := offsetWalk(t, s2, req, limit, func(round int) { appendBurst(db2, round) })
	dups := 0
	for _, n := range countOccurrences(gotOffset) {
		if n > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Fatalf("offset walk under live appends delivered %d points with no duplicates — expected drift; is the stream no longer offset-windowed?", len(gotOffset))
	}
}

// TestCursorWalkConcurrentWriter drives the cursor walk against a truly
// concurrent writer (run under -race in CI): batches land in existing
// and brand-new series while pages stream out. Every point that existed
// when the walk started must appear exactly once, and nothing may appear
// twice.
func TestCursorWalkConcurrentWriter(t *testing.T) {
	const (
		nSeries = 8
		nPoints = 200
		limit   = 50
		rounds  = 300
	)
	s, db := buildCursorStore(t, nSeries, nPoints)
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore}
	full, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	start := flatten(full)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			batch := make([]tsdb.Entry, 0, nSeries+1)
			at := cursorT0.Add(time.Duration(nPoints+r) * time.Minute)
			for sIdx := 0; sIdx < nSeries; sIdx++ {
				batch = append(batch, tsdb.Entry{Key: cursorStoreKey(sIdx), At: at, Value: float64(r)})
			}
			// A brand-new series every few rounds exercises the key-set
			// generation guard under the walk.
			if r%10 == 0 {
				k := cursorStoreKey(nSeries + r/10)
				batch = append(batch, tsdb.Entry{Key: k, At: at, Value: float64(r)})
			}
			if _, err := db.AppendBatch(batch); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()
	got := cursorWalk(t, s, req, limit, nil)
	wg.Wait()

	occ := countOccurrences(got)
	for _, p := range start {
		if occ[p] != 1 {
			t.Fatalf("concurrent walk delivered walk-start point %+v %d times, want exactly 1", p, occ[p])
		}
	}
	for p, n := range occ {
		if n != 1 {
			t.Fatalf("concurrent walk duplicated point %+v (%d times)", p, n)
		}
	}
}

// TestCursorWalkEqualTimestampRuns: archives written by pre-resume-fix
// builds contain equal-timestamp points within a series, and the store
// accepts them by design. A page boundary falling inside such a run must
// resume at the run's remainder — the token's sequence component — not
// silently skip it. Walked at every page size that can split the runs.
func TestCursorWalkEqualTimestampRuns(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	// Two series, each with runs of equal timestamps: values make every
	// point distinct so exact-once is checkable per point.
	for s := 0; s < 2; s++ {
		k := cursorStoreKey(s)
		v := 0
		for i := 0; i < 5; i++ {
			at := cursorT0.Add(time.Duration(i) * time.Minute)
			for r := 0; r < 3; r++ { // run of 3 per timestamp
				if err := db.Append(k, at, float64(s*1000+v)); err != nil {
					t.Fatal(err)
				}
				v++
			}
		}
	}
	svc := NewService(db, catalog.Compact(1))
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore}
	full, err := svc.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	want := flatten(full)
	if len(want) != 30 {
		t.Fatalf("store holds %d points, want 30", len(want))
	}
	for limit := 1; limit <= len(want)+1; limit++ {
		got := cursorWalk(t, svc, req, limit, nil)
		if len(got) != len(want) {
			t.Fatalf("limit %d: walked %d points, want %d — a boundary inside an equal-timestamp run dropped or duplicated points", limit, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("limit %d: point %d = %+v, want %+v", limit, i, got[i], want[i])
			}
		}
	}
}

// TestCursorTokenValidation: tokens are opaque but not trusted —
// malformed encodings and tokens minted for a different filter or
// window are rejected with ErrBadCursor, never silently reinterpreted.
func TestCursorTokenValidation(t *testing.T) {
	s, _ := buildCursorStore(t, 3, 10)
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore, Limit: 5}
	p0, err := s.QueryCursor(req)
	if err != nil {
		t.Fatal(err)
	}
	if p0.NextCursor == "" {
		t.Fatal("first page exhausted a 30-point stream at limit 5")
	}

	// The genuine token resumes; the same token against a different
	// filter or window must not.
	resume := req
	resume.Cursor = p0.NextCursor
	if _, err := s.QueryCursor(resume); err != nil {
		t.Fatalf("genuine token rejected: %v", err)
	}
	foreignFilter := resume
	foreignFilter.Type = cursorStoreKey(1).Type
	if _, err := s.QueryCursor(foreignFilter); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("token accepted against a different filter: %v", err)
	}
	foreignWindow := resume
	foreignWindow.From = cursorT0.Add(time.Minute)
	if _, err := s.QueryCursor(foreignWindow); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("token accepted against a different window: %v", err)
	}

	// A tampered token that keeps the right scope hash but rewrites the
	// timestamp to before the window must not leak pre-window points.
	winReq := QueryRequest{Dataset: req.Dataset, From: cursorT0.Add(2 * time.Minute), Limit: 5}
	tampered := winReq
	tampered.Cursor = encodeCursor(cursorScope(winReq), cursorStoreKey(0).String(), cursorT0, 0)
	if _, err := s.QueryCursor(tampered); !errors.Is(err, ErrBadCursor) {
		t.Fatalf("tampered out-of-window timestamp accepted: %v", err)
	}

	// Malformed encodings.
	for name, tok := range map[string]string{
		"not base64":    "!!!not-base64!!!",
		"too short":     base64.RawURLEncoding.EncodeToString([]byte{cursorVersion, 1, 2}),
		"bad key":       encodeCursor(cursorScope(QueryRequest{Dataset: req.Dataset}), "notakey", cursorT0, 0),
		"wrong version": base64.RawURLEncoding.EncodeToString(append([]byte{99}, make([]byte, 30)...)),
	} {
		bad := req
		bad.Cursor = tok
		if _, err := s.QueryCursor(bad); !errors.Is(err, ErrBadCursor) {
			t.Errorf("%s: err = %v, want ErrBadCursor", name, err)
		}
	}

	// Cursor and offset name positions in incompatible ways.
	conflicted := resume
	conflicted.Offset = 3
	if _, err := s.QueryCursor(conflicted); err == nil {
		t.Error("cursor+offset accepted")
	}
}

// TestQueryCursorCached: a repeated cursor page is served from the
// generation-guarded cache, distinct cursors never collide, and a write
// to a depended-on shard invalidates.
func TestQueryCursorCached(t *testing.T) {
	s, db := buildCursorStore(t, 4, 20)
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore, Limit: 7}
	p0, err := s.QueryCursor(req)
	if err != nil {
		t.Fatal(err)
	}
	req1 := req
	req1.Cursor = p0.NextCursor
	p1, err := s.QueryCursor(req1)
	if err != nil {
		t.Fatal(err)
	}
	f0, f1 := flatten(p0.Series), flatten(p1.Series)
	if len(f0) == 0 || len(f1) == 0 || f0[0] == f1[0] {
		t.Fatalf("pages collide: %+v vs %+v", f0, f1)
	}
	before := s.CacheStats()
	again, err := s.QueryCursor(req1)
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheStats().Hits != before.Hits+1 {
		t.Fatalf("repeated cursor page missed the cache: %+v -> %+v", before, s.CacheStats())
	}
	if len(flatten(again.Series)) != len(f1) {
		t.Fatal("cached cursor page differs from the original")
	}
	// A write to a shard the page depends on invalidates it.
	if err := db.Append(cursorStoreKey(1), cursorT0.Add(24*time.Hour), 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryCursor(req1); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Invalidations == 0 {
		t.Fatalf("write did not invalidate the cursor page: %+v", st)
	}
}

// TestQueryCursorHTTP walks the pages through the HTTP layer: an empty
// cursor parameter starts the walk, X-Next-Cursor/Link drive it, the
// concatenation matches the unpaginated body, and stale/foreign/mixed
// parameters are rejected with 400 and a usable message.
func TestQueryCursorHTTP(t *testing.T) {
	s, _ := buildArchive(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	getJSON := func(url string) (*http.Response, []SeriesResult) {
		t.Helper()
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []SeriesResult
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatalf("%s: body not a series array: %v", url, err)
		}
		return resp, out
	}

	resp, full := getJSON("/api/v1/query?dataset=sps")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unpaginated query: %d", resp.StatusCode)
	}
	want := flatten(full)

	const limit = 23
	var got []flatPoint
	url := "/api/v1/query?dataset=sps&limit=" + strconv.Itoa(limit) + "&cursor="
	for pages := 0; ; pages++ {
		if pages > 10000 {
			t.Fatal("HTTP cursor walk did not terminate")
		}
		resp, series := getJSON(url)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cursor page %d: status %d", pages, resp.StatusCode)
		}
		got = append(got, flatten(series)...)
		next := resp.Header.Get("X-Next-Cursor")
		if next == "" {
			break
		}
		link := resp.Header.Get("Link")
		if link == "" || !strings.Contains(link, `rel="next"`) {
			t.Fatalf("page %d: next cursor without a Link header (%q)", pages, link)
		}
		// Follow the ready-made Link URL rather than building our own,
		// proving it round-trips the token unescaped-safely.
		url = strings.TrimSuffix(strings.TrimPrefix(strings.Split(link, ">")[0], "<"), ">")
	}
	if len(got) != len(want) {
		t.Fatalf("HTTP cursor pages concatenate to %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HTTP cursor point %d differs: got %+v want %+v", i, got[i], want[i])
		}
	}

	// Mixed and malformed cursor parameters.
	for _, u := range []string{
		"/api/v1/query?dataset=sps&cursor=&offset=5",
		"/api/v1/query?dataset=sps&cursor=%21%21%21",
		"/api/v1/query?dataset=sps&cursor=" + encodeCursor(12345, "a|b|c|d", cursorT0, 0),
	} {
		resp, err := http.Get(srv.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", u, resp.StatusCode)
		}
		if !strings.Contains(strings.ToLower(string(body)), "cursor") {
			t.Errorf("%s: error body %q does not mention the cursor", u, body)
		}
	}
}
