package archive

// Query-time resolution selection over the rollup tiers.
//
// The tsdb maintains downsampled rollup series (min/max/mean/last at 1h
// and 1d) in a nested rollup store (see internal/tsdb/rollup.go). The
// serving layer exposes them through `resolution=` on /api/v1/query:
// `raw` reads the raw series as before, `1h`/`1d` read the matching
// rollup series, and `auto` picks from the window span so long-horizon
// dashboards get the cheap tier without asking. The aggregate defaults
// to mean; `agg=` selects min/max/last.
//
// Resolution is normalized to its effective value ("raw", "1h", "1d")
// before the cache key and cursor scope are built: an `auto` request
// whose window resolves to 1h shares cache entries — and cursor tokens —
// with the equivalent explicit request, instead of fragmenting both.
//
// Responses are keyed by the RAW series key regardless of resolution:
// which physical series served the points is an implementation detail,
// and clients correlate rollup pages against raw ones by the same key.

import (
	"time"

	"repro/internal/tsdb"
)

// Auto-pick thresholds: windows of at least autoDaily span read the 1d
// tier, at least autoHourly the 1h tier, anything shorter raw. Unbounded
// windows normalize to a span of millennia and land on 1d.
const (
	autoHourly = 48 * time.Hour
	autoDaily  = 60 * 24 * time.Hour
)

// readPlan is a resolved read target: the store to read points from and
// the key transform from the raw series key the request matched to the
// physical series key holding the data.
type readPlan struct {
	db *tsdb.DB
	// res is the effective resolution ("raw", "1h", "1d") after auto
	// resolution; echoed in the X-Resolution header.
	res string
	// rollup is the parsed resolution when res != "raw".
	rollup time.Duration
	agg    tsdb.Agg
}

// key maps a raw series key to the physical key the plan reads.
func (p *readPlan) key(k tsdb.SeriesKey) tsdb.SeriesKey {
	if p.res == "raw" {
		return k
	}
	return tsdb.RollupKey(k, p.rollup, p.agg)
}

// EffectiveResolution reports the tier a request will be served from
// ("raw", "1h", "1d") after auto resolution, without running the query.
// The HTTP layer echoes it as X-Resolution so `auto` clients know which
// tier answered.
func (s *Service) EffectiveResolution(req QueryRequest) (string, error) {
	from, to, err := s.checkWindow(req)
	if err != nil {
		return "", err
	}
	plan, err := resolveRead(s.store(), &req, from, to)
	if err != nil {
		return "", err
	}
	return plan.res, nil
}

// resolveRead validates req's Resolution/Agg and resolves auto against
// the window, returning the read plan rooted at db (the store captured
// at the query's entry — the plan must not outlive a swap into a
// different store). It normalizes req.Resolution and req.Agg in place so
// cache keys and cursor scopes are built from the effective values.
// Unknown values fail naming the parameter; an explicit 1h/1d against a
// store without rollup tiers fails too, while auto degrades to raw there
// (the caller asked for "whatever is cheapest", and raw is all that
// exists).
func resolveRead(db *tsdb.DB, req *QueryRequest, from, to time.Time) (readPlan, error) {
	agg := tsdb.AggMean
	if req.Agg != "" {
		a, ok := tsdb.ParseAgg(req.Agg)
		if !ok {
			return readPlan{}, badParam("agg", "archive: agg must be one of min, max, mean, last, got %q", req.Agg)
		}
		agg = a
	}
	req.Agg = agg.String()

	res := req.Resolution
	if res == "" {
		res = "raw"
	}
	ro := db.Rollups()
	switch res {
	case "raw":
	case "auto":
		res = "raw"
		if ro != nil {
			switch span := to.Sub(from); {
			case span >= autoDaily:
				res = "1d"
			case span >= autoHourly:
				res = "1h"
			}
		}
	case "1h", "1d":
		if ro == nil {
			return readPlan{}, badParam("resolution", "archive: resolution %q is unavailable: this store has no rollup tiers (memory-only or sealing disabled)", res)
		}
	default:
		return readPlan{}, badParam("resolution", "archive: resolution must be one of raw, 1h, 1d, auto, got %q", req.Resolution)
	}
	req.Resolution = res
	if res == "raw" {
		return readPlan{db: db, res: "raw", agg: agg}, nil
	}
	d, _ := tsdb.ParseResolution(res)
	return readPlan{db: ro, res: res, rollup: d, agg: agg}, nil
}
