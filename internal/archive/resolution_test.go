package archive

// Resolution selection, rollup serving, retention-expired cursors, and
// the cold-read → 500 mapping, all of which need a disk-backed store
// (the rollup tiers only exist when the store seals cold blocks).

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func diskOpts() tsdb.Options {
	return tsdb.Options{Shards: 4, RotateBytes: 1 << 16, HotTailPoints: 4, BlockPoints: 64, BlockCacheBytes: 1 << 14}
}

// diskArchive builds a Service over a sealing disk store (rollup tiers
// on) holding `days` of 10-minute price points on one series, sealed by
// one checkpoint.
func diskArchive(t *testing.T, dir string, opts tsdb.Options, days int) (*Service, *tsdb.DB, tsdb.SeriesKey) {
	t.Helper()
	db, err := tsdb.OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	k := tsdb.SeriesKey{Dataset: tsdb.DatasetPrice, Type: "m5.large", Region: "us-east-1", AZ: "us-east-1a"}
	n := days * 144
	entries := make([]tsdb.Entry, n)
	for i := range entries {
		entries[i] = tsdb.Entry{
			Key:   k,
			At:    simclock.Epoch.Add(time.Duration(i) * 10 * time.Minute),
			Value: float64((i*7)%37) + float64(i%3)/4,
		}
	}
	if got, err := db.AppendBatch(entries); err != nil || got != n {
		t.Fatalf("stored %d, err %v", got, err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return NewService(db, catalog.Compact(2)), db, k
}

func TestResolutionValidation(t *testing.T) {
	s, _, _ := diskArchive(t, t.TempDir(), diskOpts(), 3)
	if _, err := s.Query(QueryRequest{Dataset: tsdb.DatasetPrice, Resolution: "5m"}); err == nil || !strings.Contains(err.Error(), "resolution must be one of") {
		t.Fatalf("unknown resolution: err = %v, want message naming the parameter", err)
	}
	if _, err := s.Query(QueryRequest{Dataset: tsdb.DatasetPrice, Resolution: "1h", Agg: "median"}); err == nil || !strings.Contains(err.Error(), "agg must be one of") {
		t.Fatalf("unknown agg: err = %v, want message naming the parameter", err)
	}

	// A memory-only store has no rollup tiers: explicit tiers are an
	// error, auto quietly degrades to raw.
	mem, _ := buildArchive(t)
	if _, err := mem.Query(QueryRequest{Dataset: tsdb.DatasetPlacementScore, Resolution: "1h"}); err == nil || !strings.Contains(err.Error(), "no rollup tiers") {
		t.Fatalf("explicit 1h on memory store: err = %v, want rollup-tier error", err)
	}
	if res, err := mem.EffectiveResolution(QueryRequest{Dataset: tsdb.DatasetPlacementScore, Resolution: "auto"}); err != nil || res != "raw" {
		t.Fatalf("auto on memory store = (%q, %v), want raw", res, err)
	}
}

func TestResolutionAutoRule(t *testing.T) {
	s, _, _ := diskArchive(t, t.TempDir(), diskOpts(), 3)
	e := simclock.Epoch
	cases := []struct {
		to   time.Time
		want string
	}{
		{e.Add(24 * time.Hour), "raw"},
		{e.Add(48 * time.Hour), "1h"},
		{e.Add(60 * 24 * time.Hour), "1d"},
		{time.Time{}, "1d"}, // unbounded window spans millennia
	}
	for _, c := range cases {
		res, err := s.EffectiveResolution(QueryRequest{Dataset: tsdb.DatasetPrice, From: e, To: c.to, Resolution: "auto"})
		if err != nil || res != c.want {
			t.Errorf("auto with to=%v = (%q, %v), want %q", c.to, res, err, c.want)
		}
	}
	// Empty resolution defaults to raw regardless of span.
	if res, err := s.EffectiveResolution(QueryRequest{Dataset: tsdb.DatasetPrice}); err != nil || res != "raw" {
		t.Errorf("default resolution = (%q, %v), want raw", res, err)
	}
}

// TestRollupQueryValues: rollup tiers serve real aggregates, keyed by the
// raw series key.
func TestRollupQueryValues(t *testing.T) {
	s, _, k := diskArchive(t, t.TempDir(), diskOpts(), 5)
	rawRes, err := s.Query(QueryRequest{Dataset: tsdb.DatasetPrice})
	if err != nil || len(rawRes) != 1 {
		t.Fatalf("raw query: %d series, err %v", len(rawRes), err)
	}
	raw := rawRes[0].Points

	for _, agg := range []string{"min", "mean"} {
		res, err := s.Query(QueryRequest{Dataset: tsdb.DatasetPrice, Resolution: "1h", Agg: agg})
		if err != nil || len(res) != 1 {
			t.Fatalf("1h/%s query: %d series, err %v", agg, len(res), err)
		}
		if res[0].Key != k {
			t.Fatalf("rollup result keyed by %v, want the raw key %v", res[0].Key, k)
		}
		pts := res[0].Points
		if len(pts) < 3*24 {
			t.Fatalf("1h/%s: only %d buckets for 5 days of data", agg, len(pts))
		}
		for _, p := range pts {
			bs, be := p.At, p.At.Add(time.Hour)
			var sum float64
			minV, n := 0.0, 0
			for _, rp := range raw {
				if rp.At.Before(bs) || !rp.At.Before(be) {
					continue
				}
				if n == 0 || rp.Value < minV {
					minV = rp.Value
				}
				sum += rp.Value
				n++
			}
			if n == 0 {
				t.Fatalf("1h/%s bucket %v has no raw points", agg, bs)
			}
			want := minV
			if agg == "mean" {
				want = sum / float64(n)
			}
			if p.Value != want {
				t.Fatalf("1h/%s bucket %v = %v, want %v", agg, bs, p.Value, want)
			}
		}
	}
}

func TestResolutionHTTP(t *testing.T) {
	s, _, _ := diskArchive(t, t.TempDir(), diskOpts(), 3)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, _ := get("/api/v1/query?dataset=price&resolution=1h")
	if resp.StatusCode != 200 || resp.Header.Get("X-Resolution") != "1h" {
		t.Fatalf("explicit 1h: status %d, X-Resolution %q", resp.StatusCode, resp.Header.Get("X-Resolution"))
	}
	// Unbounded auto window lands on the 1d tier.
	resp, _ = get("/api/v1/query?dataset=price&resolution=auto")
	if resp.StatusCode != 200 || resp.Header.Get("X-Resolution") != "1d" {
		t.Fatalf("auto: status %d, X-Resolution %q", resp.StatusCode, resp.Header.Get("X-Resolution"))
	}
	resp, body := get("/api/v1/query?dataset=price&resolution=bogus")
	if resp.StatusCode != 400 || !strings.Contains(body, "resolution") {
		t.Fatalf("unknown resolution: status %d, body %q", resp.StatusCode, body)
	}
	resp, body = get("/api/v1/query?dataset=price&resolution=1h&agg=p99")
	if resp.StatusCode != 400 || !strings.Contains(body, "agg") {
		t.Fatalf("unknown agg: status %d, body %q", resp.StatusCode, body)
	}

	// Retention state is part of /api/v1/meta.
	resp, body = get("/api/v1/meta")
	if resp.StatusCode != 200 || !strings.Contains(body, "rollupTiers") {
		t.Fatalf("meta: status %d, body %q", resp.StatusCode, body)
	}
}

// TestCursorExpiresWhenRawRetained: a raw-tier cursor keeps working
// across live appends, but expires with a 400 once retention drops the
// history it points into — resuming would otherwise silently skip from
// the cut to the first surviving point.
func TestCursorExpiresWhenRawRetained(t *testing.T) {
	opts := diskOpts()
	opts.RetainRaw = map[string]time.Duration{tsdb.DatasetPrice: 24 * time.Hour}
	s, db, k := diskArchive(t, t.TempDir(), opts, 3)

	// Start the walk above the committed cut: below it raw existence is
	// only block-granular luck, and tokens there are already expired.
	cut1, ok := db.RetentionCut(tsdb.DatasetPrice)
	if !ok {
		t.Fatal("no retention cut after the build checkpoint")
	}
	req := QueryRequest{Dataset: tsdb.DatasetPrice, From: cut1.Add(2 * time.Hour), Limit: 4}
	page, err := s.QueryCursor(req)
	if err != nil || page.NextCursor == "" {
		t.Fatalf("page 1: err %v, cursor %q", err, page.NextCursor)
	}
	token := page.NextCursor

	// Live appends do not move the cursor (PR 5's guarantee holds).
	more := make([]tsdb.Entry, 5*144)
	for i := range more {
		more[i] = tsdb.Entry{Key: k, At: simclock.Epoch.Add(time.Duration(3*144+i) * 10 * time.Minute), Value: 1}
	}
	if n, err := db.AppendBatch(more); err != nil || n != len(more) {
		t.Fatalf("stored %d, err %v", n, err)
	}
	req.Cursor = token
	if _, err := s.QueryCursor(req); err != nil {
		t.Fatalf("cursor after append: %v", err)
	}

	// The append pushed the horizon far forward; the next checkpoint's
	// retention pass drops the raw history under the token.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if cut, ok := db.RetentionCut(tsdb.DatasetPrice); !ok || cut.IsZero() {
		t.Fatal("no retention cut after checkpoint")
	}
	_, err = s.QueryCursor(req)
	if !errors.Is(err, ErrBadCursor) || !strings.Contains(err.Error(), "retention horizon") {
		t.Fatalf("cursor into retained-away raw: err = %v, want ErrBadCursor naming retention", err)
	}

	// HTTP: the expired token is the client's 400, not a 500.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/query?dataset=price&cursor=" + token +
		"&from=" + req.From.Format(time.RFC3339))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 || !strings.Contains(string(body), "retention horizon") {
		t.Fatalf("HTTP expired cursor: status %d, body %q", resp.StatusCode, body)
	}

	// Rollup tiers still cover the dropped window: the suggested recovery
	// (re-query at 1h) works.
	if _, err := s.Query(QueryRequest{Dataset: tsdb.DatasetPrice, Resolution: "1h"}); err != nil {
		t.Fatalf("1h query after retention: %v", err)
	}
}

// TestColdReadHTTP500: a cold block that fails its CRC surfaces as a 500
// from /api/v1/query — never a silently truncated 200.
func TestColdReadHTTP500(t *testing.T) {
	dir := t.TempDir()
	opts := diskOpts()
	_, db, _ := diskArchive(t, dir, opts, 2)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the first data block; the index CRC stays intact so
	// reopening succeeds and only the read detects the damage.
	path := filepath.Join(dir, "blocks-000001.blk")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len("SLBLOCKS")+2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err = tsdb.OpenWithOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := httptest.NewServer(NewService(db, catalog.Compact(2)).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/v1/query?dataset=price")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 500 || !strings.Contains(string(body), "cold block read failed") {
		t.Fatalf("cold-read query: status %d, body %q, want 500 naming the cold read", resp.StatusCode, body)
	}
}
