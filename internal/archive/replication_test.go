package archive

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func noerr2[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func replStoreOpts() tsdb.Options {
	return tsdb.Options{
		Shards:              4,
		RotateBytes:         1 << 14,
		HotTailPoints:       16,
		BlockPoints:         64,
		BlockCacheBytes:     1 << 16,
		MaintenanceInterval: -1,
	}
}

// durablePrimary builds a checkpointed durable archive in dir with real
// collected contents (all three datasets plus rollup tiers), returning
// the serving Service and the collector for appending more later.
func durablePrimary(t *testing.T, dir string) (*Service, *catalog.Catalog, *collector.Collector, *tsdb.DB) {
	t.Helper()
	cat := catalog.Compact(2)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 99, cloudsim.DefaultParams())
	db, err := tsdb.OpenWithOptions(dir, replStoreOpts())
	if err != nil {
		t.Fatal(err)
	}
	col, err := collector.New(cloud, db, collector.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return NewService(db, cat), cat, col, db
}

// newFollower wires a follower Service + Puller against primaryURL. The
// follower starts on an empty memory store (first pull swaps in the
// replica) and retires replaced stores almost immediately — the tests
// here never hold a request across a swap.
func newFollower(t *testing.T, primaryURL string, cat *catalog.Catalog, maxStaleness time.Duration) (*Service, *Puller) {
	t.Helper()
	fdb, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	fsvc := NewService(fdb, cat)
	fsvc.SetFollower(primaryURL, maxStaleness)
	p, err := NewPuller(fsvc, PullerConfig{
		PrimaryURL:   primaryURL,
		Dir:          t.TempDir(),
		Grace:        time.Millisecond,
		StoreOptions: replStoreOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p.Stop()
		fsvc.DB().Close()
	})
	return fsvc, p
}

// assertConverged is the serving-layer differential: the follower must
// answer every read path identically to the primary — full queries per
// dataset at raw and rollup resolutions, latest values, cursor walks,
// and the meta schema section.
func assertConverged(t *testing.T, primary, follower *Service) {
	t.Helper()
	samePoints := func(what string, a, b []SeriesResult) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d series vs %d", what, len(a), len(b))
		}
		for i := range a {
			if a[i].Key != b[i].Key {
				t.Fatalf("%s: series %d key %v vs %v", what, i, a[i].Key, b[i].Key)
			}
			if len(a[i].Points) != len(b[i].Points) {
				t.Fatalf("%s %v: %d points vs %d", what, a[i].Key, len(a[i].Points), len(b[i].Points))
			}
			for j := range a[i].Points {
				pa, pb := a[i].Points[j], b[i].Points[j]
				if !pa.At.Equal(pb.At) || pa.Value != pb.Value {
					t.Fatalf("%s %v point %d: (%v,%v) vs (%v,%v)", what, a[i].Key, j, pa.At, pa.Value, pb.At, pb.Value)
				}
			}
		}
	}
	for _, ds := range []string{tsdb.DatasetPlacementScore, tsdb.DatasetPrice, tsdb.DatasetInterruptFree} {
		for _, res := range []string{"raw", "1h"} {
			req := QueryRequest{Dataset: ds, Resolution: res}
			pq, perr := primary.Query(req)
			fq, ferr := follower.Query(req)
			if (perr == nil) != (ferr == nil) {
				t.Fatalf("query %s/%s: primary err %v, follower err %v", ds, res, perr, ferr)
			}
			if perr != nil {
				continue // e.g. no rollup tier on either side
			}
			samePoints(ds+"/"+res, pq, fq)
		}
		pl := noerr2(primary.Latest(QueryRequest{Dataset: ds}))
		fl := noerr2(follower.Latest(QueryRequest{Dataset: ds}))
		if !reflect.DeepEqual(jsonRound(t, pl), jsonRound(t, fl)) {
			t.Fatalf("latest %s diverged", ds)
		}
	}
	// Cursor walk: the same token sequence must yield the same pages.
	preq := QueryRequest{Dataset: tsdb.DatasetPlacementScore, Limit: 50, Cursor: ""}
	freq := preq
	for n := 0; ; n++ {
		pp := noerr2(primary.QueryCursor(preq))
		fp := noerr2(follower.QueryCursor(freq))
		samePoints(fmt.Sprintf("cursor page %d", n), pp.Series, fp.Series)
		if pp.NextCursor != fp.NextCursor {
			t.Fatalf("cursor page %d: next tokens diverge", n)
		}
		if pp.NextCursor == "" {
			break
		}
		preq.Cursor, freq.Cursor = pp.NextCursor, fp.NextCursor
	}
	pm, fm := primary.Meta(), follower.Meta()
	if !reflect.DeepEqual(jsonRound(t, pm.Schema), jsonRound(t, fm.Schema)) {
		t.Fatalf("meta schema diverged: %+v vs %+v", pm.Schema, fm.Schema)
	}
	if fm.Replication.Role != "follower" || pm.Replication.Role != "primary" {
		t.Fatalf("roles: primary=%q follower=%q", pm.Replication.Role, fm.Replication.Role)
	}
	if fm.Replication.LastAppliedEpoch != pm.Replication.Epoch ||
		fm.Replication.LastAppliedCheckpointSeq != pm.Replication.CheckpointSeq {
		t.Fatalf("follower applied (%d,%d), primary at (%d,%d)",
			fm.Replication.LastAppliedEpoch, fm.Replication.LastAppliedCheckpointSeq,
			pm.Replication.Epoch, pm.Replication.CheckpointSeq)
	}
}

// jsonRound normalizes a value through JSON so time.Time monotonic
// readings and map ordering don't produce false diffs.
func jsonRound(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFollowerConvergence: after each primary checkpoint one pull makes
// the follower reference-equal to the primary on every read path,
// including the rollup tiers, across repeated rounds of new data.
func TestFollowerConvergence(t *testing.T) {
	psvc, cat, col, db := durablePrimary(t, t.TempDir())
	defer db.Close()
	srv := httptest.NewServer(psvc.Handler())
	defer srv.Close()

	fsvc, puller := newFollower(t, srv.URL, cat, 0)
	if err := puller.SyncOnce(); err != nil {
		t.Fatalf("initial sync: %v", err)
	}
	assertConverged(t, psvc, fsvc)

	for round := 0; round < 2; round++ {
		if err := col.Run(2 * time.Hour); err != nil {
			t.Fatal(err)
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := puller.SyncOnce(); err != nil {
			t.Fatalf("round %d sync: %v", round, err)
		}
		assertConverged(t, psvc, fsvc)
	}
	if _, applied, failures := puller.Stats(); applied < 3 || failures != 0 {
		t.Fatalf("puller applied %d deltas with %d failures", applied, failures)
	}
	// A pull with nothing new applies nothing but refreshes the clock.
	_, before, _ := puller.Stats()
	if err := puller.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	if _, after, _ := puller.Stats(); after != before {
		t.Fatalf("no-op sync applied a delta (%d -> %d)", before, after)
	}
}

// walkPage fetches one cursor page over HTTP and returns its series
// plus the next cursor token.
func walkPage(t *testing.T, base string, q url.Values) ([]SeriesResult, string) {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/query?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
		t.Fatalf("walk page: %s: %s", resp.Status, body)
	}
	var series []SeriesResult
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	return series, resp.Header.Get("X-Next-Cursor")
}

// TestFailoverExactlyOnce: a cursor walk that fails over between the
// primary and a follower on every page — both directions, repeatedly —
// under a concurrent writer delivers every point that existed at walk
// start exactly once, with no duplicates anywhere in the walk.
func TestFailoverExactlyOnce(t *testing.T) {
	psvc, cat, col, db := durablePrimary(t, t.TempDir())
	defer db.Close()
	psrv := httptest.NewServer(psvc.Handler())
	defer psrv.Close()

	fsvc, puller := newFollower(t, psrv.URL, cat, 0)
	if err := puller.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(fsvc.Handler())
	defer fsrv.Close()

	// The exactly-once set: every point present when the walk starts.
	// The follower just synced the same committed state, so both ends
	// hold all of them for the whole walk.
	walkReq := QueryRequest{Dataset: tsdb.DatasetPlacementScore}
	start := noerr2(psvc.Query(walkReq))
	type pt struct {
		key tsdb.SeriesKey
		at  int64
	}
	want := make(map[pt]bool)
	for _, sr := range start {
		for _, p := range sr.Points {
			want[pt{sr.Key, p.At.UnixNano()}] = false
		}
	}
	if len(want) < 100 {
		t.Fatalf("walk-start set implausibly small: %d points", len(want))
	}

	// Live writer: keep collecting and checkpointing while the walk
	// fails over, so pages race real appends, rotations, checkpoints,
	// and replica applies.
	writerDone := make(chan struct{})
	writerStop := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < 20; i++ {
			select {
			case <-writerStop:
				return
			default:
			}
			if err := col.Run(15 * time.Minute); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			if i%4 == 3 {
				if err := db.Checkpoint(); err != nil {
					t.Errorf("writer checkpoint: %v", err)
					return
				}
			}
		}
	}()

	seen := make(map[pt]int)
	q := url.Values{"dataset": {tsdb.DatasetPlacementScore}, "limit": {"40"}, "cursor": {""}}
	servers := []string{psrv.URL, fsrv.URL}
	for page := 0; ; page++ {
		if page > 10000 {
			t.Fatal("walk did not terminate")
		}
		// Fail over every page: primary, follower, primary, ... and pull
		// a fresh delta onto the follower every few pages so the walk
		// also crosses store swaps on the replica.
		base := servers[page%2]
		if page%5 == 4 {
			if err := puller.SyncOnce(); err != nil {
				t.Fatalf("mid-walk sync: %v", err)
			}
		}
		series, next := walkPage(t, base, q)
		for _, sr := range series {
			for _, p := range sr.Points {
				seen[pt{sr.Key, p.At.UnixNano()}]++
			}
		}
		if next == "" {
			break
		}
		q.Set("cursor", next)
		if page == 6 {
			close(writerStop)
			<-writerDone
		}
	}
	select {
	case <-writerStop:
	default:
		close(writerStop)
	}
	<-writerDone

	for p, n := range seen {
		if n != 1 {
			t.Fatalf("point %v/%d delivered %d times", p.key, p.at, n)
		}
	}
	missing := 0
	for p := range want {
		if seen[p] == 0 {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d walk-start points never delivered", missing, len(want))
	}
}

// TestFollowerStalenessGate: a follower past -max-staleness answers 503
// with the stale_replica envelope and a Retry-After hint on reads,
// keeps /api/v1/meta reachable, and recovers as soon as a sync lands.
func TestFollowerStalenessGate(t *testing.T) {
	psvc, cat, _, db := durablePrimary(t, t.TempDir())
	defer db.Close()
	psrv := httptest.NewServer(psvc.Handler())
	defer psrv.Close()

	fsvc, puller := newFollower(t, psrv.URL, cat, 50*time.Millisecond)
	fsrv := httptest.NewServer(fsvc.Handler())
	defer fsrv.Close()

	// Never synced: stale by definition.
	resp := noerr2(http.Get(fsrv.URL + "/api/v1/query?dataset=sps"))
	var env apiError
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != ErrCodeStaleReplica {
		t.Fatalf("unsynced follower: %d %q, want 503 %q", resp.StatusCode, env.Error.Code, ErrCodeStaleReplica)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("stale 503 missing Retry-After")
	}
	// Meta stays reachable and reports the staleness.
	mresp := noerr2(http.Get(fsrv.URL + "/api/v1/meta"))
	var meta Meta
	if err := json.NewDecoder(mresp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("meta on stale follower: %d", mresp.StatusCode)
	}
	if meta.Replication.Role != "follower" || !meta.Replication.Stale {
		t.Fatalf("meta replication section: %+v", meta.Replication)
	}

	if err := puller.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	resp2 := noerr2(http.Get(fsrv.URL + "/api/v1/query?dataset=sps"))
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("synced follower read: %d, want 200", resp2.StatusCode)
	}

	// Let the bound lapse again: the gate re-engages.
	time.Sleep(80 * time.Millisecond)
	resp3 := noerr2(http.Get(fsrv.URL + "/api/v1/query?dataset=sps"))
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("lapsed follower read: %d, want 503", resp3.StatusCode)
	}
}

// TestReplicationEpochGuard: a file request pinned to a position the
// primary has moved past answers 409 epoch_mismatch, and the follower
// side of the pair refuses to serve replication at all.
func TestReplicationEpochGuard(t *testing.T) {
	psvc, cat, col, db := durablePrimary(t, t.TempDir())
	defer db.Close()
	psrv := httptest.NewServer(psvc.Handler())
	defer psrv.Close()

	// Capture a listing, then move the primary's position.
	lresp := noerr2(http.Get(psrv.URL + "/api/v1/replication/manifest"))
	var listing replListing
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK || len(listing.Artifacts) == 0 {
		t.Fatalf("listing: %d with %d artifacts", lresp.StatusCode, len(listing.Artifacts))
	}
	if err := col.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	u := fmt.Sprintf("%s/api/v1/replication/file/%s?epoch=%d&checkpointSeq=%d",
		psrv.URL, listing.Artifacts[0].Name, listing.Epoch, listing.CheckpointSeq)
	resp := noerr2(http.Get(u))
	var env apiError
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || env.Error.Code != ErrCodeEpochMismatch {
		t.Fatalf("stale pin: %d %q, want 409 %q", resp.StatusCode, env.Error.Code, ErrCodeEpochMismatch)
	}

	// The follower refuses to act as a replication source.
	fsvc, puller := newFollower(t, psrv.URL, cat, 0)
	if err := puller.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	fsrv := httptest.NewServer(fsvc.Handler())
	defer fsrv.Close()
	for _, path := range []string{
		"/api/v1/replication/manifest",
		"/api/v1/replication/file/blocks-000001.blk?epoch=1&checkpointSeq=1",
	} {
		resp := noerr2(http.Get(fsrv.URL + path))
		var env apiError
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden || env.Error.Code != ErrCodeNotPrimary {
			t.Fatalf("%s on follower: %d %q, want 403 %q", path, resp.StatusCode, env.Error.Code, ErrCodeNotPrimary)
		}
	}
}

// TestErrorEnvelope is the contract test for satellite 1: every
// endpoint's non-2xx response body is the unified envelope with a
// stable machine-readable code (and param where one applies).
func TestErrorEnvelope(t *testing.T) {
	psvc, cat, _, db := durablePrimary(t, t.TempDir())
	defer db.Close()
	psrv := httptest.NewServer(psvc.Handler())
	defer psrv.Close()

	fsvc, _ := newFollower(t, psrv.URL, cat, time.Millisecond)
	fsrv := httptest.NewServer(fsvc.Handler())
	defer fsrv.Close()

	// A rate-limited twin of the primary for the 429 case.
	rlsvc := NewService(db, cat)
	rlsvc.SetAdmission(NewAdmission(AdmissionConfig{RatePerSec: 1, Burst: 1}))
	rlsrv := httptest.NewServer(rlsvc.Handler())
	defer rlsrv.Close()
	// Drain the single-token bucket so the table request is the one
	// over the limit.
	for i := 0; i < 3; i++ {
		r := noerr2(http.Get(rlsrv.URL + "/api/v1/datasets"))
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}

	cases := []struct {
		name       string
		method     string
		base       string
		path       string
		status     int
		code       string
		param      string
		retryAfter bool
	}{
		{name: "bad from", base: psrv.URL, path: "/api/v1/query?from=yesterday", status: 400, code: ErrCodeBadParam, param: "from"},
		{name: "bad limit", base: psrv.URL, path: "/api/v1/query?limit=many", status: 400, code: ErrCodeBadParam, param: "limit"},
		{name: "unknown dataset", base: psrv.URL, path: "/api/v1/query?dataset=bogus", status: 400, code: ErrCodeBadParam, param: "dataset"},
		{name: "bad resolution", base: psrv.URL, path: "/api/v1/query?resolution=5m", status: 400, code: ErrCodeBadParam, param: "resolution"},
		{name: "bad agg", base: psrv.URL, path: "/api/v1/query?resolution=1h&agg=median", status: 400, code: ErrCodeBadParam, param: "agg"},
		{name: "bad cursor token", base: psrv.URL, path: "/api/v1/query?cursor=%21%21not-a-token", status: 400, code: ErrCodeBadCursor, param: "cursor"},
		{name: "cursor plus offset", base: psrv.URL, path: "/api/v1/query?cursor=&offset=3", status: 400, code: ErrCodeBadRequest},
		{name: "latest bad dataset", base: psrv.URL, path: "/api/v1/latest?dataset=bogus", status: 400, code: ErrCodeBadParam, param: "dataset"},
		{name: "unknown path", base: psrv.URL, path: "/api/v1/nope", status: 404, code: ErrCodeNotFound},
		{name: "write rejected", method: "POST", base: psrv.URL, path: "/api/v1/query", status: 405, code: ErrCodeMethodNotAllowed},
		{name: "write rejected on follower", method: "DELETE", base: fsrv.URL, path: "/api/v1/meta", status: 405, code: ErrCodeMethodNotAllowed},
		{name: "repl bad name", base: psrv.URL, path: "/api/v1/replication/file/..%2FMANIFEST?epoch=1&checkpointSeq=1", status: 400, code: ErrCodeBadParam, param: "name"},
		{name: "repl missing pin", base: psrv.URL, path: "/api/v1/replication/file/blocks-000001.blk", status: 400, code: ErrCodeBadParam, param: "epoch"},
		{name: "repl stale pin", base: psrv.URL, path: "/api/v1/replication/file/blocks-000001.blk?epoch=9999&checkpointSeq=9999", status: 409, code: ErrCodeEpochMismatch},
		{name: "repl on follower", base: fsrv.URL, path: "/api/v1/replication/manifest", status: 403, code: ErrCodeNotPrimary},
		{name: "stale follower read", base: fsrv.URL, path: "/api/v1/latest?dataset=sps", status: 503, code: ErrCodeStaleReplica, retryAfter: true},
		{name: "rate limited", base: rlsrv.URL, path: "/api/v1/datasets", status: 429, code: ErrCodeRateLimited, retryAfter: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			method := tc.method
			if method == "" {
				method = "GET"
			}
			req := noerr2(http.NewRequest(method, tc.base+tc.path, nil))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type %q, want application/json", ct)
			}
			var env apiError
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("body is not the error envelope: %v", err)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code %q, want %q", env.Error.Code, tc.code)
			}
			if env.Error.Message == "" {
				t.Error("empty message")
			}
			if env.Error.Param != tc.param {
				t.Errorf("param %q, want %q", env.Error.Param, tc.param)
			}
			if tc.retryAfter && resp.Header.Get("Retry-After") == "" {
				t.Error("missing Retry-After")
			}
			if tc.status == 405 && resp.Header.Get("Allow") == "" {
				t.Error("405 without Allow header")
			}
		})
	}

	// The over-capacity shed uses the same envelope; drive it directly
	// through the admission wrapper with a parked handler.
	t.Run("over capacity", func(t *testing.T) {
		adm := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 0})
		release := make(chan struct{})
		var once sync.Once
		defer once.Do(func() { close(release) })
		started := make(chan struct{}, 1)
		srv := httptest.NewServer(withAdmission(adm, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			started <- struct{}{}
			<-release
		})))
		defer srv.Close()
		go func() {
			resp, err := http.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
		}()
		<-started
		resp := noerr2(http.Get(srv.URL))
		defer resp.Body.Close()
		var env apiError
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != ErrCodeOverCapacity {
			t.Fatalf("shed: %d %q, want 503 %q", resp.StatusCode, env.Error.Code, ErrCodeOverCapacity)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("shed response missing Retry-After")
		}
		once.Do(func() { close(release) })
	})
}

// TestOffsetDeprecationHeaders: the offset-paginated path still works
// but announces its sunset on every response.
func TestOffsetDeprecationHeaders(t *testing.T) {
	psvc, _, _, db := durablePrimary(t, t.TempDir())
	defer db.Close()
	psrv := httptest.NewServer(psvc.Handler())
	defer psrv.Close()

	resp := noerr2(http.Get(psrv.URL + "/api/v1/query?dataset=sps&limit=10"))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offset-paginated query: %d", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") == "" || resp.Header.Get("Sunset") == "" {
		t.Fatalf("offset page missing Deprecation/Sunset headers: %q / %q",
			resp.Header.Get("Deprecation"), resp.Header.Get("Sunset"))
	}
	// Cursor pages carry no deprecation noise.
	resp2 := noerr2(http.Get(psrv.URL + "/api/v1/query?dataset=sps&limit=10&cursor="))
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("Deprecation") != "" {
		t.Error("cursor page carries a Deprecation header")
	}
}
