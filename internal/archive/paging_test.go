package archive

// Tests for the paginated query API: page concatenation reproduces the
// unpaginated response exactly, page metadata (total, next) is correct at
// both the service and HTTP layers, the page window is part of the cache
// key, and malformed page parameters are rejected.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// flatten renders a result as the flattened deterministic point stream:
// series in canonical key order, points in time order within each.
type flatPoint struct {
	key string
	p   tsdb.Point
}

func flatten(series []SeriesResult) []flatPoint {
	var out []flatPoint
	for _, sr := range series {
		k := sr.Key.String()
		for _, p := range sr.Points {
			out = append(out, flatPoint{key: k, p: p})
		}
	}
	return out
}

func TestQueryPagedConcatenationEqualsUnpaginated(t *testing.T) {
	s, _ := buildArchive(t)
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore}
	full, err := s.Query(req)
	if err != nil {
		t.Fatal(err)
	}
	want := flatten(full)
	if len(want) < 50 {
		t.Fatalf("archive too small for a pagination test: %d points", len(want))
	}
	for _, limit := range []int{1, 7, 64, len(want) + 10} {
		var got []flatPoint
		pages := 0
		for off := 0; ; {
			preq := req
			preq.Limit, preq.Offset = limit, off
			page, err := s.QueryPaged(preq)
			if err != nil {
				t.Fatalf("limit %d offset %d: %v", limit, off, err)
			}
			if page.TotalPoints != len(want) {
				t.Fatalf("limit %d: TotalPoints %d, want %d", limit, page.TotalPoints, len(want))
			}
			pts := flatten(page.Series)
			if len(pts) > limit {
				t.Fatalf("limit %d: page holds %d points", limit, len(pts))
			}
			got = append(got, pts...)
			pages++
			if page.NextOffset < 0 {
				break
			}
			if page.NextOffset != off+len(pts) {
				t.Fatalf("limit %d: NextOffset %d after %d+%d", limit, page.NextOffset, off, len(pts))
			}
			off = page.NextOffset
		}
		if wantPages := (len(want) + limit - 1) / limit; pages != wantPages {
			t.Fatalf("limit %d: walked %d pages, want %d", limit, pages, wantPages)
		}
		if len(got) != len(want) {
			t.Fatalf("limit %d: concatenated %d points, want %d", limit, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("limit %d: point %d differs: got %+v want %+v", limit, i, got[i], want[i])
			}
		}
	}
	// Offset past the end: empty page, correct total, no next.
	preq := req
	preq.Limit, preq.Offset = 10, len(want)+5
	page, err := s.QueryPaged(preq)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Series) != 0 || page.NextOffset != -1 || page.TotalPoints != len(want) {
		t.Fatalf("past-the-end page: %+v", page)
	}
	// A limit near MaxInt must not overflow the window math into an
	// empty page: offset 1 + huge limit = everything but the first point.
	preq = req
	preq.Limit, preq.Offset = int(^uint(0)>>1), 1
	page, err = s.QueryPaged(preq)
	if err != nil {
		t.Fatal(err)
	}
	if got := flatten(page.Series); len(got) != len(want)-1 || page.NextOffset != -1 {
		t.Fatalf("huge-limit page: %d points (want %d), next %d", len(got), len(want)-1, page.NextOffset)
	}
}

// TestQueryPagedConcurrentAppendRace pins QueryPaged's documented
// behavior under live collection: the two passes (CountRange then
// QueryRange) race concurrent appends, and the contract is that pages
// stay well-formed — no panic, never more than limit points, totals and
// next offsets self-consistent — not that they are mutually stable
// (that is the cursor path's job). Run under -race in CI.
func TestQueryPagedConcurrentAppendRace(t *testing.T) {
	const (
		nSeries = 8
		nPoints = 100
		rounds  = 300
	)
	s, db := buildCursorStore(t, nSeries, nPoints)
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			batch := make([]tsdb.Entry, 0, nSeries)
			at := cursorT0.Add(time.Duration(nPoints+r) * time.Minute)
			for i := 0; i < nSeries; i++ {
				batch = append(batch, tsdb.Entry{Key: cursorStoreKey(i), At: at, Value: float64(r)})
			}
			if _, err := db.AppendBatch(batch); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	lastTotal := 0
	for i := 0; i < 400; i++ {
		preq := req
		preq.Limit = 1 + i%17
		preq.Offset = (i * 13) % (nSeries * nPoints)
		page, err := s.QueryPaged(preq)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if got := len(flatten(page.Series)); got > preq.Limit {
			t.Fatalf("iteration %d: page holds %d points, limit %d", i, got, preq.Limit)
		}
		// The archive is append-only and the cache is generation-guarded,
		// so the pass-1 total can only grow across requests.
		if page.TotalPoints < lastTotal {
			t.Fatalf("iteration %d: TotalPoints went backwards %d -> %d", i, lastTotal, page.TotalPoints)
		}
		lastTotal = page.TotalPoints
		if page.NextOffset != -1 && page.NextOffset <= preq.Offset {
			t.Fatalf("iteration %d: NextOffset %d not past offset %d", i, page.NextOffset, preq.Offset)
		}
	}
	wg.Wait()
}

// TestQueryPagedCacheKeyedByPage asserts two pages of the same filter
// never collide in the result cache, and that a repeated page request is
// served from it.
func TestQueryPagedCacheKeyedByPage(t *testing.T) {
	s, _ := buildArchive(t)
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore, Limit: 5}
	p0, err := s.QueryPaged(req)
	if err != nil {
		t.Fatal(err)
	}
	req1 := req
	req1.Offset = 5
	p1, err := s.QueryPaged(req1)
	if err != nil {
		t.Fatal(err)
	}
	f0, f1 := flatten(p0.Series), flatten(p1.Series)
	if len(f0) == 0 || len(f1) == 0 {
		t.Fatal("empty pages")
	}
	if f0[0] == f1[0] {
		t.Fatalf("page 0 and page 1 start with the same point %+v: cache key ignores the page window", f0[0])
	}
	before := s.CacheStats()
	again, err := s.QueryPaged(req)
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheStats().Hits != before.Hits+1 {
		t.Fatalf("repeated page request missed the cache: %+v -> %+v", before, s.CacheStats())
	}
	if len(flatten(again.Series)) != len(f0) {
		t.Fatal("cached page differs from the original")
	}
}

func TestQueryPagedHTTP(t *testing.T) {
	s, _ := buildArchive(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(url string) (*http.Response, []SeriesResult) {
		t.Helper()
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []SeriesResult
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatalf("%s: body not a series array: %v", url, err)
		}
		return resp, out
	}

	resp, full := get("/api/v1/query?dataset=sps")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unpaginated query: %d", resp.StatusCode)
	}
	want := flatten(full)
	if tp, _ := strconv.Atoi(resp.Header.Get("X-Total-Points")); tp != len(want) {
		t.Fatalf("unpaginated X-Total-Points %q, want %d", resp.Header.Get("X-Total-Points"), len(want))
	}

	// Walk the pages through the HTTP layer via X-Next-Offset.
	const limit = 23
	var got []flatPoint
	for off := 0; ; {
		resp, series := get("/api/v1/query?dataset=sps&limit=" + strconv.Itoa(limit) + "&offset=" + strconv.Itoa(off))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page at %d: status %d", off, resp.StatusCode)
		}
		if tp, _ := strconv.Atoi(resp.Header.Get("X-Total-Points")); tp != len(want) {
			t.Fatalf("page at %d: X-Total-Points %q", off, resp.Header.Get("X-Total-Points"))
		}
		got = append(got, flatten(series)...)
		next := resp.Header.Get("X-Next-Offset")
		if next == "" {
			break
		}
		n, err := strconv.Atoi(next)
		if err != nil || n <= off {
			t.Fatalf("page at %d: X-Next-Offset %q", off, next)
		}
		if resp.Header.Get("Link") == "" {
			t.Fatalf("page at %d: next page without a Link header", off)
		}
		off = n
	}
	if len(got) != len(want) {
		t.Fatalf("HTTP pages concatenate to %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HTTP point %d differs: got %+v want %+v", i, got[i], want[i])
		}
	}

	// Malformed page parameters are rejected.
	for _, u := range []string{
		"/api/v1/query?dataset=sps&limit=-1",
		"/api/v1/query?dataset=sps&limit=x",
		"/api/v1/query?dataset=sps&offset=-3",
		"/api/v1/query?dataset=sps&offset=1.5",
	} {
		if resp, _ := get(u); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", u, resp.StatusCode)
		}
	}
}
