package archive

// Pagination over the query result's point stream.
//
// A query's unpaginated result is a deterministic sequence: series in
// canonical key order (Keys sorts them), points within each series in
// ascending time (the store's append order). Pagination windows that
// flattened stream — a page with offset O and limit L contains points
// [O, O+L) of it, regrouped under their series keys — so concatenating
// pages 0, L, 2L, ... reproduces the unpaginated response exactly, and a
// series whose points straddle a page boundary appears in both pages
// with disjoint point ranges.
//
// The page is located without materializing the window: a first fan-out
// counts in-window points per series (two binary searches each, no
// copying), the page boundaries are mapped onto per-series sub-ranges,
// and a second fan-out copies only the points the page contains. A huge
// window queried with limit=1000 therefore allocates ~1000 points, not
// the window.
//
// Pages are consistent with each other on a quiescent store. Writes
// between two page requests can grow series inside the window (the
// archive is append-only, so points never move or disappear); offsets
// past the growth point then shift, exactly as they would for any
// offset-paginated API over live data.

import (
	"fmt"
	"time"

	"repro/internal/tsdb"
)

// QueryPage is one page of a query's point stream.
type QueryPage struct {
	// Series holds the page's points grouped by series, canonical key
	// order, ascending time within each series — the same order as the
	// unpaginated response, restricted to the page window.
	Series []SeriesResult `json:"series"`
	// TotalPoints is the full (unpaginated) result's point count.
	TotalPoints int `json:"totalPoints"`
	// Offset and Limit echo the request (limit 0 = to the end).
	Offset int `json:"offset"`
	Limit  int `json:"limit"`
	// NextOffset is the offset of the page after this one, or -1 when
	// this page exhausts the stream.
	NextOffset int `json:"nextOffset"`
}

// pageSpan maps one slice of the page window onto a series: take n
// in-window points of keys[key] after skipping the first skip.
type pageSpan struct {
	key  int
	skip int
	n    int
}

// QueryPaged returns the page of the query's point stream selected by
// req.Offset and req.Limit (limit 0 = everything from the offset on).
// The page's cache entry is keyed on the page window as well as the
// filter, so distinct pages never collide.
func (s *Service) QueryPaged(req QueryRequest) (*QueryPage, error) {
	if req.Limit < 0 || req.Offset < 0 {
		return nil, fmt.Errorf("archive: negative limit or offset")
	}
	from, to, err := s.checkWindow(req)
	if err != nil {
		return nil, err
	}
	// The offset path ignores a cursor; zero it so a stray token can't
	// fragment the cache (the HTTP layer rejects the combination).
	req.Cursor = ""
	db, epoch := s.storeRef()
	plan, err := resolveRead(db, &req, from, to)
	if err != nil {
		return nil, err
	}
	ck := cacheKey("page", req)
	if v, ok := s.cache.get(ck, epoch, db.KeyGeneration(), db.ShardGenerations()); ok {
		return v.(*QueryPage), nil
	}
	// Concurrent identical cold page requests collapse onto one
	// computation (see singleflight.go).
	v, err := s.flight.do(ck, func() (any, error) { return s.pageCold(db, epoch, req, plan, ck, from, to) })
	if err != nil {
		return nil, err
	}
	return v.(*QueryPage), nil
}

// pageCold is the leader's computation for a QueryPaged cache miss.
func (s *Service) pageCold(db *tsdb.DB, epoch uint64, req QueryRequest, plan readPlan, ck string, from, to time.Time) (any, error) {
	keyGen, genVec := db.KeyGeneration(), db.ShardGenerations()
	keys, err := matchedKeys(db, req)
	if err != nil {
		return nil, err
	}
	// Pass 1: count in-window points per series (no copying).
	counts := make([]int, len(keys))
	errs := make([]error, len(keys))
	s.fanOut(len(keys), func(i int) {
		counts[i], errs[i] = plan.db.CountRange(plan.key(keys[i]), from, to)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	// Map the page window [lo, hi) of the flattened stream onto
	// per-series spans. Compare the limit against the remainder rather
	// than lo+limit against total: lo+limit can overflow for huge limits
	// and a wrapped-negative hi would return an empty page.
	lo, hi := req.Offset, total
	if req.Limit > 0 && req.Limit < total-lo {
		hi = lo + req.Limit
	}
	var spans []pageSpan
	cum := 0
	for i, c := range counts {
		if sLo, sHi := max(lo, cum), min(hi, cum+c); sLo < sHi {
			spans = append(spans, pageSpan{key: i, skip: sLo - cum, n: sHi - sLo})
		}
		cum += c
	}
	// Pass 2: copy only the page's points.
	slots := make([][]tsdb.Point, len(spans))
	spanErrs := make([]error, len(spans))
	s.fanOut(len(spans), func(j int) {
		sp := spans[j]
		slots[j], spanErrs[j] = plan.db.QueryRange(plan.key(keys[sp.key]), from, to, sp.skip, sp.n)
	})
	if err := firstErr(spanErrs); err != nil {
		return nil, err
	}
	page := &QueryPage{
		Series:      make([]SeriesResult, 0, len(spans)),
		TotalPoints: total,
		Offset:      req.Offset,
		Limit:       req.Limit,
		NextOffset:  -1,
	}
	points := 0
	for j, sp := range spans {
		if len(slots[j]) == 0 {
			continue
		}
		points += len(slots[j])
		page.Series = append(page.Series, SeriesResult{Key: keys[sp.key], Points: slots[j]})
	}
	if hi < total {
		page.NextOffset = hi
	}
	if points <= maxCachedPoints {
		dep, gens := depGenerations(db, keys, genVec)
		s.cache.put(ck, epoch, keyGen, dep, gens, page)
	}
	return page, nil
}
