package archive

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/tsdb"
)

// indexHTML is the static front end — the piece served from object storage
// in the paper's deployment. It fetches dynamic content from the query API,
// mirroring the AJAX design of Figure 2.
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head><meta charset="utf-8"><title>SpotLake — Spot Instance Data Archive</title></head>
<body>
<h1>SpotLake</h1>
<p>Historical archive of spot placement scores, interruption ratios, savings,
and spot prices. Query the API:</p>
<ul>
<li><code>GET /api/v1/meta</code> — archive summary</li>
<li><code>GET /api/v1/query?dataset=sps&amp;type=m5.xlarge&amp;region=us-east-1</code> — historical series
(paginate with <code>&amp;limit=N&amp;cursor=</code> and follow the <code>X-Next-Cursor</code>
header — stable under live collection and portable across replicas;
<code>&amp;offset=M</code> pagination is <em>deprecated</em> and scheduled for removal —
responses carry <code>Deprecation</code>/<code>Sunset</code> headers)</li>
<li><code>GET /api/v1/latest?dataset=if&amp;region=us-east-1</code> — current values</li>
<li><code>GET /api/v1/catalog/types</code>, <code>GET /api/v1/catalog/regions</code></li>
</ul>
<pre id="meta">loading…</pre>
<script>
fetch('/api/v1/meta').then(r => r.json())
  .then(m => { document.getElementById('meta').textContent = JSON.stringify(m, null, 2); })
  .catch(e => { document.getElementById('meta').textContent = String(e); });
</script>
</body>
</html>
`

// gzipPool recycles gzip writers across requests; compressing a large
// query window allocates a ~800KB state block that would otherwise churn
// the GC on every response.
var gzipPool = sync.Pool{New: func() any { return gzip.NewWriter(nil) }}

// gzipResponseWriter routes the body through a gzip writer that is
// attached lazily on the first Write: until a body byte exists, no
// Content-Encoding header is committed and no gzip frame is emitted, so
// a bodyless response (204, 304, a HEAD-style handler) stays genuinely
// empty instead of carrying a 20-byte compressed-nothing frame. The
// handler's WriteHeader is deferred for the same reason — the status is
// recorded and only sent downstream once the body/no-body question is
// settled.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz     *gzip.Writer
	status int
}

func (w *gzipResponseWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
}

func (w *gzipResponseWriter) Write(b []byte) (int, error) {
	if w.gz == nil {
		w.Header().Set("Content-Encoding", "gzip")
		// Any pre-set length describes the uncompressed body.
		w.Header().Del("Content-Length")
		if w.status == 0 {
			w.status = http.StatusOK
		}
		w.ResponseWriter.WriteHeader(w.status)
		gz := gzipPool.Get().(*gzip.Writer)
		gz.Reset(w.ResponseWriter)
		w.gz = gz
	}
	return w.gz.Write(b)
}

// Flush implements http.Flusher so streaming handlers can push partial
// responses through the compression layer. Before the first body byte
// it is a no-op — flushing nothing must not commit headers or emit an
// empty gzip frame, preserving the lazy-commit semantics for bodyless
// responses. Afterwards it drains the gzip stream (a sync flush, so the
// bytes emitted decode without waiting for the trailer) and then pushes
// the underlying writer.
func (w *gzipResponseWriter) Flush() {
	if w.gz == nil {
		return
	}
	// A flush error is sticky in the gzip writer: the next Write returns
	// it, which is where streaming handlers abort.
	_ = w.gz.Flush()
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// finish flushes the compressed stream after the handler returns. With
// no body written it forwards the bare status (if any); otherwise it
// closes the gzip stream and reports the close error — which is the
// only place a failed terminal flush surfaces, since the handler already
// returned success.
func (w *gzipResponseWriter) finish() error {
	if w.gz == nil {
		if w.status != 0 {
			w.ResponseWriter.WriteHeader(w.status)
		}
		return nil
	}
	err := w.gz.Close()
	// Reset on the next Get clears any error state, so the writer is
	// reusable even after a failed close.
	gzipPool.Put(w.gz)
	w.gz = nil
	return err
}

// acceptsGzip parses an Accept-Encoding header: gzip is acceptable when
// a "gzip" member appears without a zero q-weight, or — with no explicit
// "gzip" member at all — when a non-refused "*" appears. An explicit
// "gzip" member always wins over "*" (RFC 9110: the most specific match
// governs).
func acceptsGzip(header string) bool {
	starOK := false
	for _, part := range strings.Split(header, ",") {
		coding, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		c := strings.ToLower(strings.TrimSpace(coding))
		if c != "gzip" && c != "*" {
			continue
		}
		refused := false
		for _, p := range strings.Split(params, ";") {
			p = strings.ToLower(strings.ReplaceAll(p, " ", ""))
			if v, ok := strings.CutPrefix(p, "q="); ok {
				// RFC 9110 §12.4.2: a weight of zero refuses the coding.
				// Parse numerically so every spelling of zero (0, 0.0,
				// .0, 0.000) refuses, and treat an unparseable weight as
				// a refusal too — garbage never asked for the coding.
				// The negated comparison keeps NaN (which ParseFloat
				// accepts) in the refused branch.
				q, err := strconv.ParseFloat(v, 64)
				refused = err != nil || !(q > 0)
				break
			}
		}
		if c == "gzip" {
			return !refused
		}
		starOK = starOK || !refused
	}
	return starOK
}

// withGzip compresses responses for clients that accept it. Big query
// windows serialize to many megabytes of highly repetitive JSON; gzip
// typically cuts them by an order of magnitude. Compression is committed
// lazily on the first body byte (see gzipResponseWriter), and a failed
// terminal flush aborts the connection: ending the chunked stream
// normally would hand the client a silently truncated body that still
// parses as a complete successful response.
func withGzip(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Add("Vary", "Accept-Encoding")
		if !acceptsGzip(r.Header.Get("Accept-Encoding")) {
			h.ServeHTTP(w, r)
			return
		}
		gw := &gzipResponseWriter{ResponseWriter: w}
		// Recycle the pooled writer even when the handler panics past
		// its first body byte (finish never runs then): the connection
		// is being torn down, so no terminal flush is owed to it, but
		// dropping the ~KBs of flate state to GC on every aborted
		// request would defeat the pool. Get's Reset clears the state.
		defer func() {
			if gw.gz != nil {
				gzipPool.Put(gw.gz)
				gw.gz = nil
			}
		}()
		h.ServeHTTP(gw, r)
		if err := gw.finish(); err != nil {
			panic(http.ErrAbortHandler)
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "")
	if err := enc.Encode(v); err != nil {
		// The body is (at best) partially written under a success status;
		// ending the stream normally would hand the client a truncated
		// document that parses as complete. Kill the connection instead.
		panic(http.ErrAbortHandler)
	}
}

// parseQueryRequest extracts the common filter/window parameters.
func parseQueryRequest(r *http.Request) (QueryRequest, error) {
	q := r.URL.Query()
	req := QueryRequest{
		Dataset: q.Get("dataset"),
		Type:    q.Get("type"),
		Region:  q.Get("region"),
		AZ:      q.Get("az"),
	}
	if s := q.Get("from"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			// Name the offending parameter: a raw time.Parse error tells
			// the client what was malformed but not which of its (possibly
			// many) parameters carried it.
			return req, badParam("from", "archive: from must be an RFC 3339 timestamp (e.g. 2022-01-01T00:00:00Z), got %q", s)
		}
		req.From = t
	}
	if s := q.Get("to"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return req, badParam("to", "archive: to must be an RFC 3339 timestamp (e.g. 2022-01-01T00:00:00Z), got %q", s)
		}
		req.To = t
	}
	if s := q.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return req, badParam("limit", "archive: limit must be a non-negative integer, got %q", s)
		}
		req.Limit = n
	}
	if s := q.Get("offset"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return req, badParam("offset", "archive: offset must be a non-negative integer, got %q", s)
		}
		req.Offset = n
	}
	req.Cursor = q.Get("cursor")
	req.Resolution = q.Get("resolution")
	req.Agg = q.Get("agg")
	return req, nil
}

// queryErr maps a query-path failure to its response: a cold-block read
// failure is the store's fault and must be a 500 — returning 400 (or
// worse, a truncated 200) would blame the client for corrupt block
// files — while everything else (bad parameters, bad cursor tokens,
// unknown datasets) stays a 400.
func queryErr(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, tsdb.ErrColdRead) {
		status = http.StatusInternalServerError
	}
	writeErr(w, status, err)
}

// streamSeriesJSON writes a JSON array of series results one series at a
// time: each element is encoded and flushed to the (possibly gzip'd)
// response as it is produced, so a multi-megabyte window never
// materializes a second time as one contiguous JSON buffer and the
// client sees the first series without waiting for the last. The body
// shape is identical to json.Marshal of the slice.
//
// The first write error stops the stream and aborts the connection
// (http.ErrAbortHandler): the usual cause is a client that vanished,
// and for anything else a truncated array must not be deliverable as a
// complete response. Under gzip the abort also skips the terminal
// flush, so the compressed stream ends torn rather than well-formed.
func streamSeriesJSON(w http.ResponseWriter, status int, series []SeriesResult) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	write := func(s string) {
		if _, err := io.WriteString(w, s); err != nil {
			panic(http.ErrAbortHandler)
		}
	}
	if len(series) == 0 {
		write("[]\n")
		return
	}
	flusher, _ := w.(http.Flusher)
	write("[")
	enc := json.NewEncoder(w)
	for i := range series {
		if i > 0 {
			write(",")
		}
		// Encode appends a newline — interelement whitespace, still one
		// valid JSON array.
		if err := enc.Encode(series[i]); err != nil {
			panic(http.ErrAbortHandler)
		}
		// Push the finished element to the client (through the gzip
		// layer, which forwards Flush) so a slow fan-out streams page by
		// page instead of buffering the whole response.
		if flusher != nil {
			flusher.Flush()
		}
	}
	write("]\n")
}

// Offset pagination is deprecated in favor of cursors (stable under
// live collection, portable across replicas). offsetDeprecatedAt is the
// deprecation instant advertised per RFC 9745 (`@<unix-seconds>`, the
// date this API version shipped); offsetSunset the planned removal date
// per RFC 8594. Until the sunset, offset requests keep working and the
// 400 code ErrCodeOffsetDeprecated stays reserved, unproduced.
const (
	offsetDeprecatedAt = "@1786147200" // 2026-08-08T00:00:00Z
	offsetSunset       = "Sun, 08 Aug 2027 00:00:00 GMT"
)

// setOffsetDeprecation stamps the deprecation headers on every response
// served by the offset-paginated path.
func setOffsetDeprecation(w http.ResponseWriter) {
	w.Header().Set("Deprecation", offsetDeprecatedAt)
	w.Header().Set("Sunset", offsetSunset)
}

// setNextLink advertises the next page of a paginated walk: hdr carries
// the bare value and Link a ready-to-follow URL with param replaced.
// The URL is built on a deep copy of the request's parsed query —
// mutating the url.Values a handler is still holding (the old code
// shared the map) would silently rewrite every later read of it.
func setNextLink(w http.ResponseWriter, r *http.Request, hdr, param, value string) {
	w.Header().Set(hdr, value)
	next := make(url.Values, len(r.URL.Query())+1)
	for k, vs := range r.URL.Query() {
		next[k] = append([]string(nil), vs...)
	}
	next.Set(param, value)
	nu := *r.URL
	nu.RawQuery = next.Encode()
	w.Header().Set("Link", `<`+nu.RequestURI()+`>; rel="next"`)
}

// Handler returns the HTTP API of the archive service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /api/v1/query", func(w http.ResponseWriter, r *http.Request) {
		req, err := parseQueryRequest(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		// Echo the tier the request resolves to, so `auto` clients know
		// which resolution answered. Resolution errors surface through
		// the query call below, with the window validated identically.
		if res, rerr := s.EffectiveResolution(req); rerr == nil {
			w.Header().Set("X-Resolution", res)
		}
		// A cursor parameter — even an empty one, which starts a walk at
		// the head of the stream — selects keyset pagination: the page
		// position is a fixed (series, timestamp) token, so slow walkers
		// stay consistent under live collection where offsets would
		// drift. Offset and cursor name positions in incompatible ways,
		// so presenting both is rejected rather than guessed at.
		if q := r.URL.Query(); q.Has("cursor") {
			if q.Has("offset") {
				writeErr(w, http.StatusBadRequest,
					fmt.Errorf("archive: cursor and offset are mutually exclusive; walk with one or the other"))
				return
			}
			page, err := s.QueryCursor(req)
			if err != nil {
				queryErr(w, err)
				return
			}
			if page.NextCursor != "" {
				setNextLink(w, r, "X-Next-Cursor", "cursor", page.NextCursor)
			}
			streamSeriesJSON(w, http.StatusOK, page.Series)
			return
		}
		// A limit or offset selects the offset-paginated path; the body
		// stays a JSON array of series (the page's slice of the point
		// stream), with the page metadata in headers so unpaginated
		// clients keep working unchanged.
		if req.Limit > 0 || req.Offset > 0 {
			setOffsetDeprecation(w)
			page, err := s.QueryPaged(req)
			if err != nil {
				queryErr(w, err)
				return
			}
			w.Header().Set("X-Total-Points", strconv.Itoa(page.TotalPoints))
			if page.NextOffset >= 0 {
				setNextLink(w, r, "X-Next-Offset", "offset", strconv.Itoa(page.NextOffset))
			}
			streamSeriesJSON(w, http.StatusOK, page.Series)
			return
		}
		res, err := s.Query(req)
		if err != nil {
			queryErr(w, err)
			return
		}
		total := 0
		for i := range res {
			total += len(res[i].Points)
		}
		w.Header().Set("X-Total-Points", strconv.Itoa(total))
		streamSeriesJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /api/v1/latest", func(w http.ResponseWriter, r *http.Request) {
		req, err := parseQueryRequest(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		res, err := s.Latest(req)
		if err != nil {
			queryErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /api/v1/meta", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Meta())
	})

	mux.HandleFunc("GET /api/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Prometheus text exposition over the same registry the meta
		// sections read; like meta it is admission- and gate-exempt so an
		// overloaded or stale server stays scrapeable.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WritePrometheus(w); err != nil {
			// Mid-body write failure: the client vanished or the
			// connection died. A torn exposition must not end as a
			// well-formed response.
			panic(http.ErrAbortHandler)
		}
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: the process is up and serving its mux. Readiness
		// (is this node safe to route queries to?) is /readyz's question.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, "ok\n")
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) { s.handleReadyz(w) })

	mux.HandleFunc("GET /api/v1/catalog/types", func(w http.ResponseWriter, r *http.Request) {
		type typeInfo struct {
			Name  string  `json:"name"`
			Class string  `json:"class"`
			Size  string  `json:"size"`
			VCPU  int     `json:"vcpu"`
			Mem   float64 `json:"memoryGiB"`
		}
		var out []typeInfo
		for _, t := range s.cat.Types() {
			out = append(out, typeInfo{Name: t.Name, Class: string(t.Class), Size: string(t.Size), VCPU: t.VCPU, Mem: t.MemoryGiB})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /api/v1/catalog/regions", func(w http.ResponseWriter, r *http.Request) {
		type regionInfo struct {
			Code  string   `json:"code"`
			Short string   `json:"short"`
			AZs   []string `json:"azs"`
		}
		var out []regionInfo
		for _, reg := range s.cat.Regions() {
			out = append(out, regionInfo{Code: reg.Code, Short: reg.Short, AZs: reg.AZs})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /api/v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Datasets())
	})

	mux.HandleFunc("GET /api/v1/replication/manifest", s.handleReplManifest)

	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(indexHTML))
	})

	// Catch-all: unknown paths (and wrong methods on known ones) answer
	// in the error envelope instead of the mux's plain-text defaults, so
	// every non-2xx body on the surface parses the same way.
	known := map[string]bool{
		"/": true, "/api/v1/query": true, "/api/v1/latest": true,
		"/api/v1/meta": true, "/api/v1/metrics": true,
		"/healthz": true, "/readyz": true,
		"/api/v1/catalog/types":   true,
		"/api/v1/catalog/regions": true, "/api/v1/datasets": true,
		"/api/v1/replication/manifest": true,
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && known[r.URL.Path] {
			w.Header().Set("Allow", http.MethodGet)
			writeAPIError(w, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed, "",
				fmt.Errorf("archive: %s does not allow %s (only GET)", r.URL.Path, r.Method))
			return
		}
		writeAPIError(w, http.StatusNotFound, ErrCodeNotFound, "",
			fmt.Errorf("archive: no such endpoint %s", r.URL.Path))
	})

	// Replication artifact downloads bypass the gzip layer: they are
	// served with http.ServeContent, whose Range and Content-Length
	// semantics a transparent recompression layer would break — and the
	// payloads (compressed blocks, binary WAL records) barely compress
	// anyway.
	outer := http.NewServeMux()
	outer.HandleFunc("GET /api/v1/replication/file/{name...}", s.handleReplFile)
	outer.Handle("/", withGzip(mux))

	// Admission wraps everything so throttled and shed requests pay the
	// absolute minimum (two atomic checks and a tiny JSON error), and
	// the recorded handler latency covers compression like everything
	// else a client waits on; the follower staleness gate sits outside
	// even that — a known-stale replica answers without burning an
	// admission slot. With no controller set this is the bare gzip'd mux.
	return s.withFollowerGate(withAdmission(s.admission, outer))
}
