package archive

// Regression tests for the gzip middleware's commit semantics: the
// compressed path must attach lazily on the first body byte (a bodyless
// response carries no Content-Encoding and no 20-byte empty gzip frame)
// and a failed terminal flush must abort the connection instead of
// letting a truncated stream read as success.

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestGzipBodylessResponseUncommitted: a handler that sets a status but
// never writes must produce a genuinely empty response — no
// Content-Encoding header, no gzip frame bytes — for a gzip-accepting
// client.
func TestGzipBodylessResponseUncommitted(t *testing.T) {
	for name, handler := range map[string]http.HandlerFunc{
		"explicit 204": func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusNoContent)
		},
		"implicit 200": func(w http.ResponseWriter, r *http.Request) {},
	} {
		srv := httptest.NewServer(withGzip(http.Handler(handler)))
		req, _ := http.NewRequest("GET", srv.URL, nil)
		req.Header.Set("Accept-Encoding", "gzip")
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			srv.Close()
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		srv.Close()
		if ce := resp.Header.Get("Content-Encoding"); ce != "" {
			t.Errorf("%s: bodyless response committed Content-Encoding %q", name, ce)
		}
		if len(body) != 0 {
			t.Errorf("%s: bodyless response carried %d body bytes (the empty gzip frame?)", name, len(body))
		}
	}
	// The recorded status still reaches the client.
	srv := httptest.NewServer(withGzip(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})))
	defer srv.Close()
	req, _ := http.NewRequest("GET", srv.URL, nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("bodyless status = %d, want 204", resp.StatusCode)
	}
}

// TestGzipStatusAndBodyStillCompressed: the lazy path still compresses
// a normal body and forwards a non-200 status set before the first
// write.
func TestGzipStatusAndBodyStillCompressed(t *testing.T) {
	srv := httptest.NewServer(withGzip(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		_, _ = io.WriteString(w, "short and stout")
	})))
	defer srv.Close()
	req, _ := http.NewRequest("GET", srv.URL, nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Errorf("status = %d, want 418", resp.StatusCode)
	}
	if ce := resp.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Errorf("Content-Encoding = %q, want gzip", ce)
	}
}

// failingResponseWriter accepts headers but fails every body write,
// modeling a client that vanished mid-response: the gzip writer's
// terminal flush in Close is then the first place the failure surfaces.
type failingResponseWriter struct {
	h http.Header
}

func (f *failingResponseWriter) Header() http.Header       { return f.h }
func (f *failingResponseWriter) WriteHeader(int)           {}
func (f *failingResponseWriter) Write([]byte) (int, error) { return 0, errors.New("sink broken") }

// TestGzipCloseErrorAbortsConnection: when the terminal flush fails, the
// middleware must panic with http.ErrAbortHandler (net/http's sanctioned
// "drop the connection" signal) rather than return normally — a normal
// return would end the chunked stream cleanly and the client would
// parse a truncated body as a complete response.
func TestGzipCloseErrorAbortsConnection(t *testing.T) {
	h := withGzip(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "doomed body")
	}))
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("failed gzip close returned normally — truncated response would read as success")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, http.ErrAbortHandler) {
			t.Fatalf("panicked with %v, want http.ErrAbortHandler", r)
		}
	}()
	h.ServeHTTP(&failingResponseWriter{h: make(http.Header)}, req)
}
