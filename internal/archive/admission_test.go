package archive

// Tests for the serving layer's traffic hardening: singleflight
// coalescing of identical cold queries, the global in-flight cap with
// bounded queueing and 503 shedding, per-client token-bucket throttling
// with 429 + Retry-After, and a loadgen-shaped mixed-traffic run against
// a live collector (meaningful under -race, which CI applies).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

// TestSingleflightColdQueryCoalesces: N concurrent identical cold
// queries perform exactly one store computation; the rest coalesce onto
// the leader and share its result. This is the acceptance shape — 32
// requests, 1 computation, 31 coalesced.
func TestSingleflightColdQueryCoalesces(t *testing.T) {
	const clients = 32
	s, _ := buildArchive(t)
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore}
	// Query normalizes resolution/agg before building its cache key;
	// mirror that so the barrier hooks the right flight.
	normalized := req
	normalized.Resolution, normalized.Agg = "raw", "mean"
	ck := cacheKey("query", normalized)

	// The leader blocks until every follower has provably joined its
	// flight, so exactly clients-1 coalesce — no timing luck involved.
	s.flight.leaderBarrier = func(key string) {
		if key != ck {
			return
		}
		deadline := time.Now().Add(10 * time.Second)
		for s.flight.waiters(ck) < clients-1 {
			if time.Now().After(deadline) {
				t.Error("followers never joined the flight")
				return
			}
			runtime.Gosched()
		}
	}
	before := s.CacheStats()

	results := make([][]SeriesResult, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Query(req)
		}(i)
	}
	wg.Wait()
	s.flight.leaderBarrier = nil

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if len(results[i]) == 0 {
			t.Fatalf("client %d: empty result", i)
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("client %d saw a different result than the leader", i)
		}
	}
	st := s.CacheStats()
	coalesced := st.Coalesced - before.Coalesced
	misses := st.Misses - before.Misses
	if coalesced != clients-1 {
		t.Errorf("coalesced = %d, want %d", coalesced, clients-1)
	}
	if computations := misses - coalesced; computations != 1 {
		t.Errorf("store computations (misses - coalesced) = %d, want exactly 1", computations)
	}
	// The leader published through the cache: a repeat is a plain hit.
	if _, err := s.Query(req); err != nil {
		t.Fatal(err)
	}
	if after := s.CacheStats(); after.Hits <= st.Hits {
		t.Error("post-flight repeat did not hit the cache")
	}
}

// TestFlightGroupSharesErrorAndRecovers: followers share the leader's
// error, and a finished key computes fresh on the next call.
func TestFlightGroupSharesErrorAndRecovers(t *testing.T) {
	var g flightGroup
	boom := fmt.Errorf("boom")
	calls := 0
	if _, err := g.do("k", func() (any, error) { calls++; return nil, boom }); err != boom {
		t.Fatalf("leader error = %v, want boom", err)
	}
	if v, err := g.do("k", func() (any, error) { calls++; return 42, nil }); err != nil || v != 42 {
		t.Fatalf("fresh call after error = %v, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (no result caching in the flight group)", calls)
	}
}

// TestFlightGroupLeaderPanicReleasesFollowers: a panicking leader must
// not leave followers blocked forever; they get an error instead.
func TestFlightGroupLeaderPanicReleasesFollowers(t *testing.T) {
	var g flightGroup
	entered := make(chan struct{})
	finish := make(chan struct{})
	g.leaderBarrier = func(string) { close(entered); <-finish }

	followerErr := make(chan error, 1)
	go func() {
		<-entered
		g.leaderBarrier = nil
		close(finish)
		_, err := g.do("k", func() (any, error) { return nil, nil })
		followerErr <- err
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		_, _ = g.do("k", func() (any, error) { panic("leader died") })
	}()
	// Whether the goroutine coalesced or ran fresh, it must complete.
	select {
	case err := <-followerErr:
		_ = err // either a shared abort error or a fresh successful run
	case <-time.After(5 * time.Second):
		t.Fatal("follower still blocked after leader panic")
	}
	if g.waiters("k") != 0 {
		t.Error("flight entry leaked after panic")
	}
}

// TestAdmissionInFlightCapSheds: with every slot occupied and the queue
// exhausted, new arrivals are shed with 503 + Retry-After while the
// in-cap requests complete normally.
func TestAdmissionInFlightCapSheds(t *testing.T) {
	adm := NewAdmission(AdmissionConfig{MaxInFlight: 2, MaxQueue: 1, QueueWait: 50 * time.Millisecond})
	release := make(chan struct{})
	var once sync.Once
	releaseAll := func() { once.Do(func() { close(release) }) }
	started := make(chan struct{}, 8)
	srv := httptest.NewServer(withAdmission(adm, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})))
	// Unblock handlers before srv.Close (it waits for them) on every exit
	// path, including t.Fatal.
	defer srv.Close()
	defer releaseAll()

	// Two in-cap requests occupy the slots.
	inCap := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(srv.URL)
			if err != nil {
				inCap <- -1
				return
			}
			resp.Body.Close()
			inCap <- resp.StatusCode
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("in-cap requests never started")
		}
	}

	// A burst beyond cap+queue: every one must come back 503 with a
	// Retry-After hint (the queue's single spot times out in 50ms; the
	// rest shed immediately).
	var wg sync.WaitGroup
	codes := make(chan int, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL)
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.Header.Get("Retry-After") == "" {
				t.Errorf("shed response missing Retry-After")
			}
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusServiceUnavailable {
			t.Errorf("over-cap request got %d, want 503", code)
		}
	}

	// The in-cap clients were never harmed by the burst.
	releaseAll()
	for i := 0; i < 2; i++ {
		if code := <-inCap; code != http.StatusOK {
			t.Errorf("in-cap request got %d, want 200", code)
		}
	}

	st := adm.Stats()
	if st.Shed != 4 {
		t.Errorf("shed = %d, want 4", st.Shed)
	}
	if st.Admitted != 2 {
		t.Errorf("admitted = %d, want 2", st.Admitted)
	}
}

// TestAdmissionQueueAdmitsWhenSlotFrees: a queued request inside the
// wait bound is admitted, not shed, once a slot opens.
func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	adm := NewAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, QueueWait: 5 * time.Second})
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	srv := httptest.NewServer(withAdmission(adm, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})))
	defer srv.Close()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(srv.URL)
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-started

	second := make(chan int, 1)
	go func() {
		resp, err := http.Get(srv.URL)
		if err != nil {
			second <- -1
			return
		}
		resp.Body.Close()
		second <- resp.StatusCode
	}()
	// Give the second request time to join the queue, then free the slot.
	time.Sleep(50 * time.Millisecond)
	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("slot holder got %d", code)
	}
	if code := <-second; code != http.StatusOK {
		t.Fatalf("queued request got %d, want 200 after the slot freed", code)
	}
	if st := adm.Stats(); st.Admitted != 2 || st.Shed != 0 {
		t.Errorf("stats = %+v, want 2 admitted, 0 shed", st)
	}
}

// TestAdmissionRateLimitThrottles: a client past its bucket gets 429
// with a Retry-After computed from its own refill rate; other clients
// and later arrivals (after refill) are unaffected.
func TestAdmissionRateLimitThrottles(t *testing.T) {
	adm := NewAdmission(AdmissionConfig{RatePerSec: 1, Burst: 2})
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	adm.now = func() time.Time { return now }
	h := withAdmission(adm, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	do := func(remote, xff string) *httptest.ResponseRecorder {
		r := httptest.NewRequest("GET", "/api/v1/query?dataset=sps", nil)
		r.RemoteAddr = remote
		if xff != "" {
			r.Header.Set("X-Forwarded-For", xff)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		return rec
	}

	// Burst of 2 passes; the third is throttled.
	for i := 0; i < 2; i++ {
		if rec := do("10.1.1.1:5000", ""); rec.Code != http.StatusOK {
			t.Fatalf("burst request %d got %d", i, rec.Code)
		}
	}
	rec := do("10.1.1.1:5001", "") // same client, different ephemeral port
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third request got %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1 (one token at 1 req/s)", ra)
	}
	var body apiError
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error.Message == "" {
		t.Errorf("throttle body not a JSON error: %q", rec.Body.String())
	}

	// A different client (via X-Forwarded-For through a proxy) has its
	// own bucket.
	if rec := do("10.1.1.1:5002", "203.0.113.9"); rec.Code != http.StatusOK {
		t.Errorf("other client got %d, want 200", rec.Code)
	}
	// After a second of refill the throttled client is served again.
	now = now.Add(time.Second)
	if rec := do("10.1.1.1:5003", ""); rec.Code != http.StatusOK {
		t.Errorf("post-refill request got %d, want 200", rec.Code)
	}
	if st := adm.Stats(); st.Throttled != 1 {
		t.Errorf("throttled = %d, want 1", st.Throttled)
	}
}

// TestAdmissionMetaExemptAndSurfaced: /api/v1/meta bypasses admission —
// an operator must be able to observe a saturated server — and reports
// the controller's counters and latency percentiles.
func TestAdmissionMetaExemptAndSurfaced(t *testing.T) {
	s, _ := buildArchive(t)
	adm := NewAdmission(AdmissionConfig{MaxInFlight: 1, RatePerSec: 1000, Burst: 1000})
	s.SetAdmission(adm)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// One successful query so the latency ring has a sample.
	resp, err := http.Get(srv.URL + "/api/v1/query?dataset=sps&limit=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query got %d", resp.StatusCode)
	}

	// Saturate: occupy the only slot directly, then prove queries shed
	// while meta still answers.
	adm.slots <- struct{}{}
	resp, err = http.Get(srv.URL + "/api/v1/query?dataset=sps&limit=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated query got %d, want 503", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/api/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	var m Meta
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meta on a saturated server got %d, want 200 (exempt)", resp.StatusCode)
	}
	<-adm.slots

	if m.Admission == nil {
		t.Fatal("meta carries no admission section")
	}
	if m.Admission.Admitted != 1 || m.Admission.Shed != 1 {
		t.Errorf("admission stats = %+v, want 1 admitted, 1 shed", m.Admission)
	}
	if m.Admission.MaxInFlight != 1 {
		t.Errorf("maxInFlight = %d, want 1", m.Admission.MaxInFlight)
	}
	if m.Admission.P50Ms <= 0 || m.Admission.P99Ms < m.Admission.P50Ms {
		t.Errorf("latency percentiles p50=%v p99=%v, want 0 < p50 <= p99", m.Admission.P50Ms, m.Admission.P99Ms)
	}
}

// TestAdmissionMixedTrafficLiveCollector drives loadgen-shaped traffic
// — hot cache hits, cold scans, cursor walks, latest polls — through
// the admitted handler while a live collector keeps appending. Every
// response must be 200/429/503 (with Retry-After on the latter two),
// and the run must stay clean under -race (CI runs the test job with
// it).
func TestAdmissionMixedTrafficLiveCollector(t *testing.T) {
	cat := catalog.Compact(2)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 7, cloudsim.DefaultParams())
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	col, err := collector.New(cloud, db, collector.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	s := NewService(db, cat)
	s.SetAdmission(NewAdmission(AdmissionConfig{
		MaxInFlight: 4, MaxQueue: 8, QueueWait: 20 * time.Millisecond,
		RatePerSec: 500, Burst: 500,
	}))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var colWG sync.WaitGroup
	colWG.Add(1)
	go func() {
		defer colWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := col.Run(10 * time.Minute); err != nil {
				t.Errorf("collector: %v", err)
				return
			}
		}
	}()

	get := func(url string) (*http.Response, bool) {
		resp, err := http.Get(url)
		if err != nil {
			t.Errorf("GET %s: %v", url, err)
			return nil, false
		}
		_, copyErr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if copyErr != nil {
			t.Errorf("GET %s: body: %v", url, copyErr)
			return nil, false
		}
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if resp.Header.Get("Retry-After") == "" {
				t.Errorf("GET %s: %d without Retry-After", url, resp.StatusCode)
			}
		default:
			t.Errorf("GET %s: unexpected status %d", url, resp.StatusCode)
		}
		return resp, true
	}

	const workers = 9
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cursor := ""
			for i := 0; i < 25; i++ {
				switch w % 3 {
				case 0: // hot: identical bounded query every time
					get(srv.URL + "/api/v1/query?dataset=sps&limit=50")
				case 1: // cold: a distinct window every request
					url := fmt.Sprintf("%s/api/v1/query?dataset=sps&limit=50&from=2022-01-01T00:%02d:00Z", srv.URL, i%60)
					get(url)
				case 2: // cursor walk + a latest poll
					resp, ok := get(srv.URL + "/api/v1/query?dataset=sps&limit=40&cursor=" + cursor)
					cursor = ""
					if ok && resp.StatusCode == http.StatusOK {
						cursor = resp.Header.Get("X-Next-Cursor")
					}
					get(srv.URL + "/api/v1/latest?dataset=sps")
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	colWG.Wait()

	st := s.admission.Stats()
	if st.Admitted == 0 {
		t.Error("no requests admitted")
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight gauge = %d after drain, want 0 (leaked slot?)", st.InFlight)
	}
	if cs := s.CacheStats(); cs.Hits == 0 {
		t.Error("hot traffic produced no cache hits")
	}
}
