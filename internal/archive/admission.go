package archive

// Admission control for the serving layer: the piece the paper's
// deployment gets from its API gateway, done here as middleware in
// front of the query handlers.
//
// Two gates run in order, cheapest first:
//
//  1. Per-client token buckets (keyed off the first X-Forwarded-For hop,
//     falling back to RemoteAddr) throttle abusive clients with 429 +
//     Retry-After before they can occupy a slot. Buckets refill lazily
//     and the client table is LRU-bounded, so a scan across a million
//     source addresses cannot grow it without bound.
//  2. A global in-flight cap bounds concurrent requests actually
//     executing. When the server is saturated a request waits in a
//     bounded queue for a bounded time; past either bound it is shed
//     with 503 + Retry-After rather than piling one goroutine per
//     queued client onto a node that is already behind.
//
// /api/v1/meta is exempt so an overloaded server can still be observed;
// every other endpoint pays the (two-atomic-loads) admission cost.
// Admitted requests record their handler latency in a fixed-size ring,
// from which Stats derives rolling p50/p99 — the signal an operator
// (or a future latency-adaptive controller) watches under load.

import (
	"container/list"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionConfig tunes the controller. Zero values disable the
// corresponding gate, so AdmissionConfig{} admits everything (but still
// counts and measures).
type AdmissionConfig struct {
	// MaxInFlight caps requests executing concurrently (0 = unlimited).
	MaxInFlight int
	// MaxQueue caps how many requests may wait for a slot when the cap
	// is reached; arrivals beyond it are shed immediately (0 = no queue:
	// shed as soon as the cap is hit).
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot before
	// being shed.
	QueueWait time.Duration
	// RatePerSec is each client's sustained request rate (0 = no
	// per-client throttling); Burst is the bucket size — how many
	// requests a client may issue back-to-back after an idle period
	// (values below 1 are raised to 1, or to RatePerSec if larger).
	RatePerSec float64
	Burst      float64
	// MaxClients bounds the tracked-client table; the least recently
	// seen client is evicted first (its bucket restarts full if it
	// returns). Default 16384.
	MaxClients int
	// RetryAfter is the Retry-After hint attached to 503 sheds (429
	// throttles compute theirs from the client's own refill rate).
	// Default 1s.
	RetryAfter time.Duration
}

// Admission is the serving layer's traffic controller. One instance
// fronts one Service's handler (see Service.SetAdmission); its counters
// feed /api/v1/meta.
type Admission struct {
	cfg   AdmissionConfig
	slots chan struct{} // nil = unlimited

	queued    atomic.Int64
	inFlight  atomic.Int64
	admitted  atomic.Uint64
	throttled atomic.Uint64
	shed      atomic.Uint64

	lat latencyRing

	clients clientBuckets

	// now is a test seam for the token-bucket clock.
	now func() time.Time
}

// NewAdmission builds a controller from cfg, applying the documented
// defaults for unset bookkeeping fields.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 16384
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.RatePerSec > 0 && cfg.Burst < 1 {
		cfg.Burst = max(1, cfg.RatePerSec)
	}
	a := &Admission{cfg: cfg, now: time.Now}
	if cfg.MaxInFlight > 0 {
		a.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	a.lat.init(2048)
	a.clients.init(cfg.MaxClients)
	return a
}

// AdmissionStats is the controller's health snapshot, surfaced in
// /api/v1/meta. Admitted/Throttled/Shed partition every non-exempt
// request seen; P50/P99 are over the last ~2048 admitted requests'
// handler latencies (0 until the first completes).
type AdmissionStats struct {
	Admitted    uint64  `json:"admitted"`
	Throttled   uint64  `json:"throttled"`
	Shed        uint64  `json:"shed"`
	InFlight    int64   `json:"inFlight"`
	Queued      int64   `json:"queued"`
	MaxInFlight int     `json:"maxInFlight"`
	RatePerSec  float64 `json:"ratePerSec"`
	P50Ms       float64 `json:"p50Ms"`
	P99Ms       float64 `json:"p99Ms"`
}

// Stats snapshots the controller.
func (a *Admission) Stats() AdmissionStats {
	p50, p99 := a.lat.percentiles()
	return AdmissionStats{
		Admitted:    a.admitted.Load(),
		Throttled:   a.throttled.Load(),
		Shed:        a.shed.Load(),
		InFlight:    a.inFlight.Load(),
		Queued:      a.queued.Load(),
		MaxInFlight: a.cfg.MaxInFlight,
		RatePerSec:  a.cfg.RatePerSec,
		P50Ms:       float64(p50) / float64(time.Millisecond),
		P99Ms:       float64(p99) / float64(time.Millisecond),
	}
}

// clientKey identifies the client for rate limiting: the first
// X-Forwarded-For hop when a fronting proxy supplies one, else the
// connection's source address without its ephemeral port.
func clientKey(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		first, _, _ := strings.Cut(xff, ",")
		if ip := strings.TrimSpace(first); ip != "" {
			return ip
		}
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// withAdmission gates h behind the controller. A nil controller serves
// h directly.
func withAdmission(a *Admission, h http.Handler) http.Handler {
	if a == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Meta stays reachable during overload: it is how overload is
		// diagnosed.
		if r.URL.Path == "/api/v1/meta" {
			h.ServeHTTP(w, r)
			return
		}
		if a.cfg.RatePerSec > 0 {
			if wait, ok := a.clients.take(clientKey(r), a.cfg.RatePerSec, a.cfg.Burst, a.now()); !ok {
				a.throttled.Add(1)
				writeRetry(w, http.StatusTooManyRequests, wait,
					fmt.Errorf("archive: client rate limit exceeded (%.3g req/s sustained); retry after the Retry-After delay", a.cfg.RatePerSec))
				return
			}
		}
		release, ok := a.acquireSlot(r)
		if !ok {
			a.shed.Add(1)
			writeRetry(w, http.StatusServiceUnavailable, a.cfg.RetryAfter,
				fmt.Errorf("archive: server at capacity (%d in-flight requests); retry after the Retry-After delay", a.cfg.MaxInFlight))
			return
		}
		a.admitted.Add(1)
		a.inFlight.Add(1)
		start := time.Now()
		// The deferred release must survive handler panics (the gzip
		// layer aborts connections via http.ErrAbortHandler): a leaked
		// slot would permanently shrink the server's capacity.
		defer func() {
			a.lat.record(time.Since(start))
			a.inFlight.Add(-1)
			release()
		}()
		h.ServeHTTP(w, r)
	})
}

// acquireSlot takes an in-flight slot, waiting in the bounded queue when
// the cap is reached. It returns the release func and whether the
// request was admitted; a false return means shed (queue full, wait
// exhausted, or the client gave up).
func (a *Admission) acquireSlot(r *http.Request) (release func(), ok bool) {
	if a.slots == nil {
		return func() {}, true
	}
	select {
	case a.slots <- struct{}{}:
		return a.releaseSlot, true
	default:
	}
	// Saturated: join the bounded queue for a bounded time.
	if a.cfg.MaxQueue <= 0 || a.cfg.QueueWait <= 0 {
		return nil, false
	}
	if a.queued.Add(1) > int64(a.cfg.MaxQueue) {
		a.queued.Add(-1)
		return nil, false
	}
	defer a.queued.Add(-1)
	t := time.NewTimer(a.cfg.QueueWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.releaseSlot, true
	case <-t.C:
		return nil, false
	case <-r.Context().Done():
		return nil, false
	}
}

func (a *Admission) releaseSlot() { <-a.slots }

// writeRetry rejects a request with a Retry-After hint (whole seconds,
// rounded up, minimum 1 — RFC 9110 delay-seconds).
func writeRetry(w http.ResponseWriter, status int, after time.Duration, err error) {
	secs := int64((after + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeErr(w, status, err)
}

// clientBuckets is the LRU-bounded table of per-client token buckets.
type clientBuckets struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently seen
	m   map[string]*list.Element
}

type clientBucket struct {
	key    string
	tokens float64
	last   time.Time
}

func (c *clientBuckets) init(capacity int) {
	c.cap = capacity
	c.ll = list.New()
	c.m = make(map[string]*list.Element)
}

// take spends one token from key's bucket, creating it full on first
// sight. When the bucket is empty it reports how long until the next
// token accrues.
func (c *clientBuckets) take(key string, rate, burst float64, now time.Time) (wait time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.m[key]
	var b *clientBucket
	if found {
		b = el.Value.(*clientBucket)
		// Lazy refill; a negative elapsed (clock step in tests) adds
		// nothing rather than draining the bucket.
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = min(burst, b.tokens+dt*rate)
		}
		b.last = now
		c.ll.MoveToFront(el)
	} else {
		b = &clientBucket{key: key, tokens: burst, last: now}
		c.m[key] = c.ll.PushFront(b)
		for c.ll.Len() > c.cap {
			back := c.ll.Back()
			c.ll.Remove(back)
			delete(c.m, back.Value.(*clientBucket).key)
		}
	}
	if b.tokens < 1 {
		return time.Duration((1 - b.tokens) / rate * float64(time.Second)), false
	}
	b.tokens--
	return 0, true
}

// latencyRing keeps the last cap handler latencies for rolling
// percentiles. Both sides take the mutex: recording is a single store
// under it (negligible next to the request it measures), and snapshots
// only run for /api/v1/meta.
type latencyRing struct {
	mu  sync.Mutex
	buf []time.Duration
	n   uint64 // total recorded ever
}

func (r *latencyRing) init(capacity int) { r.buf = make([]time.Duration, capacity) }

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = d
	r.n++
	r.mu.Unlock()
}

// percentiles returns the rolling p50/p99 over the ring's samples
// (zeros before the first sample lands).
func (r *latencyRing) percentiles() (p50, p99 time.Duration) {
	r.mu.Lock()
	filled := int(min(r.n, uint64(len(r.buf))))
	samples := make([]time.Duration, filled)
	copy(samples, r.buf[:filled])
	r.mu.Unlock()
	if filled == 0 {
		return 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := func(p float64) time.Duration {
		i := int(p * float64(filled-1))
		return samples[i]
	}
	return idx(0.50), idx(0.99)
}
