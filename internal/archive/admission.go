package archive

// Admission control for the serving layer: the piece the paper's
// deployment gets from its API gateway, done here as middleware in
// front of the query handlers.
//
// Two gates run in order, cheapest first:
//
//  1. Per-client token buckets (keyed off the first X-Forwarded-For hop,
//     falling back to RemoteAddr) throttle abusive clients with 429 +
//     Retry-After before they can occupy a slot. Buckets refill lazily
//     and the client table is LRU-bounded, so a scan across a million
//     source addresses cannot grow it without bound.
//  2. A global in-flight cap bounds concurrent requests actually
//     executing. When the server is saturated a request waits in a
//     bounded queue for a bounded time; past either bound it is shed
//     with 503 + Retry-After rather than piling one goroutine per
//     queued client onto a node that is already behind.
//
// The observability endpoints (/api/v1/meta, /api/v1/metrics, /healthz,
// /readyz) are exempt so an overloaded server can still be observed;
// every other endpoint pays the (two-atomic-loads) admission cost.
// Admitted handler executions — and only those — record their latency
// into a fixed-bucket obs.Histogram, from which Stats derives
// bucket-exact p50/p99: the same numbers a scrape consumer computes
// from spotlake_http_request_duration_seconds, and the signal an
// operator (or a future latency-adaptive controller) watches under
// load. Throttled and shed requests never touch the histogram — their
// error writes are not handler executions, and folding them in would
// make the server look faster the harder it sheds.

import (
	"container/list"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// exemptPath reports whether the path bypasses admission control and the
// follower staleness gate: the endpoints through which an unhealthy
// server is diagnosed must stay reachable while it is unhealthy.
func exemptPath(path string) bool {
	switch path {
	case "/api/v1/meta", "/api/v1/metrics", "/healthz", "/readyz":
		return true
	}
	return false
}

// AdmissionConfig tunes the controller. Zero values disable the
// corresponding gate, so AdmissionConfig{} admits everything (but still
// counts and measures).
type AdmissionConfig struct {
	// MaxInFlight caps requests executing concurrently (0 = unlimited).
	MaxInFlight int
	// MaxQueue caps how many requests may wait for a slot when the cap
	// is reached; arrivals beyond it are shed immediately (0 = no queue:
	// shed as soon as the cap is hit).
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot before
	// being shed.
	QueueWait time.Duration
	// RatePerSec is each client's sustained request rate (0 = no
	// per-client throttling); Burst is the bucket size — how many
	// requests a client may issue back-to-back after an idle period
	// (values below 1 are raised to 1, or to RatePerSec if larger).
	RatePerSec float64
	Burst      float64
	// MaxClients bounds the tracked-client table; the least recently
	// seen client is evicted first (its bucket restarts full if it
	// returns). Default 16384.
	MaxClients int
	// RetryAfter is the Retry-After hint attached to 503 sheds (429
	// throttles compute theirs from the client's own refill rate).
	// Default 1s.
	RetryAfter time.Duration
}

// Admission is the serving layer's traffic controller. One instance
// fronts one Service's handler (see Service.SetAdmission); its counters
// feed /api/v1/meta.
type Admission struct {
	cfg   AdmissionConfig
	slots chan struct{} // nil = unlimited

	queued    atomic.Int64
	inFlight  atomic.Int64
	admitted  obs.Counter
	throttled obs.Counter
	shed      obs.Counter

	lat *obs.Histogram

	clients clientBuckets

	// now is a test seam for the token-bucket clock.
	now func() time.Time
}

// NewAdmission builds a controller from cfg, applying the documented
// defaults for unset bookkeeping fields.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 16384
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.RatePerSec > 0 && cfg.Burst < 1 {
		cfg.Burst = max(1, cfg.RatePerSec)
	}
	a := &Admission{cfg: cfg, now: time.Now}
	if cfg.MaxInFlight > 0 {
		a.slots = make(chan struct{}, cfg.MaxInFlight)
	}
	a.lat = obs.NewHistogram(obs.DefLatencyBuckets)
	a.clients.init(cfg.MaxClients)
	return a
}

// registerMetrics wires the controller's counters, gauges, and the
// handler-latency histogram onto reg. SetAdmission calls it; calling it
// again for a replacement controller re-points the same metric names at
// the new instance.
func (a *Admission) registerMetrics(reg *obs.Registry) {
	reg.RegisterCounter("spotlake_admission_admitted_total",
		"Requests admitted to a handler (exempt observability paths not counted).", &a.admitted)
	reg.RegisterCounter("spotlake_admission_throttled_total",
		"Requests rejected 429 by a per-client token bucket.", &a.throttled)
	reg.RegisterCounter("spotlake_admission_shed_total",
		"Requests shed 503 at the in-flight cap (queue full or wait exhausted).", &a.shed)
	reg.GaugeFunc("spotlake_admission_in_flight",
		"Admitted requests currently executing.", func() float64 { return float64(a.inFlight.Load()) })
	reg.GaugeFunc("spotlake_admission_queued",
		"Requests waiting for an in-flight slot.", func() float64 { return float64(a.queued.Load()) })
	reg.RegisterHistogram("spotlake_http_request_duration_seconds",
		"Handler latency of admitted requests (throttled/shed rejections excluded).", a.lat)
}

// AdmissionStats is the controller's health snapshot, surfaced in
// /api/v1/meta. Admitted/Throttled/Shed partition every non-exempt
// request seen; P50/P99 are bucket-derived quantiles over all admitted
// handler latencies (0 until the first completes) — identical by
// construction to what histogram_quantile() computes from the
// spotlake_http_request_duration_seconds exposition.
type AdmissionStats struct {
	Admitted    uint64  `json:"admitted"`
	Throttled   uint64  `json:"throttled"`
	Shed        uint64  `json:"shed"`
	InFlight    int64   `json:"inFlight"`
	Queued      int64   `json:"queued"`
	MaxInFlight int     `json:"maxInFlight"`
	RatePerSec  float64 `json:"ratePerSec"`
	P50Ms       float64 `json:"p50Ms"`
	P99Ms       float64 `json:"p99Ms"`
}

// Stats snapshots the controller.
func (a *Admission) Stats() AdmissionStats {
	snap := a.lat.Snapshot()
	return AdmissionStats{
		Admitted:    a.admitted.Value(),
		Throttled:   a.throttled.Value(),
		Shed:        a.shed.Value(),
		InFlight:    a.inFlight.Load(),
		Queued:      a.queued.Load(),
		MaxInFlight: a.cfg.MaxInFlight,
		RatePerSec:  a.cfg.RatePerSec,
		P50Ms:       snap.Quantile(0.50) * 1e3,
		P99Ms:       snap.Quantile(0.99) * 1e3,
	}
}

// clientKey identifies the client for rate limiting: the first
// X-Forwarded-For hop when a fronting proxy supplies one, else the
// connection's source address without its ephemeral port.
func clientKey(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		first, _, _ := strings.Cut(xff, ",")
		if ip := strings.TrimSpace(first); ip != "" {
			return ip
		}
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// withAdmission gates h behind the controller. A nil controller serves
// h directly.
func withAdmission(a *Admission, h http.Handler) http.Handler {
	if a == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The observability surface stays reachable during overload: it
		// is how overload is diagnosed. Exempt requests also stay out of
		// the latency histogram — it measures admitted work only.
		if exemptPath(r.URL.Path) {
			h.ServeHTTP(w, r)
			return
		}
		if a.cfg.RatePerSec > 0 {
			if wait, ok := a.clients.take(clientKey(r), a.cfg.RatePerSec, a.cfg.Burst, a.now()); !ok {
				a.throttled.Add(1)
				writeRetry(w, http.StatusTooManyRequests, wait,
					fmt.Errorf("archive: client rate limit exceeded (%.3g req/s sustained); retry after the Retry-After delay", a.cfg.RatePerSec))
				return
			}
		}
		release, ok := a.acquireSlot(r)
		if !ok {
			a.shed.Add(1)
			writeRetry(w, http.StatusServiceUnavailable, a.cfg.RetryAfter,
				fmt.Errorf("archive: server at capacity (%d in-flight requests); retry after the Retry-After delay", a.cfg.MaxInFlight))
			return
		}
		a.admitted.Add(1)
		a.inFlight.Add(1)
		start := time.Now()
		// The deferred release must survive handler panics (the gzip
		// layer aborts connections via http.ErrAbortHandler): a leaked
		// slot would permanently shrink the server's capacity. Latency is
		// observed here and nowhere else, so the histogram covers exactly
		// the admitted handler executions.
		defer func() {
			a.lat.Observe(time.Since(start))
			a.inFlight.Add(-1)
			release()
		}()
		h.ServeHTTP(w, r)
	})
}

// acquireSlot takes an in-flight slot, waiting in the bounded queue when
// the cap is reached. It returns the release func and whether the
// request was admitted; a false return means shed (queue full, wait
// exhausted, or the client gave up).
func (a *Admission) acquireSlot(r *http.Request) (release func(), ok bool) {
	if a.slots == nil {
		return func() {}, true
	}
	select {
	case a.slots <- struct{}{}:
		return a.releaseSlot, true
	default:
	}
	// Saturated: join the bounded queue for a bounded time.
	if a.cfg.MaxQueue <= 0 || a.cfg.QueueWait <= 0 {
		return nil, false
	}
	if a.queued.Add(1) > int64(a.cfg.MaxQueue) {
		a.queued.Add(-1)
		return nil, false
	}
	defer a.queued.Add(-1)
	t := time.NewTimer(a.cfg.QueueWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.releaseSlot, true
	case <-t.C:
		return nil, false
	case <-r.Context().Done():
		return nil, false
	}
}

func (a *Admission) releaseSlot() { <-a.slots }

// writeRetry rejects a request with a Retry-After hint (whole seconds,
// rounded up, minimum 1 — RFC 9110 delay-seconds).
func writeRetry(w http.ResponseWriter, status int, after time.Duration, err error) {
	secs := int64((after + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeErr(w, status, err)
}

// clientBuckets is the LRU-bounded table of per-client token buckets.
type clientBuckets struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently seen
	m   map[string]*list.Element
}

type clientBucket struct {
	key    string
	tokens float64
	last   time.Time
}

func (c *clientBuckets) init(capacity int) {
	c.cap = capacity
	c.ll = list.New()
	c.m = make(map[string]*list.Element)
}

// take spends one token from key's bucket, creating it full on first
// sight. When the bucket is empty it reports how long until the next
// token accrues.
func (c *clientBuckets) take(key string, rate, burst float64, now time.Time) (wait time.Duration, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.m[key]
	var b *clientBucket
	if found {
		b = el.Value.(*clientBucket)
		// Lazy refill; a negative elapsed (clock step in tests) adds
		// nothing rather than draining the bucket.
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = min(burst, b.tokens+dt*rate)
		}
		b.last = now
		c.ll.MoveToFront(el)
	} else {
		b = &clientBucket{key: key, tokens: burst, last: now}
		c.m[key] = c.ll.PushFront(b)
		for c.ll.Len() > c.cap {
			back := c.ll.Back()
			c.ll.Remove(back)
			delete(c.m, back.Value.(*clientBucket).key)
		}
	}
	if b.tokens < 1 {
		return time.Duration((1 - b.tokens) / rate * float64(time.Second)), false
	}
	b.tokens--
	return 0, true
}
