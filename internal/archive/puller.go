package archive

// The follower's half of checkpoint-shipping replication: a Puller
// periodically lists the primary's committed artifacts
// (/api/v1/replication/manifest), fetches the delta into the replica
// directory, commits the shipped MANIFEST with the same atomic rename a
// checkpoint uses, reopens the directory read-only, and swaps the fresh
// store into the service. The commit point is the parent MANIFEST
// rename and nothing else: a crash anywhere mid-pull leaves the old
// manifest referencing only old files — a stale replica, never a torn
// one. (The rollup manifest commits just before the parent's, the same
// window the primary's own checkpoint has between the two renames.)
//
// Delta logic: artifacts are immutable once listed (sealed WAL
// segments, block files, checkpoint snapshots), so a file already
// staged under the same name, size, and store epoch is not re-fetched.
// The two exceptions re-fetch unconditionally: artifacts the listing
// marks Mutable (the rollup store's active segments, which grow at
// parent checkpoints), and WAL segments whose staging epoch is unknown
// or different (across a re-shard, a same-named segment can carry
// different bytes; block and checkpoint names are globally unique
// forever, so they never need this).
//
// Every file request pins the listing's (epoch, checkpointSeq). If a
// checkpoint lands on the primary mid-pull, the primary answers 409
// epoch_mismatch before it can serve a file the new position may have
// reclaimed; the puller re-lists and starts over (bounded per cycle).

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tsdb"
)

// pullCycleBuckets are the replication-cycle wall-time bucket bounds in
// seconds. Cycles span "signature unchanged, nothing pulled" (sub-ms)
// through multi-artifact catch-up pulls, so the range runs wider than
// the handler-latency buckets.
var pullCycleBuckets = []float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// PullerConfig tunes a follower's replication puller.
type PullerConfig struct {
	// PrimaryURL is the primary's base URL (no trailing slash needed).
	PrimaryURL string
	// Dir is the replica directory the puller stages into and the
	// service serves from.
	Dir string
	// Interval is the poll period (default 2s).
	Interval time.Duration
	// Grace is how long a replaced store stays open after a swap so
	// in-flight requests that captured it can finish (default 5s).
	Grace time.Duration
	// Client is the HTTP client for primary requests (default: a client
	// with a 2-minute overall timeout).
	Client *http.Client
	// StoreOptions carries serving-side knobs (block cache budget, shard
	// count) for replica reopens. ReadOnly is forced on and the
	// maintenance daemon off regardless of what it says.
	StoreOptions tsdb.Options
	// Logf, when set, receives one line per applied delta and per failed
	// cycle.
	Logf func(format string, args ...any)
}

// Puller drives a follower: Start launches the poll loop, SyncOnce runs
// a single cycle synchronously (tests and the pre-serve warmup use it).
type Puller struct {
	svc *Service
	cfg PullerConfig

	stop     chan struct{}
	done     chan struct{}
	startMu  sync.Mutex
	started  bool
	cycleMu  sync.Mutex // serializes SyncOnce with the loop
	lastSig  uint64     // signature of the last applied (or verified) listing
	haveSig  bool
	staged   map[string]stagedArtifact
	obsolete map[string]struct{} // artifact files to unlink once old stores retire
	retiring []retiringStore

	// Per-cycle catch-up metrics, registered on the service registry by
	// NewPuller and surfaced in /api/v1/meta's replication section:
	// cycles run, deltas applied, failed cycles, 409 re-lists, artifact
	// files actually fetched, artifact bytes shipped over the wire, and
	// the cycle wall-time histogram.
	cycles       obs.Counter
	applied      obs.Counter
	failures     obs.Counter
	relists      obs.Counter
	filesFetched obs.Counter
	bytesShipped obs.Counter
	cycleTime    *obs.Histogram
}

type stagedArtifact struct {
	size  int64
	epoch uint64
}

type retiringStore struct {
	db       *tsdb.DB
	deadline time.Time
}

// errRelist signals a 409 from the primary: the pinned position went
// stale mid-pull and the cycle must re-list.
var errRelist = errors.New("archive: replication listing went stale; re-list")

// NewPuller builds a puller for svc, which must already be marked a
// follower (SetFollower) so staleness accounting has somewhere to land.
func NewPuller(svc *Service, cfg PullerConfig) (*Puller, error) {
	if !svc.IsFollower() {
		return nil, errors.New("archive: puller requires a follower service (call SetFollower first)")
	}
	if cfg.PrimaryURL == "" || cfg.Dir == "" {
		return nil, errors.New("archive: puller needs a primary URL and a replica directory")
	}
	cfg.PrimaryURL = strings.TrimRight(cfg.PrimaryURL, "/")
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Grace <= 0 {
		cfg.Grace = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	p := &Puller{
		svc:       svc,
		cfg:       cfg,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		staged:    make(map[string]stagedArtifact),
		obsolete:  make(map[string]struct{}),
		cycleTime: obs.NewHistogram(pullCycleBuckets),
	}
	p.registerMetrics(svc.Registry())
	svc.puller = p
	return p, nil
}

// registerMetrics wires the puller's counters and cycle histogram onto
// the service registry. Rebuilding a puller for the same service (tests)
// re-points the names at the new instance.
func (p *Puller) registerMetrics(reg *obs.Registry) {
	reg.RegisterCounter("spotlake_replication_cycles_total",
		"Replication sync cycles run.", &p.cycles)
	reg.RegisterCounter("spotlake_replication_applied_total",
		"Replication cycles that applied a delta and swapped the store.", &p.applied)
	reg.RegisterCounter("spotlake_replication_failures_total",
		"Replication cycles that failed.", &p.failures)
	reg.RegisterCounter("spotlake_replication_relists_total",
		"Mid-pull 409s: the pinned listing went stale and the cycle re-listed.", &p.relists)
	reg.RegisterCounter("spotlake_replication_files_fetched_total",
		"Artifact files fetched from the primary (already-staged files not counted).", &p.filesFetched)
	reg.RegisterCounter("spotlake_replication_bytes_shipped_total",
		"Artifact bytes shipped from the primary.", &p.bytesShipped)
	reg.RegisterHistogram("spotlake_replication_cycle_seconds",
		"Wall time of replication sync cycles.", p.cycleTime)
}

// Start launches the poll loop: one immediate sync, then one per
// interval until Stop.
func (p *Puller) Start() {
	p.startMu.Lock()
	defer p.startMu.Unlock()
	if p.started {
		return
	}
	p.started = true
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.cfg.Interval)
		defer t.Stop()
		for {
			if err := p.SyncOnce(); err != nil {
				p.cfg.Logf("replication sync: %v", err)
			}
			select {
			case <-p.stop:
				return
			case <-t.C:
			}
		}
	}()
}

// Stop halts the loop and closes every replaced store still in its
// grace period. The store currently serving stays open — the server
// owns closing it at shutdown.
func (p *Puller) Stop() {
	p.startMu.Lock()
	if p.started {
		select {
		case <-p.stop:
		default:
			close(p.stop)
		}
		p.startMu.Unlock()
		<-p.done
	} else {
		p.startMu.Unlock()
	}
	p.cycleMu.Lock()
	defer p.cycleMu.Unlock()
	for _, r := range p.retiring {
		_ = r.db.Close()
	}
	p.retiring = nil
}

// Stats reports cycle counters: total cycles run, deltas applied, and
// failed cycles.
func (p *Puller) Stats() (cycles, applied, failures uint64) {
	return p.cycles.Value(), p.applied.Value(), p.failures.Value()
}

// PullerStats is the follower's catch-up health, surfaced as the
// replication meta section's `puller` object: cycle counters, what the
// cycles moved, and bucket-derived cycle wall-time percentiles — all
// read from the same registry-registered state the
// spotlake_replication_* exposition serves.
type PullerStats struct {
	Cycles          uint64  `json:"cycles"`
	Applied         uint64  `json:"applied"`
	Failures        uint64  `json:"failures"`
	Relists         uint64  `json:"relists"`
	FilesFetched    uint64  `json:"filesFetched"`
	BytesShipped    uint64  `json:"bytesShipped"`
	P50CycleSeconds float64 `json:"p50CycleSeconds"`
	P99CycleSeconds float64 `json:"p99CycleSeconds"`
}

// StatsDetail snapshots the full per-cycle metric set.
func (p *Puller) StatsDetail() PullerStats {
	snap := p.cycleTime.Snapshot()
	return PullerStats{
		Cycles:          p.cycles.Value(),
		Applied:         p.applied.Value(),
		Failures:        p.failures.Value(),
		Relists:         p.relists.Value(),
		FilesFetched:    p.filesFetched.Value(),
		BytesShipped:    p.bytesShipped.Value(),
		P50CycleSeconds: snap.Quantile(0.50),
		P99CycleSeconds: snap.Quantile(0.99),
	}
}

// SyncOnce runs one replication cycle: list, fetch the delta, commit,
// reopen, swap. A listing identical to the last applied one just
// refreshes the staleness clock. Returns nil when the replica is
// current (already or newly).
func (p *Puller) SyncOnce() error {
	p.cycleMu.Lock()
	defer p.cycleMu.Unlock()
	p.cycles.Add(1)
	start := time.Now()
	defer func() { p.cycleTime.Observe(time.Since(start)) }()
	p.retireOld(false)
	var err error
	// A checkpoint racing the pull 409s file fetches; re-list a bounded
	// number of times before calling the cycle failed.
	for attempt := 0; attempt < 3; attempt++ {
		err = p.syncCycle()
		if !errors.Is(err, errRelist) {
			break
		}
		p.relists.Add(1)
	}
	if err != nil {
		p.failures.Add(1)
	}
	return err
}

func (p *Puller) syncCycle() error {
	listing, err := p.fetchListing()
	if err != nil {
		return err
	}
	sig := listingSignature(listing)
	if p.haveSig && sig == p.lastSig {
		// Nothing changed on the primary since the last apply: the
		// replica provably holds the primary's committed state as of now.
		p.svc.noteSync(listing.Epoch, listing.CheckpointSeq, time.Now())
		return nil
	}
	if err := os.MkdirAll(p.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("archive: replica dir: %w", err)
	}
	p.clearTempFiles(p.cfg.Dir)
	if listing.RollupManifest != nil {
		if err := os.MkdirAll(filepath.Join(p.cfg.Dir, "rollup"), 0o755); err != nil {
			return fmt.Errorf("archive: replica rollup dir: %w", err)
		}
		p.clearTempFiles(filepath.Join(p.cfg.Dir, "rollup"))
	}
	// Validate both manifests before moving a byte: a listing the
	// follower could never open is refused up front.
	if err := tsdb.ValidateReplicatedManifest(listing.Manifest); err != nil {
		return fmt.Errorf("archive: primary shipped an unusable manifest: %w", err)
	}
	if listing.RollupManifest != nil {
		if err := tsdb.ValidateReplicatedManifest(listing.RollupManifest); err != nil {
			return fmt.Errorf("archive: primary shipped an unusable rollup manifest: %w", err)
		}
	}
	staged := make(map[string]stagedArtifact, len(listing.Artifacts))
	usedRollup := false
	for _, a := range listing.Artifacts {
		if strings.HasPrefix(a.Name, "rollup/") {
			usedRollup = true
		}
		if p.haveStaged(a, listing.Epoch) {
			staged[a.Name] = stagedArtifact{size: a.Size, epoch: listing.Epoch}
			continue
		}
		n, err := p.fetchArtifact(a, listing.Epoch, listing.CheckpointSeq)
		if err != nil {
			return err
		}
		p.filesFetched.Add(1)
		p.bytesShipped.Add(uint64(n))
		staged[a.Name] = stagedArtifact{size: n, epoch: listing.Epoch}
	}
	// Make the staged renames durable before committing a manifest that
	// references them — the checkpoint's own write-all-then-rename order.
	if err := tsdb.SyncReplicaDir(p.cfg.Dir); err != nil {
		return err
	}
	if usedRollup {
		if err := tsdb.SyncReplicaDir(filepath.Join(p.cfg.Dir, "rollup")); err != nil {
			return err
		}
	}
	if listing.RollupManifest != nil {
		if err := tsdb.CommitReplicatedManifest(filepath.Join(p.cfg.Dir, "rollup"), listing.RollupManifest); err != nil {
			return err
		}
	}
	if err := tsdb.CommitReplicatedManifest(p.cfg.Dir, listing.Manifest); err != nil {
		return err
	}
	opts := p.cfg.StoreOptions
	opts.ReadOnly = true
	opts.MaintenanceInterval = -1
	opts.RetainRaw = nil
	db, err := tsdb.OpenWithOptions(p.cfg.Dir, opts)
	if err != nil {
		return fmt.Errorf("archive: reopening replica after apply: %w", err)
	}
	old := p.svc.SwapDB(db)
	p.svc.noteSync(listing.Epoch, listing.CheckpointSeq, time.Now())
	p.lastSig, p.haveSig = sig, true
	p.staged = staged
	p.applied.Add(1)
	if old != nil {
		p.retiring = append(p.retiring, retiringStore{db: old, deadline: time.Now().Add(p.cfg.Grace)})
	}
	// Files the new manifest no longer references (reclaimed segments,
	// superseded checkpoints, retained-away blocks) are garbage — but the
	// replaced store may still be reading them during its grace period,
	// so deletion waits until every retiring store has closed.
	p.recordObsolete(staged)
	p.cfg.Logf("replication: applied epoch %d checkpoint %d (%d artifacts)",
		listing.Epoch, listing.CheckpointSeq, len(listing.Artifacts))
	return nil
}

// haveStaged reports whether artifact a is already present from an
// earlier pull and provably byte-identical to what the primary lists.
func (p *Puller) haveStaged(a tsdb.ReplicationArtifact, epoch uint64) bool {
	if a.Mutable {
		return false
	}
	st, err := os.Stat(filepath.Join(p.cfg.Dir, filepath.FromSlash(a.Name)))
	if err != nil || st.Size() != a.Size {
		return false
	}
	base := strings.TrimPrefix(a.Name, "rollup/")
	if !strings.HasPrefix(base, "wal-") {
		// Block files and checkpoint snapshots carry globally monotonic
		// sequence numbers: a name is minted once, ever, so name+size
		// identifies the bytes.
		return true
	}
	// WAL segment names can recur across store epochs (a re-shard resets
	// chains); only trust a file this puller staged under the same epoch.
	rec, ok := p.staged[a.Name]
	return ok && rec.size == a.Size && rec.epoch == epoch
}

// fetchArtifact downloads one artifact into place (temp file + rename),
// returning its size on disk.
func (p *Puller) fetchArtifact(a tsdb.ReplicationArtifact, epoch, seq uint64) (int64, error) {
	url := fmt.Sprintf("%s/api/v1/replication/file/%s?epoch=%d&checkpointSeq=%d",
		p.cfg.PrimaryURL, a.Name, epoch, seq)
	resp, err := p.cfg.Client.Get(url)
	if err != nil {
		return 0, fmt.Errorf("archive: fetching %s: %w", a.Name, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict, http.StatusGone:
		// The listing's position is no longer current (or a file under it
		// vanished, which the protocol treats the same way): re-list.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, errRelist
	default:
		return 0, fmt.Errorf("archive: fetching %s: %s", a.Name, readAPIError(resp))
	}
	target := filepath.Join(p.cfg.Dir, filepath.FromSlash(a.Name))
	tmp := target + pullTempSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("archive: staging %s: %w", a.Name, err)
	}
	n, err := io.Copy(f, resp.Body)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil && !a.Mutable && n != a.Size {
		err = fmt.Errorf("short read: got %d bytes, listing said %d", n, a.Size)
	}
	if err == nil && a.Mutable && n < a.Size {
		// Mutable artifacts only grow between listings; shrinkage means
		// the primary's state moved in a way the pin should have caught.
		err = fmt.Errorf("mutable artifact shrank: got %d bytes, listing said %d", n, a.Size)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("archive: staging %s: %w", a.Name, err)
	}
	if err := os.Rename(tmp, target); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("archive: installing %s: %w", a.Name, err)
	}
	return n, nil
}

const pullTempSuffix = ".pulltmp"

// clearTempFiles removes staging leftovers of crashed pulls.
func (p *Puller) clearTempFiles(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), pullTempSuffix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// recordObsolete scans the replica for artifact-named files the current
// listing does not reference and queues them for deletion.
func (p *Puller) recordObsolete(live map[string]stagedArtifact) {
	scan := func(dir, prefix string) {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return
		}
		for _, e := range ents {
			name := prefix + e.Name()
			if !tsdb.IsReplicationArtifactName(name) {
				continue
			}
			if _, ok := live[name]; !ok {
				p.obsolete[name] = struct{}{}
			}
		}
	}
	scan(p.cfg.Dir, "")
	scan(filepath.Join(p.cfg.Dir, "rollup"), "rollup/")
}

// retireOld closes replaced stores past their grace period and — once
// none remain open — unlinks the queued obsolete files. force closes
// everything immediately (Stop).
func (p *Puller) retireOld(force bool) {
	now := time.Now()
	kept := p.retiring[:0]
	for _, r := range p.retiring {
		if force || !now.Before(r.deadline) {
			_ = r.db.Close()
		} else {
			kept = append(kept, r)
		}
	}
	p.retiring = kept
	if len(p.retiring) > 0 {
		return
	}
	for name := range p.obsolete {
		// A name the current listing re-adopted must survive; staged is
		// re-checked because obsolete entries can be queued cycles ago.
		if _, ok := p.staged[name]; ok {
			delete(p.obsolete, name)
			continue
		}
		if err := os.Remove(filepath.Join(p.cfg.Dir, filepath.FromSlash(name))); err == nil || errors.Is(err, os.ErrNotExist) {
			delete(p.obsolete, name)
		}
	}
}

// fetchListing GETs and decodes the primary's replication manifest.
func (p *Puller) fetchListing() (*replListing, error) {
	resp, err := p.cfg.Client.Get(p.cfg.PrimaryURL + "/api/v1/replication/manifest")
	if err != nil {
		return nil, fmt.Errorf("archive: listing primary: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("archive: listing primary: %s", readAPIError(resp))
	}
	var l replListing
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&l); err != nil {
		return nil, fmt.Errorf("archive: decoding replication listing: %w", err)
	}
	if len(l.Manifest) == 0 {
		return nil, errors.New("archive: replication listing carries no manifest")
	}
	return &l, nil
}

// listingSignature hashes everything that defines a listing's state:
// position, manifest bytes, and the artifact set with sizes. Two equal
// signatures mean the replica built from one serves the other.
func listingSignature(l *replListing) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|", l.Epoch, l.CheckpointSeq)
	h.Write(l.Manifest)
	h.Write([]byte{'|'})
	h.Write(l.RollupManifest)
	names := make([]string, 0, len(l.Artifacts))
	byName := make(map[string]tsdb.ReplicationArtifact, len(l.Artifacts))
	for _, a := range l.Artifacts {
		names = append(names, a.Name)
		byName[a.Name] = a
	}
	sort.Strings(names)
	for _, n := range names {
		a := byName[n]
		fmt.Fprintf(h, "|%s:%d:%t", a.Name, a.Size, a.Mutable)
	}
	return h.Sum64()
}

// readAPIError condenses a non-2xx primary response into one line,
// preferring the envelope's code and message when the body carries one.
func readAPIError(resp *http.Response) string {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e apiError
	if json.Unmarshal(body, &e) == nil && e.Error.Code != "" {
		return fmt.Sprintf("%s (%s: %s)", resp.Status, e.Error.Code, e.Error.Message)
	}
	return resp.Status
}
