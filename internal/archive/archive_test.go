package archive

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

// buildArchive runs a short collection so the archive has real contents.
func buildArchive(t *testing.T) (*Service, *catalog.Catalog) {
	t.Helper()
	cat := catalog.Compact(2)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 99, cloudsim.DefaultParams())
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	col, err := collector.New(cloud, db, collector.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Run(3 * time.Hour); err != nil {
		t.Fatal(err)
	}
	return NewService(db, cat), cat
}

func TestQueryFiltersAndWindow(t *testing.T) {
	s, cat := buildArchive(t)
	tn := cat.Types()[0].Name
	res, err := s.Query(QueryRequest{Dataset: tsdb.DatasetPlacementScore, Type: tn})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no series for collected type")
	}
	for _, sr := range res {
		if sr.Key.Type != tn || sr.Key.Dataset != tsdb.DatasetPlacementScore {
			t.Errorf("filter leak: %v", sr.Key)
		}
		if len(sr.Points) == 0 {
			t.Error("empty series included")
		}
	}
	// Window restriction.
	mid := simclock.Epoch.Add(90 * time.Minute)
	res2, err := s.Query(QueryRequest{Dataset: tsdb.DatasetPlacementScore, Type: tn, From: mid})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res2 {
		for _, p := range sr.Points {
			if p.At.Before(mid) {
				t.Errorf("point %v before window start", p.At)
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	s, _ := buildArchive(t)
	if _, err := s.Query(QueryRequest{Dataset: "bogus"}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := s.Query(QueryRequest{From: simclock.Epoch.Add(time.Hour), To: simclock.Epoch}); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestLatest(t *testing.T) {
	s, cat := buildArchive(t)
	entries, err := s.Latest(QueryRequest{Dataset: tsdb.DatasetInterruptFree, Region: "us-east-1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no latest IF entries for us-east-1")
	}
	for _, e := range entries {
		if e.Key.Region != "us-east-1" {
			t.Errorf("region filter leak: %v", e.Key)
		}
		if e.Value < 1 || e.Value > 3 {
			t.Errorf("IF value %v out of range", e.Value)
		}
	}
	_ = cat
}

func TestMeta(t *testing.T) {
	s, cat := buildArchive(t)
	m := s.Meta()
	if m.Schema.SeriesCount == 0 || m.Schema.PointCount == 0 {
		t.Error("empty meta after collection")
	}
	if m.Schema.Types != cat.NumTypes() || m.Schema.Regions != 17 || m.Schema.AZs != 63 {
		t.Errorf("meta inventory = %+v", m)
	}
	if m.Schema.Datasets[tsdb.DatasetPlacementScore] != len(cat.Pools()) {
		t.Errorf("sps series = %d, want %d", m.Schema.Datasets[tsdb.DatasetPlacementScore], len(cat.Pools()))
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s, cat := buildArchive(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := get("/api/v1/meta")
	if resp.StatusCode != 200 {
		t.Fatalf("meta status %d", resp.StatusCode)
	}
	var meta Meta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatalf("meta not JSON: %v", err)
	}
	if meta.Schema.SeriesCount == 0 {
		t.Error("meta reports empty archive")
	}

	tn := cat.Types()[0].Name
	resp, body = get("/api/v1/query?dataset=sps&type=" + tn + "&from=2022-01-01T00:00:00Z")
	if resp.StatusCode != 200 {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var results []SeriesResult
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatalf("query not JSON: %v", err)
	}
	if len(results) == 0 {
		t.Error("query returned no series")
	}

	resp, _ = get("/api/v1/query?dataset=nope")
	if resp.StatusCode != 400 {
		t.Errorf("bad dataset status = %d, want 400", resp.StatusCode)
	}
	resp, _ = get("/api/v1/query?from=notatime")
	if resp.StatusCode != 400 {
		t.Errorf("bad time status = %d, want 400", resp.StatusCode)
	}

	resp, body = get("/api/v1/latest?dataset=if")
	if resp.StatusCode != 200 {
		t.Fatalf("latest status %d", resp.StatusCode)
	}
	var latest []LatestEntry
	if err := json.Unmarshal(body, &latest); err != nil || len(latest) == 0 {
		t.Errorf("latest = %v entries, err %v", len(latest), err)
	}

	resp, body = get("/api/v1/catalog/types")
	if resp.StatusCode != 200 {
		t.Fatalf("types status %d", resp.StatusCode)
	}
	var types []map[string]any
	if err := json.Unmarshal(body, &types); err != nil || len(types) != cat.NumTypes() {
		t.Errorf("types = %d, err %v, want %d", len(types), err, cat.NumTypes())
	}

	resp, body = get("/api/v1/catalog/regions")
	if resp.StatusCode != 200 {
		t.Fatalf("regions status %d", resp.StatusCode)
	}
	var regions []map[string]any
	if err := json.Unmarshal(body, &regions); err != nil || len(regions) != 17 {
		t.Errorf("regions = %d, err %v", len(regions), err)
	}

	resp, body = get("/")
	if resp.StatusCode != 200 {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Error("empty index page")
	}

	resp, _ = get("/api/v1/nonexistent")
	if resp.StatusCode != 404 {
		t.Errorf("unknown path status = %d, want 404", resp.StatusCode)
	}
}
