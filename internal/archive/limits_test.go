package archive

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/tsdb"
)

// TestMaxSeriesPerQuery: overly broad filters are rejected instead of
// producing unbounded responses.
func TestMaxSeriesPerQuery(t *testing.T) {
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < MaxSeriesPerQuery+10; i++ {
		k := tsdb.SeriesKey{
			Dataset: tsdb.DatasetPlacementScore,
			Type:    "t" + strconv.Itoa(i) + ".xlarge",
			Region:  "us-east-1",
			AZ:      "us-east-1a",
		}
		if err := db.Append(k, at, 3); err != nil {
			t.Fatal(err)
		}
	}
	svc := NewService(db, catalog.Compact(1))
	if _, err := svc.Query(QueryRequest{Dataset: tsdb.DatasetPlacementScore}); err == nil {
		t.Error("unbounded query accepted")
	}
	if _, err := svc.Latest(QueryRequest{Dataset: tsdb.DatasetPlacementScore}); err == nil {
		t.Error("unbounded latest accepted")
	}
	// A narrowed query passes.
	if _, err := svc.Query(QueryRequest{Dataset: tsdb.DatasetPlacementScore, Type: "t1.xlarge"}); err != nil {
		t.Errorf("narrow query rejected: %v", err)
	}
}

func TestDatasetsRegistry(t *testing.T) {
	db, _ := tsdb.Open("")
	svc := NewService(db, catalog.Compact(1))
	if got := len(svc.Datasets()); got != 4 {
		t.Errorf("default datasets = %d, want 4", got)
	}
	svc.AllowDatasets("az-price", "az-price") // idempotent
	if got := len(svc.Datasets()); got != 5 {
		t.Errorf("after registration = %d, want 5", got)
	}
	// Sorted.
	ds := svc.Datasets()
	for i := 1; i < len(ds); i++ {
		if ds[i-1] >= ds[i] {
			t.Error("datasets not sorted")
		}
	}
}
