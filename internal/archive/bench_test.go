package archive

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/tsdb"
)

// benchDB builds a store with many series so query fan-out has real work.
func benchDB(b *testing.B, shards int) *tsdb.DB {
	b.Helper()
	db, err := tsdb.OpenSharded("", shards)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for s := 0; s < 400; s++ {
		k := tsdb.SeriesKey{
			Dataset: tsdb.DatasetPlacementScore,
			Type:    fmt.Sprintf("t%d.xlarge", s%50),
			Region:  fmt.Sprintf("r%d", s%8),
			AZ:      fmt.Sprintf("r%da", s%8),
		}
		if s >= 200 {
			k.Dataset = tsdb.DatasetPrice
		}
		for i := 0; i < 500; i++ {
			if err := db.Append(k, base.Add(time.Duration(i)*time.Minute), float64(i%5)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return db
}

// BenchmarkQueryFanOut measures a broad archive query (every sps series)
// across worker-pool sizes and shard counts. Identical repeated queries
// are excluded from caching here by alternating the window each iteration.
func BenchmarkQueryFanOut(b *testing.B) {
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, cfg := range []struct{ shards, workers int }{
		{1, 1},
		{tsdb.DefaultShardCount(), 1},
		{tsdb.DefaultShardCount(), 4},
		{tsdb.DefaultShardCount(), 16},
	} {
		name := fmt.Sprintf("shards=%d/workers=%d", cfg.shards, cfg.workers)
		b.Run(name, func(b *testing.B) {
			svc := NewService(benchDB(b, cfg.shards), catalog.Compact(1))
			svc.SetWorkers(cfg.workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A unique window per iteration so the result cache never hits.
				from := base.Add(time.Duration(i) * time.Millisecond)
				res, err := svc.Query(QueryRequest{Dataset: tsdb.DatasetPlacementScore, From: from})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

// BenchmarkQueryCached measures the same repeated query answered by the
// generation-guarded LRU cache (paper: the archive is read-heavy and many
// users ask for the same popular series).
func BenchmarkQueryCached(b *testing.B) {
	svc := NewService(benchDB(b, tsdb.DefaultShardCount()), catalog.Compact(1))
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore}
	if _, err := svc.Query(req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Query(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("no results")
		}
	}
	b.StopTimer()
	if st := svc.CacheStats(); st.Hits == 0 {
		b.Fatal("cache never hit")
	}
}

// BenchmarkLatestFanOut measures the current-values endpoint across the
// whole archive, the dashboard's hot path.
func BenchmarkLatestFanOut(b *testing.B) {
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	db := benchDB(b, tsdb.DefaultShardCount())
	svc := NewService(db, catalog.Compact(1))
	k := tsdb.SeriesKey{Dataset: tsdb.DatasetPrice, Type: "tick", Region: "r0", AZ: "r0a"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One write per iteration keeps the generation moving, so this
		// measures the uncached fan-out path.
		if err := db.Append(k, base.Add(time.Duration(500+i)*time.Minute), float64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Latest(QueryRequest{}); err != nil {
			b.Fatal(err)
		}
	}
}
