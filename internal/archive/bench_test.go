package archive

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/tsdb"
)

// benchDB builds a store with many series so query fan-out has real work.
func benchDB(b *testing.B, shards int) *tsdb.DB {
	b.Helper()
	db, err := tsdb.OpenSharded("", shards)
	if err != nil {
		b.Fatal(err)
	}
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for s := 0; s < 400; s++ {
		k := tsdb.SeriesKey{
			Dataset: tsdb.DatasetPlacementScore,
			Type:    fmt.Sprintf("t%d.xlarge", s%50),
			Region:  fmt.Sprintf("r%d", s%8),
			AZ:      fmt.Sprintf("r%da", s%8),
		}
		if s >= 200 {
			k.Dataset = tsdb.DatasetPrice
		}
		for i := 0; i < 500; i++ {
			if err := db.Append(k, base.Add(time.Duration(i)*time.Minute), float64(i%5)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return db
}

// BenchmarkQueryFanOut measures a broad archive query (every sps series)
// across worker-pool sizes and shard counts. Identical repeated queries
// are excluded from caching here by alternating the window each iteration.
func BenchmarkQueryFanOut(b *testing.B) {
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, cfg := range []struct{ shards, workers int }{
		{1, 1},
		{tsdb.DefaultShardCount(), 1},
		{tsdb.DefaultShardCount(), 4},
		{tsdb.DefaultShardCount(), 16},
	} {
		name := fmt.Sprintf("shards=%d/workers=%d", cfg.shards, cfg.workers)
		b.Run(name, func(b *testing.B) {
			svc := NewService(benchDB(b, cfg.shards), catalog.Compact(1))
			svc.SetWorkers(cfg.workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A unique window per iteration so the result cache never hits.
				from := base.Add(time.Duration(i) * time.Millisecond)
				res, err := svc.Query(QueryRequest{Dataset: tsdb.DatasetPlacementScore, From: from})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) == 0 {
					b.Fatal("no results")
				}
			}
		})
	}
}

// BenchmarkQueryCached measures the same repeated query answered by the
// generation-guarded LRU cache (paper: the archive is read-heavy and many
// users ask for the same popular series).
func BenchmarkQueryCached(b *testing.B) {
	svc := NewService(benchDB(b, tsdb.DefaultShardCount()), catalog.Compact(1))
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore}
	if _, err := svc.Query(req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Query(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 0 {
			b.Fatal("no results")
		}
	}
	b.StopTimer()
	if st := svc.CacheStats(); st.Hits == 0 {
		b.Fatal("cache never hit")
	}
}

// BenchmarkQueryCursor measures locating a deep page — the walk is 95%
// done — via a keyset cursor versus the equivalent-depth offset. The
// offset page must re-count the entire walked prefix (two binary
// searches per matched series plus the span scan) on every request; the
// cursor binary-searches the sorted key list once and touches only the
// series still ahead of it. Tokens/offsets vary per iteration so the
// result cache never hits and the located page itself is identical work.
func BenchmarkQueryCursor(b *testing.B) {
	db := benchDB(b, tsdb.DefaultShardCount())
	svc := NewService(db, catalog.Compact(1))
	req := QueryRequest{Dataset: tsdb.DatasetPlacementScore, Limit: 100}
	keys := db.Keys(tsdb.KeyFilter{Dataset: tsdb.DatasetPlacementScore})
	if len(keys) != 200 {
		b.Fatalf("bench store has %d sps series, want 200", len(keys))
	}
	// 200 series x 500 points; position the walk inside series 190, i.e.
	// 95% through the flattened stream.
	const depth = 190*500 + 250
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	curKey := keys[190].String()
	curAt := base.Add(250 * time.Minute)
	scope := cursorScope(req)

	b.Run("cursor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			creq := req
			// A nanosecond skew per iteration mints a distinct token at
			// the same logical position, defeating the result cache
			// without moving the page.
			creq.Cursor = encodeCursor(scope, curKey, curAt.Add(time.Duration(i%1000)), 0)
			page, err := svc.QueryCursor(creq)
			if err != nil {
				b.Fatal(err)
			}
			if len(page.Series) == 0 {
				b.Fatal("empty page")
			}
		}
	})
	b.Run("offset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			oreq := req
			// The same per-iteration skew, as an offset.
			oreq.Offset = depth + i%1000
			page, err := svc.QueryPaged(oreq)
			if err != nil {
				b.Fatal(err)
			}
			if len(page.Series) == 0 {
				b.Fatal("empty page")
			}
		}
	})
}

// BenchmarkLatestFanOut measures the current-values endpoint across the
// whole archive, the dashboard's hot path.
func BenchmarkLatestFanOut(b *testing.B) {
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	db := benchDB(b, tsdb.DefaultShardCount())
	svc := NewService(db, catalog.Compact(1))
	k := tsdb.SeriesKey{Dataset: tsdb.DatasetPrice, Type: "tick", Region: "r0", AZ: "r0a"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One write per iteration keeps the generation moving, so this
		// measures the uncached fan-out path.
		if err := db.Append(k, base.Add(time.Duration(500+i)*time.Minute), float64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Latest(QueryRequest{}); err != nil {
			b.Fatal(err)
		}
	}
}
