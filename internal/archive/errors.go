package archive

// The unified error envelope of the /api/v1 surface.
//
// Every non-2xx response body is one shape:
//
//	{"error": {"code": "...", "message": "...", "param": "..."}}
//
// `code` is a stable machine-readable identifier from the set below —
// clients branch on it, never on message text. `message` is the
// human-readable explanation (the same texts the API has always
// produced; cursor-expiry and throttling messages are preserved
// verbatim). `param` names the request parameter at fault when one can
// be identified, and is omitted otherwise.

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/tsdb"
)

// Stable error codes. Codes are append-only: a released code never
// changes meaning or disappears.
const (
	// ErrCodeBadRequest: the request is invalid in a way no single
	// parameter explains (e.g. cursor and offset presented together).
	ErrCodeBadRequest = "bad_request"
	// ErrCodeBadParam: one parameter is invalid; `param` names it.
	ErrCodeBadParam = "bad_param"
	// ErrCodeBadCursor: the cursor token is malformed, was minted by a
	// different query, or its position is no longer servable.
	ErrCodeBadCursor = "bad_cursor"
	// ErrCodeOffsetDeprecated is reserved for the sunset of offset
	// pagination: today offset requests succeed (with Deprecation and
	// Sunset headers); after the sunset they will fail with this code.
	// Not yet produced.
	ErrCodeOffsetDeprecated = "offset_deprecated"
	// ErrCodeNotFound: no such endpoint or resource.
	ErrCodeNotFound = "not_found"
	// ErrCodeMethodNotAllowed: the endpoint exists but not for this
	// HTTP method (the Allow header lists the supported ones).
	ErrCodeMethodNotAllowed = "method_not_allowed"
	// ErrCodeNotPrimary: a replication-source endpoint was called on a
	// follower; re-point the puller at the primary.
	ErrCodeNotPrimary = "not_primary"
	// ErrCodeEpochMismatch: the (epoch, checkpointSeq) a replication
	// file request was pinned to is no longer current — a checkpoint or
	// re-shard landed; re-list and retry.
	ErrCodeEpochMismatch = "epoch_mismatch"
	// ErrCodeGone: the requested replication artifact was reclaimed.
	ErrCodeGone = "gone"
	// ErrCodeRateLimited: per-client rate limit exceeded (429); honor
	// Retry-After.
	ErrCodeRateLimited = "rate_limited"
	// ErrCodeOverCapacity: the global in-flight cap shed the request
	// (503); honor Retry-After.
	ErrCodeOverCapacity = "over_capacity"
	// ErrCodeStaleReplica: this follower has not synced with its
	// primary within -max-staleness; retry against the primary or
	// another replica.
	ErrCodeStaleReplica = "stale_replica"
	// ErrCodeColdReadFailed: the store could not read sealed history
	// (corrupt or missing block file) — a server-side 500, never a
	// truncated 200.
	ErrCodeColdReadFailed = "cold_read_failed"
	// ErrCodeInternal: any other server-side failure.
	ErrCodeInternal = "internal"
)

// apiError is the envelope; apiErrorBody its payload.
type apiError struct {
	Error apiErrorBody `json:"error"`
}

type apiErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Param   string `json:"param,omitempty"`
}

// paramError tags an error with the request parameter it faults, so the
// envelope can carry code=bad_param with `param` set while the error
// text stays exactly what library callers see.
type paramError struct {
	param string
	err   error
}

func (e *paramError) Error() string { return e.err.Error() }
func (e *paramError) Unwrap() error { return e.err }

// badParam builds a parameter-attributed error.
func badParam(param, format string, args ...any) error {
	return &paramError{param: param, err: fmt.Errorf(format, args...)}
}

// writeAPIError writes the envelope with an explicit code.
func writeAPIError(w http.ResponseWriter, status int, code, param string, err error) {
	writeJSON(w, status, apiError{Error: apiErrorBody{Code: code, Message: err.Error(), Param: param}})
}

// classifyErr maps an error (and the status already chosen for it) onto
// the stable code set. Error identity wins over status: a bad cursor is
// bad_cursor whatever status a caller picked.
func classifyErr(status int, err error) (code, param string) {
	var pe *paramError
	switch {
	case errors.As(err, &pe):
		return ErrCodeBadParam, pe.param
	case errors.Is(err, ErrBadCursor):
		return ErrCodeBadCursor, "cursor"
	case errors.Is(err, tsdb.ErrColdRead):
		return ErrCodeColdReadFailed, ""
	}
	switch status {
	case http.StatusNotFound:
		return ErrCodeNotFound, ""
	case http.StatusMethodNotAllowed:
		return ErrCodeMethodNotAllowed, ""
	case http.StatusForbidden:
		return ErrCodeNotPrimary, ""
	case http.StatusConflict:
		return ErrCodeEpochMismatch, ""
	case http.StatusGone:
		return ErrCodeGone, ""
	case http.StatusTooManyRequests:
		return ErrCodeRateLimited, ""
	case http.StatusServiceUnavailable:
		return ErrCodeOverCapacity, ""
	case http.StatusInternalServerError:
		return ErrCodeInternal, ""
	default:
		return ErrCodeBadRequest, ""
	}
}

// writeErr writes err in the envelope, deriving the code from the error
// chain and the status. Call sites that know a more specific code use
// writeAPIError directly.
func writeErr(w http.ResponseWriter, status int, err error) {
	code, param := classifyErr(status, err)
	writeAPIError(w, status, code, param, err)
}
