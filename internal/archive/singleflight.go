package archive

// Singleflight coalescing for cold queries.
//
// Identical requests that miss the result cache at the same moment would
// each fan out over the store and compute the same answer — at "spot
// availability probing" scale (many clients polling the same endpoint in
// tight loops) a single slow broad query multiplies into one store scan
// per client. The flight group collapses them: the first caller for a
// key (the same canonical cacheKey the result cache uses) becomes the
// leader and computes; every caller that arrives while the computation
// is in flight blocks until the leader finishes and shares its result,
// its error, and — because the leader's compute closure captures the
// generation vector and publishes through the cache — its generation
// capture. Coalesced callers are counted in CacheStats.Coalesced, so
// store computations = Misses - Coalesced.

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// flightCall is one in-flight leader computation plus everyone waiting
// on it.
type flightCall struct {
	done    chan struct{}
	waiters int
	val     any
	err     error
}

// flightGroup deduplicates concurrent computations by key. Unlike a
// cache it holds no results: an entry exists only while its leader is
// computing, so a key that completes and is requested again computes
// again (and normally hits the result cache instead).
type flightGroup struct {
	mu        sync.Mutex
	inflight  map[string]*flightCall
	coalesced obs.Counter

	// leaderBarrier, when set (tests only), runs in the leader's
	// goroutine before compute — a seam for holding a computation open
	// until followers have provably coalesced onto it.
	leaderBarrier func(key string)
}

// do runs compute under singleflight on key: the first caller computes,
// concurrent callers for the same key wait and share the outcome.
func (g *flightGroup) do(key string, compute func() (any, error)) (any, error) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = make(map[string]*flightCall)
	}
	if c, ok := g.inflight[key]; ok {
		c.waiters++
		g.mu.Unlock()
		g.coalesced.Add(1)
		<-c.done
		return c.val, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.inflight[key] = c
	g.mu.Unlock()

	// The entry must be cleared and followers released even when compute
	// panics (the panic propagates to this caller's recover/abort
	// machinery; followers get an error rather than blocking forever).
	finished := false
	defer func() {
		if !finished {
			c.err = fmt.Errorf("archive: in-flight query leader aborted")
		}
		g.mu.Lock()
		delete(g.inflight, key)
		g.mu.Unlock()
		close(c.done)
	}()
	if g.leaderBarrier != nil {
		g.leaderBarrier(key)
	}
	c.val, c.err = compute()
	finished = true
	return c.val, c.err
}

// waiters reports how many callers are currently coalesced onto key's
// in-flight computation (0 when no computation is in flight).
func (g *flightGroup) waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.inflight[key]; ok {
		return c.waiters
	}
	return 0
}
