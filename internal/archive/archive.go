// Package archive implements SpotLake's serving layer (paper Figure 2): the
// query service over the time-series archive plus the web API through which
// users fetch historical spot datasets.
//
// The paper's deployment is serverless — static files on object storage, an
// API gateway, and a query function reading Timestream. Here the same
// data-plane shape is an http.Handler: stateless handler functions over the
// tsdb store, plus an embedded static front-end page. Handlers keep no
// mutable state, preserving the design's scaling property.
package archive

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/tsdb"
)

// MaxSeriesPerQuery bounds how many series one query may return, like the
// paper service's response limits.
const MaxSeriesPerQuery = 2000

// queryCacheSize bounds the LRU result cache. Entries self-invalidate via
// the store's generation counter, so the size only trades memory for hit
// rate on repeated identical queries.
const queryCacheSize = 128

// maxCachedPoints bounds the size of a single cached query result.
const maxCachedPoints = 100_000

// Service answers archive queries from the time-series store. Queries fan
// out over matching series with a bounded worker pool sized to the machine,
// and repeated identical queries are answered from an LRU cache guarded by
// per-shard generations: an entry stays valid until a write lands in one
// of the shards its series hash to (or a new series appears anywhere),
// so collection ticks only evict the entries they actually affect.
type Service struct {
	// dbv holds the store serving reads. It is swappable: a replication
	// follower installs a freshly reopened replica via SwapDB after each
	// applied delta, while every query path captures the pointer once at
	// entry and runs entirely against that capture. dbEpoch counts swaps;
	// cache entries record it so results computed against a replaced
	// store can never validate against its successor (whose generation
	// counters restart and could collide).
	dbv      atomic.Pointer[tsdb.DB]
	dbEpoch  atomic.Uint64
	cat      *catalog.Catalog
	datasets map[string]bool
	workers  int
	cache    *resultCache
	// flight coalesces identical uncached computations onto one store
	// read (see singleflight.go); admission, when set, gates the HTTP
	// layer (see admission.go).
	flight    flightGroup
	admission *Admission
	// follower, when set, marks the service a read replica: writes and
	// replication-source endpoints are refused, and reads carry a
	// staleness bound (see replication.go).
	follower *followerState
	// puller, when set (followers with a running Puller), feeds the
	// replication meta section's catch-up stats.
	puller *Puller
	// reg is the service's metrics registry — the single home of every
	// counter the /api/v1/meta sections and the /api/v1/metrics
	// exposition surface. Always non-nil; wired at construction with the
	// cache, singleflight, and store metrics, extended by SetAdmission,
	// SetFollower, and NewPuller.
	reg *obs.Registry
}

// NewService builds the query service over a store and the catalog it was
// collected from. The four single-vendor datasets are queryable by
// default; AllowDatasets extends the set (e.g. for multi-vendor archives).
func NewService(db *tsdb.DB, cat *catalog.Catalog) *Service {
	s := &Service{
		cat:      cat,
		datasets: make(map[string]bool),
		workers:  runtime.GOMAXPROCS(0),
		cache:    newResultCache(queryCacheSize),
		reg:      obs.NewRegistry(),
	}
	s.dbv.Store(db)
	s.AllowDatasets(tsdb.DatasetPlacementScore, tsdb.DatasetInterruptFree,
		tsdb.DatasetPrice, tsdb.DatasetSavings)
	s.registerMetrics()
	return s
}

// Registry returns the service's metrics registry, for callers that add
// process-level metrics next to the service's own (cmd wiring).
func (s *Service) Registry() *obs.Registry { return s.reg }

// registerMetrics wires the construction-time metrics: the result cache
// and singleflight counters (registered over the structs' own atomics —
// one state, two surfaces) and the store's metrics through the s.store
// indirection, so a follower's SwapDB re-points every store series at
// the replica now serving.
func (s *Service) registerMetrics() {
	s.reg.RegisterCounter("spotlake_cache_hits_total",
		"Result cache hits.", &s.cache.hits)
	s.reg.RegisterCounter("spotlake_cache_misses_total",
		"Result cache misses (invalidations and coalesced included).", &s.cache.miss)
	s.reg.RegisterCounter("spotlake_cache_invalidations_total",
		"Cache entries evicted because a depended-on shard or the key set changed.", &s.cache.inval)
	s.reg.RegisterCounter("spotlake_cache_coalesced_total",
		"Cache misses that joined an identical in-flight computation.", &s.flight.coalesced)
	tsdb.RegisterMetrics(s.reg, s.store)
	s.reg.GaugeFunc("spotlake_replication_epoch",
		"The serving store's replication epoch (0 on memory-only stores).", func() float64 {
			db := s.store()
			if db == nil || !db.Durable() {
				return 0
			}
			epoch, _ := db.ReplicationPosition()
			return float64(epoch)
		})
	s.reg.GaugeFunc("spotlake_replication_checkpoint_seq",
		"The serving store's committed checkpoint sequence.", func() float64 {
			db := s.store()
			if db == nil || !db.Durable() {
				return 0
			}
			_, seq := db.ReplicationPosition()
			return float64(seq)
		})
}

// store returns the store currently serving reads.
func (s *Service) store() *tsdb.DB { return s.dbv.Load() }

// storeRef captures the serving store together with the swap epoch to
// tag its cache entries with. The epoch is read first: if a swap races
// the capture, the pair is at worst (old epoch, new store), whose cache
// entries fail the epoch check and are recomputed — never (new epoch,
// old store), which could poison the new store's cache.
func (s *Service) storeRef() (*tsdb.DB, uint64) {
	epoch := s.dbEpoch.Load()
	return s.dbv.Load(), epoch
}

// SwapDB atomically replaces the store serving reads and returns the old
// one. In-flight requests finish against the store they captured at
// entry, so the caller must keep the returned store open until they have
// drained (the follower's puller closes it after a grace period — a read
// racing the close degrades to a cold-read error, never a wrong answer).
// The result cache is purged; the epoch bump keeps any racing put from
// surviving into the new store's cache.
func (s *Service) SwapDB(db *tsdb.DB) *tsdb.DB {
	old := s.dbv.Swap(db)
	s.dbEpoch.Add(1)
	s.cache.purge()
	return old
}

// SetWorkers overrides the fan-out worker pool size (minimum 1); the
// default is GOMAXPROCS. Benchmarks use it to measure 1 vs N workers.
func (s *Service) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// CacheStats reports the result cache's cumulative hits and misses plus
// the singleflight group's coalesced-request count. A coalesced request
// is a subset of the misses (it missed the cache, then piggybacked on an
// identical in-flight computation), so actual store computations are
// Misses - Coalesced.
func (s *Service) CacheStats() CacheStats {
	st := s.cache.stats()
	st.Coalesced = s.flight.coalesced.Value()
	return st
}

// SetAdmission installs an admission controller: Handler() wraps the API
// in it, and Meta() surfaces its counters. Nil (the default) serves
// without admission control. The controller's counters and the handler
// latency histogram register on the service registry; installing a
// replacement controller re-points the metric names at it.
func (s *Service) SetAdmission(a *Admission) {
	s.admission = a
	if a != nil {
		a.registerMetrics(s.reg)
	}
}

// fanOut runs fn(i) for i in [0, n) on a bounded worker pool and waits.
// Output slots are per-index, so results are deterministic regardless of
// scheduling.
func (s *Service) fanOut(n int, fn func(int)) {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// cacheKey renders the (kind, filter, window, resolution, page) tuple
// canonically. The page window — offset/limit or cursor token — is part
// of the key: two requests that differ only in their page return
// different point sets, and a cache that ignored the page would serve
// page 0 for every page. Resolution and aggregate are included after
// normalization (resolveRead), so `auto` shares entries with the
// explicit resolution it picked.
func cacheKey(kind string, req QueryRequest) string {
	return kind + "\x00" + req.Dataset + "\x00" + req.Type + "\x00" + req.Region + "\x00" + req.AZ +
		"\x00" + strconv.FormatInt(req.From.UnixNano(), 36) + "\x00" + strconv.FormatInt(req.To.UnixNano(), 36) +
		"\x00" + strconv.Itoa(req.Offset) + "\x00" + strconv.Itoa(req.Limit) + "\x00" + req.Cursor +
		"\x00" + req.Resolution + "\x00" + req.Agg
}

// AllowDatasets registers additional queryable dataset names.
func (s *Service) AllowDatasets(names ...string) {
	for _, n := range names {
		s.datasets[n] = true
	}
}

// Datasets returns the queryable dataset names, sorted.
func (s *Service) Datasets() []string {
	out := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DB exposes the store currently serving reads (used by analysis
// tooling). On a follower the pointer is replaced by SwapDB as deltas
// apply; callers holding it see a consistent-but-frozen replica.
func (s *Service) DB() *tsdb.DB { return s.store() }

// Catalog returns the inventory the archive covers.
func (s *Service) Catalog() *catalog.Catalog { return s.cat }

// QueryRequest selects series and a time window. Empty string fields match
// anything; zero times mean an unbounded window. Limit and Offset select a
// page of the result's point stream (see QueryPaged); both zero means the
// full window. Cursor resumes a keyset-cursor walk (see QueryCursor) and
// is mutually exclusive with Offset.
type QueryRequest struct {
	Dataset string
	Type    string
	Region  string
	AZ      string
	From    time.Time
	To      time.Time
	Limit   int
	Offset  int
	Cursor  string
	// Resolution selects the tier serving the points: "raw" (default),
	// "1h" or "1d" (rollup tiers), or "auto" (picked from the window
	// span — see resolution.go). Normalized to the effective value by
	// resolveRead.
	Resolution string
	// Agg selects the rollup aggregate ("min", "max", "mean", "last";
	// default mean). Ignored at raw resolution.
	Agg string
}

// SeriesResult is one series' points within the requested window.
type SeriesResult struct {
	Key    tsdb.SeriesKey `json:"key"`
	Points []tsdb.Point   `json:"points"`
}

// checkWindow validates the request's dataset against the allowlist and
// normalizes its window (zero To = unbounded). Shared by every query
// entry point so paginated and unpaginated requests can never diverge on
// validation semantics.
func (s *Service) checkWindow(req QueryRequest) (from, to time.Time, err error) {
	if req.Dataset != "" && !s.datasets[req.Dataset] {
		return from, to, badParam("dataset", "archive: unknown dataset %q", req.Dataset)
	}
	from, to = req.From, req.To
	if to.IsZero() {
		to = time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if to.Before(from) {
		return from, to, fmt.Errorf("archive: query window ends (%v) before it starts (%v)", to, from)
	}
	return from, to, nil
}

// matchedKeys lists the series keys the request's filter selects from
// db (the store captured at the query's entry), enforcing the per-query
// series limit.
func matchedKeys(db *tsdb.DB, req QueryRequest) ([]tsdb.SeriesKey, error) {
	keys := db.Keys(tsdb.KeyFilter{Dataset: req.Dataset, Type: req.Type, Region: req.Region, AZ: req.AZ})
	if len(keys) > MaxSeriesPerQuery {
		return nil, fmt.Errorf("archive: query matches %d series, limit %d; narrow the filter", len(keys), MaxSeriesPerQuery)
	}
	return keys, nil
}

// Query returns every matching series restricted to the window. It fails
// when the filter matches more than MaxSeriesPerQuery series. Cache
// misses go through the singleflight group: concurrent identical cold
// queries collapse onto one store computation whose result (and
// generation capture, via the cache entry the leader publishes) every
// coalesced caller shares.
func (s *Service) Query(req QueryRequest) ([]SeriesResult, error) {
	from, to, err := s.checkWindow(req)
	if err != nil {
		return nil, err
	}
	// Query always returns the full window; zero the page fields so a
	// caller that set them doesn't fragment the cache.
	req.Limit, req.Offset, req.Cursor = 0, 0, ""
	db, epoch := s.storeRef()
	plan, err := resolveRead(db, &req, from, to)
	if err != nil {
		return nil, err
	}
	ck := cacheKey("query", req)
	if v, ok := s.cache.get(ck, epoch, db.KeyGeneration(), db.ShardGenerations()); ok {
		return v.([]SeriesResult), nil
	}
	v, err := s.flight.do(ck, func() (any, error) { return s.queryCold(db, epoch, req, plan, ck, from, to) })
	if err != nil {
		return nil, err
	}
	return v.([]SeriesResult), nil
}

// queryCold is the leader's computation for a Query cache miss.
func (s *Service) queryCold(db *tsdb.DB, epoch uint64, req QueryRequest, plan readPlan, ck string, from, to time.Time) (any, error) {
	// Capture the generations before reading: a write racing the fan-out
	// makes the cached entry stale immediately, never the reverse. The
	// capture is the leader's own — coalesced followers share it. Rollup
	// reads are guarded by the RAW store's generations too: rollup series
	// only change at checkpoint time, and every checkpoint was preceded by
	// the raw appends (gen bumps) whose points it rolls up.
	keyGen, genVec := db.KeyGeneration(), db.ShardGenerations()
	keys, err := matchedKeys(db, req)
	if err != nil {
		return nil, err
	}
	// Fan out across series; slots keep the sorted key order deterministic.
	slots := make([][]tsdb.Point, len(keys))
	errs := make([]error, len(keys))
	s.fanOut(len(keys), func(i int) {
		slots[i], errs[i] = plan.db.Query(plan.key(keys[i]), from, to)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	out := make([]SeriesResult, 0, len(keys))
	points := 0
	for i, k := range keys {
		if len(slots[i]) == 0 {
			continue
		}
		points += len(slots[i])
		out = append(out, SeriesResult{Key: k, Points: slots[i]})
	}
	// Oversized results are not cached: one-off bulk exports (or clients
	// polling with a unique moving window) would otherwise pin up to 128
	// full-archive copies in the LRU without ever hitting.
	if points <= maxCachedPoints {
		dep, gens := depGenerations(db, keys, genVec)
		s.cache.put(ck, epoch, keyGen, dep, gens, out)
	}
	return out, nil
}

// firstErr returns the first non-nil error of a fan-out's per-slot error
// vector, so a failed cold-block read surfaces instead of truncating the
// response.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// depGenerations maps the matched series keys to the sorted unique shard
// indices they hash to, paired with those shards' generations from the
// pre-read vector. These are exactly the shards whose writes can change
// the result (key-set changes are guarded by the key generation).
func depGenerations(db *tsdb.DB, keys []tsdb.SeriesKey, genVec []uint64) ([]uint32, []uint64) {
	seen := make(map[uint32]struct{}, len(keys))
	dep := make([]uint32, 0, len(keys))
	for _, k := range keys {
		si := uint32(db.ShardIndexOf(k))
		if _, ok := seen[si]; ok {
			continue
		}
		seen[si] = struct{}{}
		dep = append(dep, si)
	}
	sort.Slice(dep, func(i, j int) bool { return dep[i] < dep[j] })
	gens := make([]uint64, len(dep))
	for j, si := range dep {
		gens[j] = genVec[si]
	}
	return dep, gens
}

// LatestEntry is the current value of one series.
type LatestEntry struct {
	Key   tsdb.SeriesKey `json:"key"`
	At    time.Time      `json:"at"`
	Value float64        `json:"value"`
}

// Latest returns the most recent value of every matching series. The
// window it validates is discarded — Latest ignores it — but running the
// shared check keeps a malformed request rejected identically here and
// in Query.
func (s *Service) Latest(req QueryRequest) ([]LatestEntry, error) {
	if _, _, err := s.checkWindow(req); err != nil {
		return nil, err
	}
	// Latest ignores the window and the page, so the key must too —
	// otherwise clients polling with a moving from/to fragment the cache.
	filterOnly := req
	filterOnly.From, filterOnly.To = time.Time{}, time.Time{}
	filterOnly.Limit, filterOnly.Offset, filterOnly.Cursor = 0, 0, ""
	ck := cacheKey("latest", filterOnly)
	db, epoch := s.storeRef()
	if v, ok := s.cache.get(ck, epoch, db.KeyGeneration(), db.ShardGenerations()); ok {
		return v.([]LatestEntry), nil
	}
	v, err := s.flight.do(ck, func() (any, error) { return s.latestCold(db, epoch, req, ck) })
	if err != nil {
		return nil, err
	}
	return v.([]LatestEntry), nil
}

// latestCold is the leader's computation for a Latest cache miss.
func (s *Service) latestCold(db *tsdb.DB, epoch uint64, req QueryRequest, ck string) (any, error) {
	keyGen, genVec := db.KeyGeneration(), db.ShardGenerations()
	keys, err := matchedKeys(db, req)
	if err != nil {
		return nil, err
	}
	type slot struct {
		p  tsdb.Point
		ok bool
	}
	slots := make([]slot, len(keys))
	errs := make([]error, len(keys))
	s.fanOut(len(keys), func(i int) {
		p, ok, err := db.Last(keys[i])
		slots[i], errs[i] = slot{p: p, ok: ok}, err
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	out := make([]LatestEntry, 0, len(keys))
	for i, k := range keys {
		if !slots[i].ok {
			continue
		}
		out = append(out, LatestEntry{Key: k, At: slots[i].p.At, Value: slots[i].p.Value})
	}
	dep, gens := depGenerations(db, keys, genVec)
	s.cache.put(ck, epoch, keyGen, dep, gens, out)
	return out, nil
}

// APIVersion names the /api/v1 response contract; /api/v1/meta reports
// it top-level so clients can pin the shape they parse.
const APIVersion = "v1"

// Meta summarizes the archive contents and the serving layer's health,
// as versioned namespaced sections: `schema` (what data is queryable),
// `store` (tsdb durability and the hot/cold split), `cache`, `admission`
// (absent without a controller), `retention` (absent without -retain-raw),
// and `replication` (role, epochs, staleness).
type Meta struct {
	APIVersion string     `json:"apiVersion"`
	Schema     SchemaMeta `json:"schema"`
	Cache      CacheStats `json:"cache"`
	Store      StoreMeta  `json:"store"`
	// Admission reports the traffic controller's counters and rolling
	// handler-latency percentiles; absent when no controller is set.
	Admission *AdmissionStats `json:"admission,omitempty"`
	// Retention lists the per-dataset raw retention horizons with each
	// dataset's committed cut, rollup coverage, and points dropped so
	// far; absent when no -retain-raw is configured.
	Retention []tsdb.RetentionStat `json:"retention,omitempty"`
	// Replication reports the serving role and, on a follower, how far
	// behind the primary this replica may be.
	Replication ReplicationMeta `json:"replication"`
}

// SchemaMeta describes the queryable data: series/point inventory and
// the catalog dimensions behind the filter parameters.
type SchemaMeta struct {
	SeriesCount int            `json:"seriesCount"`
	PointCount  int            `json:"pointCount"`
	Datasets    map[string]int `json:"datasets"` // dataset -> series count
	Types       int            `json:"types"`
	Regions     int            `json:"regions"`
	AZs         int            `json:"azs"`
}

// StoreMeta surfaces the tsdb's durability health: the size of the
// un-checkpointed WAL tail a crash right now would replay, the tail the
// last open actually replayed, rotation failures (climbing = the store
// cannot create segment files), sealed segments awaiting reclamation,
// the maintenance daemon's counters, and the hot/cold storage split —
// resident tail points versus block-compressed history, the on-disk
// size of that history, block-cache effectiveness, and cold read
// failures (climbing = block files are corrupt or unreadable).
type StoreMeta struct {
	Durable                 bool                  `json:"durable"`
	WALBytesSinceCheckpoint uint64                `json:"walBytesSinceCheckpoint"`
	ReplayedWALBytes        uint64                `json:"replayedWALBytes"`
	RotateFailures          uint64                `json:"rotateFailures"`
	SealedSegments          int                   `json:"sealedSegments"`
	MaxSealedSegments       int                   `json:"maxSealedSegments"`
	CheckpointAfterBytes    int64                 `json:"checkpointAfterBytes"`
	MaintainerActive        bool                  `json:"maintainerActive"`
	Maintenance             tsdb.MaintenanceStats `json:"maintenance"`
	HotPoints               int64                 `json:"hotPoints"`
	ColdPoints              int64                 `json:"coldPoints"`
	SealedBlocks            int64                 `json:"sealedBlocks"`
	ColdCompressedBytes     int64                 `json:"coldCompressedBytes"`
	HotTailPoints           int                   `json:"hotTailPoints"`
	ColdReadErrors          uint64                `json:"coldReadErrors"`
	BlockCache              tsdb.BlockCacheStats  `json:"blockCache"`
	// RollupTiers reports whether the store maintains 1h/1d rollup
	// series (resolution= is servable beyond raw).
	RollupTiers bool `json:"rollupTiers"`
}

// Meta returns the archive summary.
func (s *Service) Meta() Meta {
	db := s.store()
	m := Meta{
		APIVersion: APIVersion,
		Schema: SchemaMeta{
			SeriesCount: db.SeriesCount(),
			PointCount:  db.PointCount(),
			Datasets:    make(map[string]int),
			Types:       s.cat.NumTypes(),
			Regions:     s.cat.NumRegions(),
			AZs:         s.cat.NumAZs(),
		},
		Cache: s.CacheStats(),
		Store: StoreMeta{
			Durable:                 db.Durable(),
			WALBytesSinceCheckpoint: db.WALBytesSinceCheckpoint(),
			ReplayedWALBytes:        db.ReplayedWALBytes(),
			RotateFailures:          db.RotateFailures(),
			SealedSegments:          db.SealedSegments(),
			MaxSealedSegments:       db.MaxSealedSegments(),
			CheckpointAfterBytes:    db.CheckpointAfterBytes(),
			MaintainerActive:        db.MaintainerActive(),
			Maintenance:             db.MaintenanceStats(),
			HotPoints:               db.HotPointCount(),
			ColdPoints:              db.ColdPointCount(),
			SealedBlocks:            db.SealedBlocks(),
			ColdCompressedBytes:     db.ColdCompressedBytes(),
			HotTailPoints:           db.HotTailPoints(),
			ColdReadErrors:          db.ColdReadErrors(),
			BlockCache:              db.BlockCacheStats(),
			RollupTiers:             db.Rollups() != nil,
		},
		Retention:   db.RetentionStats(),
		Replication: s.replicationMeta(db),
	}
	if s.admission != nil {
		st := s.admission.Stats()
		m.Admission = &st
	}
	for _, ds := range s.Datasets() {
		m.Schema.Datasets[ds] = len(db.Keys(tsdb.KeyFilter{Dataset: ds}))
	}
	return m
}
