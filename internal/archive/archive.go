// Package archive implements SpotLake's serving layer (paper Figure 2): the
// query service over the time-series archive plus the web API through which
// users fetch historical spot datasets.
//
// The paper's deployment is serverless — static files on object storage, an
// API gateway, and a query function reading Timestream. Here the same
// data-plane shape is an http.Handler: stateless handler functions over the
// tsdb store, plus an embedded static front-end page. Handlers keep no
// mutable state, preserving the design's scaling property.
package archive

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/tsdb"
)

// MaxSeriesPerQuery bounds how many series one query may return, like the
// paper service's response limits.
const MaxSeriesPerQuery = 2000

// Service answers archive queries from the time-series store.
type Service struct {
	db       *tsdb.DB
	cat      *catalog.Catalog
	datasets map[string]bool
}

// NewService builds the query service over a store and the catalog it was
// collected from. The four single-vendor datasets are queryable by
// default; AllowDatasets extends the set (e.g. for multi-vendor archives).
func NewService(db *tsdb.DB, cat *catalog.Catalog) *Service {
	s := &Service{db: db, cat: cat, datasets: make(map[string]bool)}
	s.AllowDatasets(tsdb.DatasetPlacementScore, tsdb.DatasetInterruptFree,
		tsdb.DatasetPrice, tsdb.DatasetSavings)
	return s
}

// AllowDatasets registers additional queryable dataset names.
func (s *Service) AllowDatasets(names ...string) {
	for _, n := range names {
		s.datasets[n] = true
	}
}

// Datasets returns the queryable dataset names, sorted.
func (s *Service) Datasets() []string {
	out := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DB exposes the underlying store (used by analysis tooling).
func (s *Service) DB() *tsdb.DB { return s.db }

// Catalog returns the inventory the archive covers.
func (s *Service) Catalog() *catalog.Catalog { return s.cat }

// QueryRequest selects series and a time window. Empty string fields match
// anything; zero times mean an unbounded window.
type QueryRequest struct {
	Dataset string
	Type    string
	Region  string
	AZ      string
	From    time.Time
	To      time.Time
}

// SeriesResult is one series' points within the requested window.
type SeriesResult struct {
	Key    tsdb.SeriesKey `json:"key"`
	Points []tsdb.Point   `json:"points"`
}

// Query returns every matching series restricted to the window. It fails
// when the filter matches more than MaxSeriesPerQuery series.
func (s *Service) Query(req QueryRequest) ([]SeriesResult, error) {
	if req.Dataset != "" && !s.datasets[req.Dataset] {
		return nil, fmt.Errorf("archive: unknown dataset %q", req.Dataset)
	}
	from, to := req.From, req.To
	if to.IsZero() {
		to = time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if to.Before(from) {
		return nil, fmt.Errorf("archive: query window ends (%v) before it starts (%v)", to, from)
	}
	keys := s.db.Keys(tsdb.KeyFilter{Dataset: req.Dataset, Type: req.Type, Region: req.Region, AZ: req.AZ})
	if len(keys) > MaxSeriesPerQuery {
		return nil, fmt.Errorf("archive: query matches %d series, limit %d; narrow the filter", len(keys), MaxSeriesPerQuery)
	}
	out := make([]SeriesResult, 0, len(keys))
	for _, k := range keys {
		pts := s.db.Query(k, from, to)
		if len(pts) == 0 {
			continue
		}
		out = append(out, SeriesResult{Key: k, Points: pts})
	}
	return out, nil
}

// LatestEntry is the current value of one series.
type LatestEntry struct {
	Key   tsdb.SeriesKey `json:"key"`
	At    time.Time      `json:"at"`
	Value float64        `json:"value"`
}

// Latest returns the most recent value of every matching series.
func (s *Service) Latest(req QueryRequest) ([]LatestEntry, error) {
	keys := s.db.Keys(tsdb.KeyFilter{Dataset: req.Dataset, Type: req.Type, Region: req.Region, AZ: req.AZ})
	if len(keys) > MaxSeriesPerQuery {
		return nil, fmt.Errorf("archive: query matches %d series, limit %d; narrow the filter", len(keys), MaxSeriesPerQuery)
	}
	out := make([]LatestEntry, 0, len(keys))
	for _, k := range keys {
		p, ok := s.db.Last(k)
		if !ok {
			continue
		}
		out = append(out, LatestEntry{Key: k, At: p.At, Value: p.Value})
	}
	return out, nil
}

// Meta summarizes the archive contents.
type Meta struct {
	SeriesCount int            `json:"seriesCount"`
	PointCount  int            `json:"pointCount"`
	Datasets    map[string]int `json:"datasets"` // dataset -> series count
	Types       int            `json:"types"`
	Regions     int            `json:"regions"`
	AZs         int            `json:"azs"`
}

// Meta returns the archive summary.
func (s *Service) Meta() Meta {
	m := Meta{
		SeriesCount: s.db.SeriesCount(),
		PointCount:  s.db.PointCount(),
		Datasets:    make(map[string]int),
		Types:       s.cat.NumTypes(),
		Regions:     s.cat.NumRegions(),
		AZs:         s.cat.NumAZs(),
	}
	for _, ds := range s.Datasets() {
		m.Datasets[ds] = len(s.db.Keys(tsdb.KeyFilter{Dataset: ds}))
	}
	return m
}
