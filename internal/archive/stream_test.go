package archive

// Regression tests for the HTTP layer's streaming plumbing: the gzip
// writer must forward Flush (without breaking its lazy commit), the
// series streamer must push each element and abort the connection on
// the first write error, next-page Link headers must not alias the
// handler's parsed query, and malformed time parameters must name
// themselves in the error.

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/tsdb"
)

// The compile-time half of the Flusher bug: handlers discover the
// capability by type assertion, so losing the method loses streaming
// silently.
var _ http.Flusher = (*gzipResponseWriter)(nil)

func sampleSeries(n int) []SeriesResult {
	out := make([]SeriesResult, n)
	for i := range out {
		out[i] = SeriesResult{
			Key: tsdb.SeriesKey{Dataset: "sps", Type: fmt.Sprintf("m5.%dxlarge", i+1), Region: "us-east-1", AZ: "use1-az1"},
			Points: []tsdb.Point{
				{At: time.Date(2022, 1, 1, 0, 10*i, 0, 0, time.UTC), Value: float64(i)},
			},
		}
	}
	return out
}

// TestGzipFlushForwardsPartialBody: Flush before the first body byte is
// a no-op (lazy commit preserved); after a write it drains the gzip
// stream so the bytes already sent decode without the trailer, and
// forwards the flush downstream.
func TestGzipFlushForwardsPartialBody(t *testing.T) {
	rec := httptest.NewRecorder()
	gw := &gzipResponseWriter{ResponseWriter: rec}

	gw.Flush()
	if rec.Flushed {
		t.Error("Flush before any body byte reached the underlying writer")
	}
	if rec.Body.Len() != 0 || rec.Header().Get("Content-Encoding") != "" {
		t.Error("Flush before any body byte committed the response")
	}

	if _, err := io.WriteString(gw, "hello, stream"); err != nil {
		t.Fatal(err)
	}
	gw.Flush()
	if !rec.Flushed {
		t.Fatal("Flush after a body write was not forwarded to the underlying writer")
	}
	// A sync flush makes everything written so far decodable mid-stream —
	// this is what lets a client see page 1 while page 2 computes.
	zr, err := gzip.NewReader(strings.NewReader(rec.Body.String()))
	if err != nil {
		t.Fatal(err)
	}
	partial := make([]byte, len("hello, stream"))
	if _, err := io.ReadFull(zr, partial); err != nil {
		t.Fatalf("flushed bytes not decodable mid-stream: %v", err)
	}
	if string(partial) != "hello, stream" {
		t.Fatalf("decoded %q", partial)
	}

	if err := gw.finish(); err != nil {
		t.Fatal(err)
	}
	zr, err = gzip.NewReader(strings.NewReader(rec.Body.String()))
	if err != nil {
		t.Fatal(err)
	}
	full, err := io.ReadAll(zr)
	if err != nil || string(full) != "hello, stream" {
		t.Fatalf("final stream decoded to %q, %v", full, err)
	}
}

// flushRecorder counts how often the streamer pushes to the client.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// TestStreamSeriesJSONFlushesPerSeries: every series element is pushed
// as it is encoded, and the streamed body is byte-for-byte a valid JSON
// array equal to marshaling the slice at once.
func TestStreamSeriesJSONFlushesPerSeries(t *testing.T) {
	series := sampleSeries(3)
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	streamSeriesJSON(rec, http.StatusOK, series)

	if rec.flushes != len(series) {
		t.Errorf("flushes = %d, want one per series (%d)", rec.flushes, len(series))
	}
	var got any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("streamed body is not a JSON array: %v\n%s", err, rec.Body.String())
	}
	marshaled, err := json.Marshal(series)
	if err != nil {
		t.Fatal(err)
	}
	var want any
	if err := json.Unmarshal(marshaled, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streamed body decoded to %v, want %v", got, want)
	}

	// The empty window stays a plain [] with no flush churn.
	rec = &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	streamSeriesJSON(rec, http.StatusOK, nil)
	if body := rec.Body.String(); body != "[]\n" {
		t.Errorf("empty stream body = %q", body)
	}
}

// failAfterWriter fails every Write past a budget of successful calls,
// modeling a client that disconnects mid-array.
type failAfterWriter struct {
	h      http.Header
	budget int
	calls  int
}

func (f *failAfterWriter) Header() http.Header { return f.h }
func (f *failAfterWriter) WriteHeader(int)     {}
func (f *failAfterWriter) Write(b []byte) (int, error) {
	f.calls++
	if f.calls > f.budget {
		return 0, errors.New("client gone")
	}
	return len(b), nil
}

// TestStreamSeriesJSONAbortsOnWriteError: the first failed write kills
// the connection via http.ErrAbortHandler — a truncated array must
// never be completed into something that parses — and nothing more is
// written after the failure.
func TestStreamSeriesJSONAbortsOnWriteError(t *testing.T) {
	w := &failAfterWriter{h: make(http.Header), budget: 2}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("write error did not abort the stream")
			}
			if err, ok := r.(error); !ok || !errors.Is(err, http.ErrAbortHandler) {
				t.Fatalf("panicked with %v, want http.ErrAbortHandler", r)
			}
		}()
		streamSeriesJSON(w, http.StatusOK, sampleSeries(5))
	}()
	if w.calls != w.budget+1 {
		t.Errorf("writer saw %d calls, want exactly %d (budget + the failing one): the stream kept writing past the error", w.calls, w.budget+1)
	}
}

// TestStreamSeriesJSONAbortsUnderGzip: the same abort works through the
// compression layer, where the write error surfaces via the sticky
// gzip flush. The handler must panic ErrAbortHandler (skipping the
// terminal flush) instead of handing the client a well-formed truncated
// stream.
func TestStreamSeriesJSONAbortsUnderGzip(t *testing.T) {
	h := withGzip(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		streamSeriesJSON(w, http.StatusOK, sampleSeries(4))
	}))
	req := httptest.NewRequest("GET", "/api/v1/query?dataset=sps", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("gzip'd stream to a broken client completed normally")
		}
		if err, ok := r.(error); !ok || !errors.Is(err, http.ErrAbortHandler) {
			t.Fatalf("panicked with %v, want http.ErrAbortHandler", r)
		}
	}()
	h.ServeHTTP(&failingResponseWriter{h: make(http.Header)}, req)
}

// TestSetNextLinkClonesQuery: building the next-page Link must not
// mutate the request's parsed query — the handler still reads it after
// setting headers, and the old shared-map construction silently
// rewrote the current cursor under it.
func TestSetNextLinkClonesQuery(t *testing.T) {
	r := httptest.NewRequest("GET", "/api/v1/query?dataset=sps&limit=5&cursor=tok1", nil)
	rawBefore := r.URL.RawQuery
	q := r.URL.Query()
	rec := httptest.NewRecorder()

	setNextLink(rec, r, "X-Next-Cursor", "cursor", "tok2")

	if got := q.Get("cursor"); got != "tok1" {
		t.Errorf("handler's query map mutated: cursor = %q, want tok1", got)
	}
	if r.URL.RawQuery != rawBefore {
		t.Errorf("request RawQuery mutated to %q", r.URL.RawQuery)
	}
	if got := rec.Header().Get("X-Next-Cursor"); got != "tok2" {
		t.Errorf("X-Next-Cursor = %q", got)
	}
	link := rec.Header().Get("Link")
	if !strings.Contains(link, "cursor=tok2") || !strings.Contains(link, "dataset=sps") ||
		!strings.Contains(link, "limit=5") || !strings.HasSuffix(link, `>; rel="next"`) {
		t.Errorf("Link = %q, want the full query with only cursor replaced", link)
	}
	if strings.Contains(link, "tok1") {
		t.Errorf("Link %q still carries the current page's cursor", link)
	}
}

// TestParseQueryRequestNamesBadTimeParam: a malformed from/to must say
// which parameter is bad — a bare time.Parse error leaves a client with
// several timestamp parameters guessing.
func TestParseQueryRequestNamesBadTimeParam(t *testing.T) {
	for _, tc := range []struct{ param, value string }{
		{"from", "yesterday"},
		{"to", "2022-13-99"},
	} {
		r := httptest.NewRequest("GET", "/api/v1/query?dataset=sps&"+tc.param+"="+tc.value, nil)
		_, err := parseQueryRequest(r)
		if err == nil {
			t.Fatalf("%s=%s parsed", tc.param, tc.value)
		}
		if !strings.Contains(err.Error(), tc.param+" must be an RFC 3339 timestamp") ||
			!strings.Contains(err.Error(), tc.value) {
			t.Errorf("%s error %q does not name the parameter and its value", tc.param, err)
		}
	}
	// And the handler surfaces it as a 400 with the same labeled message.
	s, _ := buildArchive(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/query?dataset=sps&from=yesterday")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body), "from must be an RFC 3339 timestamp") {
		t.Errorf("400 body %q does not label the bad parameter", body)
	}
}
