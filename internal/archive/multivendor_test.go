package archive

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/azuresim"
	"repro/internal/catalog"
	"repro/internal/gcpsim"
	"repro/internal/multicloud"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

// TestMultiVendorArchive serves a Section 7 style archive (Azure + GCP
// datasets registered alongside the AWS ones) through the same HTTP API.
func TestMultiVendorArchive(t *testing.T) {
	clk := simclock.NewAtEpoch()
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	azure := azuresim.New(clk, 9)
	gcp := gcpsim.New(clk, 9)
	mc, err := multicloud.New(clk, db, multicloud.DefaultConfig(), nil, azure, gcp)
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Run(2 * time.Hour); err != nil {
		t.Fatal(err)
	}

	svc := NewService(db, catalog.Compact(1))
	svc.AllowDatasets(multicloud.AllDatasets...)

	// Unregistered dataset names still fail; registered vendor datasets
	// work.
	if _, err := svc.Query(QueryRequest{Dataset: "oracle-price"}); err == nil {
		t.Error("unregistered dataset accepted")
	}
	res, err := svc.Query(QueryRequest{Dataset: multicloud.DatasetAzureEvict, Region: "eastus"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no azure eviction series for eastus")
	}
	for _, sr := range res {
		if sr.Key.Region != "eastus" {
			t.Errorf("region filter leak: %v", sr.Key)
		}
	}

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/latest?dataset=" + multicloud.DatasetGCPPrice + "&region=us-central1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("gcp latest status %d: %s", resp.StatusCode, body)
	}
	var entries []LatestEntry
	if err := json.Unmarshal(body, &entries); err != nil || len(entries) == 0 {
		t.Fatalf("gcp latest = %d entries, err %v", len(entries), err)
	}

	resp, err = http.Get(srv.URL + "/api/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var datasets []string
	if err := json.Unmarshal(body, &datasets); err != nil {
		t.Fatal(err)
	}
	if len(datasets) != len(multicloud.AllDatasets) {
		t.Errorf("datasets endpoint lists %d, want %d", len(datasets), len(multicloud.AllDatasets))
	}
}
