package archive

// Checkpoint-shipping replication over HTTP.
//
// The primary exposes its store's committed artifacts (see
// internal/tsdb/replication.go for the contract) on two endpoints:
//
//	GET /api/v1/replication/manifest
//	    A coherent listing: the committed MANIFEST bytes (parent and
//	    rollup), the (epoch, checkpointSeq) position they were captured
//	    at, and every artifact file with its size.
//	GET /api/v1/replication/file/{name}?epoch=E&checkpointSeq=S
//	    One artifact, served range-able via http.ServeContent. The
//	    request pins the listing's position: if a checkpoint (which may
//	    reclaim sealed segments and the old snapshot) or a re-shard
//	    landed since, the primary answers 409 epoch_mismatch and the
//	    follower re-lists; a file that vanished under an unchanged
//	    position (impossible today, defensive tomorrow) answers 410.
//
// Followers run a Puller (puller.go) against these endpoints and serve
// every read endpoint themselves; SetFollower marks the service a
// replica, which (a) refuses the replication-source endpoints — chained
// replication is not supported, a follower's artifact set is momentarily
// torn during applies — and (b) gates reads behind the staleness bound:
// past -max-staleness without a confirmed sync, reads answer 503
// stale_replica rather than silently serving arbitrarily old data.
// /api/v1/meta stays exempt, exactly like admission: a sick replica must
// remain observable, and the meta body itself carries the staleness
// numbers an operator needs.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/tsdb"
)

// followerState is the replica-side bookkeeping SetFollower installs.
type followerState struct {
	primaryURL   string
	maxStaleness time.Duration
	// lastSync is the UnixNano of the last cycle that confirmed the
	// replica current (applied a delta or verified there was none);
	// 0 = never synced.
	lastSync atomic.Int64
	// appliedEpoch/appliedSeq are the primary position of the last
	// applied (or verified-current) listing.
	appliedEpoch atomic.Uint64
	appliedSeq   atomic.Uint64
}

// SetFollower marks the service a read replica of primaryURL with the
// given staleness bound (<= 0 disables the bound: the replica serves
// however stale it is). Must be called before Handler(). The replica's
// applied-position and staleness gauges register on the service
// registry.
func (s *Service) SetFollower(primaryURL string, maxStaleness time.Duration) {
	f := &followerState{primaryURL: primaryURL, maxStaleness: maxStaleness}
	s.follower = f
	s.reg.GaugeFunc("spotlake_replication_applied_epoch",
		"Primary epoch of the last applied (or verified-current) listing.",
		func() float64 { return float64(f.appliedEpoch.Load()) })
	s.reg.GaugeFunc("spotlake_replication_applied_checkpoint_seq",
		"Primary checkpoint sequence of the last applied listing.",
		func() float64 { return float64(f.appliedSeq.Load()) })
	s.reg.GaugeFunc("spotlake_replication_seconds_behind",
		"Seconds since the last confirmed sync with the primary (0 = never synced).",
		func() float64 {
			last := f.lastSync.Load()
			if last == 0 {
				return 0
			}
			return time.Since(time.Unix(0, last)).Seconds()
		})
	s.reg.GaugeFunc("spotlake_replication_stale",
		"1 when the replica is past its staleness bound and shedding reads.",
		func() float64 {
			if _, stale := f.staleFor(time.Now()); stale {
				return 1
			}
			return 0
		})
}

// IsFollower reports whether the service serves as a read replica.
func (s *Service) IsFollower() bool { return s.follower != nil }

// noteSync records a successful sync cycle at the given primary
// position. The puller calls it both after applying a delta and after
// verifying the replica is already current — either way the replica's
// staleness clock resets, because its state is provably the primary's
// committed state as of now.
func (s *Service) noteSync(epoch, checkpointSeq uint64, at time.Time) {
	f := s.follower
	if f == nil {
		return
	}
	f.appliedEpoch.Store(epoch)
	f.appliedSeq.Store(checkpointSeq)
	f.lastSync.Store(at.UnixNano())
}

// staleFor reports how long the replica has gone without a confirmed
// sync, and whether that exceeds the staleness bound.
func (f *followerState) staleFor(now time.Time) (time.Duration, bool) {
	if f.maxStaleness <= 0 {
		return 0, false
	}
	last := f.lastSync.Load()
	if last == 0 {
		// Never synced: stale by definition — the replica may be serving
		// a local directory of any age.
		return f.maxStaleness, true
	}
	behind := now.Sub(time.Unix(0, last))
	return behind, behind > f.maxStaleness
}

// ReplicationMeta is /api/v1/meta's `replication` section.
type ReplicationMeta struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Epoch and CheckpointSeq are the serving store's committed
	// position (zero on memory-only stores, which have neither).
	Epoch         uint64 `json:"epoch"`
	CheckpointSeq uint64 `json:"checkpointSeq"`
	// Follower-only fields.
	PrimaryURL               string  `json:"primaryUrl,omitempty"`
	LastAppliedEpoch         uint64  `json:"lastAppliedEpoch,omitempty"`
	LastAppliedCheckpointSeq uint64  `json:"lastAppliedCheckpointSeq,omitempty"`
	SecondsBehindPrimary     float64 `json:"secondsBehindPrimary,omitempty"`
	MaxStalenessSeconds      float64 `json:"maxStalenessSeconds,omitempty"`
	Stale                    bool    `json:"stale,omitempty"`
	// Puller carries the follower's per-cycle catch-up stats; absent on
	// primaries and on followers without a running puller.
	Puller *PullerStats `json:"puller,omitempty"`
}

func (s *Service) replicationMeta(db *tsdb.DB) ReplicationMeta {
	m := ReplicationMeta{Role: "primary"}
	if db.Durable() {
		m.Epoch, m.CheckpointSeq = db.ReplicationPosition()
	}
	f := s.follower
	if f == nil {
		return m
	}
	m.Role = "follower"
	m.PrimaryURL = f.primaryURL
	m.LastAppliedEpoch = f.appliedEpoch.Load()
	m.LastAppliedCheckpointSeq = f.appliedSeq.Load()
	m.MaxStalenessSeconds = f.maxStaleness.Seconds()
	if last := f.lastSync.Load(); last > 0 {
		m.SecondsBehindPrimary = time.Since(time.Unix(0, last)).Seconds()
	}
	_, m.Stale = f.staleFor(time.Now())
	if s.puller != nil {
		st := s.puller.StatsDetail()
		m.Puller = &st
	}
	return m
}

// withFollowerGate rejects reads on a replica past its staleness bound.
// On a primary (or a follower within bound) it is h untouched.
func (s *Service) withFollowerGate(h http.Handler) http.Handler {
	if s.follower == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := s.follower
		// The observability surface (meta, metrics, health/readiness)
		// stays reachable so a sick replica remains observable — /readyz
		// in particular must answer its own verdict, not a gate's; the
		// replication endpoints answer 403 not_primary on a follower no
		// matter what, which is more actionable than a staleness 503.
		if !exemptPath(r.URL.Path) && !strings.HasPrefix(r.URL.Path, "/api/v1/replication/") {
			if behind, stale := f.staleFor(time.Now()); stale {
				// The bound is usually a multiple of the poll interval, so
				// one interval is the natural retry hint.
				w.Header().Set("Retry-After", "1")
				writeAPIError(w, http.StatusServiceUnavailable, ErrCodeStaleReplica, "",
					fmt.Errorf("archive: replica is %s behind the primary (max staleness %s); retry against the primary or another replica",
						behind.Round(time.Second), f.maxStaleness))
				return
			}
		}
		h.ServeHTTP(w, r)
	})
}

// handleReadyz answers the readiness probe. On a follower, ready means
// the applied position is within the staleness bound; on a primary,
// ready means a store is open and serving. Liveness (/healthz) stays
// 200 either way — a stale follower is not-ready, not dead, so a load
// balancer pools it out while it catches up instead of restarting it.
func (s *Service) handleReadyz(w http.ResponseWriter) {
	if f := s.follower; f != nil {
		if behind, stale := f.staleFor(time.Now()); stale {
			w.Header().Set("Retry-After", "1")
			writeAPIError(w, http.StatusServiceUnavailable, ErrCodeStaleReplica, "",
				fmt.Errorf("archive: not ready: replica is %s behind the primary (max staleness %s)",
					behind.Round(time.Second), f.maxStaleness))
			return
		}
	} else if s.store() == nil {
		writeAPIError(w, http.StatusServiceUnavailable, ErrCodeInternal, "",
			errors.New("archive: not ready: no store open"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, "ready\n")
}

// replListing is the /api/v1/replication/manifest response: the parent
// store's flattened artifact list (rollup files under "rollup/"), both
// manifests verbatim, and the position the listing is coherent at.
type replListing struct {
	APIVersion     string                     `json:"apiVersion"`
	Epoch          uint64                     `json:"epoch"`
	CheckpointSeq  uint64                     `json:"checkpointSeq"`
	Manifest       []byte                     `json:"manifest"`
	RollupManifest []byte                     `json:"rollupManifest,omitempty"`
	Artifacts      []tsdb.ReplicationArtifact `json:"artifacts"`
}

func (s *Service) handleReplManifest(w http.ResponseWriter, r *http.Request) {
	if s.follower != nil {
		writeAPIError(w, http.StatusForbidden, ErrCodeNotPrimary, "",
			errors.New("archive: this server is a follower; pull from the primary"))
		return
	}
	db := s.store()
	if !db.Durable() {
		writeAPIError(w, http.StatusNotFound, ErrCodeNotFound, "",
			errors.New("archive: memory-only store has no replication artifacts"))
		return
	}
	snap, err := db.ReplicationSnapshot()
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, ErrCodeInternal, "", err)
		return
	}
	out := replListing{
		APIVersion:    APIVersion,
		Epoch:         snap.Epoch,
		CheckpointSeq: snap.CheckpointSeq,
		Manifest:      snap.Manifest,
		Artifacts:     snap.Artifacts,
	}
	if snap.Rollup != nil {
		out.RollupManifest = snap.Rollup.Manifest
		for _, a := range snap.Rollup.Artifacts {
			a.Name = "rollup/" + a.Name
			out.Artifacts = append(out.Artifacts, a)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleReplFile(w http.ResponseWriter, r *http.Request) {
	if s.follower != nil {
		writeAPIError(w, http.StatusForbidden, ErrCodeNotPrimary, "",
			errors.New("archive: this server is a follower; pull from the primary"))
		return
	}
	db := s.store()
	if !db.Durable() {
		writeAPIError(w, http.StatusNotFound, ErrCodeNotFound, "",
			errors.New("archive: memory-only store has no replication artifacts"))
		return
	}
	name := r.PathValue("name")
	if !tsdb.IsReplicationArtifactName(name) {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadParam, "name",
			fmt.Errorf("archive: %q is not a replication artifact name", name))
		return
	}
	q := r.URL.Query()
	wantEpoch, err1 := strconv.ParseUint(q.Get("epoch"), 10, 64)
	wantSeq, err2 := strconv.ParseUint(q.Get("checkpointSeq"), 10, 64)
	if err1 != nil || err2 != nil {
		param := "epoch"
		if err1 == nil {
			param = "checkpointSeq"
		}
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadParam, param,
			errors.New("archive: file requests must pin the listing's epoch and checkpointSeq"))
		return
	}
	// The position check makes the listing's coherence span the whole
	// pull: a checkpoint bumps checkpointSeq before it reclaims any file
	// the old listing referenced, so a puller that pinned the old
	// position learns it must re-list instead of racing the reclamation.
	epoch, seq := db.ReplicationPosition()
	if epoch != wantEpoch || seq != wantSeq {
		writeAPIError(w, http.StatusConflict, ErrCodeEpochMismatch, "",
			fmt.Errorf("archive: listing position (epoch %d, checkpoint %d) is stale; primary is at (epoch %d, checkpoint %d) — re-list",
				wantEpoch, wantSeq, epoch, seq))
		return
	}
	f, err := os.Open(filepath.Join(db.Dir(), filepath.FromSlash(name)))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeAPIError(w, http.StatusGone, ErrCodeGone, "",
				fmt.Errorf("archive: replication artifact %s is gone; re-list", name))
			return
		}
		writeAPIError(w, http.StatusInternalServerError, ErrCodeInternal, "", err)
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, ErrCodeInternal, "", err)
		return
	}
	// ServeContent gives Range/If-Modified-Since handling for free; the
	// artifacts are immutable (or, for rollup actives, append-only), so
	// ranged resumes of an interrupted download are always byte-correct.
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeContent(w, r, filepath.Base(name), st.ModTime(), f)
}
