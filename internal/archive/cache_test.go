package archive

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/tsdb"
)

var cacheT0 = time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)

// twoShardKeys returns two fully-specified series keys that hash to
// different shards of db.
func twoShardKeys(t *testing.T, db *tsdb.DB) (tsdb.SeriesKey, tsdb.SeriesKey) {
	t.Helper()
	base := tsdb.SeriesKey{Dataset: tsdb.DatasetPlacementScore, Type: "m5.xlarge", Region: "us-east-1", AZ: "az0"}
	for i := 1; i < 1000; i++ {
		k := base
		k.AZ = fmt.Sprintf("az%d", i)
		if db.ShardIndexOf(k) != db.ShardIndexOf(base) {
			return base, k
		}
	}
	t.Fatal("could not find keys in distinct shards")
	return base, base
}

// TestPerShardCacheInvalidation is the acceptance test for shard-granular
// caching: a write to one shard must not invalidate a cached query whose
// series all live in other shards, while a write to a depended-on shard
// (or a new series anywhere) must.
func TestPerShardCacheInvalidation(t *testing.T) {
	db, err := tsdb.OpenSharded("", 8)
	if err != nil {
		t.Fatal(err)
	}
	kA, kB := twoShardKeys(t, db)
	if err := db.Append(kA, cacheT0, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(kB, cacheT0, 2); err != nil {
		t.Fatal(err)
	}
	svc := NewService(db, catalog.Compact(1))

	reqA := QueryRequest{Dataset: kA.Dataset, Type: kA.Type, Region: kA.Region, AZ: kA.AZ}
	if _, err := svc.Query(reqA); err != nil {
		t.Fatal(err)
	}
	if st := svc.CacheStats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("after first query: %+v", st)
	}
	if _, err := svc.Query(reqA); err != nil {
		t.Fatal(err)
	}
	if st := svc.CacheStats(); st.Hits != 1 {
		t.Fatalf("identical repeat did not hit: %+v", st)
	}

	// A collection tick touching only kB's shard: the kA entry stays hot.
	if err := db.Append(kB, cacheT0.Add(time.Minute), 3); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Query(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if st := svc.CacheStats(); st.Hits != 2 || st.Invalidations != 0 {
		t.Fatalf("write to foreign shard invalidated the entry: %+v", st)
	}
	if len(res) != 1 || len(res[0].Points) != 1 {
		t.Fatalf("cached result changed shape: %v", res)
	}

	// A write to kA's own shard must invalidate, and the recomputed
	// result must include the new point (never stale data).
	if err := db.Append(kA, cacheT0.Add(time.Minute), 4); err != nil {
		t.Fatal(err)
	}
	res, err = svc.Query(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if st := svc.CacheStats(); st.Invalidations != 1 {
		t.Fatalf("write to depended-on shard did not invalidate: %+v", st)
	}
	if len(res) != 1 || len(res[0].Points) != 2 {
		t.Fatalf("recomputed result stale: %v", res)
	}

	// A brand-new series anywhere invalidates via the key generation: it
	// could match a cached filter while hashing to an untracked shard.
	if _, err := svc.Query(reqA); err != nil { // re-prime
		t.Fatal(err)
	}
	kNew := kA
	kNew.Type = "c5.large"
	if err := db.Append(kNew, cacheT0, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Query(reqA); err != nil {
		t.Fatal(err)
	}
	if st := svc.CacheStats(); st.Invalidations != 2 {
		t.Fatalf("new series did not invalidate: %+v", st)
	}
}

// TestLatestPerShardCache exercises the same shard-granular guard on the
// Latest path.
func TestLatestPerShardCache(t *testing.T) {
	db, err := tsdb.OpenSharded("", 8)
	if err != nil {
		t.Fatal(err)
	}
	kA, kB := twoShardKeys(t, db)
	if err := db.Append(kA, cacheT0, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(kB, cacheT0, 2); err != nil {
		t.Fatal(err)
	}
	svc := NewService(db, catalog.Compact(1))
	reqA := QueryRequest{Dataset: kA.Dataset, Type: kA.Type, Region: kA.Region, AZ: kA.AZ}
	if _, err := svc.Latest(reqA); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(kB, cacheT0.Add(time.Minute), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Latest(reqA); err != nil {
		t.Fatal(err)
	}
	if st := svc.CacheStats(); st.Hits != 1 || st.Invalidations != 0 {
		t.Fatalf("latest entry did not survive foreign-shard write: %+v", st)
	}
	if err := db.Append(kA, cacheT0.Add(time.Minute), 7); err != nil {
		t.Fatal(err)
	}
	out, err := svc.Latest(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Value != 7 {
		t.Fatalf("latest served stale value: %v", out)
	}
	if st := svc.CacheStats(); st.Invalidations != 1 {
		t.Fatalf("own-shard write did not invalidate latest: %+v", st)
	}
}

// TestMetaExposesCacheStats checks the /api/v1/meta response carries the
// cache counters.
func TestMetaExposesCacheStats(t *testing.T) {
	s, _ := buildArchive(t)
	req := QueryRequest{Dataset: tsdb.DatasetPrice}
	if _, err := s.Query(req); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(req); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Cache CacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Hits == 0 || m.Cache.Misses == 0 {
		t.Errorf("meta cache stats empty: %+v", m.Cache)
	}
}

// TestGzipResponses checks that the API compresses for accepting clients
// and stays uncompressed otherwise, with identical decoded bodies.
func TestGzipResponses(t *testing.T) {
	s, cat := buildArchive(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	path := srv.URL + "/api/v1/query?dataset=sps&type=" + cat.Types()[0].Name

	plainReq, _ := http.NewRequest("GET", path, nil)
	plainReq.Header.Set("Accept-Encoding", "identity")
	plain, err := http.DefaultTransport.RoundTrip(plainReq)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Body.Close()
	if ce := plain.Header.Get("Content-Encoding"); ce != "" {
		t.Fatalf("identity client got Content-Encoding %q", ce)
	}
	plainBody, err := io.ReadAll(plain.Body)
	if err != nil {
		t.Fatal(err)
	}

	gzReq, _ := http.NewRequest("GET", path, nil)
	gzReq.Header.Set("Accept-Encoding", "gzip")
	gz, err := http.DefaultTransport.RoundTrip(gzReq)
	if err != nil {
		t.Fatal(err)
	}
	defer gz.Body.Close()
	if ce := gz.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("gzip client got Content-Encoding %q", ce)
	}
	if vary := gz.Header.Get("Vary"); !strings.Contains(vary, "Accept-Encoding") {
		t.Errorf("Vary = %q, want Accept-Encoding", vary)
	}
	zr, err := gzip.NewReader(gz.Body)
	if err != nil {
		t.Fatal(err)
	}
	gzBody, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(gzBody) != string(plainBody) {
		t.Fatalf("gzip body (%d bytes decoded) differs from plain body (%d bytes)", len(gzBody), len(plainBody))
	}
	if cl := gz.ContentLength; cl > 0 && cl >= int64(len(plainBody)) {
		t.Errorf("compressed length %d not smaller than plain %d", cl, len(plainBody))
	}

	// An explicit refusal (q=0) must not be compressed despite the
	// header containing the substring "gzip".
	refuseReq, _ := http.NewRequest("GET", path, nil)
	refuseReq.Header.Set("Accept-Encoding", "gzip;q=0")
	refuse, err := http.DefaultTransport.RoundTrip(refuseReq)
	if err != nil {
		t.Fatal(err)
	}
	defer refuse.Body.Close()
	if ce := refuse.Header.Get("Content-Encoding"); ce != "" {
		t.Errorf("gzip;q=0 client got Content-Encoding %q", ce)
	}
}

func TestAcceptsGzip(t *testing.T) {
	cases := map[string]bool{
		"":                       false,
		"gzip":                   true,
		"gzip, deflate, br":      true,
		"deflate":                false,
		"*":                      true,
		"gzip;q=0":               false,
		"gzip;q=0.0":             false,
		"gzip; q=0":              false,
		"gzip;q=0.5":             true,
		"gzip;q=1.0":             true,
		"deflate, gzip;q=0":      false,
		"identity;q=1, gzip;q=0": false,
		"gzip;q=0.000;level=1":   false,
		"gzip;level=1":           true,
		"gzip;q=0, *":            false,
		"gzip;q=0, *;q=1":        false,
		"*;q=0":                  false,
		"deflate, *":             true,
		"*, gzip;q=0":            false,
		// Malformed or creatively-spelled q-values: every spelling of
		// zero refuses (RFC 9110 §12.4.2), and garbage that never names
		// a positive weight refuses too.
		"gzip;q=.0":    false,
		"gzip;q=.000":  false,
		"gzip;q=0.":    false,
		"gzip;q=.":     false,
		"gzip;q=":      false,
		"gzip;q=x":     false,
		"gzip;q=+0":    false,
		"gzip;q=-1":    false,
		"gzip;q=nan":   false,
		"gzip;q=-inf":  false,
		"gzip;q=.5":    true,
		"gzip;q=0.001": true,
		"*;q=.0":       false,
		"*;q=.0, gzip": true,
		"gzip;q=.0, *": false,
	}
	for header, want := range cases {
		if got := acceptsGzip(header); got != want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", header, got, want)
		}
	}
}
