// Package mlearn implements the machine-learning stack of the paper's
// Section 5.5: CART decision trees, a bagging random forest classifier
// (the scikit-learn RandomForestClassifier substitute), train/test
// splitting, and the accuracy / macro-F1 metrics of Table 4.
package mlearn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/simrand"
)

// TreeConfig controls CART training.
type TreeConfig struct {
	// MaxDepth limits tree depth; 0 means unlimited (scikit default).
	MaxDepth int
	// MinSamplesLeaf is the minimum samples per leaf (default 1).
	MinSamplesLeaf int
	// MaxFeatures is the number of features considered per split; 0 means
	// all features (single trees) — forests default to sqrt(d).
	MaxFeatures int
}

type node struct {
	// Internal nodes route x[feature] <= threshold to left.
	feature   int
	threshold float64
	left      *node
	right     *node
	// Leaves carry the class histogram observed during training.
	leaf   bool
	counts []int
	major  int
}

// Tree is a trained CART classifier.
type Tree struct {
	root     *node
	nClasses int
	nFeats   int
}

// gini returns the Gini impurity of a class histogram with total samples n.
func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		s -= p * p
	}
	return s
}

func majority(counts []int) int {
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// TrainTree fits a CART tree on X (rows = samples) and integer labels y in
// [0, nClasses). rng drives feature subsampling; pass nil for deterministic
// all-features splits.
func TrainTree(X [][]float64, y []int, nClasses int, cfg TreeConfig, rng *simrand.Rand) (*Tree, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("mlearn: bad training set: %d rows, %d labels", len(X), len(y))
	}
	if nClasses < 2 {
		return nil, fmt.Errorf("mlearn: need at least 2 classes, got %d", nClasses)
	}
	d := len(X[0])
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("mlearn: row %d has %d features, want %d", i, len(row), d)
		}
	}
	for i, label := range y {
		if label < 0 || label >= nClasses {
			return nil, fmt.Errorf("mlearn: label %d at row %d outside [0,%d)", label, i, nClasses)
		}
	}
	if cfg.MinSamplesLeaf <= 0 {
		cfg.MinSamplesLeaf = 1
	}
	t := &Tree{nClasses: nClasses, nFeats: d}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(X, y, idx, cfg, rng, 0)
	return t, nil
}

func (t *Tree) histogram(y []int, idx []int) []int {
	counts := make([]int, t.nClasses)
	for _, i := range idx {
		counts[y[i]]++
	}
	return counts
}

func (t *Tree) build(X [][]float64, y []int, idx []int, cfg TreeConfig, rng *simrand.Rand, depth int) *node {
	counts := t.histogram(y, idx)
	n := &node{leaf: true, counts: counts, major: majority(counts)}
	if len(idx) < 2*cfg.MinSamplesLeaf {
		return n
	}
	if cfg.MaxDepth > 0 && depth >= cfg.MaxDepth {
		return n
	}
	if gini(counts, len(idx)) == 0 {
		return n
	}

	feats := t.candidateFeatures(cfg, rng)
	bestFeat, bestThresh, bestScore := -1, 0.0, math.Inf(1)

	// Reused buffers for the sorted scan.
	order := make([]int, len(idx))
	leftCounts := make([]int, t.nClasses)
	rightCounts := make([]int, t.nClasses)

	for _, f := range feats {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		copy(rightCounts, counts)
		total := len(order)
		for i := 0; i < total-1; i++ {
			c := y[order[i]]
			leftCounts[c]++
			rightCounts[c]--
			// Can only split between distinct feature values.
			if X[order[i]][f] == X[order[i+1]][f] {
				continue
			}
			nl, nr := i+1, total-i-1
			if nl < cfg.MinSamplesLeaf || nr < cfg.MinSamplesLeaf {
				continue
			}
			score := (float64(nl)*gini(leftCounts, nl) + float64(nr)*gini(rightCounts, nr)) / float64(total)
			if score < bestScore {
				bestScore = score
				bestFeat = f
				bestThresh = (X[order[i]][f] + X[order[i+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 || bestScore >= gini(counts, len(idx)) {
		return n
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return n
	}
	n.leaf = false
	n.feature = bestFeat
	n.threshold = bestThresh
	n.left = t.build(X, y, leftIdx, cfg, rng, depth+1)
	n.right = t.build(X, y, rightIdx, cfg, rng, depth+1)
	return n
}

func (t *Tree) candidateFeatures(cfg TreeConfig, rng *simrand.Rand) []int {
	k := cfg.MaxFeatures
	if k <= 0 || k >= t.nFeats || rng == nil {
		feats := make([]int, t.nFeats)
		for i := range feats {
			feats[i] = i
		}
		return feats
	}
	perm := rng.Perm(t.nFeats)
	return perm[:k]
}

// Predict returns the predicted class of one sample.
func (t *Tree) Predict(x []float64) int {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.major
}

// Proba returns the leaf class distribution for one sample.
func (t *Tree) Proba(x []float64) []float64 {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	total := 0
	for _, c := range n.counts {
		total += c
	}
	out := make([]float64, t.nClasses)
	if total == 0 {
		return out
	}
	for i, c := range n.counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// Depth returns the maximum depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
