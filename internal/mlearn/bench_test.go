package mlearn

import (
	"testing"

	"repro/internal/simrand"
)

func benchData(n int) ([][]float64, []int) {
	rng := simrand.New(4242)
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := rng.Intn(3)
		y[i] = c
		X[i] = []float64{
			rng.Normal(float64(c), 1),
			rng.Normal(float64(c)*2, 1.5),
			rng.Normal(0, 1),
			rng.Normal(float64(c%2), 0.8),
		}
	}
	return X, y
}

func BenchmarkTrainTree(b *testing.B) {
	X, y := benchData(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainTree(X, y, 3, TreeConfig{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainForest100(b *testing.B) {
	X, y := benchData(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainForest(X, y, 3, ForestConfig{NumTrees: 100, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := benchData(500)
	f, err := TrainForest(X, y, 3, ForestConfig{NumTrees: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(X[i%len(X)])
	}
}
