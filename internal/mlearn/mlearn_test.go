package mlearn

import (
	"math"
	"testing"

	"repro/internal/simrand"
)

// xorDataset builds a noiseless XOR-style dataset that a linear model
// cannot fit but a depth-2 tree can.
func xorDataset(n int, rng *simrand.Rand) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Float64(), rng.Float64()
		X[i] = []float64{a, b}
		if (a > 0.5) != (b > 0.5) {
			y[i] = 1
		}
	}
	return X, y
}

// gaussDataset builds a 3-class dataset with informative and noise
// features.
func gaussDataset(n int, rng *simrand.Rand) ([][]float64, []int) {
	X := make([][]float64, n)
	y := make([]int, n)
	centers := [][]float64{{0, 0}, {3, 0}, {0, 3}}
	for i := range X {
		c := rng.Intn(3)
		y[i] = c
		X[i] = []float64{
			rng.Normal(centers[c][0], 0.7),
			rng.Normal(centers[c][1], 0.7),
			rng.Normal(0, 1), // pure noise feature
		}
	}
	return X, y
}

func TestTreeFitsXOR(t *testing.T) {
	rng := simrand.New(1)
	X, y := xorDataset(400, rng)
	tree, err := TrainTree(X, y, 2, TreeConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]int, len(y))
	for i, x := range X {
		pred[i] = tree.Predict(x)
	}
	if acc := Accuracy(y, pred); acc < 0.99 {
		t.Errorf("tree training accuracy on XOR = %.3f, want ~1", acc)
	}
	if tree.Depth() < 2 {
		t.Errorf("XOR needs depth >= 2, got %d", tree.Depth())
	}
}

func TestTreeMaxDepth(t *testing.T) {
	rng := simrand.New(2)
	X, y := xorDataset(300, rng)
	tree, err := TrainTree(X, y, 2, TreeConfig{MaxDepth: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 1 {
		t.Errorf("depth %d exceeds MaxDepth 1", d)
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	rng := simrand.New(3)
	X, y := gaussDataset(200, rng)
	tree, err := TrainTree(X, y, 3, TreeConfig{MinSamplesLeaf: 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every leaf must hold >= 40 training samples.
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			total := 0
			for _, c := range n.counts {
				total += c
			}
			if total < 40 {
				t.Errorf("leaf with %d < 40 samples", total)
			}
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(tree.root)
}

func TestTreeValidation(t *testing.T) {
	if _, err := TrainTree(nil, nil, 2, TreeConfig{}, nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := TrainTree([][]float64{{1}}, []int{0}, 1, TreeConfig{}, nil); err == nil {
		t.Error("single class accepted")
	}
	if _, err := TrainTree([][]float64{{1}, {2}}, []int{0, 5}, 2, TreeConfig{}, nil); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := TrainTree([][]float64{{1}, {2, 3}}, []int{0, 1}, 2, TreeConfig{}, nil); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestTreeProbaSumsToOne(t *testing.T) {
	rng := simrand.New(4)
	X, y := gaussDataset(300, rng)
	tree, err := TrainTree(X, y, 3, TreeConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := tree.Proba(X[i])
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("proba sums to %v", sum)
		}
	}
}

func TestForestGeneralizes(t *testing.T) {
	rng := simrand.New(5)
	X, y := gaussDataset(600, rng)
	trainIdx, testIdx := TrainTestSplit(len(X), 0.3, 7)
	trX, trY := Subset(X, y, trainIdx)
	teX, teY := Subset(X, y, testIdx)
	f, err := TrainForest(trX, trY, 3, ForestConfig{NumTrees: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(teY, f.PredictAll(teX))
	if acc < 0.9 {
		t.Errorf("forest test accuracy = %.3f, want >= 0.9 on separable data", acc)
	}
}

func TestForestBeatsSingleShallowTree(t *testing.T) {
	// On noisy data, the ensemble should do at least as well as one
	// feature-restricted tree.
	rng := simrand.New(6)
	X, y := gaussDataset(500, rng)
	// Inject label noise.
	for i := 0; i < len(y); i += 10 {
		y[i] = (y[i] + 1) % 3
	}
	trainIdx, testIdx := TrainTestSplit(len(X), 0.3, 8)
	trX, trY := Subset(X, y, trainIdx)
	teX, teY := Subset(X, y, testIdx)

	single, err := TrainTree(trX, trY, 3, TreeConfig{MaxFeatures: 1}, simrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	singlePred := make([]int, len(teX))
	for i, x := range teX {
		singlePred[i] = single.Predict(x)
	}
	forest, err := TrainForest(trX, trY, 3, ForestConfig{NumTrees: 80, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	fAcc := Accuracy(teY, forest.PredictAll(teX))
	sAcc := Accuracy(teY, singlePred)
	if fAcc+0.02 < sAcc {
		t.Errorf("forest %.3f clearly worse than one restricted tree %.3f", fAcc, sAcc)
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	rng := simrand.New(7)
	X, y := gaussDataset(200, rng)
	f1, err := TrainForest(X, y, 3, ForestConfig{NumTrees: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := TrainForest(X, y, 3, ForestConfig{NumTrees: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if f1.Predict(X[i]) != f2.Predict(X[i]) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestForestProba(t *testing.T) {
	rng := simrand.New(8)
	X, y := gaussDataset(200, rng)
	f, err := TrainForest(X, y, 3, ForestConfig{NumTrees: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 25 {
		t.Errorf("NumTrees = %d", f.NumTrees())
	}
	p := f.Proba(X[0])
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("probability %v out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("forest proba sums to %v", sum)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{0, 1, 2, 1}, []int{0, 1, 1, 1}); got != 0.75 {
		t.Errorf("Accuracy = %v", got)
	}
	if !math.IsNaN(Accuracy(nil, nil)) {
		t.Error("empty accuracy should be NaN")
	}
	if !math.IsNaN(Accuracy([]int{1}, []int{1, 2})) {
		t.Error("length mismatch should be NaN")
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := ConfusionMatrix([]int{0, 0, 1, 2}, []int{0, 1, 1, 0}, 3)
	if m[0][0] != 1 || m[0][1] != 1 || m[1][1] != 1 || m[2][0] != 1 {
		t.Errorf("confusion = %v", m)
	}
}

func TestMacroF1KnownValue(t *testing.T) {
	// Binary case, hand-computed:
	// true:  1 1 1 0 0
	// pred:  1 0 1 0 1
	// class1: tp=2 fp=1 fn=1 -> P=2/3 R=2/3 F1=2/3
	// class0: tp=1 fp=1 fn=1 -> P=1/2 R=1/2 F1=1/2
	// macro = 7/12
	got := MacroF1([]int{1, 1, 1, 0, 0}, []int{1, 0, 1, 0, 1}, 2)
	if math.Abs(got-7.0/12.0) > 1e-12 {
		t.Errorf("MacroF1 = %v, want %v", got, 7.0/12.0)
	}
}

func TestMacroF1PerfectAndWorst(t *testing.T) {
	if got := MacroF1([]int{0, 1, 2}, []int{0, 1, 2}, 3); got != 1 {
		t.Errorf("perfect F1 = %v", got)
	}
	if got := MacroF1([]int{0, 0, 0}, []int{1, 1, 1}, 2); got != 0 {
		t.Errorf("all-wrong F1 = %v", got)
	}
}

func TestTrainTestSplit(t *testing.T) {
	train, test := TrainTestSplit(100, 0.3, 1)
	if len(test) != 30 || len(train) != 70 {
		t.Errorf("split = %d/%d", len(train), len(test))
	}
	seen := make(map[int]bool)
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatal("index appears twice")
		}
		seen[i] = true
	}
	if len(seen) != 100 {
		t.Errorf("split covers %d of 100", len(seen))
	}
	// Degenerate sizes.
	train, test = TrainTestSplit(2, 0.01, 1)
	if len(test) != 1 || len(train) != 1 {
		t.Errorf("tiny split = %d/%d", len(train), len(test))
	}
	train, test = TrainTestSplit(0, 0.5, 1)
	if train != nil || test != nil {
		t.Error("n=0 should return nil")
	}
}
