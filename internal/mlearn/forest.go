package mlearn

import (
	"fmt"
	"math"

	"repro/internal/simrand"
)

// ForestConfig controls random-forest training. The zero value plus
// defaults mirrors scikit-learn's RandomForestClassifier defaults, which is
// what the paper uses ("default parameters without tuning").
type ForestConfig struct {
	// NumTrees is the ensemble size (scikit default 100).
	NumTrees int
	// Tree holds the per-tree settings; Tree.MaxFeatures <= 0 selects
	// sqrt(d), the scikit default for classification.
	Tree TreeConfig
	// Seed drives bootstrap sampling and feature subsampling.
	Seed uint64
}

// Forest is a trained bagging ensemble of CART trees.
type Forest struct {
	trees    []*Tree
	nClasses int
}

// TrainForest fits a random forest on X and labels y in [0, nClasses).
func TrainForest(X [][]float64, y []int, nClasses int, cfg ForestConfig) (*Forest, error) {
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 100
	}
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("mlearn: bad training set: %d rows, %d labels", len(X), len(y))
	}
	d := len(X[0])
	if cfg.Tree.MaxFeatures <= 0 {
		cfg.Tree.MaxFeatures = int(math.Max(1, math.Round(math.Sqrt(float64(d)))))
	}
	root := simrand.New(cfg.Seed)
	f := &Forest{nClasses: nClasses}
	n := len(X)
	for t := 0; t < cfg.NumTrees; t++ {
		rng := root.StreamN("tree", t)
		// Bootstrap sample with replacement.
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = X[j]
			by[i] = y[j]
		}
		tree, err := TrainTree(bx, by, nClasses, cfg.Tree, rng)
		if err != nil {
			return nil, fmt.Errorf("mlearn: training tree %d: %w", t, err)
		}
		f.trees = append(f.trees, tree)
	}
	return f, nil
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Proba returns the ensemble-average class distribution for one sample.
func (f *Forest) Proba(x []float64) []float64 {
	out := make([]float64, f.nClasses)
	for _, t := range f.trees {
		p := t.Proba(x)
		for i := range out {
			out[i] += p[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(f.trees))
	}
	return out
}

// Predict returns the majority-probability class for one sample.
func (f *Forest) Predict(x []float64) int {
	p := f.Proba(x)
	best, bestV := 0, -1.0
	for i, v := range p {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// PredictAll classifies every row.
func (f *Forest) PredictAll(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = f.Predict(x)
	}
	return out
}

// --- Metrics and splitting --------------------------------------------------

// Accuracy returns the fraction of matching labels.
func Accuracy(yTrue, yPred []int) float64 {
	if len(yTrue) == 0 || len(yTrue) != len(yPred) {
		return math.NaN()
	}
	hits := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(yTrue))
}

// ConfusionMatrix returns m[trueClass][predClass] counts.
func ConfusionMatrix(yTrue, yPred []int, nClasses int) [][]int {
	m := make([][]int, nClasses)
	for i := range m {
		m[i] = make([]int, nClasses)
	}
	for i := range yTrue {
		if yTrue[i] >= 0 && yTrue[i] < nClasses && yPred[i] >= 0 && yPred[i] < nClasses {
			m[yTrue[i]][yPred[i]]++
		}
	}
	return m
}

// MacroF1 returns the unweighted mean of per-class F1 scores (the paper's
// F1 metric for the 3-class problem). Classes absent from both truth and
// prediction are skipped.
func MacroF1(yTrue, yPred []int, nClasses int) float64 {
	if len(yTrue) == 0 || len(yTrue) != len(yPred) {
		return math.NaN()
	}
	m := ConfusionMatrix(yTrue, yPred, nClasses)
	total, classes := 0.0, 0
	for c := 0; c < nClasses; c++ {
		tp := m[c][c]
		fp, fn := 0, 0
		for o := 0; o < nClasses; o++ {
			if o == c {
				continue
			}
			fp += m[o][c]
			fn += m[c][o]
		}
		if tp+fp+fn == 0 {
			continue // class absent everywhere
		}
		classes++
		if tp == 0 {
			continue // F1 = 0 contributes nothing
		}
		precision := float64(tp) / float64(tp+fp)
		recall := float64(tp) / float64(tp+fn)
		total += 2 * precision * recall / (precision + recall)
	}
	if classes == 0 {
		return math.NaN()
	}
	return total / float64(classes)
}

// TrainTestSplit returns shuffled train/test index sets with the given test
// fraction (at least one sample each when possible).
func TrainTestSplit(n int, testFrac float64, seed uint64) (train, test []int) {
	if n <= 0 {
		return nil, nil
	}
	rng := simrand.New(seed)
	perm := rng.Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest < 1 && n > 1 {
		nTest = 1
	}
	if nTest >= n {
		nTest = n - 1
	}
	return perm[nTest:], perm[:nTest]
}

// Subset gathers rows/labels by index.
func Subset(X [][]float64, y []int, idx []int) ([][]float64, []int) {
	sx := make([][]float64, len(idx))
	sy := make([]int, len(idx))
	for i, j := range idx {
		sx[i] = X[j]
		sy[i] = y[j]
	}
	return sx, sy
}
