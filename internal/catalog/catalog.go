// Package catalog models the static inventory of the simulated cloud: 17
// regions with 63 availability zones, and 547 spot-eligible instance types
// spread over the 16 instance classes the paper analyzes (T, M, A, C, R, X,
// Z, P, G, DL, Inf, F, VT, I, D, H — Figure 3). The counts match the paper's
// Section 3.1 ("about 547 instance types, 17 regions, and 63 availability
// zones"), which is what makes the query-optimization arithmetic of Figure 1
// (547 x 17 = 9,299 queries before optimization) come out the same.
//
// The catalog also carries the per-type region/AZ support matrix. Support is
// generated deterministically from family popularity tiers, so that the
// bin-packing collector plan lands at the paper's post-optimization query
// count (~2,226) and Figure 4's NA cells appear for the right classes.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/simrand"
)

// Class is an instance class (family group) as displayed on the vertical
// axis of Figures 3 and 4.
type Class string

// The sixteen instance classes of the paper, in figure display order:
// general (T, M, A), compute-optimized (C), memory-optimized (R, X, Z),
// accelerated computing (P, G, DL, Inf, F, VT), storage-optimized (I, D, H).
const (
	ClassT   Class = "T"
	ClassM   Class = "M"
	ClassA   Class = "A"
	ClassC   Class = "C"
	ClassR   Class = "R"
	ClassX   Class = "X"
	ClassZ   Class = "Z"
	ClassP   Class = "P"
	ClassG   Class = "G"
	ClassDL  Class = "DL"
	ClassInf Class = "Inf"
	ClassF   Class = "F"
	ClassVT  Class = "VT"
	ClassI   Class = "I"
	ClassD   Class = "D"
	ClassH   Class = "H"
)

// Classes lists all instance classes in figure display order.
var Classes = []Class{
	ClassT, ClassM, ClassA, ClassC, ClassR, ClassX, ClassZ,
	ClassP, ClassG, ClassDL, ClassInf, ClassF, ClassVT,
	ClassI, ClassD, ClassH,
}

// Accelerated reports whether the class belongs to the accelerated-computing
// family group (the group with the lowest availability in Section 5.1).
func (c Class) Accelerated() bool {
	switch c {
	case ClassP, ClassG, ClassDL, ClassInf, ClassF, ClassVT:
		return true
	}
	return false
}

// Group returns the paper's family-group label for the class.
func (c Class) Group() string {
	switch c {
	case ClassT, ClassM, ClassA:
		return "general"
	case ClassC:
		return "compute-optimized"
	case ClassR, ClassX, ClassZ:
		return "memory-optimized"
	case ClassP, ClassG, ClassDL, ClassInf, ClassF, ClassVT:
		return "accelerated-computing"
	case ClassI, ClassD, ClassH:
		return "storage-optimized"
	}
	return "unknown"
}

// Size is an instance size suffix ("xlarge", "2xlarge", ...).
type Size string

// sizeFactor maps a size to its capacity multiple relative to xlarge = 1.
var sizeFactor = map[Size]float64{
	"nano": 1.0 / 32, "micro": 1.0 / 16, "small": 1.0 / 8, "medium": 1.0 / 4,
	"large": 1.0 / 2, "xlarge": 1, "2xlarge": 2, "3xlarge": 3, "4xlarge": 4,
	"6xlarge": 6, "8xlarge": 8, "9xlarge": 9, "10xlarge": 10, "12xlarge": 12,
	"16xlarge": 16, "18xlarge": 18, "24xlarge": 24, "32xlarge": 32,
	"48xlarge": 48, "56xlarge": 56, "112xlarge": 112, "metal": 24,
}

// SizeFactor returns the capacity multiple of the size relative to xlarge,
// or 0 for an unknown size.
func SizeFactor(s Size) float64 { return sizeFactor[s] }

// SizeRank orders sizes from smallest to largest for presentation (Figure 5).
var sizeRank = map[Size]int{
	"nano": 0, "micro": 1, "small": 2, "medium": 3, "large": 4, "xlarge": 5,
	"2xlarge": 6, "3xlarge": 7, "4xlarge": 8, "6xlarge": 9, "8xlarge": 10,
	"9xlarge": 11, "10xlarge": 12, "12xlarge": 13, "16xlarge": 14,
	"18xlarge": 15, "24xlarge": 16, "32xlarge": 17, "48xlarge": 18,
	"56xlarge": 19, "112xlarge": 20, "metal": 21,
}

// SizeRank returns the presentation order of a size (smaller = smaller
// instance), or -1 for an unknown size.
func SizeRank(s Size) int {
	if r, ok := sizeRank[s]; ok {
		return r
	}
	return -1
}

// Region is a cloud region with its availability zones.
type Region struct {
	// Code is the full region code, e.g. "us-east-1".
	Code string
	// Short is the abbreviated code used in Figure 4, e.g. "us-e-1".
	Short string
	// AZs are the availability zone names, e.g. "us-east-1a".
	AZs []string
	// PriceMultiplier scales on-demand prices relative to us-east-1.
	PriceMultiplier float64
	// Popularity rank: 0 is the most popular region. Less popular regions
	// receive newer instance families later (i.e. support fewer of them).
	Popularity int
}

// InstanceType is one spot-eligible instance type.
type InstanceType struct {
	// Name is the API name, e.g. "m5.xlarge".
	Name string
	// Family is the generation prefix, e.g. "m5".
	Family string
	Class  Class
	Size   Size
	VCPU   int
	// MemoryGiB is the instance memory.
	MemoryGiB float64
	// Accelerator names the special hardware, if any ("nvidia-v100",
	// "gaudi", "inferentia", "fpga", "u30", or "" for none).
	Accelerator string
	// OnDemandUSD is the hourly on-demand price in the baseline region.
	OnDemandUSD float64
	// SizeFactor is the capacity multiple relative to xlarge = 1.
	SizeFactor float64
	// Tier is the family's availability tier: 0 = everywhere, larger =
	// fewer regions/AZs.
	Tier int
}

// Pool identifies one spot capacity pool: an instance type in one
// availability zone.
type Pool struct {
	Type   string
	Region string
	AZ     string
}

// String returns the canonical "type@az" pool label.
func (p Pool) String() string { return p.Type + "@" + p.AZ }

// Catalog is the immutable inventory of the simulated cloud.
type Catalog struct {
	regions []Region
	types   []InstanceType

	regionByCode map[string]*Region
	typeByName   map[string]*InstanceType
	// support maps type name -> region code -> supported AZ names (sorted).
	support map[string]map[string][]string
	// pools is the flattened list of all supported (type, AZ) pools.
	pools []Pool
}

// Regions returns all regions in popularity order.
func (c *Catalog) Regions() []Region { return c.regions }

// Types returns all instance types, sorted by name.
func (c *Catalog) Types() []InstanceType { return c.types }

// NumTypes returns the number of instance types.
func (c *Catalog) NumTypes() int { return len(c.types) }

// NumRegions returns the number of regions.
func (c *Catalog) NumRegions() int { return len(c.regions) }

// NumAZs returns the total availability zone count across regions.
func (c *Catalog) NumAZs() int {
	n := 0
	for _, r := range c.regions {
		n += len(r.AZs)
	}
	return n
}

// Region returns the region with the given code.
func (c *Catalog) Region(code string) (Region, bool) {
	r, ok := c.regionByCode[code]
	if !ok {
		return Region{}, false
	}
	return *r, true
}

// RegionOfAZ returns the region code owning the AZ name (by prefix).
func (c *Catalog) RegionOfAZ(az string) (string, bool) {
	// AZ names are region code + one letter.
	if len(az) < 2 {
		return "", false
	}
	code := az[:len(az)-1]
	if _, ok := c.regionByCode[code]; ok {
		return code, true
	}
	return "", false
}

// Type returns the instance type with the given name.
func (c *Catalog) Type(name string) (InstanceType, bool) {
	t, ok := c.typeByName[name]
	if !ok {
		return InstanceType{}, false
	}
	return *t, true
}

// TypesOfClass returns the instance types belonging to the class, sorted by
// name.
func (c *Catalog) TypesOfClass(cl Class) []InstanceType {
	var out []InstanceType
	for _, t := range c.types {
		if t.Class == cl {
			out = append(out, t)
		}
	}
	return out
}

// TypesOfSize returns the instance types with the given size, sorted by name.
func (c *Catalog) TypesOfSize(s Size) []InstanceType {
	var out []InstanceType
	for _, t := range c.types {
		if t.Size == s {
			out = append(out, t)
		}
	}
	return out
}

// SupportedAZs returns the AZ names of region that support the type.
func (c *Catalog) SupportedAZs(typeName, regionCode string) []string {
	m, ok := c.support[typeName]
	if !ok {
		return nil
	}
	return m[regionCode]
}

// SupportedRegions returns the region codes supporting the type, in region
// popularity order, paired with the count of supporting AZs.
func (c *Catalog) SupportedRegions(typeName string) []RegionAZCount {
	m, ok := c.support[typeName]
	if !ok {
		return nil
	}
	var out []RegionAZCount
	for _, r := range c.regions {
		if azs := m[r.Code]; len(azs) > 0 {
			out = append(out, RegionAZCount{Region: r.Code, AZCount: len(azs)})
		}
	}
	return out
}

// Supports reports whether the type is offered anywhere in the region.
func (c *Catalog) Supports(typeName, regionCode string) bool {
	return len(c.SupportedAZs(typeName, regionCode)) > 0
}

// RegionAZCount pairs a region with the number of its AZs supporting a type.
type RegionAZCount struct {
	Region  string
	AZCount int
}

// Pools returns every supported (type, AZ) pool. The slice is shared; do not
// mutate it.
func (c *Catalog) Pools() []Pool { return c.pools }

// PoolsOfType returns the pools for one instance type.
func (c *Catalog) PoolsOfType(typeName string) []Pool {
	var out []Pool
	m := c.support[typeName]
	for _, r := range c.regions {
		for _, az := range m[r.Code] {
			out = append(out, Pool{Type: typeName, Region: r.Code, AZ: az})
		}
	}
	return out
}

// OnDemandPrice returns the hourly on-demand price of the type in the given
// region, applying the regional multiplier. It returns false if the type or
// region is unknown.
func (c *Catalog) OnDemandPrice(typeName, regionCode string) (float64, bool) {
	t, ok := c.typeByName[typeName]
	if !ok {
		return 0, false
	}
	r, ok := c.regionByCode[regionCode]
	if !ok {
		return 0, false
	}
	return t.OnDemandUSD * r.PriceMultiplier, true
}

// build assembles the catalog from a family spec list and generates the
// support matrix. The internal RNG seed is fixed: the inventory is part of
// the simulated world, not of any particular experiment.
func build(specs []familySpec) *Catalog {
	c := &Catalog{
		regions:      regions(),
		regionByCode: make(map[string]*Region),
		typeByName:   make(map[string]*InstanceType),
		support:      make(map[string]map[string][]string),
	}
	for i := range c.regions {
		c.regionByCode[c.regions[i].Code] = &c.regions[i]
	}

	for _, fs := range specs {
		for _, sz := range fs.sizes {
			f, ok := sizeFactor[sz]
			if !ok {
				panic(fmt.Sprintf("catalog: unknown size %q in family %s", sz, fs.family))
			}
			vcpu := int(f * 4)
			if vcpu < 1 {
				vcpu = 1
			}
			t := InstanceType{
				Name:        fs.family + "." + string(sz),
				Family:      fs.family,
				Class:       fs.class,
				Size:        sz,
				VCPU:        vcpu,
				MemoryGiB:   float64(vcpu) * fs.memPerVCPU,
				Accelerator: fs.accelerator,
				OnDemandUSD: fs.xlargeUSD * f,
				SizeFactor:  f,
				Tier:        fs.tier,
			}
			c.types = append(c.types, t)
		}
	}
	sort.Slice(c.types, func(i, j int) bool { return c.types[i].Name < c.types[j].Name })
	for i := range c.types {
		c.typeByName[c.types[i].Name] = &c.types[i]
	}

	c.generateSupport(specs)
	return c
}

// generateSupport fills the per-type region/AZ support matrix from the
// family tier. Tiers control how widely a family is deployed:
//
//	tier 0: all regions, all AZs (mature general-purpose generations)
//	tier 1: top 13 regions, ~85% of AZs
//	tier 2: top 8 regions, ~70% of AZs
//	tier 3: top 4 regions, ~60% of AZs
//
// These fractions were chosen so the full catalog needs ~2.2k optimized
// placement-score queries (Figure 1's "after" count).
func (c *Catalog) generateSupport(specs []familySpec) {
	rng := simrand.New(0x5907AC) // fixed: world inventory, not experiment
	tierRegions := []int{len(c.regions), 13, 8, 4}
	tierAZFrac := []float64{1.0, 0.85, 0.70, 0.60}

	byPopularity := make([]Region, len(c.regions))
	copy(byPopularity, c.regions)
	sort.Slice(byPopularity, func(i, j int) bool {
		return byPopularity[i].Popularity < byPopularity[j].Popularity
	})

	famOfType := make(map[string]familySpec)
	for _, fs := range specs {
		famOfType[fs.family] = fs
	}

	for i := range c.types {
		t := &c.types[i]
		fs := famOfType[t.Family]
		nRegions := tierRegions[fs.tier]
		azFrac := tierAZFrac[fs.tier]
		frng := rng.Stream("support/" + t.Family)

		m := make(map[string][]string)
		for ri, r := range byPopularity {
			if ri >= nRegions {
				break
			}
			// A family deployed to a region is present in a stable subset
			// of its AZs; the subset depends on the family only, so all
			// sizes of a family share the footprint (as on AWS).
			var azs []string
			for _, az := range r.AZs {
				if frng.Bool(azFrac) {
					azs = append(azs, az)
				}
			}
			if len(azs) == 0 && azFrac > 0 {
				azs = append(azs, r.AZs[0])
			}
			sort.Strings(azs)
			m[r.Code] = azs
		}
		c.support[t.Name] = m
	}

	// Flatten pools in deterministic (type, region, az) order.
	for _, t := range c.types {
		m := c.support[t.Name]
		for _, r := range c.regions {
			for _, az := range m[r.Code] {
				c.pools = append(c.pools, Pool{Type: t.Name, Region: r.Code, AZ: az})
			}
		}
	}
}

// regions returns the 17 regions (63 AZs total) used by the paper's
// Figure 4, with the short codes shown on its horizontal axis.
func regions() []Region {
	mk := func(code, short string, azCount int, mult float64, pop int) Region {
		azs := make([]string, azCount)
		for i := range azs {
			azs[i] = code + string(rune('a'+i))
		}
		return Region{Code: code, Short: short, AZs: azs, PriceMultiplier: mult, Popularity: pop}
	}
	return []Region{
		mk("us-east-1", "us-e-1", 6, 1.00, 0),
		mk("us-east-2", "us-e-2", 4, 1.00, 5),
		mk("us-west-1", "us-w-1", 3, 1.17, 9),
		mk("us-west-2", "us-w-2", 4, 1.00, 1),
		mk("ca-central-1", "ca-c-1", 3, 1.10, 11),
		mk("sa-east-1", "sa-e-1", 3, 1.59, 12),
		mk("ap-northeast-1", "ap-ne-1", 4, 1.29, 3),
		mk("ap-northeast-2", "ap-ne-2", 4, 1.23, 13),
		mk("ap-northeast-3", "ap-ne-3", 3, 1.29, 16),
		mk("ap-south-1", "ap-s-1", 3, 1.06, 8),
		mk("ap-southeast-1", "ap-se-1", 4, 1.25, 6),
		mk("ap-southeast-2", "ap-se-2", 4, 1.25, 7),
		mk("eu-central-1", "eu-c-1", 4, 1.15, 4),
		mk("eu-north-1", "eu-n-1", 3, 1.05, 14),
		mk("eu-west-1", "eu-w-1", 4, 1.11, 2),
		mk("eu-west-2", "eu-w-2", 4, 1.16, 10),
		mk("eu-west-3", "eu-w-3", 3, 1.16, 15),
	}
}

// Standard returns the full 547-type catalog. The catalog is rebuilt on each
// call; callers should reuse the returned value.
func Standard() *Catalog { return build(standardFamilies()) }

// Compact returns a reduced catalog with at most perClass types per class,
// chosen to cover the size spectrum of each class. Regions, AZs, and support
// tiers are unchanged. Compact catalogs make the 181-day collection runs of
// Figures 3-10 affordable in tests while preserving every class and region.
func Compact(perClass int) *Catalog {
	if perClass <= 0 {
		panic("catalog: Compact perClass must be positive")
	}
	full := standardFamilies()
	std := build(full)

	keep := make(map[string]bool)
	for _, cl := range Classes {
		types := std.TypesOfClass(cl)
		// Order by size rank then name so the selection spreads across
		// sizes deterministically.
		sort.Slice(types, func(i, j int) bool {
			ri, rj := SizeRank(types[i].Size), SizeRank(types[j].Size)
			if ri != rj {
				return ri < rj
			}
			return types[i].Name < types[j].Name
		})
		n := len(types)
		take := perClass
		if take > n {
			take = n
		}
		for k := 0; k < take; k++ {
			// Evenly spaced picks across the size-ordered list.
			idx := k * n / take
			keep[types[idx].Name] = true
		}
	}

	var specs []familySpec
	for _, fs := range full {
		var sizes []Size
		for _, sz := range fs.sizes {
			if keep[fs.family+"."+string(sz)] {
				sizes = append(sizes, sz)
			}
		}
		if len(sizes) > 0 {
			fs.sizes = sizes
			specs = append(specs, fs)
		}
	}
	return build(specs)
}

// Sample returns a reduced catalog keeping roughly frac of each class's
// types (at least one per class), preserving the standard catalog's class
// mix. Use it when a measurement must reflect the full inventory's class
// proportions (e.g. the Table 2 marginals) at reduced cost.
func Sample(frac float64) *Catalog {
	if frac <= 0 || frac > 1 {
		panic("catalog: Sample frac must be in (0, 1]")
	}
	full := standardFamilies()
	std := build(full)
	keep := make(map[string]bool)
	for _, cl := range Classes {
		types := std.TypesOfClass(cl)
		sort.Slice(types, func(i, j int) bool {
			ri, rj := SizeRank(types[i].Size), SizeRank(types[j].Size)
			if ri != rj {
				return ri < rj
			}
			return types[i].Name < types[j].Name
		})
		n := len(types)
		take := int(float64(n)*frac + 0.5)
		if take < 1 {
			take = 1
		}
		for k := 0; k < take; k++ {
			keep[types[k*n/take].Name] = true
		}
	}
	var specs []familySpec
	for _, fs := range full {
		var sizes []Size
		for _, sz := range fs.sizes {
			if keep[fs.family+"."+string(sz)] {
				sizes = append(sizes, sz)
			}
		}
		if len(sizes) > 0 {
			fs.sizes = sizes
			specs = append(specs, fs)
		}
	}
	return build(specs)
}

// ParseTypeName splits an instance type name into family and size.
func ParseTypeName(name string) (family string, size Size, err error) {
	i := strings.IndexByte(name, '.')
	if i <= 0 || i == len(name)-1 {
		return "", "", fmt.Errorf("catalog: malformed instance type name %q", name)
	}
	return name[:i], Size(name[i+1:]), nil
}
