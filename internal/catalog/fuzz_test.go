package catalog

import "testing"

func FuzzParseTypeName(f *testing.F) {
	f.Add("m5.xlarge")
	f.Add("u-6tb1.112xlarge")
	f.Add("")
	f.Add(".")
	f.Add("m5.")
	f.Add(".xlarge")
	f.Add("a.b.c")
	f.Fuzz(func(t *testing.T, s string) {
		fam, size, err := ParseTypeName(s)
		if err != nil {
			return
		}
		if fam == "" || size == "" {
			t.Fatalf("ParseTypeName(%q) accepted empty component: %q %q", s, fam, size)
		}
		// Reconstruction contains the original parts in order.
		if got := fam + "." + string(size); got != s {
			t.Fatalf("reconstruction %q != input %q", got, s)
		}
	})
}
