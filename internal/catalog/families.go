package catalog

// familySpec describes one instance family (generation): which class it
// belongs to, which sizes it is offered in, its pricing and hardware, and
// how widely it is deployed (tier).
type familySpec struct {
	family      string
	class       Class
	sizes       []Size
	memPerVCPU  float64 // GiB per vCPU
	accelerator string
	xlargeUSD   float64 // on-demand $/h for the xlarge-equivalent
	tier        int     // 0 = deployed everywhere ... 3 = few regions
}

// Common size ladders.
var (
	sizesBurst = []Size{"nano", "micro", "small", "medium", "large", "xlarge", "2xlarge"}
	sizesGP9   = []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "24xlarge", "metal"}
	sizesGP8   = []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "24xlarge"}
	sizesGrav9 = []Size{"medium", "large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "metal"}
	sizesGrav8 = []Size{"medium", "large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge"}
	sizesI10   = []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "24xlarge", "32xlarge", "metal"}
	sizesC9    = []Size{"large", "xlarge", "2xlarge", "4xlarge", "9xlarge", "12xlarge", "18xlarge", "24xlarge", "metal"}
	sizesZN7   = []Size{"large", "xlarge", "2xlarge", "3xlarge", "6xlarge", "12xlarge", "metal"}
)

// standardFamilies returns the family table producing exactly 547 instance
// types, matching the paper's count (Section 3.1). The generations mirror
// the AWS lineup at the paper's collection time (H1 2022).
func standardFamilies() []familySpec {
	return []familySpec{
		// --- General purpose: burstable (T) ---
		{"t2", ClassT, sizesBurst, 4, "", 0.1856, 0},
		{"t3", ClassT, sizesBurst, 4, "", 0.1664, 0},
		{"t3a", ClassT, sizesBurst, 4, "", 0.1504, 1},
		{"t4g", ClassT, sizesBurst, 4, "", 0.1344, 1},

		// --- General purpose (M) ---
		{"m4", ClassM, []Size{"large", "xlarge", "2xlarge", "4xlarge", "10xlarge", "16xlarge"}, 4, "", 0.20, 0},
		{"m5", ClassM, sizesGP9, 4, "", 0.192, 0},
		{"m5a", ClassM, sizesGP8, 4, "", 0.172, 0},
		{"m5ad", ClassM, sizesGP8, 4, "", 0.206, 2},
		{"m5d", ClassM, sizesGP9, 4, "", 0.226, 0},
		{"m5dn", ClassM, sizesGP9, 4, "", 0.272, 1},
		{"m5n", ClassM, sizesGP9, 4, "", 0.238, 1},
		{"m5zn", ClassM, sizesZN7, 4, "", 0.3303, 2},
		{"m6a", ClassM, []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "24xlarge", "32xlarge", "48xlarge"}, 4, "", 0.1728, 2},
		{"m6g", ClassM, sizesGrav9, 4, "", 0.154, 1},
		{"m6gd", ClassM, sizesGrav9, 4, "", 0.1808, 2},
		{"m6i", ClassM, sizesI10, 4, "", 0.192, 1},
		{"m6id", ClassM, sizesI10, 4, "", 0.2373, 2},
		{"m6idn", ClassM, sizesI10, 4, "", 0.3119, 3},
		{"m6in", ClassM, sizesI10, 4, "", 0.2786, 3},

		// --- General purpose: Arm first generation (A) ---
		{"a1", ClassA, []Size{"medium", "large", "xlarge", "2xlarge", "4xlarge", "metal"}, 2, "", 0.102, 2},

		// --- Compute optimized (C) ---
		{"c4", ClassC, []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge"}, 1.875, "", 0.199, 0},
		{"c5", ClassC, sizesC9, 2, "", 0.17, 0},
		{"c5a", ClassC, []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "24xlarge"}, 2, "", 0.154, 1},
		{"c5ad", ClassC, []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "24xlarge"}, 2, "", 0.172, 2},
		{"c5d", ClassC, sizesC9, 2, "", 0.192, 0},
		{"c5n", ClassC, []Size{"large", "xlarge", "2xlarge", "4xlarge", "9xlarge", "18xlarge", "metal"}, 2.625, "", 0.216, 1},
		{"c6a", ClassC, []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "24xlarge", "32xlarge", "48xlarge", "metal"}, 2, "", 0.153, 2},
		{"c6g", ClassC, sizesGrav9, 2, "", 0.136, 1},
		{"c6gd", ClassC, sizesGrav9, 2, "", 0.1536, 2},
		{"c6gn", ClassC, sizesGrav8, 2, "", 0.1728, 2},
		{"c6i", ClassC, sizesI10, 2, "", 0.17, 1},
		{"c6id", ClassC, sizesI10, 2, "", 0.2016, 2},
		{"c6in", ClassC, sizesI10, 2, "", 0.2268, 3},
		{"c7g", ClassC, sizesGrav8, 2, "", 0.145, 3},

		// --- Memory optimized (R) ---
		{"r4", ClassR, []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge"}, 7.625, "", 0.266, 0},
		{"r5", ClassR, sizesGP9, 8, "", 0.252, 0},
		{"r5a", ClassR, sizesGP8, 8, "", 0.226, 0},
		{"r5ad", ClassR, sizesGP8, 8, "", 0.262, 2},
		{"r5b", ClassR, sizesGP9, 8, "", 0.298, 1},
		{"r5d", ClassR, sizesGP9, 8, "", 0.288, 0},
		{"r5dn", ClassR, sizesGP9, 8, "", 0.334, 1},
		{"r5n", ClassR, sizesGP9, 8, "", 0.298, 1},
		{"r6g", ClassR, sizesGrav9, 8, "", 0.2016, 1},
		{"r6gd", ClassR, sizesGrav9, 8, "", 0.2304, 2},
		{"r6i", ClassR, sizesI10, 8, "", 0.252, 1},
		{"r6id", ClassR, sizesI10, 8, "", 0.3024, 2},

		// --- Memory optimized: extra-large memory (X) ---
		{"x1", ClassX, []Size{"16xlarge", "32xlarge"}, 15.25, "", 0.417, 1},
		{"x1e", ClassX, []Size{"xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge", "32xlarge"}, 30.5, "", 0.834, 0},
		{"x2gd", ClassX, sizesGrav9, 16, "", 0.334, 1},
		{"x2idn", ClassX, []Size{"16xlarge", "24xlarge", "32xlarge", "metal"}, 16, "", 0.417, 2},
		{"x2iedn", ClassX, []Size{"xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge", "24xlarge", "32xlarge", "metal"}, 32, "", 0.8335, 2},
		{"x2iezn", ClassX, []Size{"2xlarge", "4xlarge", "6xlarge", "8xlarge", "12xlarge", "metal"}, 32, "", 0.8336, 2},
		{"u-3tb1", ClassX, []Size{"56xlarge"}, 13.7, "", 0.4875, 3},
		{"u-6tb1", ClassX, []Size{"56xlarge", "112xlarge"}, 27.4, "", 0.975, 3},

		// --- Memory optimized: high frequency (Z) ---
		{"z1d", ClassZ, sizesZN7, 8, "", 0.372, 1},

		// --- Accelerated computing: GPU training (P) ---
		{"p2", ClassP, []Size{"xlarge", "8xlarge", "16xlarge"}, 15.25, "nvidia-k80", 0.90, 1},
		{"p3", ClassP, []Size{"2xlarge", "8xlarge", "16xlarge"}, 15.25, "nvidia-v100", 1.53, 1},
		{"p3dn", ClassP, []Size{"24xlarge"}, 8, "nvidia-v100", 1.2996, 2},
		{"p4d", ClassP, []Size{"24xlarge"}, 12, "nvidia-a100", 1.3655, 2},
		{"p4de", ClassP, []Size{"24xlarge"}, 12, "nvidia-a100-80g", 1.7069, 3},

		// --- Accelerated computing: GPU graphics/inference (G) ---
		{"g2", ClassG, []Size{"2xlarge", "8xlarge"}, 1.875, "nvidia-k520", 0.3250, 2},
		{"g3s", ClassG, []Size{"xlarge"}, 7.625, "nvidia-m60", 0.75, 2},
		{"g3", ClassG, []Size{"4xlarge", "8xlarge", "16xlarge"}, 7.625, "nvidia-m60", 0.285, 1},
		{"g4ad", ClassG, []Size{"xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge"}, 4, "amd-v520", 0.3785, 1},
		{"g4dn", ClassG, []Size{"xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "metal"}, 4, "nvidia-t4", 0.526, 1},
		{"g5", ClassG, []Size{"xlarge", "2xlarge", "4xlarge", "8xlarge", "12xlarge", "16xlarge", "24xlarge", "48xlarge"}, 4, "nvidia-a10g", 1.006, 1},
		{"g5g", ClassG, []Size{"xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge", "metal"}, 4, "nvidia-t4g", 0.42, 2},

		// --- Accelerated computing: DNN training ASIC (DL) ---
		{"dl1", ClassDL, []Size{"24xlarge"}, 8, "gaudi", 0.5458, 3},

		// --- Accelerated computing: inference ASIC (Inf) ---
		{"inf1", ClassInf, []Size{"xlarge", "2xlarge", "6xlarge", "24xlarge"}, 2, "inferentia", 0.228, 1},

		// --- Accelerated computing: FPGA (F) ---
		{"f1", ClassF, []Size{"2xlarge", "4xlarge", "16xlarge"}, 15.25, "fpga", 0.825, 2},

		// --- Accelerated computing: video transcoding (VT) ---
		{"vt1", ClassVT, []Size{"3xlarge", "6xlarge", "24xlarge"}, 2, "u30", 0.4333, 2},

		// --- Storage optimized: NVMe (I) ---
		{"i2", ClassI, []Size{"xlarge", "2xlarge", "4xlarge", "8xlarge"}, 7.625, "", 0.853, 2},
		{"i3", ClassI, []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge", "metal"}, 7.625, "", 0.312, 0},
		{"i3en", ClassI, []Size{"large", "xlarge", "2xlarge", "3xlarge", "6xlarge", "12xlarge", "24xlarge", "metal"}, 8, "", 0.452, 1},
		{"i4i", ClassI, []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge", "32xlarge", "metal"}, 8, "", 0.343, 1},
		{"im4gn", ClassI, []Size{"large", "xlarge", "2xlarge", "4xlarge", "8xlarge", "16xlarge"}, 4, "", 0.3638, 2},
		{"is4gen", ClassI, []Size{"medium", "large", "xlarge", "2xlarge", "4xlarge", "8xlarge"}, 6, "", 0.4608, 2},

		// --- Storage optimized: dense HDD (D) ---
		{"d2", ClassD, []Size{"xlarge", "2xlarge", "4xlarge", "8xlarge"}, 7.625, "", 0.69, 0},
		{"d3", ClassD, []Size{"xlarge", "2xlarge", "4xlarge", "8xlarge"}, 8, "", 0.499, 2},
		{"d3en", ClassD, []Size{"xlarge", "2xlarge", "4xlarge", "6xlarge", "8xlarge", "12xlarge"}, 4, "", 0.5264, 2},

		// --- Storage optimized: HDD throughput (H) ---
		{"h1", ClassH, []Size{"2xlarge", "4xlarge", "8xlarge", "16xlarge"}, 4, "", 0.234, 2},
	}
}
