package catalog

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestStandardCounts(t *testing.T) {
	c := Standard()
	if got := c.NumTypes(); got != 547 {
		t.Errorf("NumTypes = %d, want 547 (paper Section 3.1)", got)
	}
	if got := c.NumRegions(); got != 17 {
		t.Errorf("NumRegions = %d, want 17", got)
	}
	if got := c.NumAZs(); got != 63 {
		t.Errorf("NumAZs = %d, want 63", got)
	}
}

func TestAllClassesPresent(t *testing.T) {
	c := Standard()
	for _, cl := range Classes {
		if len(c.TypesOfClass(cl)) == 0 {
			t.Errorf("class %s has no instance types", cl)
		}
	}
}

func TestClassGrouping(t *testing.T) {
	accel := map[Class]bool{ClassP: true, ClassG: true, ClassDL: true, ClassInf: true, ClassF: true, ClassVT: true}
	for _, cl := range Classes {
		if got := cl.Accelerated(); got != accel[cl] {
			t.Errorf("%s.Accelerated() = %v, want %v", cl, got, accel[cl])
		}
	}
	if g := ClassM.Group(); g != "general" {
		t.Errorf("ClassM.Group() = %q", g)
	}
	if g := ClassI.Group(); g != "storage-optimized" {
		t.Errorf("ClassI.Group() = %q", g)
	}
	if g := ClassDL.Group(); g != "accelerated-computing" {
		t.Errorf("ClassDL.Group() = %q", g)
	}
}

func TestTypeLookup(t *testing.T) {
	c := Standard()
	it, ok := c.Type("m5.xlarge")
	if !ok {
		t.Fatal("m5.xlarge not found")
	}
	if it.Class != ClassM || it.Family != "m5" || it.Size != "xlarge" {
		t.Errorf("m5.xlarge = %+v", it)
	}
	if it.SizeFactor != 1 {
		t.Errorf("m5.xlarge SizeFactor = %v, want 1", it.SizeFactor)
	}
	if _, ok := c.Type("m5.27xlarge"); ok {
		t.Error("nonexistent type found")
	}
}

func TestSizeFactorMonotone(t *testing.T) {
	// Larger size ranks (excluding metal, whose hardware varies) must have
	// larger size factors.
	ordered := []Size{"nano", "micro", "small", "medium", "large", "xlarge",
		"2xlarge", "3xlarge", "4xlarge", "6xlarge", "8xlarge", "9xlarge",
		"10xlarge", "12xlarge", "16xlarge", "18xlarge", "24xlarge",
		"32xlarge", "48xlarge", "56xlarge", "112xlarge"}
	for i := 1; i < len(ordered); i++ {
		lo, hi := SizeFactor(ordered[i-1]), SizeFactor(ordered[i])
		if !(lo < hi) {
			t.Errorf("SizeFactor(%s)=%v >= SizeFactor(%s)=%v", ordered[i-1], lo, ordered[i], hi)
		}
		if SizeRank(ordered[i-1]) >= SizeRank(ordered[i]) {
			t.Errorf("SizeRank not increasing at %s", ordered[i])
		}
	}
	if SizeFactor("bogus") != 0 {
		t.Error("unknown size should have factor 0")
	}
	if SizeRank("bogus") != -1 {
		t.Error("unknown size should have rank -1")
	}
}

func TestSupportMatrixInvariants(t *testing.T) {
	c := Standard()
	for _, it := range c.Types() {
		regs := c.SupportedRegions(it.Name)
		if len(regs) == 0 {
			t.Fatalf("type %s supported nowhere", it.Name)
		}
		total := 0
		for _, rc := range regs {
			azs := c.SupportedAZs(it.Name, rc.Region)
			if len(azs) != rc.AZCount {
				t.Fatalf("type %s region %s: AZCount %d != len(azs) %d", it.Name, rc.Region, rc.AZCount, len(azs))
			}
			r, ok := c.Region(rc.Region)
			if !ok {
				t.Fatalf("unknown region %s", rc.Region)
			}
			if len(azs) > len(r.AZs) {
				t.Fatalf("type %s region %s: more supported AZs than region has", it.Name, rc.Region)
			}
			for _, az := range azs {
				if !strings.HasPrefix(az, rc.Region) {
					t.Fatalf("AZ %s not in region %s", az, rc.Region)
				}
			}
			total += len(azs)
		}
		if total == 0 {
			t.Fatalf("type %s has zero supported AZs", it.Name)
		}
	}
}

func TestTier0DeployedEverywhere(t *testing.T) {
	c := Standard()
	it, ok := c.Type("m5.xlarge")
	if !ok || it.Tier != 0 {
		t.Fatalf("m5.xlarge should exist at tier 0, got %+v ok=%v", it, ok)
	}
	regs := c.SupportedRegions("m5.xlarge")
	if len(regs) != 17 {
		t.Errorf("tier-0 m5.xlarge in %d regions, want 17", len(regs))
	}
	n := 0
	for _, rc := range regs {
		n += rc.AZCount
	}
	if n != 63 {
		t.Errorf("tier-0 m5.xlarge in %d AZs, want all 63", n)
	}
}

func TestTier3DeployedNarrowly(t *testing.T) {
	c := Standard()
	regs := c.SupportedRegions("dl1.24xlarge")
	if len(regs) == 0 || len(regs) > 4 {
		t.Errorf("tier-3 dl1.24xlarge in %d regions, want 1..4", len(regs))
	}
}

func TestPoolsConsistent(t *testing.T) {
	c := Standard()
	pools := c.Pools()
	if len(pools) == 0 {
		t.Fatal("no pools")
	}
	// Every pool's AZ must belong to its region and be supported.
	seen := make(map[Pool]bool, len(pools))
	for _, p := range pools {
		if seen[p] {
			t.Fatalf("duplicate pool %v", p)
		}
		seen[p] = true
		reg, ok := c.RegionOfAZ(p.AZ)
		if !ok || reg != p.Region {
			t.Fatalf("pool %v: AZ region mismatch (%s)", p, reg)
		}
	}
	// Spot-check aggregate: pools of one type equal its support matrix size.
	for _, name := range []string{"m5.xlarge", "p3.2xlarge", "dl1.24xlarge"} {
		want := 0
		for _, rc := range c.SupportedRegions(name) {
			want += rc.AZCount
		}
		if got := len(c.PoolsOfType(name)); got != want {
			t.Errorf("PoolsOfType(%s) = %d, want %d", name, got, want)
		}
	}
}

func TestOnDemandPrice(t *testing.T) {
	c := Standard()
	base, ok := c.OnDemandPrice("m5.xlarge", "us-east-1")
	if !ok || base <= 0 {
		t.Fatalf("OnDemandPrice(m5.xlarge, us-east-1) = %v, %v", base, ok)
	}
	twoXL, _ := c.OnDemandPrice("m5.2xlarge", "us-east-1")
	if twoXL <= base {
		t.Errorf("2xlarge (%v) should cost more than xlarge (%v)", twoXL, base)
	}
	sa, _ := c.OnDemandPrice("m5.xlarge", "sa-east-1")
	if sa <= base {
		t.Errorf("sa-east-1 (%v) should cost more than us-east-1 (%v)", sa, base)
	}
	if _, ok := c.OnDemandPrice("m5.xlarge", "mars-north-1"); ok {
		t.Error("price for unknown region should fail")
	}
	if _, ok := c.OnDemandPrice("warp9.xlarge", "us-east-1"); ok {
		t.Error("price for unknown type should fail")
	}
}

func TestCompactCatalog(t *testing.T) {
	c := Compact(4)
	if c.NumRegions() != 17 || c.NumAZs() != 63 {
		t.Errorf("compact catalog regions/AZs changed: %d/%d", c.NumRegions(), c.NumAZs())
	}
	for _, cl := range Classes {
		n := len(c.TypesOfClass(cl))
		if n == 0 {
			t.Errorf("compact catalog lost class %s", cl)
		}
		if n > 4 {
			t.Errorf("compact catalog class %s has %d types, want <= 4", cl, n)
		}
	}
	if c.NumTypes() >= Standard().NumTypes() {
		t.Error("compact catalog not smaller than standard")
	}
}

func TestCompactDeterministic(t *testing.T) {
	a, b := Compact(3), Compact(3)
	if a.NumTypes() != b.NumTypes() {
		t.Fatalf("compact catalogs differ in size: %d vs %d", a.NumTypes(), b.NumTypes())
	}
	for i := range a.Types() {
		if a.Types()[i].Name != b.Types()[i].Name {
			t.Fatalf("compact catalogs differ at %d: %s vs %s", i, a.Types()[i].Name, b.Types()[i].Name)
		}
	}
}

func TestParseTypeName(t *testing.T) {
	fam, sz, err := ParseTypeName("m5.xlarge")
	if err != nil || fam != "m5" || sz != "xlarge" {
		t.Errorf("ParseTypeName(m5.xlarge) = %q,%q,%v", fam, sz, err)
	}
	for _, bad := range []string{"", "m5", ".xlarge", "m5."} {
		if _, _, err := ParseTypeName(bad); err == nil {
			t.Errorf("ParseTypeName(%q) should fail", bad)
		}
	}
}

func TestParseTypeNameRoundTripProperty(t *testing.T) {
	c := Standard()
	// Property: every catalog type name parses back into its own family and
	// size.
	f := func(i uint) bool {
		it := c.Types()[int(i%uint(c.NumTypes()))]
		fam, sz, err := ParseTypeName(it.Name)
		return err == nil && fam == it.Family && sz == it.Size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionShortCodes(t *testing.T) {
	// Figure 4's axis uses short codes; make sure they are unique and map
	// back to their regions.
	c := Standard()
	seen := map[string]string{}
	for _, r := range c.Regions() {
		if prev, dup := seen[r.Short]; dup {
			t.Errorf("short code %s used by %s and %s", r.Short, prev, r.Code)
		}
		seen[r.Short] = r.Code
		if len(r.AZs) == 0 {
			t.Errorf("region %s has no AZs", r.Code)
		}
	}
}
