package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType is a metric's exposition type.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// registered is one metric the registry will expose. Exactly one of the
// source fields is set, matching typ.
type registered struct {
	name, help string
	typ        MetricType

	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// Registry is a named collection of metrics. Registration is cheap and
// happens at wiring time (service construction); reads happen at scrape
// time. Metric names follow the spotlake_<subsystem>_<name> convention
// and must be valid Prometheus metric names.
//
// Re-registering an existing name with the same type replaces the
// metric's source. That choice is deliberate: serving-layer components
// are occasionally rebuilt in place (SetAdmission, a follower's store
// swap), and the freshest wiring must win; replacing with a different
// TYPE panics, because that is always a naming bug.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*registered
	ordered []*registered // registration order; exposition sorts by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*registered)}
}

// validMetricName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		letter := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(m *registered) {
	if !validMetricName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[m.name]; ok {
		if old.typ != m.typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", m.name, m.typ, old.typ))
		}
		*old = *m
		return
	}
	r.byName[m.name] = m
	r.ordered = append(r.ordered, m)
}

// Counter creates, registers, and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, c)
	return c
}

// RegisterCounter registers an existing counter (one a subsystem struct
// already owns) under name.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.register(&registered{name: name, help: help, typ: TypeCounter, counter: c})
}

// CounterFunc registers a counter whose value is read through fn at
// scrape time — for state owned by a component the registry outlives
// (e.g. a follower's swappable store).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(&registered{name: name, help: help, typ: TypeCounter, counterFn: fn})
}

// Gauge creates, registers, and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, g)
	return g
}

// RegisterGauge registers an existing gauge under name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) {
	r.register(&registered{name: name, help: help, typ: TypeGauge, gauge: g})
}

// GaugeFunc registers a gauge whose value is read through fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&registered{name: name, help: help, typ: TypeGauge, gaugeFn: fn})
}

// Histogram creates, registers, and returns a histogram over the given
// bucket bounds (seconds; see NewHistogram).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.RegisterHistogram(name, help, h)
	return h
}

// RegisterHistogram registers an existing histogram under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.register(&registered{name: name, help: help, typ: TypeHistogram, hist: h})
}

// snapshotMetrics captures the registration list so value reads run
// outside the registry lock (a gaugeFn may itself take locks).
func (r *Registry) snapshotMetrics() []*registered {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*registered, len(r.ordered))
	copy(out, r.ordered)
	return out
}

// Sample is one exposition sample: a metric name (with the _bucket /
// _sum / _count suffix already applied for histogram series), the
// bucket's le label for histogram buckets (empty otherwise), and the
// value.
type Sample struct {
	Name  string
	Le    string // set only on histogram _bucket samples
	Value float64
}

// Samples flattens the registry's current values: one sample per
// counter/gauge, and per histogram the cumulative buckets plus _sum and
// _count. Sorted by name (buckets in le order), matching the exposition.
func (r *Registry) Samples() []Sample {
	metrics := r.snapshotMetrics()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	var out []Sample
	for _, m := range metrics {
		switch m.typ {
		case TypeCounter:
			v := uint64(0)
			if m.counter != nil {
				v = m.counter.Value()
			} else {
				v = m.counterFn()
			}
			out = append(out, Sample{Name: m.name, Value: float64(v)})
		case TypeGauge:
			v := 0.0
			if m.gauge != nil {
				v = float64(m.gauge.Value())
			} else {
				v = m.gaugeFn()
			}
			out = append(out, Sample{Name: m.name, Value: v})
		case TypeHistogram:
			s := m.hist.Snapshot()
			cum := uint64(0)
			for i, b := range s.Bounds {
				cum += s.Counts[i]
				out = append(out, Sample{Name: m.name + "_bucket", Le: formatFloat(b), Value: float64(cum)})
			}
			cum += s.Counts[len(s.Bounds)]
			out = append(out, Sample{Name: m.name + "_bucket", Le: "+Inf", Value: float64(cum)})
			out = append(out, Sample{Name: m.name + "_sum", Value: s.Sum})
			out = append(out, Sample{Name: m.name + "_count", Value: float64(cum)})
		}
	}
	return out
}

// WritePrometheus writes every registered metric in Prometheus text
// exposition format (version 0.0.4), sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	metrics := r.snapshotMetrics()
	sort.Slice(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })
	var b strings.Builder
	for _, m := range metrics {
		b.Reset()
		if m.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(m.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(m.help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(m.name)
		b.WriteByte(' ')
		b.WriteString(string(m.typ))
		b.WriteByte('\n')
		switch m.typ {
		case TypeCounter:
			v := uint64(0)
			if m.counter != nil {
				v = m.counter.Value()
			} else {
				v = m.counterFn()
			}
			b.WriteString(m.name)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(v, 10))
			b.WriteByte('\n')
		case TypeGauge:
			v := 0.0
			if m.gauge != nil {
				v = float64(m.gauge.Value())
			} else {
				v = m.gaugeFn()
			}
			b.WriteString(m.name)
			b.WriteByte(' ')
			b.WriteString(formatFloat(v))
			b.WriteByte('\n')
		case TypeHistogram:
			s := m.hist.Snapshot()
			cum := uint64(0)
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, formatFloat(bound), cum)
			}
			cum += s.Counts[len(s.Bounds)]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, formatFloat(s.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, cum)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
