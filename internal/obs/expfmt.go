package obs

// A minimal reader for the Prometheus text exposition format — enough
// for the three consumers in this repo: cmd/metriclint (CI validates
// every scrape parses), cmd/spotlake-loadgen (folds end-of-run scrapes
// into `metric:` rows), and the archive tests (meta↔metrics agreement).
// It understands exactly what the registry emits: comment lines, bare
// samples, and histogram samples with a single le label.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseExposition reads Prometheus text exposition format into samples,
// enforcing the format strictly enough that a malformed scrape fails
// loudly rather than silently dropping series: every non-comment line
// must be `name[{le="bound"}] value`, names must be valid, values must
// parse, TYPE comments must name a known type, and histogram bucket
// series must be cumulative with ascending le bounds ending at +Inf and
// a matching _count.
func ParseExposition(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var samples []Sample
	types := make(map[string]MetricType)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, types); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := checkHistograms(samples, types); err != nil {
		return nil, err
	}
	return samples, nil
}

// parseComment validates `# HELP name text` / `# TYPE name type` lines;
// other comments pass through unchecked (the format allows them).
func parseComment(line string, types map[string]MetricType) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("obs: malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("obs: malformed TYPE comment %q", line)
		}
		switch MetricType(fields[3]) {
		case TypeCounter, TypeGauge, TypeHistogram:
			types[fields[2]] = MetricType(fields[3])
		default:
			return fmt.Errorf("obs: unknown metric type %q in %q", fields[3], line)
		}
	}
	return nil
}

// parseSample reads one sample line: `name value` or
// `name{le="bound"} value` (the only label the registry emits).
func parseSample(line string) (Sample, error) {
	var s Sample
	name, rest, found := strings.Cut(line, " ")
	if !found {
		return s, fmt.Errorf("obs: sample line %q has no value", line)
	}
	if i := strings.IndexByte(name, '{'); i >= 0 {
		labels := name[i:]
		name = name[:i]
		le, ok := strings.CutPrefix(labels, `{le="`)
		if !ok {
			return s, fmt.Errorf("obs: unsupported label set %q (only le is emitted)", labels)
		}
		le, ok = strings.CutSuffix(le, `"}`)
		if !ok || le == "" {
			return s, fmt.Errorf("obs: malformed le label in %q", line)
		}
		if _, err := parseLe(le); err != nil {
			return s, fmt.Errorf("obs: %q: %w", line, err)
		}
		s.Le = le
	}
	if !validMetricName(name) {
		return s, fmt.Errorf("obs: invalid metric name %q", name)
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return s, fmt.Errorf("obs: sample %q: %w", line, err)
	}
	s.Name, s.Value = name, v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistograms cross-checks every TYPE histogram family: bucket
// counts must be cumulative over strictly ascending le bounds, the
// family must end in an +Inf bucket, and _count must equal it.
func checkHistograms(samples []Sample, types map[string]MetricType) error {
	for name, t := range types {
		if t != TypeHistogram {
			continue
		}
		var (
			lastLe    = math.Inf(-1)
			lastCum   float64
			haveInf   bool
			infCum    float64
			count     float64
			haveCount bool
			buckets   int
		)
		for _, s := range samples {
			switch s.Name {
			case name + "_bucket":
				le, err := parseLe(s.Le)
				if err != nil {
					return fmt.Errorf("obs: histogram %s: bad le %q", name, s.Le)
				}
				if le <= lastLe {
					return fmt.Errorf("obs: histogram %s: le %q out of order", name, s.Le)
				}
				if s.Value < lastCum {
					return fmt.Errorf("obs: histogram %s: bucket le=%q count %v below previous %v (not cumulative)",
						name, s.Le, s.Value, lastCum)
				}
				lastLe, lastCum, buckets = le, s.Value, buckets+1
				if math.IsInf(le, 1) {
					haveInf, infCum = true, s.Value
				}
			case name + "_count":
				count, haveCount = s.Value, true
			}
		}
		if buckets == 0 {
			return fmt.Errorf("obs: histogram %s has no _bucket samples", name)
		}
		if !haveInf {
			return fmt.Errorf("obs: histogram %s has no le=\"+Inf\" bucket", name)
		}
		if !haveCount || count != infCum {
			return fmt.Errorf("obs: histogram %s: _count %v != +Inf bucket %v", name, count, infCum)
		}
	}
	return nil
}

// SnapshotFromSamples rebuilds a mergeable HistogramSnapshot for the
// named histogram family out of parsed exposition samples — what a
// scrape consumer needs to recompute the same bucket-derived quantiles
// the server reports in /api/v1/meta.
func SnapshotFromSamples(samples []Sample, name string) (HistogramSnapshot, error) {
	var snap HistogramSnapshot
	var cums []float64
	for _, s := range samples {
		switch s.Name {
		case name + "_bucket":
			le, err := parseLe(s.Le)
			if err != nil {
				return snap, fmt.Errorf("obs: histogram %s: bad le %q", name, s.Le)
			}
			if !math.IsInf(le, 1) {
				snap.Bounds = append(snap.Bounds, le)
			}
			cums = append(cums, s.Value)
		case name + "_sum":
			snap.Sum = s.Value
		}
	}
	if len(cums) == 0 {
		return snap, fmt.Errorf("obs: no histogram samples for %s", name)
	}
	snap.Counts = make([]uint64, len(cums))
	prev := 0.0
	for i, c := range cums {
		snap.Counts[i] = uint64(c - prev)
		prev = c
	}
	snap.Count = uint64(prev)
	return snap, nil
}
