// Package obs is SpotLake's observability primitive layer: a
// dependency-free typed metrics kit — atomic counters, gauges, and
// fixed-bucket latency histograms — plus a registry that exposes every
// registered metric in Prometheus text exposition format.
//
// Design constraints, in order:
//
//   - One state, many surfaces. A subsystem owns exactly one Counter
//     per fact; /api/v1/meta's JSON sections and /api/v1/metrics'
//     exposition both read that same atomic, so the two can never
//     disagree about anything but scrape timing. Zero values are ready
//     to use: a struct embeds obs.Counter the way it used to embed
//     atomic.Uint64, and registration is a separate wiring step.
//
//   - Hot-path cost is one atomic op. Counter.Add and
//     Histogram.Observe take no locks; snapshots and exposition pay
//     whatever they pay, because they run at scrape rate, not request
//     rate.
//
//   - Histograms are fixed-bucket and mergeable. Two snapshots with
//     the same bounds add bucket-wise (replica fleets, per-class
//     splits), and quantiles are derived from the buckets alone — the
//     same p50/p99 any Prometheus histogram_quantile() over the
//     exposition would compute, so the meta JSON and a dashboard over
//     the scrape agree by construction.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (in-flight requests, queue
// depth, bytes resident). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets are the default handler-latency bucket upper bounds
// in seconds: roughly exponential from 500µs to 10s, the span between a
// result-cache hit and a request worth shedding. Histograms across the
// service share them so their snapshots merge.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets. Observe is one
// atomic add (plus a branch-free bucket search); everything derived —
// quantiles, means, exposition lines — comes from Snapshot. Create with
// NewHistogram; the zero value has no buckets and drops observations.
type Histogram struct {
	bounds []float64 // upper bounds, strictly increasing, seconds
	counts []atomic.Uint64
	// sumNanos accumulates observed time exactly (integer nanoseconds);
	// the exposition divides once. An atomic float would need a CAS loop
	// on every Observe for no precision we need at <292y total.
	sumNanos atomic.Int64
}

// NewHistogram builds a histogram over the given bucket upper bounds
// (seconds, strictly increasing). An implicit +Inf bucket is appended.
// Panics on unsorted or empty bounds — a registration-time programmer
// error, not a runtime condition.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds must increase strictly (%v then %v)", bounds[i-1], bounds[i]))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || len(h.bounds) == 0 {
		return
	}
	secs := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, secs) // first bound >= secs
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the total number of observations (the sum of all
// buckets, so it is consistent with any concurrently taken snapshot's
// bucket view rather than a separately raced counter).
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Snapshot captures the histogram's buckets at one instant (per-bucket
// atomically; the vector as a whole is only as coherent as any lock-free
// multi-counter read — counts never decrease, so a racing Observe can at
// worst land in a later snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    float64(h.sumNanos.Load()) / float64(time.Second),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// HistogramSnapshot is an immutable copy of a histogram's state:
// per-bucket (non-cumulative) counts aligned with Bounds plus the
// implicit +Inf bucket at the end, the total observation count, and the
// sum of observed values in seconds.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1; last is the +Inf bucket
	Count  uint64
	Sum    float64
}

// Merge adds other's buckets into s. The two snapshots must share
// bucket bounds (merging across replicas or traffic classes only makes
// sense bucket-wise).
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) error {
	if len(s.Bounds) != len(other.Bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d buckets", len(s.Bounds), len(other.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != other.Bounds[i] {
			return fmt.Errorf("obs: merging histograms with mismatched bucket bound %v vs %v", s.Bounds[i], other.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	return nil
}

// Quantile returns the p-quantile (0 <= p <= 1) derived from the
// buckets with linear interpolation inside the containing bucket —
// exactly what Prometheus histogram_quantile() computes from the same
// exposition, so JSON consumers and scrape consumers see one number.
// Returns 0 with no observations; observations in the +Inf bucket
// resolve to the highest finite bound (the histogram cannot say more).
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(s.Bounds) {
				// +Inf bucket: the last finite bound is the best claim.
				return s.Bounds[len(s.Bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			upper := s.Bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observed value in seconds (0 with no
// observations). Unlike Quantile it is exact, not bucket-derived.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// formatFloat renders a sample value the way the exposition format
// expects: shortest round-trip representation, +Inf/-Inf/NaN spelled
// Prometheus-style.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}
