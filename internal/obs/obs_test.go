package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	// 100 observations in the (0.001, 0.01] bucket, 100 in (0.01, 0.1].
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Millisecond)
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 200 {
		t.Fatalf("count = %d, want 200", s.Count)
	}
	wantSum := 100*0.005 + 100*0.050
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	// p50 falls exactly at the boundary between the two buckets; the
	// interpolated value is the first bucket's upper bound.
	if p50 := s.Quantile(0.50); math.Abs(p50-0.01) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.01", p50)
	}
	// p99 interpolates inside the second bucket: rank 198 of 200, with
	// 100 below the bucket -> 98% through (0.01, 0.1].
	if p99 := s.Quantile(0.99); math.Abs(p99-(0.01+0.098*0.09/0.1)) > 1e-6 {
		t.Fatalf("p99 = %v", p99)
	}
	if p0 := s.Quantile(0); p0 < 0 || p0 > 0.01 {
		t.Fatalf("p0 = %v, want within first occupied bucket", p0)
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(time.Millisecond) // exactly 0.001s: le="0.001" is inclusive
	s := h.Snapshot()
	if s.Counts[0] != 1 || s.Counts[1] != 0 {
		t.Fatalf("boundary observation landed in %v, want first bucket", s.Counts)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{0.001})
	h.Observe(time.Minute)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Fatalf("overflow observation landed in %v, want +Inf bucket", s.Counts)
	}
	// A +Inf-bucket quantile resolves to the highest finite bound.
	if q := s.Quantile(0.99); q != 0.001 {
		t.Fatalf("quantile from +Inf bucket = %v, want 0.001", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(DefLatencyBuckets)
	b := NewHistogram(DefLatencyBuckets)
	a.Observe(2 * time.Millisecond)
	b.Observe(200 * time.Millisecond)
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if sa.Count != 2 {
		t.Fatalf("merged count = %d, want 2", sa.Count)
	}
	if math.Abs(sa.Sum-0.202) > 1e-9 {
		t.Fatalf("merged sum = %v, want 0.202", sa.Sum)
	}
	mismatch := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{0, 0, 0}}
	if err := sa.Merge(mismatch); err == nil {
		t.Fatal("merging mismatched bounds did not error")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	s := NewHistogram(DefLatencyBuckets).Snapshot()
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	if m := s.Mean(); m != 0 {
		t.Fatalf("empty histogram mean = %v, want 0", m)
	}
}

func TestRegistryExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("spotlake_test_ops_total", "ops so far")
	c.Add(5)
	reg.GaugeFunc("spotlake_test_depth", "current depth", func() float64 { return 3.5 })
	h := reg.Histogram("spotlake_test_latency_seconds", "latency", []float64{0.01, 0.1})
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(5 * time.Second)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("write: %v", err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE spotlake_test_ops_total counter",
		"spotlake_test_ops_total 5",
		"# TYPE spotlake_test_depth gauge",
		"spotlake_test_depth 3.5",
		"# TYPE spotlake_test_latency_seconds histogram",
		`spotlake_test_latency_seconds_bucket{le="0.01"} 1`,
		`spotlake_test_latency_seconds_bucket{le="0.1"} 2`,
		`spotlake_test_latency_seconds_bucket{le="+Inf"} 3`,
		"spotlake_test_latency_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	samples, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		if s.Le == "" {
			byName[s.Name] = s.Value
		}
	}
	if byName["spotlake_test_ops_total"] != 5 {
		t.Errorf("round-tripped counter = %v", byName["spotlake_test_ops_total"])
	}
	if byName["spotlake_test_depth"] != 3.5 {
		t.Errorf("round-tripped gauge = %v", byName["spotlake_test_depth"])
	}

	snap, err := SnapshotFromSamples(samples, "spotlake_test_latency_seconds")
	if err != nil {
		t.Fatalf("snapshot from samples: %v", err)
	}
	orig := h.Snapshot()
	if snap.Count != orig.Count {
		t.Fatalf("round-tripped count = %d, want %d", snap.Count, orig.Count)
	}
	if got, want := snap.Quantile(0.5), orig.Quantile(0.5); math.Abs(got-want) > 1e-9 {
		t.Fatalf("round-tripped p50 = %v, want %v", got, want)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no value":  "spotlake_x_total\n",
		"bad name":  "9leading_digit 1\n",
		"bad value": "spotlake_x_total abc\n",
		"bad type":  "# TYPE spotlake_x_total summary\n",
		"bad label": `spotlake_x_bucket{foo="1"} 2` + "\n",
		"non-cumulative": "# TYPE spotlake_h histogram\n" +
			`spotlake_h_bucket{le="0.1"} 5` + "\n" +
			`spotlake_h_bucket{le="+Inf"} 3` + "\n" +
			"spotlake_h_sum 1\nspotlake_h_count 3\n",
		"count mismatch": "# TYPE spotlake_h histogram\n" +
			`spotlake_h_bucket{le="0.1"} 1` + "\n" +
			`spotlake_h_bucket{le="+Inf"} 3` + "\n" +
			"spotlake_h_sum 1\nspotlake_h_count 4\n",
		"missing +Inf": "# TYPE spotlake_h histogram\n" +
			`spotlake_h_bucket{le="0.1"} 1` + "\n" +
			"spotlake_h_sum 1\nspotlake_h_count 1\n",
	}
	for name, text := range cases {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parse accepted %q", name, text)
		}
	}
}

func TestRegistryReplaceAndTypeConflict(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("spotlake_test_total", "v1").Add(3)
	// Re-registering the same name and type replaces the source.
	c2 := reg.Counter("spotlake_test_total", "v2")
	c2.Add(9)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "spotlake_test_total 9") {
		t.Fatalf("replacement not visible:\n%s", sb.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type did not panic")
		}
	}()
	reg.GaugeFunc("spotlake_test_total", "wrong type", func() float64 { return 0 })
}

func TestRegistryConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("spotlake_test_ops_total", "")
	h := reg.Histogram("spotlake_test_lat_seconds", "", DefLatencyBuckets)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(time.Millisecond)
				}
			}
		}()
	}
	prev := uint64(0)
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatalf("write: %v", err)
		}
		samples, err := ParseExposition(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("scrape %d unparseable: %v", i, err)
		}
		for _, s := range samples {
			if s.Name == "spotlake_test_ops_total" {
				if v := uint64(s.Value); v < prev {
					t.Fatalf("counter went backwards: %d -> %d", prev, v)
				} else {
					prev = v
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
