package repro

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/awsapi"
	"repro/internal/binpack"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/simclock"
)

// --- Table 1: spot request status machine ------------------------------------

// Table1Row pairs a request status with its description.
type Table1Row struct {
	Status      string
	Description string
	Reached     bool
}

// Table1Result verifies each Table 1 state is reachable in the simulator
// and carries an example transition trace.
type Table1Result struct {
	Rows  []Table1Row
	Trace []string
}

// Table1 drives spot requests through every state of the paper's Table 1.
func Table1(seed uint64) (Table1Result, error) {
	cat := catalog.Compact(3)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, seed, cloudsim.DefaultParams())

	reached := map[cloudsim.RequestStatus]bool{}
	var trace []string
	record := func(req *cloudsim.SpotRequest, label string) {
		for _, ev := range req.Events() {
			reached[ev.Status] = true
			trace = append(trace, fmt.Sprintf("[%s] %s -> %s (%s)",
				label, ev.At.Format("15:04:05"), ev.Status, ev.Detail))
		}
	}

	// A healthy pool: Pending Evaluation -> Fulfilled; then cancel ->
	// Terminal.
	var healthy, scarceOrAny catalog.Pool
	bestUnits := -1.0
	worstUnits := 1e18
	for _, p := range cat.Pools() {
		units, err := cloud.LiveAvailableUnits(p.Type, p.AZ)
		if err != nil {
			return Table1Result{}, err
		}
		if units > bestUnits {
			bestUnits, healthy = units, p
		}
		if units < worstUnits {
			worstUnits, scarceOrAny = units, p
		}
	}
	od, _ := cat.OnDemandPrice(healthy.Type, healthy.Region)
	req1, err := cloud.Submit(cloudsim.SpotRequestSpec{Type: healthy.Type, AZ: healthy.AZ, BidUSD: od})
	if err != nil {
		return Table1Result{}, err
	}
	clk.RunFor(30 * time.Minute)
	req1.Cancel()
	record(req1, "healthy")

	// A low bid: Holding (price too low).
	od2, _ := cat.OnDemandPrice(scarceOrAny.Type, scarceOrAny.Region)
	req2, err := cloud.Submit(cloudsim.SpotRequestSpec{Type: scarceOrAny.Type, AZ: scarceOrAny.AZ, BidUSD: od2 * 0.01})
	if err != nil {
		return Table1Result{}, err
	}
	clk.RunFor(time.Minute)
	record(req2, "low-bid")
	req2.Close()

	rows := []Table1Row{
		{"Pending Evaluation", "A valid spot request is submitted", reached[cloudsim.StatusPendingEvaluation]},
		{"Holding", "Some request constraints cannot be met (price, location, resource availability, ...)", reached[cloudsim.StatusHolding]},
		{"Fulfilled", "All the spot request constraints are met, and instance status being updated to running", reached[cloudsim.StatusFulfilled]},
		{"Terminal", "A spot request is disabled possibly by price outbid, resource unavailability, user, ...", reached[cloudsim.StatusTerminal]},
	}
	return Table1Result{Rows: rows, Trace: trace}, nil
}

// String renders the status table with reachability checks.
func (r Table1Result) String() string {
	rows := [][]string{}
	for _, row := range r.Rows {
		ok := "no"
		if row.Reached {
			ok = "yes"
		}
		rows = append(rows, []string{row.Status, row.Description, ok})
	}
	return "Table 1: spot request status machine (reached = observed in simulation)\n" +
		table([]string{"Status", "Description", "Reached"}, rows)
}

// --- Figure 1 / Section 3.2: query optimization --------------------------------

// PaperFig1 records the published optimization numbers.
var PaperFig1 = struct {
	NaiveQueries, OptimizedQueries, NaiveAccounts, OptimizedAccounts int
}{9299, 2226, 186, 45}

// Fig1Result is the measured query-plan optimization.
type Fig1Result struct {
	NaiveQueries      int
	OptimizedQueries  int
	Improvement       float64
	NaiveAccounts     int
	OptimizedAccounts int
	// Example is the p3.2xlarge packing of Figure 1's illustration.
	ExampleType    string
	ExampleBefore  int
	ExampleAfter   int
	ExampleBinSums []int
	// ExactMatchesFFD reports whether the branch-and-bound solver found
	// the same bin count as FFD on the full catalog (it should: these
	// instances are easy).
	ExactQueries int
}

// Fig1 plans the placement-score collection for the full 547-type catalog
// with both packers.
func Fig1() (Fig1Result, error) {
	cat := catalog.Standard()
	ffd, err := binpack.PlanScoreQueries(cat, awsapi.MaxReturnedScores, false)
	if err != nil {
		return Fig1Result{}, err
	}
	exact, err := binpack.PlanScoreQueries(cat, awsapi.MaxReturnedScores, true)
	if err != nil {
		return Fig1Result{}, err
	}
	res := Fig1Result{
		NaiveQueries:      ffd.NaiveQueries,
		OptimizedQueries:  len(ffd.Queries),
		Improvement:       float64(ffd.NaiveQueries) / float64(len(ffd.Queries)),
		NaiveAccounts:     (ffd.NaiveQueries + awsapi.MaxUniqueQueriesPer24h - 1) / awsapi.MaxUniqueQueriesPer24h,
		OptimizedAccounts: ffd.AccountsNeeded(awsapi.MaxUniqueQueriesPer24h),
		ExactQueries:      len(exact.Queries),
	}

	// The paper's illustration type.
	const example = "p3.2xlarge"
	res.ExampleType = example
	regions := cat.SupportedRegions(example)
	res.ExampleBefore = len(regions)
	items := make([]binpack.Item, 0, len(regions))
	for _, rc := range regions {
		items = append(items, binpack.Item{Label: rc.Region, Weight: rc.AZCount})
	}
	bins, err := binpack.Exact(items, awsapi.MaxReturnedScores)
	if err != nil {
		return Fig1Result{}, err
	}
	res.ExampleAfter = len(bins)
	for _, b := range bins {
		res.ExampleBinSums = append(res.ExampleBinSums, b.Weight)
	}
	return res, nil
}

// String renders the optimization summary.
func (r Fig1Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 1 / Section 3.2: placement-score query optimization\n")
	b.WriteString(table(
		[]string{"Metric", "Measured", "Paper"},
		[][]string{
			{"naive queries", fmt.Sprint(r.NaiveQueries), fmt.Sprint(PaperFig1.NaiveQueries)},
			{"optimized queries (FFD)", fmt.Sprint(r.OptimizedQueries), fmt.Sprint(PaperFig1.OptimizedQueries)},
			{"optimized queries (B&B)", fmt.Sprint(r.ExactQueries), ""},
			{"improvement", fmt.Sprintf("%.2fx", r.Improvement), "4.18x"},
			{"accounts naive", fmt.Sprint(r.NaiveAccounts), fmt.Sprint(PaperFig1.NaiveAccounts)},
			{"accounts optimized", fmt.Sprint(r.OptimizedAccounts), fmt.Sprint(PaperFig1.OptimizedAccounts)},
		}))
	fmt.Fprintf(&b, "example %s: %d region queries packed into %d (bin sums %v)\n",
		r.ExampleType, r.ExampleBefore, r.ExampleAfter, r.ExampleBinSums)
	return b.String()
}
