package repro

import (
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/experiment"
)

func TestFig6Validation(t *testing.T) {
	if _, err := Fig6(1, 0); err == nil {
		t.Error("zero perStratum accepted")
	}
}

func TestFig7Validation(t *testing.T) {
	if _, err := Fig7(1, 0); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestTable4Validation(t *testing.T) {
	opt := DefaultTable4Options()
	opt.TestFraction = 0
	if _, err := Table4(opt); err == nil {
		t.Error("zero test fraction accepted")
	}
	opt.TestFraction = 1
	if _, err := Table4(opt); err == nil {
		t.Error("test fraction 1 accepted")
	}
}

func TestExperiment54ParamsOverride(t *testing.T) {
	// The ablation hook: overriding params must actually reach the cloud.
	p := cloudsim.DefaultParams()
	p.FreshBoost = 0
	opt := Experiment54Options{
		Seed: 5, SampleFrac: 0.08, WarmupDays: 1,
		MaxPerCategory: 5, Horizon: time.Hour, Params: &p,
	}
	res, err := Experiment54(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Cases) == 0 {
		t.Fatal("no cases with overridden params")
	}
}

func TestResultStringsMentionPaperAnchors(t *testing.T) {
	// Rendering smoke tests: every result mentions its paper reference so
	// printed output is self-describing.
	c := quickCollected(t)
	if s := Table2(c).String(); !strings.Contains(s, "87.88") {
		t.Error("Table2 output lacks the paper column")
	}
	if s := Fig3(c).String(); !strings.Contains(s, "2.80") {
		t.Error("Fig3 output lacks the paper overall mean")
	}
	if s := Fig9(c).String(); !strings.Contains(s, "17.41") {
		t.Error("Fig9 output lacks the paper contradiction rate")
	}
	if s := Fig10(c).String(); !strings.Contains(s, "SPS < price < IF") {
		t.Error("Fig10 output lacks the ordering note")
	}
	f4 := Fig4(c)
	if s := f4.String(); !strings.Contains(s, "NA") {
		t.Error("Fig4 output lacks NA cells")
	}
}

func TestExperiment54CategoriesComplete(t *testing.T) {
	opt := Experiment54Options{
		Seed: 6, SampleFrac: 0.1, WarmupDays: 1,
		MaxPerCategory: 6, Horizon: 2 * time.Hour,
	}
	res, err := Experiment54(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, cc := range experiment.Categories {
		if res.Result.ByCategory[cc].Total == 0 {
			t.Errorf("category %s missing from results", cc)
		}
	}
	// All three render paths work.
	for _, s := range []string{res.Table3String(), res.Fig11aString(), res.Fig11bString(), res.String()} {
		if len(s) == 0 {
			t.Error("empty rendering")
		}
	}
}

func TestCollectUsesRequestedCatalogScale(t *testing.T) {
	col, err := Collect(CollectOptions{Seed: 1, Days: 1, SampleFrac: 0.05, Interval: 2 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if col.Cat.NumTypes() >= catalog.Standard().NumTypes() {
		t.Error("sampled catalog not smaller than standard")
	}
	if col.Days != 1 {
		t.Errorf("Days = %d", col.Days)
	}
	if !col.To.After(col.From) {
		t.Error("empty collection window")
	}
	if col.Stats.QueriesIssued == 0 {
		t.Error("no queries issued")
	}
}
