package repro

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/tsdb"
)

// gridStep is the sampling grid used for distribution and correlation
// analyses over the archive.
const gridStep = 2 * time.Hour

// --- Table 2: value distribution of the two scores ---------------------------

// PaperTable2SPS and PaperTable2IF are the published Table 2 values.
var (
	PaperTable2SPS = map[float64]float64{3.0: 0.8788, 2.0: 0.0381, 1.0: 0.0831}
	PaperTable2IF  = map[float64]float64{3.0: 0.3305, 2.5: 0.2592, 2.0: 0.1386, 1.5: 0.0633, 1.0: 0.2084}
)

// Table2Result is the measured value distribution of both scores.
type Table2Result struct {
	SPS map[float64]float64
	IF  map[float64]float64
}

// Table2 computes the value distributions over the collected archive.
func Table2(c *Collected) Table2Result {
	return Table2Result{
		SPS: analysis.ValueDistribution(c.DB, tsdb.DatasetPlacementScore, c.From, c.To, gridStep),
		IF:  analysis.ValueDistribution(c.DB, tsdb.DatasetInterruptFree, c.From, c.To, gridStep),
	}
}

// String renders the paper-vs-measured table.
func (r Table2Result) String() string {
	rows := [][]string{}
	for _, v := range []float64{3.0, 2.5, 2.0, 1.5, 1.0} {
		spsPaper, spsOK := PaperTable2SPS[v]
		spsCell, paperCell := "NA", "NA"
		if spsOK {
			paperCell = pct(spsPaper * 100)
		}
		if spsOK || r.SPS[v] > 0 {
			spsCell = pct(r.SPS[v] * 100)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", v),
			spsCell, paperCell,
			pct(r.IF[v] * 100), pct(PaperTable2IF[v] * 100),
		})
	}
	return "Table 2: value distribution of spot placement and interruption-free scores\n" +
		table([]string{"Value", "SPS", "SPS(paper)", "IF", "IF(paper)"}, rows)
}

// --- Figure 3: temporal heatmap ----------------------------------------------

// Fig3Result holds the daily per-class means of both scores plus the
// summary statistics the paper quotes.
type Fig3Result struct {
	Days       int
	SPSByClass map[catalog.Class][]float64
	IFByClass  map[catalog.Class][]float64

	OverallSPS float64 // paper: 2.80
	OverallIF  float64 // paper: 2.22
	// AccelGapSPS/IF: relative shortfall of accelerated classes vs overall
	// (paper: 12.07% and 34.98%).
	AccelGapSPS float64
	AccelGapIF  float64
	// ShockDipDay is the day index with the deepest SPS drop relative to
	// its neighbors (paper: the June 2 adjustment, day ~152).
	ShockDipDay int
}

// Fig3 computes the temporal heatmap data.
func Fig3(c *Collected) Fig3Result {
	res := Fig3Result{
		Days:       c.Days,
		SPSByClass: analysis.DailyClassMeans(c.DB, c.Cat, tsdb.DatasetPlacementScore, c.From, c.Days),
		IFByClass:  analysis.DailyClassMeans(c.DB, c.Cat, tsdb.DatasetInterruptFree, c.From, c.Days),
	}
	res.OverallSPS = analysis.OverallMean(c.DB, tsdb.DatasetPlacementScore, c.From, c.To)
	res.OverallIF = analysis.OverallMean(c.DB, tsdb.DatasetInterruptFree, c.From, c.To)

	accelOf := func(byClass map[catalog.Class][]float64) float64 {
		var sum float64
		var n int
		for cl, row := range byClass {
			if !cl.Accelerated() {
				continue
			}
			m := analysis.Mean(row)
			if !math.IsNaN(m) {
				sum += m
				n++
			}
		}
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n)
	}
	res.AccelGapSPS = 100 * (1 - accelOf(res.SPSByClass)/res.OverallSPS)
	res.AccelGapIF = 100 * (1 - accelOf(res.IFByClass)/res.OverallIF)

	// Locate the sharpest day-over-day dip in the all-class SPS mean.
	daily := make([]float64, c.Days)
	for d := 0; d < c.Days; d++ {
		var sum float64
		var n int
		for _, row := range res.SPSByClass {
			if d < len(row) && !math.IsNaN(row[d]) {
				sum += row[d]
				n++
			}
		}
		if n > 0 {
			daily[d] = sum / float64(n)
		} else {
			daily[d] = math.NaN()
		}
	}
	worst, worstDrop := -1, 0.0
	for d := 1; d < len(daily); d++ {
		if math.IsNaN(daily[d]) || math.IsNaN(daily[d-1]) {
			continue
		}
		if drop := daily[d-1] - daily[d]; drop > worstDrop {
			worstDrop, worst = drop, d
		}
	}
	res.ShockDipDay = worst
	return res
}

// String renders per-class means and the headline statistics.
func (r Fig3Result) String() string {
	rows := [][]string{}
	for _, cl := range catalog.Classes {
		rows = append(rows, []string{
			string(cl),
			f2(analysis.Mean(r.SPSByClass[cl])),
			f2(analysis.Mean(r.IFByClass[cl])),
		})
	}
	var b strings.Builder
	b.WriteString("Figure 3: temporal class means over the collection period\n")
	b.WriteString(table([]string{"Class", "SPS mean", "IF mean"}, rows))
	fmt.Fprintf(&b, "overall SPS %.2f (paper 2.80), overall IF %.2f (paper 2.22)\n", r.OverallSPS, r.OverallIF)
	fmt.Fprintf(&b, "accelerated shortfall: SPS %.1f%% (paper 12.07%%), IF %.1f%% (paper 34.98%%)\n", r.AccelGapSPS, r.AccelGapIF)
	fmt.Fprintf(&b, "sharpest availability dip at day %d (paper: ~day 152, June 2 2022)\n", r.ShockDipDay)
	return b.String()
}

// --- Figure 4: spatial heatmap -----------------------------------------------

// Fig4Result holds the per-(class, region) means of both scores.
type Fig4Result struct {
	SPS map[catalog.Class]map[string]float64
	IF  map[catalog.Class]map[string]float64
	// SpatialSpread and TemporalSpread compare variation across regions vs
	// across days (the paper's key finding: spatial > temporal).
	SpatialSpread  float64
	TemporalSpread float64
	Regions        []string
}

// Fig4 computes the spatial heatmap data.
func Fig4(c *Collected) Fig4Result {
	res := Fig4Result{
		SPS: analysis.RegionClassMeans(c.DB, c.Cat, tsdb.DatasetPlacementScore, c.From, c.To),
		IF:  analysis.RegionClassMeans(c.DB, c.Cat, tsdb.DatasetInterruptFree, c.From, c.To),
	}
	for _, reg := range c.Cat.Regions() {
		res.Regions = append(res.Regions, reg.Code)
	}
	// Spread measures: mean per-class stddev across regions (spatial) vs
	// across days (temporal).
	daily := analysis.DailyClassMeans(c.DB, c.Cat, tsdb.DatasetPlacementScore, c.From, c.Days)
	var spat, temp []float64
	for _, cl := range catalog.Classes {
		var rv []float64
		for _, v := range res.SPS[cl] {
			if !math.IsNaN(v) {
				rv = append(rv, v)
			}
		}
		if sd, ok := stddev(rv); ok {
			spat = append(spat, sd)
		}
		var dv []float64
		for _, v := range daily[cl] {
			if !math.IsNaN(v) {
				dv = append(dv, v)
			}
		}
		if sd, ok := stddev(dv); ok {
			temp = append(temp, sd)
		}
	}
	res.SpatialSpread = analysis.Mean(spat)
	res.TemporalSpread = analysis.Mean(temp)
	return res
}

func stddev(xs []float64) (float64, bool) {
	if len(xs) < 2 {
		return 0, false
	}
	m := analysis.Mean(xs)
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs))), true
}

// String renders the SPS heatmap with NA cells and the spread comparison.
func (r Fig4Result) String() string {
	header := []string{"Class"}
	header = append(header, r.Regions...)
	rows := [][]string{}
	for _, cl := range catalog.Classes {
		row := []string{string(cl)}
		for _, reg := range r.Regions {
			v := r.SPS[cl][reg]
			if math.IsNaN(v) {
				row = append(row, "NA")
			} else {
				row = append(row, f2(v))
			}
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString("Figure 4: spatial variation of the spot placement score\n")
	b.WriteString(table(header, rows))
	fmt.Fprintf(&b, "spatial spread %.3f vs temporal spread %.3f (paper: spatial diversity dominates)\n",
		r.SpatialSpread, r.TemporalSpread)
	return b.String()
}

// --- Figure 5: size effect ----------------------------------------------------

// Fig5Result holds the by-size score means.
type Fig5Result struct {
	Rows []analysis.SizeMeanRow
}

// Fig5 computes the by-size means for sizes with more than 10 types (the
// paper's filter) or, on reduced catalogs, the densest available filter.
func Fig5(c *Collected) Fig5Result {
	minTypes := 10
	rows := analysis.SizeMeans(c.DB, c.Cat, c.From, c.To, minTypes)
	for len(rows) < 4 && minTypes > 0 {
		minTypes--
		rows = analysis.SizeMeans(c.DB, c.Cat, c.From, c.To, minTypes)
	}
	return Fig5Result{Rows: rows}
}

// String renders the size table.
func (r Fig5Result) String() string {
	rows := [][]string{}
	for _, row := range r.Rows {
		rows = append(rows, []string{string(row.Size), f2(row.MeanSPS), f2(row.MeanIF), fmt.Sprint(row.NumTypes)})
	}
	return "Figure 5: scores by instance size (paper: both scores decline with size)\n" +
		table([]string{"Size", "SPS mean", "IF mean", "#types"}, rows)
}

// --- Figure 8: correlations ----------------------------------------------------

// Fig8Result holds the correlation CDable sets and the fractions the paper
// quotes.
type Fig8Result struct {
	Sets analysis.CorrelationSets
	// FracAbsBelow25/50 are the fractions of |r(SPS, IF)| below 0.25 and
	// 0.5 (paper: 62.57% and 87.64%).
	FracAbsBelow25 float64
	FracAbsBelow50 float64
}

// Fig8 computes the pairwise Pearson correlation distributions.
func Fig8(c *Collected) Fig8Result {
	sets := analysis.Correlations(c.DB, c.From, c.To, gridStep)
	below25, below50 := 0, 0
	for _, r := range sets.SPSvsIF {
		if math.Abs(r) < 0.25 {
			below25++
		}
		if math.Abs(r) < 0.5 {
			below50++
		}
	}
	n := len(sets.SPSvsIF)
	res := Fig8Result{Sets: sets}
	if n > 0 {
		res.FracAbsBelow25 = float64(below25) / float64(n)
		res.FracAbsBelow50 = float64(below50) / float64(n)
	}
	return res
}

// String renders summary quantiles of the three CDFs.
func (r Fig8Result) String() string {
	row := func(name string, xs []float64) []string {
		c := analysis.NewCDF(xs)
		return []string{name, fmt.Sprint(c.N()),
			f2(c.Quantile(0.1)), f2(c.Quantile(0.5)), f2(c.Quantile(0.9))}
	}
	rows := [][]string{
		row("SPS vs IF", r.Sets.SPSvsIF),
		row("IF vs price", r.Sets.IFvsPrice),
		row("SPS vs price", r.Sets.SPSvsPrice),
	}
	var b strings.Builder
	b.WriteString("Figure 8: Pearson correlation CDFs across dataset pairs\n")
	b.WriteString(table([]string{"Pair", "n", "p10", "median", "p90"}, rows))
	fmt.Fprintf(&b, "|r(SPS,IF)| < 0.25 for %.1f%% (paper 62.57%%), < 0.5 for %.1f%% (paper 87.64%%)\n",
		r.FracAbsBelow25*100, r.FracAbsBelow50*100)
	return b.String()
}

// --- Figure 9: score difference histogram --------------------------------------

// PaperFig9Contradiction is the paper's fraction of complete contradictions
// (difference 2.0).
const PaperFig9Contradiction = 0.1741

// Fig9Result is the score-difference histogram.
type Fig9Result struct {
	Histogram map[float64]float64
}

// Fig9 computes the |SPS - IF| distribution.
func Fig9(c *Collected) Fig9Result {
	return Fig9Result{Histogram: analysis.ScoreDifferenceHistogram(c.DB, c.From, c.To, gridStep)}
}

// String renders the histogram.
func (r Fig9Result) String() string {
	rows := [][]string{}
	for _, d := range []float64{0, 0.5, 1, 1.5, 2} {
		paper := ""
		if d == 2 {
			paper = pct(PaperFig9Contradiction * 100)
		}
		rows = append(rows, []string{fmt.Sprintf("%.1f", d), pct(r.Histogram[d] * 100), paper})
	}
	return "Figure 9: |SPS - interruption-free| score difference distribution\n" +
		table([]string{"Difference", "Measured", "Paper"}, rows)
}

// --- Figure 10: update frequency -----------------------------------------------

// Fig10Result holds the change-interval CDFs of the three datasets.
type Fig10Result struct {
	SPS   analysis.CDF
	IF    analysis.CDF
	Price analysis.CDF
}

// Fig10 computes the hours-between-changes CDF per dataset.
func Fig10(c *Collected) Fig10Result {
	return Fig10Result{
		SPS:   analysis.UpdateIntervalCDF(c.DB, tsdb.DatasetPlacementScore),
		IF:    analysis.UpdateIntervalCDF(c.DB, tsdb.DatasetInterruptFree),
		Price: analysis.UpdateIntervalCDF(c.DB, tsdb.DatasetPrice),
	}
}

// String renders interval quantiles (hours).
func (r Fig10Result) String() string {
	row := func(name string, c analysis.CDF) []string {
		return []string{name, fmt.Sprint(c.N()),
			f2(c.Quantile(0.25)), f2(c.Quantile(0.5)), f2(c.Quantile(0.75))}
	}
	return "Figure 10: hours between value changes (paper ordering: SPS < price < IF)\n" +
		table([]string{"Dataset", "changes", "p25", "median", "p75"},
			[][]string{row("SPS", r.SPS), row("price", r.Price), row("IF", r.IF)})
}
