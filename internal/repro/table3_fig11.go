package repro

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/experiment"
	"repro/internal/simclock"
)

// PaperTable3 records the published not-fulfilled / interrupted rates.
var PaperTable3 = map[experiment.Category][2]float64{
	experiment.CatHH: {0, 14.71},
	experiment.CatHL: {0, 40.52},
	experiment.CatMM: {25.49, 39.22},
	experiment.CatLH: {58.18, 30.91},
	experiment.CatLL: {45.61, 45.61},
}

// Experiment54Options sizes the Section 5.4 run.
type Experiment54Options struct {
	Seed uint64
	// SampleFrac selects the catalog fraction.
	SampleFrac float64
	// WarmupDays lets the world decorrelate before selection.
	WarmupDays int
	// MaxPerCategory caps the stratified sample (paper: 503 cases over 5
	// categories, about 101 each).
	MaxPerCategory int
	// Horizon is the per-case observation window (paper: 24h).
	Horizon time.Duration
	// Params overrides the simulator calibration (nil = defaults). Used by
	// the ablation benchmarks.
	Params *cloudsim.Params
}

// DefaultExperiment54Options returns the paper-scale protocol on a reduced
// catalog.
func DefaultExperiment54Options() Experiment54Options {
	return Experiment54Options{
		Seed: 33, SampleFrac: 0.5, WarmupDays: 4,
		MaxPerCategory: 101, Horizon: 24 * time.Hour,
	}
}

// Experiment54Result carries Table 3 and both Figure 11 panels.
type Experiment54Result struct {
	Result *experiment.Result
}

// Experiment54 runs the fulfillment/interruption experiment.
func Experiment54(opt Experiment54Options) (Experiment54Result, error) {
	var cat *catalog.Catalog
	if opt.SampleFrac >= 1 {
		cat = catalog.Standard()
	} else {
		cat = catalog.Sample(opt.SampleFrac)
	}
	params := cloudsim.DefaultParams()
	if opt.Params != nil {
		params = *opt.Params
	}
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, opt.Seed, params)
	clk.RunFor(time.Duration(opt.WarmupDays) * 24 * time.Hour)

	cfg := experiment.DefaultConfig()
	cfg.Horizon = opt.Horizon
	cfg.MaxPerCategory = opt.MaxPerCategory
	cfg.Seed = opt.Seed
	res, err := experiment.Run(cloud, cfg)
	if err != nil {
		return Experiment54Result{}, err
	}
	return Experiment54Result{Result: res}, nil
}

// Table3String renders the Table 3 comparison.
func (r Experiment54Result) Table3String() string {
	rows := [][]string{}
	for _, cc := range experiment.Categories {
		st := r.Result.ByCategory[cc]
		paper := PaperTable3[cc]
		rows = append(rows, []string{
			cc.String(),
			pct(st.NotFulfilledPct()), pct(paper[0]),
			pct(st.InterruptedPct()), pct(paper[1]),
			fmt.Sprint(st.Total),
		})
	}
	return "Table 3: not-fulfilled and interrupted spot requests by score category\n" +
		table([]string{"Category", "Not-Fulfilled", "(paper)", "Interrupted", "(paper)", "n"}, rows)
}

// Fig11aString renders fulfillment latency quantiles per category
// (Figure 11a; paper anchors: H-H 28.07% <= 1s, >=90% <= 135s; L-L median
// 1322s).
func (r Experiment54Result) Fig11aString() string {
	rows := [][]string{}
	for _, cc := range experiment.Categories {
		st := r.Result.ByCategory[cc]
		c := analysis.NewCDF(st.FulfillLatenciesSec)
		if c.N() == 0 {
			rows = append(rows, []string{cc.String(), "0", "-", "-", "-", "-"})
			continue
		}
		rows = append(rows, []string{
			cc.String(), fmt.Sprint(c.N()),
			pct(c.FractionBelow(1) * 100),
			f2(c.Quantile(0.5)),
			f2(c.Quantile(0.9)),
			pct(c.FractionBelow(135) * 100),
		})
	}
	return "Figure 11a: fulfillment latency by category (seconds; fulfilled cases)\n" +
		table([]string{"Category", "n", "<=1s", "median", "p90", "<=135s"}, rows) +
		"paper anchors: H-H 28.07% <=1s and ~90% <=135s; L-L median 1322s\n"
}

// Fig11bString renders time-to-interruption quantiles per category
// (Figure 11b; paper anchors: H-L median 6872s vs L-H median 2859s).
func (r Experiment54Result) Fig11bString() string {
	rows := [][]string{}
	for _, cc := range experiment.Categories {
		st := r.Result.ByCategory[cc]
		c := analysis.NewCDF(st.TimeToInterruptSec)
		if c.N() == 0 {
			rows = append(rows, []string{cc.String(), "0", "-", "-"})
			continue
		}
		rows = append(rows, []string{
			cc.String(), fmt.Sprint(c.N()),
			f2(c.Quantile(0.5)),
			f2(c.Quantile(0.9)),
		})
	}
	return "Figure 11b: time until interruption by category (seconds; interrupted cases)\n" +
		table([]string{"Category", "n", "median", "p90"}, rows) +
		"paper anchors: H-L median 6872s, L-H median 2859s\n"
}

// String renders all three views.
func (r Experiment54Result) String() string {
	var b strings.Builder
	b.WriteString(r.Table3String())
	b.WriteByte('\n')
	b.WriteString(r.Fig11aString())
	b.WriteByte('\n')
	b.WriteString(r.Fig11bString())
	return b.String()
}
