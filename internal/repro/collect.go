// Package repro regenerates every table and figure of the paper's
// evaluation from seeded end-to-end runs of the reproduction stack:
// simulated cloud -> vendor API -> bin-packed collector -> time-series
// archive -> analysis / experiments / prediction.
//
// Each experiment function returns a structured result whose String method
// prints the same rows or series the paper reports, with the paper's
// published values alongside for comparison. cmd/spotlake-repro prints all
// of them; bench_test.go wraps each in a benchmark.
package repro

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

// CollectOptions sizes a collection run. The paper's full deployment is 181
// days over all 547 types at 10-minute cadence; the default reproduction
// run trades cadence and catalog fraction for runtime while keeping every
// class, region and AZ.
type CollectOptions struct {
	Seed uint64
	// Days of simulated collection.
	Days int
	// SampleFrac selects the catalog fraction (class proportions
	// preserved); 1.0 uses all 547 types.
	SampleFrac float64
	// Interval is the collection cadence (paper: 10 minutes).
	Interval time.Duration
}

// DefaultCollectOptions returns the standard reproduction scale: the full
// 181-day window on a proportional 12% catalog at 30-minute cadence.
func DefaultCollectOptions() CollectOptions {
	return CollectOptions{Seed: 22, Days: 181, SampleFrac: 0.12, Interval: 30 * time.Minute}
}

// QuickCollectOptions returns a reduced run for tests.
func QuickCollectOptions() CollectOptions {
	return CollectOptions{Seed: 22, Days: 21, SampleFrac: 0.08, Interval: time.Hour}
}

// Collected is a completed collection run: the archive plus the simulated
// world it came from, shared by every archive-driven table and figure.
type Collected struct {
	Cloud *cloudsim.Cloud
	Cat   *catalog.Catalog
	DB    *tsdb.DB
	From  time.Time
	To    time.Time
	Days  int
	Stats collector.Stats
}

// Collect runs the SpotLake collection pipeline for the configured period.
func Collect(opt CollectOptions) (*Collected, error) {
	if opt.Days <= 0 {
		return nil, fmt.Errorf("repro: days must be positive")
	}
	if opt.SampleFrac <= 0 || opt.SampleFrac > 1 {
		return nil, fmt.Errorf("repro: sample fraction must be in (0, 1]")
	}
	var cat *catalog.Catalog
	if opt.SampleFrac == 1 {
		cat = catalog.Standard()
	} else {
		cat = catalog.Sample(opt.SampleFrac)
	}
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, opt.Seed, cloudsim.DefaultParams())
	db, err := tsdb.Open("")
	if err != nil {
		return nil, err
	}
	cfg := collector.DefaultConfig()
	cfg.ScoreInterval = opt.Interval
	cfg.AdvisorInterval = opt.Interval
	cfg.PriceInterval = opt.Interval
	col, err := collector.New(cloud, db, cfg)
	if err != nil {
		return nil, err
	}
	from := clk.Now()
	if err := col.Run(time.Duration(opt.Days) * 24 * time.Hour); err != nil {
		return nil, err
	}
	return &Collected{
		Cloud: cloud, Cat: cat, DB: db,
		From: from, To: clk.Now(), Days: opt.Days,
		Stats: col.Stats(),
	}, nil
}

// --- formatting helpers -----------------------------------------------------

// table renders rows as fixed-width columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func pct(f float64) string { return fmt.Sprintf("%.2f%%", f) }

func f2(f float64) string { return fmt.Sprintf("%.2f", f) }
