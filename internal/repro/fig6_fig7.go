package repro

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/awsapi"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/simclock"
	"repro/internal/simrand"
)

// --- Figure 6: composite instance type queries ---------------------------------

// PaperFig6 records the published composite-query fractions.
var PaperFig6 = struct{ Greater, Equal float64 }{0.6062, 0.3881}

// Fig6Result compares composite placement scores against the sum of the
// individual types' scores.
type Fig6Result struct {
	Greater, Equal, Less int
	// Scatter counts (sum of singles, composite score) pairs, the
	// scatter-plot data of Figure 6.
	Scatter map[[2]int]int
}

// Total returns the experiment size.
func (r Fig6Result) Total() int { return r.Greater + r.Equal + r.Less }

// FracGreater returns the fraction of composite > sum cases.
func (r Fig6Result) FracGreater() float64 { return frac(r.Greater, r.Total()) }

// FracEqual returns the fraction of composite == sum cases.
func (r Fig6Result) FracEqual() float64 { return frac(r.Equal, r.Total()) }

// FracLess returns the fraction of composite < sum cases (the paper saw
// two such exceptions).
func (r Fig6Result) FracLess() float64 { return frac(r.Less, r.Total()) }

func frac(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// Fig6 runs the composite-query experiment: random 3-type queries against
// one region, stratified so each summed-singles value 3..9 contributes
// equally (the paper's uniform stratification). Queries go through the
// vendor API under its quota, rotating accounts as the paper's multi-account
// setup does.
func Fig6(seed uint64, perStratum int) (Fig6Result, error) {
	if perStratum <= 0 {
		return Fig6Result{}, fmt.Errorf("repro: perStratum must be positive")
	}
	cat := catalog.Standard()
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, seed, cloudsim.DefaultParams())
	rng := simrand.New(seed).Stream("fig6")

	res := Fig6Result{Scatter: make(map[[2]int]int)}
	strata := make(map[int]int) // summed singles -> count
	types := cat.Types()

	account := 0
	client := awsapi.NewClient(cloud, fmt.Sprintf("fig6-%03d", account))
	queriesOnAccount := 0
	nextClient := func() *awsapi.Client {
		// 4 unique queries per iteration; stay clear of the 50/24h quota.
		if queriesOnAccount+4 > awsapi.MaxUniqueQueriesPer24h {
			account++
			client = awsapi.NewClient(cloud, fmt.Sprintf("fig6-%03d", account))
			queriesOnAccount = 0
		}
		return client
	}

	const target = 4 // instances per query
	maxIters := perStratum * 7 * 40
	for iter := 0; iter < maxIters; iter++ {
		full := true
		for s := 3; s <= 9; s++ {
			if strata[s] < perStratum {
				full = false
				break
			}
		}
		if full {
			break
		}
		// Let the world move between batches, as real queries would.
		clk.RunFor(7 * time.Minute)

		region := cat.Regions()[rng.Intn(cat.NumRegions())].Code
		var picked []string
		seen := map[string]bool{}
		for len(picked) < 3 {
			t := types[rng.Intn(len(types))]
			if seen[t.Name] || !cat.Supports(t.Name, region) {
				continue
			}
			seen[t.Name] = true
			picked = append(picked, t.Name)
		}

		cl := nextClient()
		sum := 0
		ok := true
		for _, tn := range picked {
			scores, err := cl.GetSpotPlacementScores(awsapi.PlacementScoreQuery{
				InstanceTypes: []string{tn}, Regions: []string{region}, TargetCapacity: target,
			})
			queriesOnAccount++
			if err != nil || len(scores) == 0 {
				ok = false
				break
			}
			s := scores[0].Score
			if s > 3 {
				s = 3 // single-type scores observed in 1..3 (Section 5.2)
			}
			sum += s
		}
		if !ok {
			continue
		}
		if strata[sum] >= perStratum {
			continue
		}
		comp, err := cl.GetSpotPlacementScores(awsapi.PlacementScoreQuery{
			InstanceTypes: picked, Regions: []string{region}, TargetCapacity: target,
		})
		queriesOnAccount++
		if err != nil || len(comp) == 0 {
			continue
		}
		strata[sum]++
		c := comp[0].Score
		res.Scatter[[2]int{sum, c}]++
		switch {
		case c > sum:
			res.Greater++
		case c == sum:
			res.Equal++
		default:
			res.Less++
		}
	}
	if res.Total() == 0 {
		return res, fmt.Errorf("repro: Fig6 collected no samples")
	}
	return res, nil
}

// String renders the comparison fractions.
func (r Fig6Result) String() string {
	return "Figure 6: composite 3-type query score vs sum of single scores\n" +
		table([]string{"Relation", "Measured", "Paper"}, [][]string{
			{"composite > sum", pct(r.FracGreater() * 100), pct(PaperFig6.Greater * 100)},
			{"composite = sum", pct(r.FracEqual() * 100), pct(PaperFig6.Equal * 100)},
			{"composite < sum", pct(r.FracLess() * 100), "2 cases"},
		}) +
		fmt.Sprintf("samples: %d\n", r.Total())
}

// --- Figure 7: target capacity sweep ---------------------------------------------

// Fig7Targets are the requested-instance counts of Figure 7.
var Fig7Targets = []int{2, 4, 8, 16, 32, 50}

// Fig7Classes are the classes shown in Figure 7, with the representative
// xlarge-class type used for each (the paper picks one representative per
// family, xlarge where available).
var Fig7Classes = []struct {
	Class catalog.Class
	Type  string
}{
	{catalog.ClassT, "t3.xlarge"},
	{catalog.ClassM, "m5.xlarge"},
	{catalog.ClassC, "c5.xlarge"},
	{catalog.ClassR, "r5.xlarge"},
	{catalog.ClassP, "p3.2xlarge"},
	{catalog.ClassG, "g4dn.xlarge"},
	{catalog.ClassInf, "inf1.xlarge"},
	{catalog.ClassI, "i3.xlarge"},
	{catalog.ClassD, "d3en.xlarge"},
}

// PaperFig7 is the published score matrix (rows follow Fig7Classes).
var PaperFig7 = map[catalog.Class][]float64{
	catalog.ClassT:   {2.98, 2.97, 2.95, 2.87, 2.67, 2.47},
	catalog.ClassM:   {2.94, 2.91, 2.85, 2.74, 2.54, 2.36},
	catalog.ClassC:   {2.98, 2.96, 2.91, 2.72, 2.55, 2.45},
	catalog.ClassR:   {2.94, 2.89, 2.77, 2.53, 2.25, 2.10},
	catalog.ClassP:   {1.82, 1.69, 1.57, 1.42, 1.22, 1.11},
	catalog.ClassG:   {2.43, 2.21, 1.98, 1.76, 1.36, 1.10},
	catalog.ClassInf: {2.56, 2.25, 1.85, 1.32, 1.14, 1.08},
	catalog.ClassI:   {3.00, 3.00, 2.99, 2.96, 2.82, 2.63},
	catalog.ClassD:   {2.91, 2.46, 1.91, 1.41, 1.11, 1.01},
}

// Fig7Result is the measured matrix.
type Fig7Result struct {
	Means map[catalog.Class][]float64
}

// Fig7 sweeps the requested instance count for the representative types,
// averaging region-level scores across regions and repeated samples.
func Fig7(seed uint64, samples int) (Fig7Result, error) {
	if samples <= 0 {
		return Fig7Result{}, fmt.Errorf("repro: samples must be positive")
	}
	cat := catalog.Standard()
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, seed, cloudsim.DefaultParams())

	means := make(map[catalog.Class][]float64)
	for _, fc := range Fig7Classes {
		means[fc.Class] = make([]float64, len(Fig7Targets))
	}
	for s := 0; s < samples; s++ {
		clk.RunFor(12 * time.Hour)
		for _, fc := range Fig7Classes {
			var regions []string
			for _, rc := range cat.SupportedRegions(fc.Type) {
				regions = append(regions, rc.Region)
			}
			for ti, n := range Fig7Targets {
				entries, err := cloud.PlacementScores(cloudsim.ScoreRequest{
					Types: []string{fc.Type}, Regions: regions, TargetCapacity: n,
				})
				if err != nil {
					return Fig7Result{}, err
				}
				sum := 0.0
				for _, e := range entries {
					sc := e.Score
					if sc > 3 {
						sc = 3
					}
					sum += float64(sc)
				}
				means[fc.Class][ti] += sum / float64(len(entries)) / float64(samples)
			}
		}
	}
	return Fig7Result{Means: means}, nil
}

// String renders measured-vs-paper rows.
func (r Fig7Result) String() string {
	header := []string{"Class"}
	for _, n := range Fig7Targets {
		header = append(header, fmt.Sprintf("n=%d", n))
	}
	var rows [][]string
	for _, fc := range Fig7Classes {
		row := []string{string(fc.Class)}
		for _, m := range r.Means[fc.Class] {
			row = append(row, f2(m))
		}
		rows = append(rows, row)
		paperRow := []string{"  paper"}
		for _, m := range PaperFig7[fc.Class] {
			paperRow = append(paperRow, f2(m))
		}
		rows = append(rows, paperRow)
	}
	var b strings.Builder
	b.WriteString("Figure 7: placement score vs requested instance count\n")
	b.WriteString(table(header, rows))
	return b.String()
}
