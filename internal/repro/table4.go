package repro

import (
	"fmt"
	"time"

	"repro/internal/experiment"
	"repro/internal/mlearn"
)

// PaperTable4 records the published accuracy / F1 per method.
var PaperTable4 = map[string][2]float64{
	"IF":       {0.45, 0.43},
	"SPS":      {0.64, 0.58},
	"CostSave": {0.39, 0.28},
	"RF":       {0.73, 0.73},
}

// Table4Options sizes the prediction study.
type Table4Options struct {
	Seed uint64
	// CollectDays is the archive length before the experiment (the
	// history the forest trains on; the paper uses the preceding month).
	CollectDays int
	// SampleFrac selects the catalog fraction.
	SampleFrac float64
	// Interval is the collection cadence.
	Interval time.Duration
	// MaxPerCategory caps the stratified experiment sample.
	MaxPerCategory int
	// Horizon is the per-case observation window.
	Horizon time.Duration
	// TestFraction is the held-out share.
	TestFraction float64
	// Trees is the forest size (scikit default 100).
	Trees int
}

// DefaultTable4Options returns the paper-shaped configuration.
func DefaultTable4Options() Table4Options {
	return Table4Options{
		Seed: 44, CollectDays: 31, SampleFrac: 0.5, Interval: time.Hour,
		MaxPerCategory: 101, Horizon: 24 * time.Hour,
		TestFraction: 0.3, Trees: 100,
	}
}

// MethodScore is one Table 4 row.
type MethodScore struct {
	Method   string
	Accuracy float64
	F1       float64
}

// Table4Result carries the per-method scores and the dataset sizes.
type Table4Result struct {
	Methods   []MethodScore
	TrainSize int
	TestSize  int
}

// Table4 runs the full prediction study: collect an archive, run the
// Section 5.4 experiment with history features, train the random forest on
// the training split, and score all four methods of the paper on the
// held-out cases.
func Table4(opt Table4Options) (Table4Result, error) {
	if opt.TestFraction <= 0 || opt.TestFraction >= 1 {
		return Table4Result{}, fmt.Errorf("repro: test fraction must be in (0,1)")
	}
	// 1. Archive the preceding month.
	col, err := Collect(CollectOptions{
		Seed: opt.Seed, Days: opt.CollectDays,
		SampleFrac: opt.SampleFrac, Interval: opt.Interval,
	})
	if err != nil {
		return Table4Result{}, err
	}

	// 2. Run the experiment with history features from the archive.
	cfg := experiment.DefaultConfig()
	cfg.Horizon = opt.Horizon
	cfg.MaxPerCategory = opt.MaxPerCategory
	cfg.Seed = opt.Seed
	cfg.Archive = col.DB
	res, err := experiment.Run(col.Cloud, cfg)
	if err != nil {
		return Table4Result{}, err
	}

	// 3. Assemble the classification dataset.
	var X [][]float64
	var y []int
	var current []experiment.Case
	for _, c := range res.Cases {
		if c.Features == nil {
			continue
		}
		X = append(X, c.Features)
		y = append(y, int(c.Outcome))
		current = append(current, c)
	}
	if len(X) < 20 {
		return Table4Result{}, fmt.Errorf("repro: only %d usable cases", len(X))
	}
	trainIdx, testIdx := mlearn.TrainTestSplit(len(X), opt.TestFraction, opt.Seed)
	trX, trY := mlearn.Subset(X, y, trainIdx)
	teX, teY := mlearn.Subset(X, y, testIdx)

	// 4. Train the forest (scikit-default shape, untuned, as in the paper).
	forest, err := mlearn.TrainForest(trX, trY, experiment.NumOutcomes, mlearn.ForestConfig{
		NumTrees: opt.Trees, Seed: opt.Seed,
	})
	if err != nil {
		return Table4Result{}, err
	}

	// 5. Score all methods on the held-out cases.
	rfPred := forest.PredictAll(teX)
	ifPred := make([]int, len(testIdx))
	spsPred := make([]int, len(testIdx))
	csPred := make([]int, len(testIdx))
	for i, idx := range testIdx {
		c := current[idx]
		ifPred[i] = int(experiment.PredictByIF(c.IF))
		spsPred[i] = int(experiment.PredictBySPS(c.SPS))
		csPred[i] = int(experiment.PredictByCostSave(c.Savings))
	}
	score := func(name string, pred []int) MethodScore {
		return MethodScore{
			Method:   name,
			Accuracy: mlearn.Accuracy(teY, pred),
			F1:       mlearn.MacroF1(teY, pred, experiment.NumOutcomes),
		}
	}
	return Table4Result{
		Methods: []MethodScore{
			score("IF", ifPred),
			score("SPS", spsPred),
			score("CostSave", csPred),
			score("RF", rfPred),
		},
		TrainSize: len(trainIdx),
		TestSize:  len(testIdx),
	}, nil
}

// Get returns the score row for a method name.
func (r Table4Result) Get(method string) (MethodScore, bool) {
	for _, m := range r.Methods {
		if m.Method == method {
			return m, true
		}
	}
	return MethodScore{}, false
}

// String renders the Table 4 comparison.
func (r Table4Result) String() string {
	rows := [][]string{}
	for _, m := range r.Methods {
		paper := PaperTable4[m.Method]
		rows = append(rows, []string{
			m.Method,
			f2(m.Accuracy), f2(paper[0]),
			f2(m.F1), f2(paper[1]),
		})
	}
	return "Table 4: spot instance status prediction (held-out cases)\n" +
		table([]string{"Method", "Accuracy", "(paper)", "F1", "(paper)"}, rows) +
		fmt.Sprintf("train=%d test=%d cases\n", r.TrainSize, r.TestSize)
}
